# TailGuard build and verification targets. `make ci` is exactly what the
# GitHub workflow runs; keep the two in sync.

GO ?= go
TGLINT := bin/tglint

.PHONY: all build lint vet fmt test race ci clean

all: build

build:
	$(GO) build ./...

$(TGLINT): $(shell find tools/tglint -name '*.go' -not -path '*/testdata/*')
	$(GO) build -o $(TGLINT) ./tools/tglint

# lint runs the five tglint analyzers twice: standalone over the module
# (fast, one process) and as a `go vet -vettool` (exercises the unitchecker
# wire protocol the way CI consumers drive it).
lint: $(TGLINT)
	./$(TGLINT) ./...
	$(GO) vet -vettool=$(TGLINT) ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: build fmt vet lint race

clean:
	rm -rf bin
