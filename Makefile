# TailGuard build and verification targets. `make ci` is exactly what the
# GitHub workflow runs; keep the two in sync.

GO ?= go
TGLINT := bin/tglint

.PHONY: all build lint lint-report lint-diff vet fmt test race bench bench-smoke bench-compare obs-smoke fault-smoke shard-smoke perf-smoke tgd-smoke control-smoke ci clean

# Benchmarks that feed BENCH_harness.json: the parallel-harness sweep pair,
# the sharded-core throughput pair, the scheduler-daemon wire cycle, and
# the fast-path micro-benchmarks.
BENCH_PATTERN := SweepFig4|SimulatorThroughput|ShardedClusterThroughput|SchedulerDo|OnlineCDFAdd|DeadlineEstimation|TgdEnqueueClaim|ControlLoopOverhead

all: build

build:
	$(GO) build ./...

$(TGLINT): $(shell find tools/tglint -name '*.go' -not -path '*/testdata/*')
	$(GO) build -o $(TGLINT) ./tools/tglint

# lint runs the tglint analyzer suite twice: standalone over the module
# (fast, one process, honoring the expiring suppressions in
# lint-baseline.json) and as a `go vet -vettool` (exercises the
# unitchecker wire protocol the way CI consumers drive it).
lint: $(TGLINT)
	./$(TGLINT) -baseline lint-baseline.json ./...
	$(GO) vet -vettool=$(TGLINT) ./...

# lint-report regenerates the committed reference report that CI's
# lint-diff step compares fresh runs against. Refresh it whenever
# findings are fixed (lintdiff prints a reminder).
lint-report: $(TGLINT)
	./$(TGLINT) -json -o lint-report.json ./... || true

# lint-diff emulates the CI gate locally: fail only on findings absent
# from the committed reference report.
lint-diff: $(TGLINT)
	./$(TGLINT) -json -o lint-report.new.json ./... || true
	$(GO) run ./tools/lintdiff lint-report.json lint-report.new.json
	rm -f lint-report.new.json

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the harness benchmarks at full benchtime and writes
# BENCH_harness.json (ns/op, allocs/op, custom metrics, and the derived
# speedup ratios). Each parallel benchmark reports the GOMAXPROCS it
# actually ran at; benchjson withholds any speedup measured at
# GOMAXPROCS=1 and records a note instead.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem . | tee bench.txt
	$(GO) run ./tools/benchjson -o BENCH_harness.json bench.txt

# bench-smoke is the CI-sized variant: one iteration per benchmark at
# -short scale (the sharded throughput pair shrinks to 1000 servers /
# 200k queries), just enough to prove the harness runs and to publish a
# BENCH_harness.json artifact from every commit.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -short -benchtime 1x -benchmem . | tee bench.txt
	$(GO) run ./tools/benchjson -o BENCH_harness.json bench.txt

# bench-compare diffs a fresh smoke run against the committed
# BENCH_harness.json (per-benchmark ns/op and allocs/op deltas). By
# default it is a report, not a gate: the diff exits 0 when both files
# parse. Set BENCHCOMPARE_FLAGS='-max-regress 25' (or any threshold) to
# make it fail on ns/op regressions beyond that percentage.
BENCHCOMPARE_FLAGS ?=
bench-compare:
	git show HEAD:BENCH_harness.json > bench_baseline.json
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -short -benchtime 1x -benchmem . | tee bench.txt
	$(GO) run ./tools/benchjson -o bench_fresh.json bench.txt
	$(GO) run ./tools/benchcompare $(BENCHCOMPARE_FLAGS) bench_baseline.json bench_fresh.json

# obs-smoke proves the observability plane end to end: a short
# instrumented tgsim sweep whose Chrome-trace and Prometheus dumps must
# validate, plus a live in-process handler fetched over real HTTP.
obs-smoke:
	rm -rf obs-smoke-out
	$(GO) run ./cmd/tgsim -obs obs-smoke-out -queries 1500 > /dev/null
	for p in TailGuard FIFO PRIQ T-EDFQ; do \
		$(GO) run ./tools/obscheck \
			-trace obs-smoke-out/trace_$${p}_s1.json \
			-prom obs-smoke-out/metrics_$${p}_s1.prom || exit 1; \
	done
	$(GO) run ./tools/obscheck -live
	rm -rf obs-smoke-out

# fault-smoke proves the fault-injection path end to end: a tiny seeded
# FaultSweep whose rendered tables must match the committed golden (the
# determinism acceptance gate), plus an instrumented faulted run whose
# Chrome-trace artifact (with its task_lost/hedge instants) must validate.
fault-smoke:
	$(GO) test ./internal/experiment -run TestFaultSmokeGolden -count=1
	rm -rf fault-smoke-out
	$(GO) run ./cmd/tgsim -faults canonical -fault-out fault-smoke-out -queries 1500 > /dev/null
	ls fault-smoke-out/faults_p*_s1.txt fault-smoke-out/fault_misscause_p*_s1.txt > /dev/null
	for f in fault-smoke-out/trace_fault_*_s1.json; do \
		$(GO) run ./tools/obscheck -trace $$f || exit 1; \
	done
	rm -rf fault-smoke-out

# shard-smoke proves the sharded parallel core end to end: a small
# shardscale run through cmd/tgsim that executes the stock scenario
# sequentially and at 2/4/8 shards and fails on any bit-level divergence
# (experiment.ShardScale gates every sharded run on Result.Equal).
shard-smoke:
	$(GO) run ./cmd/tgsim -exp shardscale -shard-servers 128 -queries 6000

# perf-smoke proves the timing-wheel event queue: an end-to-end resilient
# faulted run on the wheel engine and on the reference binary heap must
# produce bit-identical Results, and the randomized wheel-vs-heap pop
# order and least-loaded index-vs-scan property suites must hold.
perf-smoke:
	$(GO) test ./internal/cluster -run 'TestPerfSmokeWheelVsHeap|TestLeastLoadedIndexMatchesScanEndToEnd' -count=1
	$(GO) test ./internal/sim -run 'TestWheel|FuzzWheelVsHeapPopOrder' -count=1

# tgd-smoke proves the scheduler daemon end to end: enqueue a batch of
# deadline-stamped queries over a journal file, crash a worker mid-lease,
# kill and restart the daemon from the journal, drain, and assert zero
# lost and zero double-counted tasks (cmd/tgd -smoke exits nonzero on
# any violation).
tgd-smoke:
	$(GO) run ./cmd/tgd -smoke

# control-smoke proves the adaptive control plane end to end: the
# flash-crowd sweep's rendered table must match the committed golden
# (byte-identical decision traces — the determinism gate), and the
# headline claim must hold (controlled runs keep the windowed miss ratio
# near Rth while uncontrolled runs collapse).
control-smoke:
	$(GO) test ./internal/experiment -run 'TestControlSmokeGolden|TestControlHoldsSLO' -count=1
	$(GO) run ./cmd/tgsim -exp flashcrowd -control -queries 800 > /dev/null

ci: build fmt vet lint race bench-smoke obs-smoke fault-smoke shard-smoke perf-smoke tgd-smoke control-smoke

clean:
	rm -rf bin
