package tailguard_test

import (
	"fmt"

	"tailguard"
)

// The motivating arithmetic of the paper's introduction: the same per-task
// violation probability blows up with fanout.
func ExampleSLOViolationProbability() {
	for _, fanout := range []int{1, 10, 100} {
		v, err := tailguard.SLOViolationProbability(0.01, fanout)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("fanout %3d: query violation %.1f%%\n", fanout, v*100)
	}
	// Output:
	// fanout   1: query violation 1.0%
	// fanout  10: query violation 9.6%
	// fanout 100: query violation 63.4%
}

// Eqn. 6 end to end: task queuing budgets for the Masstree model under a
// two-class SLO configuration. These are the paper's own Section IV.C
// numbers.
func ExampleDeadliner() {
	w, err := tailguard.TailbenchWorkload("masstree")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	est, err := tailguard.NewHomogeneousStaticTailEstimator(w.ServiceTime, 100)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	classes, err := tailguard.TwoClasses(1.0, 1.5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	dl, err := tailguard.NewDeadliner(tailguard.TFEDFQ, est, classes)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for class := 0; class < 2; class++ {
		b, err := dl.Budget(class, 100)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("class %d, fanout 100: budget %.3f ms\n", class, b)
	}
	// Output:
	// class 0, fanout 100: budget 0.527 ms
	// class 1, fanout 100: budget 1.027 ms
}

// A complete simulation through the facade: the paper's mixed-fanout
// workload at a load between FIFO's and TailGuard's maximum.
func ExampleScenario() {
	w, err := tailguard.TailbenchWorkload("masstree")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fan, err := tailguard.NewInverseProportional([]int{1, 10, 100})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	classes, err := tailguard.SingleClass(0.8)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, spec := range []tailguard.Spec{tailguard.TFEDFQ, tailguard.FIFO} {
		s := tailguard.Scenario{
			Workload: w, Servers: 100, Spec: spec, Fanout: fan,
			Classes: classes, Load: 0.25,
			Fidelity: tailguard.Fidelity{Queries: 60000, Warmup: 5000, MinSamples: 100, LoadTol: 0.02, Seed: 1},
		}
		res, err := s.Run()
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		ok, _, err := res.MeetsSLOs(classes, 100)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%s meets the 0.8 ms SLO at 25%% load: %v\n", spec.Name, ok)
	}
	// Output:
	// TailGuard meets the 0.8 ms SLO at 25% load: true
	// FIFO meets the 0.8 ms SLO at 25% load: false
}

// The request-level extension: tails do not add across a request's
// sequential queries.
func ExampleUnloadedRequestQuantile() {
	w, err := tailguard.TailbenchWorkload("masstree")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fanouts := []int{1, 10, 100}
	x, err := tailguard.UnloadedRequestQuantile(w.ServiceTime, fanouts, 0.99, 400000, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var naive float64
	for _, k := range fanouts {
		q, err := tailguard.HomogeneousQueryQuantile(w.ServiceTime, k, 0.99)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		naive += q
	}
	fmt.Printf("sum of per-query p99s: %.2f ms\n", naive)
	fmt.Printf("request p99 is smaller: %v\n", x < naive)
	// Output:
	// sum of per-query p99s: 0.94 ms
	// request p99 is smaller: true
}
