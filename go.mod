module tailguard

go 1.22
