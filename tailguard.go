// Package tailguard is an implementation of TailGuard — tail-latency-SLO-
// and-fanout-aware earliest-deadline-first task queuing (TF-EDFQ) for
// data-intensive user-facing services — as published at IEEE ICDCS 2023
// (DOI 10.1109/ICDCS57875.2023.00042), together with the baselines it is
// evaluated against (FIFO, PRIQ, T-EDFQ), a discrete-event cluster
// simulator, a live HTTP Sensing-as-a-Service testbed, and the complete
// experiment harness regenerating every table and figure of the paper.
//
// # The idea in three lines
//
// A query fans out into kf parallel tasks; the slowest task sets the query
// latency, so F_query(t) = F_task(t)^kf. To meet a pth-percentile SLO
// x_p^SLO, TailGuard grants each task the queuing budget
//
//	T_b = x_p^SLO − x_p^u(kf),   x_p^u(kf) = F_task^{-1}(p^{1/kf}),
//
// and orders every task queue by deadline t0 + T_b. High-fanout queries
// get tighter deadlines, which is exactly the resource differentiation
// fanout-blind policies cannot express.
//
// # Package map
//
//   - Policies and deadline math: Spec, TailEstimator, Deadliner,
//     AdmissionController (re-exported from internal/core).
//   - Workloads: arrival processes, fanout models, service classes,
//     query generators (internal/workload), and the Tailbench-calibrated
//     service-time models (internal/dist).
//   - Simulation: ClusterConfig/RunCluster (internal/cluster) and the
//     Scenario/experiment harness (internal/experiment).
//   - Live testbed: TestbedConfig/RunTestbed (internal/saas).
//   - Traces: record/replay (internal/trace).
//   - Requests: multi-query request decomposition (internal/request).
//
// See the examples/ directory for runnable walkthroughs and DESIGN.md for
// the full system inventory.
package tailguard

import (
	"tailguard/internal/cluster"
	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/experiment"
	"tailguard/internal/metrics"
	"tailguard/internal/request"
	"tailguard/internal/saas"
	"tailguard/internal/sched"
	"tailguard/internal/trace"
	"tailguard/internal/workload"
)

// Scheduling policies (Section III.A).
type (
	// Spec is a named queuing policy: queue discipline + deadline rule.
	Spec = core.Spec
	// DeadlineRule selects how task queuing deadlines are computed.
	DeadlineRule = core.DeadlineRule
)

// The four policies evaluated in the paper.
var (
	FIFO   = core.FIFO
	PRIQ   = core.PRIQ
	TEDFQ  = core.TEDFQ
	TFEDFQ = core.TFEDFQ
)

// Specs returns the paper's four policies.
func Specs() []Spec { return core.Specs() }

// SpecByName resolves "fifo", "priq", "tedfq", "tfedfq"/"tailguard".
func SpecByName(name string) (Spec, error) { return core.SpecByName(name) }

// Deadline estimation and admission control (Sections III.B-III.C).
type (
	// TailEstimator tracks per-server latency CDFs and answers x_p^u(kf).
	TailEstimator = core.TailEstimator
	// Deadliner computes task queuing deadlines (Eqn. 6).
	Deadliner = core.Deadliner
	// AdmissionController rejects queries while the windowed task
	// deadline-miss ratio exceeds Rth.
	AdmissionController = core.AdmissionController
)

// Estimator and deadline constructors.
var (
	NewTailEstimator                  = core.NewTailEstimator
	NewStaticTailEstimator            = core.NewStaticTailEstimator
	NewHomogeneousStaticTailEstimator = core.NewHomogeneousStaticTailEstimator
	NewDeadliner                      = core.NewDeadliner
	NewAdmissionController            = core.NewAdmissionController
)

// Distributions and the Tailbench workload models (Section IV.A).
type (
	// Distribution is a latency distribution (CDF/quantile/mean/sample).
	Distribution = dist.Distribution
	// QuantileTable is a piecewise-linear quantile model.
	QuantileTable = dist.QuantileTable
	// Breakpoint is one (probability, value) pair of a QuantileTable.
	Breakpoint = dist.Breakpoint
	// ECDF is an empirical CDF over samples.
	ECDF = dist.ECDF
	// OnlineCDF is a streaming, optionally decaying latency CDF.
	OnlineCDF = dist.OnlineCDF
	// TailbenchModel couples a workload model with its paper statistics.
	TailbenchModel = dist.Workload
)

// Distribution constructors and order-statistics helpers.
var (
	NewECDF                  = dist.NewECDF
	NewOnlineCDF             = dist.NewOnlineCDF
	NewQuantileTable         = dist.NewQuantileTable
	TailbenchWorkload        = dist.TailbenchWorkload
	TailbenchNames           = dist.TailbenchNames
	QueryCDF                 = dist.QueryCDF
	QueryQuantile            = dist.QueryQuantile
	HomogeneousQueryQuantile = dist.HomogeneousQueryQuantile
	SLOViolationProbability  = dist.SLOViolationProbability
	RequiredTaskQuantile     = dist.RequiredTaskQuantile
)

// Workload generation.
type (
	// Class is one service class with its tail-latency SLO.
	Class = workload.Class
	// ClassSet is a weighted set of classes.
	ClassSet = workload.ClassSet
	// Query is one generated query.
	Query = workload.Query
	// QuerySource produces query streams.
	QuerySource = workload.QuerySource
	// Generator is the standard stochastic query source.
	Generator = workload.Generator
	// GeneratorConfig configures a Generator.
	GeneratorConfig = workload.GeneratorConfig
	// FanoutDist is a distribution over query fanouts.
	FanoutDist = workload.FanoutDist
	// ArrivalProcess produces inter-arrival gaps.
	ArrivalProcess = workload.ArrivalProcess
)

// Workload constructors.
var (
	NewPoisson             = workload.NewPoisson
	NewPareto              = workload.NewPareto
	NewFixedFanout         = workload.NewFixed
	NewWeightedFanout      = workload.NewWeighted
	NewInverseProportional = workload.NewInverseProportional
	NewZipfFanout          = workload.NewZipf
	NewClassSet            = workload.NewClassSet
	SingleClass            = workload.SingleClass
	TwoClasses             = workload.TwoClasses
	NewGenerator           = workload.NewGenerator
	RateForLoad            = workload.RateForLoad
	LoadForRate            = workload.LoadForRate
)

// Measurement.
type (
	// LatencyRecorder accumulates latency samples with exact quantiles.
	LatencyRecorder = metrics.LatencyRecorder
	// QuantileCI is a bootstrap confidence interval for a tail estimate.
	QuantileCI = metrics.QuantileCI
	// P2Quantile is a constant-memory streaming quantile estimator.
	P2Quantile = dist.P2Quantile
)

// Measurement helpers.
var (
	BootstrapQuantileCI = metrics.BootstrapQuantileCI
	NewP2Quantile       = dist.NewP2Quantile
)

// Production scheduler: embed TailGuard in a real service by wrapping
// your own task servers (shards, workers, devices) with sched's
// fanout-aware deadline queues.
type (
	// Scheduler is the concurrency-safe production scheduler.
	Scheduler = sched.Scheduler
	// SchedulerConfig configures a Scheduler.
	SchedulerConfig = sched.Config
	// SchedulerTask binds application work to a target server.
	SchedulerTask = sched.Task
	// TaskFunc is one unit of application work.
	TaskFunc = sched.TaskFunc
)

// Production-scheduler entry points and sentinel errors.
var (
	NewScheduler = sched.New
	ErrRejected  = sched.ErrRejected
	ErrClosed    = sched.ErrClosed
)

// Cluster simulation (the paper's Fig. 2 model).
type (
	// ClusterConfig configures one simulation run.
	ClusterConfig = cluster.Config
	// ClusterResult is a run's measurements.
	ClusterResult = cluster.Result
	// ClassFanout identifies one query type for per-type SLO checks.
	ClassFanout = cluster.ClassFanout
	// ServerFailure is one injected server outage window.
	ServerFailure = cluster.Failure
	// QueuingMode selects central or per-server task queuing.
	QueuingMode = cluster.QueuingMode
)

// Queuing placements (the paper's footnote 3).
const (
	CentralQueuing   = cluster.CentralQueuing
	PerServerQueuing = cluster.PerServerQueuing
)

// RunCluster executes one simulation run.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) { return cluster.Run(cfg) }

// Experiment harness (Section IV).
type (
	// Scenario is a declarative simulation setup.
	Scenario = experiment.Scenario
	// Fidelity scales experiment cost.
	Fidelity = experiment.Fidelity
	// ResultTable is a formatted experiment result.
	ResultTable = experiment.Table
	// MaxLoadBounds brackets max-load searches.
	MaxLoadBounds = experiment.MaxLoadBounds
	// ArrivalKind selects Poisson or Pareto arrivals.
	ArrivalKind = experiment.ArrivalKind
)

// Experiment fidelities and helpers.
var (
	QuickFidelity   = experiment.Quick
	FullFidelity    = experiment.Full
	MaxLoad         = experiment.MaxLoad
	ScenarioMaxLoad = experiment.ScenarioMaxLoad
)

// Live SaS testbed (Section IV.E).
type (
	// TestbedConfig configures one live testbed run.
	TestbedConfig = saas.TestbedConfig
	// TestbedResult is a run's outcome at paper scale.
	TestbedResult = saas.TestbedResult
	// EdgeNode is one live sensing edge node (HTTP server).
	EdgeNode = saas.EdgeNode
	// SensingStore is an edge node's record store.
	SensingStore = saas.Store
)

// Multi-process deployment.
type (
	// NodeRef addresses one edge node (local or remote).
	NodeRef = saas.NodeRef
	// NodeManifest describes a deployed node set for remote driving.
	NodeManifest = saas.Manifest
	// WorkloadRunConfig drives the SaS workload against a manifest.
	WorkloadRunConfig = saas.WorkloadRunConfig
)

// Testbed entry points.
var (
	RunTestbed        = saas.RunTestbed
	RunWorkload       = saas.RunWorkload
	LoadNodeManifest  = saas.LoadManifest
	BuildStores       = saas.BuildStores
	SaSClasses        = saas.SaSClasses
	ClusterDelayModel = saas.ClusterDelayModel
)

// Traces.
type (
	// TraceRecord is one traced query with pinned service times.
	TraceRecord = trace.Record
	// TraceReplayer replays a trace as a QuerySource.
	TraceReplayer = trace.Replayer
)

// Trace functions.
var (
	GenerateTrace  = trace.Generate
	SaveTrace      = trace.Save
	LoadTrace      = trace.Load
	SaveTraceGob   = trace.SaveGob
	LoadTraceGob   = trace.LoadGob
	NewReplayer    = trace.NewReplayer
	SummarizeTrace = trace.Summarize
)

// Request-level decomposition extension (Section III.B remark).
type (
	// RequestPlan describes a multi-query request and its SLO.
	RequestPlan = request.Plan
	// RequestRunConfig configures a request-workload simulation.
	RequestRunConfig = request.RunConfig
	// RequestResult is its outcome.
	RequestResult = request.Result
	// BudgetStrategy splits the request budget across queries.
	BudgetStrategy = request.Strategy
)

// Request entry points.
var (
	RunRequests             = request.Run
	UnloadedRequestQuantile = request.UnloadedRequestQuantile
	BudgetStrategies        = request.Strategies
)
