package main

import (
	"os"
	"path/filepath"
	"testing"
)

func f(analyzer, file, msg string, line int) finding {
	return finding{Analyzer: analyzer, File: file, Line: line, Col: 2, Message: msg}
}

func TestDiffLineInsensitive(t *testing.T) {
	oldFs := []finding{f("maporder", "a.go", "map order reaches append", 10)}
	newFs := []finding{f("maporder", "a.go", "map order reaches append", 99)}
	fresh, fixed := diff(oldFs, newFs)
	if len(fresh) != 0 || fixed != 0 {
		t.Fatalf("line-shifted finding counted as new: fresh=%v fixed=%d", fresh, fixed)
	}
}

func TestDiffNewAndFixed(t *testing.T) {
	oldFs := []finding{
		f("detflow", "a.go", "old finding", 1),
		f("maporder", "b.go", "kept finding", 2),
	}
	newFs := []finding{
		f("maporder", "b.go", "kept finding", 2),
		f("lockorder", "c.go", "brand new", 3),
	}
	fresh, fixed := diff(oldFs, newFs)
	if len(fresh) != 1 || fresh[0].Analyzer != "lockorder" {
		t.Fatalf("fresh = %v, want the lockorder finding", fresh)
	}
	if fixed != 1 {
		t.Fatalf("fixed = %d, want 1 (the detflow finding went away)", fixed)
	}
}

func TestDiffMultiset(t *testing.T) {
	oldFs := []finding{f("hotalloc", "a.go", "make allocates", 1)}
	newFs := []finding{
		f("hotalloc", "a.go", "make allocates", 1),
		f("hotalloc", "a.go", "make allocates", 50),
	}
	fresh, _ := diff(oldFs, newFs)
	if len(fresh) != 1 {
		t.Fatalf("duplicate beyond the old count must be new; fresh = %v", fresh)
	}
}

func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	empty := write("empty.json", "[]\n")
	one := write("one.json", `[{"analyzer":"detflow","file":"a.go","line":1,"col":1,"message":"m"}]`)
	bad := write("bad.json", "{not json")

	if got := run([]string{empty, empty}); got != 0 {
		t.Errorf("clean diff exit = %d, want 0", got)
	}
	if got := run([]string{empty, one}); got != 1 {
		t.Errorf("new finding exit = %d, want 1", got)
	}
	if got := run([]string{one, empty}); got != 0 {
		t.Errorf("only-fixed diff exit = %d, want 0", got)
	}
	if got := run([]string{empty, bad}); got != 2 {
		t.Errorf("bad report exit = %d, want 2", got)
	}
	if got := run([]string{empty}); got != 2 {
		t.Errorf("usage error exit = %d, want 2", got)
	}
}
