// Command lintdiff compares two tglint -json reports and fails only on
// findings that are new in the second one. It is the incremental-adoption
// gate: CI runs `tglint -json -o lint-report.json`, diffs it against the
// committed reference report, and blocks the build on regressions while
// tolerating the (expiring, baselined) backlog.
//
//	lintdiff OLD.json NEW.json
//
// Findings match by (analyzer, file, message) — never by line or column,
// so unrelated edits that shift a finding within its file do not read as
// a new finding. Matching is multiset-aware: two identical findings in
// NEW against one in OLD is one regression. Exit status: 0 when NEW
// introduces nothing, 1 when it does (each new finding is printed), 2 on
// usage or read errors. Fixed findings (present in OLD, gone from NEW)
// are reported to stderr as a reminder to refresh the reference report.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// finding mirrors the stable JSON shape emitted by tglint -json. The
// struct is deliberately re-declared here rather than imported: lintdiff
// consumes the serialized contract, and must notice if it drifts.
type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// identity is the line-insensitive match key.
func (f finding) identity() string {
	return f.Analyzer + "\x00" + f.File + "\x00" + f.Message
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// readReport loads one tglint -json report.
func readReport(path string) ([]finding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var fs []finding
	if err := json.Unmarshal(data, &fs); err != nil {
		return nil, fmt.Errorf("%s: not a tglint -json report: %w", path, err)
	}
	return fs, nil
}

// diff returns NEW findings with no OLD counterpart and the count of OLD
// findings no longer present (fixed).
func diff(oldFs, newFs []finding) (fresh []finding, fixed int) {
	budget := make(map[string]int, len(oldFs))
	for _, f := range oldFs {
		budget[f.identity()]++
	}
	for _, f := range newFs {
		if budget[f.identity()] > 0 {
			budget[f.identity()]--
			continue
		}
		fresh = append(fresh, f)
	}
	for _, left := range budget {
		fixed += left
	}
	return fresh, fixed
}

func run(args []string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: lintdiff OLD.json NEW.json")
		return 2
	}
	oldFs, err := readReport(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "lintdiff: %v\n", err)
		return 2
	}
	newFs, err := readReport(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "lintdiff: %v\n", err)
		return 2
	}
	fresh, fixed := diff(oldFs, newFs)
	if fixed > 0 {
		fmt.Fprintf(os.Stderr, "lintdiff: %d finding(s) fixed since the reference report; consider refreshing it\n", fixed)
	}
	if len(fresh) == 0 {
		fmt.Fprintf(os.Stderr, "lintdiff: no new findings (%d total, all in reference)\n", len(newFs))
		return 0
	}
	fmt.Fprintf(os.Stderr, "lintdiff: %d new finding(s):\n", len(fresh))
	for _, f := range fresh {
		fmt.Fprintf(os.Stderr, "  %s\n", f)
	}
	return 1
}

func main() {
	os.Exit(run(os.Args[1:]))
}
