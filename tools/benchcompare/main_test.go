package main

import (
	"strings"
	"testing"
)

func TestCompare(t *testing.T) {
	oldRep := &report{
		Benchmarks: []benchmark{
			{Name: "BenchmarkSweepFig4Sequential-8", NsPerOp: 2.8e9, BytesPerOp: 1.567e9, AllocsPerOp: 15510087},
			{Name: "BenchmarkGone", NsPerOp: 100},
		},
		Derived: map[string]float64{"fig4_sweep_speedup": 0.99},
	}
	newRep := &report{
		Benchmarks: []benchmark{
			{Name: "BenchmarkSweepFig4Sequential", NsPerOp: 1.7e9, BytesPerOp: 38e6, AllocsPerOp: 40465},
			{Name: "BenchmarkFresh", NsPerOp: 50},
		},
		Derived: map[string]float64{"fig4_sweep_speedup": 1.8, "fig4_sweep_gomaxprocs": 8},
		Notes:   []string{"example note"},
	}
	var sb strings.Builder
	Compare(&sb, oldRep, newRep)
	out := sb.String()
	for _, want := range []string{
		// -8 suffix stripped, so the renamed pair still matches.
		"BenchmarkSweepFig4Sequential: ns/op: 2.8G -> 1.7G (-39.3%)",
		"allocs/op: 15.5M -> 40.5k (-99.7%)",
		"B/op: 1.57G -> 38M (-97.6%)",
		"BenchmarkGone: removed",
		"BenchmarkFresh: new benchmark",
		"derived fig4_sweep_speedup: 0.99 -> 1.8",
		"derived fig4_sweep_gomaxprocs: 8 (new)",
		"note: example note",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run(nil, &strings.Builder{}); err == nil {
		t.Error("run with no args succeeded, want usage error")
	}
	if err := run([]string{"a.json", "missing.json"}, &strings.Builder{}); err == nil {
		t.Error("run with missing files succeeded, want error")
	}
}
