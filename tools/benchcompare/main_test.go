package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestCompare(t *testing.T) {
	oldRep := &report{
		Benchmarks: []benchmark{
			{Name: "BenchmarkSweepFig4Sequential-8", NsPerOp: 2.8e9, BytesPerOp: 1.567e9, AllocsPerOp: 15510087},
			{Name: "BenchmarkGone", NsPerOp: 100},
		},
		Derived: map[string]float64{"fig4_sweep_speedup": 0.99},
	}
	newRep := &report{
		Benchmarks: []benchmark{
			{Name: "BenchmarkSweepFig4Sequential", NsPerOp: 1.7e9, BytesPerOp: 38e6, AllocsPerOp: 40465},
			{Name: "BenchmarkFresh", NsPerOp: 50},
		},
		Derived: map[string]float64{"fig4_sweep_speedup": 1.8, "fig4_sweep_gomaxprocs": 8},
		Notes:   []string{"example note"},
	}
	var sb strings.Builder
	Compare(&sb, oldRep, newRep)
	out := sb.String()
	for _, want := range []string{
		// -8 suffix stripped, so the renamed pair still matches.
		"BenchmarkSweepFig4Sequential: ns/op: 2.8G -> 1.7G (-39.3%)",
		"allocs/op: 15.5M -> 40.5k (-99.7%)",
		"B/op: 1.57G -> 38M (-97.6%)",
		"BenchmarkGone: removed",
		"BenchmarkFresh: new benchmark",
		"derived fig4_sweep_speedup: 0.99 -> 1.8",
		"derived fig4_sweep_gomaxprocs: 8 (new)",
		"note: example note",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCompareSkipsFlaggedBaseline: a baseline speedup carrying its
// *_flagged marker (measured at GOMAXPROCS=1) must not be presented as a
// comparison baseline — the fresh value is reported standalone.
func TestCompareSkipsFlaggedBaseline(t *testing.T) {
	oldRep := &report{
		Benchmarks: []benchmark{{Name: "BenchmarkShardedClusterThroughput/shards=4", NsPerOp: 4e8}},
		Derived: map[string]float64{
			"sharded_speedup_vs_1shard":         0.83,
			"sharded_speedup_vs_1shard_flagged": 1,
		},
	}
	newRep := &report{
		Benchmarks: []benchmark{{Name: "BenchmarkShardedClusterThroughput/shards=4-8", NsPerOp: 1e8}},
		Derived:    map[string]float64{"sharded_speedup_vs_1shard": 3.2},
	}
	var sb strings.Builder
	Compare(&sb, oldRep, newRep)
	out := sb.String()
	if !strings.Contains(out, "derived sharded_speedup_vs_1shard: 3.2 (baseline was flagged, not a comparison baseline)") {
		t.Errorf("flagged baseline not annotated:\n%s", out)
	}
	if strings.Contains(out, "0.83 -> 3.2") {
		t.Errorf("flagged baseline presented as a comparison:\n%s", out)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run(nil, &strings.Builder{}); err == nil {
		t.Error("run with no args succeeded, want usage error")
	}
	if err := run([]string{"a.json", "missing.json"}, &strings.Builder{}); err == nil {
		t.Error("run with missing files succeeded, want error")
	}
	if err := run([]string{"-max-regress", "bogus", "a.json", "b.json"}, &strings.Builder{}); err == nil {
		t.Error("run with a non-numeric -max-regress succeeded, want error")
	}
}

// writeReport marshals a report to a temp file for run() gate tests.
func writeReport(t *testing.T, name string, rep *report) string {
	t.Helper()
	path := t.TempDir() + "/" + name
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal %s: %v", name, err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	return path
}

// TestMaxRegressGate: the default run is a non-blocking report even
// across a big slowdown; -max-regress turns the same slowdown into an
// error naming the offender, and leaves within-threshold moves alone.
func TestMaxRegressGate(t *testing.T) {
	oldPath := writeReport(t, "old.json", &report{Benchmarks: []benchmark{
		{Name: "BenchmarkFast", NsPerOp: 100},
		{Name: "BenchmarkSlow", NsPerOp: 100},
	}})
	newPath := writeReport(t, "new.json", &report{Benchmarks: []benchmark{
		{Name: "BenchmarkFast", NsPerOp: 104}, // +4%
		{Name: "BenchmarkSlow", NsPerOp: 150}, // +50%
	}})

	if err := run([]string{oldPath, newPath}, &strings.Builder{}); err != nil {
		t.Errorf("default run blocked on a regression: %v", err)
	}
	if err := run([]string{"-max-regress", "60", oldPath, newPath}, &strings.Builder{}); err != nil {
		t.Errorf("run gated below threshold: %v", err)
	}
	err := run([]string{"-max-regress", "10", oldPath, newPath}, &strings.Builder{})
	if err == nil {
		t.Fatal("run accepted a +50% regression against -max-regress 10")
	}
	if !strings.Contains(err.Error(), "BenchmarkSlow") || strings.Contains(err.Error(), "BenchmarkFast") {
		t.Errorf("gate error = %q, want BenchmarkSlow flagged and BenchmarkFast spared", err)
	}
}
