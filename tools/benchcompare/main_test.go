package main

import (
	"strings"
	"testing"
)

func TestCompare(t *testing.T) {
	oldRep := &report{
		Benchmarks: []benchmark{
			{Name: "BenchmarkSweepFig4Sequential-8", NsPerOp: 2.8e9, BytesPerOp: 1.567e9, AllocsPerOp: 15510087},
			{Name: "BenchmarkGone", NsPerOp: 100},
		},
		Derived: map[string]float64{"fig4_sweep_speedup": 0.99},
	}
	newRep := &report{
		Benchmarks: []benchmark{
			{Name: "BenchmarkSweepFig4Sequential", NsPerOp: 1.7e9, BytesPerOp: 38e6, AllocsPerOp: 40465},
			{Name: "BenchmarkFresh", NsPerOp: 50},
		},
		Derived: map[string]float64{"fig4_sweep_speedup": 1.8, "fig4_sweep_gomaxprocs": 8},
		Notes:   []string{"example note"},
	}
	var sb strings.Builder
	Compare(&sb, oldRep, newRep)
	out := sb.String()
	for _, want := range []string{
		// -8 suffix stripped, so the renamed pair still matches.
		"BenchmarkSweepFig4Sequential: ns/op: 2.8G -> 1.7G (-39.3%)",
		"allocs/op: 15.5M -> 40.5k (-99.7%)",
		"B/op: 1.57G -> 38M (-97.6%)",
		"BenchmarkGone: removed",
		"BenchmarkFresh: new benchmark",
		"derived fig4_sweep_speedup: 0.99 -> 1.8",
		"derived fig4_sweep_gomaxprocs: 8 (new)",
		"note: example note",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCompareSkipsFlaggedBaseline: a baseline speedup carrying its
// *_flagged marker (measured at GOMAXPROCS=1) must not be presented as a
// comparison baseline — the fresh value is reported standalone.
func TestCompareSkipsFlaggedBaseline(t *testing.T) {
	oldRep := &report{
		Benchmarks: []benchmark{{Name: "BenchmarkShardedClusterThroughput/shards=4", NsPerOp: 4e8}},
		Derived: map[string]float64{
			"sharded_speedup_vs_1shard":         0.83,
			"sharded_speedup_vs_1shard_flagged": 1,
		},
	}
	newRep := &report{
		Benchmarks: []benchmark{{Name: "BenchmarkShardedClusterThroughput/shards=4-8", NsPerOp: 1e8}},
		Derived:    map[string]float64{"sharded_speedup_vs_1shard": 3.2},
	}
	var sb strings.Builder
	Compare(&sb, oldRep, newRep)
	out := sb.String()
	if !strings.Contains(out, "derived sharded_speedup_vs_1shard: 3.2 (baseline was flagged, not a comparison baseline)") {
		t.Errorf("flagged baseline not annotated:\n%s", out)
	}
	if strings.Contains(out, "0.83 -> 3.2") {
		t.Errorf("flagged baseline presented as a comparison:\n%s", out)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run(nil, &strings.Builder{}); err == nil {
		t.Error("run with no args succeeded, want usage error")
	}
	if err := run([]string{"a.json", "missing.json"}, &strings.Builder{}); err == nil {
		t.Error("run with missing files succeeded, want error")
	}
}
