// Command benchcompare diffs two BENCH_harness.json reports (as produced
// by tools/benchjson) and prints per-benchmark ns/op, B/op, and allocs/op
// deltas plus the derived-metric changes. CI runs it as a non-blocking
// report step comparing a fresh bench run against the committed baseline,
// so performance regressions show up in the log before anyone has to
// bisect them.
//
// Usage:
//
//	go run ./tools/benchcompare [-max-regress PCT] OLD.json NEW.json
//
// By default exit status is 0 whenever both inputs parse; the
// comparison itself never fails the build — it is a report, not a gate.
// With -max-regress set to a positive percentage, any paired
// benchmark's ns/op regressing by more than that threshold turns the
// report into a gate: the offenders are listed and the exit status is
// nonzero, so CI can opt in to blocking on real slowdowns while the
// default stays advisory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchmark mirrors tools/benchjson's Benchmark (decoded, not imported:
// the tools stay self-contained single-package commands).
type benchmark struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics"`
}

// report mirrors tools/benchjson's Report.
type report struct {
	Benchmarks []benchmark        `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived"`
	Notes      []string           `json:"notes"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchcompare", flag.ContinueOnError)
	fs.SetOutput(out)
	maxRegress := fs.Float64("max-regress", 0,
		"fail when any paired benchmark's ns/op regresses more than this percentage (0 disables the gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchcompare [-max-regress PCT] OLD.json NEW.json")
	}
	oldRep, err := load(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(0), err)
	}
	newRep, err := load(fs.Arg(1))
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(1), err)
	}
	regressed := Compare(out, oldRep, newRep)
	if *maxRegress > 0 {
		var over []string
		for _, r := range regressed {
			if r.pct > *maxRegress {
				over = append(over, fmt.Sprintf("%s +%.1f%%", r.name, r.pct))
			}
		}
		if len(over) > 0 {
			return fmt.Errorf("ns/op regressions beyond %.1f%%: %s", *maxRegress, strings.Join(over, ", "))
		}
	}
	return nil
}

// regression is one paired benchmark whose ns/op got slower.
type regression struct {
	name string
	pct  float64
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmarks in report")
	}
	return &rep, nil
}

// baseName strips a benchmark's -N GOMAXPROCS suffix so reports from
// runners with different core counts still pair up.
func baseName(name string) string {
	if j := strings.LastIndex(name, "-"); j > 0 {
		if _, err := strconv.Atoi(name[j+1:]); err == nil {
			return name[:j]
		}
	}
	return name
}

// delta formats an old -> new change with its relative move. A zero old
// value (metric absent) renders as "new" only.
func delta(oldV, newV float64, unit string) string {
	if oldV == 0 {
		return fmt.Sprintf("%s: %s (new)", unit, humanize(newV))
	}
	pct := (newV - oldV) / oldV * 100
	return fmt.Sprintf("%s: %s -> %s (%+.1f%%)", unit, humanize(oldV), humanize(newV), pct)
}

// humanize renders a value compactly without losing small magnitudes.
func humanize(v float64) string {
	switch {
	case math.Abs(v) >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case math.Abs(v) >= 1e4:
		return fmt.Sprintf("%.3gk", v/1e3)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}

// Compare writes the per-benchmark and derived-metric diff and returns
// the paired benchmarks whose ns/op regressed, for the -max-regress
// gate.
func Compare(out io.Writer, oldRep, newRep *report) []regression {
	var regressed []regression
	oldBy := map[string]benchmark{}
	for _, b := range oldRep.Benchmarks {
		oldBy[baseName(b.Name)] = b
	}
	for _, nb := range newRep.Benchmarks {
		name := baseName(nb.Name)
		ob, ok := oldBy[name]
		if !ok {
			fmt.Fprintf(out, "%s: new benchmark (%s ns/op)\n", name, humanize(nb.NsPerOp))
			continue
		}
		delete(oldBy, name)
		if ob.NsPerOp > 0 && nb.NsPerOp > ob.NsPerOp {
			regressed = append(regressed, regression{name: name, pct: (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100})
		}
		parts := []string{delta(ob.NsPerOp, nb.NsPerOp, "ns/op")}
		if ob.AllocsPerOp != 0 || nb.AllocsPerOp != 0 {
			parts = append(parts, delta(ob.AllocsPerOp, nb.AllocsPerOp, "allocs/op"))
		}
		if ob.BytesPerOp != 0 || nb.BytesPerOp != 0 {
			parts = append(parts, delta(ob.BytesPerOp, nb.BytesPerOp, "B/op"))
		}
		fmt.Fprintf(out, "%s: %s\n", name, strings.Join(parts, ", "))
	}
	var gone []string
	for name := range oldBy {
		gone = append(gone, name)
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(out, "%s: removed\n", name)
	}

	var keys []string
	for k := range newRep.Derived {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		oldV, had := oldRep.Derived[k]
		newV := newRep.Derived[k]
		// A flagged baseline (e.g. a "speedup" measured at GOMAXPROCS=1)
		// is not a reference point: report the fresh value on its own
		// instead of presenting the move as a regression or improvement.
		if !strings.HasSuffix(k, "_flagged") && oldRep.Derived[k+"_flagged"] == 1 {
			fmt.Fprintf(out, "derived %s: %s (baseline was flagged, not a comparison baseline)\n", k, humanize(newV))
			continue
		}
		if !had {
			fmt.Fprintf(out, "derived %s: %s (new)\n", k, humanize(newV))
		} else if oldV != newV {
			fmt.Fprintf(out, "derived %s: %s -> %s\n", k, humanize(oldV), humanize(newV))
		}
	}
	for _, n := range newRep.Notes {
		fmt.Fprintf(out, "note: %s\n", n)
	}
	return regressed
}
