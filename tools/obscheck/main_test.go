package main

import (
	"strings"
	"testing"
)

func TestValidateTrace(t *testing.T) {
	good := `{"displayTimeUnit":"ms","traceEvents":[
{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"queries"}},
{"name":"arrival q1","ph":"i","pid":0,"tid":0,"ts":100,"s":"t"},
{"name":"query q1","ph":"X","pid":0,"tid":0,"ts":100,"dur":50}
]}`
	if err := validateTrace(strings.NewReader(good)); err != nil {
		t.Errorf("good trace rejected: %v", err)
	}
	bad := []struct{ name, doc string }{
		{"not json", `{"traceEvents":`},
		{"wrong unit", `{"displayTimeUnit":"ns","traceEvents":[{"name":"a","ph":"i","pid":0,"tid":0,"ts":1}]}`},
		{"empty", `{"displayTimeUnit":"ms","traceEvents":[]}`},
		{"bad phase", `{"displayTimeUnit":"ms","traceEvents":[{"name":"a","ph":"Z","pid":0,"tid":0,"ts":1}]}`},
		{"missing ts", `{"displayTimeUnit":"ms","traceEvents":[{"name":"a","ph":"i","pid":0,"tid":0}]}`},
		{"slice without dur", `{"displayTimeUnit":"ms","traceEvents":[{"name":"a","ph":"X","pid":0,"tid":0,"ts":1}]}`},
	}
	for _, tc := range bad {
		if err := validateTrace(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestValidateProm(t *testing.T) {
	good := `# HELP tg_tasks_total Tasks dispatched.
# TYPE tg_tasks_total counter
tg_tasks_total 40
# TYPE tg_query_latency_ms summary
tg_query_latency_ms{quantile="0.99"} 12.5
tg_query_latency_ms_sum 100.25
tg_query_latency_ms_count 8
# TYPE tg_queue_depth gauge
tg_queue_depth{node="0"} +Inf
`
	if err := validateProm(strings.NewReader(good)); err != nil {
		t.Errorf("good exposition rejected: %v", err)
	}
	bad := []struct{ name, doc string }{
		{"empty", ""},
		{"untyped sample", "tg_tasks_total 40\n"},
		{"bad value", "# TYPE a counter\na fortytwo\n"},
		{"bad kind", "# TYPE a thing\na 1\n"},
		{"duplicate type", "# TYPE a counter\n# TYPE a counter\na 1\n"},
		{"malformed comment", "# NOPE a counter\na 1\n"},
	}
	for _, tc := range bad {
		if err := validateProm(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
