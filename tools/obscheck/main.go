// Command obscheck validates TailGuard observability artifacts. CI uses it
// to fail on malformed exposition or trace output; operators can point it
// at tgsim -obs dumps.
//
// Usage:
//
//	obscheck -trace obsout/trace_TailGuard.json   # validate a Chrome trace
//	obscheck -prom obsout/metrics_TailGuard.prom  # validate Prometheus text
//	obscheck -live                                # boot an in-process SaS
//	                                              # handler, fetch /metrics
//	                                              # and /debug/queues over
//	                                              # real HTTP, validate both
//
// Exit status 0 means every requested artifact is well formed.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"

	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/obs"
	"tailguard/internal/saas"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("obscheck", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "validate this Chrome trace_event JSON file")
	promPath := fs.String("prom", "", "validate this Prometheus text exposition file")
	live := fs.Bool("live", false, "boot an in-process handler and validate its live /metrics and /debug/queues")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" && *promPath == "" && !*live {
		return fmt.Errorf("nothing to do: pass -trace, -prom, and/or -live")
	}
	if *tracePath != "" {
		if err := checkFile(*tracePath, validateTrace); err != nil {
			return err
		}
		fmt.Printf("trace %s: ok\n", *tracePath)
	}
	if *promPath != "" {
		if err := checkFile(*promPath, validateProm); err != nil {
			return err
		}
		fmt.Printf("prom %s: ok\n", *promPath)
	}
	if *live {
		if err := checkLive(); err != nil {
			return err
		}
	}
	return nil
}

func checkFile(path string, validate func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := validate(f); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// traceEvent is the subset of the Chrome trace_event schema obscheck
// verifies.
type traceEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Pid  *int     `json:"pid"`
	Tid  *int     `json:"tid"`
	Ts   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
}

// validTracePhases are the phases the exporter emits.
var validTracePhases = map[string]bool{"M": true, "i": true, "X": true, "C": true}

// validateTrace checks the envelope and per-event invariants of a Chrome
// trace_event JSON document.
func validateTrace(r io.Reader) error {
	var doc struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		return fmt.Errorf("displayTimeUnit = %q, want \"ms\"", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("no trace events")
	}
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("event %d: empty name", i)
		}
		if !validTracePhases[e.Ph] {
			return fmt.Errorf("event %d (%s): unknown phase %q", i, e.Name, e.Ph)
		}
		if e.Pid == nil || e.Tid == nil {
			return fmt.Errorf("event %d (%s): missing pid/tid", i, e.Name)
		}
		if e.Ph != "M" {
			if e.Ts == nil || *e.Ts < 0 {
				return fmt.Errorf("event %d (%s): missing or negative ts", i, e.Name)
			}
		}
		if e.Ph == "X" && (e.Dur == nil || *e.Dur < 0) {
			return fmt.Errorf("event %d (%s): complete event without non-negative dur", i, e.Name)
		}
	}
	return nil
}

var (
	promHelpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$`)
)

// validateProm checks Prometheus text exposition (format 0.0.4): every
// line is a HELP/TYPE comment or a sample, every sample's family was
// TYPE-declared first, and every value parses as a float.
func validateProm(r io.Reader) error {
	typed := map[string]string{} // family -> kind
	samples := 0
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if promHelpRe.MatchString(text) {
				continue
			}
			if m := promTypeRe.FindStringSubmatch(text); m != nil {
				if _, dup := typed[m[1]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", line, m[1])
				}
				typed[m[1]] = m[2]
				continue
			}
			return fmt.Errorf("line %d: malformed comment: %s", line, text)
		}
		m := promSampleRe.FindStringSubmatch(text)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample: %s", line, text)
		}
		family := m[1]
		for _, suffix := range []string{"_sum", "_count", "_bucket"} {
			base := strings.TrimSuffix(family, suffix)
			if base != family {
				if k, ok := typed[base]; ok && (k == "summary" || k == "histogram") {
					family = base
				}
				break
			}
		}
		if _, ok := typed[family]; !ok {
			return fmt.Errorf("line %d: sample %s precedes its TYPE declaration", line, m[1])
		}
		if _, err := strconv.ParseFloat(m[3], 64); err != nil {
			return fmt.Errorf("line %d: bad sample value %q", line, m[3])
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples")
	}
	return nil
}

// liveNodes is the in-process cluster size for -live (kept tiny: obscheck
// verifies plumbing, not performance).
const liveNodes = 2

// checkLive boots a minimal in-process handler, pushes a small workload
// through it, serves its DebugMux on a loopback listener, and validates
// the live /metrics and /debug/queues responses plus a Chrome trace built
// from the run's lifecycle events.
func checkLive() error {
	start, _ := saas.DefaultStoreSpan()
	end := start.AddDate(0, 0, 30)
	edges := make([]*saas.EdgeNode, liveNodes)
	defer func() {
		for _, e := range edges {
			if e != nil {
				_ = e.Close()
			}
		}
	}()
	for i := range edges {
		store, err := saas.NewStore(saas.StoreConfig{Start: start, End: end, Interval: 6 * time.Hour, Node: i})
		if err != nil {
			return err
		}
		edges[i], err = saas.NewEdgeNode(saas.EdgeConfig{
			ID:    i,
			Store: store,
			Delay: dist.Deterministic{V: 0},
			Seed:  int64(i),
		})
		if err != nil {
			return err
		}
	}
	classes, err := saas.SaSClasses(100)
	if err != nil {
		return err
	}
	est, err := core.NewTailEstimator(liveNodes, dist.Deterministic{V: 1}, 100, 0)
	if err != nil {
		return err
	}
	ring, err := obs.NewLockedRing(4096)
	if err != nil {
		return err
	}
	refs := make([]saas.NodeRef, len(edges))
	for i, e := range edges {
		refs[i] = e.Ref()
	}
	handler, err := saas.NewHandler(saas.HandlerConfig{
		Nodes:     refs,
		Spec:      core.TFEDFQ,
		Classes:   classes,
		Estimator: est,
		Obs:       obs.NewTracer(obs.TracerConfig{Sink: ring}),
	})
	if err != nil {
		return err
	}

	const queries = 10
	from := start.Unix()
	to := start.Add(24 * time.Hour).Unix()
	for i := 0; i < queries; i++ {
		q := saas.Query{
			ID:     int64(i),
			Class:  0,
			Nodes:  []int{i % liveNodes, (i + 1) % liveNodes},
			FromTs: []int64{from, from},
			ToTs:   []int64{to, to},
		}
		if err := handler.Submit(q); err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
	}
	handler.Drain()
	if err := handler.Close(); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: handler.DebugMux()}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	body, err := fetch(base + "/metrics")
	if err != nil {
		return err
	}
	if err := validateProm(bytes.NewReader(body)); err != nil {
		return fmt.Errorf("live /metrics: %w", err)
	}
	if !bytes.Contains(body, []byte("tg_tasks_total")) {
		return fmt.Errorf("live /metrics: missing tg_tasks_total")
	}
	fmt.Println("live /metrics: ok")

	body, err = fetch(base + "/debug/queues")
	if err != nil {
		return err
	}
	var dbg saas.QueuesDebug
	if err := json.Unmarshal(body, &dbg); err != nil {
		return fmt.Errorf("live /debug/queues: not JSON: %w", err)
	}
	if len(dbg.Queues) != liveNodes {
		return fmt.Errorf("live /debug/queues: %d queues, want %d", len(dbg.Queues), liveNodes)
	}
	if dbg.Tasks != 2*queries {
		return fmt.Errorf("live /debug/queues: tasks = %d, want %d", dbg.Tasks, 2*queries)
	}
	fmt.Println("live /debug/queues: ok")

	var trace bytes.Buffer
	if err := obs.WriteChromeTrace(&trace, ring.Snapshot(nil)); err != nil {
		return err
	}
	if err := validateTrace(bytes.NewReader(trace.Bytes())); err != nil {
		return fmt.Errorf("live trace: %w", err)
	}
	fmt.Println("live trace: ok")
	return nil
}

func fetch(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}
