package main

import (
	"reflect"
	"sort"
	"testing"

	"tailguard/tools/tglint/internal/checks"
)

// TestDriversShareOneRegistry locks the invariant documented in
// driver.go: the standalone and vettool drivers consume the single
// shared suite, so an analyzer registered in internal/checks.All runs
// in both modes or in neither. The suite must also be well-formed —
// unique names, docs for SARIF rule metadata, sorted so reports and
// the -sarif rule table are stable across runs.
func TestDriversShareOneRegistry(t *testing.T) {
	fromChecks := checks.All()
	if len(suite) != len(fromChecks) {
		t.Fatalf("shared suite has %d analyzers, checks.All() has %d; both drivers must consume the same var",
			len(suite), len(fromChecks))
	}
	for i, a := range suite {
		if a.Name != fromChecks[i].Name {
			t.Errorf("suite[%d] = %q, checks.All()[%d] = %q", i, a.Name, i, fromChecks[i].Name)
		}
	}

	seen := make(map[string]bool)
	for _, a := range suite {
		if a.Name == "" {
			t.Error("analyzer with empty name in suite")
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc; SARIF rules require one", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("analyzer name %q registered twice", a.Name)
		}
		seen[a.Name] = true
	}
	if !sort.SliceIsSorted(suite, func(i, j int) bool { return suite[i].Name < suite[j].Name }) {
		t.Error("suite is not sorted by name; report and rule-table order would drift")
	}

	for _, name := range []string{"detflow", "lockorder", "hotalloc", "maporder"} {
		if !seen[name] {
			t.Errorf("interprocedural analyzer %q missing from suite", name)
		}
	}
}

// TestFactRegistryCoversSuite: every fact type any analyzer declares
// must deserialize through the shared registry, or the vettool driver
// silently drops cross-package facts for that analyzer.
func TestFactRegistryCoversSuite(t *testing.T) {
	total := 0
	for _, a := range suite {
		total += len(a.FactTypes)
	}
	if total == 0 {
		t.Fatal("no analyzer declares fact types; the interprocedural suite requires facts")
	}
	if len(factRegistry) == 0 {
		t.Fatal("factRegistry is empty")
	}
	for _, a := range suite {
		for _, ft := range a.FactTypes {
			typ := reflect.TypeOf(ft)
			for typ.Kind() == reflect.Pointer {
				typ = typ.Elem()
			}
			if _, ok := factRegistry[typ.String()]; !ok {
				t.Errorf("fact type %s of analyzer %q missing from factRegistry", typ, a.Name)
			}
		}
	}
}

// TestSuiteRulesMirrorSuite: SARIF rule metadata covers every analyzer.
func TestSuiteRulesMirrorSuite(t *testing.T) {
	rules := suiteRules()
	if len(rules) != len(suite) {
		t.Fatalf("suiteRules() has %d entries, suite has %d", len(rules), len(suite))
	}
	for i, r := range rules {
		if r.ID != suite[i].Name {
			t.Errorf("rules[%d].ID = %q, want %q", i, r.ID, suite[i].Name)
		}
		if r.Doc != suite[i].Doc {
			t.Errorf("rules[%d].Doc mismatch for %q", i, r.ID)
		}
	}
}
