// Command tglint runs TailGuard's custom determinism and concurrency
// analyzers (see internal/checks) in either of two modes:
//
//	tglint ./...            standalone: walk the module, type-check from
//	                        source, print findings (CI convenience, no
//	                        build cache required)
//	go vet -vettool=$(bin)  unitchecker: speak cmd/go's vet protocol
//	                        (-flags, -V=full, path/to/vet.cfg), which
//	                        also covers _test.go files and caches per
//	                        package
//
// Exit status is 1 when any diagnostic is reported, 2 on operational
// errors, 0 otherwise.
package main

import (
	"fmt"
	"os"
	"strings"
)

func main() {
	args := os.Args[1:]

	// cmd/go probes the tool before use: `-flags` must print a JSON
	// description of supported flags, `-V=full` a content-addressed
	// version line for the build cache.
	for _, arg := range args {
		switch {
		case arg == "-flags" || arg == "--flags":
			printFlagsJSON()
			return
		case arg == "-V" || arg == "-V=full" || arg == "--V=full":
			printVersion()
			return
		}
	}

	// A single argument ending in .cfg is cmd/go handing us a vet unit.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}

	os.Exit(runStandalone(args))
}

// printVersion emits the -V=full protocol line. The buildID hashes the
// executable so cmd/go's action cache invalidates when tglint changes.
func printVersion() {
	id, err := selfHash()
	if err != nil {
		fmt.Printf("tglint version devel\n")
		return
	}
	fmt.Printf("tglint version devel buildID=%s\n", id)
}

// printFlagsJSON describes our flags to `go vet` (it validates user
// flags against this list before invoking us per package).
func printFlagsJSON() {
	fmt.Println(`[]`)
}
