// Package morder exercises maporder: map range loops whose iteration
// order escapes into order-sensitive sinks are flagged; the
// collect-then-sort idiom and order-insensitive uses are not.
package morder

import (
	"fmt"
	"io"
	"sort"
)

// Registry wraps a map behind a struct, for the selector-target case.
type Registry struct {
	series map[string]int
	names  []string
}

// SortedKeys is the canonical idiom: append then sort. Clean.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// UnsortedKeys never sorts what it collected.
func UnsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order reaches append into keys \(never sorted\)"
		keys = append(keys, k)
	}
	return keys
}

// Snapshot appends into a struct field and sorts that field later —
// the sorted-target match must compare expressions structurally, not
// just bare identifiers. Clean.
func (r *Registry) Snapshot() []string {
	r.names = r.names[:0]
	for name := range r.series {
		r.names = append(r.names, name)
	}
	sort.Strings(r.names)
	return r.names
}

// Dump streams entries in iteration order.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m { // want "map iteration order reaches a Fprintf call \(stream output\)"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Publish sends keys into a channel in iteration order.
func Publish(m map[string]int, ch chan string) {
	for k := range m { // want "map iteration order reaches a channel send"
		ch <- k
	}
}

// FirstError returns out of the loop carrying the key.
func FirstError(m map[string]int) error {
	for k, v := range m { // want "map iteration order reaches a return value"
		if v < 0 {
			return fmt.Errorf("negative count for %s", k)
		}
	}
	return nil
}

// Total accumulates without ordering: nothing order-sensitive, clean.
func Total(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert writes into another map: key-addressed, order-free. Clean.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
