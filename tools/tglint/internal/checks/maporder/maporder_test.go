package maporder_test

import (
	"testing"

	"tailguard/tools/tglint/internal/checks/maporder"
	"tailguard/tools/tglint/internal/lint/linttest"
)

func TestMaporder(t *testing.T) {
	linttest.Run(t, ".", maporder.Analyzer, "tailguard/internal/morder")
}
