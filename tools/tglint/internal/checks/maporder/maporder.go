// Package maporder flags map iteration whose order leaks into
// order-sensitive sinks. Go randomizes map range order per iteration, so
// any `for k := range m` that appends to a slice, writes to an output
// stream, sends on a channel, or returns range-derived values produces a
// different ordering every run — the single most common way determinism
// regressions enter this codebase (golden tables, CSV exports, metrics
// snapshots all traverse maps).
//
// The canonical fix is collect-then-sort, and the analyzer recognizes it:
// a slice appended to inside the range is exempt if the function later
// passes the same expression (compared structurally, so `fs.series` and
// sorted struct fields match too) to a sort.* or slices.Sort* call, or if
// the loop ranges over an already-sorted key slice instead. Everything
// else — direct fmt.Fprintf/Write calls inside the range, channel sends,
// returning a range variable — is reported at the range statement.
//
// detflow covers the interprocedural half of this story (a map-ordered
// slice *returned* across packages); maporder is the local, always-on
// half that applies to every package, not just the deterministic core.
package maporder

import (
	"go/ast"
	"go/types"

	"tailguard/tools/tglint/internal/lint"
)

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "maporder",
	Doc:  "flag map range loops whose iteration order reaches slices, writers, channels, or return values without a deterministic sort",
	Run:  run,
}

// sortFuncs are the sorting entry points recognized as the second half
// of collect-then-sort.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// writerMethods are stream-output calls whose emission order is the
// iteration order.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *lint.Pass, fn *ast.FuncDecl) {
	sorted := sortedExprs(pass, fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if sink := orderSink(pass, rng, sorted); sink != "" {
			pass.Reportf(rng.Pos(),
				"map iteration order reaches %s; collect the keys, sort them, and iterate the sorted slice (determinism contract)",
				sink)
		}
		return true
	})
}

// sortedExprs collects the structural renderings of every expression the
// function passes to a sorting call — appends into these are exempt.
func sortedExprs(pass *lint.Pass, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if names := sortFuncs[fn.Pkg().Path()]; names != nil && names[fn.Name()] {
			out[types.ExprString(call.Args[0])] = true
		}
		return true
	})
	return out
}

// orderSink scans one map-range body for order-sensitive sinks and names
// the first one found ("" when the loop is order-safe).
func orderSink(pass *lint.Pass, rng *ast.RangeStmt, sorted map[string]bool) string {
	rangeVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				rangeVars[obj] = true
			}
		}
	}
	usesRangeVar := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && rangeVars[pass.TypesInfo.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}

	sink := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rng {
				return true // nested ranges report themselves
			}
		case *ast.SendStmt:
			if usesRangeVar(n.Value) {
				sink = "a channel send"
				return false
			}
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				if usesRangeVar(e) {
					sink = "a return value"
					return false
				}
			}
		case *ast.CallExpr:
			if s := callSink(pass, n, sorted, usesRangeVar); s != "" {
				sink = s
				return false
			}
		}
		return true
	})
	return sink
}

// callSink classifies a call inside the range body: an append into an
// unsorted slice, or a writer-method call carrying a range variable.
func callSink(pass *lint.Pass, call *ast.CallExpr, sorted map[string]bool, usesRangeVar func(ast.Expr) bool) string {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" {
			if len(call.Args) < 2 {
				return ""
			}
			carries := false
			for _, a := range call.Args[1:] {
				if usesRangeVar(a) {
					carries = true
				}
			}
			if !carries {
				return ""
			}
			if sorted[types.ExprString(call.Args[0])] {
				return "" // collect-then-sort: the append target is sorted later
			}
			return "append into " + types.ExprString(call.Args[0]) + " (never sorted)"
		}
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !writerMethods[sel.Sel.Name] {
		return ""
	}
	for _, a := range call.Args {
		if usesRangeVar(a) {
			return "a " + sel.Sel.Name + " call (stream output)"
		}
	}
	return ""
}
