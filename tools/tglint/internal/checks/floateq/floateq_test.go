package floateq_test

import (
	"testing"

	"tailguard/tools/tglint/internal/checks/floateq"
	"tailguard/tools/tglint/internal/lint/linttest"
)

func TestFloateqFiresInDist(t *testing.T) {
	linttest.Run(t, ".", floateq.Analyzer, "tailguard/internal/dist")
}

func TestFloateqSilentOutsideScope(t *testing.T) {
	linttest.Run(t, ".", floateq.Analyzer, "tailguard/internal/metrics")
}
