// Package floateq forbids exact float equality in the quantile/CDF math
// packages (internal/dist, internal/analytic). Bisection solvers,
// bucketed histograms, and closed-form quantile inversions all accumulate
// rounding error; `a == b` between two computed float64 values is almost
// always a latent bug there. Use the epsilon helpers (dist.NearlyEqual)
// or restructure around ordered comparisons.
//
// Two comparisons stay legal:
//   - against a compile-time constant (e.g. `total == 0`, `p != 1`):
//     sentinel checks against exactly-representable values are
//     well-defined and pervasive;
//   - inside _test.go files, where golden values are compared exactly on
//     purpose.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tailguard/tools/tglint/internal/lint"
)

// Packages lists where the rule applies (after test-variant
// normalization).
var Packages = []string{
	"tailguard/internal/dist",
	"tailguard/internal/analytic",
}

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "floateq",
	Doc:  "forbid exact ==/!= between computed floats in quantile/CDF math; use epsilon helpers",
	Run:  run,
}

func applies(pkgPath string) bool {
	for _, p := range Packages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func run(pass *lint.Pass) error {
	if !applies(pass.PkgPath()) {
		return nil
	}
	pass.Preorder(func(n ast.Node) {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return
		}
		if pass.InTestFile(be.Pos()) {
			return
		}
		tx := pass.TypesInfo.Types[be.X]
		ty := pass.TypesInfo.Types[be.Y]
		if tx.Type == nil || ty.Type == nil {
			return
		}
		if !isFloat(tx.Type) && !isFloat(ty.Type) {
			return
		}
		if tx.Value != nil || ty.Value != nil {
			return // sentinel comparison against a compile-time constant
		}
		pass.Reportf(be.OpPos,
			"exact float comparison (%s) between computed values in %s; use dist.NearlyEqual or an ordered comparison",
			be.Op, pass.PkgPath())
	})
	return nil
}
