package dist

// Bad compares computed floats exactly.
func Bad(a, b float64) bool {
	if a == b*2 { // want "exact float comparison"
		return true
	}
	return a+1 != b // want "exact float comparison"
}

// OK: sentinel comparisons against compile-time constants and ordered
// comparisons stay legal.
func OK(a, b float64) bool {
	if a == 0 || b != 1 {
		return false
	}
	return a <= b
}
