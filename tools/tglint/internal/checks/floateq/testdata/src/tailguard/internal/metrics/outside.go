package metrics

// Exact reports float equality; internal/metrics is outside floateq's
// scope, so this must not be flagged.
func Exact(a, b float64) bool { return a == b }
