package lockorder_test

import (
	"testing"

	"tailguard/tools/tglint/internal/checks/lockorder"
	"tailguard/tools/tglint/internal/lint/linttest"
)

// TestLockorderCrossPackage analyzes locka, whose every diagnostic
// depends on facts imported from lockb: the acquisition-order cycle
// needs lockb's EdgesFact, and the held-across-blocking-call case needs
// WaitForSignal's BlockingFact.
func TestLockorderCrossPackage(t *testing.T) {
	linttest.Run(t, ".", lockorder.Analyzer, "tailguard/internal/locka")
}

// TestLockorderCleanProducer analyzes lockb alone: consistent order and
// a blocking function with no lock held — facts exported, no findings.
func TestLockorderCleanProducer(t *testing.T) {
	linttest.Run(t, ".", lockorder.Analyzer, "tailguard/internal/lockb")
}
