// Package lockorder verifies the repository's cross-package lock
// discipline. It builds a mutex acquisition graph from two inputs:
// observed nesting (a sync Lock/RLock call made while another sync mutex
// is held, tracked by a linear, flow-insensitive walk of each function
// body) and declared order (`//tg:lockorder A < B` comments, which
// assert A is always acquired before B). Edges are exported as a package
// fact and re-exported transitively, so the graph spans the whole module:
// a cycle — two packages acquiring the same two mutexes in opposite
// orders, the classic cross-subsystem deadlock — is reported in the
// package whose edge completes it.
//
// The second check is *hold-across-blocking*: while any sync mutex is
// held, the function must not perform an operation that can block
// indefinitely — a channel send/receive, a select without default, a
// range over a channel, time.Sleep, WaitGroup.Wait, a network call, or a
// call to any function that (transitively, via BlockingFact) does one of
// these. A mutex held across such an operation couples unrelated
// goroutines' progress and is how tail latency turns into deadlock under
// fault injection.
//
// Mutex identity is structural, not instance-based: `pkg.Type.field` for
// struct-field mutexes (whatever the receiver expression), `pkg.var` for
// package-level mutexes. Function-local mutexes participate in the
// held-set but never in the exported graph. The walk ignores goroutine
// bodies (`go func(){...}`) — they do not run under the caller's locks —
// and treats deferred unlocks as holding to function end. Test files are
// skipped.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"tailguard/tools/tglint/internal/lint"
)

// LockEdge is one acquisition-order edge: To was (or must be, for
// declared edges) acquired while From was held.
type LockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	// Where records the function (pkg.Func) that observed or declared the
	// edge, for cycle reports.
	Where string `json:"where"`
}

// EdgesFact is the package fact carrying the acquisition graph: this
// package's own edges plus every edge imported from its dependencies, so
// consumers need no transitive walk.
type EdgesFact struct {
	Edges []LockEdge `json:"edges"`
}

// AFact implements lint.Fact.
func (*EdgesFact) AFact() {}

// BlockingFact marks a function that may block indefinitely.
type BlockingFact struct {
	Why string `json:"why"`
}

// AFact implements lint.Fact.
func (*BlockingFact) AFact() {}

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name:      "lockorder",
	Doc:       "cross-package mutex acquisition graph: report lock-order cycles (deadlocks) and mutexes held across blocking operations",
	Run:       run,
	FactTypes: []lint.Fact{(*EdgesFact)(nil), (*BlockingFact)(nil)},
}

var declRe = regexp.MustCompile(`^//tg:lockorder\s+(\S+)\s*<\s*(\S+)\s*$`)

// mutexRef identifies one mutex in the held-set.
type mutexRef struct {
	key        string // graph key; unique per local for unexported refs
	exportable bool   // participates in the cross-package graph
	pos        token.Pos
}

// funcInfo is the per-function fixpoint state for blocking propagation.
type funcInfo struct {
	decl     *ast.FuncDecl
	obj      *types.Func
	blocking string // why the function may block ("" if it does not)
}

// checker carries one package's analysis.
type checker struct {
	pass   *lint.Pass
	byObj  map[*types.Func]*funcInfo
	edges  []LockEdge              // observed in this package
	posOf  map[[2]string]token.Pos // first observation position per edge
	report bool                    // diagnostics enabled for this walk
}

func run(pass *lint.Pass) error {
	c := &checker{
		pass:  pass,
		byObj: make(map[*types.Func]*funcInfo),
		posOf: make(map[[2]string]token.Pos),
	}
	var funcs []*funcInfo
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			fi := &funcInfo{decl: fn, obj: obj}
			funcs = append(funcs, fi)
			if obj != nil {
				c.byObj[obj] = fi
			}
		}
	}

	// Blocking fixpoint: a function blocks if its body blocks or it calls
	// a blocking function (same package via this loop, cross-package via
	// facts). Diagnostics are deferred to a final reporting walk so each
	// hold-across-blocking site is reported exactly once.
	for iter := 0; iter <= len(funcs); iter++ {
		changed := false
		for _, fi := range funcs {
			w := c.walk(fi, false)
			if w.blockReason != fi.blocking {
				fi.blocking = w.blockReason
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	c.report = true
	for _, fi := range funcs {
		c.walk(fi, true)
	}

	// Assemble the graph: imported edges, declared edges, observed edges.
	imported := c.importedEdges()
	declared := c.declaredEdges()
	local := append(append([]LockEdge(nil), declared...), c.edges...)
	c.reportCycles(local, imported)

	// Export facts.
	all := dedupeEdges(append(append([]LockEdge(nil), imported...), local...))
	if len(all) > 0 {
		c.pass.ExportPackageFact(&EdgesFact{Edges: all})
	}
	for _, fi := range funcs {
		if fi.blocking != "" && fi.obj != nil {
			c.pass.ExportObjectFact(fi.obj, &BlockingFact{Why: fi.blocking})
		}
	}
	return nil
}

// importedEdges merges the EdgesFacts of every import.
func (c *checker) importedEdges() []LockEdge {
	var out []LockEdge
	imps := c.pass.Pkg.Imports()
	paths := make([]string, 0, len(imps))
	for _, imp := range imps {
		paths = append(paths, imp.Path())
	}
	sort.Strings(paths)
	for _, p := range paths {
		var fact EdgesFact
		if c.pass.ImportPackageFact(p, &fact) {
			out = append(out, fact.Edges...)
		}
	}
	return dedupeEdges(out)
}

// declaredEdges parses `//tg:lockorder A < B` comments. Shorthand names
// (no '/') are qualified with the current package path.
func (c *checker) declaredEdges() []LockEdge {
	var out []LockEdge
	qualify := func(name string) string {
		if strings.Contains(name, "/") {
			return name
		}
		return c.pass.PkgPath() + "." + name
	}
	for _, file := range c.pass.Files {
		if c.pass.InTestFile(file.Pos()) {
			continue
		}
		for _, cg := range file.Comments {
			for _, cm := range cg.List {
				m := declRe.FindStringSubmatch(cm.Text)
				if m == nil {
					continue
				}
				out = append(out, LockEdge{
					From:  qualify(m[1]),
					To:    qualify(m[2]),
					Where: c.pass.PkgPath() + " (declared)",
				})
				if _, ok := c.posOf[[2]string{qualify(m[1]), qualify(m[2])}]; !ok {
					c.posOf[[2]string{qualify(m[1]), qualify(m[2])}] = cm.Pos()
				}
			}
		}
	}
	return out
}

// dedupeEdges drops duplicate (From, To) pairs, keeping the first Where.
func dedupeEdges(edges []LockEdge) []LockEdge {
	seen := make(map[[2]string]bool, len(edges))
	out := edges[:0:0]
	for _, e := range edges {
		k := [2]string{e.From, e.To}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// reportCycles reports every local edge that completes a cycle in the
// combined graph. Cycles made purely of imported edges were already
// reported where they arose.
func (c *checker) reportCycles(local, imported []LockEdge) {
	all := dedupeEdges(append(append([]LockEdge(nil), imported...), local...))
	adj := make(map[string][]LockEdge)
	// Declared edges (here or in any dependency) are the sanctioned
	// direction: when a cycle exists, report the acquisitions that
	// contradict a declaration, not the ones that follow it.
	sanctioned := make(map[[2]string]bool)
	for _, e := range all {
		adj[e.From] = append(adj[e.From], e)
		if strings.HasSuffix(e.Where, "(declared)") {
			sanctioned[[2]string{e.From, e.To}] = true
		}
	}
	reported := make(map[[2]string]bool)
	for _, e := range dedupeEdges(local) {
		k := [2]string{e.From, e.To}
		if reported[k] || sanctioned[k] {
			continue
		}
		if path := findPath(adj, e.To, e.From); path != nil {
			reported[k] = true
			pos := c.posOf[k]
			c.pass.Reportf(pos,
				"lock-order cycle: acquiring %s while holding %s, but %s is reachable from %s (%s); a concurrent caller deadlocks",
				e.To, e.From, e.From, e.To, strings.Join(path, " -> "))
		}
	}
}

// findPath returns the node path from -> ... -> to, or nil.
func findPath(adj map[string][]LockEdge, from, to string) []string {
	type item struct {
		node string
		path []string
	}
	visited := map[string]bool{from: true}
	queue := []item{{from, []string{from}}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.node == to {
			return it.path
		}
		for _, e := range adj[it.node] {
			if visited[e.To] {
				continue
			}
			visited[e.To] = true
			queue = append(queue, item{e.To, append(append([]string(nil), it.path...), e.To)})
		}
	}
	return nil
}

// walker tracks the held-mutex stack through one function body.
type walker struct {
	c           *checker
	fi          *funcInfo
	held        []mutexRef
	blockReason string
	report      bool
	localSeq    int
}

// walk analyzes one function body; report enables diagnostics and edge
// recording (the fixpoint pre-passes only compute blockReason).
func (c *checker) walk(fi *funcInfo, report bool) *walker {
	w := &walker{c: c, fi: fi, report: report}
	w.stmt(fi.decl.Body)
	return w
}

func (w *walker) where() string {
	return w.c.pass.PkgPath() + "." + w.fi.decl.Name.Name
}

// blocked records a blocking operation: it propagates to BlockingFact
// and, when a mutex is held, reports the hold-across-blocking site.
func (w *walker) blocked(pos token.Pos, what string) {
	if w.blockReason == "" {
		w.blockReason = what
	}
	if len(w.held) > 0 && w.report {
		h := w.held[len(w.held)-1]
		w.c.pass.Reportf(pos,
			"%s held across blocking %s; a stalled peer keeps the mutex pinned (move the %s outside the critical section)",
			h.key, what, what)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, t := range s.List {
			w.stmt(t)
		}
	case *ast.ExprStmt:
		w.expr(s.X, false)
	case *ast.SendStmt:
		w.expr(s.Chan, false)
		w.expr(s.Value, false)
		w.blocked(s.Pos(), "channel send")
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, false)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, false)
					}
				}
			}
		}
	case *ast.DeferStmt:
		w.expr(s.Call, true)
	case *ast.GoStmt:
		// Runs on its own goroutine, outside the caller's critical section.
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond, false)
		w.stmt(s.Body)
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond, false)
		}
		w.stmt(s.Post)
		w.stmt(s.Body)
	case *ast.RangeStmt:
		if tv, ok := w.c.pass.TypesInfo.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.blocked(s.Pos(), "channel range")
			}
		}
		w.expr(s.X, false)
		w.stmt(s.Body)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag, false)
		}
		w.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Body)
	case *ast.CaseClause:
		for _, t := range s.Body {
			w.stmt(t)
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.blocked(s.Pos(), "select")
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				for _, t := range cc.Body {
					w.stmt(t)
				}
			}
		}
	case *ast.CommClause:
		for _, t := range s.Body {
			w.stmt(t)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, false)
		}
	}
}

// expr scans an expression in source order for lock transitions, channel
// receives, and blocking calls. deferred statements neither transition
// the held-set immediately (a deferred Unlock holds to function end) nor
// count as blocking at this point.
func (w *walker) expr(e ast.Expr, deferred bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed when it runs, not where it is defined
		case *ast.CallExpr:
			w.call(n, deferred)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !deferred {
				w.blocked(n.Pos(), "channel receive")
			}
		}
		return true
	})
}

// call classifies one call: sync mutex transition, known blocking
// callee, or a function with a BlockingFact.
func (w *walker) call(call *ast.CallExpr, deferred bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	var fn *types.Func
	if isSel {
		fn, _ = w.c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	} else if id, ok := call.Fun.(*ast.Ident); ok {
		fn, _ = w.c.pass.TypesInfo.Uses[id].(*types.Func)
	}
	if fn == nil {
		return
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}

	if pkgPath == "sync" && isSel {
		switch fn.Name() {
		case "Lock", "RLock":
			if !deferred {
				w.lock(sel.X, call.Pos())
			}
			return
		case "Unlock", "RUnlock":
			if !deferred {
				w.unlock(sel.X)
			}
			return
		case "Wait": // WaitGroup.Wait, Cond.Wait
			if !deferred {
				w.blocked(call.Pos(), "sync."+w.recvTypeName(sel.X)+".Wait")
			}
			return
		}
	}
	if deferred {
		return
	}
	if pkgPath == "time" && fn.Name() == "Sleep" {
		w.blocked(call.Pos(), "time.Sleep")
		return
	}
	if netBlocking(pkgPath, fn.Name()) {
		w.blocked(call.Pos(), "network call "+pkgPath+"."+fn.Name())
		return
	}
	// Same-package blocking (fixpoint state).
	if fi, ok := w.c.byObj[fn]; ok {
		if fi.blocking != "" {
			w.blocked(call.Pos(), fmt.Sprintf("call to %s (%s)", fn.Name(), rootReason(fi.blocking)))
		}
		return
	}
	// Cross-package blocking (fact transport).
	var fact BlockingFact
	if w.c.pass.ImportObjectFact(fn, &fact) {
		callee := lint.NormalizePkgPath(pkgPath) + "." + lint.ObjectKey(fn)
		w.blocked(call.Pos(), fmt.Sprintf("call to %s (%s)", callee, rootReason(fact.Why)))
	}
}

// rootReason strips nested "call to X (...)" wrappers down to the
// innermost blocking operation.
func rootReason(why string) string {
	for {
		i := strings.LastIndex(why, "(")
		if i < 0 || !strings.HasPrefix(why, "call to ") {
			return why
		}
		why = strings.TrimSuffix(why[i+1:], ")")
	}
}

// netBlocking reports whether pkg.fn is a known network-blocking call.
func netBlocking(pkgPath, name string) bool {
	switch pkgPath {
	case "net/http":
		switch name {
		case "Do", "Get", "Post", "Head", "PostForm",
			"ListenAndServe", "ListenAndServeTLS", "Serve", "Shutdown":
			return true
		}
	case "net":
		return strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen")
	}
	return false
}

// recvTypeName names the receiver's type for diagnostics.
func (w *walker) recvTypeName(e ast.Expr) string {
	if tv, ok := w.c.pass.TypesInfo.Types[e]; ok {
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name()
		}
	}
	return "Locker"
}

// lock pushes the mutex and records acquisition edges from held mutexes.
func (w *walker) lock(mu ast.Expr, pos token.Pos) {
	ref := w.mutexRef(mu, pos)
	for _, h := range w.held {
		if h.key == ref.key || !h.exportable || !ref.exportable {
			continue
		}
		if w.report {
			k := [2]string{h.key, ref.key}
			if _, ok := w.c.posOf[k]; !ok {
				w.c.posOf[k] = pos
			}
			w.c.edges = append(w.c.edges, LockEdge{From: h.key, To: ref.key, Where: w.where()})
		}
	}
	w.held = append(w.held, ref)
}

// unlock pops the most recent hold of the same mutex.
func (w *walker) unlock(mu ast.Expr) {
	ref := w.mutexRef(mu, mu.Pos())
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i].key == ref.key {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

// mutexRef derives a mutex's graph identity from its expression:
// `pkg.Type.field` for struct fields, `pkg.var` for package-level vars,
// and a function-local pseudo-key otherwise.
func (w *walker) mutexRef(mu ast.Expr, pos token.Pos) mutexRef {
	switch e := mu.(type) {
	case *ast.SelectorExpr:
		if tv, ok := w.c.pass.TypesInfo.Types[e.X]; ok {
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
				key := lint.NormalizePkgPath(n.Obj().Pkg().Path()) + "." + n.Obj().Name() + "." + e.Sel.Name
				return mutexRef{key: key, exportable: true, pos: pos}
			}
		}
	case *ast.Ident:
		if obj := w.c.pass.TypesInfo.Uses[e]; obj != nil && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return mutexRef{key: lint.NormalizePkgPath(obj.Pkg().Path()) + "." + obj.Name(), exportable: true, pos: pos}
			}
			return mutexRef{key: fmt.Sprintf("local:%s:%d", obj.Name(), obj.Pos()), pos: pos}
		}
	}
	w.localSeq++
	return mutexRef{key: fmt.Sprintf("anon:%s:%d", w.where(), w.localSeq), pos: pos}
}
