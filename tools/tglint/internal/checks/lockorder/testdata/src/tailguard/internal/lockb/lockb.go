// Package lockb is the dependency half of the lockorder fixture: it
// declares a lock order, observes the matching acquisition edge, and
// exports a blocking function. Everything here is consistent, so the
// package itself is clean — its EdgesFact and BlockingFact exports are
// what ../locka trips over.
package lockb

import "sync"

// Store is the outer lock of the declared order.
type Store struct {
	Mu   sync.Mutex
	Data map[string]int
}

// Index is the inner lock of the declared order.
type Index struct {
	Mu    sync.Mutex
	Terms []string
}

// S and I are the shared instances the fixture packages lock.
var (
	S Store
	I Index
)

//tg:lockorder Store.Mu < Index.Mu

// AcquireBoth nests the locks in the declared order: this observes the
// edge Store.Mu -> Index.Mu and exports it, but completes no cycle.
func AcquireBoth() {
	S.Mu.Lock()
	I.Mu.Lock()
	I.Terms = append(I.Terms, "x")
	I.Mu.Unlock()
	S.Mu.Unlock()
}

// WaitForSignal blocks on a channel receive; lockorder exports a
// BlockingFact for it, which ../locka imports.
func WaitForSignal(ch chan int) int {
	return <-ch
}
