// Package locka consumes ../lockb's facts and violates both contracts:
// it acquires lockb's mutexes against the exported order (a cross-package
// deadlock cycle) and holds its own mutex across blocking operations,
// including a call that only a BlockingFact reveals as blocking.
package locka

import (
	"sync"
	"time"

	"tailguard/internal/lockb"
)

// Cache is the local lock for the hold-across-blocking cases.
type Cache struct {
	mu sync.Mutex
	n  int
}

// ReverseOrder acquires Index.Mu before Store.Mu — the opposite of the
// edge lockb exports — completing a cycle across the package boundary.
func ReverseOrder() {
	lockb.I.Mu.Lock()
	lockb.S.Mu.Lock() // want "lock-order cycle: acquiring tailguard/internal/lockb\.Store\.Mu while holding tailguard/internal/lockb\.Index\.Mu"
	lockb.S.Mu.Unlock()
	lockb.I.Mu.Unlock()
}

// BadFactCall holds the cache mutex across a call whose blocking nature
// arrives via lockb's BlockingFact, not local syntax.
func (c *Cache) BadFactCall(ch chan int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return lockb.WaitForSignal(ch) // want "Cache\.mu held across blocking call to tailguard/internal/lockb\.WaitForSignal \(channel receive\)"
}

// BadSend holds the mutex across a direct channel send.
func (c *Cache) BadSend(ch chan int) {
	c.mu.Lock()
	ch <- c.n // want "Cache\.mu held across blocking channel send"
	c.mu.Unlock()
}

// BadSleep holds the mutex across time.Sleep.
func (c *Cache) BadSleep() {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want "Cache\.mu held across blocking time\.Sleep"
	c.mu.Unlock()
}

// GoodSend moves the send outside the critical section: clean.
func (c *Cache) GoodSend(ch chan int) {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	ch <- v
}

// SpawnOK starts a goroutine while holding the mutex: the goroutine's
// send runs outside the caller's critical section, so this is clean.
func (c *Cache) SpawnOK(ch chan int) {
	c.mu.Lock()
	go func() { ch <- 1 }()
	c.mu.Unlock()
}

// NestedSameOrder locks lockb's mutexes in the declared order: the
// observed edge matches the imported one, no cycle, clean.
func NestedSameOrder() {
	lockb.S.Mu.Lock()
	lockb.I.Mu.Lock()
	lockb.I.Mu.Unlock()
	lockb.S.Mu.Unlock()
}
