package detflow_test

import (
	"testing"

	"tailguard/tools/tglint/internal/checks/detflow"
	"tailguard/tools/tglint/internal/lint/linttest"
)

// TestDetflowCrossPackageFacts analyzes the protected cluster fixture,
// which consumes nondeterminism exclusively through the unprotected
// jitter fixture package: every diagnostic there depends on a NondetFact
// exported by jitter's facts pass and imported across the package
// boundary.
func TestDetflowCrossPackageFacts(t *testing.T) {
	linttest.Run(t, ".", detflow.Analyzer, "tailguard/internal/cluster")
}

// TestDetflowSilentInUnprotectedPackage runs the fixture that defines
// the tainted helpers: facts are exported, but no diagnostics fire
// outside the protected package list.
func TestDetflowSilentInUnprotectedPackage(t *testing.T) {
	linttest.Run(t, ".", detflow.Analyzer, "tailguard/internal/jitter")
}
