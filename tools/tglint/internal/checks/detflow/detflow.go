// Package detflow taint-tracks nondeterminism across function and
// package boundaries. The determinism contract behind every golden table
// in this repository — identical (plan, seed, clock) inputs produce
// bit-identical output — is already enforced *locally* by simclock,
// seededrand, and faultdet, which ban calling the sources directly. What
// they cannot see is a value that *derives* from such a source flowing in
// from another package: a helper in an unrestricted package returning
// `time.Now()`-derived jitter, an os.Getenv-dependent threshold, or a
// map-iteration-ordered slice, consumed by the deterministic core.
//
// detflow closes that hole with a conservative, flow-insensitive taint
// analysis: inside each function, values derived from nondeterminism
// sources (wall clock, global math/rand, crypto/rand, the process
// environment, map iteration order) propagate through assignments into
// the function's results. Functions whose results are tainted export a
// NondetFact, so the taint crosses package boundaries through the fact
// transport, and calls to them taint their results in turn. Any function
// in a *protected* package (the deterministic core listed in
// ProtectedPackages) that returns a tainted value is reported.
//
// Sanitizers: sorting a slice (sort.Strings/Ints/Float64s/Slice/Stable,
// slices.Sort/SortFunc/SortStableFunc) clears its taint — the canonical
// collect-then-sort idiom for deterministic map traversal comes out
// clean. Accumulating map-range values into an integer with a
// commutative compound assignment (+=, *=, |=, &=, ^=) is also exempt:
// exact commutative arithmetic is order-insensitive, unlike float
// accumulation, which keeps its taint.
//
// Test files are skipped: they neither export facts nor serve results to
// the simulation core.
package detflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"tailguard/tools/tglint/internal/lint"
)

// NondetFact marks a function whose results derive from a nondeterminism
// source. Source is the human-readable origin chain, e.g.
// "time.Now (via tailguard/internal/x.Jitter)".
type NondetFact struct {
	Source string `json:"source"`
}

// AFact implements lint.Fact.
func (*NondetFact) AFact() {}

// ProtectedPackages are the deterministic-core packages: any function
// here returning a tainted value is a diagnostic, not just a fact.
var ProtectedPackages = []string{
	"tailguard/internal/cluster",
	"tailguard/internal/policy",
	"tailguard/internal/fault",
	"tailguard/internal/experiment",
	"tailguard/internal/parallel",
}

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name:      "detflow",
	Doc:       "interprocedural taint tracking of nondeterminism sources (wall clock, global rand, env, map order) into deterministic-core result values",
	Run:       run,
	FactTypes: []lint.Fact{(*NondetFact)(nil)},
}

// protected reports whether pkgPath is in the deterministic core.
func protected(pkgPath string) bool {
	for _, p := range ProtectedPackages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// randConstructors are the math/rand top-level functions that build
// seeded generators rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// envFuncs are the os functions exposing ambient process state.
var envFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
	"Hostname": true, "Getpid": true, "Getwd": true,
}

// clockFuncs are the time functions reading the wall clock.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// sourceOf names the nondeterminism source a direct call represents, or
// "" when the callee is deterministic.
func sourceOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "" // methods (e.g. *rand.Rand draws) are seeded, not global
	}
	switch path := fn.Pkg().Path(); path {
	case "time":
		if clockFuncs[fn.Name()] {
			return "time." + fn.Name()
		}
	case "os":
		if envFuncs[fn.Name()] {
			return "os." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			return path + "." + fn.Name()
		}
	case "crypto/rand":
		return "crypto/rand." + fn.Name()
	}
	return ""
}

// taint records why a value is nondeterministic.
type taint struct {
	source  string    // origin chain, e.g. "time.Now"
	mapOnly bool      // taint stems solely from map iteration order
	pos     token.Pos // where the taint entered this function
}

// merge combines two taints; the earlier-entering source wins the label.
func merge(a, b *taint) *taint {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := *a
	if b.pos < a.pos {
		out = *b
	}
	out.mapOnly = a.mapOnly && b.mapOnly
	return &out
}

// funcState is the per-function fixpoint state.
type funcState struct {
	decl    *ast.FuncDecl
	obj     *types.Func
	returns *taint // non-nil when a result value is tainted
}

func run(pass *lint.Pass) error {
	var funcs []*funcState
	byObj := make(map[*types.Func]*funcState)
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			st := &funcState{decl: fn, obj: obj}
			funcs = append(funcs, st)
			if obj != nil {
				byObj[obj] = st
			}
		}
	}
	if len(funcs) == 0 {
		return nil
	}

	// Same-package call chains need a fixpoint: helper() may be analyzed
	// after its caller. Iterate until no function's verdict changes
	// (bounded by the call-graph depth, itself bounded by len(funcs)).
	for iter := 0; iter <= len(funcs); iter++ {
		changed := false
		for _, st := range funcs {
			t := analyzeFunc(pass, st, byObj)
			if (t == nil) != (st.returns == nil) || (t != nil && st.returns != nil && t.source != st.returns.source) {
				st.returns = t
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	isProtected := protected(pass.PkgPath())
	for _, st := range funcs {
		if st.returns == nil {
			continue
		}
		if st.obj != nil {
			pass.ExportObjectFact(st.obj, &NondetFact{Source: st.returns.source})
		}
		if isProtected {
			pass.Reportf(st.returns.pos,
				"result of %s derives from nondeterministic source %s; %s must stay a pure function of (plan, seed, clock) (DESIGN.md, Static verification)",
				st.decl.Name.Name, st.returns.source, pass.PkgPath())
		}
	}
	return nil
}

// analyzeFunc runs the intra-function taint pass and returns the result
// taint, if any. local knowledge of same-package functions comes from the
// fixpoint state; cross-package knowledge from NondetFacts.
func analyzeFunc(pass *lint.Pass, st *funcState, byObj map[*types.Func]*funcState) *taint {
	a := &funcTaint{
		pass:    pass,
		byObj:   byObj,
		tainted: make(map[types.Object]*taint),
	}
	// Seed: results named in the signature, so bare returns are covered.
	var namedResults []types.Object
	if r := st.decl.Type.Results; r != nil {
		for _, f := range r.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					namedResults = append(namedResults, obj)
				}
			}
		}
	}

	// The statement walk is flow-insensitive across iterations: run it a
	// few times so taint introduced late in the body reaches uses earlier
	// in source order (loops), then read off the verdict from the final
	// pass, in which sanitizer ordering (append-then-sort) is respected.
	var result *taint
	for i := 0; i < 3; i++ {
		result = nil
		ast.Inspect(st.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				a.visitRange(n)
			case *ast.AssignStmt:
				a.visitAssign(n)
			case *ast.ValueSpec:
				a.visitValueSpec(n)
			case *ast.CallExpr:
				a.visitSanitizer(n)
			case *ast.ReturnStmt:
				if t := a.visitReturn(n, namedResults); t != nil {
					result = merge(result, t)
				}
			}
			return true
		})
	}
	return result
}

// funcTaint tracks tainted objects inside one function body.
type funcTaint struct {
	pass    *lint.Pass
	byObj   map[*types.Func]*funcState
	tainted map[types.Object]*taint
}

// visitRange taints the key and value variables of a map range.
func (a *funcTaint) visitRange(n *ast.RangeStmt) {
	tv, ok := a.pass.TypesInfo.Types[n.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	for _, e := range []ast.Expr{n.Key, n.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := a.pass.TypesInfo.Defs[id]; obj != nil {
			a.mark(obj, &taint{source: "map iteration order", mapOnly: true, pos: n.Pos()})
		} else if obj := a.pass.TypesInfo.Uses[id]; obj != nil {
			a.mark(obj, &taint{source: "map iteration order", mapOnly: true, pos: n.Pos()})
		}
	}
}

// mark taints obj, keeping an existing non-map-only taint dominant.
func (a *funcTaint) mark(obj types.Object, t *taint) {
	a.tainted[obj] = merge(a.tainted[obj], t)
}

// orderInsensitiveOp reports whether a compound assignment with op on typ
// is commutative and exact, so accumulation order cannot change the
// result (integer +=, *=, and bitwise ops; never floats or strings).
func orderInsensitiveOp(op token.Token, typ types.Type) bool {
	switch op {
	case token.ADD_ASSIGN, token.MUL_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
	default:
		return false
	}
	basic, ok := typ.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Info()&types.IsInteger != 0
}

// visitAssign propagates taint from RHS expressions to LHS objects.
func (a *funcTaint) visitAssign(n *ast.AssignStmt) {
	var rhs *taint
	for _, e := range n.Rhs {
		rhs = merge(rhs, a.exprTaint(e))
	}
	if rhs == nil {
		return
	}
	for _, l := range n.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := a.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = a.pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE &&
			rhs.mapOnly && orderInsensitiveOp(n.Tok, obj.Type()) {
			continue // exact commutative accumulation over a map
		}
		a.mark(obj, rhs)
	}
}

// visitValueSpec propagates taint through `var x = expr`.
func (a *funcTaint) visitValueSpec(n *ast.ValueSpec) {
	var rhs *taint
	for _, e := range n.Values {
		rhs = merge(rhs, a.exprTaint(e))
	}
	if rhs == nil {
		return
	}
	for _, name := range n.Names {
		if obj := a.pass.TypesInfo.Defs[name]; obj != nil {
			a.mark(obj, rhs)
		}
	}
}

// sortSanitizers clear the taint of their slice argument.
var sortSanitizers = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// visitSanitizer clears taint on arguments of sorting calls.
func (a *funcTaint) visitSanitizer(n *ast.CallExpr) {
	sel, ok := n.Fun.(*ast.SelectorExpr)
	if !ok || len(n.Args) == 0 {
		return
	}
	fn, ok := a.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	names := sortSanitizers[fn.Pkg().Path()]
	if names == nil || !names[fn.Name()] {
		return
	}
	if id, ok := n.Args[0].(*ast.Ident); ok {
		if obj := a.pass.TypesInfo.Uses[id]; obj != nil {
			delete(a.tainted, obj)
		}
	}
}

// visitReturn returns the merged taint of the returned expressions (or of
// the named results on a bare return).
func (a *funcTaint) visitReturn(n *ast.ReturnStmt, namedResults []types.Object) *taint {
	if len(n.Results) == 0 {
		var t *taint
		for _, obj := range namedResults {
			t = merge(t, a.tainted[obj])
		}
		return t
	}
	var t *taint
	for _, e := range n.Results {
		t = merge(t, a.exprTaint(e))
	}
	return t
}

// exprTaint computes the taint of an expression: tainted identifiers,
// direct nondeterminism sources, and calls to functions with a
// NondetFact (same-package via the fixpoint state, cross-package via the
// fact store).
func (a *funcTaint) exprTaint(e ast.Expr) *taint {
	var t *taint
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a closure's body taints at its own call sites
		case *ast.Ident:
			if obj := a.pass.TypesInfo.Uses[n]; obj != nil {
				t = merge(t, a.tainted[obj])
			}
		case *ast.CallExpr:
			t = merge(t, a.callTaint(n))
		}
		return true
	})
	return t
}

// callTaint returns the taint a call's results carry.
func (a *funcTaint) callTaint(call *ast.CallExpr) *taint {
	var fn *types.Func
	switch f := call.Fun.(type) {
	case *ast.Ident:
		fn, _ = a.pass.TypesInfo.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = a.pass.TypesInfo.Uses[f.Sel].(*types.Func)
	}
	if fn == nil {
		return nil
	}
	if src := sourceOf(fn); src != "" {
		return &taint{source: src, pos: call.Pos()}
	}
	// Same-package: fixpoint state (facts are not yet exported mid-run).
	if st, ok := a.byObj[fn]; ok {
		if st.returns != nil {
			return &taint{
				source:  viaSource(st.returns.source, a.pass.PkgPath(), fn.Name()),
				mapOnly: st.returns.mapOnly,
				pos:     call.Pos(),
			}
		}
		return nil
	}
	// Cross-package: the fact transport.
	var fact NondetFact
	if a.pass.ImportObjectFact(fn, &fact) {
		pkgPath := ""
		if fn.Pkg() != nil {
			pkgPath = lint.NormalizePkgPath(fn.Pkg().Path())
		}
		return &taint{source: viaSource(fact.Source, pkgPath, fn.Name()), pos: call.Pos()}
	}
	return nil
}

// viaSource extends an origin chain with the function it flowed through,
// keeping only the innermost hop so chains stay readable.
func viaSource(src, pkgPath, fnName string) string {
	root := src
	if i := strings.Index(root, " (via "); i >= 0 {
		root = root[:i]
	}
	return fmt.Sprintf("%s (via %s.%s)", root, pkgPath, fnName)
}

// Sources returns the canonical source list, for documentation tests.
func Sources() []string {
	var out []string
	for f := range clockFuncs {
		out = append(out, "time."+f)
	}
	for f := range envFuncs {
		out = append(out, "os."+f)
	}
	out = append(out, "math/rand.<global draws>", "crypto/rand.*", "map iteration order")
	sort.Strings(out)
	return out
}
