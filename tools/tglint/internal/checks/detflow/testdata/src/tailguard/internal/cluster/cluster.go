// Package cluster is a PROTECTED package in the detflow fixture: any
// function whose result derives from a nondeterminism source — directly,
// through a local chain, or through a NondetFact imported from the
// ../jitter package — is reported.
package cluster

import (
	"sort"

	"tailguard/internal/jitter"
)

// Budget consumes cross-package taint through jitter.Amount's fact.
func Budget() float64 {
	return 10 + jitter.Amount() // want "result of Budget derives from nondeterministic source math/rand\.Float64 \(via tailguard/internal/jitter\.Amount\)"
}

// Stamp consumes wall-clock taint through jitter.NowMs.
func Stamp() float64 {
	return jitter.NowMs() // want "derives from nondeterministic source time\.Now \(via tailguard/internal/jitter\.NowMs\)"
}

// Mode consumes environment taint.
func Mode() string {
	return jitter.Mode() // want "derives from nondeterministic source os\.Getenv \(via tailguard/internal/jitter\.Mode\)"
}

// Chained consumes taint that crossed two same-package hops in jitter
// before export; the chain names the exported function, not the helper.
func Chained() float64 {
	return jitter.Indirect() // want "derives from nondeterministic source math/rand\.Float64 \(via tailguard/internal/jitter\.Indirect\)"
}

// Base calls only the deterministic helper: clean.
func Base() float64 {
	return jitter.Fixed()
}

// Keys is the canonical collect-then-sort idiom: the sort sanitizes the
// map-order taint, so the function is clean and exports no fact.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// BadKeys skips the sort: map iteration order reaches the result.
func BadKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "result of BadKeys derives from nondeterministic source map iteration order"
		keys = append(keys, k)
	}
	return keys
}

// Count accumulates with integer +=, which is commutative and exact:
// iteration order cannot change the result, so it is clean.
func Count(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Sum accumulates floats, where addition order changes rounding.
func Sum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "result of Sum derives from nondeterministic source map iteration order"
		total += v
	}
	return total
}
