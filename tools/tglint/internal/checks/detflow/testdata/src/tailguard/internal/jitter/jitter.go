// Package jitter is an UNPROTECTED package: detflow exports NondetFacts
// for its tainted functions but reports no diagnostics here. The facts
// are consumed by the ../cluster fixture across the package boundary.
package jitter

import (
	"math/rand"
	"os"
	"time"
)

// NowMs reads the wall clock: exports a NondetFact, no diagnostic.
func NowMs() float64 {
	return float64(time.Now().UnixNano()) / 1e6
}

// Amount draws from the global math/rand source.
func Amount() float64 {
	return rand.Float64()
}

// Mode reads the process environment.
func Mode() string {
	v := os.Getenv("TG_MODE")
	return v
}

// Indirect is tainted through a same-package helper chain, exercising
// the in-package fixpoint before the fact is exported.
func Indirect() float64 {
	return helper()
}

func helper() float64 {
	return Amount()
}

// Fixed is deterministic: no fact, and callers stay clean.
func Fixed() float64 {
	return 4
}

// Seeded draws from a caller-provided generator: seeded draws are
// deterministic, so no fact.
func Seeded(r *rand.Rand) float64 {
	return r.Float64()
}
