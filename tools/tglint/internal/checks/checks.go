// Package checks registers the tglint analyzer suite.
package checks

import (
	"tailguard/tools/tglint/internal/checks/errreturn"
	"tailguard/tools/tglint/internal/checks/faultdet"
	"tailguard/tools/tglint/internal/checks/floateq"
	"tailguard/tools/tglint/internal/checks/guardedby"
	"tailguard/tools/tglint/internal/checks/obsclock"
	"tailguard/tools/tglint/internal/checks/poolzero"
	"tailguard/tools/tglint/internal/checks/seededrand"
	"tailguard/tools/tglint/internal/checks/simclock"
	"tailguard/tools/tglint/internal/lint"
)

// All returns every analyzer in the suite, in stable order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		errreturn.Analyzer,
		faultdet.Analyzer,
		floateq.Analyzer,
		guardedby.Analyzer,
		obsclock.Analyzer,
		poolzero.Analyzer,
		seededrand.Analyzer,
		simclock.Analyzer,
	}
}
