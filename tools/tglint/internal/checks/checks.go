// Package checks registers the tglint analyzer suite.
package checks

import (
	"tailguard/tools/tglint/internal/checks/detflow"
	"tailguard/tools/tglint/internal/checks/errreturn"
	"tailguard/tools/tglint/internal/checks/faultdet"
	"tailguard/tools/tglint/internal/checks/floateq"
	"tailguard/tools/tglint/internal/checks/guardedby"
	"tailguard/tools/tglint/internal/checks/hotalloc"
	"tailguard/tools/tglint/internal/checks/lockorder"
	"tailguard/tools/tglint/internal/checks/maporder"
	"tailguard/tools/tglint/internal/checks/obsclock"
	"tailguard/tools/tglint/internal/checks/poolzero"
	"tailguard/tools/tglint/internal/checks/seededrand"
	"tailguard/tools/tglint/internal/checks/simclock"
	"tailguard/tools/tglint/internal/lint"
)

// All returns every analyzer in the suite, in stable order. Both drivers
// (standalone and vettool) consume exactly this list via the shared
// `suite` variable in the main package; driver_test.go locks that.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		detflow.Analyzer,
		errreturn.Analyzer,
		faultdet.Analyzer,
		floateq.Analyzer,
		guardedby.Analyzer,
		hotalloc.Analyzer,
		lockorder.Analyzer,
		maporder.Analyzer,
		obsclock.Analyzer,
		poolzero.Analyzer,
		seededrand.Analyzer,
		simclock.Analyzer,
	}
}
