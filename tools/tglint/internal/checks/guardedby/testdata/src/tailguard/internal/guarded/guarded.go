package guarded

import "sync"

// Counter is the happy-path fixture: one annotated field, one mutex.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Inc holds the lock: accepted.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Peek reads the field without locking: rejected.
func (c *Counter) Peek() int {
	return c.n // want "Counter.n is guarded by mu, but Peek does not lock c.mu"
}

// bumpLocked relies on the Locked-suffix convention: accepted.
func (c *Counter) bumpLocked() { c.n++ }

// NewCounter initializes a locally owned value: accepted (not yet shared).
func NewCounter() *Counter {
	c := &Counter{}
	c.n = 1
	return c
}

// Gauge exercises the RWMutex read path.
type Gauge struct {
	mu sync.RWMutex
	v  float64 // guarded by mu
}

// Load holds the read lock: accepted.
func (g *Gauge) Load() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

// Store forgets the lock entirely: rejected.
func (g *Gauge) Store(x float64) {
	g.v = x // want "Gauge.v is guarded by mu, but Store does not lock g.mu"
}

// MissingMu names a mutex that is not a sibling field.
type MissingMu struct {
	// guarded by lock
	x int // want "field annotated .guarded by lock. but MissingMu.lock does not exist"
}

// SelfGuard annotates the mutex with itself.
type SelfGuard struct {
	// guarded by mu
	mu sync.Mutex // want "mutex mu cannot guard itself"
}
