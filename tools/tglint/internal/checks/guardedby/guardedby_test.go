package guardedby_test

import (
	"testing"

	"tailguard/tools/tglint/internal/checks/guardedby"
	"tailguard/tools/tglint/internal/lint/linttest"
)

func TestGuardedby(t *testing.T) {
	linttest.Run(t, ".", guardedby.Analyzer, "tailguard/internal/guarded")
}
