// Package guardedby enforces the repository's `// guarded by mu` field
// annotation: a struct field carrying that comment may only be accessed
// (read or written) by code that demonstrably holds the named mutex.
//
// The check is deliberately flow-insensitive — it is a ratchet against
// the "forgot to lock in the new method" class of race, not a proof
// system. An access `x.f`, where f is annotated `guarded by mu`, is
// accepted when any of these hold:
//
//   - the enclosing function also contains a call `x.mu.Lock()` or
//     `x.mu.RLock()` (defer-released or not);
//   - the enclosing function's name ends in "Locked", the repository's
//     convention for helpers whose callers hold the lock;
//   - x is a local variable declared inside the enclosing function body:
//     a freshly constructed object is not yet shared, so constructors
//     need no locking (receivers and parameters do NOT qualify);
//   - the access appears in a _test.go file (tests exercise unexported
//     state single-threaded) or in a composite literal (construction).
//
// Accesses whose base is not a plain identifier (e.g. h.inner.f) are not
// checked; keep guarded state one selector deep.
package guardedby

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"tailguard/tools/tglint/internal/lint"
)

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated `// guarded by mu` must only be accessed while holding that mutex",
	Run:  run,
}

var annotationRe = regexp.MustCompile(`(?i)guarded by (\w+)`)

// annotation records one annotated field.
type annotation struct {
	mutex      string // name of the guarding mutex field
	structName string
}

// fieldComment joins a field's doc and line comments.
func fieldComment(f *ast.Field) string {
	var parts []string
	if f.Doc != nil {
		parts = append(parts, f.Doc.Text())
	}
	if f.Comment != nil {
		parts = append(parts, f.Comment.Text())
	}
	return strings.Join(parts, " ")
}

// collect gathers annotations from every struct type in the pass and
// validates that each named mutex is a sibling field.
func collect(pass *lint.Pass) map[types.Object]*annotation {
	anns := make(map[types.Object]*annotation)
	pass.Preorder(func(n ast.Node) {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return
		}
		siblings := make(map[string]bool)
		for _, f := range st.Fields.List {
			for _, name := range f.Names {
				siblings[name.Name] = true
			}
		}
		for _, f := range st.Fields.List {
			m := annotationRe.FindStringSubmatch(fieldComment(f))
			if m == nil {
				continue
			}
			mutex := m[1]
			if !siblings[mutex] {
				pass.Reportf(f.Pos(),
					"field annotated `guarded by %s` but %s.%s does not exist", mutex, ts.Name.Name, mutex)
				continue
			}
			for _, name := range f.Names {
				if name.Name == mutex {
					pass.Reportf(name.Pos(), "mutex %s cannot guard itself", mutex)
					continue
				}
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					anns[obj] = &annotation{mutex: mutex, structName: ts.Name.Name}
				}
			}
		}
	})
	return anns
}

// baseIdent unwraps (*x), (x) chains to the base identifier of a
// selector, or nil when the base is more complex.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// lockedMutexes scans fn's body for `<ident>.<mutex>.Lock()` and
// `.RLock()` calls and returns base-identifier-name -> mutex-name sets.
func lockedMutexes(body *ast.BlockStmt) map[string]map[string]bool {
	locked := make(map[string]map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base := baseIdent(muSel.X)
		if base == nil {
			return true
		}
		if locked[base.Name] == nil {
			locked[base.Name] = make(map[string]bool)
		}
		locked[base.Name][muSel.Sel.Name] = true
		return true
	})
	return locked
}

func run(pass *lint.Pass) error {
	anns := collect(pass)
	if len(anns) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || pass.InTestFile(fn.Pos()) {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue
			}
			locked := lockedMutexes(fn.Body)
			bodyStart, bodyEnd := fn.Body.Pos(), fn.Body.End()
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fieldObj := pass.TypesInfo.Uses[sel.Sel]
				ann, annotated := anns[fieldObj]
				if !annotated {
					return true
				}
				base := baseIdent(sel.X)
				if base == nil {
					return true // deeper chains are out of scope
				}
				baseObj := pass.TypesInfo.Uses[base]
				if baseObj != nil && baseObj.Pos() >= bodyStart && baseObj.Pos() < bodyEnd {
					return true // declared in this function: locally owned
				}
				if locked[base.Name][ann.mutex] {
					return true
				}
				pass.Reportf(sel.Sel.Pos(),
					"%s.%s is guarded by %s, but %s does not lock %s.%s (lock it, or use the Locked-suffix convention)",
					ann.structName, sel.Sel.Name, ann.mutex, fn.Name.Name, base.Name, ann.mutex)
				return true
			})
		}
	}
	return nil
}
