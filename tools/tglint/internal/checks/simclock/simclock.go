// Package simclock forbids wall-clock time in TailGuard's virtual-time
// packages. The simulator's headline results (Figs. 4-7) depend on every
// event timestamp flowing from the discrete-event clock; one stray
// time.Now() silently couples experiment output to the host machine and
// destroys reproducibility. Real time is allowed only in the SaS testbed
// (internal/saas), the production embedding (internal/sched), and the
// binaries/examples.
package simclock

import (
	"go/ast"
	"go/types"
	"strings"

	"tailguard/tools/tglint/internal/lint"
)

// VirtualTimePackages are the package paths (after test-variant
// normalization) in which wall-clock calls are forbidden. Test files are
// included: a deterministic package deserves deterministic tests.
var VirtualTimePackages = []string{
	"tailguard/internal/sim",
	"tailguard/internal/cluster",
	"tailguard/internal/control",
	"tailguard/internal/core",
	"tailguard/internal/dist",
	"tailguard/internal/workload",
	"tailguard/internal/analytic",
	"tailguard/internal/policy",
	"tailguard/internal/request",
	"tailguard/internal/experiment",
	"tailguard/internal/trace",
	"tailguard/internal/metrics",
}

// forbidden are the package-level time functions that read or act on the
// wall clock. Pure value constructors and arithmetic (time.Duration,
// time.Unix, d.Seconds(), ...) stay legal.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "simclock",
	Doc:  "forbid wall-clock time (time.Now, time.Sleep, ...) in virtual-time simulation packages",
	Run:  run,
}

// applies reports whether pkgPath is governed by the virtual-time rule.
func applies(pkgPath string) bool {
	for _, p := range VirtualTimePackages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *lint.Pass) error {
	if !applies(pass.PkgPath()) {
		return nil
	}
	pass.Preorder(func(n ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !forbidden[sel.Sel.Name] {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return
		}
		pass.Reportf(sel.Pos(),
			"wall-clock call time.%s in virtual-time package %s: simulation code must take time from the event clock (DESIGN.md, Static analysis)",
			sel.Sel.Name, pass.PkgPath())
	})
	return nil
}
