package simclock_test

import (
	"testing"

	"tailguard/tools/tglint/internal/checks/simclock"
	"tailguard/tools/tglint/internal/lint/linttest"
)

func TestSimclockFiresInVirtualTimePackage(t *testing.T) {
	linttest.Run(t, ".", simclock.Analyzer, "tailguard/internal/sim")
}

func TestSimclockSilentInRealTimePackage(t *testing.T) {
	linttest.Run(t, ".", simclock.Analyzer, "tailguard/internal/saas")
}
