package saas

import "time"

// Elapsed may read the wall clock: internal/saas is the live testbed, not
// a virtual-time package, so simclock must stay silent here.
func Elapsed(t0 time.Time) time.Duration {
	time.Sleep(time.Microsecond)
	return time.Since(t0)
}
