package sim

import "time"

// Bad reads the wall clock from a virtual-time package.
func Bad() time.Duration {
	t0 := time.Now()             // want "wall-clock call time.Now in virtual-time package tailguard/internal/sim"
	time.Sleep(time.Millisecond) // want "wall-clock call time.Sleep"
	<-time.After(time.Second)    // want "wall-clock call time.After"
	return time.Since(t0)        // want "wall-clock call time.Since"
}

// OK uses time only for value arithmetic, which stays legal.
func OK() time.Duration {
	d := 5 * time.Millisecond
	epoch := time.Unix(0, 0)
	_ = epoch
	return d
}
