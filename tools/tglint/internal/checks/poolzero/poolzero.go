// Package poolzero enforces the freelist hygiene rule from DESIGN.md:
// an object handed back to a pool must be zeroed (or Reset) in the put
// path, before it is stored. A pooled policy.Task or query box that keeps
// stale pointers alive leaks memory across replicates; one that keeps
// stale values alive turns into a nondeterminism bug the moment a new
// field is added and a reused object resurfaces with last run's contents.
//
// The check looks at functions whose name marks them as a put path
// (prefix "put" or "release", any case) and that take a pointer-to-struct
// parameter. If that parameter is appended to a slice or passed to a
// Put(...) method (sync.Pool and pool-alikes), the function must first
// either assign through the pointer (`*t = Task{}`) or call a sanitizing
// method on it (Reset/Zero/Clear prefix).
//
// Pools that sanitize on Get instead of Put (reset-on-get, e.g.
// cluster.Arena's spare Result) stay legal: storing the object in a plain
// field is not a freelist append, so the check does not fire on them.
package poolzero

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tailguard/tools/tglint/internal/lint"
)

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "poolzero",
	Doc:  "pooled objects must be zeroed or Reset in the freelist put path before being stored",
	Run:  run,
}

// putName reports whether a function name marks a freelist put path.
func putName(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "put") || strings.HasPrefix(lower, "release")
}

// sanitizerName reports whether a method call on the pooled object counts
// as cleaning it.
func sanitizerName(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "reset") ||
		strings.HasPrefix(lower, "zero") ||
		strings.HasPrefix(lower, "clear")
}

// structElem returns the named struct a pointer type points at, or "" if
// t is not a pointer to struct.
func structElem(t types.Type) string {
	pt, ok := t.(*types.Pointer)
	if !ok {
		return ""
	}
	if _, ok := pt.Elem().Underlying().(*types.Struct); !ok {
		return ""
	}
	if named, ok := pt.Elem().(*types.Named); ok {
		return named.Obj().Name()
	}
	return pt.Elem().String()
}

func run(pass *lint.Pass) error {
	pass.Preorder(func(n ast.Node) {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !putName(fd.Name.Name) {
			return
		}
		if pass.InTestFile(fd.Pos()) {
			return
		}
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if elem := structElem(obj.Type()); elem != "" {
					checkParam(pass, fd.Body, obj, name.Name, elem)
				}
			}
		}
	})
	return nil
}

// checkParam reports every freelist store of obj inside body that is not
// preceded by a zeroing assignment or sanitizing method call.
func checkParam(pass *lint.Pass, body *ast.BlockStmt, obj types.Object, param, elem string) {
	isObj := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == obj
	}

	var stores []token.Pos    // append(free, p) / pool.Put(p) positions
	var sanitizes []token.Pos // *p = ... / p.Reset() positions
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if star, ok := lhs.(*ast.StarExpr); ok && isObj(star.X) {
					sanitizes = append(sanitizes, n.Pos())
				}
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" {
					for _, arg := range n.Args[1:] {
						if isObj(arg) {
							stores = append(stores, arg.Pos())
						}
					}
				}
			case *ast.SelectorExpr:
				if isObj(fun.X) && sanitizerName(fun.Sel.Name) {
					sanitizes = append(sanitizes, n.Pos())
					return true
				}
				if strings.EqualFold(fun.Sel.Name, "put") {
					for _, arg := range n.Args {
						if isObj(arg) {
							stores = append(stores, arg.Pos())
						}
					}
				}
			}
		}
		return true
	})

	for _, store := range stores {
		clean := false
		for _, s := range sanitizes {
			if s < store {
				clean = true
				break
			}
		}
		if !clean {
			pass.Reportf(store,
				"pooled *%s is put back without zeroing; assign *%s = %s{} or call %s.Reset() before the freelist put",
				elem, param, elem, param)
		}
	}
}
