package pool

import "sync"

// Task stands in for the simulator's pooled task object: pointer-bearing
// fields that must not survive a round trip through the freelist.
type Task struct {
	ID      int64
	Payload any
}

// TaskPool is the slice-backed freelist shape used across the simulator.
type TaskPool struct{ free []*Task }

// Put zeroes before the append: the correct pattern.
func (p *TaskPool) Put(t *Task) {
	if t == nil {
		return
	}
	*t = Task{}
	p.free = append(p.free, t)
}

// PutDirty stores the object with its stale fields still set.
func (p *TaskPool) PutDirty(t *Task) {
	p.free = append(p.free, t) // want "pooled \*Task is put back without zeroing"
}

var taskPool = sync.Pool{New: func() any { return new(Task) }}

// putTask hands a dirty object to a sync.Pool.
func putTask(t *Task) {
	taskPool.Put(t) // want "pooled \*Task is put back without zeroing"
}

// releaseLate zeroes only after the store; the freelist already holds the
// dirty object by then (another goroutine may Get it between the two
// statements when the freelist is a sync.Pool).
func releaseLate(p *TaskPool, t *Task) {
	p.free = append(p.free, t) // want "pooled \*Task is put back without zeroing"
	*t = Task{}
}

// Box sanitizes via a Reset method instead of a zeroing assignment.
type Box struct{ vals []float64 }

// Reset truncates, keeping capacity.
func (b *Box) Reset() { b.vals = b.vals[:0] }

var boxPool = sync.Pool{New: func() any { return new(Box) }}

// putBox resets via method before the pool put: legal.
func putBox(b *Box) {
	b.Reset()
	boxPool.Put(b)
}

// Stash is not a put-path name; plain slice stores elsewhere are out of
// scope for this check.
func Stash(dst *[]*Task, t *Task) {
	*dst = append(*dst, t)
}

var _ = putTask
var _ = putBox
var _ = releaseLate
