package arena

// Result models a reset-on-get pool member: it is sanitized by the
// consumer when it is taken back out, not in the put path.
type Result struct {
	Count int
	Err   error
}

// Arena keeps a single spare Result in a plain field. Storing into a
// field is not a freelist append, so poolzero stays silent: the Get path
// (not shown) calls reset() before reuse.
type Arena struct{ spare *Result }

// Release parks the result for the next run without zeroing it.
func (a *Arena) Release(r *Result) {
	a.spare = r
}
