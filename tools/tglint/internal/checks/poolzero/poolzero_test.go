package poolzero_test

import (
	"testing"

	"tailguard/tools/tglint/internal/checks/poolzero"
	"tailguard/tools/tglint/internal/lint/linttest"
)

func TestPoolzeroFiresOnDirtyPuts(t *testing.T) {
	linttest.Run(t, ".", poolzero.Analyzer, "tailguard/internal/pool")
}

func TestPoolzeroSilentOnResetOnGet(t *testing.T) {
	linttest.Run(t, ".", poolzero.Analyzer, "tailguard/internal/arena")
}
