// Package hotalloc enforces allocation-freedom on annotated hot paths.
// The simulation inner loop (PR 3) was made allocation-free by hand and
// is guarded dynamically by testing.AllocsPerRun; hotalloc guards it
// statically, so a regression is a lint finding at the offending line,
// not a failed benchmark assertion three layers up.
//
// A function opts in with a `//tg:hotpath` line in its doc comment.
// Inside an annotated function, the analyzer flags the constructs that
// force heap allocations:
//
//   - &T{...} composite literals and new(T) — always heap-escaping when
//     they outlive the statement; value literals (t = T{}) are fine.
//   - Slice and map composite literals and every make() — fresh backing
//     stores on each call.
//   - append to a slice that is function-local and was not declared with
//     an explicit capacity (make([]T, n, cap)): growth reallocates in
//     exactly the steady-state iterations the annotation protects.
//   - Closures that capture variables — the capture set escapes.
//   - Interface boxing: passing, assigning, or returning a non-pointer
//     concrete value where an interface (including any) is expected.
//   - Variadic calls with arguments — the callee's ...slice is allocated
//     at the call site (fmt.Errorf on a hot path, canonically).
//
// A line ending in `//tg:cold` suppresses findings on that line: it marks
// a deliberate cold branch (growth path, error path) inside a hot
// function. Test files are skipped.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"tailguard/tools/tglint/internal/lint"
)

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "hotalloc",
	Doc:  "flag heap allocations (escaping literals, growing appends, capturing closures, interface boxing, variadic calls) in //tg:hotpath functions",
	Run:  run,
}

// Marker is the annotation that opts a function into the check.
const Marker = "//tg:hotpath"

// coldMarker suppresses findings on its line.
const coldMarker = "//tg:cold"

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		cold := coldLines(pass.Fset, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hotpath(fn) {
				continue
			}
			c := &checker{pass: pass, cold: cold, fn: fn}
			c.prealloc = c.preallocatedSlices()
			c.check()
		}
	}
	return nil
}

// hotpath reports whether the function's doc comment carries the marker.
func hotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == Marker || strings.HasPrefix(c.Text, Marker+" ") {
			return true
		}
	}
	return false
}

// coldLines collects the line numbers carrying a //tg:cold suppression.
func coldLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if c.Text == coldMarker || strings.HasPrefix(c.Text, coldMarker+" ") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// checker walks one annotated function.
type checker struct {
	pass     *lint.Pass
	cold     map[int]bool
	fn       *ast.FuncDecl
	prealloc map[types.Object]bool
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	if c.cold[c.pass.Fset.Position(pos).Line] {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// preallocatedSlices finds local slice variables declared with an
// explicit capacity — appends to them are amortized-free and exempt.
func (c *checker) preallocatedSlices() map[types.Object]bool {
	out := make(map[types.Object]bool)
	markIfCap := func(name *ast.Ident, val ast.Expr) {
		call, ok := val.(*ast.CallExpr)
		if !ok || len(call.Args) != 3 {
			return // only make([]T, len, cap) commits a capacity
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "make" {
			return
		}
		if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						markIfCap(id, n.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					markIfCap(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

func (c *checker) check() {
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.checkClosure(n)
			return false // its body runs elsewhere; captures are the cost here
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					c.reportf(n.Pos(), "&%s{...} allocates on the hot path; reuse a pooled or receiver-owned value", typeLabel(c.pass, n.X))
					return false
				}
			}
		case *ast.CompositeLit:
			if tv, ok := c.pass.TypesInfo.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					c.reportf(n.Pos(), "%s literal allocates a fresh backing store on the hot path; hoist it or reuse a buffer", typeLabel(c.pass, n))
				}
			}
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) {
					c.checkBoxing(lhs, n.Rhs[i])
				}
			}
		case *ast.ReturnStmt:
			c.checkReturnBoxing(n)
		}
		return true
	})
}

// checkClosure flags function literals that capture enclosing variables.
func (c *checker) checkClosure(lit *ast.FuncLit) {
	captured := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.TypesInfo.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing function (or a parameter/
		// receiver of it) but outside the literal.
		if v.Pos() >= c.fn.Pos() && v.Pos() < c.fn.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			captured[v.Name()] = true
		}
		return true
	})
	if len(captured) == 0 {
		return // a non-capturing literal compiles to a static function value
	}
	var names []string
	for n := range captured {
		names = append(names, n)
	}
	sort.Strings(names)
	c.reportf(lit.Pos(), "closure captures %s on the hot path; the capture set escapes to the heap", strings.Join(names, ", "))
}

// checkCall handles make/new builtins, growing appends, variadic calls,
// and boxing at argument positions.
func (c *checker) checkCall(call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				c.reportf(call.Pos(), "make allocates on the hot path; hoist it out of the steady-state loop or reuse a pooled buffer")
			case "new":
				c.reportf(call.Pos(), "new allocates on the hot path; reuse a pooled or receiver-owned value")
			case "append":
				c.checkAppend(call)
			}
			return
		}
	}
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return // a conversion, not a call
	}
	c.checkArgs(call, sig)
}

// checkAppend flags appends whose target is a local slice without a
// committed capacity.
func (c *checker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return // fields and pooled buffers manage their own growth policy
	}
	obj, isVar := c.pass.TypesInfo.Uses[id].(*types.Var)
	if !isVar || c.prealloc[obj] {
		return
	}
	// Only locals: appends to parameters extend caller-owned storage.
	if obj.Pos() < c.fn.Body.Pos() || obj.Pos() >= c.fn.Body.End() {
		return
	}
	c.reportf(call.Pos(), "append grows %s without a preallocated capacity on the hot path; declare it with make(len, cap) or reuse a buffer", id.Name)
}

// checkArgs flags interface boxing at parameter positions and the
// implicit slice of a variadic call.
func (c *checker) checkArgs(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	n := params.Len()
	if sig.Variadic() {
		if len(call.Args) >= n && call.Ellipsis == token.NoPos {
			variadic := call.Args[n-1:]
			if len(variadic) > 0 {
				c.reportf(call.Pos(), "variadic call allocates its ...%s argument slice on the hot path", elemLabel(params.At(n-1).Type()))
			}
			// Boxing inside the variadic slice is subsumed by the slice report.
			call = &ast.CallExpr{Fun: call.Fun, Args: call.Args[:n-1], Lparen: call.Lparen}
		}
		n--
	}
	for i, arg := range call.Args {
		if i >= n {
			break
		}
		c.checkValueBoxing(arg, params.At(i).Type())
	}
}

// checkBoxing flags an assignment that boxes a concrete value into an
// interface-typed destination.
func (c *checker) checkBoxing(lhs, rhs ast.Expr) {
	ltv, ok := c.pass.TypesInfo.Types[lhs]
	if !ok {
		if id, isID := lhs.(*ast.Ident); isID {
			if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
				c.checkValueBoxing(rhs, obj.Type())
			}
		}
		return
	}
	c.checkValueBoxing(rhs, ltv.Type)
}

// checkReturnBoxing flags returns that box into interface results.
func (c *checker) checkReturnBoxing(ret *ast.ReturnStmt) {
	results := c.fn.Type.Results
	if results == nil || len(ret.Results) == 0 {
		return
	}
	var resultTypes []types.Type
	for _, f := range results.List {
		tv, ok := c.pass.TypesInfo.Types[f.Type]
		if !ok {
			continue
		}
		reps := len(f.Names)
		if reps == 0 {
			reps = 1
		}
		for i := 0; i < reps; i++ {
			resultTypes = append(resultTypes, tv.Type)
		}
	}
	if len(resultTypes) != len(ret.Results) {
		return
	}
	for i, e := range ret.Results {
		c.checkValueBoxing(e, resultTypes[i])
	}
}

// checkValueBoxing reports when expr's concrete value is stored into an
// interface destination and the store requires a heap allocation:
// pointer-shaped values (pointers, channels, maps, funcs, unsafe
// pointers) ride in the interface word for free, everything else is
// copied to the heap.
func (c *checker) checkValueBoxing(expr ast.Expr, dst types.Type) {
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	src := tv.Type
	if _, isIface := src.Underlying().(*types.Interface); isIface {
		return // interface-to-interface conversions copy the word pair
	}
	if tv.Value != nil {
		return // untyped constants box once into read-only storage
	}
	if tv.IsNil() {
		return // nil stores a zero interface word pair, no allocation
	}
	if pointerShaped(src) {
		return
	}
	qual := func(p *types.Package) string { return p.Name() }
	c.reportf(expr.Pos(), "storing %s into %s boxes the value on the hot path; pass a pointer or keep the concrete type",
		types.TypeString(src, qual), types.TypeString(dst, qual))
}

// pointerShaped reports whether values of t fit an interface data word
// without allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// typeLabel renders the type of a composite literal for diagnostics.
func typeLabel(pass *lint.Pass, e ast.Expr) string {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		return types.TypeString(tv.Type, func(p *types.Package) string { return p.Name() })
	}
	return "composite"
}

// elemLabel names a variadic parameter's element type.
func elemLabel(t types.Type) string {
	if s, ok := t.Underlying().(*types.Slice); ok {
		return types.TypeString(s.Elem(), func(p *types.Package) string { return p.Name() })
	}
	return t.String()
}
