// Package hot exercises hotalloc: only functions annotated //tg:hotpath
// are checked, //tg:cold lines inside them are exempt, and each class of
// forced heap allocation is flagged.
package hot

import "fmt"

// Task is a plain value type used across the cases.
type Task struct {
	ID   int
	Cost float64
}

// Sink is an interface target for the boxing cases.
type Sink interface {
	Put(v any)
}

// Unannotated allocates freely: not on the hot path, no findings.
func Unannotated() *Task {
	return &Task{ID: 1}
}

// Escape returns a fresh pointer each call.
//
//tg:hotpath
func Escape(id int) *Task {
	return &Task{ID: id} // want "&hot\.Task\{\.\.\.\} allocates on the hot path"
}

// ValueReset writes a zero value through a pointer: no allocation, clean.
//
//tg:hotpath
func ValueReset(t *Task) {
	*t = Task{}
}

// FreshSlices builds new backing stores each call.
//
//tg:hotpath
func FreshSlices(n int) int {
	buf := make([]float64, 0, n) // want "make allocates on the hot path"
	m := map[int]bool{}          // want "map\[int\]bool literal allocates a fresh backing store"
	ids := []int{1, 2, 3}        // want "\[\]int literal allocates a fresh backing store"
	_ = buf
	_ = m
	return len(ids)
}

// ColdGrowth marks its growth path cold: exempt.
//
//tg:hotpath
func ColdGrowth(pool [][]byte, n int) []byte {
	if len(pool) == 0 {
		return make([]byte, n) //tg:cold growth path, amortized away
	}
	return pool[0]
}

// GrowingAppend appends to a local slice declared without capacity.
//
//tg:hotpath
func GrowingAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2) // want "append grows out without a preallocated capacity"
	}
	return out
}

// PreallocAppend commits a capacity first: clean. (The make itself is
// marked cold: it is the one-time setup the loop amortizes.)
//
//tg:hotpath
func PreallocAppend(xs []int) []int {
	out := make([]int, 0, len(xs)) //tg:cold one-time setup
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

// CapturingClosure captures a local: the capture set escapes.
//
//tg:hotpath
func CapturingClosure(xs []int) func() int {
	total := 0
	return func() int { // want "closure captures total, xs on the hot path"
		for _, x := range xs {
			total += x
		}
		return total
	}
}

// StaticClosure captures nothing: compiles to a static function, clean.
//
//tg:hotpath
func StaticClosure() func() int {
	return func() int { return 42 }
}

// Boxing stores a concrete struct into an interface.
//
//tg:hotpath
func Boxing(s Sink, t Task) {
	s.Put(t) // want "storing hot\.Task into any boxes the value"
}

// PointerNoBox passes a pointer: rides the interface word, clean.
//
//tg:hotpath
func PointerNoBox(s Sink, t *Task) {
	s.Put(t)
}

// VariadicCall pays for the argument slice of fmt.Errorf.
//
//tg:hotpath
func VariadicCall(id int) error {
	return fmt.Errorf("task %d failed", id) // want "variadic call allocates its \.\.\.any argument slice"
}

// NilError returns nil through an interface result: a zero word pair,
// no allocation, clean.
//
//tg:hotpath
func NilError(v float64) error {
	if v < 0 {
		return fmt.Errorf("negative %g", v) //tg:cold error path
	}
	return nil
}
