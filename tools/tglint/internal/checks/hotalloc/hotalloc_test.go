package hotalloc_test

import (
	"testing"

	"tailguard/tools/tglint/internal/checks/hotalloc"
	"tailguard/tools/tglint/internal/lint/linttest"
)

func TestHotalloc(t *testing.T) {
	linttest.Run(t, ".", hotalloc.Analyzer, "tailguard/internal/hot")
}
