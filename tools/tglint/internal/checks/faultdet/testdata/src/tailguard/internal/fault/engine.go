package fault

import (
	"math/rand"
	"time"
)

// badClock stamps a fault decision from the wall clock.
func badClock() float64 {
	return float64(time.Now().UnixNano()) // want "wall-clock call time.Now inside tailguard/internal/fault"
}

// badElapsed measures real elapsed time.
func badElapsed(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // want "wall-clock call time.Since inside tailguard/internal/fault"
}

// badSleep blocks on the wall clock.
func badSleep() {
	time.Sleep(time.Millisecond) // want "wall-clock call time.Sleep inside tailguard/internal/fault"
}

// badRand draws from a rand source — even seeded ones are banned here,
// because draw order under concurrency is not replayable.
func badRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // want "math/rand.New inside" "math/rand.NewSource inside"
	return r.Float64()                  // want "math/rand.Float64 inside"
}

// okDuration does pure duration arithmetic, which stays legal.
func okDuration() time.Duration {
	return 5 * time.Millisecond
}

// okSplitMix is the sanctioned randomness: a pure function of its inputs.
func okSplitMix(seed uint64, n uint64) float64 {
	z := seed + n*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
