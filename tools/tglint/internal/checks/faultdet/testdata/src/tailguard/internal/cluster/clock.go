package cluster

import "time"

// elapsedMs reads the wall clock outside internal/fault: faultdet stays
// silent here (other analyzers govern the simulator's clock discipline).
func elapsedMs(t0 time.Time) float64 {
	return float64(time.Since(t0)) / float64(time.Millisecond)
}
