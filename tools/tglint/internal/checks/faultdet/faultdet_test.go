package faultdet_test

import (
	"testing"

	"tailguard/tools/tglint/internal/checks/faultdet"
	"tailguard/tools/tglint/internal/lint/linttest"
)

func TestFaultdetFiresInsideFault(t *testing.T) {
	linttest.Run(t, ".", faultdet.Analyzer, "tailguard/internal/fault")
}

func TestFaultdetSilentOutsideFault(t *testing.T) {
	linttest.Run(t, ".", faultdet.Analyzer, "tailguard/internal/cluster")
}
