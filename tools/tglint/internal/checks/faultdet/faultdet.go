// Package faultdet keeps the fault-injection engine deterministic. A
// fault schedule is part of an experiment's identity: identical (plan,
// seed) pairs must replay bit-identical fault decisions, so
// internal/fault may consume neither the wall clock (all windows live on
// the caller's millisecond clock) nor math/rand (drop decisions come from
// a counter-keyed SplitMix64 stream, which is replayable regardless of
// goroutine interleaving — a *rand.Rand is not, because its draw order
// depends on who asks first). The rule is stricter than seededrand: even
// seeded generators are banned inside the package.
package faultdet

import (
	"go/ast"
	"go/types"
	"strings"

	"tailguard/tools/tglint/internal/lint"
)

// faultPkgPath is the package governed by the determinism contract.
const faultPkgPath = "tailguard/internal/fault"

// clockFuncs are the time-package functions that read the wall clock or
// arm wall-clock timers. Pure duration arithmetic stays legal.
var clockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "faultdet",
	Doc:  "forbid wall-clock reads and math/rand (seeded or not) inside internal/fault; fault schedules must be pure functions of (plan, seed, sim time)",
	Run:  run,
}

func run(pass *lint.Pass) error {
	pkg := pass.PkgPath()
	if pkg != faultPkgPath && !strings.HasPrefix(pkg, faultPkgPath+"/") {
		return nil
	}
	pass.Preorder(func(n ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return
		}
		switch path := obj.Pkg().Path(); path {
		case "time":
			fn, ok := obj.(*types.Func)
			if !ok || !clockFuncs[fn.Name()] {
				return
			}
			pass.Reportf(sel.Pos(),
				"wall-clock call time.%s inside %s: fault windows live on the caller's sim/ms clock (DESIGN.md, Fault model)",
				fn.Name(), pass.PkgPath())
		case "math/rand", "math/rand/v2":
			pass.Reportf(sel.Pos(),
				"%s.%s inside %s: fault randomness must come from the counter-keyed SplitMix64 stream, not a rand source (DESIGN.md, Fault model)",
				path, obj.Name(), pass.PkgPath())
		}
	})
	return nil
}
