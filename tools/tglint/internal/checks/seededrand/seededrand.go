// Package seededrand forbids math/rand's package-level convenience
// functions, which draw from the process-global, lock-shared source.
// TailGuard experiments are seeded end to end: every random draw must
// flow through an injected *rand.Rand so a (seed, config) pair fully
// determines the output. The rule applies to every package in the
// module, tests included — a test that consults the global source is a
// test whose failures cannot be replayed.
package seededrand

import (
	"go/ast"
	"go/types"

	"tailguard/tools/tglint/internal/lint"
)

// allowed are the package-level math/rand functions that do NOT touch the
// global source: constructors for explicitly seeded generators.
var allowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "seededrand",
	Doc:  "forbid the global math/rand source; randomness must flow through an injected *rand.Rand",
	Run:  run,
}

func run(pass *lint.Pass) error {
	pass.Preorder(func(n ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		path := fn.Pkg().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return // methods on *rand.Rand / Source are fine
		}
		if allowed[fn.Name()] {
			return // seeded constructors
		}
		pass.Reportf(sel.Pos(),
			"%s.%s draws from the process-global random source; thread a seeded *rand.Rand through instead (rand.New(rand.NewSource(seed)))",
			path, fn.Name())
	})
	return nil
}
