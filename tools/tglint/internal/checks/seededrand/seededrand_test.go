package seededrand_test

import (
	"testing"

	"tailguard/tools/tglint/internal/checks/seededrand"
	"tailguard/tools/tglint/internal/lint/linttest"
)

func TestSeededrand(t *testing.T) {
	linttest.Run(t, ".", seededrand.Analyzer, "tailguard/internal/workload")
}
