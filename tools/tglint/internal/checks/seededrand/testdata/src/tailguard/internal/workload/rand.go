package workload

import "math/rand"

// Bad draws from the process-global source.
func Bad(xs []int) float64 {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "math/rand.Shuffle draws from the process-global random source"
	if rand.Intn(2) == 0 {                                                // want "math/rand.Intn draws from the process-global random source"
		return 0
	}
	return rand.Float64() // want "math/rand.Float64 draws from the process-global random source"
}

// OK threads an explicit seeded generator.
func OK(r *rand.Rand) float64 {
	own := rand.New(rand.NewSource(42))
	return own.Float64() + r.NormFloat64()
}
