package obsclock_test

import (
	"testing"

	"tailguard/tools/tglint/internal/checks/obsclock"
	"tailguard/tools/tglint/internal/lint/linttest"
)

func TestObsclockFiresInsideObs(t *testing.T) {
	linttest.Run(t, ".", obsclock.Analyzer, "tailguard/internal/obs")
}

func TestObsclockFiresOnWallClockTimestampsInSimulator(t *testing.T) {
	linttest.Run(t, ".", obsclock.Analyzer, "tailguard/internal/cluster")
}

func TestObsclockSilentInRealTimePackage(t *testing.T) {
	linttest.Run(t, ".", obsclock.Analyzer, "tailguard/internal/saas")
}
