package cluster

import (
	"time"

	"tailguard/internal/obs"
)

type runner struct {
	obs *obs.Tracer
	now float64 // sim clock (ms)
}

// ok timestamps events from the sim clock.
func (r *runner) ok() {
	r.obs.Emit(obs.Event{TimeMs: r.now})
	r.obs.Query(0, r.now, 1)
}

// bad stamps obs events from the wall clock.
func (r *runner) bad() {
	r.obs.Emit(obs.Event{TimeMs: float64(time.Now().UnixNano())}) // want "obs event in simulator package tailguard/internal/cluster timestamped from the wall clock"
	r.obs.Query(0, time.Since(time.Unix(0, 0)).Seconds(), 1)      // want "timestamped from the wall clock .time.Since."
}

// unrelated wall-clock use is simclock's business, not obsclock's.
func (r *runner) unrelated() time.Time {
	return time.Now()
}
