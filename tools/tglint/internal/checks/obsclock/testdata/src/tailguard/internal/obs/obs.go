package obs

import "time"

// Event is one lifecycle record; TimeMs is caller-supplied.
type Event struct {
	TimeMs float64
}

// Tracer forwards events to a sink.
type Tracer struct{}

// Emit records one event.
func (t *Tracer) Emit(e Event) {}

// Query records one query-scoped event.
func (t *Tracer) Query(kind int, timeMs float64, id int64) {}

// Bad stamps an event from the wall clock inside obs itself.
func Bad() Event {
	return Event{TimeMs: float64(time.Now().UnixNano())} // want "wall-clock call time.Now inside tailguard/internal/obs"
}

// Elapsed reads the wall clock twice more.
func Elapsed(t0 time.Time) float64 {
	d := time.Since(t0) // want "wall-clock call time.Since inside tailguard/internal/obs"
	return d.Seconds()
}

// OK does pure duration arithmetic, which stays legal.
func OK() time.Duration {
	return 5 * time.Millisecond
}
