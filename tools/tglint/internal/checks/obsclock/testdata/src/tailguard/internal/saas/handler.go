package saas

import (
	"time"

	"tailguard/internal/obs"
)

type handler struct {
	obs   *obs.Tracer
	start time.Time
}

// submit derives the obs timestamp from the wall clock, which real-time
// embeddings legitimately do: obsclock stays silent here.
func (h *handler) submit() {
	h.obs.Emit(obs.Event{TimeMs: float64(time.Since(h.start).Milliseconds())})
}
