// Package obsclock keeps the observability plane's clock domains honest.
// obs events carry caller-supplied timestamps, so internal/obs itself must
// never read the wall clock (a sink that stamps events would silently mix
// clock domains), and simulator packages must never timestamp obs events
// from time.Now/time.Since — their events belong to the discrete-event
// clock. The real-time embeddings (internal/sched, internal/saas) derive
// elapsed milliseconds from the wall clock legitimately and are exempt
// from the second rule.
package obsclock

import (
	"go/ast"
	"go/types"
	"strings"

	"tailguard/tools/tglint/internal/checks/simclock"
	"tailguard/tools/tglint/internal/lint"
)

// obsPkgPath is the observability package governed by the no-wall-clock
// rule.
const obsPkgPath = "tailguard/internal/obs"

// wallClockFuncs are the time-package functions that read the wall clock.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "obsclock",
	Doc:  "forbid wall-clock reads in internal/obs and wall-clock timestamps on obs events in simulator packages",
	Run:  run,
}

func run(pass *lint.Pass) error {
	pkg := pass.PkgPath()
	switch {
	case pkg == obsPkgPath || strings.HasPrefix(pkg, obsPkgPath+"/"):
		return runInsideObs(pass)
	case simulatorPackage(pkg):
		return runInSimulator(pass)
	}
	return nil
}

// simulatorPackage reports whether pkgPath runs on the discrete-event
// clock (the same set the simclock analyzer governs).
func simulatorPackage(pkgPath string) bool {
	for _, p := range simclock.VirtualTimePackages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// timeFunc resolves n to a wall-clock-reading time-package function, or
// returns "" when it is not one.
func timeFunc(pass *lint.Pass, n ast.Node) string {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok || !wallClockFuncs[sel.Sel.Name] {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return ""
	}
	return sel.Sel.Name
}

// runInsideObs forbids wall-clock reads anywhere in internal/obs: the
// package records timestamps, it never produces them.
func runInsideObs(pass *lint.Pass) error {
	pass.Preorder(func(n ast.Node) {
		if name := timeFunc(pass, n); name != "" {
			pass.Reportf(n.Pos(),
				"wall-clock call time.%s inside %s: obs records caller-supplied timestamps and must not read a clock (DESIGN.md, Observability)",
				name, pass.PkgPath())
		}
	})
	return nil
}

// runInSimulator flags obs-package calls whose arguments read the wall
// clock: a simulator event stamped with time.Now couples the trace to the
// host machine instead of the event clock.
func runInSimulator(pass *lint.Pass) error {
	pass.Preorder(func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !obsCall(pass, call) {
			return
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if name := timeFunc(pass, m); name != "" {
					pass.Reportf(m.Pos(),
						"obs event in simulator package %s timestamped from the wall clock (time.%s): use the sim clock (DESIGN.md, Observability)",
						pass.PkgPath(), name)
					return false
				}
				return true
			})
		}
	})
	return nil
}

// obsCall reports whether call invokes a function or method exported by
// internal/obs.
func obsCall(pass *lint.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == obsPkgPath
}
