package errreturn_test

import (
	"testing"

	"tailguard/tools/tglint/internal/checks/errreturn"
	"tailguard/tools/tglint/internal/lint/linttest"
)

func TestErrreturn(t *testing.T) {
	linttest.Run(t, ".", errreturn.Analyzer, "tailguard/internal/sink")
}
