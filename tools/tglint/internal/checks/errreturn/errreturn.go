// Package errreturn flags silently discarded error returns in
// tailguard/internal/...: a call used as a bare expression statement
// whose callee returns an error. The measurement substrate must not eat
// errors — a swallowed recorder or estimator error corrupts an
// experiment without a trace. Discarding explicitly (`_ = f()`) remains
// legal and greppable, as do `defer`/`go` statements (cleanup paths),
// _test.go files, and writes into infallible in-memory sinks
// (strings.Builder, bytes.Buffer — including fmt.Fprint* into them).
package errreturn

import (
	"go/ast"
	"go/types"
	"strings"

	"tailguard/tools/tglint/internal/lint"
)

// Analyzer implements the check.
var Analyzer = &lint.Analyzer{
	Name: "errreturn",
	Doc:  "forbid silently discarded error returns in internal packages",
	Run:  run,
}

// infallibleSinks are writer types whose Write* methods are documented
// never to return a non-nil error; discarding those "errors" is how the
// standard library itself uses them. fmt.Fprint* into one of these is
// exempt for the same reason: Fprint's error is the writer's.
var infallibleSinks = map[string]bool{
	"*strings.Builder": true,
	"*bytes.Buffer":    true,
	"strings.Builder":  true,
	"bytes.Buffer":     true,
}

// isFprint reports whether fn is one of fmt's writer-directed printers.
func isFprint(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

// exempt reports whether the discarded error is from an infallible sink:
// a method on strings.Builder/bytes.Buffer, or fmt.Fprint* writing to
// one.
func exempt(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if isFprint(fn) && len(call.Args) > 0 {
		if t := info.TypeOf(call.Args[0]); t != nil && infallibleSinks[t.String()] {
			return true
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return infallibleSinks[sig.Recv().Type().String()]
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// returnsError reports whether the call's result tuple contains an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return false // conversion, not a call
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false // builtin or invalid
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			return true
		}
	}
	return false
}

// callee renders a human-readable callee name.
func callee(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	default:
		return "call"
	}
}

func run(pass *lint.Pass) error {
	if !strings.HasPrefix(pass.PkgPath(), "tailguard/internal/") {
		return nil
	}
	pass.Preorder(func(n ast.Node) {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok || pass.InTestFile(call.Pos()) {
			return
		}
		if returnsError(pass.TypesInfo, call) && !exempt(pass.TypesInfo, call) {
			pass.Reportf(call.Pos(),
				"error returned by %s is silently discarded; handle it or assign to _ explicitly", callee(call))
		}
	})
	return nil
}
