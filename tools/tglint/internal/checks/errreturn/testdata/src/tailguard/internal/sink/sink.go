package sink

import (
	"fmt"
	"strings"
)

func mayFail() error            { return nil }
func pair() (int, error)        { return 0, nil }
func value() int                { return 0 }
func report(w *strings.Builder) {}

// Bad discards errors silently.
func Bad() {
	mayFail() // want "error returned by mayFail is silently discarded"
	pair()    // want "error returned by pair is silently discarded"
}

// OK covers every sanctioned way to not handle an error.
func OK() {
	_ = mayFail()   // explicit discard is greppable
	defer mayFail() // cleanup paths are exempt
	go mayFail()    // so are goroutine launches
	value()         // no error in the result tuple
	var sb strings.Builder
	sb.WriteString("x")       // strings.Builder never fails
	fmt.Fprintf(&sb, "%d", 1) // Fprint into an infallible sink
	report(&sb)
	if err := mayFail(); err != nil {
		panic(err)
	}
}
