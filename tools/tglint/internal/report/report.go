// Package report is tglint's structured findings pipeline: the stable
// Finding record, JSON and SARIF 2.1.0 emitters, and the expiring
// suppression baseline. File paths are module-root-relative with forward
// slashes and line numbers are advisory, so reports diff cleanly across
// machines and across unrelated edits (tools/lintdiff matches findings by
// analyzer, file, and message — never by line).
package report

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"
)

// Finding is one diagnostic in stable, machine-readable form.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-root-relative, forward slashes
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// Rule describes one analyzer for SARIF rule metadata.
type Rule struct {
	ID  string
	Doc string
}

// New builds a Finding from a resolved position, relativizing the file
// against rootDir when possible.
func New(analyzer string, pos token.Position, message, rootDir string) Finding {
	file := pos.Filename
	if rootDir != "" {
		if rel, err := filepath.Rel(rootDir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return Finding{
		Analyzer: analyzer,
		File:     filepath.ToSlash(file),
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  message,
	}
}

// Sort orders findings by (file, line, col, analyzer, message).
func Sort(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// WriteJSON emits findings as an indented JSON array ([] when empty).
func WriteJSON(w io.Writer, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	data, err := json.MarshalIndent(fs, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

// sarif* types are the minimal subset of the SARIF 2.1.0 schema that
// GitHub code scanning and IDE SARIF viewers consume.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits findings as a SARIF 2.1.0 log. rules supplies the
// analyzer descriptions for the tool.driver.rules table; analyzers
// referenced by findings but absent from rules still emit valid results.
func WriteSARIF(w io.Writer, fs []Finding, rules []Rule) error {
	srules := make([]sarifRule, 0, len(rules))
	for _, r := range rules {
		srules = append(srules, sarifRule{ID: r.ID, ShortDescription: sarifMessage{Text: r.Doc}})
	}
	results := make([]sarifResult, 0, len(fs))
	for _, f := range fs {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "tglint", Rules: srules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

// BaselineEntry is one suppression. A finding is suppressed when every
// non-empty selector matches: Analyzer equals, File equals the finding's
// module-relative path, and Match (an RE2 regexp) matches the message.
// Expires is mandatory ("YYYY-MM-DD"): past that date the entry stops
// suppressing and the findings it hid resurface, so debt cannot park in
// the baseline indefinitely.
type BaselineEntry struct {
	Analyzer string `json:"analyzer,omitempty"`
	File     string `json:"file,omitempty"`
	Match    string `json:"match,omitempty"`
	Expires  string `json:"expires"`
	Reason   string `json:"reason"`

	re *regexp.Regexp
}

// Baseline is the checked-in suppression set (lint-baseline.json).
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// expiresLayout is the baseline date format.
const expiresLayout = "2006-01-02"

// ParseBaseline decodes and validates a baseline document.
func ParseBaseline(data []byte) (*Baseline, error) {
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("report: parse baseline: %w", err)
	}
	for i := range b.Entries {
		e := &b.Entries[i]
		if e.Expires == "" {
			return nil, fmt.Errorf("report: baseline entry %d has no expires date (suppressions must expire)", i)
		}
		if _, err := time.Parse(expiresLayout, e.Expires); err != nil {
			return nil, fmt.Errorf("report: baseline entry %d: bad expires date %q (want YYYY-MM-DD)", i, e.Expires)
		}
		if e.Reason == "" {
			return nil, fmt.Errorf("report: baseline entry %d has no reason", i)
		}
		if e.Analyzer == "" && e.File == "" && e.Match == "" {
			return nil, fmt.Errorf("report: baseline entry %d matches everything (set analyzer, file, or match)", i)
		}
		if e.Match != "" {
			re, err := regexp.Compile(e.Match)
			if err != nil {
				return nil, fmt.Errorf("report: baseline entry %d: bad match regexp: %w", i, err)
			}
			e.re = re
		}
	}
	return &b, nil
}

// LoadBaseline reads and parses a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("report: load baseline: %w", err)
	}
	return ParseBaseline(data)
}

// expired reports whether the entry no longer suppresses at now.
func (e *BaselineEntry) expired(now time.Time) bool {
	t, err := time.Parse(expiresLayout, e.Expires)
	if err != nil {
		return true
	}
	// The entry covers the whole expiry day.
	return now.After(t.AddDate(0, 0, 1))
}

// Matches reports whether the entry's selectors cover the finding,
// ignoring expiry.
func (e *BaselineEntry) Matches(f Finding) bool {
	if e.Analyzer != "" && e.Analyzer != f.Analyzer {
		return false
	}
	if e.File != "" && e.File != f.File {
		return false
	}
	if e.Match != "" {
		re := e.re
		if re == nil {
			var err error
			re, err = regexp.Compile(e.Match)
			if err != nil {
				return false
			}
		}
		if !re.MatchString(f.Message) {
			return false
		}
	}
	return true
}

// Apply splits findings into kept (reportable) and suppressed, honoring
// expiry at now. It also returns the expired entries that would still
// have matched a finding — the signal that parked debt has come due.
func (b *Baseline) Apply(fs []Finding, now time.Time) (kept, suppressed []Finding, overdue []BaselineEntry) {
	overdueSeen := make(map[int]bool)
	for _, f := range fs {
		hidden := false
		for i := range b.Entries {
			e := &b.Entries[i]
			if !e.Matches(f) {
				continue
			}
			if e.expired(now) {
				if !overdueSeen[i] {
					overdueSeen[i] = true
					overdue = append(overdue, *e)
				}
				continue
			}
			hidden = true
			break
		}
		if hidden {
			suppressed = append(suppressed, f)
		} else {
			kept = append(kept, f)
		}
	}
	return kept, suppressed, overdue
}
