package report

import (
	"go/token"
	"strings"
	"testing"
	"time"
)

func sample() []Finding {
	return []Finding{
		{Analyzer: "detflow", File: "internal/fault/plan.go", Line: 164, Col: 2,
			Message: "result of Validate derives from nondeterministic source map iteration order"},
		{Analyzer: "maporder", File: "internal/workload/fanout.go", Line: 173, Col: 2,
			Message: "map iteration order reaches append into fanouts (never sorted)"},
	}
}

func TestNewRelativizesAndSlashes(t *testing.T) {
	pos := token.Position{Filename: "/repo/internal/x/y.go", Line: 3, Column: 7}
	f := New("detflow", pos, "msg", "/repo")
	if f.File != "internal/x/y.go" {
		t.Fatalf("File = %q, want module-relative slash path", f.File)
	}
	out := New("detflow", token.Position{Filename: "/elsewhere/z.go", Line: 1}, "msg", "/repo")
	if out.File != "/elsewhere/z.go" {
		t.Fatalf("File = %q, want absolute path kept for out-of-module files", out.File)
	}
}

func TestSortIsTotalAndStable(t *testing.T) {
	fs := []Finding{
		{Analyzer: "b", File: "a.go", Line: 2},
		{Analyzer: "a", File: "a.go", Line: 2},
		{Analyzer: "z", File: "a.go", Line: 1},
	}
	Sort(fs)
	if fs[0].Analyzer != "z" || fs[1].Analyzer != "a" || fs[2].Analyzer != "b" {
		t.Fatalf("Sort order wrong: %+v", fs)
	}
}

// TestWriteJSONGolden locks the exact JSON shape: an array of flat
// finding objects, indented, trailing newline, [] when empty.
func TestWriteJSONGolden(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, sample()); err != nil {
		t.Fatal(err)
	}
	want := `[
  {
    "analyzer": "detflow",
    "file": "internal/fault/plan.go",
    "line": 164,
    "col": 2,
    "message": "result of Validate derives from nondeterministic source map iteration order"
  },
  {
    "analyzer": "maporder",
    "file": "internal/workload/fanout.go",
    "line": 173,
    "col": 2,
    "message": "map iteration order reaches append into fanouts (never sorted)"
  }
]
`
	if b.String() != want {
		t.Errorf("WriteJSON output:\n%s\nwant:\n%s", b.String(), want)
	}

	b.Reset()
	if err := WriteJSON(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.String() != "[]\n" {
		t.Errorf("empty WriteJSON = %q, want %q", b.String(), "[]\n")
	}
}

// TestWriteSARIFGolden locks the SARIF 2.1.0 skeleton: schema URL,
// version, one run with driver name, rule table, and per-finding results
// carrying physical locations.
func TestWriteSARIFGolden(t *testing.T) {
	var b strings.Builder
	rules := []Rule{{ID: "detflow", Doc: "interprocedural nondeterminism taint"}}
	if err := WriteSARIF(&b, sample(), rules); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`"$schema": "https://json.schemastore.org/sarif-2.1.0.json"`,
		`"version": "2.1.0"`,
		`"name": "tglint"`,
		`"id": "detflow"`,
		`"text": "interprocedural nondeterminism taint"`,
		`"ruleId": "maporder"`,
		`"uri": "internal/workload/fanout.go"`,
		`"startLine": 173`,
		`"level": "error"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SARIF output missing %s\ngot:\n%s", want, out)
		}
	}
}

func TestParseBaselineValidation(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"no expiry", `{"entries":[{"analyzer":"detflow","reason":"r"}]}`, "no expires"},
		{"bad expiry", `{"entries":[{"analyzer":"detflow","expires":"someday","reason":"r"}]}`, "bad expires"},
		{"no reason", `{"entries":[{"analyzer":"detflow","expires":"2026-12-31"}]}`, "no reason"},
		{"no selector", `{"entries":[{"expires":"2026-12-31","reason":"r"}]}`, "matches everything"},
		{"bad regexp", `{"entries":[{"match":"(","expires":"2026-12-31","reason":"r"}]}`, "bad match regexp"},
	}
	for _, c := range cases {
		if _, err := ParseBaseline([]byte(c.doc)); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantErr)
		}
	}
	if _, err := ParseBaseline([]byte(`{"entries":[]}`)); err != nil {
		t.Errorf("empty baseline should parse: %v", err)
	}
	if _, err := ParseBaseline([]byte(`{"entries":[{"analyzer":"maporder","file":"a.go","match":"x","expires":"2026-12-31","reason":"pending rework"}]}`)); err != nil {
		t.Errorf("full entry should parse: %v", err)
	}
}

// TestBaselineApplyGolden locks suppression semantics: unexpired
// matching entries hide findings, expired ones resurface them and are
// reported as overdue, and matching is line-insensitive by construction
// (entries carry no line field).
func TestBaselineApplyGolden(t *testing.T) {
	b, err := ParseBaseline([]byte(`{"entries":[
		{"analyzer":"detflow","file":"internal/fault/plan.go","expires":"2026-12-31","reason":"sort landing separately"},
		{"analyzer":"maporder","expires":"2020-01-01","reason":"long overdue"}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	kept, suppressed, overdue := b.Apply(sample(), now)
	if len(suppressed) != 1 || suppressed[0].Analyzer != "detflow" {
		t.Errorf("suppressed = %+v, want the detflow finding", suppressed)
	}
	if len(kept) != 1 || kept[0].Analyzer != "maporder" {
		t.Errorf("kept = %+v, want the maporder finding (its entry expired)", kept)
	}
	if len(overdue) != 1 || overdue[0].Expires != "2020-01-01" {
		t.Errorf("overdue = %+v, want the expired maporder entry", overdue)
	}

	// On the expiry day itself the entry still suppresses.
	onExpiry := time.Date(2026, 12, 31, 23, 0, 0, 0, time.UTC)
	entry := &b.Entries[0]
	if entry.expired(onExpiry) {
		t.Error("entry should cover its whole expiry day")
	}
	if !entry.expired(time.Date(2027, 1, 2, 1, 0, 0, 0, time.UTC)) {
		t.Error("entry should expire after its expiry day")
	}
}

// TestBaselineMatchingIsLineInsensitive: an entry keyed on analyzer,
// file, and message matches the finding wherever it moves in the file.
func TestBaselineMatchingIsLineInsensitive(t *testing.T) {
	e := BaselineEntry{Analyzer: "detflow", File: "a.go", Match: "map iteration"}
	f := Finding{Analyzer: "detflow", File: "a.go", Line: 10, Message: "derives from map iteration order"}
	if !e.Matches(f) {
		t.Fatal("entry should match")
	}
	f.Line = 9999
	if !e.Matches(f) {
		t.Fatal("matching must not depend on line numbers")
	}
	f.File = "b.go"
	if e.Matches(f) {
		t.Fatal("file selector must be honored")
	}
}
