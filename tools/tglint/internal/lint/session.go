package lint

// Session drives fact-aware analysis over a source tree: before a
// package's diagnostics run, its in-scope dependencies get a facts-only
// pass (library files, no tests — test files cannot contribute importable
// facts and may themselves import back into the dependency graph), in
// dependency order, sharing one FactStore. This is the in-process
// equivalent of cmd/go's vet scheduling, where each unit's .vetx output
// feeds its dependents.

import (
	"fmt"
	"sort"
)

// Session runs an analyzer suite over packages with facts flowing across
// package boundaries.
type Session struct {
	Loader *Loader
	Suite  []*Analyzer
	Facts  *FactStore
	// InScope filters which import paths receive a facts pass; typically
	// "inside the module" or "inside the testdata tree". Out-of-scope
	// packages (the standard library) contribute no facts.
	InScope func(importPath string) bool

	factsDone map[string]bool
}

// NewSession returns a session over the loader's source tree.
func NewSession(loader *Loader, suite []*Analyzer, inScope func(string) bool) *Session {
	return &Session{
		Loader:    loader,
		Suite:     suite,
		Facts:     NewFactStore(),
		InScope:   inScope,
		factsDone: make(map[string]bool),
	}
}

// ensureFacts runs the facts-only pass for path and, first, its in-scope
// imports. Diagnostics from this pass are discarded; the diagnostics run
// in Analyze recomputes them with test files included.
func (s *Session) ensureFacts(path string) error {
	if s.factsDone[path] {
		return nil
	}
	s.factsDone[path] = true // pre-mark: import cycles are type errors anyway
	units, err := s.Loader.LoadForAnalysis(path, false)
	if err != nil {
		return err
	}
	for _, unit := range units {
		if err := s.ensureImportFacts(unit); err != nil {
			return err
		}
		if _, err := Run(s.Suite, s.Loader.Fset, unit.Files, unit.Pkg, unit.Info, s.Facts); err != nil {
			return fmt.Errorf("facts pass for %s: %w", path, err)
		}
	}
	return nil
}

// ensureImportFacts runs the facts pass for the unit's in-scope imports,
// in deterministic order.
func (s *Session) ensureImportFacts(unit *Unit) error {
	var deps []string
	for _, imp := range unit.Pkg.Imports() {
		if p := imp.Path(); s.InScope(p) {
			deps = append(deps, p)
		}
	}
	sort.Strings(deps)
	for _, dep := range deps {
		if err := s.ensureFacts(dep); err != nil {
			return err
		}
	}
	return nil
}

// Analyze runs the suite over the package at path (test files included)
// and returns its diagnostics and analysis units, with facts from every
// in-scope dependency available to the analyzers.
func (s *Session) Analyze(path string) ([]Diagnostic, []*Unit, error) {
	units, err := s.Loader.LoadForAnalysis(path, true)
	if err != nil {
		return nil, nil, err
	}
	var diags []Diagnostic
	for _, unit := range units {
		if err := s.ensureImportFacts(unit); err != nil {
			return nil, nil, err
		}
		ds, err := Run(s.Suite, s.Loader.Fset, unit.Files, unit.Pkg, unit.Info, s.Facts)
		if err != nil {
			return nil, nil, err
		}
		diags = append(diags, ds...)
	}
	return diags, units, nil
}
