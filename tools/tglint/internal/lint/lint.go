// Package lint is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis core: an Analyzer runs over one
// type-checked package and reports position-tagged diagnostics. It exists
// because this repository builds offline (no module proxy), so the real
// x/tools analysis framework cannot be vendored; the API mirrors it
// closely enough that the analyzers in ../checks could be ported to
// x/tools by changing only import paths.
//
// Two drivers feed it: the standalone module walker (tglint ./...) and
// the `go vet -vettool` unitchecker protocol, both in tools/tglint.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer's command-line and diagnostic prefix name.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run executes the check against one package.
	Run func(*Pass) error
	// FactTypes lists prototypes of every fact type the analyzer exports
	// or imports; required for the vet driver to deserialize them.
	FactTypes []Fact
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	facts *FactStore // nil when the driver provides no fact transport
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer,
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// PkgPath returns the package's import path normalized for matching
// against configured package lists: the build system's test-variant
// decorations ("pkg [pkg.test]", "pkg_test") are stripped so a package's
// test files inherit its rules.
func (p *Pass) PkgPath() string {
	return NormalizePkgPath(p.Pkg.Path())
}

// NormalizePkgPath strips go vet's test-variant suffixes from a package
// path: "p [p.test]" and "p_test [p.test]" both normalize to "p".
func NormalizePkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, "_test")
}

// Preorder walks every file in the pass in depth-first preorder, calling
// f for each node.
func (p *Pass) Preorder(f func(ast.Node)) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n != nil {
				f(n)
			}
			return true
		})
	}
}

// Run executes the analyzers against one package and returns their
// diagnostics sorted by position. facts, when non-nil, is the session's
// fact store: analyzers read facts exported by previously analyzed
// dependencies from it and add this package's facts to it.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *FactStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			facts:     facts,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers need.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
