// Package linttest is the golden-test harness for tglint analyzers,
// mirroring golang.org/x/tools/go/analysis/analysistest: testdata trees
// laid out GOPATH-style (testdata/src/<import/path>/*.go) carry
// expectations as trailing comments of the form
//
//	code() // want "regexp"
//	code() // want "first" "second"
//
// Run type-checks the package (standard-library imports are checked from
// $GOROOT/src), executes the analyzer, and requires an exact match
// between reported diagnostics and expectations, line by line.
package linttest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"tailguard/tools/tglint/internal/lint"
)

// expectation is one `// want` clause.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts expectations from every comment in the unit.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					if rest[0] != '"' {
						t.Fatalf("%s: malformed want clause: %s", pos, c.Text)
					}
					end := strings.Index(rest[1:], `"`)
					if end < 0 {
						t.Fatalf("%s: unterminated want pattern: %s", pos, c.Text)
					}
					pat := rest[1 : 1+end]
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{
						file:    pos.Filename,
						line:    pos.Line,
						pattern: re,
					})
					rest = strings.TrimSpace(rest[1+end+1:])
				}
			}
		}
	}
	return wants
}

// Run loads the package at importPath from dir/testdata/src and checks
// the analyzer's diagnostics against the `// want` expectations. The
// analysis is fact-aware: packages the fixture imports from the same
// testdata tree get a facts-only pass first (in dependency order), so a
// multi-package fixture exercises Fact export/import exactly like the
// real drivers.
func Run(t *testing.T, dir string, a *lint.Analyzer, importPath string) {
	t.Helper()
	srcRoot := filepath.Join(dir, "testdata", "src")
	resolve := lint.GopathResolver(srcRoot)
	loader := lint.NewLoader(resolve, "")
	inScope := func(p string) bool { return resolve(p) != "" }
	session := lint.NewSession(loader, []*lint.Analyzer{a}, inScope)
	diags, units, err := session.Analyze(importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", importPath, err)
	}
	var wants []*expectation
	for _, unit := range units {
		wants = append(wants, parseWants(t, loader.Fset, unit.Files)...)
	}
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose pattern matches the message.
func claim(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
