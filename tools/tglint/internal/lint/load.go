package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one type-checked analysis unit: a package's compiled files plus,
// optionally, its in-package test files, or an external _test package.
type Unit struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages without the go toolchain,
// resolving imports from a configurable source tree and falling back to
// type-checking the standard library from $GOROOT/src. It serves the
// standalone tglint driver and the analyzer golden tests; the `go vet`
// driver instead consumes export data handed to it by cmd/go.
type Loader struct {
	Fset *token.FileSet
	// Resolve maps an import path to the directory holding its source, or
	// "" when the loader does not provide it (then the standard-library
	// source importer is consulted).
	Resolve func(importPath string) string
	// GoVersion, when non-empty (e.g. "go1.22"), bounds the language
	// version accepted by the type checker.
	GoVersion string

	std types.ImporterFrom
	// pkgs caches the canonical library-only unit per import path. Exactly
	// one *types.Package instance may ever exist per path within a loader:
	// the type checker compares Named types by identity, so a second check
	// of the same source produces types incompatible with the first.
	pkgs map[string]*Unit
}

// NewLoader returns a loader resolving imports through resolve.
func NewLoader(resolve func(string) string, goVersion string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:      fset,
		Resolve:   resolve,
		GoVersion: goVersion,
		std:       importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:      make(map[string]*Unit),
	}
}

// ModuleResolver maps import paths below modulePath into rootDir.
func ModuleResolver(modulePath, rootDir string) func(string) string {
	return func(path string) string {
		if path == modulePath {
			return rootDir
		}
		if rest, ok := strings.CutPrefix(path, modulePath+"/"); ok {
			return filepath.Join(rootDir, filepath.FromSlash(rest))
		}
		return ""
	}
}

// GopathResolver maps any import path into srcRoot (GOPATH-style layout,
// as used by the analyzer testdata trees).
func GopathResolver(srcRoot string) func(string) string {
	return func(path string) string {
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir
		}
		return ""
	}
}

// parseDir parses the buildable .go files of dir, honoring build
// constraints, split into compiled, in-package test, and external test
// file groups.
func (l *Loader) parseDir(dir string) (lib, test, xtest []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	ctxt := build.Default
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		match, err := ctxt.MatchFile(dir, e.Name())
		if err != nil {
			return nil, nil, nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		if match {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			lib = append(lib, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			xtest = append(xtest, f)
		default:
			test = append(test, f)
		}
	}
	return lib, test, xtest, nil
}

// importPkg type-checks the compiled (non-test) variant of path for use
// as an import, caching the resulting unit.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	unit, err := l.libUnit(path)
	if err != nil {
		return nil, err
	}
	if unit == nil {
		return l.std.Import(path)
	}
	return unit.Pkg, nil
}

// libUnit returns the canonical library-only unit for path (nil when the
// resolver does not provide it, i.e. the standard library), checking it
// on first use.
func (l *Loader) libUnit(path string) (*Unit, error) {
	if unit, ok := l.pkgs[path]; ok {
		return unit, nil
	}
	dir := l.Resolve(path)
	if dir == "" {
		return nil, nil
	}
	lib, _, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(lib) == 0 {
		return nil, fmt.Errorf("no buildable Go files for %q in %s", path, dir)
	}
	pkg, info, err := l.check(path, lib, nil)
	if err != nil {
		return nil, err
	}
	unit := &Unit{Path: path, Files: lib, Pkg: pkg, Info: info}
	l.pkgs[path] = unit
	return unit, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// check runs the type checker over files as package path. A non-nil
// override importer takes priority over the default resolution; it is
// used to point external _test packages at their package-under-test's
// test variant.
func (l *Loader) check(path string, files []*ast.File, override func(string) (*types.Package, bool)) (*types.Package, *types.Info, error) {
	info := NewTypesInfo()
	var errs []error
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			if override != nil {
				if pkg, ok := override(p); ok {
					return pkg, nil
				}
			}
			return l.importPkg(p)
		}),
		GoVersion: l.GoVersion,
		Error:     func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for _, e := range errs {
			msgs = append(msgs, e.Error())
		}
		return nil, nil, fmt.Errorf("type errors in %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	return pkg, info, nil
}

// LoadForAnalysis parses and type-checks the package at import path
// (which Resolve must map to a directory) and returns its analysis units:
// the primary package — including in-package test files when includeTests
// — plus the external _test package, if any.
func (l *Loader) LoadForAnalysis(path string, includeTests bool) ([]*Unit, error) {
	dir := l.Resolve(path)
	if dir == "" {
		return nil, fmt.Errorf("cannot resolve package %q", path)
	}
	lib, test, xtest, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(lib)+len(test)+len(xtest) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	if !includeTests {
		test, xtest = nil, nil
	}
	var units []*Unit
	var primaryPkg *types.Package
	if len(test) == 0 && len(lib) > 0 {
		// No in-package tests: the primary unit IS the canonical library
		// unit — reuse it (and make it canonical if not yet imported) so
		// dependents see the same *types.Package instance.
		unit, err := l.libUnit(path)
		if err != nil {
			return nil, err
		}
		primaryPkg = unit.Pkg
		units = append(units, unit)
	} else if len(lib)+len(test) > 0 {
		// The test-inclusive variant is checked fresh and never cached: it
		// must not leak into the import graph, where the library variant is
		// canonical.
		primary := append(append([]*ast.File(nil), lib...), test...)
		pkg, info, err := l.check(path, primary, nil)
		if err != nil {
			return nil, err
		}
		primaryPkg = pkg
		units = append(units, &Unit{Path: path, Files: primary, Pkg: pkg, Info: info})
	}
	if len(xtest) > 0 {
		override := func(p string) (*types.Package, bool) {
			if p == path && primaryPkg != nil {
				return primaryPkg, true
			}
			return nil, false
		}
		pkg, info, err := l.check(path+"_test", xtest, override)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{Path: path + "_test", Files: xtest, Pkg: pkg, Info: info})
	}
	return units, nil
}

// FindPackages walks rootDir and returns the import paths of every
// package directory below it (skipping testdata, vendor, and hidden
// directories), mapped under modulePath.
func FindPackages(modulePath, rootDir string) ([]string, error) {
	seen := make(map[string]bool)
	err := filepath.Walk(rootDir, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if p != rootDir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") {
			return nil
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(rootDir, dir)
		if err != nil {
			return err
		}
		var path string
		if rel == "." {
			path = modulePath
		} else {
			path = modulePath + "/" + filepath.ToSlash(rel)
		}
		seen[path] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(seen))
	for path := range seen {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	return paths, nil
}
