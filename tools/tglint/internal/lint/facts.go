package lint

// Facts are tglint's interprocedural layer, mirroring the shape of
// golang.org/x/tools' analysis.Fact: an analyzer attaches a serializable
// fact to a package-level object (or to a package as a whole) while
// analyzing the package that declares it, and analyzers of downstream
// packages read those facts back. Two transports exist:
//
//   - the standalone driver and the golden-test harness share one
//     in-process FactStore across a Session, analyzing module
//     dependencies facts-first;
//   - the `go vet -vettool` driver serializes the store into the .vetx
//     file cmd/go caches per package and reloads the .vetx files of the
//     unit's imports (PackageVetx), so facts survive process boundaries.
//
// Facts are keyed by (normalized package path, object key, fact type),
// never by go/types object identity, so the two transports and repeated
// type-checks of the same source agree on what a fact is attached to.

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is a serializable datum an analyzer exports for a package-level
// object or a package. Implementations must be pointers to JSON-encodable
// structs and are registered via Analyzer.FactTypes.
type Fact interface {
	// AFact marks the type as a fact; it has no behavior.
	AFact()
}

// factKey identifies one stored fact. obj is "" for package facts.
type factKey struct {
	pkg  string // normalized import path of the declaring package
	obj  string // ObjectKey of the declaring object, or "" for the package
	fact string // reflect type string of the fact, e.g. "detflow.NondetFact"
}

// FactStore holds facts across an analysis session or vet unit.
// Drivers are single-threaded; the store is not safe for concurrent use.
type FactStore struct {
	m map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]Fact)}
}

// factName names a fact's concrete type for keys and serialization.
func factName(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.String()
}

// ObjectKey renders a package-level object as a stable string: "F" for
// functions, vars, types, and consts; "T.M" for methods (pointer and
// value receivers collapse to the same key).
func ObjectKey(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok {
				return n.Obj().Name() + "." + fn.Name()
			}
		}
	}
	return obj.Name()
}

// objectPkgPath returns the normalized package path of obj, or "" when
// obj has no package (builtins).
func objectPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return NormalizePkgPath(obj.Pkg().Path())
}

// set stores a fact, replacing any previous fact of the same type on the
// same target.
func (s *FactStore) set(pkg, obj string, f Fact) {
	s.m[factKey{pkg, obj, factName(f)}] = f
}

// get copies the stored fact for (pkg, obj, type of target) into target,
// which must be a pointer to a fact struct. It reports whether a fact was
// found.
func (s *FactStore) get(pkg, obj string, target Fact) bool {
	stored, ok := s.m[factKey{pkg, obj, factName(target)}]
	if !ok {
		return false
	}
	dst := reflect.ValueOf(target)
	src := reflect.ValueOf(stored)
	if dst.Kind() != reflect.Pointer || src.Kind() != reflect.Pointer {
		return false
	}
	dst.Elem().Set(src.Elem())
	return true
}

// factEntry is the serialized form of one fact.
type factEntry struct {
	Pkg  string          `json:"pkg"`
	Obj  string          `json:"obj,omitempty"`
	Fact string          `json:"fact"`
	Data json.RawMessage `json:"data"`
}

// Encode serializes every fact in the store (imported facts included, so
// a package's .vetx re-exports its dependencies' facts and transitive
// imports need not be walked by the consumer). Output is deterministic.
func (s *FactStore) Encode() ([]byte, error) {
	keys := make([]factKey, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.pkg != b.pkg {
			return a.pkg < b.pkg
		}
		if a.obj != b.obj {
			return a.obj < b.obj
		}
		return a.fact < b.fact
	})
	entries := make([]factEntry, 0, len(keys))
	for _, k := range keys {
		data, err := json.Marshal(s.m[k])
		if err != nil {
			return nil, fmt.Errorf("lint: encoding fact %s on %s.%s: %w", k.fact, k.pkg, k.obj, err)
		}
		entries = append(entries, factEntry{Pkg: k.pkg, Obj: k.obj, Fact: k.fact, Data: data})
	}
	return json.Marshal(entries)
}

// FactRegistry maps serialized fact type names to prototypes, built from
// the analyzer suite's FactTypes declarations.
type FactRegistry map[string]reflect.Type

// NewFactRegistry collects the fact types declared by analyzers.
func NewFactRegistry(analyzers []*Analyzer) FactRegistry {
	reg := make(FactRegistry)
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f)
			for t.Kind() == reflect.Pointer {
				t = t.Elem()
			}
			reg[t.String()] = t
		}
	}
	return reg
}

// Decode merges serialized facts into the store. Facts of types absent
// from the registry are skipped (an older tool version may have written
// them); malformed data is an error. Empty input is a valid empty set.
func (s *FactStore) Decode(data []byte, reg FactRegistry) error {
	if len(data) == 0 {
		return nil
	}
	var entries []factEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return fmt.Errorf("lint: decoding facts: %w", err)
	}
	for _, e := range entries {
		t, ok := reg[e.Fact]
		if !ok {
			continue
		}
		f, ok := reflect.New(t).Interface().(Fact)
		if !ok {
			continue
		}
		if err := json.Unmarshal(e.Data, f); err != nil {
			return fmt.Errorf("lint: decoding fact %s on %s.%s: %w", e.Fact, e.Pkg, e.Obj, err)
		}
		s.m[factKey{e.Pkg, e.Obj, e.Fact}] = f
	}
	return nil
}

// ExportObjectFact attaches a fact to obj, a package-level object of the
// pass's package.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.facts == nil || obj == nil {
		return
	}
	pkg := objectPkgPath(obj)
	if pkg == "" {
		return
	}
	p.facts.set(pkg, ObjectKey(obj), f)
}

// ImportObjectFact copies the fact of target's type attached to obj into
// target and reports whether one exists. Same-session facts exported by
// earlier passes (dependencies first) are visible.
func (p *Pass) ImportObjectFact(obj types.Object, target Fact) bool {
	if p.facts == nil || obj == nil {
		return false
	}
	pkg := objectPkgPath(obj)
	if pkg == "" {
		return false
	}
	return p.facts.get(pkg, ObjectKey(obj), target)
}

// ExportPackageFact attaches a fact to the pass's package.
func (p *Pass) ExportPackageFact(f Fact) {
	if p.facts == nil {
		return
	}
	p.facts.set(p.PkgPath(), "", f)
}

// ImportPackageFact copies the package fact of target's type attached to
// pkgPath into target and reports whether one exists.
func (p *Pass) ImportPackageFact(pkgPath string, target Fact) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.get(NormalizePkgPath(pkgPath), "", target)
}
