package main

// The single analyzer registry both drivers consume. Standalone and
// vettool modes MUST expose identical analyzer sets — an analyzer that
// runs in only one mode silently weakens either local `tglint ./...`
// runs or the CI `go vet -vettool` gate. driver_test.go locks this
// invariant; add new analyzers in internal/checks.All, never here.

import (
	"tailguard/tools/tglint/internal/checks"
	"tailguard/tools/tglint/internal/lint"
	"tailguard/tools/tglint/internal/report"
)

// suite is the analyzer set shared by runStandalone and runVetUnit.
var suite = checks.All()

// factRegistry deserializes facts for every analyzer in the suite.
var factRegistry = lint.NewFactRegistry(suite)

// suiteRules renders the suite as SARIF rule metadata.
func suiteRules() []report.Rule {
	rules := make([]report.Rule, 0, len(suite))
	for _, a := range suite {
		rules = append(rules, report.Rule{ID: a.Name, Doc: a.Doc})
	}
	return rules
}
