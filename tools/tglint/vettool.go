package main

// The `go vet -vettool` driver: cmd/go writes a JSON config per package
// (see vetConfig in cmd/go/internal/work/exec.go) and invokes the tool
// with its path. The tool type-checks the unit against the export data
// cmd/go already built for its imports, runs the analyzers, prints
// findings to stderr as file:line:col: messages, and writes the
// (for tglint: empty — no cross-package facts) .vetx output file that
// cmd/go caches. This mirrors x/tools' unitchecker, which cannot be
// vendored here (offline build).

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"tailguard/tools/tglint/internal/checks"
	"tailguard/tools/tglint/internal/lint"
)

// vetConfig mirrors cmd/go's serialized vet configuration (fields we do
// not consume are omitted; unknown JSON fields are ignored).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string // import path in source -> canonical package path
	PackageFile map[string]string // canonical package path -> export data file
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// selfHash content-addresses the running executable for -V=full.
func selfHash() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	f, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16]), nil
}

// writeVetx writes the facts output cmd/go expects. tglint's analyzers
// are package-local, so the facts file is always empty; writing it keeps
// cmd/go's vet result caching working.
func writeVetx(cfg *vetConfig) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
}

// runVetUnit processes one vet.cfg and returns the process exit code.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tglint: reading %s: %v\n", cfgPath, err)
		return 2
	}
	cfg := &vetConfig{}
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tglint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	if err := writeVetx(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
		return 2
	}
	if cfg.VetxOnly {
		// Dependency pass: cmd/go only wants facts, and we have none.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	// Imports resolve through the export data cmd/go compiled for this
	// unit: source import path -> ImportMap -> PackageFile.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})

	info := lint.NewTypesInfo()
	tc := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "tglint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	diags, err := lint.Run(checks.All(), fset, files, pkg, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
