package main

// The `go vet -vettool` driver: cmd/go writes a JSON config per package
// (see vetConfig in cmd/go/internal/work/exec.go) and invokes the tool
// with its path. The tool type-checks the unit against the export data
// cmd/go already built for its imports, runs the analyzers, prints
// findings to stderr as file:line:col: messages, and writes the .vetx
// output file that cmd/go caches. Facts ride the .vetx files: the facts
// of this unit's imports arrive via PackageVetx, the unit's own facts
// (plus re-exported imported facts, so transitivity needs no graph walk
// here) leave via VetxOutput. Dependency-only units (VetxOnly) of this
// module are analyzed for their facts; diagnostics print only for the
// requested packages. This mirrors x/tools' unitchecker, which cannot be
// vendored here (offline build).

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"tailguard/tools/tglint/internal/lint"
)

// vetConfig mirrors cmd/go's serialized vet configuration (fields we do
// not consume are omitted; unknown JSON fields are ignored).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string // import path in source -> canonical package path
	PackageFile map[string]string // canonical package path -> export data file
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// selfHash content-addresses the running executable for -V=full.
func selfHash() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	f, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16]), nil
}

// writeVetx serializes the fact store into the output file cmd/go
// caches and hands to dependent units via their PackageVetx maps.
func writeVetx(cfg *vetConfig, facts *lint.FactStore) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	data, err := facts.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.VetxOutput, data, 0o666)
}

// loadImportFacts merges the .vetx fact files of the unit's imports into
// a fresh store. Missing files are tolerated (stdlib units produce empty
// fact sets); malformed ones are errors.
func loadImportFacts(cfg *vetConfig) (*lint.FactStore, error) {
	facts := lint.NewFactStore()
	pkgs := make([]string, 0, len(cfg.PackageVetx))
	for pkg := range cfg.PackageVetx {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs) // deterministic merge (and error) order
	for _, pkg := range pkgs {
		data, err := os.ReadFile(cfg.PackageVetx[pkg])
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, fmt.Errorf("reading facts of %s: %w", pkg, err)
		}
		if err := facts.Decode(data, factRegistry); err != nil {
			return nil, fmt.Errorf("facts of %s: %w", pkg, err)
		}
	}
	return facts, nil
}

// factProducingUnit reports whether the unit can contribute facts: only
// this module's packages export them, so standard-library dependency
// units skip parsing and type-checking entirely.
func factProducingUnit(cfg *vetConfig) bool {
	return !cfg.Standard[cfg.ImportPath] &&
		strings.HasPrefix(lint.NormalizePkgPath(cfg.ImportPath), "tailguard")
}

// runVetUnit processes one vet.cfg and returns the process exit code.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tglint: reading %s: %v\n", cfgPath, err)
		return 2
	}
	cfg := &vetConfig{}
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tglint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	facts, err := loadImportFacts(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
		return 2
	}
	if cfg.VetxOnly && !factProducingUnit(cfg) {
		// Dependency pass outside the module: nothing to analyze, no facts
		// beyond the (re-exported) imported ones.
		if err := writeVetx(cfg, facts); err != nil {
			fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
			return 2
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return exitWritingVetx(cfg, facts, 0)
			}
			fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	// Imports resolve through the export data cmd/go compiled for this
	// unit: source import path -> ImportMap -> PackageFile.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})

	info := lint.NewTypesInfo()
	tc := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return exitWritingVetx(cfg, facts, 0)
		}
		fmt.Fprintf(os.Stderr, "tglint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	diags, err := lint.Run(suite, fset, files, pkg, info, facts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
		return 2
	}
	if cfg.VetxOnly {
		// Facts pass for a dependency of the requested packages: the facts
		// file is the product; diagnostics belong to the unit that owns
		// them and will print when (if) it is requested itself.
		return exitWritingVetx(cfg, facts, 0)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	exit := 0
	if len(diags) > 0 {
		exit = 1
	}
	return exitWritingVetx(cfg, facts, exit)
}

// exitWritingVetx writes the facts output and returns exit, upgrading it
// to an operational error if the write fails.
func exitWritingVetx(cfg *vetConfig, facts *lint.FactStore, exit int) int {
	if err := writeVetx(cfg, facts); err != nil {
		fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
		return 2
	}
	return exit
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
