package main

// The standalone driver: `tglint [flags] ./...` (or `tglint` with no
// arguments) walks the module containing the working directory,
// type-checks every package from source — the standard library included,
// via $GOROOT/src, so it works without a module proxy or build cache —
// and runs the analyzer suite. Like the `go vet` driver it analyzes test
// files too (in-package and external test packages); each analyzer's own
// filters decide what applies there. Before a package's diagnostics run,
// its module dependencies get a facts-only pass (lint.Session), so the
// interprocedural analyzers (detflow, lockorder) see across package
// boundaries exactly as they do under `go vet -vettool`.
//
// Flags (standalone mode only; the vet protocol accepts none):
//
//	-json             emit findings as a JSON array instead of text
//	-sarif            emit findings as SARIF 2.1.0 instead of text
//	-o FILE           write the structured report to FILE (default stdout)
//	-baseline FILE    suppress findings matched by unexpired baseline
//	                  entries (see lint-baseline.json)

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"time"

	"tailguard/tools/tglint/internal/lint"
	"tailguard/tools/tglint/internal/report"
)

// standaloneOpts are the parsed standalone-mode flags.
type standaloneOpts struct {
	json     bool
	sarif    bool
	out      string
	baseline string
	patterns []string
}

// parseStandaloneArgs splits flags from package patterns.
func parseStandaloneArgs(args []string) (*standaloneOpts, error) {
	opts := &standaloneOpts{}
	for i := 0; i < len(args); i++ {
		arg := args[i]
		next := func(name string) (string, error) {
			if i+1 >= len(args) {
				return "", fmt.Errorf("flag %s needs a value", name)
			}
			i++
			return args[i], nil
		}
		switch {
		case arg == "-json" || arg == "--json":
			opts.json = true
		case arg == "-sarif" || arg == "--sarif":
			opts.sarif = true
		case arg == "-o" || arg == "--o":
			v, err := next("-o")
			if err != nil {
				return nil, err
			}
			opts.out = v
		case arg == "-baseline" || arg == "--baseline":
			v, err := next("-baseline")
			if err != nil {
				return nil, err
			}
			opts.baseline = v
		case strings.HasPrefix(arg, "-"):
			return nil, fmt.Errorf("unknown flag %s", arg)
		default:
			opts.patterns = append(opts.patterns, arg)
		}
	}
	if opts.json && opts.sarif {
		return nil, fmt.Errorf("-json and -sarif are mutually exclusive")
	}
	return opts, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory, module path, and Go language version.
func findModule(dir string) (root, modPath, goVersion string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			m := regexp.MustCompile(`(?m)^module\s+(\S+)`).FindSubmatch(data)
			if m == nil {
				return "", "", "", fmt.Errorf("no module directive in %s/go.mod", dir)
			}
			goVersion := ""
			if g := regexp.MustCompile(`(?m)^go\s+(\S+)`).FindSubmatch(data); g != nil {
				goVersion = "go" + string(g[1])
			}
			return dir, string(m[1]), goVersion, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// runStandalone lints the requested packages and returns the exit code.
// Supported patterns: "./..." (everything), "./dir/..." (subtree), and
// plain package directories.
func runStandalone(args []string) int {
	opts, err := parseStandaloneArgs(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
		return 2
	}
	root, modPath, goVersion, err := findModule(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
		return 2
	}
	all, err := lint.FindPackages(modPath, root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
		return 2
	}

	paths, err := selectPackages(all, opts.patterns, cwd, root, modPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
		return 2
	}

	var base *report.Baseline
	if opts.baseline != "" {
		base, err = report.LoadBaseline(opts.baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
			return 2
		}
	}

	loader := lint.NewLoader(lint.ModuleResolver(modPath, root), goVersion)
	inModule := func(p string) bool {
		return p == modPath || strings.HasPrefix(p, modPath+"/")
	}
	session := lint.NewSession(loader, suite, inModule)

	var findings []report.Finding
	for _, path := range paths {
		diags, _, err := session.Analyze(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			findings = append(findings,
				report.New(d.Analyzer.Name, loader.Fset.Position(d.Pos), d.Message, root))
		}
	}
	report.Sort(findings)

	if base != nil {
		kept, suppressed, overdue := base.Apply(findings, time.Now())
		findings = kept
		if len(suppressed) > 0 {
			fmt.Fprintf(os.Stderr, "tglint: %d finding(s) suppressed by baseline %s\n",
				len(suppressed), opts.baseline)
		}
		for _, e := range overdue {
			fmt.Fprintf(os.Stderr, "tglint: baseline entry expired %s (%s); its findings now report\n",
				e.Expires, e.Reason)
		}
	}

	if err := emitFindings(opts, findings); err != nil {
		fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
		return 2
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// emitFindings writes the findings in the selected format. The
// structured formats always write (an empty report is meaningful — CI
// archives it as the "no findings" artifact); the text format prints to
// stderr like go vet, one line per finding.
func emitFindings(opts *standaloneOpts, findings []report.Finding) error {
	if !opts.json && !opts.sarif {
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
		return nil
	}
	var w io.Writer = os.Stdout
	if opts.out != "" {
		file, err := os.Create(opts.out)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	if opts.sarif {
		return report.WriteSARIF(w, findings, suiteRules())
	}
	return report.WriteJSON(w, findings)
}

// selectPackages expands command-line patterns against the module's
// package list. The default pattern "./..." from the module root spans
// the entire module — internal/..., cmd/..., tools/... (the linters lint
// themselves), and the root package alike.
func selectPackages(all, args []string, cwd, root, modPath string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	// Import path prefix of the working directory within the module.
	rel, err := filepath.Rel(root, cwd)
	if err != nil {
		return nil, err
	}
	base := modPath
	if rel != "." {
		base = modPath + "/" + filepath.ToSlash(rel)
	}
	var out []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		switch {
		case arg == "./...":
			prefix := base
			for _, p := range all {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
				}
			}
		case strings.HasSuffix(arg, "/..."):
			sub := strings.TrimSuffix(arg, "/...")
			prefix := joinImportPath(base, sub)
			for _, p := range all {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
				}
			}
		default:
			if arg == modPath || strings.HasPrefix(arg, modPath+"/") {
				add(arg) // already a full import path
			} else {
				add(joinImportPath(base, arg))
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %v", args)
	}
	return out, nil
}

// joinImportPath resolves a relative package argument against the base
// import path.
func joinImportPath(base, arg string) string {
	arg = strings.TrimPrefix(arg, "./")
	arg = strings.TrimSuffix(arg, "/")
	if arg == "" || arg == "." {
		return base
	}
	return base + "/" + arg
}
