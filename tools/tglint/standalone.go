package main

// The standalone driver: `tglint ./...` (or `tglint` with no arguments)
// walks the module containing the working directory, type-checks every
// package from source — the standard library included, via $GOROOT/src,
// so it works without a module proxy or build cache — and runs the
// analyzer suite. Like the `go vet` driver it analyzes test files too
// (in-package and external test packages); each analyzer's own filters
// decide what applies there.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"tailguard/tools/tglint/internal/checks"
	"tailguard/tools/tglint/internal/lint"
)

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory, module path, and Go language version.
func findModule(dir string) (root, modPath, goVersion string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			m := regexp.MustCompile(`(?m)^module\s+(\S+)`).FindSubmatch(data)
			if m == nil {
				return "", "", "", fmt.Errorf("no module directive in %s/go.mod", dir)
			}
			goVersion := ""
			if g := regexp.MustCompile(`(?m)^go\s+(\S+)`).FindSubmatch(data); g != nil {
				goVersion = "go" + string(g[1])
			}
			return dir, string(m[1]), goVersion, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// runStandalone lints the requested packages and returns the exit code.
// Supported patterns: "./..." (everything), "./dir/..." (subtree), and
// plain package directories.
func runStandalone(args []string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
		return 2
	}
	root, modPath, goVersion, err := findModule(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
		return 2
	}
	all, err := lint.FindPackages(modPath, root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
		return 2
	}

	paths, err := selectPackages(all, args, cwd, root, modPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
		return 2
	}

	loader := lint.NewLoader(lint.ModuleResolver(modPath, root), goVersion)
	exit := 0
	for _, path := range paths {
		units, err := loader.LoadForAnalysis(path, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
			return 2
		}
		for _, unit := range units {
			diags, err := lint.Run(checks.All(), loader.Fset, unit.Files, unit.Pkg, unit.Info)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tglint: %v\n", err)
				return 2
			}
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "%s: %s [%s]\n",
					loader.Fset.Position(d.Pos), d.Message, d.Analyzer.Name)
				exit = 1
			}
		}
	}
	return exit
}

// selectPackages expands command-line patterns against the module's
// package list.
func selectPackages(all, args []string, cwd, root, modPath string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	// Import path prefix of the working directory within the module.
	rel, err := filepath.Rel(root, cwd)
	if err != nil {
		return nil, err
	}
	base := modPath
	if rel != "." {
		base = modPath + "/" + filepath.ToSlash(rel)
	}
	var out []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		switch {
		case arg == "./...":
			prefix := base
			for _, p := range all {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
				}
			}
		case strings.HasSuffix(arg, "/..."):
			sub := strings.TrimSuffix(arg, "/...")
			prefix := joinImportPath(base, sub)
			for _, p := range all {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
				}
			}
		default:
			if arg == modPath || strings.HasPrefix(arg, modPath+"/") {
				add(arg) // already a full import path
			} else {
				add(joinImportPath(base, arg))
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %v", args)
	}
	return out, nil
}

// joinImportPath resolves a relative package argument against the base
// import path.
func joinImportPath(base, arg string) string {
	arg = strings.TrimPrefix(arg, "./")
	arg = strings.TrimSuffix(arg, "/")
	if arg == "" || arg == "." {
		return base
	}
	return base + "/" + arg
}
