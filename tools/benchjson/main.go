// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report. CI pipes the benchmark run through it to
// produce BENCH_harness.json, so ns/op, B/op, allocs/op and the custom
// b.ReportMetric series can be tracked across commits without scraping
// logs.
//
// Usage:
//
//	go test -bench . | go run ./tools/benchjson -o BENCH_harness.json
//	go run ./tools/benchjson bench.txt
//
// When both BenchmarkSweepFig4Sequential and BenchmarkSweepFig4Parallel
// appear in the input, the report's derived section includes
// fig4_sweep_speedup (sequential ns/op over parallel ns/op) and each
// sweep's wall-clock in seconds.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including any -N GOMAXPROCS suffix.
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric series (unit -> value).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full JSON document.
type Report struct {
	GOOS       string             `json:"goos,omitempty"`
	GOARCH     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Pkg        string             `json:"pkg,omitempty"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	var outPath string
	var inputs []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-o", "--o", "-output":
			i++
			if i >= len(args) {
				return fmt.Errorf("%s needs a path", args[i-1])
			}
			outPath = args[i]
		default:
			inputs = append(inputs, args[i])
		}
	}

	in := stdin
	if len(inputs) > 0 {
		f, err := os.Open(inputs[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	rep, err := Parse(in)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath != "" {
		return os.WriteFile(outPath, data, 0o644)
	}
	_, err = stdout.Write(data)
	return err
}

// Parse reads `go test -bench` output and builds the report.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines in input")
	}
	rep.Derived = derive(rep.Benchmarks)
	return rep, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   100   12345 ns/op   456 B/op   7 allocs/op   8.9 tasks/s
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// derive computes cross-benchmark quantities, currently the Fig. 4 sweep
// speedup and per-sweep wall-clock.
func derive(bs []Benchmark) map[string]float64 {
	find := func(base string) *Benchmark {
		for i := range bs {
			name := bs[i].Name
			// Strip the -N GOMAXPROCS suffix, if any.
			if j := strings.LastIndex(name, "-"); j > 0 {
				if _, err := strconv.Atoi(name[j+1:]); err == nil {
					name = name[:j]
				}
			}
			if name == base {
				return &bs[i]
			}
		}
		return nil
	}
	d := map[string]float64{}
	seq := find("BenchmarkSweepFig4Sequential")
	par := find("BenchmarkSweepFig4Parallel")
	if seq != nil {
		d["fig4_sweep_sequential_s"] = seq.NsPerOp / 1e9
	}
	if par != nil {
		d["fig4_sweep_parallel_s"] = par.NsPerOp / 1e9
	}
	if seq != nil && par != nil && par.NsPerOp > 0 {
		d["fig4_sweep_speedup"] = seq.NsPerOp / par.NsPerOp
	}
	if len(d) == 0 {
		return nil
	}
	return d
}
