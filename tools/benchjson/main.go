// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report. CI pipes the benchmark run through it to
// produce BENCH_harness.json, so ns/op, B/op, allocs/op and the custom
// b.ReportMetric series can be tracked across commits without scraping
// logs.
//
// Usage:
//
//	go test -bench . | go run ./tools/benchjson -o BENCH_harness.json
//	go run ./tools/benchjson bench.txt
//
// When both BenchmarkSweepFig4Sequential and BenchmarkSweepFig4Parallel
// appear in the input, the report's derived section includes
// fig4_sweep_speedup (sequential ns/op over parallel ns/op) and each
// sweep's wall-clock in seconds; the BenchmarkShardedClusterThroughput
// pair likewise yields sharded_tasks_per_s_{1,4}shard and
// sharded_speedup_vs_1shard. Speedup ratios measured at GOMAXPROCS=1 are
// withheld entirely (a *_flagged marker and a note take their place):
// on a single-core runner parallel scaling is impossible by
// construction, so no number is published that could be quoted as one.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including any -N GOMAXPROCS suffix.
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric series (unit -> value).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full JSON document.
type Report struct {
	GOOS       string             `json:"goos,omitempty"`
	GOARCH     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Pkg        string             `json:"pkg,omitempty"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived,omitempty"`
	// Notes carries human-readable caveats about the derived metrics,
	// e.g. a parallel "speedup" measured on a single-core runner.
	Notes []string `json:"notes,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	var outPath string
	var inputs []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-o", "--o", "-output":
			i++
			if i >= len(args) {
				return fmt.Errorf("%s needs a path", args[i-1])
			}
			outPath = args[i]
		default:
			inputs = append(inputs, args[i])
		}
	}

	in := stdin
	if len(inputs) > 0 {
		f, err := os.Open(inputs[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	rep, err := Parse(in)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath != "" {
		return os.WriteFile(outPath, data, 0o644)
	}
	_, err = stdout.Write(data)
	return err
}

// Parse reads `go test -bench` output and builds the report.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines in input")
	}
	rep.Derived, rep.Notes = derive(rep.Benchmarks)
	return rep, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   100   12345 ns/op   456 B/op   7 allocs/op   8.9 tasks/s
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// derive computes cross-benchmark quantities, currently the Fig. 4 sweep
// speedup and per-sweep wall-clock, plus honesty annotations: the core
// count the parallel sweep ran at (its gomaxprocs metric), and an
// explicit flag + note when the measured "speedup" is <= 1.0 or was
// taken at GOMAXPROCS=1 — ratios that must never be quoted as speedups:
// on a single-core runner parallel scaling is impossible by
// construction, so the report says so instead of publishing ~1.0x.
func derive(bs []Benchmark) (map[string]float64, []string) {
	find := func(base string) *Benchmark {
		for i := range bs {
			name := bs[i].Name
			// Strip the -N GOMAXPROCS suffix, if any.
			if j := strings.LastIndex(name, "-"); j > 0 {
				if _, err := strconv.Atoi(name[j+1:]); err == nil {
					name = name[:j]
				}
			}
			if name == base {
				return &bs[i]
			}
		}
		return nil
	}
	d := map[string]float64{}
	var notes []string
	seq := find("BenchmarkSweepFig4Sequential")
	par := find("BenchmarkSweepFig4Parallel")
	if seq != nil {
		d["fig4_sweep_sequential_s"] = seq.NsPerOp / 1e9
	}
	if par != nil {
		d["fig4_sweep_parallel_s"] = par.NsPerOp / 1e9
	}
	procs := 0.0
	if par != nil {
		procs = par.Metrics["gomaxprocs"]
		if procs > 0 {
			d["fig4_sweep_gomaxprocs"] = procs
		}
	}
	if seq != nil && par != nil && par.NsPerOp > 0 {
		speedup := seq.NsPerOp / par.NsPerOp
		switch {
		case procs == 1:
			// Single-core runner: any ratio near 1.0 is dispatch noise,
			// not scaling. Refuse to publish the number as a speedup at
			// all — only the flag and the note appear in the report.
			d["fig4_sweep_speedup_flagged"] = 1
			notes = append(notes, fmt.Sprintf(
				"fig4_sweep_speedup withheld: the %.2fx ratio was measured at GOMAXPROCS=1, where parallel scaling is impossible; rerun on a multi-core runner",
				speedup))
		case speedup <= 1.0:
			d["fig4_sweep_speedup"] = speedup
			d["fig4_sweep_speedup_flagged"] = 1
			note := fmt.Sprintf("fig4_sweep_speedup %.2fx is not a speedup", speedup)
			if procs > 1 {
				note += fmt.Sprintf(" despite GOMAXPROCS=%d; the parallel harness is not scaling", int(procs))
			} else {
				note += "; the parallel sweep did not report its gomaxprocs metric"
			}
			notes = append(notes, note)
		default:
			d["fig4_sweep_speedup"] = speedup
		}
	}
	deriveSharded(find, d, &notes)
	if len(d) == 0 {
		return nil, notes
	}
	return d, notes
}

// deriveSharded derives the sharded-core throughput metrics from the
// BenchmarkShardedClusterThroughput pair: tasks/s at 1 and 4 shards and
// the speedup-vs-1-shard ratio, under the same honesty rule as the Fig. 4
// sweep — a "speedup" measured at GOMAXPROCS=1 is withheld (flag + note
// only), because the shards are goroutines and cannot scale on one core.
func deriveSharded(find func(string) *Benchmark, d map[string]float64, notes *[]string) {
	one := find("BenchmarkShardedClusterThroughput/shards=1")
	four := find("BenchmarkShardedClusterThroughput/shards=4")
	if one != nil {
		if v := one.Metrics["tasks/s"]; v > 0 {
			d["sharded_tasks_per_s_1shard"] = v
		}
	}
	if four == nil {
		return
	}
	if v := four.Metrics["tasks/s"]; v > 0 {
		d["sharded_tasks_per_s_4shard"] = v
	}
	procs := four.Metrics["gomaxprocs"]
	if procs > 0 {
		d["sharded_gomaxprocs"] = procs
	}
	if one == nil || one.Metrics["tasks/s"] <= 0 || four.Metrics["tasks/s"] <= 0 {
		return
	}
	speedup := four.Metrics["tasks/s"] / one.Metrics["tasks/s"]
	switch {
	case procs == 1:
		d["sharded_speedup_vs_1shard_flagged"] = 1
		*notes = append(*notes, fmt.Sprintf(
			"sharded_speedup_vs_1shard withheld: the %.2fx ratio was measured at GOMAXPROCS=1, where shard parallelism is impossible; rerun on a multi-core runner",
			speedup))
	case speedup <= 1.0:
		d["sharded_speedup_vs_1shard"] = speedup
		d["sharded_speedup_vs_1shard_flagged"] = 1
		note := fmt.Sprintf("sharded_speedup_vs_1shard %.2fx is not a speedup", speedup)
		if procs > 1 {
			note += fmt.Sprintf(" despite GOMAXPROCS=%d; the sharded core is not scaling", int(procs))
		} else {
			note += "; the sharded benchmark did not report its gomaxprocs metric"
		}
		*notes = append(*notes, note)
	default:
		d["sharded_speedup_vs_1shard"] = speedup
	}
}
