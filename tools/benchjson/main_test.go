package main

import (
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: tailguard
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweepFig4Sequential-8 	       2	2881486444 ns/op	1567148720 B/op	15510086 allocs/op
BenchmarkSweepFig4Parallel-8   	       4	 720371611 ns/op	1567184880 B/op	15510079 allocs/op
BenchmarkSimulatorThroughput   	       1	  30738748 ns/op	   1758567 tasks/s
PASS
ok  	tailguard	5.826s
`

func TestParseSample(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.Pkg != "tailguard" {
		t.Errorf("header = %q/%q/%q", rep.GOOS, rep.GOARCH, rep.Pkg)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	seq := rep.Benchmarks[0]
	if seq.Name != "BenchmarkSweepFig4Sequential-8" || seq.Iterations != 2 {
		t.Errorf("seq = %+v", seq)
	}
	if seq.NsPerOp != 2881486444 || seq.BytesPerOp != 1567148720 || seq.AllocsPerOp != 15510086 {
		t.Errorf("seq values = %+v", seq)
	}
	sim := rep.Benchmarks[2]
	if got := sim.Metrics["tasks/s"]; got != 1758567 {
		t.Errorf("tasks/s = %v, want 1758567", got)
	}
	if got, want := rep.Derived["fig4_sweep_speedup"], 2881486444.0/720371611.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("speedup = %v, want %v", got, want)
	}
	if got := rep.Derived["fig4_sweep_sequential_s"]; math.Abs(got-2.881486444) > 1e-9 {
		t.Errorf("sequential wall-clock = %v", got)
	}
	if _, flagged := rep.Derived["fig4_sweep_speedup_flagged"]; flagged {
		t.Errorf("4x speedup flagged: %v", rep.Notes)
	}
	if len(rep.Notes) != 0 {
		t.Errorf("notes = %v, want none", rep.Notes)
	}
}

// TestDeriveFlagsBogusSpeedup checks that a parallel sweep no faster than
// sequential is flagged instead of silently recorded, and that the
// parallel benchmark's gomaxprocs metric is surfaced in both the derived
// metrics and the note.
func TestDeriveFlagsBogusSpeedup(t *testing.T) {
	const slow = `goos: linux
BenchmarkSweepFig4Sequential 	       1	2794683432 ns/op	1567178032 B/op	15510087 allocs/op
BenchmarkSweepFig4Parallel   	       1	2818023464 ns/op	1567181200 B/op	15510075 allocs/op	         1.000 gomaxprocs
PASS
`
	rep, err := Parse(strings.NewReader(slow))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := rep.Derived["fig4_sweep_speedup_flagged"]; got != 1 {
		t.Errorf("fig4_sweep_speedup_flagged = %v, want 1", got)
	}
	if got := rep.Derived["fig4_sweep_gomaxprocs"]; got != 1 {
		t.Errorf("fig4_sweep_gomaxprocs = %v, want 1", got)
	}
	if len(rep.Notes) != 1 || !strings.Contains(rep.Notes[0], "GOMAXPROCS=1") {
		t.Errorf("notes = %v, want single-core explanation", rep.Notes)
	}
}

// TestDeriveWithholdsSingleCoreSpeedup: at GOMAXPROCS=1 the speedup key
// must be absent entirely — the report carries only the flag and a note,
// never a number that could be quoted as a speedup.
func TestDeriveWithholdsSingleCoreSpeedup(t *testing.T) {
	const singleCore = `goos: linux
BenchmarkSweepFig4Sequential 	       1	2794683432 ns/op
BenchmarkSweepFig4Parallel   	       1	2018023464 ns/op	         1.000 gomaxprocs
PASS
`
	rep, err := Parse(strings.NewReader(singleCore))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if v, ok := rep.Derived["fig4_sweep_speedup"]; ok {
		t.Errorf("fig4_sweep_speedup = %v emitted at GOMAXPROCS=1, want withheld", v)
	}
	if got := rep.Derived["fig4_sweep_speedup_flagged"]; got != 1 {
		t.Errorf("fig4_sweep_speedup_flagged = %v, want 1", got)
	}
	if len(rep.Notes) != 1 || !strings.Contains(rep.Notes[0], "withheld") {
		t.Errorf("notes = %v, want a withheld explanation", rep.Notes)
	}
}

// TestDeriveShardedSingleCore: the sharded throughput pair surfaces
// tasks/s for both shard counts, but the speedup-vs-1-shard ratio is
// withheld (flag + note) when measured at GOMAXPROCS=1.
func TestDeriveShardedSingleCore(t *testing.T) {
	const sharded = `goos: linux
BenchmarkShardedClusterThroughput/shards=1 	       1	 332838829 ns/op	         1.000 gomaxprocs	         1.000 shards	   1624042 tasks/s
BenchmarkShardedClusterThroughput/shards=4 	       1	 399336299 ns/op	         1.000 gomaxprocs	         4.000 shards	   1353606 tasks/s
PASS
`
	rep, err := Parse(strings.NewReader(sharded))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := rep.Derived["sharded_tasks_per_s_1shard"]; got != 1624042 {
		t.Errorf("sharded_tasks_per_s_1shard = %v, want 1624042", got)
	}
	if got := rep.Derived["sharded_tasks_per_s_4shard"]; got != 1353606 {
		t.Errorf("sharded_tasks_per_s_4shard = %v, want 1353606", got)
	}
	if got := rep.Derived["sharded_gomaxprocs"]; got != 1 {
		t.Errorf("sharded_gomaxprocs = %v, want 1", got)
	}
	if v, ok := rep.Derived["sharded_speedup_vs_1shard"]; ok {
		t.Errorf("sharded_speedup_vs_1shard = %v emitted at GOMAXPROCS=1, want withheld", v)
	}
	if got := rep.Derived["sharded_speedup_vs_1shard_flagged"]; got != 1 {
		t.Errorf("sharded_speedup_vs_1shard_flagged = %v, want 1", got)
	}
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "sharded_speedup_vs_1shard withheld") {
			found = true
		}
	}
	if !found {
		t.Errorf("notes = %v, want a sharded withheld explanation", rep.Notes)
	}
}

// TestDeriveShardedMultiCore: on a real multi-core runner the ratio is
// published unflagged.
func TestDeriveShardedMultiCore(t *testing.T) {
	const sharded = `goos: linux
BenchmarkShardedClusterThroughput/shards=1-8 	       1	 300000000 ns/op	         8.000 gomaxprocs	         1.000 shards	   1000000 tasks/s
BenchmarkShardedClusterThroughput/shards=4-8 	       1	 100000000 ns/op	         8.000 gomaxprocs	         4.000 shards	   3200000 tasks/s
PASS
`
	rep, err := Parse(strings.NewReader(sharded))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := rep.Derived["sharded_speedup_vs_1shard"]; math.Abs(got-3.2) > 1e-9 {
		t.Errorf("sharded_speedup_vs_1shard = %v, want 3.2", got)
	}
	if _, flagged := rep.Derived["sharded_speedup_vs_1shard_flagged"]; flagged {
		t.Errorf("3.2x speedup at GOMAXPROCS=8 flagged: %v", rep.Notes)
	}
	if len(rep.Notes) != 0 {
		t.Errorf("notes = %v, want none", rep.Notes)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Error("Parse of benchmark-free input succeeded, want error")
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	in := sample + "BenchmarkBroken notanumber 12 ns/op\n"
	rep, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Errorf("parsed %d benchmarks, want 3 (malformed line kept?)", len(rep.Benchmarks))
	}
}
