package tailguard

// Exercises the public facade end to end: everything a downstream user
// touches must be reachable through the root package alone.

import (
	"bytes"
	"math"
	"testing"
)

func TestFacadePolicies(t *testing.T) {
	if len(Specs()) != 4 {
		t.Fatalf("Specs() = %d entries, want 4", len(Specs()))
	}
	s, err := SpecByName("tailguard")
	if err != nil {
		t.Fatalf("SpecByName: %v", err)
	}
	if s != TFEDFQ {
		t.Errorf("SpecByName(tailguard) = %+v", s)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Error("SpecByName(nope) succeeded, want error")
	}
}

func TestFacadeDeadlineMath(t *testing.T) {
	w, err := TailbenchWorkload("masstree")
	if err != nil {
		t.Fatalf("TailbenchWorkload: %v", err)
	}
	est, err := NewHomogeneousStaticTailEstimator(w.ServiceTime, 100)
	if err != nil {
		t.Fatalf("NewHomogeneousStaticTailEstimator: %v", err)
	}
	classes, err := TwoClasses(1.0, 1.5)
	if err != nil {
		t.Fatalf("TwoClasses: %v", err)
	}
	dl, err := NewDeadliner(TFEDFQ, est, classes)
	if err != nil {
		t.Fatalf("NewDeadliner: %v", err)
	}
	b, err := dl.Budget(0, 100)
	if err != nil {
		t.Fatalf("Budget: %v", err)
	}
	if math.Abs(b-0.527) > 1e-9 {
		t.Errorf("budget = %v, want the paper's 0.527 ms", b)
	}
	v, err := SLOViolationProbability(0.01, 100)
	if err != nil || math.Abs(v-0.634) > 0.001 {
		t.Errorf("SLOViolationProbability = %v/%v", v, err)
	}
}

func TestFacadeSimulation(t *testing.T) {
	w, _ := TailbenchWorkload("masstree")
	fan, err := NewInverseProportional([]int{1, 10, 100})
	if err != nil {
		t.Fatalf("NewInverseProportional: %v", err)
	}
	classes, _ := SingleClass(1.4)
	s := Scenario{
		Workload: w, Servers: 100, Spec: TFEDFQ, Fanout: fan,
		Classes: classes, Load: 0.30,
		Fidelity: Fidelity{Queries: 5000, Warmup: 500, MinSamples: 50, LoadTol: 0.02, Seed: 1},
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Scenario.Run: %v", err)
	}
	if res.Completed != 5000 {
		t.Errorf("Completed = %d", res.Completed)
	}
	ok, margin, err := res.MeetsSLOs(classes, 50)
	if err != nil {
		t.Fatalf("MeetsSLOs: %v", err)
	}
	if !ok {
		t.Errorf("generous SLO violated (margin %v)", margin)
	}
	// Per-fanout access through the facade alias.
	var buckets int
	res.ByFanout.Each(func(k int, rec *LatencyRecorder) { buckets++ })
	if buckets != 3 {
		t.Errorf("fanout buckets = %d, want 3", buckets)
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	w, _ := TailbenchWorkload("shore")
	arr, err := NewPoisson(1)
	if err != nil {
		t.Fatalf("NewPoisson: %v", err)
	}
	fan, _ := NewFixedFanout(5)
	classes, _ := SingleClass(10)
	gen, err := NewGenerator(GeneratorConfig{Servers: 20, Arrival: arr, Fanout: fan, Classes: classes}, 1)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	recs, err := GenerateTrace(gen, []Distribution{w.ServiceTime}, 20, 100, 2)
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	var buf bytes.Buffer
	if err := SaveTrace(&buf, recs); err != nil {
		t.Fatalf("SaveTrace: %v", err)
	}
	back, err := LoadTrace(&buf)
	if err != nil {
		t.Fatalf("LoadTrace: %v", err)
	}
	stats, err := SummarizeTrace(back)
	if err != nil {
		t.Fatalf("SummarizeTrace: %v", err)
	}
	if stats.Queries != 100 || stats.Tasks != 500 {
		t.Errorf("trace stats = %+v", stats)
	}
	rep, err := NewReplayer(back)
	if err != nil {
		t.Fatalf("NewReplayer: %v", err)
	}
	est, _ := NewHomogeneousStaticTailEstimator(w.ServiceTime, 20)
	dl, _ := NewDeadliner(TFEDFQ, est, classes)
	res, err := RunCluster(ClusterConfig{
		Servers: 20, Spec: TFEDFQ, ServiceTimes: []Distribution{w.ServiceTime},
		Generator: rep, Classes: classes, Deadliner: dl, Queries: 100,
	})
	if err != nil {
		t.Fatalf("RunCluster over trace: %v", err)
	}
	if res.Completed != 100 {
		t.Errorf("replayed Completed = %d", res.Completed)
	}
}

func TestFacadeRequests(t *testing.T) {
	w, _ := TailbenchWorkload("masstree")
	if got := len(BudgetStrategies()); got != 3 {
		t.Fatalf("BudgetStrategies() = %d, want 3", got)
	}
	res, err := RunRequests(RequestRunConfig{
		Plan:          RequestPlan{Fanouts: []int{1, 10}, SLOMs: 3, Percentile: 0.99},
		Servers:       50,
		Spec:          TFEDFQ,
		Service:       w.ServiceTime,
		Strategy:      BudgetStrategies()[0],
		Load:          0.3,
		Requests:      1000,
		Warmup:        100,
		Seed:          1,
		BudgetSamples: 20000,
	})
	if err != nil {
		t.Fatalf("RunRequests: %v", err)
	}
	if !res.MeetsSLO {
		t.Errorf("request SLO violated at light load: tail %v", res.TailMs)
	}
	x, err := UnloadedRequestQuantile(w.ServiceTime, []int{1, 10}, 0.99, 50000, 1)
	if err != nil {
		t.Fatalf("UnloadedRequestQuantile: %v", err)
	}
	if math.Abs(x-res.XpRu)/res.XpRu > 0.1 {
		t.Errorf("facade UnloadedRequestQuantile = %v, run reported %v", x, res.XpRu)
	}
}

func TestFacadeTestbedPieces(t *testing.T) {
	// Exercise the testbed surface without a full run (covered in
	// internal/saas tests): calibration models and class sets.
	d, err := ClusterDelayModel("wet-lab", 10)
	if err != nil {
		t.Fatalf("ClusterDelayModel: %v", err)
	}
	if math.Abs(d.Mean()-3.1) > 0.01 {
		t.Errorf("compressed wet-lab mean = %v, want 3.1", d.Mean())
	}
	classes, err := SaSClasses(10)
	if err != nil {
		t.Fatalf("SaSClasses: %v", err)
	}
	if classes.Len() != 3 {
		t.Errorf("SaS classes = %d, want 3", classes.Len())
	}
}
