package request

import (
	"fmt"
	"math/rand"

	"tailguard/internal/cluster"
	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/metrics"
	"tailguard/internal/workload"
)

// RunConfig configures a request-workload simulation.
type RunConfig struct {
	Plan     Plan
	Servers  int
	Spec     core.Spec
	Service  dist.Distribution // homogeneous task service-time model
	Strategy Strategy
	// Load is the target cluster utilization; the request arrival rate is
	// derived from it and the plan's total task count.
	Load     float64
	Requests int
	Warmup   int // requests excluded from statistics
	Seed     int64
	// BudgetSamples sizes the Monte Carlo estimate of x_p^{R,u}
	// (default 200000).
	BudgetSamples int
}

// Result aggregates a request-workload run.
type Result struct {
	Cluster     *cluster.Result
	PerRequest  *metrics.LatencyRecorder // request latencies (post-warmup)
	XpRu        float64                  // x_p^{R,u}: unloaded request tail
	TotalBudget float64                  // T_b^R = SLO - x_p^{R,u}
	Budgets     []float64                // per-query budgets T_b,i
	TailMs      float64                  // measured request tail at Plan.Percentile
	MeetsSLO    bool
}

// reqState tracks one in-flight request.
type reqState struct {
	firstArrival float64
	nextQuery    int
}

// requestWorkload wires a request plan into the cluster simulator: it is
// the query source for each request's first query, and the completion hook
// chains the remaining queries and records request latencies.
//
// The single rng is shared between arrival-gap sampling (Next) and server
// placement (place) deliberately: the cluster simulator's event loop
// is single-goroutine, so the accesses never race, and both consumers
// drawing from one seeded stream is what makes a run a deterministic
// function of RunConfig.Seed. Splitting it into per-purpose RNGs would
// change every seeded result for no concurrency benefit.
type requestWorkload struct {
	cfg      RunConfig
	budgets  []float64
	rng      *rand.Rand
	perm     []int
	now      float64
	gap      workload.ArrivalProcess
	nextReq  int64
	pending  map[int64]*reqState
	recorder *metrics.LatencyRecorder
	err      error
}

// Next implements workload.QuerySource: the first query of each request.
func (w *requestWorkload) Next() (workload.Query, bool) {
	if w.nextReq >= int64(w.cfg.Requests) {
		return workload.Query{}, false
	}
	w.now += w.gap.NextGap(w.rng)
	req := w.nextReq
	w.nextReq++
	w.pending[req] = &reqState{firstArrival: w.now, nextQuery: 1}
	return w.query(req, 0, w.now), true
}

// query materializes query idx of request req arriving at the given time.
func (w *requestWorkload) query(req int64, idx int, arrival float64) workload.Query {
	m := len(w.cfg.Plan.Fanouts)
	fanout := w.cfg.Plan.Fanouts[idx]
	return workload.Query{
		ID:        req*int64(m) + int64(idx),
		Arrival:   arrival,
		Class:     0,
		Fanout:    fanout,
		Servers:   w.place(fanout),
		Budget:    w.budgets[idx],
		HasBudget: true,
		Request:   req,
	}
}

// place draws fanout distinct servers (partial Fisher-Yates).
func (w *requestWorkload) place(fanout int) []int {
	n := len(w.perm)
	out := make([]int, fanout)
	for i := 0; i < fanout; i++ {
		j := i + w.rng.Intn(n-i)
		w.perm[i], w.perm[j] = w.perm[j], w.perm[i]
		out[i] = w.perm[i]
	}
	return out
}

// hook is the cluster OnQueryDone callback: issue the next query of the
// request, or record the finished request.
func (w *requestWorkload) hook(q workload.Query, _ float64, now float64) []workload.Query {
	st, ok := w.pending[q.Request]
	if !ok {
		w.err = fmt.Errorf("request: completion for unknown request %d", q.Request)
		return nil
	}
	m := len(w.cfg.Plan.Fanouts)
	if st.nextQuery < m {
		idx := st.nextQuery
		st.nextQuery++
		return []workload.Query{w.query(q.Request, idx, now)}
	}
	delete(w.pending, q.Request)
	if q.Request >= int64(w.cfg.Warmup) {
		if err := w.recorder.Observe(now - st.firstArrival); err != nil {
			w.err = err
		}
	}
	return nil
}

// Run executes a request-workload simulation under the given policy and
// budget strategy.
func Run(cfg RunConfig) (*Result, error) {
	if err := cfg.Plan.validate(); err != nil {
		return nil, err
	}
	if cfg.Servers < 1 {
		return nil, fmt.Errorf("request: need >= 1 server, got %d", cfg.Servers)
	}
	if cfg.Service == nil {
		return nil, fmt.Errorf("request: service distribution required")
	}
	if cfg.Strategy == nil {
		return nil, fmt.Errorf("request: budget strategy required")
	}
	if cfg.Requests < 1 {
		return nil, fmt.Errorf("request: need >= 1 request, got %d", cfg.Requests)
	}
	if cfg.Warmup < 0 || cfg.Warmup >= cfg.Requests {
		return nil, fmt.Errorf("request: warmup %d outside [0, %d)", cfg.Warmup, cfg.Requests)
	}
	if cfg.Load <= 0 {
		return nil, fmt.Errorf("request: load must be positive, got %v", cfg.Load)
	}
	maxFanout := 0
	totalTasks := 0
	for _, k := range cfg.Plan.Fanouts {
		totalTasks += k
		if k > maxFanout {
			maxFanout = k
		}
	}
	if maxFanout > cfg.Servers {
		return nil, fmt.Errorf("request: max fanout %d exceeds cluster size %d", maxFanout, cfg.Servers)
	}
	samples := cfg.BudgetSamples
	if samples == 0 {
		samples = 200000
	}

	// Eqn. 7: T_b^R = x_p^{R,SLO} - x_p^{R,u}; then split across queries.
	xpRu, err := UnloadedRequestQuantile(cfg.Service, cfg.Plan.Fanouts, cfg.Plan.Percentile, samples, cfg.Seed)
	if err != nil {
		return nil, err
	}
	totalBudget := cfg.Plan.SLOMs - xpRu
	xpu := make([]float64, len(cfg.Plan.Fanouts))
	for i, k := range cfg.Plan.Fanouts {
		x, err := dist.HomogeneousQueryQuantile(cfg.Service, k, cfg.Plan.Percentile)
		if err != nil {
			return nil, err
		}
		xpu[i] = x
	}
	budgets, err := cfg.Strategy.Assign(totalBudget, xpu)
	if err != nil {
		return nil, err
	}

	// Arrival rate from target load: each request contributes totalTasks
	// tasks of mean service Service.Mean().
	rate, err := workload.RateForLoad(cfg.Load, cfg.Servers, float64(totalTasks), cfg.Service.Mean())
	if err != nil {
		return nil, err
	}
	arr, err := workload.NewPoisson(rate)
	if err != nil {
		return nil, err
	}

	w := &requestWorkload{
		cfg:      cfg,
		budgets:  budgets,
		rng:      rand.New(rand.NewSource(cfg.Seed + 1)),
		perm:     make([]int, cfg.Servers),
		gap:      arr,
		pending:  make(map[int64]*reqState),
		recorder: metrics.NewLatencyRecorder(cfg.Requests - cfg.Warmup),
	}
	for i := range w.perm {
		w.perm[i] = i
	}

	classes, err := workload.NewClassSet([]workload.Class{{
		ID: 0, Name: "request", SLOMs: cfg.Plan.SLOMs, Percentile: cfg.Plan.Percentile, Weight: 1,
	}})
	if err != nil {
		return nil, err
	}
	est, err := core.NewHomogeneousStaticTailEstimator(cfg.Service, cfg.Servers)
	if err != nil {
		return nil, err
	}
	dl, err := core.NewDeadliner(cfg.Spec, est, classes)
	if err != nil {
		return nil, err
	}

	m := len(cfg.Plan.Fanouts)
	cres, err := cluster.Run(cluster.Config{
		Servers:      cfg.Servers,
		Spec:         cfg.Spec,
		ServiceTimes: []dist.Distribution{cfg.Service},
		Generator:    w,
		Classes:      classes,
		Deadliner:    dl,
		Queries:      cfg.Requests, // first queries come from the source
		Warmup:       cfg.Warmup * m,
		Seed:         cfg.Seed + 2,
		OnQueryDone:  w.hook,
	})
	if err != nil {
		return nil, err
	}
	if w.err != nil {
		return nil, w.err
	}

	res := &Result{
		Cluster:     cres,
		PerRequest:  w.recorder,
		XpRu:        xpRu,
		TotalBudget: totalBudget,
		Budgets:     budgets,
	}
	if w.recorder.Count() > 0 {
		tail, err := w.recorder.Quantile(cfg.Plan.Percentile)
		if err != nil {
			return nil, err
		}
		res.TailMs = tail
		res.MeetsSLO = tail <= cfg.Plan.SLOMs
	}
	return res, nil
}
