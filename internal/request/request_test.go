package request

import (
	"math"
	"testing"

	"tailguard/internal/core"
	"tailguard/internal/dist"
)

func TestPlanValidation(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
	}{
		{"no queries", Plan{SLOMs: 1, Percentile: 0.99}},
		{"bad fanout", Plan{Fanouts: []int{0}, SLOMs: 1, Percentile: 0.99}},
		{"bad slo", Plan{Fanouts: []int{1}, SLOMs: 0, Percentile: 0.99}},
		{"bad percentile", Plan{Fanouts: []int{1}, SLOMs: 1, Percentile: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.plan.validate(); err == nil {
				t.Error("validate succeeded, want error")
			}
		})
	}
}

func TestUnloadedRequestQuantileSingleQuery(t *testing.T) {
	// With M=1 the request quantile equals the query quantile
	// x_p^u(kf) = Q(p^{1/k}).
	exp, _ := dist.NewExponential(1)
	got, err := UnloadedRequestQuantile(exp, []int{10}, 0.99, 400000, 1)
	if err != nil {
		t.Fatalf("UnloadedRequestQuantile: %v", err)
	}
	want, _ := dist.HomogeneousQueryQuantile(exp, 10, 0.99)
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("x99^{R,u} = %v, want ~%v", got, want)
	}
}

func TestUnloadedRequestQuantileSubadditive(t *testing.T) {
	// The paper's point: x_p^{R,u} <= Σ x_p,i^u (tails don't add).
	exp, _ := dist.NewExponential(1)
	fanouts := []int{1, 10, 100}
	got, err := UnloadedRequestQuantile(exp, fanouts, 0.99, 300000, 2)
	if err != nil {
		t.Fatalf("UnloadedRequestQuantile: %v", err)
	}
	var sum float64
	for _, k := range fanouts {
		x, _ := dist.HomogeneousQueryQuantile(exp, k, 0.99)
		sum += x
	}
	if got >= sum {
		t.Errorf("x99^{R,u} = %v not below Σ x99,i = %v", got, sum)
	}
	// But it must exceed the largest single-query tail.
	biggest, _ := dist.HomogeneousQueryQuantile(exp, 100, 0.99)
	if got <= biggest {
		t.Errorf("x99^{R,u} = %v not above max single-query tail %v", got, biggest)
	}
}

func TestUnloadedRequestQuantileValidation(t *testing.T) {
	exp, _ := dist.NewExponential(1)
	if _, err := UnloadedRequestQuantile(nil, []int{1}, 0.99, 1000, 1); err == nil {
		t.Error("nil service succeeded, want error")
	}
	if _, err := UnloadedRequestQuantile(exp, nil, 0.99, 1000, 1); err == nil {
		t.Error("no fanouts succeeded, want error")
	}
	if _, err := UnloadedRequestQuantile(exp, []int{1}, 1.5, 1000, 1); err == nil {
		t.Error("bad percentile succeeded, want error")
	}
	if _, err := UnloadedRequestQuantile(exp, []int{1}, 0.99, 10, 1); err == nil {
		t.Error("too few samples succeeded, want error")
	}
}

func TestStrategiesSumToTotal(t *testing.T) {
	xpu := []float64{0.2, 0.5, 1.5}
	for _, s := range Strategies() {
		for _, total := range []float64{3.0, 0.0, -1.0} {
			got, err := s.Assign(total, xpu)
			if err != nil {
				t.Errorf("%s.Assign(%v): %v", s.Name(), total, err)
				continue
			}
			if len(got) != len(xpu) {
				t.Errorf("%s: %d budgets for %d queries", s.Name(), len(got), len(xpu))
				continue
			}
			var sum float64
			for _, b := range got {
				sum += b
			}
			if math.Abs(sum-total) > 1e-9 {
				t.Errorf("%s.Assign(%v) sums to %v", s.Name(), total, sum)
			}
		}
	}
}

func TestProportionalSplitShape(t *testing.T) {
	got, err := ProportionalSplit{}.Assign(4, []float64{1, 3})
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if math.Abs(got[0]-1) > 1e-12 || math.Abs(got[1]-3) > 1e-12 {
		t.Errorf("proportional budgets = %v, want [1 3]", got)
	}
	// Zero tails degrade to equal split.
	got, err = ProportionalSplit{}.Assign(4, []float64{0, 0})
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if got[0] != 2 || got[1] != 2 {
		t.Errorf("zero-tail proportional = %v, want equal split", got)
	}
	if _, err := (ProportionalSplit{}).Assign(1, []float64{-1}); err == nil {
		t.Error("negative xpu succeeded, want error")
	}
}

func TestInverseFanoutSplitShape(t *testing.T) {
	got, err := InverseFanoutSplit{}.Assign(3, []float64{1, 2})
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	// Weights are (3-1, 3-2) = (2, 1): the small-tail query gets more.
	if got[0] <= got[1] {
		t.Errorf("inverse-fanout budgets = %v, want first > second", got)
	}
}

func TestStrategiesEmptyInput(t *testing.T) {
	for _, s := range Strategies() {
		if _, err := s.Assign(1, nil); err == nil {
			t.Errorf("%s.Assign with no queries succeeded, want error", s.Name())
		}
	}
}

func TestRunRequestWorkload(t *testing.T) {
	w := dist.MustTailbenchWorkload("masstree")
	plan := Plan{Fanouts: []int{1, 10, 50}, SLOMs: 5, Percentile: 0.99}
	res, err := Run(RunConfig{
		Plan:          plan,
		Servers:       100,
		Spec:          core.TFEDFQ,
		Service:       w.ServiceTime,
		Strategy:      EqualSplit{},
		Load:          0.3,
		Requests:      5000,
		Warmup:        500,
		Seed:          7,
		BudgetSamples: 50000,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Every request has 3 queries: the source supplies the first, the
	// hook injects the rest.
	if res.Cluster.Queries != 5000 {
		t.Errorf("source queries = %d, want 5000", res.Cluster.Queries)
	}
	if res.Cluster.Injected != 10000 {
		t.Errorf("injected queries = %d, want 10000", res.Cluster.Injected)
	}
	if res.Cluster.Completed != 15000 {
		t.Errorf("completed queries = %d, want 15000", res.Cluster.Completed)
	}
	if got := res.PerRequest.Count(); got != 4500 {
		t.Errorf("recorded %d requests, want 4500", got)
	}
	// Budget accounting per Eqn. 7.
	if math.Abs(res.TotalBudget-(plan.SLOMs-res.XpRu)) > 1e-12 {
		t.Errorf("TotalBudget = %v, want SLO - XpRu = %v", res.TotalBudget, plan.SLOMs-res.XpRu)
	}
	var sum float64
	for _, b := range res.Budgets {
		sum += b
	}
	if math.Abs(sum-res.TotalBudget) > 1e-9 {
		t.Errorf("budgets sum to %v, want %v", sum, res.TotalBudget)
	}
	// At 30% load with a 5 ms SLO the request tail must comfortably pass.
	if !res.MeetsSLO {
		t.Errorf("request SLO violated: tail %v > %v", res.TailMs, plan.SLOMs)
	}
	// Request latency must be at least the sum of the three unloaded
	// medians (sanity floor).
	if res.TailMs < res.XpRu {
		t.Errorf("loaded request tail %v below unloaded %v", res.TailMs, res.XpRu)
	}
}

func TestRunValidation(t *testing.T) {
	w := dist.MustTailbenchWorkload("masstree")
	good := RunConfig{
		Plan:     Plan{Fanouts: []int{1}, SLOMs: 5, Percentile: 0.99},
		Servers:  10,
		Spec:     core.TFEDFQ,
		Service:  w.ServiceTime,
		Strategy: EqualSplit{},
		Load:     0.3,
		Requests: 10,
		Warmup:   0,
		Seed:     1,
	}
	cases := []struct {
		name   string
		mutate func(*RunConfig)
	}{
		{"bad plan", func(c *RunConfig) { c.Plan.Fanouts = nil }},
		{"no servers", func(c *RunConfig) { c.Servers = 0 }},
		{"nil service", func(c *RunConfig) { c.Service = nil }},
		{"nil strategy", func(c *RunConfig) { c.Strategy = nil }},
		{"no requests", func(c *RunConfig) { c.Requests = 0 }},
		{"warmup too big", func(c *RunConfig) { c.Warmup = 10 }},
		{"bad load", func(c *RunConfig) { c.Load = 0 }},
		{"fanout exceeds cluster", func(c *RunConfig) { c.Plan.Fanouts = []int{50} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good
			tc.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("Run succeeded, want error")
			}
		})
	}
}
