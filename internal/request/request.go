// Package request implements the paper's request-level task decomposition
// (the "remark on meeting request tail latency SLO" in Section III.B and
// the stated future work): a user request is a sequence of M queries
// issued sequentially — query i+1 cannot be issued until query i finishes
// — with a tail-latency SLO on the whole request.
//
// Eqn. 7 establishes that the request pre-dequeuing budget is additive:
//
//	T_b^R = x_p^{R,SLO} - x_p^{R,u} = Σ_i T_b,i
//
// where x_p^{R,u} is the p-quantile of the sum of the constituent queries'
// unloaded latencies. This package computes x_p^{R,u}, splits T_b^R across
// queries under pluggable assignment strategies (the open problem the
// paper poses), and runs request workloads on the cluster simulator via
// its injection hook.
package request

import (
	"fmt"
	"math"
	"math/rand"

	"tailguard/internal/dist"
	"tailguard/internal/metrics"
)

// Plan describes the request template: the fanouts of its M sequential
// queries and the request-level tail-latency SLO.
type Plan struct {
	Fanouts    []int   // fanout of each constituent query, in issue order
	SLOMs      float64 // x_p^{R,SLO}: request tail-latency SLO (ms)
	Percentile float64 // p, e.g. 0.99
}

func (p Plan) validate() error {
	if len(p.Fanouts) == 0 {
		return fmt.Errorf("request: plan needs >= 1 query")
	}
	for i, k := range p.Fanouts {
		if k < 1 {
			return fmt.Errorf("request: query %d fanout %d < 1", i, k)
		}
	}
	if p.SLOMs <= 0 {
		return fmt.Errorf("request: SLO must be positive, got %v", p.SLOMs)
	}
	if p.Percentile <= 0 || p.Percentile >= 1 {
		return fmt.Errorf("request: percentile %v outside (0, 1)", p.Percentile)
	}
	return nil
}

// UnloadedRequestQuantile estimates x_p^{R,u}, the p-quantile of the sum
// of the constituent queries' unloaded latencies, by Monte Carlo over the
// homogeneous service distribution. Each query's unloaded latency is the
// max of kf i.i.d. task times, sampled in O(1) via the inverse-CDF
// identity max_k ~ Q(U^{1/k}).
func UnloadedRequestQuantile(service dist.Distribution, fanouts []int, p float64, samples int, seed int64) (float64, error) {
	if service == nil {
		return 0, fmt.Errorf("request: service distribution required")
	}
	if len(fanouts) == 0 {
		return 0, fmt.Errorf("request: need >= 1 fanout")
	}
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("request: percentile %v outside (0, 1)", p)
	}
	if samples < 100 {
		return 0, fmt.Errorf("request: need >= 100 samples, got %d", samples)
	}
	rng := rand.New(rand.NewSource(seed))
	sums := metrics.NewLatencyRecorder(samples)
	for i := 0; i < samples; i++ {
		var total float64
		for _, k := range fanouts {
			u := rng.Float64()
			total += service.Quantile(math.Pow(u, 1/float64(k)))
		}
		if err := sums.Observe(total); err != nil {
			return 0, err
		}
	}
	return sums.Quantile(p)
}

// Strategy assigns the total request budget T_b^R across the M queries.
// The unloaded per-query tails x_p^u(kf_i) are provided as context.
type Strategy interface {
	Name() string
	// Assign returns M non-negative budgets summing to total (within
	// floating-point error). total may be negative when the SLO is
	// unreachable; strategies then return equal negative shares.
	Assign(total float64, xpu []float64) ([]float64, error)
}

// EqualSplit gives every query the same budget T_b^R / M — optimal when
// the queries are statistically identical (footnote 4's equal-budget
// argument applied across queries).
type EqualSplit struct{}

// Name implements Strategy.
func (EqualSplit) Name() string { return "equal" }

// Assign implements Strategy.
func (EqualSplit) Assign(total float64, xpu []float64) ([]float64, error) {
	if len(xpu) == 0 {
		return nil, fmt.Errorf("request: no queries to assign")
	}
	out := make([]float64, len(xpu))
	share := total / float64(len(xpu))
	for i := range out {
		out[i] = share
	}
	return out, nil
}

// ProportionalSplit assigns budgets proportional to each query's unloaded
// tail x_p^u(kf_i): queries that inherently take longer get proportionally
// more queuing slack. This follows the intuition that task resource
// demand scales with the unloaded tail.
type ProportionalSplit struct{}

// Name implements Strategy.
func (ProportionalSplit) Name() string { return "proportional" }

// Assign implements Strategy.
func (ProportionalSplit) Assign(total float64, xpu []float64) ([]float64, error) {
	if len(xpu) == 0 {
		return nil, fmt.Errorf("request: no queries to assign")
	}
	var sum float64
	for i, x := range xpu {
		if x < 0 {
			return nil, fmt.Errorf("request: negative unloaded tail %v at %d", x, i)
		}
		sum += x
	}
	out := make([]float64, len(xpu))
	if sum == 0 {
		return EqualSplit{}.Assign(total, xpu)
	}
	for i, x := range xpu {
		out[i] = total * x / sum
	}
	return out, nil
}

// InverseFanoutSplit assigns budgets inversely proportional to fanout
// rank: low-fanout queries (which queue behind fewer competitors and are
// cheap to expedite) cede budget to high-fanout ones. Provided as a
// deliberately contrasting baseline for the budget-assignment ablation.
type InverseFanoutSplit struct{}

// Name implements Strategy.
func (InverseFanoutSplit) Name() string { return "inverse-fanout" }

// Assign implements Strategy. It interprets xpu as monotone in fanout and
// weights each query by sum-x_i, giving larger budgets to smaller tails.
func (InverseFanoutSplit) Assign(total float64, xpu []float64) ([]float64, error) {
	if len(xpu) == 0 {
		return nil, fmt.Errorf("request: no queries to assign")
	}
	var sum float64
	for _, x := range xpu {
		sum += x
	}
	weights := make([]float64, len(xpu))
	var wsum float64
	for i, x := range xpu {
		weights[i] = sum - x
		if weights[i] <= 0 {
			weights[i] = sum / float64(len(xpu)) // degenerate single-query case
		}
		wsum += weights[i]
	}
	out := make([]float64, len(xpu))
	for i, w := range weights {
		out[i] = total * w / wsum
	}
	return out, nil
}

// Strategies returns the built-in budget assignment strategies.
func Strategies() []Strategy {
	return []Strategy{EqualSplit{}, ProportionalSplit{}, InverseFanoutSplit{}}
}
