package sim

import (
	"fmt"
	"testing"
)

func TestRunBeforeStopsStrictlyBeforeLimit(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 3.5, 4} {
		at := at
		if err := e.Schedule(at, func() { fired = append(fired, at) }); err != nil {
			t.Fatal(err)
		}
	}
	e.RunBefore(3.5)
	if len(fired) != 3 || fired[2] != 3 {
		t.Fatalf("fired %v, want [1 2 3]", fired)
	}
	if e.Now() != 3 {
		t.Errorf("clock at %v after RunBefore(3.5), want 3 (not advanced to the limit)", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	// Deliveries for the next window (>= limit) must be schedulable.
	if err := e.Schedule(3.5, func() { fired = append(fired, 3.5) }); err != nil {
		t.Fatalf("scheduling at the window limit: %v", err)
	}
	e.Run()
	if len(fired) != 6 {
		t.Fatalf("fired %v, want all 6", fired)
	}
}

func TestShardSetWindowsDeliverInOrder(t *testing.T) {
	const shards = 4
	s := NewShardSet(shards)
	s.Start()
	defer s.Stop()

	// Each shard appends executed event IDs to its own log; windows
	// deliver a few events per shard at the window's start.
	logs := make([][]int, shards)
	window := 0
	setup := func(i int) error {
		base := window*100 + i*10
		lo := float64(window)
		for k := 0; k < 3; k++ {
			id := base + k
			if err := s.Engine(i).Schedule(lo+float64(k)*0.25, func() {
				logs[i] = append(logs[i], id)
			}); err != nil {
				return err
			}
		}
		return nil
	}
	for window = 0; window < 5; window++ {
		if err := s.RunWindow(float64(window+1), setup); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(nil); err != nil {
		t.Fatal(err)
	}
	for i, log := range logs {
		if len(log) != 15 {
			t.Fatalf("shard %d executed %d events, want 15: %v", i, len(log), log)
		}
		for w := 0; w < 5; w++ {
			for k := 0; k < 3; k++ {
				if want := w*100 + i*10 + k; log[w*3+k] != want {
					t.Fatalf("shard %d event %d = %d, want %d", i, w*3+k, log[w*3+k], want)
				}
			}
		}
	}
	if got := s.MaxNow(); got != 4.5 {
		t.Errorf("MaxNow = %v, want 4.5", got)
	}
}

func TestShardSetSetupErrorLowestIndexWins(t *testing.T) {
	s := NewShardSet(3)
	s.Start()
	defer s.Stop()
	err := s.RunWindow(1, func(i int) error {
		if i >= 1 {
			return fmt.Errorf("shard %d boom", i)
		}
		return nil
	})
	if err == nil || err.Error() != "shard 1 boom" {
		t.Fatalf("err = %v, want shard 1 boom", err)
	}
}

func TestShardSetReset(t *testing.T) {
	s := NewShardSet(2)
	s.Start()
	ran := make([]int, s.Len())
	if err := s.RunWindow(2, func(i int) error {
		return s.Engine(i).Schedule(1, func() { ran[i]++ })
	}); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	if ran[0] != 1 || ran[1] != 1 {
		t.Fatalf("ran = %v, want [1 1]", ran)
	}
	s.Reset()
	for i := 0; i < s.Len(); i++ {
		if s.Engine(i).Now() != 0 || s.Engine(i).Pending() != 0 {
			t.Fatalf("shard %d not reset", i)
		}
	}
	// A reset set restarts cleanly.
	s.Start()
	defer s.Stop()
	if err := s.Drain(nil); err != nil {
		t.Fatal(err)
	}
}
