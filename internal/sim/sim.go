// Package sim is a minimal deterministic discrete-event simulation engine.
// It provides a virtual millisecond clock and an event queue with strict
// FIFO tie-breaking, which the cluster simulator builds the TailGuard
// query-processing model on. The queue is a hierarchical timing wheel
// (wheel.go) with O(1) amortized schedule/pop; NewHeapEngine selects the
// original binary heap, kept as the reference oracle — both produce the
// exact same (at, seq) pop order, so results are bit-identical.
//
// The engine is single-threaded by design: determinism (bit-for-bit
// reproducible experiments given a seed) matters more here than parallel
// speedup inside one run; whole runs are parallelized across cores by
// internal/parallel instead.
package sim

import (
	"fmt"
)

// Time is a point in simulated time, in milliseconds.
type Time = float64

// Handler is a pre-bound event callback that receives its payload as
// arguments instead of captured closure state. Scheduling through a
// Handler (ScheduleCall) is allocation-free when arg is a pointer: the
// event carries the handler value and payload inline, so the per-event
// closure allocation of Schedule disappears from the simulator's hot
// path. Bind method values once (h := r.onEvent) and reuse them; the
// method-value expression itself allocates.
type Handler func(arg any, val float64)

// event is one scheduled callback: either a closure (fn) or a pre-bound
// handler with its payload (h, arg, val).
type event struct {
	at  Time
	seq uint64 // schedule order, breaks ties deterministically
	fn  func()
	h   Handler
	arg any
	val float64
}

// eventHeap is a binary min-heap of events ordered by (time, sequence),
// stored by value with hand-specialized sift-up/sift-down. Scheduling
// an event is then a plain slice append — no per-event heap allocation
// and no container/heap interface boxing. (at, seq) is a total order,
// so any correct queue yields the same pop sequence; the heap serves as
// the timing wheel's far-future overflow level and, via NewHeapEngine,
// as the reference implementation the wheel is differentially tested
// against.
type eventHeap []event

// before reports whether event i must pop before event j.
func (h eventHeap) before(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends ev and restores the heap by sifting it up.
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.before(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the earliest event, sifting the displaced
// last element down.
func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	min := s[0]
	s[0] = s[n]
	s[n] = event{} // release the callback for GC
	s = s[:n]
	*h = s
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && s.before(right, left) {
			least = right
		}
		if !s.before(least, i) {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return min
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine (timing-wheel event queue) or NewHeapEngine (reference
// binary heap — identical pop order, used as the differential oracle).
type Engine struct {
	now     Time
	seq     uint64
	w       wheel
	events  eventHeap // reference queue, used only when heapRef is set
	heapRef bool
	stopped bool
}

// NewEngine returns an engine with the clock at zero, backed by the
// hierarchical timing wheel.
func NewEngine() *Engine {
	return &Engine{}
}

// NewHeapEngine returns an engine backed by the original binary event
// heap. It executes the exact same event sequence as NewEngine — (at,
// seq) is a total order, so both queues admit only one pop order — and
// exists as the reference implementation for the wheel-vs-heap property
// tests and the perf-smoke equivalence gate.
func NewHeapEngine() *Engine {
	return &Engine{heapRef: true}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int {
	if e.heapRef {
		return len(e.events)
	}
	return e.w.n
}

// pushEvent files ev into the engine's event queue.
//
//tg:hotpath
func (e *Engine) pushEvent(ev event) {
	if e.heapRef {
		e.events.push(ev)
		return
	}
	e.w.schedule(ev)
}

// peekEvent returns the next event to execute without removing it, or
// nil when none is pending.
//
//tg:hotpath
func (e *Engine) peekEvent() *event {
	if e.heapRef {
		if len(e.events) == 0 {
			return nil
		}
		return &e.events[0]
	}
	return e.w.peek()
}

// popEvent removes and returns the earliest event. The caller
// guarantees one is pending.
//
//tg:hotpath
func (e *Engine) popEvent() event {
	if e.heapRef {
		return e.events.pop()
	}
	return e.w.pop()
}

// Schedule runs fn at absolute time at. Scheduling in the past (before
// Now) is a bookkeeping bug and returns an error.
func (e *Engine) Schedule(at Time, fn func()) error {
	if at < e.now {
		return fmt.Errorf("sim: schedule at %v before now %v", at, e.now)
	}
	if fn == nil {
		return fmt.Errorf("sim: schedule with nil callback")
	}
	e.seq++
	e.pushEvent(event{at: at, seq: e.seq, fn: fn})
	return nil
}

// ScheduleCall runs h(arg, val) at absolute time at. It is the
// allocation-free form of Schedule: the payload travels in the event
// itself rather than in a closure. Execution order relative to
// Schedule'd events follows the same (time, schedule order) rule.
func (e *Engine) ScheduleCall(at Time, h Handler, arg any, val float64) error {
	if at < e.now {
		return fmt.Errorf("sim: schedule at %v before now %v", at, e.now)
	}
	if h == nil {
		return fmt.Errorf("sim: schedule with nil handler")
	}
	e.seq++
	e.pushEvent(event{at: at, seq: e.seq, h: h, arg: arg, val: val})
	return nil
}

// ScheduleCallAfter runs h(arg, val) after delay d (>= 0) from now.
func (e *Engine) ScheduleCallAfter(d Time, h Handler, arg any, val float64) error {
	if d < 0 {
		return fmt.Errorf("sim: negative delay %v", d)
	}
	return e.ScheduleCall(e.now+d, h, arg, val)
}

// ScheduleAfter runs fn after delay d (>= 0) from now.
func (e *Engine) ScheduleAfter(d Time, fn func()) error {
	if d < 0 {
		return fmt.Errorf("sim: negative delay %v", d)
	}
	return e.Schedule(e.now+d, fn)
}

// Step executes the earliest pending event, advancing the clock to it.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.Pending() == 0 {
		return false
	}
	ev := e.popEvent()
	e.now = ev.at
	if ev.h != nil {
		ev.h(ev.arg, ev.val)
	} else {
		ev.fn()
	}
	return true
}

// Run executes events until the queue is empty or Stop is called. The
// clock ends at the last executed event's time.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time <= deadline, then sets the clock to
// deadline if it is ahead of the last event.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		ev := e.peekEvent()
		if ev == nil || ev.at > deadline {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// RunBefore executes events with time strictly before limit, leaving
// later events queued. Unlike RunUntil it does not advance the clock to
// the limit: the clock stays at the last executed event, so events a
// shard coordinator delivers for the next window (all stamped >= limit)
// can never land in this engine's past. It is the building block of the
// conservative time-window protocol (ShardSet).
//
//tg:hotpath
func (e *Engine) RunBefore(limit Time) {
	e.stopped = false
	for !e.stopped {
		ev := e.peekEvent()
		if ev == nil || ev.at >= limit {
			break
		}
		e.Step()
	}
}

// Stop makes the current Run/RunUntil return after the executing event
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Reset returns the engine to its initial state (clock at zero, no
// pending events) while keeping the event queue's capacity — wheel slot
// slices, overflow heap, and reference heap alike — so a pooled engine
// can run successive simulations without reallocating.
func (e *Engine) Reset() {
	e.w.reset()
	for i := range e.events {
		e.events[i] = event{} // release callbacks and payloads for GC
	}
	e.events = e.events[:0]
	e.now = 0
	e.seq = 0
	e.stopped = false
}
