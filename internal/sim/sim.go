// Package sim is a minimal deterministic discrete-event simulation engine.
// It provides a virtual millisecond clock and an event heap with strict
// FIFO tie-breaking, which the cluster simulator builds the TailGuard
// query-processing model on.
//
// The engine is single-threaded by design: determinism (bit-for-bit
// reproducible experiments given a seed) matters more here than parallel
// speedup inside one run; whole runs are parallelized across cores by
// internal/parallel instead.
package sim

import (
	"fmt"
)

// Time is a point in simulated time, in milliseconds.
type Time = float64

// Handler is a pre-bound event callback that receives its payload as
// arguments instead of captured closure state. Scheduling through a
// Handler (ScheduleCall) is allocation-free when arg is a pointer: the
// event carries the handler value and payload inline, so the per-event
// closure allocation of Schedule disappears from the simulator's hot
// path. Bind method values once (h := r.onEvent) and reuse them; the
// method-value expression itself allocates.
type Handler func(arg any, val float64)

// event is one scheduled callback: either a closure (fn) or a pre-bound
// handler with its payload (h, arg, val).
type event struct {
	at  Time
	seq uint64 // schedule order, breaks ties deterministically
	fn  func()
	h   Handler
	arg any
	val float64
}

// eventHeap is a binary min-heap of events ordered by (time, sequence),
// stored by value with hand-specialized sift-up/sift-down. Scheduling
// an event is then a plain slice append — no per-event heap allocation
// and no container/heap interface boxing on the simulator's hottest
// path. Pop order is identical to the previous container/heap version:
// (at, seq) is a total order, so any heap yields the same sequence.
type eventHeap []event

// before reports whether event i must pop before event j.
func (h eventHeap) before(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends ev and restores the heap by sifting it up.
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.before(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the earliest event, sifting the displaced
// last element down.
func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	min := s[0]
	s[0] = s[n]
	s[n] = event{} // release the callback for GC
	s = s[:n]
	*h = s
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && s.before(right, left) {
			least = right
		}
		if !s.before(least, i) {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return min
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn at absolute time at. Scheduling in the past (before
// Now) is a bookkeeping bug and returns an error.
func (e *Engine) Schedule(at Time, fn func()) error {
	if at < e.now {
		return fmt.Errorf("sim: schedule at %v before now %v", at, e.now)
	}
	if fn == nil {
		return fmt.Errorf("sim: schedule with nil callback")
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, fn: fn})
	return nil
}

// ScheduleCall runs h(arg, val) at absolute time at. It is the
// allocation-free form of Schedule: the payload travels in the event
// itself rather than in a closure. Execution order relative to
// Schedule'd events follows the same (time, schedule order) rule.
func (e *Engine) ScheduleCall(at Time, h Handler, arg any, val float64) error {
	if at < e.now {
		return fmt.Errorf("sim: schedule at %v before now %v", at, e.now)
	}
	if h == nil {
		return fmt.Errorf("sim: schedule with nil handler")
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, h: h, arg: arg, val: val})
	return nil
}

// ScheduleCallAfter runs h(arg, val) after delay d (>= 0) from now.
func (e *Engine) ScheduleCallAfter(d Time, h Handler, arg any, val float64) error {
	if d < 0 {
		return fmt.Errorf("sim: negative delay %v", d)
	}
	return e.ScheduleCall(e.now+d, h, arg, val)
}

// ScheduleAfter runs fn after delay d (>= 0) from now.
func (e *Engine) ScheduleAfter(d Time, fn func()) error {
	if d < 0 {
		return fmt.Errorf("sim: negative delay %v", d)
	}
	return e.Schedule(e.now+d, fn)
}

// Step executes the earliest pending event, advancing the clock to it.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events.pop()
	e.now = ev.at
	if ev.h != nil {
		ev.h(ev.arg, ev.val)
	} else {
		ev.fn()
	}
	return true
}

// Run executes events until the queue is empty or Stop is called. The
// clock ends at the last executed event's time.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time <= deadline, then sets the clock to
// deadline if it is ahead of the last event.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.events) == 0 || e.events[0].at > deadline {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// RunBefore executes events with time strictly before limit, leaving
// later events queued. Unlike RunUntil it does not advance the clock to
// the limit: the clock stays at the last executed event, so events a
// shard coordinator delivers for the next window (all stamped >= limit)
// can never land in this engine's past. It is the building block of the
// conservative time-window protocol (ShardSet).
//
//tg:hotpath
func (e *Engine) RunBefore(limit Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.events) == 0 || e.events[0].at >= limit {
			break
		}
		e.Step()
	}
}

// Stop makes the current Run/RunUntil return after the executing event
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Reset returns the engine to its initial state (clock at zero, no
// pending events) while keeping the event heap's capacity, so a pooled
// engine can run successive simulations without reallocating its heap.
func (e *Engine) Reset() {
	for i := range e.events {
		e.events[i] = event{} // release callbacks and payloads for GC
	}
	e.events = e.events[:0]
	e.now = 0
	e.seq = 0
	e.stopped = false
}
