// Package sim is a minimal deterministic discrete-event simulation engine.
// It provides a virtual millisecond clock and an event heap with strict
// FIFO tie-breaking, which the cluster simulator builds the TailGuard
// query-processing model on.
//
// The engine is single-threaded by design: determinism (bit-for-bit
// reproducible experiments given a seed) matters more here than parallel
// speedup, and individual simulation runs are already fast enough to
// binary-search maximum loads in seconds.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in simulated time, in milliseconds.
type Time = float64

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64 // schedule order, breaks ties deterministically
	fn  func()
}

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn at absolute time at. Scheduling in the past (before
// Now) is a bookkeeping bug and returns an error.
func (e *Engine) Schedule(at Time, fn func()) error {
	if at < e.now {
		return fmt.Errorf("sim: schedule at %v before now %v", at, e.now)
	}
	if fn == nil {
		return fmt.Errorf("sim: schedule with nil callback")
	}
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, fn: fn})
	return nil
}

// ScheduleAfter runs fn after delay d (>= 0) from now.
func (e *Engine) ScheduleAfter(d Time, fn func()) error {
	if d < 0 {
		return fmt.Errorf("sim: negative delay %v", d)
	}
	return e.Schedule(e.now+d, fn)
}

// Step executes the earliest pending event, advancing the clock to it.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue is empty or Stop is called. The
// clock ends at the last executed event's time.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time <= deadline, then sets the clock to
// deadline if it is ahead of the last event.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.events) == 0 || e.events[0].at > deadline {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// Stop makes the current Run/RunUntil return after the executing event
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }
