package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleAndRunOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	mustSchedule := func(at Time, id int) {
		t.Helper()
		if err := e.Schedule(at, func() { order = append(order, id) }); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	mustSchedule(3, 3)
	mustSchedule(1, 1)
	mustSchedule(2, 2)
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v, want [1 2 3]", order)
	}
	if e.Now() != 3 {
		t.Errorf("Now() = %v, want 3", e.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		if err := e.Schedule(5, func() { order = append(order, i) }); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestScheduleInPastFails(t *testing.T) {
	e := NewEngine()
	if err := e.Schedule(10, func() {}); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	e.Run()
	if err := e.Schedule(5, func() {}); err == nil {
		t.Error("Schedule in the past succeeded, want error")
	}
	if err := e.ScheduleAfter(-1, func() {}); err == nil {
		t.Error("ScheduleAfter negative delay succeeded, want error")
	}
	if err := e.Schedule(20, nil); err == nil {
		t.Error("Schedule nil callback succeeded, want error")
	}
}

func TestScheduleAfter(t *testing.T) {
	e := NewEngine()
	var at Time
	if err := e.Schedule(10, func() {
		if err := e.ScheduleAfter(5, func() { at = e.Now() }); err != nil {
			t.Errorf("nested ScheduleAfter: %v", err)
		}
	}); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	e.Run()
	if at != 15 {
		t.Errorf("nested event ran at %v, want 15", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, at := range []Time{1, 2, 3, 10} {
		at := at
		if err := e.Schedule(at, func() { ran = append(ran, at) }); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	e.RunUntil(5)
	if len(ran) != 3 {
		t.Errorf("RunUntil(5) executed %d events, want 3", len(ran))
	}
	if e.Now() != 5 {
		t.Errorf("Now() = %v, want 5 (advanced to deadline)", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
	e.Run()
	if e.Now() != 10 || len(ran) != 4 {
		t.Errorf("after Run: now=%v events=%d, want 10 and 4", e.Now(), len(ran))
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	var count int
	for i := 1; i <= 10; i++ {
		i := i
		if err := e.Schedule(Time(i), func() {
			count++
			if i == 3 {
				e.Stop()
			}
		}); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	e.Run()
	if count != 3 {
		t.Errorf("executed %d events before Stop, want 3", count)
	}
	if e.Pending() != 7 {
		t.Errorf("Pending() = %d after Stop, want 7", e.Pending())
	}
	// Run resumes after Stop.
	e.Run()
	if count != 10 {
		t.Errorf("executed %d total events, want 10", count)
	}
}

func TestStepOnEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty engine returned true")
	}
}

// Property: the specialized value heap pops in exactly (at, seq) order —
// the same total order container/heap produced — including heavy ties.
func TestEventHeapPopOrderProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		var h eventHeap
		for seq, r := range raw {
			// Only 8 distinct times, forcing frequent ties.
			h.push(event{at: Time(r % 8), seq: uint64(seq), fn: func() {}})
		}
		var prevAt Time = -1
		var prevSeq uint64
		for len(h) > 0 {
			ev := h.pop()
			if ev.at < prevAt || (ev.at == prevAt && ev.seq <= prevSeq) {
				return false
			}
			prevAt, prevSeq = ev.at, ev.seq
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("heap pop order property violated: %v", err)
	}
}

// Property: events always execute in non-decreasing time order regardless
// of scheduling order.
func TestEventOrderProperty(t *testing.T) {
	prop := func(times []uint16) bool {
		e := NewEngine()
		var executed []Time
		for _, raw := range times {
			at := Time(raw)
			if err := e.Schedule(at, func() { executed = append(executed, at) }); err != nil {
				return false
			}
		}
		e.Run()
		if len(executed) != len(times) {
			return false
		}
		for i := 1; i < len(executed); i++ {
			if executed[i] < executed[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("event ordering property violated: %v", err)
	}
}
