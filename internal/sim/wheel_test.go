package sim

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// driveScript runs an identical op sequence against an engine and
// records every executed event as (id, execution time) plus every
// schedule error. Feeding the same script to a wheel engine and a heap
// engine must produce identical recordings — the differential oracle
// shared by the property test and the fuzz target below.
func driveScript(e *Engine, data []byte) (ids []float64, times []Time, errs []int) {
	h := func(_ any, val float64) {
		ids = append(ids, val)
		times = append(times, e.Now())
	}
	id := 0.0
	sched := func(op int, at Time) {
		id++
		if err := e.ScheduleCall(at, h, nil, id); err != nil {
			errs = append(errs, op)
		}
	}
	for j := 0; j+1 < len(data); j += 2 {
		op := j / 2
		p := Time(data[j+1])
		switch data[j] % 10 {
		case 0: // sub-tick to near-future: same-tick batches, level 0
			sched(op, e.Now()+p/16)
		case 1: // up to 255 ms ahead: levels 1-2
			sched(op, e.Now()+p)
		case 2: // far future: top level and overflow heap
			sched(op, e.Now()+p*4096)
		case 3: // exact tie with the clock
			sched(op, e.Now())
		case 4:
			e.Step()
		case 5: // stop with the clock behind pending events (clamp path)
			e.RunBefore(e.Now() + p/4)
		case 6:
			e.RunUntil(e.Now() + p)
		case 7: // +Inf and NaN guard territory
			if data[j+1]%2 == 0 {
				sched(op, math.Inf(1))
			} else {
				sched(op, e.Now()+p*1e9)
			}
		case 8: // past-time schedules must error identically
			sched(op, e.Now()-1-p)
		case 9: // engine reuse
			if data[j+1] == 255 {
				e.Reset()
			} else {
				sched(op, e.Now()+p/2)
			}
		}
	}
	e.Run()
	return ids, times, errs
}

func sameRecording(aIDs, bIDs []float64, aT, bT []Time, aE, bE []int) bool {
	if len(aIDs) != len(bIDs) || len(aE) != len(bE) {
		return false
	}
	for i := range aIDs {
		// Bitwise time equality, including +Inf.
		if aIDs[i] != bIDs[i] || math.Float64bits(aT[i]) != math.Float64bits(bT[i]) {
			return false
		}
	}
	for i := range aE {
		if aE[i] != bE[i] {
			return false
		}
	}
	return true
}

// Property: random op scripts — schedules across every wheel level, far
// overflow, exact ties, past-time errors, partial runs, and Reset reuse
// — execute identically on the timing wheel and the reference heap.
func TestWheelVsHeapPopOrderProperty(t *testing.T) {
	prop := func(data []byte) bool {
		wIDs, wT, wE := driveScript(NewEngine(), data)
		hIDs, hT, hE := driveScript(NewHeapEngine(), data)
		return sameRecording(wIDs, hIDs, wT, hT, wE, hE)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Errorf("wheel and heap diverged: %v", err)
	}
}

func FuzzWheelVsHeapPopOrder(f *testing.F) {
	f.Add([]byte{0, 7, 3, 0, 4, 0, 1, 200, 2, 255, 6, 90})
	f.Add([]byte{5, 40, 0, 1, 9, 255, 0, 3, 8, 10, 7, 2, 7, 3})
	f.Add(bytes.Repeat([]byte{3, 0}, 80)) // one giant same-time batch
	f.Add([]byte{2, 255, 2, 254, 4, 0, 0, 16, 5, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		wIDs, wT, wE := driveScript(NewEngine(), data)
		hIDs, hT, hE := driveScript(NewHeapEngine(), data)
		if !sameRecording(wIDs, hIDs, wT, hT, wE, hE) {
			t.Fatalf("wheel and heap diverged on %v:\nwheel ids=%v times=%v errs=%v\nheap  ids=%v times=%v errs=%v",
				data, wIDs, wT, wE, hIDs, hT, hE)
		}
	})
}

// Regression for the clamp path: RunBefore leaves the clock behind the
// next pending event, but peeking that event may advance the wheel
// cursor past times that are still schedulable. A later schedule in
// that gap must pop before the peeked event.
func TestWheelScheduleBehindCursor(t *testing.T) {
	e := NewEngine()
	var order []Time
	h := func(_ any, _ float64) { order = append(order, e.Now()) }
	for _, at := range []Time{1, 100} {
		if err := e.ScheduleCall(at, h, nil, 0); err != nil {
			t.Fatalf("ScheduleCall(%v): %v", at, err)
		}
	}
	e.RunBefore(50) // executes t=1; peeking t=100 moves the cursor ahead
	if e.Now() != 1 {
		t.Fatalf("Now() = %v after RunBefore, want 1", e.Now())
	}
	// t=10 is ahead of the clock but behind the advanced cursor.
	if err := e.ScheduleCall(10, h, nil, 0); err != nil {
		t.Fatalf("ScheduleCall(10): %v", err)
	}
	e.Run()
	want := []Time{1, 10, 100}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Errorf("execution times = %v, want %v", order, want)
	}
}

// Far-future and infinite deadlines route through the overflow heap and
// still pop in (at, seq) order.
func TestWheelFarFutureOrder(t *testing.T) {
	e := NewEngine()
	var order []Time
	h := func(_ any, _ float64) { order = append(order, e.Now()) }
	ats := []Time{math.Inf(1), 1e9, 0.5, 1 << 30, 2, math.Inf(1), 3e6}
	for _, at := range ats {
		if err := e.ScheduleCall(at, h, nil, 0); err != nil {
			t.Fatalf("ScheduleCall(%v): %v", at, err)
		}
	}
	e.Run()
	want := []Time{0.5, 2, 3e6, 1e9, 1 << 30, math.Inf(1), math.Inf(1)}
	if len(order) != len(want) {
		t.Fatalf("executed %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order[%d] = %v, want %v", i, order[i], want[i])
		}
	}
}

// Reset must fully clear every wheel level and the overflow heap so a
// reused engine behaves exactly like a fresh one.
func TestWheelResetReuse(t *testing.T) {
	run := func(e *Engine) []Time {
		var order []Time
		h := func(_ any, _ float64) { order = append(order, e.Now()) }
		for _, at := range []Time{7, 0.25, 1e8, 7, 300} {
			if err := e.ScheduleCall(at, h, nil, 0); err != nil {
				t.Fatalf("ScheduleCall(%v): %v", at, err)
			}
		}
		e.Run()
		return order
	}
	e := NewEngine()
	// Leave events at several levels pending, then reset mid-flight.
	for _, at := range []Time{1, 50, 4000, 1e7, math.Inf(1)} {
		if err := e.ScheduleCall(at, func(any, float64) {}, nil, 0); err != nil {
			t.Fatalf("ScheduleCall(%v): %v", at, err)
		}
	}
	e.Step()
	e.Reset()
	if e.Pending() != 0 || e.Now() != 0 {
		t.Fatalf("after Reset: Pending=%d Now=%v, want 0 and 0", e.Pending(), e.Now())
	}
	got := run(e)
	want := run(NewEngine())
	if len(got) != len(want) {
		t.Fatalf("reused engine executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("reused engine order[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// benchEngine measures the classic hold model on either queue: a
// standing population of events where each pop reschedules one event a
// pseudo-random near-future delay ahead — the simulator's steady-state
// access pattern.
func benchEngine(b *testing.B, e *Engine, population int) {
	b.ReportAllocs()
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() Time {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return Time(rng%1024) / 64 // 0 to 16 ms in 1/64 ms steps
	}
	var h Handler
	h = func(any, float64) {
		if err := e.ScheduleCallAfter(next(), h, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < population; i++ {
		if err := e.ScheduleCall(next(), h, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkEngineHoldWheel(b *testing.B) { benchEngine(b, NewEngine(), 4096) }
func BenchmarkEngineHoldHeap(b *testing.B)  { benchEngine(b, NewHeapEngine(), 4096) }
