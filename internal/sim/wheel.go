// Hierarchical timing wheel: the engine's event queue (DESIGN.md §14).
//
// The binary event heap (eventHeap, retained below as the far-future
// overflow level and as the reference oracle for equivalence gates) costs
// O(log n) pointer-chasing sifts per schedule and per pop. Simulation
// event times are overwhelmingly near-future — a task completion lands a
// few service times ahead of the clock, an arrival one interarrival ahead
// — so the wheel specializes for that case: virtual time is quantized
// into 1/64 ms ticks and an event is appended, unsorted and O(1), to the
// slot of its tick in a 4-level × 64-slot hierarchy (level l slots cover
// 64^l ticks; one uint64 occupancy bitmap per level makes empty-slot
// skipping a TrailingZeros64). When the cursor reaches a tick, its slot
// is sorted once by (at, seq) and becomes the current batch: events at
// the same tick — and in particular at the identical virtual time — are
// then drained by a cursor increment with no re-sifting between them
// (batched same-tick dispatch). Events scheduled at or before the
// cursor's tick while the batch drains are merge-inserted into the
// sorted remainder, so the pop sequence is exactly the heap's (at, seq)
// total order: any event in an earlier tick pops first, ties within a
// tick are ordered by the sort, and a total order admits only one pop
// sequence — which is why wheel results are bit-identical to heap
// results (gated by the perf-smoke cluster run, the golden shard matrix,
// and the randomized wheel-vs-heap property and fuzz tests).
//
// Events beyond the top level's aligned window (2^24 ticks ≈ 4.4
// virtual minutes ahead) overflow into the retained binary heap and
// migrate back into the wheel when the cursor's window reaches them.
// Cascading re-files a higher-level slot's events one level down when
// the cursor enters their group; each event cascades at most
// wheelLevels-1 times, so schedule and pop stay O(1) amortized.
//
// The wheel allocates only to grow slot slices and the overflow heap;
// both keep their capacity across Reset, so a pooled engine reaches a
// steady state with no per-event allocations (the cluster AllocsPerRun
// proofs cover the wheel on the simulator's hot path).
package sim

import "math/bits"

// Wheel geometry. 6 bits per level keeps one uint64 occupancy bitmap per
// level; 4 levels cover 2^24 ticks before the far heap takes over.
const (
	wheelBits     = 6
	wheelSlots    = 1 << wheelBits
	wheelMask     = wheelSlots - 1
	wheelLevels   = 4
	wheelSpanBits = wheelBits * wheelLevels
)

// wheelTicksPerMs sets the level-0 resolution: 1/64 ms per tick. Any
// positive resolution yields the same pop order (ticks only bucket the
// sort); the value only moves work between the batch sort and cursor
// advancing. 1/64 keeps batches inside the insertion-sort regime at the
// simulator's millisecond event densities (coarser ticks push them into
// heapsort, which measured ~1.7x slower end to end) while one top-level
// window still spans ~4.4 virtual minutes.
const wheelTicksPerMs = 64.0

// maxWheelTick caps the float→tick conversion: times at or beyond
// 2^62 ticks (including +Inf and NaN, whose comparisons fail the guard)
// are filed under a single far-future tick and ordered by (at, seq) in
// the overflow heap, matching the heap engine's behavior for them.
const (
	maxWheelTick      = uint64(1) << 62
	maxWheelTickFloat = float64(maxWheelTick)
)

// tickOf quantizes a virtual time to its wheel tick. It is monotone in
// at, so tick(a) < tick(b) implies a < b — the property the pop-order
// proof rests on.
//
//tg:hotpath
func tickOf(at Time) uint64 {
	t := at * wheelTicksPerMs
	if !(t < maxWheelTickFloat) {
		return maxWheelTick
	}
	return uint64(t)
}

// eventBefore reports whether a must pop before b: the (at, seq) total
// order shared by the wheel, the reference heap, and the sort.
//
//tg:hotpath
func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// wheel is the hierarchical timing wheel. The zero value is ready to use.
//
// Invariants:
//   - cur only moves forward; every non-batch event has tick > cur and
//     sits in the slot of its tick at the lowest level whose aligned
//     window contains it (or in the far heap beyond the top window).
//   - The current batch is slots[0][cur&wheelMask]: entries below bpos
//     are consumed (zeroed), entries at or above it are sorted by
//     (at, seq) and may carry ticks <= cur (late same- or past-tick
//     schedules merge-insert into the remainder).
//   - bpos is 0 whenever the batch is empty; a slot's occupancy bit is
//     set exactly while the slot is non-empty.
type wheel struct {
	slots [wheelLevels][wheelSlots][]event
	occ   [wheelLevels]uint64
	cur   uint64 // tick of the current batch
	bpos  int    // batch drain cursor
	n     int    // pending events, all levels + far
	far   eventHeap
}

// schedule files ev. O(1) amortized: an append for future ticks, a
// sorted insert into the small current batch for same- or past-tick
// events, a heap push beyond the top window.
//
//tg:hotpath
func (w *wheel) schedule(ev event) {
	w.n++
	w.place(ev)
}

// place files ev without counting it (shared by schedule, cascades, and
// far-heap rebasing).
//
//tg:hotpath
func (w *wheel) place(ev event) {
	t := tickOf(ev.at)
	if t <= w.cur {
		// At or behind the cursor (at >= now still holds): merge into the
		// sorted batch so it pops in exact (at, seq) position.
		w.batchInsert(ev)
		return
	}
	x := t ^ w.cur
	if x>>wheelSpanBits != 0 {
		w.far.push(ev) // beyond the top aligned window
		return
	}
	l := (bits.Len64(x) - 1) / wheelBits
	s := (t >> (uint(l) * wheelBits)) & wheelMask
	w.slots[l][s] = append(w.slots[l][s], ev)
	w.occ[l] |= 1 << s
}

// batchInsert places ev into the current batch's sorted remainder.
//
//tg:hotpath
func (w *wheel) batchInsert(ev event) {
	sp := &w.slots[0][w.cur&wheelMask]
	b := *sp
	lo, hi := w.bpos, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventBefore(&b[mid], &ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b = append(b, event{}) //tg:cold slot warm-up; capacity persists across Reset
	copy(b[lo+1:], b[lo:])
	b[lo] = ev
	*sp = b
	w.occ[0] |= 1 << (w.cur & wheelMask)
}

// peek returns the next event to pop without removing it, or nil when
// the wheel is empty. It may advance the cursor (cascading higher
// levels) to load the next batch; that is safe against later schedules
// because place clamps at-or-behind-cursor events into the batch.
//
//tg:hotpath
func (w *wheel) peek() *event {
	if w.n == 0 {
		return nil
	}
	sp := &w.slots[0][w.cur&wheelMask]
	if w.bpos >= len(*sp) {
		w.advance()
		sp = &w.slots[0][w.cur&wheelMask]
	}
	return &(*sp)[w.bpos]
}

// pop removes and returns the earliest event. The caller guarantees the
// wheel is non-empty.
//
//tg:hotpath
func (w *wheel) pop() event {
	sp := &w.slots[0][w.cur&wheelMask]
	if w.bpos >= len(*sp) {
		w.advance()
		sp = &w.slots[0][w.cur&wheelMask]
	}
	b := *sp
	ev := b[w.bpos]
	b[w.bpos] = event{} // release the callback and payload for GC
	w.bpos++
	w.n--
	if w.bpos == len(b) {
		*sp = b[:0]
		w.occ[0] &^= 1 << (w.cur & wheelMask)
		w.bpos = 0
	}
	return ev
}

// advance moves the cursor to the next non-empty tick and loads its
// batch. Called only when the batch is empty and n > 0.
//
//tg:hotpath
func (w *wheel) advance() {
	for {
		// Next occupied level-0 slot after the cursor in its window.
		c0 := w.cur & wheelMask
		if m := w.occ[0] &^ (uint64(1)<<(c0+1) - 1); m != 0 {
			s := uint64(bits.TrailingZeros64(m))
			w.cur = w.cur&^uint64(wheelMask) | s
			sortEvents(w.slots[0][s])
			return
		}
		if w.cascade() {
			// Events moved down; some may have landed in the batch itself.
			if sp := &w.slots[0][w.cur&wheelMask]; w.bpos < len(*sp) {
				return
			}
			continue
		}
		w.rebase()
		if sp := &w.slots[0][w.cur&wheelMask]; w.bpos < len(*sp) {
			return
		}
	}
}

// cascade re-files the next occupied higher-level slot's events one or
// more levels down, jumping the cursor to the start of that slot's tick
// group. Reports whether a slot was cascaded.
func (w *wheel) cascade() bool {
	for l := 1; l < wheelLevels; l++ {
		shift := uint(l) * wheelBits
		cl := (w.cur >> shift) & wheelMask
		m := w.occ[l] &^ (uint64(1)<<(cl+1) - 1)
		if m == 0 {
			continue
		}
		s := uint64(bits.TrailingZeros64(m))
		g := (w.cur>>shift)&^uint64(wheelMask) | s
		w.cur = g << shift
		sp := &w.slots[l][s]
		evs := *sp
		w.occ[l] &^= 1 << s
		for i := range evs {
			w.place(evs[i])
			evs[i] = event{}
		}
		*sp = evs[:0]
		return true
	}
	return false
}

// rebase jumps the cursor to the far heap's earliest event and migrates
// every far event inside the new top-level window back into the wheel.
// Called only when every wheel level is exhausted and n > 0 (so the far
// heap is non-empty).
func (w *wheel) rebase() {
	ev := w.far.pop()
	w.cur = tickOf(ev.at)
	w.place(ev)
	top := w.cur >> wheelSpanBits
	for len(w.far) > 0 && tickOf(w.far[0].at)>>wheelSpanBits == top {
		w.place(w.far.pop())
	}
}

// reset empties the wheel for reuse, zeroing stored events (releasing
// their callbacks and payloads for GC) while keeping every slot's and
// the far heap's capacity.
func (w *wheel) reset() {
	for l := 0; l < wheelLevels; l++ {
		m := w.occ[l]
		for m != 0 {
			s := bits.TrailingZeros64(m)
			m &^= 1 << s
			sp := &w.slots[l][s]
			for i := range *sp {
				(*sp)[i] = event{}
			}
			*sp = (*sp)[:0]
		}
		w.occ[l] = 0
	}
	for i := range w.far {
		w.far[i] = event{}
	}
	w.far = w.far[:0]
	w.cur, w.bpos, w.n = 0, 0, 0
}

// sortEvents orders a slot by (at, seq) in place with no allocation:
// insertion sort for the short batches the 1/64 ms tick makes common,
// heapsort (O(n log n) worst case, no recursion) for tie-heavy bursts.
//
//tg:hotpath
func sortEvents(s []event) {
	if len(s) <= 24 {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && eventBefore(&s[j], &s[j-1]); j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return
	}
	n := len(s)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownMax(s, i, n)
	}
	for i := n - 1; i > 0; i-- {
		s[0], s[i] = s[i], s[0]
		siftDownMax(s, 0, i)
	}
}

// siftDownMax restores the max-heap property (by the (at, seq) order)
// for the subtree rooted at i within s[:n].
func siftDownMax(s []event, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		big := l
		if r := l + 1; r < n && eventBefore(&s[big], &s[r]) {
			big = r
		}
		if !eventBefore(&s[i], &s[big]) {
			return
		}
		s[i], s[big] = s[big], s[i]
		i = big
	}
}
