// Shard coordination: a ShardSet runs one Engine per shard under the
// conservative time-window protocol. Within a window [lo, hi) every shard
// advances independently (no shard reads another shard's state); at the
// window barrier the coordinator delivers cross-shard events — all stamped
// at or after hi — into the destination shards' heaps, in a fixed
// (window, source, sequence) order. Because each engine orders its own
// events by (time, schedule order) and deliveries are injected in the
// same deterministic order every run, the executed event sequence per
// shard is bit-identical run to run and independent of how the OS
// schedules the worker goroutines.
package sim

import (
	"tailguard/internal/parallel"
)

// ShardSet owns P shard engines and a persistent worker gang that drives
// them through barrier-synchronized windows. The set's engines and error
// slots persist across runs (Reset reuses their heap capacity); the gang
// is started per run (Start/Stop) so an idle set parks no goroutines.
//
// The coordinator goroutine owns the set: RunWindow, Drain, Start, Stop
// and Reset must not be called concurrently. Worker callbacks receive
// only their own shard index and must touch only that shard's state.
type ShardSet struct {
	engines []*Engine
	errs    []error
	gang    *parallel.Gang

	// Per-window parameters, written by the coordinator before the gang
	// barrier releases the workers (the channel handshake in Gang.Do is
	// the happens-before edge) and read-only inside the window.
	limit Time
	setup func(shard int) error
	drain bool
	runFn func(int) // bound once so Do stays allocation-free
}

// NewShardSet returns a set of n shard engines (n >= 1), not yet started.
func NewShardSet(n int) *ShardSet {
	if n < 1 {
		n = 1
	}
	s := &ShardSet{
		engines: make([]*Engine, n),
		errs:    make([]error, n),
	}
	for i := range s.engines {
		s.engines[i] = NewEngine()
	}
	s.runFn = s.runShard
	return s
}

// Len returns the number of shards.
func (s *ShardSet) Len() int { return len(s.engines) }

// Engine returns shard i's engine. Between windows it belongs to the
// coordinator; inside a window only worker i may touch it.
func (s *ShardSet) Engine(i int) *Engine { return s.engines[i] }

// Start spawns the worker gang for one run.
func (s *ShardSet) Start() {
	if s.gang == nil {
		s.gang = parallel.NewGang(len(s.engines))
	}
}

// Stop terminates the worker gang. The set (and its engines) remain
// reusable via Start.
func (s *ShardSet) Stop() {
	if s.gang != nil {
		s.gang.Close()
		s.gang = nil
	}
}

func (s *ShardSet) runShard(i int) {
	s.errs[i] = nil
	if s.setup != nil {
		if err := s.setup(i); err != nil {
			s.errs[i] = err
			return
		}
	}
	if s.drain {
		s.engines[i].Run()
	} else {
		s.engines[i].RunBefore(s.limit)
	}
}

// firstErr returns the lowest-shard-index error of the last window — the
// same winner parallel.Map's sequential-equivalence rule would pick.
func (s *ShardSet) firstErr() error {
	for _, err := range s.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunWindow runs one conservative window: on each shard's worker, setup
// (delivering that shard's cross-shard events, all stamped >= the
// previous window's limit) runs first, then the shard executes events
// strictly before limit. RunWindow returns after the full barrier with
// the lowest-shard-index setup error, if any (a failed shard skips its
// window, and the caller is expected to abort the run).
//
//tg:hotpath
func (s *ShardSet) RunWindow(limit Time, setup func(shard int) error) error {
	s.limit, s.setup, s.drain = limit, setup, false
	s.gang.Do(s.runFn)
	return s.firstErr()
}

// Drain runs every shard to completion (the final window, after the last
// cross-shard delivery).
func (s *ShardSet) Drain(setup func(shard int) error) error {
	s.setup, s.drain = setup, true
	s.gang.Do(s.runFn)
	return s.firstErr()
}

// MaxNow returns the latest shard clock.
func (s *ShardSet) MaxNow() Time {
	var max Time
	for _, e := range s.engines {
		if e.now > max {
			max = e.now
		}
	}
	return max
}

// Reset rewinds every shard engine for the next run, keeping heap
// capacity.
func (s *ShardSet) Reset() {
	for i, e := range s.engines {
		e.Reset()
		s.errs[i] = nil
	}
}
