package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// FanoutDist is a distribution over query fanouts, P(kf) in the paper's
// notation.
type FanoutDist interface {
	// Sample draws one fanout.
	Sample(r *rand.Rand) int
	// Support returns the distinct fanouts with positive probability, in
	// ascending order.
	Support() []int
	// Prob returns P(kf = k).
	Prob(k int) float64
	// MeanTasks returns E[kf], the mean number of tasks per query, used
	// to convert between offered load and arrival rate.
	MeanTasks() float64
	// Max returns the largest fanout in the support.
	Max() int
}

// Fixed is a point-mass fanout: every query spawns exactly K tasks. The
// OLDI case studies (Section IV.C) use Fixed(N).
type Fixed struct{ K int }

// NewFixed validates k and returns a fixed fanout distribution.
func NewFixed(k int) (Fixed, error) {
	if k < 1 {
		return Fixed{}, fmt.Errorf("workload: fanout must be >= 1, got %d", k)
	}
	return Fixed{K: k}, nil
}

// Sample implements FanoutDist.
func (f Fixed) Sample(*rand.Rand) int { return f.K }

// Support implements FanoutDist.
func (f Fixed) Support() []int { return []int{f.K} }

// Prob implements FanoutDist.
func (f Fixed) Prob(k int) float64 {
	if k == f.K {
		return 1
	}
	return 0
}

// MeanTasks implements FanoutDist.
func (f Fixed) MeanTasks() float64 { return float64(f.K) }

// Max implements FanoutDist.
func (f Fixed) Max() int { return f.K }

// Weighted is a finite fanout distribution over explicit (fanout, weight)
// points.
type Weighted struct {
	fanouts []int     // ascending
	probs   []float64 // normalized, parallel to fanouts
	cum     []float64
	mean    float64
}

// NewWeighted builds a weighted fanout distribution. Weights must be
// non-negative with a positive sum; they are normalized. Fanouts must be
// distinct and >= 1.
func NewWeighted(fanouts []int, weights []float64) (*Weighted, error) {
	if len(fanouts) == 0 || len(fanouts) != len(weights) {
		return nil, fmt.Errorf("workload: need matching non-empty fanouts/weights, got %d/%d", len(fanouts), len(weights))
	}
	type pt struct {
		k int
		w float64
	}
	pts := make([]pt, len(fanouts))
	var sum float64
	for i, k := range fanouts {
		if k < 1 {
			return nil, fmt.Errorf("workload: fanout must be >= 1, got %d", k)
		}
		if weights[i] < 0 {
			return nil, fmt.Errorf("workload: weight for fanout %d is negative", k)
		}
		pts[i] = pt{k: k, w: weights[i]}
		sum += weights[i]
	}
	if sum <= 0 {
		return nil, fmt.Errorf("workload: weights sum to %v", sum)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].k < pts[j].k })
	w := &Weighted{
		fanouts: make([]int, len(pts)),
		probs:   make([]float64, len(pts)),
		cum:     make([]float64, len(pts)),
	}
	var c float64
	for i, p := range pts {
		if i > 0 && p.k == pts[i-1].k {
			return nil, fmt.Errorf("workload: duplicate fanout %d", p.k)
		}
		w.fanouts[i] = p.k
		w.probs[i] = p.w / sum
		c += p.w / sum
		w.cum[i] = c
		w.mean += float64(p.k) * p.w / sum
	}
	w.cum[len(w.cum)-1] = 1
	return w, nil
}

// NewInverseProportional builds the paper's Section IV.B fanout model:
// P(kf) ∝ 1/kf over the given fanout points, so each fanout contributes
// the same expected number of tasks. With points {1, 10, 100} this yields
// P = {100/111, 10/111, 1/111}.
func NewInverseProportional(fanouts []int) (*Weighted, error) {
	weights := make([]float64, len(fanouts))
	for i, k := range fanouts {
		if k < 1 {
			return nil, fmt.Errorf("workload: fanout must be >= 1, got %d", k)
		}
		weights[i] = 1 / float64(k)
	}
	return NewWeighted(fanouts, weights)
}

// Sample implements FanoutDist.
func (w *Weighted) Sample(r *rand.Rand) int {
	u := r.Float64()
	i := sort.SearchFloat64s(w.cum, u)
	if i >= len(w.fanouts) {
		i = len(w.fanouts) - 1
	}
	return w.fanouts[i]
}

// Support implements FanoutDist.
func (w *Weighted) Support() []int { return append([]int(nil), w.fanouts...) }

// Prob implements FanoutDist.
func (w *Weighted) Prob(k int) float64 {
	i := sort.SearchInts(w.fanouts, k)
	if i < len(w.fanouts) && w.fanouts[i] == k {
		return w.probs[i]
	}
	return 0
}

// MeanTasks implements FanoutDist.
func (w *Weighted) MeanTasks() float64 { return w.mean }

// Max implements FanoutDist.
func (w *Weighted) Max() int { return w.fanouts[len(w.fanouts)-1] }

// NewEmpirical builds a fanout distribution from observed fanouts (e.g.
// a production trace): each distinct fanout is weighted by its frequency.
func NewEmpirical(observed []int) (*Weighted, error) {
	if len(observed) == 0 {
		return nil, fmt.Errorf("workload: empirical fanout needs observations")
	}
	counts := make(map[int]int)
	for _, k := range observed {
		if k < 1 {
			return nil, fmt.Errorf("workload: observed fanout %d < 1", k)
		}
		counts[k]++
	}
	// Build the support in ascending fanout order: the CDF NewWeighted
	// derives from it decides which fanout each uniform draw maps to, so
	// map-ordered support would make the same seed sample different
	// fanout sequences run to run.
	fanouts := make([]int, 0, len(counts))
	for k := range counts {
		fanouts = append(fanouts, k)
	}
	sort.Ints(fanouts)
	weights := make([]float64, 0, len(counts))
	for _, k := range fanouts {
		weights = append(weights, float64(counts[k]))
	}
	return NewWeighted(fanouts, weights)
}

// Zipf is a Zipf-distributed fanout over 1..N with exponent s, modelling
// social-network-style fanout popularity (most queries touch few shards, a
// few touch many). It extends the paper's coverage of P(kf) models.
type Zipf struct {
	*Weighted
}

// NewZipf builds a Zipf fanout distribution over 1..maxFanout with the
// given exponent (> 0).
func NewZipf(maxFanout int, s float64) (*Zipf, error) {
	if maxFanout < 1 {
		return nil, fmt.Errorf("workload: max fanout must be >= 1, got %d", maxFanout)
	}
	if s <= 0 {
		return nil, fmt.Errorf("workload: zipf exponent must be positive, got %v", s)
	}
	fanouts := make([]int, maxFanout)
	weights := make([]float64, maxFanout)
	for k := 1; k <= maxFanout; k++ {
		fanouts[k-1] = k
		weights[k-1] = 1 / math.Pow(float64(k), s)
	}
	w, err := NewWeighted(fanouts, weights)
	if err != nil {
		return nil, err
	}
	return &Zipf{Weighted: w}, nil
}
