package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestSingleClass(t *testing.T) {
	cs, err := SingleClass(0.8)
	if err != nil {
		t.Fatalf("SingleClass: %v", err)
	}
	if got := cs.Len(); got != 1 {
		t.Errorf("Len() = %d, want 1", got)
	}
	c, err := cs.Class(0)
	if err != nil {
		t.Fatalf("Class(0): %v", err)
	}
	if c.SLOMs != 0.8 || c.Percentile != 0.99 {
		t.Errorf("Class(0) = %+v, want SLO 0.8 p99", c)
	}
	if got := cs.Sample(rand.New(rand.NewSource(1))); got != 0 {
		t.Errorf("Sample() = %d, want 0", got)
	}
}

func TestTwoClassesPaperRatio(t *testing.T) {
	cs, err := TwoClasses(1.0, 1.5)
	if err != nil {
		t.Fatalf("TwoClasses: %v", err)
	}
	hi, _ := cs.Class(0)
	lo, _ := cs.Class(1)
	if hi.SLOMs != 1.0 || lo.SLOMs != 1.5 {
		t.Errorf("SLOs = %v/%v, want 1.0/1.5", hi.SLOMs, lo.SLOMs)
	}
	// Equal probability split.
	r := rand.New(rand.NewSource(2))
	var c0 int
	const n = 100000
	for i := 0; i < n; i++ {
		if cs.Sample(r) == 0 {
			c0++
		}
	}
	if frac := float64(c0) / n; math.Abs(frac-0.5) > 0.01 {
		t.Errorf("class 0 fraction = %v, want ~0.5", frac)
	}
	if _, err := TwoClasses(1, 0.5); err == nil {
		t.Error("TwoClasses with ratio < 1 succeeded, want error")
	}
}

func TestNewClassSetValidation(t *testing.T) {
	valid := Class{ID: 0, SLOMs: 1, Percentile: 0.99, Weight: 1}
	cases := []struct {
		name    string
		classes []Class
	}{
		{"empty", nil},
		{"sparse ids", []Class{valid, {ID: 2, SLOMs: 1, Percentile: 0.99, Weight: 1}}},
		{"duplicate ids", []Class{valid, {ID: 0, SLOMs: 2, Percentile: 0.99, Weight: 1}}},
		{"bad slo", []Class{{ID: 0, SLOMs: 0, Percentile: 0.99, Weight: 1}}},
		{"bad percentile", []Class{{ID: 0, SLOMs: 1, Percentile: 1, Weight: 1}}},
		{"negative weight", []Class{{ID: 0, SLOMs: 1, Percentile: 0.99, Weight: -1}}},
		{"zero weights", []Class{{ID: 0, SLOMs: 1, Percentile: 0.99, Weight: 0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewClassSet(tc.classes); err == nil {
				t.Errorf("NewClassSet(%v) succeeded, want error", tc.classes)
			}
		})
	}
}

func TestClassSetOutOfOrderInput(t *testing.T) {
	cs, err := NewClassSet([]Class{
		{ID: 1, Name: "low", SLOMs: 3, Percentile: 0.99, Weight: 1},
		{ID: 0, Name: "high", SLOMs: 1, Percentile: 0.99, Weight: 1},
	})
	if err != nil {
		t.Fatalf("NewClassSet: %v", err)
	}
	c0, _ := cs.Class(0)
	if c0.Name != "high" {
		t.Errorf("Class(0).Name = %q, want high", c0.Name)
	}
	if _, err := cs.Class(5); err == nil {
		t.Error("Class(5) succeeded, want error")
	}
	if _, err := cs.Class(-1); err == nil {
		t.Error("Class(-1) succeeded, want error")
	}
}

func TestClassesReturnsCopy(t *testing.T) {
	cs, _ := SingleClass(1)
	got := cs.Classes()
	got[0].SLOMs = 99
	c, _ := cs.Class(0)
	if c.SLOMs != 1 {
		t.Error("mutating Classes() result changed the set")
	}
}

func TestClassSetWeightedSampling(t *testing.T) {
	cs, err := NewClassSet([]Class{
		{ID: 0, SLOMs: 1, Percentile: 0.99, Weight: 4},
		{ID: 1, SLOMs: 2, Percentile: 0.99, Weight: 1},
	})
	if err != nil {
		t.Fatalf("NewClassSet: %v", err)
	}
	r := rand.New(rand.NewSource(3))
	var c0 int
	const n = 100000
	for i := 0; i < n; i++ {
		if cs.Sample(r) == 0 {
			c0++
		}
	}
	if frac := float64(c0) / n; math.Abs(frac-0.8) > 0.01 {
		t.Errorf("class 0 fraction = %v, want ~0.8", frac)
	}
}
