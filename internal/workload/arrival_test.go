package workload

import (
	"math"
	"math/rand"
	"testing"
)

func meanGap(t *testing.T, a ArrivalProcess, n int, seed int64) float64 {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	var sum float64
	for i := 0; i < n; i++ {
		g := a.NextGap(r)
		if g <= 0 {
			t.Fatalf("NextGap returned non-positive gap %v", g)
		}
		sum += g
	}
	return sum / float64(n)
}

func TestPoissonMeanGap(t *testing.T) {
	p, err := NewPoisson(0.5) // 0.5 queries/ms -> mean gap 2 ms
	if err != nil {
		t.Fatalf("NewPoisson: %v", err)
	}
	if got := p.Rate(); got != 0.5 {
		t.Errorf("Rate() = %v, want 0.5", got)
	}
	if m := meanGap(t, p, 100000, 1); math.Abs(m-2) > 0.05 {
		t.Errorf("mean gap = %v, want ~2", m)
	}
}

func TestPoissonInvalid(t *testing.T) {
	for _, rate := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewPoisson(rate); err == nil {
			t.Errorf("NewPoisson(%v) succeeded, want error", rate)
		}
	}
}

func TestParetoMeanGapMatchesRate(t *testing.T) {
	p, err := NewPareto(0.25, DefaultParetoAlpha) // mean gap 4 ms
	if err != nil {
		t.Fatalf("NewPareto: %v", err)
	}
	// alpha=1.5 has infinite variance, so the sample mean converges
	// slowly; use many samples and a loose tolerance.
	if m := meanGap(t, p, 2000000, 2); math.Abs(m-4)/4 > 0.15 {
		t.Errorf("mean gap = %v, want ~4", m)
	}
}

func TestParetoBurstierThanPoisson(t *testing.T) {
	// Same rate; Pareto gaps must have a heavier tail (larger p99.9 gap).
	rate := 1.0
	po, _ := NewPoisson(rate)
	pa, _ := NewPareto(rate, DefaultParetoAlpha)
	quantileGap := func(a ArrivalProcess, seed int64) float64 {
		r := rand.New(rand.NewSource(seed))
		gaps := make([]float64, 100000)
		for i := range gaps {
			gaps[i] = a.NextGap(r)
		}
		// crude order statistic
		max := 0.0
		for _, g := range gaps {
			if g > max {
				max = g
			}
		}
		return max
	}
	if mp, mq := quantileGap(po, 3), quantileGap(pa, 3); mq <= mp {
		t.Errorf("pareto max gap %v not heavier than poisson %v", mq, mp)
	}
}

func TestSinusoidalMeanRate(t *testing.T) {
	s, err := NewSinusoidal(1.0, 0.5, 100)
	if err != nil {
		t.Fatalf("NewSinusoidal: %v", err)
	}
	if got := s.Rate(); got != 1.0 {
		t.Errorf("Rate() = %v", got)
	}
	// Over many whole periods the mean gap approaches 1/mean.
	if m := meanGap(t, s, 500000, 4); math.Abs(m-1)/1 > 0.03 {
		t.Errorf("mean gap = %v, want ~1", m)
	}
}

func TestSinusoidalSwings(t *testing.T) {
	// Count arrivals in the peak half-period vs the trough half-period.
	s, err := NewSinusoidal(1.0, 0.8, 1000)
	if err != nil {
		t.Fatalf("NewSinusoidal: %v", err)
	}
	r := rand.New(rand.NewSource(5))
	var tpos float64
	peak, trough := 0, 0
	for i := 0; i < 200000; i++ {
		tpos += s.NextGap(r)
		phase := math.Mod(tpos, 1000)
		if phase < 500 {
			peak++ // sin > 0 half
		} else {
			trough++
		}
	}
	ratio := float64(peak) / float64(trough)
	// With amplitude 0.8 the half-period intensities are 1+2*0.8/pi vs
	// 1-2*0.8/pi -> ratio ~ 3.1.
	if ratio < 2.3 || ratio > 4.2 {
		t.Errorf("peak/trough arrival ratio = %v, want ~3.1", ratio)
	}
}

func TestSinusoidalInvalid(t *testing.T) {
	if _, err := NewSinusoidal(0, 0.5, 100); err == nil {
		t.Error("zero rate succeeded")
	}
	if _, err := NewSinusoidal(1, 1.0, 100); err == nil {
		t.Error("amplitude 1 succeeded")
	}
	if _, err := NewSinusoidal(1, -0.1, 100); err == nil {
		t.Error("negative amplitude succeeded")
	}
	if _, err := NewSinusoidal(1, 0.5, 0); err == nil {
		t.Error("zero period succeeded")
	}
}

func TestParetoInvalid(t *testing.T) {
	if _, err := NewPareto(0, 1.5); err == nil {
		t.Error("NewPareto(0, 1.5) succeeded, want error")
	}
	if _, err := NewPareto(1, 1); err == nil {
		t.Error("NewPareto(1, 1) succeeded, want error (infinite mean)")
	}
}
