package workload

import (
	"context"
	"fmt"
	"sync"
)

// CreditGate bounds the number of in-flight queries a workload source may
// have outstanding: each admitted query holds one credit from arrival until
// it leaves the system, and a generator with no credit blocks instead of
// free-running. This turns thundering-herd pulls into bounded credit
// grants — the backpressure half of the control plane.
//
// The gate is safe for concurrent use (live producers call the blocking
// Acquire from many goroutines while a controller adjusts the limit); the
// simulator uses the non-blocking TryAcquire/Release pair from its single
// event-loop goroutine, so determinism is untouched.
type CreditGate struct {
	mu      sync.Mutex
	limit   int           // guarded by mu
	held    int           // guarded by mu
	wait    chan struct{} // guarded by mu (closed and replaced whenever a credit may free up)
	waiters int           // guarded by mu: parked acquirers on the current wait channel
}

// NewCreditGate returns a gate with the given credit limit (>= 1).
func NewCreditGate(limit int) (*CreditGate, error) {
	if limit < 1 {
		return nil, fmt.Errorf("workload: credit limit must be >= 1, got %d", limit)
	}
	return &CreditGate{limit: limit, wait: make(chan struct{})}, nil
}

// TryAcquire takes a credit if one is free and reports whether it did.
func (g *CreditGate) TryAcquire() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.held >= g.limit {
		return false
	}
	g.held++
	return true
}

// ForceAcquire takes a credit even when none is free, letting held exceed
// the limit. It exists for recovery: a daemon replaying journaled
// in-flight work must account for credits the previous incarnation
// granted, then stop granting new ones until the backlog drains.
func (g *CreditGate) ForceAcquire() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.held++
}

// Acquire blocks until a credit is free or ctx is done.
func (g *CreditGate) Acquire(ctx context.Context) error {
	for {
		g.mu.Lock()
		if g.held < g.limit {
			g.held++
			g.mu.Unlock()
			return nil
		}
		ch := g.wait
		g.waiters++
		g.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// Release returns a credit and wakes blocked acquirers. Releasing more
// credits than were acquired is a pairing bug and panics.
func (g *CreditGate) Release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.held == 0 {
		panic("workload: CreditGate.Release without matching Acquire")
	}
	g.held--
	g.wakeLocked()
}

// SetLimit changes the credit limit (clamped to >= 1). Shrinking below the
// held count never revokes credits already granted — the gate simply stops
// granting until enough are released.
func (g *CreditGate) SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	grew := n > g.limit
	g.limit = n
	if grew {
		g.wakeLocked()
	}
}

// wakeLocked signals every waiter to re-check for a free credit. With no
// one parked it is a no-op, which keeps the simulator's TryAcquire/Release
// path (and a controller growing the limit each tick) allocation-free.
func (g *CreditGate) wakeLocked() {
	if g.waiters == 0 {
		return
	}
	close(g.wait)
	g.wait = make(chan struct{})
	g.waiters = 0
}

// Limit returns the current credit limit.
func (g *CreditGate) Limit() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.limit
}

// InFlight returns the number of credits currently held.
func (g *CreditGate) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.held
}
