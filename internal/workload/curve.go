package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// RateCurve is a deterministic instantaneous-rate function lambda(t) for a
// non-homogeneous Poisson process. Curves are pure: At must depend only on
// t, so the thinning sampler in Modulated stays exact and replayable.
type RateCurve interface {
	// At returns the instantaneous arrival rate at time t (queries/ms),
	// >= 0 for all t >= 0.
	At(t float64) float64
	// Peak returns an upper bound on At over [0, inf) — the thinning
	// envelope. Tighter bounds reject fewer candidate points.
	Peak() float64
	// Mean returns the nominal rate reported through ArrivalProcess.Rate
	// (conventionally the baseline/long-run average, used for load
	// bookkeeping, not by the sampler).
	Mean() float64
}

// Modulated is a non-homogeneous Poisson process driven by a RateCurve,
// sampled exactly by thinning at the curve's peak rate. Its internal clock
// advances with the gaps it returns (one consumer per instance), and it
// supports Rebase so a backpressured generator can resume from "now"
// instead of replaying the arrivals it would have emitted while blocked.
type Modulated struct {
	curve RateCurve
	peak  float64
	mean  float64
	now   float64
}

// NewModulated validates the curve and builds the process. If the curve
// has a Validate() error method it is consulted first.
func NewModulated(curve RateCurve) (*Modulated, error) {
	if curve == nil {
		return nil, fmt.Errorf("workload: modulated arrival needs a rate curve")
	}
	if v, ok := curve.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return nil, err
		}
	}
	peak, mean := curve.Peak(), curve.Mean()
	if peak <= 0 || math.IsNaN(peak) || math.IsInf(peak, 0) {
		return nil, fmt.Errorf("workload: curve peak rate must be positive and finite, got %v", peak)
	}
	if mean <= 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return nil, fmt.Errorf("workload: curve mean rate must be positive and finite, got %v", mean)
	}
	return &Modulated{curve: curve, peak: peak, mean: mean}, nil
}

// NextGap implements ArrivalProcess by thinning at the peak rate.
func (m *Modulated) NextGap(r *rand.Rand) float64 {
	start := m.now
	for {
		m.now += r.ExpFloat64() / m.peak
		if r.Float64() < m.curve.At(m.now)/m.peak {
			return m.now - start
		}
	}
}

// Rate implements ArrivalProcess (the curve's nominal mean rate).
func (m *Modulated) Rate() float64 { return m.mean }

// Rebase implements Rebaser: the next gap is drawn from time t onward.
// Moving backwards is ignored so arrival times stay non-decreasing.
func (m *Modulated) Rebase(t float64) {
	if t > m.now {
		m.now = t
	}
}

// Now returns the process's internal clock (the absolute time of the last
// accepted arrival, or the rebased origin).
func (m *Modulated) Now() float64 { return m.now }

// SineCurve is the sinusoidal diurnal-wave rate
//
//	lambda(t) = Base * (1 + Amplitude * sin(2*pi*(t+PhaseMs)/PeriodMs))
//
// PhaseMs time-shifts the wave so several curves (or a curve and a flash
// overlay) can be composed out of phase. With PhaseMs = 0 it is bit-for-bit
// the rate of the original Sinusoidal process.
type SineCurve struct {
	Base      float64 // mean rate (queries/ms), > 0
	Amplitude float64 // relative swing in [0, 1)
	PeriodMs  float64 // wave period (ms), > 0
	PhaseMs   float64 // time shift (ms)
}

// Validate checks the curve parameters.
func (c SineCurve) Validate() error {
	if c.Base <= 0 || math.IsNaN(c.Base) || math.IsInf(c.Base, 0) {
		return fmt.Errorf("workload: sinusoidal mean rate must be positive and finite, got %v", c.Base)
	}
	if c.Amplitude < 0 || c.Amplitude >= 1 {
		return fmt.Errorf("workload: sinusoidal amplitude %v outside [0, 1)", c.Amplitude)
	}
	if c.PeriodMs <= 0 {
		return fmt.Errorf("workload: sinusoidal period must be positive, got %v", c.PeriodMs)
	}
	if math.IsNaN(c.PhaseMs) || math.IsInf(c.PhaseMs, 0) {
		return fmt.Errorf("workload: sinusoidal phase must be finite, got %v", c.PhaseMs)
	}
	return nil
}

// At implements RateCurve.
func (c SineCurve) At(t float64) float64 {
	return c.Base * (1 + c.Amplitude*math.Sin(2*math.Pi*(t+c.PhaseMs)/c.PeriodMs))
}

// Peak implements RateCurve.
func (c SineCurve) Peak() float64 { return c.Base * (1 + c.Amplitude) }

// Mean implements RateCurve.
func (c SineCurve) Mean() float64 { return c.Base }

// BurstCurve is a rectangular rate pulse — the thundering-herd model: the
// rate steps instantly from Base to PeakRate at StartMs and back after
// DurationMs. Base may be 0 so a pure pulse can overlay another curve.
type BurstCurve struct {
	Base       float64 // baseline rate (queries/ms), >= 0
	PeakRate   float64 // rate during the burst, > Base
	StartMs    float64 // burst onset (ms), >= 0
	DurationMs float64 // burst length (ms), > 0
}

// Validate checks the curve parameters.
func (c BurstCurve) Validate() error {
	if c.Base < 0 || math.IsNaN(c.Base) || math.IsInf(c.Base, 0) {
		return fmt.Errorf("workload: burst base rate must be >= 0 and finite, got %v", c.Base)
	}
	if c.PeakRate <= c.Base || math.IsNaN(c.PeakRate) || math.IsInf(c.PeakRate, 0) {
		return fmt.Errorf("workload: burst peak rate must exceed base %v and be finite, got %v", c.Base, c.PeakRate)
	}
	if c.StartMs < 0 || math.IsNaN(c.StartMs) || math.IsInf(c.StartMs, 0) {
		return fmt.Errorf("workload: burst start must be >= 0 and finite, got %v", c.StartMs)
	}
	if c.DurationMs <= 0 || math.IsNaN(c.DurationMs) || math.IsInf(c.DurationMs, 0) {
		return fmt.Errorf("workload: burst duration must be positive and finite, got %v", c.DurationMs)
	}
	return nil
}

// At implements RateCurve.
func (c BurstCurve) At(t float64) float64 {
	if t >= c.StartMs && t < c.StartMs+c.DurationMs {
		return c.PeakRate
	}
	return c.Base
}

// Peak implements RateCurve.
func (c BurstCurve) Peak() float64 { return c.PeakRate }

// Mean implements RateCurve (the baseline; the pulse is transient).
func (c BurstCurve) Mean() float64 {
	if c.Base > 0 {
		return c.Base
	}
	return c.PeakRate
}

// FlashCrowdCurve is the flash-sale trapezoid: baseline until StartMs, a
// linear ramp to PeakRate over RampMs (crowd building), a hold at PeakRate
// for HoldMs (the sale), and a linear decay back over DecayMs. RampMs or
// DecayMs may be 0 for step edges.
type FlashCrowdCurve struct {
	Base     float64 // baseline rate (queries/ms), >= 0
	PeakRate float64 // rate at the top of the crowd, > Base
	StartMs  float64 // ramp onset (ms), >= 0
	RampMs   float64 // ramp-up duration (ms), >= 0
	HoldMs   float64 // time at PeakRate (ms), >= 0
	DecayMs  float64 // decay duration (ms), >= 0
}

// Validate checks the curve parameters.
func (c FlashCrowdCurve) Validate() error {
	if c.Base < 0 || math.IsNaN(c.Base) || math.IsInf(c.Base, 0) {
		return fmt.Errorf("workload: flash-crowd base rate must be >= 0 and finite, got %v", c.Base)
	}
	if c.PeakRate <= c.Base || math.IsNaN(c.PeakRate) || math.IsInf(c.PeakRate, 0) {
		return fmt.Errorf("workload: flash-crowd peak rate must exceed base %v and be finite, got %v", c.Base, c.PeakRate)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"start", c.StartMs}, {"ramp", c.RampMs}, {"hold", c.HoldMs}, {"decay", c.DecayMs}} {
		if p.v < 0 || math.IsNaN(p.v) || math.IsInf(p.v, 0) {
			return fmt.Errorf("workload: flash-crowd %s must be >= 0 and finite, got %v", p.name, p.v)
		}
	}
	if c.RampMs+c.HoldMs+c.DecayMs <= 0 {
		return fmt.Errorf("workload: flash-crowd needs a positive ramp, hold, or decay duration")
	}
	return nil
}

// At implements RateCurve.
func (c FlashCrowdCurve) At(t float64) float64 {
	switch {
	case t < c.StartMs:
		return c.Base
	case t < c.StartMs+c.RampMs:
		return c.Base + (c.PeakRate-c.Base)*(t-c.StartMs)/c.RampMs
	case t < c.StartMs+c.RampMs+c.HoldMs:
		return c.PeakRate
	case t < c.StartMs+c.RampMs+c.HoldMs+c.DecayMs:
		return c.PeakRate - (c.PeakRate-c.Base)*(t-c.StartMs-c.RampMs-c.HoldMs)/c.DecayMs
	default:
		return c.Base
	}
}

// Peak implements RateCurve.
func (c FlashCrowdCurve) Peak() float64 { return c.PeakRate }

// Mean implements RateCurve (the baseline; the crowd is transient).
func (c FlashCrowdCurve) Mean() float64 {
	if c.Base > 0 {
		return c.Base
	}
	return c.PeakRate
}

// OverlayCurve composes curves by pointwise sum — e.g. a diurnal SineCurve
// plus a zero-base FlashCrowdCurve puts a flash sale on top of the daily
// wave. Peak sums the component peaks (a valid, if loose, envelope).
type OverlayCurve struct {
	Curves []RateCurve
}

// Validate checks every component that can be validated.
func (c OverlayCurve) Validate() error {
	if len(c.Curves) == 0 {
		return fmt.Errorf("workload: overlay needs at least one component curve")
	}
	for i, sub := range c.Curves {
		if sub == nil {
			return fmt.Errorf("workload: overlay component %d is nil", i)
		}
		if v, ok := sub.(interface{ Validate() error }); ok {
			if err := v.Validate(); err != nil {
				return fmt.Errorf("workload: overlay component %d: %w", i, err)
			}
		}
	}
	return nil
}

// At implements RateCurve.
func (c OverlayCurve) At(t float64) float64 {
	sum := 0.0
	for _, sub := range c.Curves {
		sum += sub.At(t)
	}
	return sum
}

// Peak implements RateCurve.
func (c OverlayCurve) Peak() float64 {
	sum := 0.0
	for _, sub := range c.Curves {
		sum += sub.Peak()
	}
	return sum
}

// Mean implements RateCurve.
func (c OverlayCurve) Mean() float64 {
	sum := 0.0
	for _, sub := range c.Curves {
		sum += sub.Mean()
	}
	return sum
}

// NewFlashCrowd is the convenience constructor for the flash-sale arrival
// process: baseline `base` q/ms, ramping to `peak` q/ms at startMs over
// rampMs, holding holdMs, decaying back over decayMs.
func NewFlashCrowd(base, peak, startMs, rampMs, holdMs, decayMs float64) (*Modulated, error) {
	return NewModulated(FlashCrowdCurve{
		Base: base, PeakRate: peak,
		StartMs: startMs, RampMs: rampMs, HoldMs: holdMs, DecayMs: decayMs,
	})
}

// NewBurst is the convenience constructor for the thundering-herd arrival
// process: a rectangular pulse from base to peak at startMs for durationMs.
func NewBurst(base, peak, startMs, durationMs float64) (*Modulated, error) {
	return NewModulated(BurstCurve{Base: base, PeakRate: peak, StartMs: startMs, DurationMs: durationMs})
}
