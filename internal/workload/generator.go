package workload

import (
	"fmt"
	"math/rand"
)

// Query is one generated query: its arrival time, service class, fanout,
// and the task servers its tasks are dispatched to.
type Query struct {
	ID      int64
	Arrival float64 // absolute arrival time t0 (ms)
	Class   int     // class ID within the generator's ClassSet
	Fanout  int     // kf = len(Servers)
	Servers []int   // distinct task-server indices in [0, N)

	// Services optionally pins each task's service time (parallel to
	// Servers), used by trace replay; when nil the simulator samples from
	// the per-server distributions.
	Services []float64
	// Budget, when HasBudget is set, overrides the policy deadline rule
	// with tD = Arrival + Budget. The request-level decomposition
	// extension uses it to assign per-query pre-dequeuing budgets.
	Budget    float64
	HasBudget bool
	// Request tags the request this query belongs to (request-level
	// extension); -1 or 0 for standalone queries.
	Request int64
}

// QuerySource produces a stream of queries with non-decreasing arrival
// times. Generator is the standard implementation; trace replayers and
// request workloads provide others.
type QuerySource interface {
	// Next returns the next query. The second result is false when the
	// stream is exhausted (Generator streams are infinite).
	Next() (Query, bool)
}

// GeneratorConfig configures a query generator.
type GeneratorConfig struct {
	Servers int            // cluster size N
	Arrival ArrivalProcess // query arrival process
	Fanout  FanoutDist     // query fanout distribution
	Classes *ClassSet      // service classes and mix
	// Placement optionally overrides uniform-random distinct server
	// selection; it must return kf distinct indices in [0, Servers).
	Placement func(r *rand.Rand, fanout int) []int
}

// Generator produces a deterministic (given the seed) stream of queries.
// It is not safe for concurrent use; each simulation owns one generator.
type Generator struct {
	cfg       GeneratorConfig
	rng       *rand.Rand
	nextID    int64
	now       float64
	maxFanout int
	// scratch for sampling distinct servers without replacement
	perm []int
	// free holds recycled placement slices (see Recycle), each with
	// capacity maxFanout so any fanout can reuse them.
	free [][]int
}

// NewGenerator validates the configuration and returns a generator seeded
// with the given seed.
func NewGenerator(cfg GeneratorConfig, seed int64) (*Generator, error) {
	if cfg.Servers < 1 {
		return nil, fmt.Errorf("workload: cluster size must be >= 1, got %d", cfg.Servers)
	}
	if cfg.Arrival == nil {
		return nil, fmt.Errorf("workload: arrival process is required")
	}
	if cfg.Fanout == nil {
		return nil, fmt.Errorf("workload: fanout distribution is required")
	}
	if cfg.Classes == nil {
		return nil, fmt.Errorf("workload: class set is required")
	}
	if max := cfg.Fanout.Max(); max > cfg.Servers {
		return nil, fmt.Errorf("workload: max fanout %d exceeds cluster size %d", max, cfg.Servers)
	}
	g := &Generator{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(seed)),
		maxFanout: cfg.Fanout.Max(),
		perm:      make([]int, cfg.Servers),
	}
	for i := range g.perm {
		g.perm[i] = i
	}
	return g, nil
}

// Next returns the next query in the stream. Generator streams never end,
// so the second result is always true.
func (g *Generator) Next() (Query, bool) {
	g.now += g.cfg.Arrival.NextGap(g.rng)
	fanout := g.cfg.Fanout.Sample(g.rng)
	q := Query{
		ID:      g.nextID,
		Arrival: g.now,
		Class:   g.cfg.Classes.Sample(g.rng),
		Fanout:  fanout,
		Servers: g.place(fanout),
	}
	g.nextID++
	return q, true
}

// place selects fanout distinct servers.
func (g *Generator) place(fanout int) []int {
	if g.cfg.Placement != nil {
		return g.cfg.Placement(g.rng, fanout)
	}
	// Partial Fisher-Yates over the persistent permutation buffer: O(kf)
	// per query regardless of N.
	n := len(g.perm)
	var out []int
	if k := len(g.free); k > 0 {
		out = g.free[k-1][:fanout]
		g.free[k-1] = nil
		g.free = g.free[:k-1]
	} else {
		// Allocate at maxFanout capacity so the slice can serve any
		// later fanout once recycled.
		out = make([]int, fanout, g.maxFanout)
	}
	for i := 0; i < fanout; i++ {
		j := i + g.rng.Intn(n-i)
		g.perm[i], g.perm[j] = g.perm[j], g.perm[i]
		out[i] = g.perm[i]
	}
	return out
}

// Recycle accepts a placement slice previously returned by Next for reuse
// by later queries (cluster.ServerRecycler). The caller must not use the
// slice afterwards. Slices from a custom Placement function are dropped:
// their ownership belongs to that function.
func (g *Generator) Recycle(servers []int) {
	if g.cfg.Placement != nil || cap(servers) < g.maxFanout {
		return
	}
	g.free = append(g.free, servers[:0])
}

// Now returns the arrival time of the last generated query.
func (g *Generator) Now() float64 { return g.now }

// Rebaser is implemented by arrival processes that track an internal
// absolute clock (the non-homogeneous ones); Rebase moves that clock
// forward so the next gap is drawn from time t instead of from the last
// arrival. Generator.RebaseTo uses it when a credit gate unblocks.
type Rebaser interface {
	Rebase(t float64)
}

// RebaseTo advances the generator clock to time t, so the next query's
// arrival is drawn from t onward rather than from the last arrival — the
// resume point after the generator was blocked on a credit gate. The
// arrivals the free-running process would have emitted in between are
// dropped, not queued: that is exactly the backpressure semantics. Moving
// backwards is ignored so arrival times stay non-decreasing.
func (g *Generator) RebaseTo(t float64) {
	if t <= g.now {
		return
	}
	g.now = t
	if rb, ok := g.cfg.Arrival.(Rebaser); ok {
		rb.Rebase(t)
	}
}

// RateForLoad converts a target offered load (utilization in [0, 1]) into
// the query arrival rate (queries/ms) that produces it:
//
//	rho = lambda * E[kf] * Tm / N  =>  lambda = rho * N / (E[kf] * Tm)
//
// where Tm is the mean task service time in ms and N the cluster size.
// This is how the paper's x-axes ("Load (%)") map onto arrival rates.
func RateForLoad(load float64, servers int, meanTasks, meanServiceMs float64) (float64, error) {
	if load <= 0 {
		return 0, fmt.Errorf("workload: load must be positive, got %v", load)
	}
	if servers < 1 {
		return 0, fmt.Errorf("workload: cluster size must be >= 1, got %d", servers)
	}
	if meanTasks <= 0 || meanServiceMs <= 0 {
		return 0, fmt.Errorf("workload: mean tasks (%v) and mean service time (%v) must be positive", meanTasks, meanServiceMs)
	}
	return load * float64(servers) / (meanTasks * meanServiceMs), nil
}

// LoadForRate is the inverse of RateForLoad.
func LoadForRate(rate float64, servers int, meanTasks, meanServiceMs float64) (float64, error) {
	if rate <= 0 {
		return 0, fmt.Errorf("workload: rate must be positive, got %v", rate)
	}
	if servers < 1 {
		return 0, fmt.Errorf("workload: cluster size must be >= 1, got %d", servers)
	}
	return rate * meanTasks * meanServiceMs / float64(servers), nil
}
