package workload

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// waitParked spins until at least n acquirers are parked on the gate's
// wait channel. White-box (it reads g.waiters) so the blocking tests can
// synchronize without wall-clock sleeps — the workload package is
// virtual-time territory and the simclock lint covers its tests too.
func waitParked(g *CreditGate, n int) {
	for {
		g.mu.Lock()
		w := g.waiters
		g.mu.Unlock()
		if w >= n {
			return
		}
		runtime.Gosched()
	}
}

func TestCreditGateTryAcquireRelease(t *testing.T) {
	g, err := NewCreditGate(2)
	if err != nil {
		t.Fatalf("NewCreditGate: %v", err)
	}
	if _, err := NewCreditGate(0); err == nil {
		t.Error("zero limit accepted")
	}
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("first two acquires failed")
	}
	if g.TryAcquire() {
		t.Fatal("third acquire succeeded past limit 2")
	}
	if g.InFlight() != 2 || g.Limit() != 2 {
		t.Fatalf("InFlight/Limit = %d/%d, want 2/2", g.InFlight(), g.Limit())
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("acquire after release failed")
	}
}

func TestCreditGateShrinkNeverRevokes(t *testing.T) {
	g, _ := NewCreditGate(4)
	for i := 0; i < 4; i++ {
		g.TryAcquire()
	}
	g.SetLimit(1)
	if g.Limit() != 1 {
		t.Fatalf("Limit = %d, want 1", g.Limit())
	}
	if g.InFlight() != 4 {
		t.Fatalf("shrink revoked credits: InFlight = %d", g.InFlight())
	}
	if g.TryAcquire() {
		t.Fatal("acquire succeeded while over the shrunken limit")
	}
	for i := 0; i < 4; i++ {
		g.Release()
	}
	if !g.TryAcquire() || g.TryAcquire() {
		t.Fatal("gate did not settle at the new limit 1")
	}
	g.SetLimit(0) // clamps to 1
	if g.Limit() != 1 {
		t.Fatalf("SetLimit(0) clamped to %d, want 1", g.Limit())
	}
}

func TestCreditGateAcquireBlocksAndWakes(t *testing.T) {
	g, _ := NewCreditGate(1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	got := make(chan error, 1)
	go func() { got <- g.Acquire(context.Background()) }()
	waitParked(g, 1)
	select {
	case err := <-got:
		t.Fatalf("Acquire returned %v while gate was full", err)
	default:
	}
	g.Release()
	if err := <-got; err != nil {
		t.Fatalf("Acquire after release: %v", err)
	}

	// A raised limit also wakes waiters.
	done := make(chan error, 1)
	go func() { done <- g.Acquire(context.Background()) }()
	waitParked(g, 1)
	g.SetLimit(2)
	if err := <-done; err != nil {
		t.Fatalf("Acquire after SetLimit: %v", err)
	}
}

func TestCreditGateAcquireHonorsContext(t *testing.T) {
	g, _ := NewCreditGate(1)
	g.TryAcquire()
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- g.Acquire(ctx) }()
	cancel()
	if err := <-got; err == nil {
		t.Fatal("Acquire succeeded after cancel")
	}
}

func TestCreditGateReleasePanicsOnUnderflow(t *testing.T) {
	g, _ := NewCreditGate(1)
	defer func() {
		if recover() == nil {
			t.Fatal("unpaired Release did not panic")
		}
	}()
	g.Release()
}

// TestCreditGateConcurrentStress is the -race gate for the credit path:
// many producer goroutines acquire/release while a controller goroutine
// jitters the limit. The held count must never exceed the largest limit
// ever set, and all credits must drain at the end.
func TestCreditGateConcurrentStress(t *testing.T) {
	const producers = 16
	const perProducer = 400
	const maxLimit = 8
	g, _ := NewCreditGate(maxLimit)

	var inFlight atomic.Int64
	var peak atomic.Int64
	stop := make(chan struct{})
	var ctl sync.WaitGroup
	ctl.Add(1)
	go func() {
		defer ctl.Done()
		n := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			g.SetLimit(1 + n%maxLimit)
			n++
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := g.Acquire(context.Background()); err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				cur := inFlight.Add(1)
				for {
					old := peak.Load()
					if cur <= old || peak.CompareAndSwap(old, cur) {
						break
					}
				}
				inFlight.Add(-1)
				g.Release()
			}
		}()
	}
	wg.Wait()
	close(stop)
	ctl.Wait()

	if p := peak.Load(); p > maxLimit {
		t.Errorf("peak concurrent holders %d exceeded max limit %d", p, maxLimit)
	}
	if g.InFlight() != 0 {
		t.Errorf("credits leaked: InFlight = %d at drain", g.InFlight())
	}
}
