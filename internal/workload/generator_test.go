package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testGenerator(t *testing.T, seed int64) *Generator {
	t.Helper()
	arr, err := NewPoisson(1)
	if err != nil {
		t.Fatalf("NewPoisson: %v", err)
	}
	fan, err := NewInverseProportional([]int{1, 10, 100})
	if err != nil {
		t.Fatalf("NewInverseProportional: %v", err)
	}
	cls, err := TwoClasses(1.0, 1.5)
	if err != nil {
		t.Fatalf("TwoClasses: %v", err)
	}
	g, err := NewGenerator(GeneratorConfig{
		Servers: 100,
		Arrival: arr,
		Fanout:  fan,
		Classes: cls,
	}, seed)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return g
}

func TestGeneratorProducesValidQueries(t *testing.T) {
	g := testGenerator(t, 1)
	prev := 0.0
	for i := 0; i < 10000; i++ {
		q, _ := g.Next()
		if q.ID != int64(i) {
			t.Fatalf("query %d has ID %d", i, q.ID)
		}
		if q.Arrival <= prev {
			t.Fatalf("arrival times not strictly increasing: %v after %v", q.Arrival, prev)
		}
		prev = q.Arrival
		if q.Fanout != len(q.Servers) {
			t.Fatalf("fanout %d != len(servers) %d", q.Fanout, len(q.Servers))
		}
		if q.Class != 0 && q.Class != 1 {
			t.Fatalf("unexpected class %d", q.Class)
		}
		seen := make(map[int]bool, len(q.Servers))
		for _, s := range q.Servers {
			if s < 0 || s >= 100 {
				t.Fatalf("server index %d out of range", s)
			}
			if seen[s] {
				t.Fatalf("duplicate server %d in placement %v", s, q.Servers)
			}
			seen[s] = true
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1 := testGenerator(t, 42)
	g2 := testGenerator(t, 42)
	for i := 0; i < 1000; i++ {
		a, _ := g1.Next()
		b, _ := g2.Next()
		if a.Arrival != b.Arrival || a.Fanout != b.Fanout || a.Class != b.Class {
			t.Fatalf("query %d diverged: %+v vs %+v", i, a, b)
		}
		for j := range a.Servers {
			if a.Servers[j] != b.Servers[j] {
				t.Fatalf("query %d placement diverged", i)
			}
		}
	}
	g3 := testGenerator(t, 43)
	q1, _ := testGenerator(t, 42).Next()
	q3, _ := g3.Next()
	if q1.Arrival == q3.Arrival {
		t.Error("different seeds produced identical first arrival (suspicious)")
	}
}

func TestGeneratorFullFanoutCoversCluster(t *testing.T) {
	arr, _ := NewPoisson(1)
	fan, _ := NewFixed(100)
	cls, _ := SingleClass(1)
	g, err := NewGenerator(GeneratorConfig{Servers: 100, Arrival: arr, Fanout: fan, Classes: cls}, 7)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	q, _ := g.Next()
	if len(q.Servers) != 100 {
		t.Fatalf("fanout-100 query has %d servers", len(q.Servers))
	}
	seen := make(map[int]bool)
	for _, s := range q.Servers {
		seen[s] = true
	}
	if len(seen) != 100 {
		t.Errorf("full fanout placed on %d distinct servers, want 100", len(seen))
	}
}

func TestGeneratorCustomPlacement(t *testing.T) {
	arr, _ := NewPoisson(1)
	fan, _ := NewFixed(2)
	cls, _ := SingleClass(1)
	g, err := NewGenerator(GeneratorConfig{
		Servers: 10,
		Arrival: arr,
		Fanout:  fan,
		Classes: cls,
		Placement: func(r *rand.Rand, fanout int) []int {
			out := make([]int, fanout)
			for i := range out {
				out[i] = i // always the first servers
			}
			return out
		},
	}, 1)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	q, _ := g.Next()
	if q.Servers[0] != 0 || q.Servers[1] != 1 {
		t.Errorf("custom placement ignored: %v", q.Servers)
	}
}

func TestGeneratorValidation(t *testing.T) {
	arr, _ := NewPoisson(1)
	fan, _ := NewFixed(10)
	cls, _ := SingleClass(1)
	cases := []struct {
		name string
		cfg  GeneratorConfig
	}{
		{"no servers", GeneratorConfig{Servers: 0, Arrival: arr, Fanout: fan, Classes: cls}},
		{"nil arrival", GeneratorConfig{Servers: 10, Fanout: fan, Classes: cls}},
		{"nil fanout", GeneratorConfig{Servers: 10, Arrival: arr, Classes: cls}},
		{"nil classes", GeneratorConfig{Servers: 10, Arrival: arr, Fanout: fan}},
		{"fanout exceeds cluster", GeneratorConfig{Servers: 5, Arrival: arr, Fanout: fan, Classes: cls}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewGenerator(tc.cfg, 1); err == nil {
				t.Errorf("NewGenerator succeeded, want error")
			}
		})
	}
}

func TestGeneratorArrivalRateMatchesLoad(t *testing.T) {
	// The load conversion must make busy-time bookkeeping come out right:
	// lambda = rho*N/(E[k]*Tm).
	const (
		load   = 0.4
		n      = 100
		meanMs = 0.176
	)
	meanTasks := 300.0 / 111
	rate, err := RateForLoad(load, n, meanTasks, meanMs)
	if err != nil {
		t.Fatalf("RateForLoad: %v", err)
	}
	// Round trip.
	back, err := LoadForRate(rate, n, meanTasks, meanMs)
	if err != nil {
		t.Fatalf("LoadForRate: %v", err)
	}
	if math.Abs(back-load) > 1e-12 {
		t.Errorf("LoadForRate(RateForLoad(%v)) = %v", load, back)
	}
	// Empirically: total task-service demand per ms ≈ rho*N.
	arr, _ := NewPoisson(rate)
	fan, _ := NewInverseProportional([]int{1, 10, 100})
	cls, _ := SingleClass(1)
	g, err := NewGenerator(GeneratorConfig{Servers: n, Arrival: arr, Fanout: fan, Classes: cls}, 11)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	var tasks int
	const queries = 200000
	for i := 0; i < queries; i++ {
		q, _ := g.Next()
		tasks += q.Fanout
	}
	demand := float64(tasks) * meanMs / g.Now() // task-ms of work per ms
	if math.Abs(demand-load*n)/(load*n) > 0.02 {
		t.Errorf("offered demand = %v task-ms/ms, want ~%v", demand, load*n)
	}
}

func TestRateLoadConversionErrors(t *testing.T) {
	if _, err := RateForLoad(0, 10, 1, 1); err == nil {
		t.Error("RateForLoad(0) succeeded, want error")
	}
	if _, err := RateForLoad(0.5, 0, 1, 1); err == nil {
		t.Error("RateForLoad with 0 servers succeeded, want error")
	}
	if _, err := RateForLoad(0.5, 10, 0, 1); err == nil {
		t.Error("RateForLoad with 0 mean tasks succeeded, want error")
	}
	if _, err := LoadForRate(0, 10, 1, 1); err == nil {
		t.Error("LoadForRate(0) succeeded, want error")
	}
	if _, err := LoadForRate(1, 0, 1, 1); err == nil {
		t.Error("LoadForRate with 0 servers succeeded, want error")
	}
}

// Property: placement always returns distinct in-range servers of the
// requested cardinality.
func TestPlacementProperty(t *testing.T) {
	arr, _ := NewPoisson(1)
	cls, _ := SingleClass(1)
	prop := func(rawN uint8, rawK uint8, seed int64) bool {
		n := int(rawN%200) + 1
		k := int(rawK)%n + 1
		fan, err := NewFixed(k)
		if err != nil {
			return false
		}
		g, err := NewGenerator(GeneratorConfig{Servers: n, Arrival: arr, Fanout: fan, Classes: cls}, seed)
		if err != nil {
			return false
		}
		q, _ := g.Next()
		if len(q.Servers) != k {
			return false
		}
		seen := map[int]bool{}
		for _, s := range q.Servers {
			if s < 0 || s >= n || seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("placement property violated: %v", err)
	}
}
