package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestFixedFanout(t *testing.T) {
	f, err := NewFixed(100)
	if err != nil {
		t.Fatalf("NewFixed: %v", err)
	}
	if got := f.Sample(nil); got != 100 {
		t.Errorf("Sample() = %d, want 100", got)
	}
	if got := f.MeanTasks(); got != 100 {
		t.Errorf("MeanTasks() = %v, want 100", got)
	}
	if got := f.Prob(100); got != 1 {
		t.Errorf("Prob(100) = %v, want 1", got)
	}
	if got := f.Prob(10); got != 0 {
		t.Errorf("Prob(10) = %v, want 0", got)
	}
	if got := f.Max(); got != 100 {
		t.Errorf("Max() = %d, want 100", got)
	}
	if _, err := NewFixed(0); err == nil {
		t.Error("NewFixed(0) succeeded, want error")
	}
}

// TestInverseProportionalPaperMix verifies the paper's Section IV.B fanout
// model: P(1)=100/111, P(10)=10/111, P(100)=1/111, so each fanout
// contributes the same expected task count.
func TestInverseProportionalPaperMix(t *testing.T) {
	w, err := NewInverseProportional([]int{1, 10, 100})
	if err != nil {
		t.Fatalf("NewInverseProportional: %v", err)
	}
	wants := map[int]float64{1: 100.0 / 111, 10: 10.0 / 111, 100: 1.0 / 111}
	for k, want := range wants {
		if got := w.Prob(k); math.Abs(got-want) > 1e-12 {
			t.Errorf("Prob(%d) = %v, want %v", k, got, want)
		}
	}
	// E[kf] = 3*100/111 = 300/111.
	if got, want := w.MeanTasks(), 300.0/111; math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanTasks() = %v, want %v", got, want)
	}
	// Each fanout contributes k*P(k) = 100/111 expected tasks.
	for k := range wants {
		contrib := float64(k) * w.Prob(k)
		if math.Abs(contrib-100.0/111) > 1e-12 {
			t.Errorf("fanout %d task contribution = %v, want %v", k, contrib, 100.0/111)
		}
	}
	sup := w.Support()
	if len(sup) != 3 || sup[0] != 1 || sup[1] != 10 || sup[2] != 100 {
		t.Errorf("Support() = %v, want [1 10 100]", sup)
	}
	if got := w.Max(); got != 100 {
		t.Errorf("Max() = %d, want 100", got)
	}
}

func TestWeightedSamplingProportions(t *testing.T) {
	w, err := NewWeighted([]int{2, 8}, []float64{3, 1})
	if err != nil {
		t.Fatalf("NewWeighted: %v", err)
	}
	r := rand.New(rand.NewSource(1))
	counts := map[int]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[w.Sample(r)]++
	}
	if frac := float64(counts[2]) / n; math.Abs(frac-0.75) > 0.01 {
		t.Errorf("P(2) sampled = %v, want ~0.75", frac)
	}
	if counts[2]+counts[8] != n {
		t.Errorf("sampled values outside support: %v", counts)
	}
}

func TestWeightedInvalid(t *testing.T) {
	cases := []struct {
		name    string
		fanouts []int
		weights []float64
	}{
		{"empty", nil, nil},
		{"mismatch", []int{1}, []float64{1, 2}},
		{"zero fanout", []int{0}, []float64{1}},
		{"negative weight", []int{1}, []float64{-1}},
		{"zero sum", []int{1, 2}, []float64{0, 0}},
		{"duplicate", []int{3, 3}, []float64{1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewWeighted(tc.fanouts, tc.weights); err == nil {
				t.Errorf("NewWeighted(%v, %v) succeeded, want error", tc.fanouts, tc.weights)
			}
		})
	}
	if _, err := NewInverseProportional([]int{0}); err == nil {
		t.Error("NewInverseProportional([0]) succeeded, want error")
	}
}

func TestEmpiricalFanout(t *testing.T) {
	w, err := NewEmpirical([]int{1, 1, 1, 10, 10, 100})
	if err != nil {
		t.Fatalf("NewEmpirical: %v", err)
	}
	if got := w.Prob(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(1) = %v, want 0.5", got)
	}
	if got := w.Prob(100); math.Abs(got-1.0/6) > 1e-12 {
		t.Errorf("P(100) = %v, want 1/6", got)
	}
	if got := w.MeanTasks(); math.Abs(got-(3+20+100)/6.0) > 1e-12 {
		t.Errorf("MeanTasks = %v", got)
	}
	if _, err := NewEmpirical(nil); err == nil {
		t.Error("empty observations succeeded, want error")
	}
	if _, err := NewEmpirical([]int{0}); err == nil {
		t.Error("zero fanout succeeded, want error")
	}
}

func TestZipf(t *testing.T) {
	z, err := NewZipf(10, 1.0)
	if err != nil {
		t.Fatalf("NewZipf: %v", err)
	}
	// P(1)/P(2) = 2 for s=1.
	if got := z.Prob(1) / z.Prob(2); math.Abs(got-2) > 1e-9 {
		t.Errorf("P(1)/P(2) = %v, want 2", got)
	}
	if got := z.Max(); got != 10 {
		t.Errorf("Max() = %d, want 10", got)
	}
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("NewZipf(0, 1) succeeded, want error")
	}
	if _, err := NewZipf(5, 0); err == nil {
		t.Error("NewZipf(5, 0) succeeded, want error")
	}
}
