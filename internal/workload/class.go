package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// Class is one service class: a tail-latency SLO expressed as the
// Percentile-th percentile query latency of SLOMs milliseconds, plus the
// class's share of the query mix. Lower ID means higher priority under
// PRIQ (class 0 is the most stringent).
type Class struct {
	ID         int
	Name       string
	SLOMs      float64 // x_p^SLO: the tail-latency SLO in milliseconds
	Percentile float64 // p, e.g. 0.99 for a 99th-percentile SLO
	Weight     float64 // relative share of queries in the mix
}

func (c Class) validate() error {
	if c.SLOMs <= 0 {
		return fmt.Errorf("workload: class %d (%s) has non-positive SLO %v ms", c.ID, c.Name, c.SLOMs)
	}
	if c.Percentile <= 0 || c.Percentile >= 1 {
		return fmt.Errorf("workload: class %d (%s) percentile %v outside (0, 1)", c.ID, c.Name, c.Percentile)
	}
	if c.Weight < 0 {
		return fmt.Errorf("workload: class %d (%s) has negative weight %v", c.ID, c.Name, c.Weight)
	}
	return nil
}

// ClassSet is a validated collection of service classes with weighted
// sampling. Classes are stored in ID order with IDs 0..n-1.
type ClassSet struct {
	classes []Class
	cum     []float64
}

// NewClassSet validates and indexes the given classes. IDs must be the
// dense range 0..n-1 (any order in the input); weights must have a
// positive sum.
func NewClassSet(classes []Class) (*ClassSet, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("workload: class set needs at least one class")
	}
	cs := append([]Class(nil), classes...)
	sort.Slice(cs, func(i, j int) bool { return cs[i].ID < cs[j].ID })
	var sum float64
	for i, c := range cs {
		if c.ID != i {
			return nil, fmt.Errorf("workload: class IDs must be dense 0..%d, got %d at position %d", len(cs)-1, c.ID, i)
		}
		if err := c.validate(); err != nil {
			return nil, err
		}
		sum += c.Weight
	}
	if sum <= 0 {
		return nil, fmt.Errorf("workload: class weights sum to %v", sum)
	}
	set := &ClassSet{classes: cs, cum: make([]float64, len(cs))}
	var c float64
	for i := range cs {
		c += cs[i].Weight / sum
		set.cum[i] = c
	}
	set.cum[len(set.cum)-1] = 1
	return set, nil
}

// SingleClass returns a one-class set with the given 99th-percentile SLO,
// the configuration of the paper's single-class case studies.
func SingleClass(sloMs float64) (*ClassSet, error) {
	return NewClassSet([]Class{{ID: 0, Name: "default", SLOMs: sloMs, Percentile: 0.99, Weight: 1}})
}

// TwoClasses returns the paper's two-class configuration: a high class
// with the given 99th-percentile SLO and a low class with ratio times that
// SLO (the paper uses ratio 1.5), each receiving half the queries.
func TwoClasses(highSLOMs, ratio float64) (*ClassSet, error) {
	if ratio < 1 {
		return nil, fmt.Errorf("workload: low-class SLO ratio must be >= 1, got %v", ratio)
	}
	return NewClassSet([]Class{
		{ID: 0, Name: "high", SLOMs: highSLOMs, Percentile: 0.99, Weight: 1},
		{ID: 1, Name: "low", SLOMs: highSLOMs * ratio, Percentile: 0.99, Weight: 1},
	})
}

// Len returns the number of classes.
func (s *ClassSet) Len() int { return len(s.classes) }

// Class returns the class with the given ID.
func (s *ClassSet) Class(id int) (Class, error) {
	if id < 0 || id >= len(s.classes) {
		return Class{}, fmt.Errorf("workload: class ID %d out of range [0, %d)", id, len(s.classes))
	}
	return s.classes[id], nil
}

// Classes returns a copy of all classes in ID order.
func (s *ClassSet) Classes() []Class { return append([]Class(nil), s.classes...) }

// Sample draws a class ID according to the weights.
func (s *ClassSet) Sample(r *rand.Rand) int {
	u := r.Float64()
	i := sort.SearchFloat64s(s.cum, u)
	if i >= len(s.classes) {
		i = len(s.classes) - 1
	}
	return s.classes[i].ID
}
