package workload

import (
	"math"
	"math/rand"
	"testing"
)

// TestSinusoidalBitIdenticalToReference pins the curve-backed Sinusoidal
// to the pre-curve implementation draw for draw: same seed, same gaps, to
// the last bit. This is what keeps the surge-experiment goldens stable
// across the refactor.
func TestSinusoidalBitIdenticalToReference(t *testing.T) {
	const mean, amp, period = 1.2, 0.6, 750.0
	s, err := NewSinusoidal(mean, amp, period)
	if err != nil {
		t.Fatalf("NewSinusoidal: %v", err)
	}
	r1 := rand.New(rand.NewSource(42))
	r2 := rand.New(rand.NewSource(42))
	now := 0.0
	for i := 0; i < 5000; i++ {
		got := s.NextGap(r1)
		// Reference: the original thinning loop, expression for expression.
		peak := mean * (1 + amp)
		start := now
		var want float64
		for {
			now += r2.ExpFloat64() / peak
			if r2.Float64() < mean*(1+amp*math.Sin(2*math.Pi*now/period))/peak {
				want = now - start
				break
			}
		}
		if got != want {
			t.Fatalf("draw %d: gap = %v, reference = %v", i, got, want)
		}
	}
}

func TestSinusoidalPhasedShiftsWave(t *testing.T) {
	// Phase by a quarter period: the wave peaks where the unphased one
	// crosses zero. Compare instantaneous rates directly.
	base := SineCurve{Base: 1, Amplitude: 0.8, PeriodMs: 1000}
	shift := SineCurve{Base: 1, Amplitude: 0.8, PeriodMs: 1000, PhaseMs: 250}
	if got, want := shift.At(0), base.At(250); got != want {
		t.Errorf("phased At(0) = %v, want %v", got, want)
	}
	if shift.At(0) <= 1.7 {
		t.Errorf("phased curve should start at its crest, got rate %v", shift.At(0))
	}
	if _, err := NewSinusoidalPhased(1, 0.5, 100, math.NaN()); err == nil {
		t.Error("NaN phase succeeded")
	}
}

func TestBurstCurveShape(t *testing.T) {
	c := BurstCurve{Base: 0.5, PeakRate: 5, StartMs: 100, DurationMs: 50}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, tc := range []struct {
		t, want float64
	}{{0, 0.5}, {99.9, 0.5}, {100, 5}, {149.9, 5}, {150, 0.5}, {1000, 0.5}} {
		if got := c.At(tc.t); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	if c.Peak() != 5 {
		t.Errorf("Peak() = %v", c.Peak())
	}
}

func TestFlashCrowdCurveShape(t *testing.T) {
	c := FlashCrowdCurve{Base: 1, PeakRate: 9, StartMs: 100, RampMs: 40, HoldMs: 100, DecayMs: 80}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, tc := range []struct {
		t, want float64
	}{
		{0, 1}, {100, 1}, {120, 5}, {140, 9}, {200, 9},
		{240, 9}, {280, 5}, {320, 1}, {500, 1},
	} {
		if got := c.At(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestCurveValidation(t *testing.T) {
	bad := []RateCurve{
		BurstCurve{Base: -1, PeakRate: 2, StartMs: 0, DurationMs: 1},
		BurstCurve{Base: 2, PeakRate: 1, StartMs: 0, DurationMs: 1},
		BurstCurve{Base: 0, PeakRate: 1, StartMs: -1, DurationMs: 1},
		BurstCurve{Base: 0, PeakRate: 1, StartMs: 0, DurationMs: 0},
		FlashCrowdCurve{Base: 0, PeakRate: 1},
		FlashCrowdCurve{Base: 0, PeakRate: 1, RampMs: -1, HoldMs: 1},
		FlashCrowdCurve{Base: 1, PeakRate: 1, HoldMs: 1},
		SineCurve{Base: 1, Amplitude: 1, PeriodMs: 10},
		OverlayCurve{},
		OverlayCurve{Curves: []RateCurve{nil}},
		OverlayCurve{Curves: []RateCurve{SineCurve{Base: -1, Amplitude: 0, PeriodMs: 1}}},
	}
	for i, c := range bad {
		if _, err := NewModulated(c); err == nil {
			t.Errorf("bad curve %d (%T) accepted", i, c)
		}
	}
	if _, err := NewModulated(nil); err == nil {
		t.Error("nil curve accepted")
	}
}

// TestBurstConcentratesArrivals drives the thundering-herd process and
// checks the pulse window dominates the arrival count.
func TestBurstConcentratesArrivals(t *testing.T) {
	m, err := NewBurst(0.2, 20, 500, 100)
	if err != nil {
		t.Fatalf("NewBurst: %v", err)
	}
	r := rand.New(rand.NewSource(7))
	var at float64
	in, out := 0, 0
	for at < 1000 {
		at += m.NextGap(r)
		if at >= 500 && at < 600 {
			in++
		} else if at < 1000 {
			out++
		}
	}
	// Expected ~2000 in the pulse vs ~180 outside.
	if in < 10*out {
		t.Errorf("burst window arrivals %d not dominating baseline %d", in, out)
	}
}

// TestOverlayComposition puts a zero-base flash pulse on a diurnal wave
// and checks both structure (rate sums) and that the process samples.
func TestOverlayComposition(t *testing.T) {
	day := SineCurve{Base: 1, Amplitude: 0.5, PeriodMs: 2000}
	flash := FlashCrowdCurve{Base: 0, PeakRate: 8, StartMs: 600, RampMs: 50, HoldMs: 100, DecayMs: 50}
	ov := OverlayCurve{Curves: []RateCurve{day, flash}}
	if got, want := ov.At(700), day.At(700)+8; math.Abs(got-want) > 1e-12 {
		t.Errorf("overlay At(700) = %v, want %v", got, want)
	}
	if got, want := ov.Peak(), day.Peak()+8; got != want {
		t.Errorf("overlay Peak() = %v, want %v", got, want)
	}
	m, err := NewModulated(ov)
	if err != nil {
		t.Fatalf("NewModulated: %v", err)
	}
	r := rand.New(rand.NewSource(11))
	var at float64
	n := 0
	for at < 2000 {
		at += m.NextGap(r)
		n++
	}
	if n < 1000 {
		t.Errorf("overlay process produced only %d arrivals over 2000 ms", n)
	}
}

func TestModulatedRebase(t *testing.T) {
	m, err := NewFlashCrowd(1, 10, 100, 0, 50, 0)
	if err != nil {
		t.Fatalf("NewFlashCrowd: %v", err)
	}
	r := rand.New(rand.NewSource(3))
	m.NextGap(r)
	was := m.Now()
	m.Rebase(was - 1) // backwards: ignored
	if m.Now() != was {
		t.Errorf("backwards rebase moved clock to %v", m.Now())
	}
	m.Rebase(was + 500)
	if m.Now() != was+500 {
		t.Errorf("rebase: clock = %v, want %v", m.Now(), was+500)
	}
	if gap := m.NextGap(r); m.Now() <= was+500 {
		t.Errorf("post-rebase arrival %v (gap %v) not after rebase point", m.Now(), gap)
	}
}

func TestGeneratorRebaseTo(t *testing.T) {
	arr, err := NewSinusoidal(1, 0.5, 500)
	if err != nil {
		t.Fatalf("NewSinusoidal: %v", err)
	}
	fan, err := NewFixed(2)
	if err != nil {
		t.Fatalf("NewFixed: %v", err)
	}
	cls, err := SingleClass(1.0)
	if err != nil {
		t.Fatalf("SingleClass: %v", err)
	}
	g, err := NewGenerator(GeneratorConfig{
		Servers: 8,
		Arrival: arr,
		Fanout:  fan,
		Classes: cls,
	}, 1)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	for i := 0; i < 5; i++ {
		g.Next()
	}
	resume := g.Now() + 250
	g.RebaseTo(resume)
	if g.Now() != resume {
		t.Fatalf("generator clock = %v, want %v", g.Now(), resume)
	}
	if arr.Now() != resume {
		t.Fatalf("arrival clock = %v, want %v (Rebaser not invoked)", arr.Now(), resume)
	}
	q, _ := g.Next()
	if q.Arrival <= resume {
		t.Errorf("post-rebase arrival %v not after resume point %v", q.Arrival, resume)
	}
	g.RebaseTo(resume) // backwards/no-op
	if g.Now() < q.Arrival {
		t.Errorf("backwards RebaseTo rewound the clock to %v", g.Now())
	}
}
