// Package fault injects deterministic failures into the TailGuard
// simulator and testbed. A fault *plan* is a declarative, serializable
// list of per-server fault windows — service slowdowns, full-stop stalls,
// crash/restart cycles, and transport delay/drop — that an Engine
// compiles into O(log n) lookups driven entirely by the simulation clock
// and a seeded counter stream. The package observes the same determinism
// contract tglint enforces elsewhere: no wall clock, no global rand
// (tools/tglint faultdet), so identical (seed, plan) pairs replay
// bit-identical fault schedules.
package fault

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
)

// Kind names a fault class. The string values are the on-disk plan
// vocabulary and the labels experiment tables report.
type Kind string

const (
	// Slowdown multiplies a server's service times by Factor inside the
	// window (a degraded disk, a noisy neighbor).
	Slowdown Kind = "slowdown"
	// Stall halts all service progress on a server inside the window
	// (a GC pause, a lock convoy). In-flight work resumes afterwards;
	// nothing is lost.
	Stall Kind = "stall"
	// Crash kills a server at StartMs — its queue and in-flight task are
	// lost — and restarts it empty at EndMs.
	Crash Kind = "crash"
	// TransportDelay adds DelayMs to every dispatch to the server inside
	// the window (network congestion on the saas path).
	TransportDelay Kind = "transport-delay"
	// TransportDrop drops each dispatch to the server inside the window
	// with probability DropProb, drawn from the engine's seeded stream.
	TransportDrop Kind = "transport-drop"
)

// AllServers is the Fault.Server value meaning "every server".
const AllServers = -1

// Fault is one fault window in a plan. Which auxiliary field applies
// depends on Kind: Factor for slowdown, DelayMs for transport-delay,
// DropProb for transport-drop; stall and crash need only the window.
type Fault struct {
	Kind     Kind    `json:"kind"`
	Server   int     `json:"server"` // server index, or AllServers (-1)
	StartMs  float64 `json:"start_ms"`
	EndMs    float64 `json:"end_ms"`
	Factor   float64 `json:"factor,omitempty"`
	DelayMs  float64 `json:"delay_ms,omitempty"`
	DropProb float64 `json:"drop_prob,omitempty"`
}

// Plan is a serializable fault schedule plus the seed for every random
// draw the engine makes (currently: transport-drop coin flips).
type Plan struct {
	Name   string  `json:"name,omitempty"`
	Seed   int64   `json:"seed"`
	Faults []Fault `json:"faults"`
}

// ParsePlan decodes a JSON fault plan. Unknown fields are an error so a
// typo'd plan fails loudly instead of silently injecting nothing.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("fault: parse plan: %w", err)
	}
	return &p, nil
}

// LoadPlan reads and decodes a JSON fault plan from path.
func LoadPlan(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: load plan: %w", err)
	}
	return ParsePlan(data)
}

// Marshal renders the plan as indented JSON suitable for committing next
// to the sweep artifacts it produced.
func (p *Plan) Marshal() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// category groups fault kinds whose windows may not overlap on the same
// server: two simultaneous slowdowns on one server have no defined
// composite factor, so we reject the plan instead of guessing.
func (k Kind) category() string {
	switch k {
	case Slowdown, Stall:
		return "service"
	case Crash:
		return "crash"
	case TransportDelay:
		return "transport-delay"
	case TransportDrop:
		return "transport-drop"
	}
	return ""
}

// Validate checks the plan against a cluster of `servers` servers:
// known kinds, server indices in range, well-formed windows, auxiliary
// fields in range for their kind, and no overlapping windows of the same
// category on the same server (after expanding AllServers entries).
func (p *Plan) Validate(servers int) error {
	if p == nil {
		return errors.New("fault: nil plan")
	}
	if servers <= 0 {
		return fmt.Errorf("fault: plan requires a positive server count, got %d", servers)
	}
	type key struct {
		server   int
		category string
	}
	type span struct{ start, end float64 }
	wins := make(map[key][]span)
	for i, f := range p.Faults {
		cat := f.Kind.category()
		if cat == "" {
			return fmt.Errorf("fault: plan fault %d: unknown kind %q", i, f.Kind)
		}
		if f.Server != AllServers && (f.Server < 0 || f.Server >= servers) {
			return fmt.Errorf("fault: plan fault %d: server %d out of range [0,%d)", i, f.Server, servers)
		}
		if f.StartMs < 0 || f.EndMs <= f.StartMs {
			return fmt.Errorf("fault: plan fault %d: window [%g,%g) is not a forward interval", i, f.StartMs, f.EndMs)
		}
		switch f.Kind {
		case Slowdown:
			if f.Factor <= 1 {
				return fmt.Errorf("fault: plan fault %d: slowdown factor %g must exceed 1", i, f.Factor)
			}
		case TransportDelay:
			if f.DelayMs <= 0 {
				return fmt.Errorf("fault: plan fault %d: transport-delay delay_ms %g must be positive", i, f.DelayMs)
			}
		case TransportDrop:
			if f.DropProb <= 0 || f.DropProb > 1 {
				return fmt.Errorf("fault: plan fault %d: transport-drop drop_prob %g outside (0,1]", i, f.DropProb)
			}
		}
		lo, hi := f.Server, f.Server
		if f.Server == AllServers {
			lo, hi = 0, servers-1
		}
		for s := lo; s <= hi; s++ {
			k := key{s, cat}
			wins[k] = append(wins[k], span{f.StartMs, f.EndMs})
		}
	}
	// Check the (server, category) groups in sorted order: with several
	// overlap violations present, which one Validate names must not depend
	// on map iteration order.
	keys := make([]key, 0, len(wins))
	for k := range wins {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].server != keys[j].server {
			return keys[i].server < keys[j].server
		}
		return keys[i].category < keys[j].category
	})
	for _, k := range keys {
		spans := wins[k]
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].end {
				return fmt.Errorf("fault: overlapping %s windows on server %d ([%g,%g) and [%g,%g))",
					k.category, k.server,
					spans[i-1].start, spans[i-1].end, spans[i].start, spans[i].end)
			}
		}
	}
	return nil
}

// Hash returns a short stable fingerprint of the plan's semantics (seed
// and faults; the display name is excluded). Sweep artifacts embed it in
// filenames so runs of different plans can never silently overwrite each
// other.
func (p *Plan) Hash() string {
	h := fnv.New64a()
	if p == nil {
		return "00000000"
	}
	// fnv's Write never fails.
	_, _ = fmt.Fprintf(h, "seed=%d;", p.Seed)
	for _, f := range p.Faults {
		_, _ = fmt.Fprintf(h, "kind=%s,server=%d,start=%g,end=%g,factor=%g,delay=%g,drop=%g;",
			f.Kind, f.Server, f.StartMs, f.EndMs, f.Factor, f.DelayMs, f.DropProb)
	}
	return fmt.Sprintf("%08x", uint32(h.Sum64()^(h.Sum64()>>32)))
}
