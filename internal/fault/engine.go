package fault

import (
	"fmt"
	"sort"
	"sync/atomic"

	"tailguard/internal/parallel"
)

// Window is a half-open [Start, End) interval on the millisecond clock.
type Window struct {
	Start float64
	End   float64
}

// speedWin is a service window during which the server progresses at
// `speed` units of work per unit of time (1/Factor for slowdowns, 0 for
// stalls).
type speedWin struct {
	Window
	speed float64
}

// delayWin adds `delay` ms to every dispatch inside the window.
type delayWin struct {
	Window
	delay float64
}

// dropWin drops each dispatch inside the window with probability `prob`.
type dropWin struct {
	Window
	prob float64
}

// Engine compiles a validated Plan into per-server, start-sorted window
// tables. All lookups are pure functions of (server, sim time) except
// DropSend, which additionally advances a seeded per-server counter
// stream — so a run that issues the same sequence of sends sees the same
// sequence of drops, independent of wall time or goroutine interleaving.
//
// Every method is safe on a nil *Engine and behaves as "no faults",
// letting callers thread an optional engine without guards.
type Engine struct {
	seed    int64
	servers int
	hash    string

	slow  [][]speedWin // service slowdowns and stalls, merged
	crash [][]Window
	delay [][]delayWin
	drop  [][]dropWin

	// sends counts transport-drop coin flips per server. Atomic because
	// the saas transport flips concurrently; the simulator is
	// single-threaded and pays only an uncontended atomic add.
	sends []atomic.Uint64
}

// NewEngine validates plan against a cluster of `servers` servers and
// compiles it. A nil plan yields a nil engine (inject nothing).
func NewEngine(plan *Plan, servers int) (*Engine, error) {
	if plan == nil {
		return nil, nil
	}
	if err := plan.Validate(servers); err != nil {
		return nil, err
	}
	e := &Engine{
		seed:    plan.Seed,
		servers: servers,
		hash:    plan.Hash(),
		slow:    make([][]speedWin, servers),
		crash:   make([][]Window, servers),
		delay:   make([][]delayWin, servers),
		drop:    make([][]dropWin, servers),
		sends:   make([]atomic.Uint64, servers),
	}
	for _, f := range plan.Faults {
		lo, hi := f.Server, f.Server
		if f.Server == AllServers {
			lo, hi = 0, servers-1
		}
		w := Window{Start: f.StartMs, End: f.EndMs}
		for s := lo; s <= hi; s++ {
			switch f.Kind {
			case Slowdown:
				e.slow[s] = append(e.slow[s], speedWin{w, 1 / f.Factor})
			case Stall:
				e.slow[s] = append(e.slow[s], speedWin{w, 0})
			case Crash:
				e.crash[s] = append(e.crash[s], w)
			case TransportDelay:
				e.delay[s] = append(e.delay[s], delayWin{w, f.DelayMs})
			case TransportDrop:
				e.drop[s] = append(e.drop[s], dropWin{w, f.DropProb})
			}
		}
	}
	for s := 0; s < servers; s++ {
		sort.Slice(e.slow[s], func(i, j int) bool { return e.slow[s][i].Start < e.slow[s][j].Start })
		sort.Slice(e.crash[s], func(i, j int) bool { return e.crash[s][i].Start < e.crash[s][j].Start })
		sort.Slice(e.delay[s], func(i, j int) bool { return e.delay[s][i].Start < e.delay[s][j].Start })
		sort.Slice(e.drop[s], func(i, j int) bool { return e.drop[s][i].Start < e.drop[s][j].Start })
	}
	return e, nil
}

// MustEngine is NewEngine for canonical, compile-time-known plans.
func MustEngine(plan *Plan, servers int) *Engine {
	e, err := NewEngine(plan, servers)
	if err != nil {
		panic(fmt.Sprintf("fault: MustEngine: %v", err))
	}
	return e
}

// Seed returns the plan seed, or 0 for a nil engine.
func (e *Engine) Seed() int64 {
	if e == nil {
		return 0
	}
	return e.seed
}

// Servers returns the cluster size the engine was compiled for.
func (e *Engine) Servers() int {
	if e == nil {
		return 0
	}
	return e.servers
}

// Hash returns the compiled plan's fingerprint (see Plan.Hash), or the
// nil-plan fingerprint for a nil engine.
func (e *Engine) Hash() string {
	if e == nil {
		return (*Plan)(nil).Hash()
	}
	return e.hash
}

// Stretch returns the wall duration (in sim ms) server s needs to finish
// `work` ms of nominal service starting at sim time `start`, integrating
// the piecewise-constant service speed over the slowdown/stall windows.
// Outside all windows speed is 1 and Stretch(s, t, w) == w.
func (e *Engine) Stretch(s int, start, work float64) float64 {
	if e == nil || work <= 0 || s < 0 || s >= e.servers {
		return work
	}
	t := start
	remaining := work
	for _, w := range e.slow[s] {
		if remaining <= 0 {
			break
		}
		if w.End <= t {
			continue
		}
		if w.Start > t {
			gap := w.Start - t
			if remaining <= gap {
				t += remaining
				remaining = 0
				break
			}
			remaining -= gap
			t = w.Start
		}
		if w.speed <= 0 {
			// Stall: the clock runs, the work doesn't.
			t = w.End
			continue
		}
		capacity := (w.End - t) * w.speed
		if remaining <= capacity {
			t += remaining / w.speed
			remaining = 0
			break
		}
		remaining -= capacity
		t = w.End
	}
	t += remaining
	return t - start
}

// StretchExtra returns the added latency Stretch injects beyond the
// nominal work: Stretch(s, start, work) - work, clamped at 0.
func (e *Engine) StretchExtra(s int, start, work float64) float64 {
	extra := e.Stretch(s, start, work) - work
	if extra < 0 {
		return 0
	}
	return extra
}

// CrashedAt reports whether server s is down (crashed, not yet
// restarted) at sim time t.
func (e *Engine) CrashedAt(s int, t float64) bool {
	if e == nil || s < 0 || s >= e.servers {
		return false
	}
	wins := e.crash[s]
	i := sort.Search(len(wins), func(i int) bool { return wins[i].End > t })
	return i < len(wins) && wins[i].Start <= t
}

// Crashes returns server s's crash windows in start order. The returned
// slice is the engine's own table; callers must not mutate it.
func (e *Engine) Crashes(s int) []Window {
	if e == nil || s < 0 || s >= e.servers {
		return nil
	}
	return e.crash[s]
}

// SendDelay returns the transport delay (ms) applied to a dispatch to
// server s at sim time t.
func (e *Engine) SendDelay(s int, t float64) float64 {
	if e == nil || s < 0 || s >= e.servers {
		return 0
	}
	wins := e.delay[s]
	i := sort.Search(len(wins), func(i int) bool { return wins[i].End > t })
	if i < len(wins) && wins[i].Start <= t {
		return wins[i].delay
	}
	return 0
}

// DropSend reports whether a dispatch to server s at sim time t is
// dropped. Each call inside a drop window consumes one value from the
// server's seeded counter stream; calls outside every window consume
// nothing, so fault-free traffic does not perturb the stream.
func (e *Engine) DropSend(s int, t float64) bool {
	if e == nil || s < 0 || s >= e.servers {
		return false
	}
	wins := e.drop[s]
	i := sort.Search(len(wins), func(i int) bool { return wins[i].End > t })
	if i >= len(wins) || wins[i].Start > t {
		return false
	}
	n := e.sends[s].Add(1)
	x := parallel.SplitMix64(uint64(e.seed) ^ parallel.SplitMix64(uint64(s)+0x9e3779b97f4a7c15) ^ n)
	u := float64(x>>11) / (1 << 53)
	return u < wins[i].prob
}

// Reset rewinds the per-server drop streams so a reused engine replays
// the identical drop schedule on its next run.
func (e *Engine) Reset() {
	if e == nil {
		return
	}
	for s := range e.sends {
		e.sends[s].Store(0)
	}
}

// Active reports whether any fault window (of any kind, on any server)
// overlaps [t0, t1) — used by sweeps to sanity-check that the plan's
// windows actually intersect the simulated horizon.
func (e *Engine) Active(t0, t1 float64) bool {
	if e == nil {
		return false
	}
	overlap := func(w Window) bool { return w.Start < t1 && w.End > t0 }
	for s := 0; s < e.servers; s++ {
		for _, w := range e.slow[s] {
			if overlap(w.Window) {
				return true
			}
		}
		for _, w := range e.crash[s] {
			if overlap(w) {
				return true
			}
		}
		for _, w := range e.delay[s] {
			if overlap(w.Window) {
				return true
			}
		}
		for _, w := range e.drop[s] {
			if overlap(w.Window) {
				return true
			}
		}
	}
	return false
}
