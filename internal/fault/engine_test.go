package fault

import (
	"math"
	"sync"
	"testing"
)

func mustEngine(t *testing.T, p *Plan, servers int) *Engine {
	t.Helper()
	e, err := NewEngine(p, servers)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNilEngineIsNoFaults(t *testing.T) {
	var e *Engine
	if got := e.Stretch(0, 10, 7); got != 7 {
		t.Fatalf("nil Stretch = %g", got)
	}
	if e.StretchExtra(0, 10, 7) != 0 || e.CrashedAt(0, 10) || e.SendDelay(0, 10) != 0 || e.DropSend(0, 10) {
		t.Fatal("nil engine injected something")
	}
	if e.Crashes(0) != nil || e.Active(0, 1e9) {
		t.Fatal("nil engine reports windows")
	}
	e.Reset() // must not panic
	if e.Hash() != (*Plan)(nil).Hash() {
		t.Fatal("nil engine hash mismatch")
	}
	got, err := NewEngine(nil, 4)
	if err != nil || got != nil {
		t.Fatalf("NewEngine(nil) = %v, %v", got, err)
	}
}

func TestStretchSlowdown(t *testing.T) {
	e := mustEngine(t, &Plan{Faults: []Fault{
		{Kind: Slowdown, Server: 0, StartMs: 100, EndMs: 200, Factor: 10},
	}}, 2)

	cases := []struct {
		name              string
		start, work, want float64
	}{
		{"entirely before", 0, 50, 50},
		{"entirely after", 200, 50, 50},
		{"entirely inside", 120, 5, 50},
		{"starts before, finishes inside", 95, 10, 5 + 50},
		// 10ms of work starting at 150: 50ms of window stretch 5 units,
		// the last 5 run at full speed after 200.
		{"spans the end", 150, 10, 50 + 5},
		// 150ms of work at t=0: 100 pre-window, then 100ms of window
		// yields 10 units, then 40 after.
		{"spans the whole window", 0, 150, 100 + 100 + 40},
		{"zero work", 120, 0, 0},
	}
	for _, tc := range cases {
		if got := e.Stretch(0, tc.start, tc.work); !almost(got, tc.want) {
			t.Errorf("%s: Stretch(0, %g, %g) = %g, want %g", tc.name, tc.start, tc.work, got, tc.want)
		}
	}
	if got := e.Stretch(1, 0, 1e6); got != 1e6 {
		t.Errorf("window-free server stretched: Stretch(1, 0, 1e6) = %g", got)
	}
	if got := e.StretchExtra(0, 120, 5); !almost(got, 45) {
		t.Errorf("StretchExtra = %g, want 45", got)
	}
	if got := e.StretchExtra(0, 0, 50); got != 0 {
		t.Errorf("fault-free StretchExtra = %g, want 0", got)
	}
}

func TestStretchStall(t *testing.T) {
	e := mustEngine(t, &Plan{Faults: []Fault{
		{Kind: Stall, Server: 0, StartMs: 100, EndMs: 150},
	}}, 1)
	// Work that reaches the stall waits it out, then resumes.
	if got := e.Stretch(0, 90, 20); !almost(got, 10+50+10) {
		t.Fatalf("Stretch through stall = %g, want 70", got)
	}
	// Work starting inside the stall waits for the window end.
	if got := e.Stretch(0, 120, 5); !almost(got, 30+5) {
		t.Fatalf("Stretch from inside stall = %g, want 35", got)
	}
	// Work that finishes exactly at the stall start is unaffected.
	if got := e.Stretch(0, 90, 10); !almost(got, 10) {
		t.Fatalf("Stretch ending at stall start = %g, want 10", got)
	}
}

func TestStretchMultipleWindows(t *testing.T) {
	e := mustEngine(t, &Plan{Faults: []Fault{
		{Kind: Slowdown, Server: 0, StartMs: 10, EndMs: 20, Factor: 2},
		{Kind: Stall, Server: 0, StartMs: 30, EndMs: 40},
	}}, 1)
	// 30ms of work at t=0: 10 free, 10ms window at half speed -> 5 units
	// (15 done at t=20), 10 free to t=30 (25 done), stall to t=40, last
	// 5 finish at t=45.
	if got := e.Stretch(0, 0, 30); !almost(got, 45) {
		t.Fatalf("Stretch across two windows = %g, want 45", got)
	}
}

func TestCrashLookup(t *testing.T) {
	e := mustEngine(t, &Plan{Faults: []Fault{
		{Kind: Crash, Server: 1, StartMs: 100, EndMs: 200},
		{Kind: Crash, Server: 1, StartMs: 400, EndMs: 450},
	}}, 2)
	for _, tc := range []struct {
		t    float64
		want bool
	}{{99, false}, {100, true}, {199.99, true}, {200, false}, {399, false}, {420, true}, {450, false}} {
		if got := e.CrashedAt(1, tc.t); got != tc.want {
			t.Errorf("CrashedAt(1, %g) = %v", tc.t, got)
		}
	}
	if e.CrashedAt(0, 150) {
		t.Error("server 0 reported crashed")
	}
	wins := e.Crashes(1)
	if len(wins) != 2 || wins[0].Start != 100 || wins[1].End != 450 {
		t.Fatalf("Crashes(1) = %+v", wins)
	}
	if e.Crashes(0) != nil {
		t.Fatalf("Crashes(0) = %+v", e.Crashes(0))
	}
}

func TestSendDelay(t *testing.T) {
	e := mustEngine(t, &Plan{Faults: []Fault{
		{Kind: TransportDelay, Server: AllServers, StartMs: 100, EndMs: 200, DelayMs: 7},
	}}, 3)
	if got := e.SendDelay(2, 150); got != 7 {
		t.Fatalf("SendDelay inside window = %g", got)
	}
	if got := e.SendDelay(2, 250); got != 0 {
		t.Fatalf("SendDelay outside window = %g", got)
	}
}

func TestDropSendDeterministicAndSeeded(t *testing.T) {
	plan := &Plan{Seed: 7, Faults: []Fault{
		{Kind: TransportDrop, Server: 0, StartMs: 0, EndMs: 1e6, DropProb: 0.3},
	}}
	a := mustEngine(t, plan, 2)
	b := mustEngine(t, plan, 2)
	const n = 4096
	var seqA, seqB []bool
	drops := 0
	for i := 0; i < n; i++ {
		da, db := a.DropSend(0, float64(i)), b.DropSend(0, float64(i))
		seqA, seqB = append(seqA, da), append(seqB, db)
		if da {
			drops++
		}
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("drop stream diverged at send %d", i)
		}
	}
	// The empirical rate should be near 0.3 (binomial sd ~0.007).
	rate := float64(drops) / n
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("drop rate %g far from 0.3", rate)
	}
	// Reset replays the identical stream.
	a.Reset()
	for i := 0; i < n; i++ {
		if a.DropSend(0, float64(i)) != seqA[i] {
			t.Fatalf("post-Reset stream diverged at send %d", i)
		}
	}
	// A different seed yields a different stream.
	planB := &Plan{Seed: 8, Faults: plan.Faults}
	c := mustEngine(t, planB, 2)
	same := true
	for i := 0; i < n; i++ {
		if c.DropSend(0, float64(i)) != seqA[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed change did not change the drop stream")
	}
}

func TestDropSendOutsideWindowConsumesNothing(t *testing.T) {
	plan := &Plan{Seed: 7, Faults: []Fault{
		{Kind: TransportDrop, Server: 0, StartMs: 100, EndMs: 200, DropProb: 0.5},
	}}
	a := mustEngine(t, plan, 1)
	b := mustEngine(t, plan, 1)
	// a interleaves out-of-window sends; b does not. In-window streams
	// must still agree.
	var got, want []bool
	for i := 0; i < 256; i++ {
		a.DropSend(0, 50) // outside: no draw
		got = append(got, a.DropSend(0, 150))
		want = append(want, b.DropSend(0, 150))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("out-of-window sends perturbed the stream at %d", i)
		}
	}
}

// TestEngineConcurrentUse drives lookups and drop flips from many
// goroutines; run with -race this proves the engine is safe on the
// multi-threaded saas path.
func TestEngineConcurrentUse(t *testing.T) {
	e := mustEngine(t, &Plan{Seed: 3, Faults: []Fault{
		{Kind: Slowdown, Server: 0, StartMs: 0, EndMs: 1e6, Factor: 2},
		{Kind: TransportDrop, Server: AllServers, StartMs: 0, EndMs: 1e6, DropProb: 0.2},
		{Kind: Crash, Server: 1, StartMs: 10, EndMs: 20},
	}}, 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				ts := float64(i)
				e.DropSend(g%2, ts)
				e.Stretch(0, ts, 5)
				e.CrashedAt(1, ts)
				e.SendDelay(0, ts)
			}
		}(g)
	}
	wg.Wait()
}

func TestMustEnginePanicsOnBadPlan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustEngine accepted an invalid plan")
		}
	}()
	MustEngine(&Plan{Faults: []Fault{{Kind: "meteor", StartMs: 0, EndMs: 1}}}, 1)
}

func TestActive(t *testing.T) {
	e := mustEngine(t, &Plan{Faults: []Fault{
		{Kind: Slowdown, Server: 0, StartMs: 100, EndMs: 200, Factor: 2},
	}}, 1)
	if !e.Active(150, 160) || !e.Active(0, 101) {
		t.Fatal("overlapping horizon reported inactive")
	}
	if e.Active(200, 300) || e.Active(0, 100) {
		t.Fatal("disjoint horizon reported active")
	}
}
