package fault

import (
	"fmt"
	"strings"
)

// DefaultDegradedScale is the Rth multiplier applied while admission is
// degraded and the caller did not choose one.
const DefaultDegradedScale = 0.5

// Resilience selects the mitigation half of the subsystem: what the
// cluster does *about* injected faults. The zero value disables all
// mitigations and must leave scheduling behavior bit-identical to a
// build without the fault subsystem.
type Resilience struct {
	// Hedge duplicates a task to the least-loaded other live server once
	// its slack goes negative (still queued at its deadline); first
	// finish wins, the loser is cancelled.
	Hedge bool
	// RetryBudget is the number of lost-task retries each query may
	// spend. A task lost to a crash or transport drop is re-dispatched
	// to another live server while budget remains and the query's SLO
	// deadline has not passed; past either limit the query fails.
	RetryBudget int
	// DegradedAdmission tightens the admission threshold (Rth ×
	// DegradedScale) while miss-cause attribution reports a
	// fault-dominated window, shedding load the cluster cannot serve.
	DegradedAdmission bool
	// DegradedScale is the Rth multiplier used while degraded; 0 means
	// DefaultDegradedScale. Must stay in (0, 1].
	DegradedScale float64
}

// Enabled reports whether any mitigation is switched on.
func (r Resilience) Enabled() bool {
	return r.Hedge || r.RetryBudget > 0 || r.DegradedAdmission
}

// Scale returns the effective degraded-admission multiplier.
func (r Resilience) Scale() float64 {
	if r.DegradedScale == 0 {
		return DefaultDegradedScale
	}
	return r.DegradedScale
}

// Validate rejects configurations with no defined semantics.
func (r Resilience) Validate() error {
	if r.RetryBudget < 0 {
		return fmt.Errorf("fault: negative retry budget %d", r.RetryBudget)
	}
	if r.DegradedScale < 0 || r.DegradedScale > 1 {
		return fmt.Errorf("fault: degraded-admission scale %g outside (0,1] (leave zero for the default %g)", r.DegradedScale, DefaultDegradedScale)
	}
	return nil
}

// Label renders the enabled mitigations as a short stable tag for table
// rows and filenames ("none", "hedge", "hedge+retry2+degrade", ...).
func (r Resilience) Label() string {
	var parts []string
	if r.Hedge {
		parts = append(parts, "hedge")
	}
	if r.RetryBudget > 0 {
		parts = append(parts, fmt.Sprintf("retry%d", r.RetryBudget))
	}
	if r.DegradedAdmission {
		parts = append(parts, "degrade")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}
