package fault

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func validPlan() *Plan {
	return &Plan{
		Name: "test",
		Seed: 42,
		Faults: []Fault{
			{Kind: Slowdown, Server: 0, StartMs: 100, EndMs: 200, Factor: 10},
			{Kind: Stall, Server: 1, StartMs: 50, EndMs: 60},
			{Kind: Crash, Server: 2, StartMs: 300, EndMs: 400},
			{Kind: TransportDelay, Server: AllServers, StartMs: 0, EndMs: 1000, DelayMs: 5},
			{Kind: TransportDrop, Server: 3, StartMs: 0, EndMs: 1000, DropProb: 0.1},
		},
	}
}

func TestPlanRoundTrip(t *testing.T) {
	p := validPlan()
	data, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	q, err := ParsePlan(data)
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if q.Hash() != p.Hash() {
		t.Fatalf("round-trip changed hash: %s -> %s", p.Hash(), q.Hash())
	}
	if err := q.Validate(4); err != nil {
		t.Fatalf("Validate after round-trip: %v", err)
	}
}

func TestLoadPlan(t *testing.T) {
	p := validPlan()
	data, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	q, err := LoadPlan(path)
	if err != nil {
		t.Fatalf("LoadPlan: %v", err)
	}
	if q.Hash() != p.Hash() {
		t.Fatalf("LoadPlan changed hash: %s -> %s", p.Hash(), q.Hash())
	}
	if _, err := LoadPlan(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("LoadPlan on a missing file succeeded")
	}
}

func TestParsePlanRejectsUnknownFields(t *testing.T) {
	if _, err := ParsePlan([]byte(`{"seed":1,"faults":[{"kind":"slowdown","sever":0}]}`)); err == nil {
		t.Fatal("typo'd field accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		p    Plan
		want string
	}{
		{"unknown kind", Plan{Faults: []Fault{{Kind: "meteor", StartMs: 0, EndMs: 1}}}, "unknown kind"},
		{"server out of range", Plan{Faults: []Fault{{Kind: Stall, Server: 9, StartMs: 0, EndMs: 1}}}, "out of range"},
		{"backward window", Plan{Faults: []Fault{{Kind: Stall, Server: 0, StartMs: 5, EndMs: 5}}}, "forward interval"},
		{"negative start", Plan{Faults: []Fault{{Kind: Stall, Server: 0, StartMs: -1, EndMs: 5}}}, "forward interval"},
		{"factor too small", Plan{Faults: []Fault{{Kind: Slowdown, Server: 0, StartMs: 0, EndMs: 1, Factor: 1}}}, "must exceed 1"},
		{"zero delay", Plan{Faults: []Fault{{Kind: TransportDelay, Server: 0, StartMs: 0, EndMs: 1}}}, "must be positive"},
		{"drop prob too big", Plan{Faults: []Fault{{Kind: TransportDrop, Server: 0, StartMs: 0, EndMs: 1, DropProb: 1.5}}}, "outside (0,1]"},
		{"overlapping service windows", Plan{Faults: []Fault{
			{Kind: Slowdown, Server: 0, StartMs: 0, EndMs: 100, Factor: 2},
			{Kind: Stall, Server: 0, StartMs: 50, EndMs: 60},
		}}, "overlapping service windows"},
		{"all-servers overlap", Plan{Faults: []Fault{
			{Kind: Crash, Server: AllServers, StartMs: 0, EndMs: 100},
			{Kind: Crash, Server: 1, StartMs: 50, EndMs: 150},
		}}, "overlapping crash windows"},
	}
	for _, tc := range cases {
		err := tc.p.Validate(4)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := (&Plan{}).Validate(0); err == nil {
		t.Error("zero servers accepted")
	}
	if err := (*Plan)(nil).Validate(4); err == nil {
		t.Error("nil plan accepted")
	}
}

func TestValidateAllowsDisjointAndCrossCategoryOverlap(t *testing.T) {
	p := &Plan{Faults: []Fault{
		{Kind: Slowdown, Server: 0, StartMs: 0, EndMs: 100, Factor: 2},
		{Kind: Slowdown, Server: 0, StartMs: 100, EndMs: 200, Factor: 3},
		// A crash overlapping a slowdown is fine: different categories.
		{Kind: Crash, Server: 0, StartMs: 50, EndMs: 150},
		// Same window on a different server is fine.
		{Kind: Slowdown, Server: 1, StartMs: 0, EndMs: 100, Factor: 2},
	}}
	if err := p.Validate(2); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestHashSemantics(t *testing.T) {
	p := validPlan()
	q := validPlan()
	if p.Hash() != q.Hash() {
		t.Fatal("identical plans hash differently")
	}
	q.Name = "renamed"
	if p.Hash() != q.Hash() {
		t.Fatal("display name changed the hash")
	}
	q.Seed = 43
	if p.Hash() == q.Hash() {
		t.Fatal("seed change did not change the hash")
	}
	r := validPlan()
	r.Faults[0].Factor = 11
	if p.Hash() == r.Hash() {
		t.Fatal("fault change did not change the hash")
	}
	if h := (*Plan)(nil).Hash(); h != "00000000" {
		t.Fatalf("nil plan hash = %q", h)
	}
	if len(p.Hash()) != 8 {
		t.Fatalf("hash %q is not 8 hex chars", p.Hash())
	}
}

func TestResilience(t *testing.T) {
	var zero Resilience
	if zero.Enabled() {
		t.Fatal("zero Resilience reports enabled")
	}
	if zero.Label() != "none" {
		t.Fatalf("zero label = %q", zero.Label())
	}
	if err := zero.Validate(); err != nil {
		t.Fatalf("zero Validate: %v", err)
	}
	r := Resilience{Hedge: true, RetryBudget: 2, DegradedAdmission: true}
	if !r.Enabled() {
		t.Fatal("full Resilience reports disabled")
	}
	if got := r.Label(); got != "hedge+retry2+degrade" {
		t.Fatalf("label = %q", got)
	}
	if r.Scale() != DefaultDegradedScale {
		t.Fatalf("default scale = %g", r.Scale())
	}
	r.DegradedScale = 0.25
	if r.Scale() != 0.25 {
		t.Fatalf("explicit scale = %g", r.Scale())
	}
	if err := (Resilience{RetryBudget: -1}).Validate(); err == nil {
		t.Fatal("negative retry budget accepted")
	}
	if err := (Resilience{DegradedScale: 1.5}).Validate(); err == nil {
		t.Fatal("scale > 1 accepted")
	}
}
