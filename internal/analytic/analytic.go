// Package analytic provides closed-form queueing-theory results used to
// validate the discrete-event simulator against ground truth: M/M/1 and
// M/G/1 waiting times (Pollaczek–Khinchine), and Erlang-C style occupancy
// identities. A simulator that reproduces these on purpose-built inputs is
// trustworthy on the paper's workloads, where no closed form exists.
package analytic

import (
	"fmt"
	"math"

	"tailguard/internal/dist"
)

// MM1MeanWait returns the mean time in queue (excluding service) of an
// M/M/1 system with arrival rate lambda and mean service time s:
//
//	Wq = rho * s / (1 - rho),  rho = lambda * s
func MM1MeanWait(lambda, meanService float64) (float64, error) {
	rho := lambda * meanService
	if err := checkStable(lambda, meanService, rho); err != nil {
		return 0, err
	}
	return rho * meanService / (1 - rho), nil
}

// MM1MeanSojourn returns the mean total time in system of an M/M/1 queue.
func MM1MeanSojourn(lambda, meanService float64) (float64, error) {
	wq, err := MM1MeanWait(lambda, meanService)
	if err != nil {
		return 0, err
	}
	return wq + meanService, nil
}

// MM1SojournQuantile returns the p-quantile of the M/M/1 sojourn time,
// which is exponential with rate mu - lambda:
//
//	T_p = -ln(1-p) / (mu - lambda)
func MM1SojournQuantile(lambda, meanService, p float64) (float64, error) {
	rho := lambda * meanService
	if err := checkStable(lambda, meanService, rho); err != nil {
		return 0, err
	}
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("analytic: quantile probability %v outside (0, 1)", p)
	}
	mu := 1 / meanService
	return -math.Log(1-p) / (mu - lambda), nil
}

// MG1MeanWait returns the Pollaczek–Khinchine mean queueing delay of an
// M/G/1 system:
//
//	Wq = lambda * E[S^2] / (2 * (1 - rho))
func MG1MeanWait(lambda, meanService, secondMoment float64) (float64, error) {
	rho := lambda * meanService
	if err := checkStable(lambda, meanService, rho); err != nil {
		return 0, err
	}
	if secondMoment < meanService*meanService {
		return 0, fmt.Errorf("analytic: E[S^2]=%v below E[S]^2=%v", secondMoment, meanService*meanService)
	}
	return lambda * secondMoment / (2 * (1 - rho)), nil
}

// SecondMoment numerically computes E[S^2] of a distribution by Gaussian
// quadrature over its quantile function (4096 probability points — exact
// enough for validation against simulation noise).
func SecondMoment(d dist.Distribution) (float64, error) {
	if d == nil {
		return 0, fmt.Errorf("analytic: nil distribution")
	}
	const n = 4096
	var sum float64
	for i := 0; i < n; i++ {
		p := (float64(i) + 0.5) / n
		q := d.Quantile(p)
		if math.IsInf(q, 1) || math.IsNaN(q) {
			return 0, fmt.Errorf("analytic: quantile at p=%v is %v", p, q)
		}
		sum += q * q
	}
	return sum / n, nil
}

// MG1WaitFromDist is MG1MeanWait with the service moments taken from a
// distribution model.
func MG1WaitFromDist(lambda float64, service dist.Distribution) (float64, error) {
	if service == nil {
		return 0, fmt.Errorf("analytic: nil service distribution")
	}
	m2, err := SecondMoment(service)
	if err != nil {
		return 0, err
	}
	return MG1MeanWait(lambda, service.Mean(), m2)
}

// Utilization returns rho = lambda * E[S] with stability validation.
func Utilization(lambda, meanService float64) (float64, error) {
	rho := lambda * meanService
	if err := checkStable(lambda, meanService, rho); err != nil {
		return 0, err
	}
	return rho, nil
}

func checkStable(lambda, meanService, rho float64) error {
	if lambda <= 0 {
		return fmt.Errorf("analytic: arrival rate must be positive, got %v", lambda)
	}
	if meanService <= 0 {
		return fmt.Errorf("analytic: mean service must be positive, got %v", meanService)
	}
	if rho >= 1 {
		return fmt.Errorf("analytic: unstable system (rho = %v >= 1)", rho)
	}
	return nil
}
