package analytic

import (
	"math"
	"testing"

	"tailguard/internal/dist"
)

func TestMM1KnownValues(t *testing.T) {
	// lambda=0.5, s=1 -> rho=0.5, Wq = 0.5*1/0.5 = 1, T = 2.
	wq, err := MM1MeanWait(0.5, 1)
	if err != nil {
		t.Fatalf("MM1MeanWait: %v", err)
	}
	if math.Abs(wq-1) > 1e-12 {
		t.Errorf("Wq = %v, want 1", wq)
	}
	tm, err := MM1MeanSojourn(0.5, 1)
	if err != nil {
		t.Fatalf("MM1MeanSojourn: %v", err)
	}
	if math.Abs(tm-2) > 1e-12 {
		t.Errorf("T = %v, want 2", tm)
	}
	// Sojourn quantile: exp(mu-lambda=0.5): p99 = ln(100)/0.5.
	q, err := MM1SojournQuantile(0.5, 1, 0.99)
	if err != nil {
		t.Fatalf("MM1SojournQuantile: %v", err)
	}
	if want := math.Log(100) / 0.5; math.Abs(q-want) > 1e-9 {
		t.Errorf("T99 = %v, want %v", q, want)
	}
}

func TestMG1ReducesToMM1(t *testing.T) {
	// Exponential service: E[S^2] = 2s^2, PK gives the M/M/1 value.
	wqPK, err := MG1MeanWait(0.5, 1, 2)
	if err != nil {
		t.Fatalf("MG1MeanWait: %v", err)
	}
	wqMM1, _ := MM1MeanWait(0.5, 1)
	if math.Abs(wqPK-wqMM1) > 1e-12 {
		t.Errorf("PK = %v, M/M/1 = %v", wqPK, wqMM1)
	}
}

func TestMG1Deterministic(t *testing.T) {
	// Deterministic service halves the M/M/1 wait: Wq = lambda*s^2/(2(1-rho)).
	wq, err := MG1MeanWait(0.5, 1, 1)
	if err != nil {
		t.Fatalf("MG1MeanWait: %v", err)
	}
	if math.Abs(wq-0.5) > 1e-12 {
		t.Errorf("Wq = %v, want 0.5", wq)
	}
}

func TestSecondMoment(t *testing.T) {
	exp, _ := dist.NewExponential(2)
	m2, err := SecondMoment(exp)
	if err != nil {
		t.Fatalf("SecondMoment: %v", err)
	}
	// E[S^2] of Exp(mean 2) = 2*2^2 = 8 (quadrature truncates the extreme
	// tail slightly).
	if math.Abs(m2-8)/8 > 0.01 {
		t.Errorf("E[S^2] = %v, want ~8", m2)
	}
	u, _ := dist.NewUniform(0, 2)
	m2u, err := SecondMoment(u)
	if err != nil {
		t.Fatalf("SecondMoment: %v", err)
	}
	if math.Abs(m2u-4.0/3) > 1e-3 {
		t.Errorf("uniform E[S^2] = %v, want 4/3", m2u)
	}
	if _, err := SecondMoment(nil); err == nil {
		t.Error("nil distribution succeeded, want error")
	}
}

func TestValidation(t *testing.T) {
	if _, err := MM1MeanWait(0, 1); err == nil {
		t.Error("zero lambda succeeded")
	}
	if _, err := MM1MeanWait(1, 0); err == nil {
		t.Error("zero service succeeded")
	}
	if _, err := MM1MeanWait(2, 1); err == nil {
		t.Error("unstable system succeeded")
	}
	if _, err := MM1SojournQuantile(0.5, 1, 1); err == nil {
		t.Error("p=1 succeeded")
	}
	if _, err := MG1MeanWait(0.5, 1, 0.5); err == nil {
		t.Error("impossible second moment succeeded")
	}
	if _, err := Utilization(0.5, 1); err != nil {
		t.Error("valid utilization failed")
	}
	if _, err := MG1WaitFromDist(0.5, nil); err == nil {
		t.Error("nil dist succeeded")
	}
}
