package experiment

import (
	"fmt"

	"tailguard/internal/cluster"
	"tailguard/internal/control"
	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/metrics"
	"tailguard/internal/obs"
	"tailguard/internal/workload"
)

// The flash-crowd pack: phase-change arrival scenarios run with and
// without the adaptive control plane, so the table shows what the
// closed loops buy when demand jumps past capacity. Scenarios:
//
//   - flashsale: a trapezoid flash crowd (ramp, hold past capacity,
//     decay) over a steady base — the paper's overload motivation;
//   - herd: a rectangular thundering herd, demand stepping straight to
//     the peak and back;
//   - diurnal: a sinusoidal day curve whose crest exceeds capacity.
//
// Each scenario runs at least the uncontrolled baseline; the controlled
// variant attaches a control.Controller actuating admission scale,
// in-flight credits (backpressure on the generator), a class token
// bucket, and warm-ramp autoscaling of the placement set.

// Control pack variants.
const (
	Uncontrolled = "uncontrolled"
	Controlled   = "controlled"
)

// ControlScenarios are the phase-change arrival shapes of the pack.
var ControlScenarios = []string{"flashsale", "herd", "diurnal"}

// ControlConfig parameterizes the flash-crowd control sweep.
type ControlConfig struct {
	// Workload names the Tailbench service-time model (default "masstree").
	Workload string
	// BaseLoad is the steady offered load (default 0.35); PeakLoad is the
	// crowd's offered load, deliberately past capacity (default 1.8).
	BaseLoad float64
	PeakLoad float64
	// Scenarios selects the arrival shapes (default ControlScenarios).
	Scenarios []string
	// Variants selects which runs to do per scenario (default both, the
	// uncontrolled baseline first).
	Variants []string
	Fidelity Fidelity
}

func (c *ControlConfig) setDefaults() {
	if c.Workload == "" {
		c.Workload = "masstree"
	}
	if c.BaseLoad == 0 {
		c.BaseLoad = 0.35
	}
	if c.PeakLoad == 0 {
		c.PeakLoad = 1.8
	}
	if c.Scenarios == nil {
		c.Scenarios = ControlScenarios
	}
	if c.Variants == nil {
		c.Variants = []string{Uncontrolled, Controlled}
	}
}

// controlServers is the pack's cluster size; the controlled variant
// starts with controlActive of them taking load and lets the autoscaler
// manage the rest between controlMinServers and controlServers.
const (
	controlServers    = 100
	controlActive     = 80
	controlMinServers = 60
)

// ControlRun is one (scenario, variant) cell of the sweep.
type ControlRun struct {
	Scenario string
	Variant  string
	SLOMs    float64
	Result   *cluster.Result
	// Report is the deadline-miss attribution for the run.
	Report *obs.Attribution
	// Ctl is the controller driven by the run; nil for the uncontrolled
	// baseline. Its decision trace is the tick-by-tick record of what the
	// loops did.
	Ctl *control.Controller
	// Registry holds the tg_sim_* control/admission families (controlled
	// variant only).
	Registry *obs.Registry
}

// controlArrival builds the scenario's arrival process and estimates the
// run horizon (ms). Windows are budgeted in query counts — fractions of
// Fidelity.Queries at the rate in force — so every fidelity sees the
// same shape: steady base, then the crowd, then a steady tail.
func controlArrival(name string, baseRate, peakRate float64, queries int) (workload.ArrivalProcess, float64, error) {
	q := float64(queries)
	avgRate := (baseRate + peakRate) / 2
	switch name {
	case "flashsale":
		start := 0.2 * q / baseRate
		ramp := 0.05 * q / avgRate
		hold := 0.4 * q / peakRate
		decay := 0.1 * q / avgRate
		horizon := start + ramp + hold + decay + 0.25*q/baseRate
		arr, err := workload.NewFlashCrowd(baseRate, peakRate, start, ramp, hold, decay)
		return arr, horizon, err
	case "herd":
		start := 0.25 * q / baseRate
		dur := 0.4 * q / peakRate
		horizon := start + dur + 0.35*q/baseRate
		arr, err := workload.NewBurst(baseRate, peakRate, start, dur)
		return arr, horizon, err
	case "diurnal":
		amp := (peakRate - avgRate) / avgRate
		horizon := q / avgRate
		arr, err := workload.NewSinusoidalPhased(avgRate, amp, horizon/2, 0)
		return arr, horizon, err
	default:
		return nil, 0, fmt.Errorf("experiment: unknown control scenario %q", name)
	}
}

// buildControlRun assembles and executes one cell.
func buildControlRun(cfg ControlConfig, scenario, variant string) (*ControlRun, error) {
	w, err := dist.TailbenchWorkload(cfg.Workload)
	if err != nil {
		return nil, err
	}
	fan, err := workload.NewInverseProportional(PaperFanouts)
	if err != nil {
		return nil, err
	}
	slos, ok := Fig4SLOs[cfg.Workload]
	if !ok {
		return nil, fmt.Errorf("experiment: no SLO grid for %q", cfg.Workload)
	}
	slo := slos[1]
	classes, err := workload.SingleClass(slo)
	if err != nil {
		return nil, err
	}
	baseRate, err := workload.RateForLoad(cfg.BaseLoad, controlServers, fan.MeanTasks(), w.ServiceTime.Mean())
	if err != nil {
		return nil, err
	}
	peakRate, err := workload.RateForLoad(cfg.PeakLoad, controlServers, fan.MeanTasks(), w.ServiceTime.Mean())
	if err != nil {
		return nil, err
	}
	arrival, horizon, err := controlArrival(scenario, baseRate, peakRate, cfg.Fidelity.Queries)
	if err != nil {
		return nil, err
	}

	gcfg := workload.GeneratorConfig{
		Servers: controlServers,
		Arrival: arrival,
		Fanout:  fan,
		Classes: classes,
	}
	var ctl *control.Controller
	if variant == Controlled {
		tick := horizon / 400
		ctl, err = control.New(control.Config{
			TickMs:      tick,
			WindowMs:    10 * tick,
			TargetRatio: 0.05,
			MinCredits:  8,
			MaxCredits:  256,
			// The class bucket caps admitted throughput at ~2x the base
			// rate: it clips the worst of the crowd while leaving enough
			// overload through for the AIMD loops to work against.
			ClassRates: []float64{2 * baseRate},
			MinServers: controlMinServers,
			MaxServers: controlServers,
		})
		if err != nil {
			return nil, err
		}
		if err := ctl.InitServers(controlServers, controlActive); err != nil {
			return nil, err
		}
		gate, err := workload.NewCreditGate(ctl.Credits())
		if err != nil {
			return nil, err
		}
		ctl.AttachGate(gate)
		gcfg.Placement = ctl.Active().Place
	}
	gen, err := workload.NewGenerator(gcfg, cfg.Fidelity.Seed)
	if err != nil {
		return nil, err
	}
	est, err := core.NewHomogeneousStaticTailEstimator(w.ServiceTime, controlServers)
	if err != nil {
		return nil, err
	}
	dl, err := core.NewDeadliner(core.TFEDFQ, est, classes)
	if err != nil {
		return nil, err
	}
	ccfg := cluster.Config{
		Servers:          controlServers,
		Spec:             core.TFEDFQ,
		ServiceTimes:     []dist.Distribution{w.ServiceTime},
		Generator:        gen,
		Classes:          classes,
		Deadliner:        dl,
		Queries:          cfg.Fidelity.Queries,
		Warmup:           cfg.Fidelity.Warmup,
		Seed:             cfg.Fidelity.Seed + 1,
		TimelineBucketMs: horizon / 32,
		Control:          ctl,
	}
	if variant == Controlled {
		adm, err := core.NewAdmissionController(ctl.Config().WindowMs, 0.05)
		if err != nil {
			return nil, err
		}
		ccfg.Admission = adm
	}
	attrib := obs.NewAttributor()
	ccfg.Attribution = attrib
	res, err := cluster.Run(ccfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: control run %s/%s: %w", scenario, variant, err)
	}
	run := &ControlRun{
		Scenario: scenario,
		Variant:  variant,
		SLOMs:    slo,
		Result:   res,
		Report:   attrib.Report(),
		Ctl:      ctl,
	}
	if ctl != nil {
		run.Registry = obs.NewRegistry()
		snap := ccfg.Admission.Snapshot(res.Duration)
		if err := fillControlRegistry(run.Registry, &snap, ctl); err != nil {
			return nil, fmt.Errorf("experiment: control run %s/%s: %w", scenario, variant, err)
		}
	}
	return run, nil
}

// ControlSweep runs the flash-crowd pack sequentially with a fixed seed:
// every (scenario, variant) cell — including the controller's decision
// trace — is bit-identical across invocations.
func ControlSweep(cfg ControlConfig) ([]*ControlRun, error) {
	cfg.setDefaults()
	if err := cfg.Fidelity.validate(); err != nil {
		return nil, err
	}
	runs := make([]*ControlRun, 0, len(cfg.Scenarios)*len(cfg.Variants))
	for _, sc := range cfg.Scenarios {
		for _, v := range cfg.Variants {
			run, err := buildControlRun(cfg, sc, v)
			if err != nil {
				return nil, err
			}
			runs = append(runs, run)
		}
	}
	return runs, nil
}

// Violations returns the run's overall SLO-violation rate (post-warmup).
func (r *ControlRun) Violations() float64 {
	misses, queries := 0, 0
	for _, c := range r.Report.ByClass {
		misses += c.Misses
		queries += c.Queries
	}
	if queries == 0 {
		return 0
	}
	return float64(misses) / float64(queries)
}

// PeakWindowMiss returns the worst per-arrival-window SLO-miss ratio of
// the run: the fraction of queries arriving in each timeline bucket that
// finished past the SLO, maximized over buckets with at least minSamples
// completions. This is the "did the crowd collapse the window" reading —
// an uncontrolled flash crowd sends it toward 1 while the controlled run
// holds it near the target band.
func (r *ControlRun) PeakWindowMiss(minSamples int) float64 {
	if r.Result.Timeline == nil {
		return 0
	}
	if minSamples < 1 {
		minSamples = 1
	}
	worst := 0.0
	for _, bucket := range metrics.IntKeys(r.Result.Timeline) {
		samples := r.Result.Timeline.Recorder(bucket).Samples()
		if len(samples) < minSamples {
			continue
		}
		missed := 0
		for _, v := range samples {
			if v > r.SLOMs {
				missed++
			}
		}
		if ratio := float64(missed) / float64(len(samples)); ratio > worst {
			worst = ratio
		}
	}
	return worst
}

// ControlTable renders the sweep: one row per (scenario, variant) with
// the shed/deferral counters, the tail, the overall and peak-window miss
// ratios, and — for controlled runs — how far the loops swung.
func ControlTable(runs []*ControlRun) *Table {
	t := &Table{
		ID:    "flashcrowd",
		Title: "Flash-crowd scenarios with and without the adaptive control plane",
		Columns: []string{
			"scenario", "variant", "queries", "admitted", "rejected",
			"throttled", "deferred", "p99_ms", "miss_pct", "peak_win_miss",
			"scale_min", "credits_min", "active_min", "srv_added",
		},
	}
	for _, run := range runs {
		res := run.Result
		p99 := 0.0
		if res.Overall.Count() > 0 {
			if v, err := res.Overall.P99(); err == nil {
				p99 = v
			}
		}
		viol := run.Violations()
		peak := run.PeakWindowMiss(10)
		scaleMin, creditsMin, activeMin, srvAdded := "-", "-", "-", "-"
		raw := map[string]float64{
			"queries":       float64(res.Queries),
			"admitted":      float64(res.Admitted),
			"rejected":      float64(res.Rejected),
			"throttled":     float64(res.Throttled),
			"deferred":      float64(res.CreditDeferred),
			"p99_ms":        p99,
			"miss_pct":      viol,
			"peak_win_miss": peak,
		}
		if run.Ctl != nil {
			// active_min shows the quiet-phase scale-down; srv_added counts
			// scale-up actions, which a max over Active would hide behind
			// the initial provisioning.
			sMin, cMin, aMin, adds := 1.0, run.Ctl.Config().MaxCredits, run.Ctl.Config().MaxServers, 0
			for _, d := range run.Ctl.Decisions() {
				if d.Scale < sMin {
					sMin = d.Scale
				}
				if d.Credits < cMin {
					cMin = d.Credits
				}
				if d.Active < aMin {
					aMin = d.Active
				}
				if d.Added >= 0 {
					adds++
				}
			}
			scaleMin, creditsMin, activeMin, srvAdded = f2(sMin), fmt.Sprint(cMin), fmt.Sprint(aMin), fmt.Sprint(adds)
			raw["scale_min"] = sMin
			raw["credits_min"] = float64(cMin)
			raw["active_min"] = float64(aMin)
			raw["srv_added"] = float64(adds)
		}
		t.Rows = append(t.Rows, []string{
			run.Scenario,
			run.Variant,
			fmt.Sprint(res.Queries),
			fmt.Sprint(res.Admitted),
			fmt.Sprint(res.Rejected),
			fmt.Sprint(res.Throttled),
			fmt.Sprint(res.CreditDeferred),
			f2(p99),
			pct(viol),
			pct(peak),
			scaleMin,
			creditsMin,
			activeMin,
			srvAdded,
		})
		t.Raw = append(t.Raw, raw)
	}
	return t
}

// fillControlRegistry exports the admission controller's internals and
// the adaptive controller's state as tg_sim_* families — the same
// closed-loop readings tgd serves live on /metrics.
func fillControlRegistry(reg *obs.Registry, snap *core.AdmissionSnapshot, ctl *control.Controller) error {
	type gaugeVal struct {
		name, help string
		v          float64
	}
	gauges := []gaugeVal{
		{"tg_sim_admission_drop_probability", "Admission controller rejection probability.", snap.DropProbability},
		{"tg_sim_admission_miss_ratio", "Windowed task deadline-miss ratio seen by admission control.", snap.MissRatio},
		{"tg_sim_admission_threshold_scale", "Threshold scale actuated on the admission controller.", snap.ThresholdScale},
		{"tg_sim_admission_effective_threshold", "Miss-ratio target currently in force (Rth x scale).", snap.EffectiveThreshold},
	}
	if ctl != nil {
		gauges = append(gauges,
			gaugeVal{"tg_sim_control_scale", "Adaptive control plane: admission threshold scale.", ctl.Scale()},
			gaugeVal{"tg_sim_control_credits", "Adaptive control plane: in-flight credit limit.", float64(ctl.Credits())},
			gaugeVal{"tg_sim_control_throttle", "Adaptive control plane: low-priority refill multiplier.", ctl.Throttle()},
			gaugeVal{"tg_sim_control_ticks", "Adaptive control plane: controller ticks run.", float64(ctl.Ticks())},
		)
		if act := ctl.Active(); act != nil {
			gauges = append(gauges,
				gaugeVal{"tg_sim_control_active_servers", "Adaptive control plane: fully active servers.", float64(act.ActiveCount())},
				gaugeVal{"tg_sim_control_warming_servers", "Adaptive control plane: servers on the warm-up ramp.", float64(act.WarmingCount())},
			)
		}
	}
	for _, g := range gauges {
		gauge, err := reg.Gauge(g.name, g.help, "")
		if err != nil {
			return err
		}
		gauge.Set(g.v)
	}
	counters := []struct {
		name, help string
		v          int
	}{
		{"tg_sim_admission_accepted_total", "Queries admitted by admission control.", snap.Accepted},
		{"tg_sim_admission_rejected_total", "Queries rejected by admission control.", snap.Rejected},
	}
	for _, c := range counters {
		ctr, err := reg.Counter(c.name, c.help, "")
		if err != nil {
			return err
		}
		ctr.Add(uint64(c.v))
	}
	return nil
}
