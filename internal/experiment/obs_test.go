package experiment

import (
	"bytes"
	"strings"
	"testing"

	"tailguard/internal/core"
	"tailguard/internal/obs"
)

// obsTestFidelity keeps the sweep test in the sub-second range.
var obsTestFidelity = Fidelity{Queries: 1500, Warmup: 100, MinSamples: 10, LoadTol: 0.02, Seed: 1}

func TestObsSweep(t *testing.T) {
	runs, err := ObsSweep(ObsConfig{Fidelity: obsTestFidelity})
	if err != nil {
		t.Fatalf("ObsSweep: %v", err)
	}
	if len(runs) != len(core.Specs()) {
		t.Fatalf("runs = %d, want %d", len(runs), len(core.Specs()))
	}
	for _, run := range runs {
		if run.Report.Total == 0 {
			t.Errorf("%s: attribution saw no queries", run.Spec.Name)
		}
		if len(run.Report.ByClass) != 2 {
			t.Errorf("%s: classes = %d, want 2", run.Spec.Name, len(run.Report.ByClass))
		}
		if len(run.Events) == 0 {
			t.Errorf("%s: no lifecycle events", run.Spec.Name)
		}
		var trace bytes.Buffer
		if err := obs.WriteChromeTrace(&trace, run.Events); err != nil {
			t.Errorf("%s: WriteChromeTrace: %v", run.Spec.Name, err)
		}
		var prom bytes.Buffer
		if err := run.Registry.WritePrometheus(&prom); err != nil {
			t.Errorf("%s: WritePrometheus: %v", run.Spec.Name, err)
		}
		for _, want := range []string{
			"tg_sim_queries_total",
			"tg_sim_query_slo_miss_total",
			"tg_sim_query_latency_ms_count",
			"tg_sim_task_wait_ms_count",
			"tg_sim_utilization",
		} {
			if !strings.Contains(prom.String(), want) {
				t.Errorf("%s: exposition missing %q", run.Spec.Name, want)
			}
		}
	}
	table := ObsTable(runs)
	if got := len(table.Rows); got != 2*len(runs) {
		t.Errorf("table rows = %d, want %d", got, 2*len(runs))
	}
	if !strings.Contains(table.String(), "TailGuard") {
		t.Errorf("table missing policy name:\n%s", table.String())
	}
}

func TestObsSweepDeterministic(t *testing.T) {
	cfg := ObsConfig{Specs: []core.Spec{core.TFEDFQ}, Fidelity: obsTestFidelity}
	a, err := ObsSweep(cfg)
	if err != nil {
		t.Fatalf("ObsSweep: %v", err)
	}
	b, err := ObsSweep(cfg)
	if err != nil {
		t.Fatalf("ObsSweep: %v", err)
	}
	var ta, tb, pa, pb bytes.Buffer
	if err := obs.WriteChromeTrace(&ta, a[0].Events); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if err := obs.WriteChromeTrace(&tb, b[0].Events); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if ta.String() != tb.String() {
		t.Errorf("trace output differs across identical runs")
	}
	if err := a[0].Registry.WritePrometheus(&pa); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := b[0].Registry.WritePrometheus(&pb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if pa.String() != pb.String() {
		t.Errorf("metrics exposition differs across identical runs:\n--- a\n%s\n--- b\n%s", pa.String(), pb.String())
	}
}
