package experiment

import "testing"

// TestShardScaleEquivalenceGate runs the shard-scaling experiment at
// smoke size: ShardScale itself errors out if any sharded run diverges
// from the sequential engine, so a nil error here (and in `make
// shard-smoke`, which runs the same path through cmd/tgsim) certifies
// bit-identity. A deterministic fake clock stands in for the wall clock
// this virtual-time package must not read itself.
func TestShardScaleEquivalenceGate(t *testing.T) {
	fid := Fidelity{Queries: 3000, Warmup: 200, MinSamples: 1, LoadTol: 0.02, Seed: 3}
	var ticks float64
	clock := func() float64 { ticks++; return ticks }
	tab, err := ShardScale(fid, 128, []int{2, 4}, clock)
	if err != nil {
		t.Fatalf("ShardScale: %v", err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("want 3 rows (sequential + 2 shard counts), got %d", len(tab.Rows))
	}
	for i, row := range tab.Rows[1:] {
		if got := row[len(row)-1]; got != "yes" {
			t.Errorf("row %d identical column = %q, want \"yes\"", i+1, got)
		}
	}
	for i, raw := range tab.Raw {
		if raw["wall_s"] <= 0 || raw["tasks/s"] <= 0 || raw["speedup"] <= 0 {
			t.Errorf("row %d raw metrics not positive: %v", i, raw)
		}
	}
}

// TestShardScaleNilClock: without an injected clock the table is fully
// deterministic — the measurement columns render as "-" and the raw maps
// stay empty, but the equivalence gate still runs.
func TestShardScaleNilClock(t *testing.T) {
	fid := Fidelity{Queries: 1500, Warmup: 100, MinSamples: 1, LoadTol: 0.02, Seed: 5}
	tab, err := ShardScale(fid, 128, []int{2}, nil)
	if err != nil {
		t.Fatalf("ShardScale: %v", err)
	}
	for i, row := range tab.Rows {
		if row[1] != "-" || row[2] != "-" || row[3] != "-" {
			t.Errorf("row %d has measurements without a clock: %v", i, row)
		}
		if len(tab.Raw[i]) != 0 {
			t.Errorf("row %d raw not empty without a clock: %v", i, tab.Raw[i])
		}
	}
	if got := tab.Rows[1][len(tab.Rows[1])-1]; got != "yes" {
		t.Errorf("identical column = %q, want \"yes\"", got)
	}
}
