// Package experiment reproduces the paper's evaluation: it provides the
// scenario builder and maximum-load search shared by all case studies, and
// one runner per table/figure (Table II/III, Figs. 3-7, plus the scale-up
// and request-level extensions). cmd/tgsim prints the resulting tables;
// bench_test.go wraps the same runners at reduced fidelity.
package experiment

import (
	"fmt"
	"strings"

	"tailguard/internal/parallel"
)

// Fidelity scales experiment cost: number of simulated queries per probe,
// warm-up, minimum per-type sample counts for SLO compliance, and the
// max-load search resolution.
type Fidelity struct {
	Queries    int     // queries per simulation run
	Warmup     int     // warm-up queries excluded from statistics
	MinSamples int     // min samples per query type for compliance checks
	LoadTol    float64 // max-load binary-search resolution
	Seed       int64   // base RNG seed
	// Workers bounds how many independent simulation runs the harness
	// executes concurrently (sweep cells, replicates, speculative
	// max-load probes). 0 means GOMAXPROCS; 1 is the sequential path.
	// Results are bit-identical at every value (DESIGN.md §8).
	Workers int
}

// Quick is sized for CI tests and benchmarks (seconds per experiment).
var Quick = Fidelity{Queries: 30000, Warmup: 2000, MinSamples: 100, LoadTol: 0.02, Seed: 1}

// Full is sized for paper-fidelity numbers (minutes for the full suite).
var Full = Fidelity{Queries: 250000, Warmup: 10000, MinSamples: 500, LoadTol: 0.005, Seed: 1}

func (f Fidelity) validate() error {
	if f.Queries < 1 {
		return fmt.Errorf("experiment: fidelity needs >= 1 query, got %d", f.Queries)
	}
	if f.Warmup < 0 || f.Warmup >= f.Queries {
		return fmt.Errorf("experiment: warmup %d outside [0, %d)", f.Warmup, f.Queries)
	}
	if f.MinSamples < 1 {
		return fmt.Errorf("experiment: min samples must be >= 1, got %d", f.MinSamples)
	}
	if f.LoadTol <= 0 || f.LoadTol >= 0.5 {
		return fmt.Errorf("experiment: load tolerance %v outside (0, 0.5)", f.LoadTol)
	}
	if f.Workers < 0 {
		return fmt.Errorf("experiment: workers must be >= 0, got %d", f.Workers)
	}
	return nil
}

// pool returns the worker pool the fidelity prescribes.
func (f Fidelity) pool() *parallel.Pool { return parallel.NewPool(f.Workers) }

// innerWorkers splits the fidelity's worker budget across n concurrent
// outer jobs (sweep cells, replicates), so nested parallelism — e.g.
// speculative max-load probes inside a parallel sweep — stays bounded
// near the overall worker count instead of multiplying.
func (f Fidelity) innerWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	iw := f.pool().Workers() / n
	if iw < 1 {
		iw = 1
	}
	return iw
}

// scaled returns a copy with Queries and Warmup multiplied by factor
// (minimum 1), used by experiments whose per-query task counts differ
// wildly (e.g. fanout-100 OLDI runs shrink query counts).
func (f Fidelity) scaled(factor float64) Fidelity {
	g := f
	g.Queries = int(float64(f.Queries) * factor)
	if g.Queries < 1 {
		g.Queries = 1
	}
	g.Warmup = int(float64(f.Warmup) * factor)
	if g.Warmup >= g.Queries {
		g.Warmup = g.Queries - 1
	}
	return g
}

// Table is a formatted experiment result ready for printing, paired with
// the raw cell values for programmatic checks.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Raw holds the numeric payload per row keyed by column name where a
	// numeric reading exists (used by tests and EXPERIMENTS.md tooling).
	Raw []map[string]float64
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180 CSV (header row + data rows), for
// downstream plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// f2 formats a float with 2 decimals; f3 with 3; pct as a percentage.
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
