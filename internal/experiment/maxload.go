package experiment

import (
	"fmt"
	"sync"

	"tailguard/internal/cluster"
	"tailguard/internal/parallel"
	"tailguard/internal/workload"
)

// arenaPool shares simulation arenas (event heaps, task/state freelists,
// queues, result recorders) across max-load probes. Probes run
// concurrently on the worker pool, so distribution is sync.Pool's job;
// each arena is used by exactly one probe at a time. The probes' Results
// are released back into their arenas once compliance is read, which is
// what makes repeated probing allocation-free in steady state.
var arenaPool = sync.Pool{New: func() any { return cluster.NewArena() }}

// MaxLoadBounds brackets the maximum-load binary search. The paper's case
// studies choose SLOs so the answer lands in 20-60% load; the default
// bracket is generous around that.
type MaxLoadBounds struct {
	Lo, Hi float64
}

// DefaultMaxLoadBounds covers every case study in the paper.
var DefaultMaxLoadBounds = MaxLoadBounds{Lo: 0.05, Hi: 0.95}

// MaxLoad binary-searches the highest offered load at which every query
// type still meets its tail-latency SLO (the paper's "maximum load").
// probe must run one simulation at the given load and report compliance.
// The search maintains the invariant lo passes / hi fails and returns lo
// once hi-lo <= tol.
func MaxLoad(bounds MaxLoadBounds, tol float64, probe func(load float64) (bool, error)) (float64, error) {
	if tol <= 0 {
		return 0, fmt.Errorf("experiment: tolerance must be positive, got %v", tol)
	}
	if bounds.Lo <= 0 || bounds.Hi <= bounds.Lo {
		return 0, fmt.Errorf("experiment: invalid bounds [%v, %v]", bounds.Lo, bounds.Hi)
	}
	okLo, err := probe(bounds.Lo)
	if err != nil {
		return 0, err
	}
	if !okLo {
		// Even the lightest probed load violates the SLO.
		return 0, nil
	}
	okHi, err := probe(bounds.Hi)
	if err != nil {
		return 0, err
	}
	if okHi {
		return bounds.Hi, nil
	}
	lo, hi := bounds.Lo, bounds.Hi
	for hi-lo > tol {
		mid := (lo + hi) / 2
		ok, err := probe(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// probeResult carries one speculative probe's outcome. Probe errors are
// attached to the result (not returned as job errors) so the resolver
// can surface exactly the error the sequential search would have hit
// and discard errors on branches sequential execution never probes.
type probeResult struct {
	ok  bool
	err error
}

// specNode is one node of a speculative bisection tree: the midpoint
// probe at index idx, with subtrees for the bracket that follows if the
// probe passes (pass: lo=mid) or fails (fail: hi=mid).
type specNode struct {
	idx        int
	pass, fail *specNode
}

// buildSpecTree expands the next `depth` levels of the bisection from
// the bracket [lo, hi], appending each midpoint to probes. Midpoints
// are computed with the same (lo+hi)/2 float arithmetic, and expansion
// stops on the same hi-lo <= tol predicate, as MaxLoad's loop — so the
// resolved path through the tree reproduces the sequential probe
// sequence bit for bit.
func buildSpecTree(lo, hi, tol float64, depth int, probes *[]float64) *specNode {
	if depth == 0 || hi-lo <= tol {
		return nil
	}
	mid := (lo + hi) / 2
	n := &specNode{idx: len(*probes)}
	*probes = append(*probes, mid)
	n.pass = buildSpecTree(mid, hi, tol, depth-1, probes)
	n.fail = buildSpecTree(lo, mid, tol, depth-1, probes)
	return n
}

// specDepth picks the speculation depth for a worker count: the largest
// d with 2^d - 1 <= workers, so one round's probe tree roughly fills
// the pool.
func specDepth(workers int) int {
	d := 1
	for d < 16 && (1<<uint(d+1))-1 <= workers {
		d++
	}
	return d
}

// SpeculativeMaxLoad is MaxLoad with speculative parallel probing: each
// round expands the next levels of the bisection tree (both outcomes of
// every pending midpoint), probes all of them concurrently on the pool,
// then resolves the bracket by walking the tree exactly as the
// sequential search would. Wall-clock shrinks from one probe per
// bisection step to one round per `depth` steps; the returned load (and
// any returned error) is identical to MaxLoad's because probes are pure
// functions of the load and the resolved path replays the sequential
// probe sequence. With a nil pool or a single worker it falls back to
// MaxLoad directly.
func SpeculativeMaxLoad(pool *parallel.Pool, bounds MaxLoadBounds, tol float64, probe func(load float64) (bool, error)) (float64, error) {
	if pool.Workers() <= 1 {
		return MaxLoad(bounds, tol, probe)
	}
	if tol <= 0 {
		return 0, fmt.Errorf("experiment: tolerance must be positive, got %v", tol)
	}
	if bounds.Lo <= 0 || bounds.Hi <= bounds.Lo {
		return 0, fmt.Errorf("experiment: invalid bounds [%v, %v]", bounds.Lo, bounds.Hi)
	}
	// Bracket the endpoints with one concurrent round, resolved in
	// sequential order: an error or failure at Lo wins over anything Hi
	// reports, matching MaxLoad's probe order.
	ends, err := parallel.Map(pool, 2, func(i int) (probeResult, error) {
		load := bounds.Lo
		if i == 1 {
			load = bounds.Hi
		}
		ok, err := probe(load)
		return probeResult{ok: ok, err: err}, nil
	})
	if err != nil {
		return 0, err
	}
	if ends[0].err != nil {
		return 0, ends[0].err
	}
	if !ends[0].ok {
		// Even the lightest probed load violates the SLO.
		return 0, nil
	}
	if ends[1].err != nil {
		return 0, ends[1].err
	}
	if ends[1].ok {
		return bounds.Hi, nil
	}
	lo, hi := bounds.Lo, bounds.Hi
	depth := specDepth(pool.Workers())
	for hi-lo > tol {
		var mids []float64
		root := buildSpecTree(lo, hi, tol, depth, &mids)
		results, err := parallel.Map(pool, len(mids), func(i int) (probeResult, error) {
			ok, err := probe(mids[i])
			return probeResult{ok: ok, err: err}, nil
		})
		if err != nil {
			return 0, err
		}
		for n := root; n != nil; {
			r := results[n.idx]
			if r.err != nil {
				return 0, r.err
			}
			if r.ok {
				lo = mids[n.idx]
				n = n.pass
			} else {
				hi = mids[n.idx]
				n = n.fail
			}
		}
	}
	return lo, nil
}

// ScenarioMaxLoad runs the max-load search over copies of the scenario
// with varying load, using the scenario's class SLOs for compliance.
// With Fidelity.Workers > 1 the bisection probes speculatively (see
// SpeculativeMaxLoad); the result is identical either way.
func ScenarioMaxLoad(s Scenario, bounds MaxLoadBounds) (float64, error) {
	return SpeculativeMaxLoad(s.Fidelity.pool(), bounds, s.Fidelity.LoadTol, func(load float64) (bool, error) {
		sc := s
		sc.Load = load
		cfg, err := sc.Build()
		if err != nil {
			return false, err
		}
		a := arenaPool.Get().(*cluster.Arena)
		defer arenaPool.Put(a)
		cfg.Arena = a
		res, err := cluster.Run(cfg)
		if err != nil {
			return false, err
		}
		ok, _, err := res.MeetsSLOs(s.Classes, s.Fidelity.MinSamples)
		a.Release(res)
		return ok, err
	})
}

// classSetForPaper returns the class configurations the paper's case
// studies use: one class, or two classes with the low class at ratio times
// the high-class SLO.
func classSetForPaper(sloMs float64, classesN int, ratio float64) (*workload.ClassSet, error) {
	switch classesN {
	case 1:
		return workload.SingleClass(sloMs)
	case 2:
		return workload.TwoClasses(sloMs, ratio)
	default:
		// n classes with SLOs spaced linearly from slo to ratio*slo.
		if classesN < 1 {
			return nil, fmt.Errorf("experiment: need >= 1 class, got %d", classesN)
		}
		classes := make([]workload.Class, classesN)
		for i := range classes {
			frac := float64(i) / float64(classesN-1)
			classes[i] = workload.Class{
				ID:         i,
				Name:       fmt.Sprintf("class-%d", i),
				SLOMs:      sloMs * (1 + frac*(ratio-1)),
				Percentile: 0.99,
				Weight:     1,
			}
		}
		return workload.NewClassSet(classes)
	}
}
