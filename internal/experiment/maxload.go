package experiment

import (
	"fmt"

	"tailguard/internal/workload"
)

// MaxLoadBounds brackets the maximum-load binary search. The paper's case
// studies choose SLOs so the answer lands in 20-60% load; the default
// bracket is generous around that.
type MaxLoadBounds struct {
	Lo, Hi float64
}

// DefaultMaxLoadBounds covers every case study in the paper.
var DefaultMaxLoadBounds = MaxLoadBounds{Lo: 0.05, Hi: 0.95}

// MaxLoad binary-searches the highest offered load at which every query
// type still meets its tail-latency SLO (the paper's "maximum load").
// probe must run one simulation at the given load and report compliance.
// The search maintains the invariant lo passes / hi fails and returns lo
// once hi-lo <= tol.
func MaxLoad(bounds MaxLoadBounds, tol float64, probe func(load float64) (bool, error)) (float64, error) {
	if tol <= 0 {
		return 0, fmt.Errorf("experiment: tolerance must be positive, got %v", tol)
	}
	if bounds.Lo <= 0 || bounds.Hi <= bounds.Lo {
		return 0, fmt.Errorf("experiment: invalid bounds [%v, %v]", bounds.Lo, bounds.Hi)
	}
	okLo, err := probe(bounds.Lo)
	if err != nil {
		return 0, err
	}
	if !okLo {
		// Even the lightest probed load violates the SLO.
		return 0, nil
	}
	okHi, err := probe(bounds.Hi)
	if err != nil {
		return 0, err
	}
	if okHi {
		return bounds.Hi, nil
	}
	lo, hi := bounds.Lo, bounds.Hi
	for hi-lo > tol {
		mid := (lo + hi) / 2
		ok, err := probe(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// ScenarioMaxLoad runs MaxLoad over copies of the scenario with varying
// load, using the scenario's class SLOs for compliance.
func ScenarioMaxLoad(s Scenario, bounds MaxLoadBounds) (float64, error) {
	return MaxLoad(bounds, s.Fidelity.LoadTol, func(load float64) (bool, error) {
		sc := s
		sc.Load = load
		res, err := sc.Run()
		if err != nil {
			return false, err
		}
		ok, _, err := res.MeetsSLOs(s.Classes, s.Fidelity.MinSamples)
		return ok, err
	})
}

// classSetForPaper returns the class configurations the paper's case
// studies use: one class, or two classes with the low class at ratio times
// the high-class SLO.
func classSetForPaper(sloMs float64, classesN int, ratio float64) (*workload.ClassSet, error) {
	switch classesN {
	case 1:
		return workload.SingleClass(sloMs)
	case 2:
		return workload.TwoClasses(sloMs, ratio)
	default:
		// n classes with SLOs spaced linearly from slo to ratio*slo.
		if classesN < 1 {
			return nil, fmt.Errorf("experiment: need >= 1 class, got %d", classesN)
		}
		classes := make([]workload.Class, classesN)
		for i := range classes {
			frac := float64(i) / float64(classesN-1)
			classes[i] = workload.Class{
				ID:         i,
				Name:       fmt.Sprintf("class-%d", i),
				SLOMs:      sloMs * (1 + frac*(ratio-1)),
				Percentile: 0.99,
				Weight:     1,
			}
		}
		return workload.NewClassSet(classes)
	}
}
