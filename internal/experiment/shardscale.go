package experiment

import (
	"fmt"

	"tailguard/internal/cluster"
	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/workload"
)

// ShardScaleServers is the stock cluster size for the shard-scaling
// experiment: the 10k-server scale the ROADMAP's policy-zoo and DAG
// workloads need (paired with ~10M queries at full fidelity, see
// BenchmarkShardedClusterThroughput).
const ShardScaleServers = 10000

// ShardScaleScenario is the stock scenario the shard-scaling experiment
// and BenchmarkShardedClusterThroughput share: Masstree service times,
// OLDI fanouts 1/10/100, one 1 ms SLO class, TailGuard queues at 40%
// load. Continuous arrival and service distributions keep cross-stream
// event-time ties at measure zero, which is what the bit-identity
// contract requires (DESIGN.md §13).
func ShardScaleScenario(fid Fidelity, servers, shards int) (Scenario, error) {
	w, err := dist.TailbenchWorkload("masstree")
	if err != nil {
		return Scenario{}, err
	}
	fan, err := workload.NewInverseProportional([]int{1, 10, 100})
	if err != nil {
		return Scenario{}, err
	}
	classes, err := workload.SingleClass(1.0)
	if err != nil {
		return Scenario{}, err
	}
	return Scenario{
		Workload: w,
		Servers:  servers,
		Spec:     core.TFEDFQ,
		Fanout:   fan,
		Classes:  classes,
		Load:     0.40,
		Fidelity: fid,
		Shards:   shards,
	}, nil
}

// ShardScale runs the stock scenario once on the sequential engine and
// once per requested shard count on the sharded parallel core, and gates
// every sharded run on bit-identity with the sequential result
// (cluster.Result.Equal — any divergence is an error, which is what
// `make shard-smoke` relies on). servers <= 0 selects the stock
// ShardScaleServers; an empty counts slice selects 2/4/8.
//
// wall supplies monotonic wall-clock seconds for the wall_s/tasks/s/
// speedup columns; this package is virtual-time (simclock) so the caller
// injects the measurement — cmd/tgsim passes a time.Since closure. A nil
// wall omits the measurements ("-" cells), leaving a fully deterministic
// table; the identical column is the gate either way.
func ShardScale(fid Fidelity, servers int, counts []int, wall func() float64) (*Table, error) {
	if servers <= 0 {
		servers = ShardScaleServers
	}
	if len(counts) == 0 {
		counts = []int{2, 4, 8}
	}
	run := func(shards int) (*cluster.Result, float64, error) {
		s, err := ShardScaleScenario(fid, servers, shards)
		if err != nil {
			return nil, 0, err
		}
		var start float64
		if wall != nil {
			start = wall()
		}
		res, err := s.Run()
		if err != nil {
			return nil, 0, fmt.Errorf("shardscale shards=%d: %w", shards, err)
		}
		var elapsed float64
		if wall != nil {
			elapsed = wall() - start
		}
		return res, elapsed, nil
	}
	seq, seqWall, err := run(0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "shardscale",
		Title: fmt.Sprintf("Sharded core vs sequential: %d servers, %d queries (Masstree, fanouts 1/10/100, load 40%%)",
			servers, fid.Queries),
		Columns: []string{"shards", "wall_s", "tasks/s", "speedup", "identical"},
	}
	sc, err := ShardScaleScenario(fid, servers, 0)
	if err != nil {
		return nil, err
	}
	tasks := float64(seq.Completed) * sc.Fanout.MeanTasks()
	addRow := func(label string, elapsed, speedup float64, identical string) {
		raw := map[string]float64{}
		wallS, rate, sp := "-", "-", "-"
		if wall != nil && elapsed > 0 {
			wallS, rate, sp = f2(elapsed), humanRate(tasks/elapsed), f2(speedup)
			raw["wall_s"], raw["tasks/s"], raw["speedup"] = elapsed, tasks/elapsed, speedup
		}
		t.Rows = append(t.Rows, []string{label, wallS, rate, sp, identical})
		t.Raw = append(t.Raw, raw)
	}
	addRow("1 (sequential)", seqWall, 1.0, "-")
	for _, shards := range counts {
		par, elapsed, err := run(shards)
		if err != nil {
			return nil, err
		}
		if err := seq.Equal(par); err != nil {
			return nil, fmt.Errorf("shardscale shards=%d diverges from sequential: %w", shards, err)
		}
		addRow(fmt.Sprintf("%d", shards), elapsed, seqWall/elapsed, "yes")
	}
	return t, nil
}

// humanRate renders a rate compactly (1.23M, 456k, 789).
func humanRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
