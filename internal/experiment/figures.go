package experiment

import (
	"fmt"

	"tailguard/internal/cluster"
	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/parallel"
	"tailguard/internal/workload"
)

// PaperFanouts is the Section IV.B query-type mix: fanouts 1/10/100 with
// probability inversely proportional to fanout.
var PaperFanouts = []int{1, 10, 100}

// Fig4SLOs gives the per-workload single-class tail-latency SLO sweeps
// (ms) for the Fig. 4 case study. The Masstree values are the paper's;
// the Shore/Xapian tick labels are partially unreadable in the figure, so
// values are chosen (as the paper did) to land the max loads in the
// 20-60% range.
var Fig4SLOs = map[string][]float64{
	"masstree": {0.8, 1.0, 1.2, 1.4},
	"shore":    {4, 6, 8, 10},
	"xapian":   {7, 10, 12, 14},
}

// Fig6SLOs gives the two-class (I/II) SLO pairs (ms) for the fanout-100
// OLDI case study of Section IV.C, exactly as published.
var Fig6SLOs = map[string][2]float64{
	"masstree": {1, 1.5},
	"shore":    {6, 10},
	"xapian":   {10, 15},
}

// Fig6Loads is the published x-axis: 20% to 60% in 5% steps.
var Fig6Loads = []float64{0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50, 0.55, 0.60}

// Fig3 tabulates the service-time CDFs of the three workload models at a
// percentile grid, plus the p95/p99 markers the figure calls out.
func Fig3() (*Table, error) {
	names := dist.TailbenchNames()
	t := &Table{
		ID:      "fig3",
		Title:   "Task service-time CDFs (quantiles, ms) with p95/p99 markers",
		Columns: append([]string{"percentile"}, names...),
	}
	grid := []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 0.9999, 1.0}
	for _, p := range grid {
		row := []string{fmt.Sprintf("p%g", p*100)}
		raw := map[string]float64{"percentile": p}
		for _, name := range names {
			w, err := dist.TailbenchWorkload(name)
			if err != nil {
				return nil, err
			}
			v := w.ServiceTime.Quantile(p)
			row = append(row, f3(v))
			raw[name] = v
		}
		t.Rows = append(t.Rows, row)
		t.Raw = append(t.Raw, raw)
	}
	return t, nil
}

// Table2 reproduces Table II: mean task service time and unloaded 99th
// percentile query tails at fanouts 1, 10, 100.
func Table2() (*Table, error) {
	t := &Table{
		ID:      "table2",
		Title:   "Mean task service time Tm and unloaded x99^u at fanouts 1/10/100 (ms)",
		Columns: []string{"workload", "Tm", "x99(1)", "x99(10)", "x99(100)"},
	}
	for _, name := range dist.TailbenchNames() {
		w, err := dist.TailbenchWorkload(name)
		if err != nil {
			return nil, err
		}
		raw := map[string]float64{"Tm": w.ServiceTime.Mean()}
		row := []string{name, f3(raw["Tm"])}
		for _, k := range []int{1, 10, 100} {
			x, err := w.X99(k)
			if err != nil {
				return nil, err
			}
			key := fmt.Sprintf("x99(%d)", k)
			raw[key] = x
			row = append(row, f3(x))
		}
		t.Rows = append(t.Rows, row)
		t.Raw = append(t.Raw, raw)
	}
	return t, nil
}

// singleClassScenario builds the Fig. 4 scenario: N=100, mixed fanouts
// 1/10/100 (P ∝ 1/kf), one class.
func singleClassScenario(workloadName string, spec core.Spec, sloMs float64, fid Fidelity) (Scenario, error) {
	w, err := dist.TailbenchWorkload(workloadName)
	if err != nil {
		return Scenario{}, err
	}
	fan, err := workload.NewInverseProportional(PaperFanouts)
	if err != nil {
		return Scenario{}, err
	}
	classes, err := workload.SingleClass(sloMs)
	if err != nil {
		return Scenario{}, err
	}
	return Scenario{
		Workload: w,
		Servers:  100,
		Spec:     spec,
		Fanout:   fan,
		Classes:  classes,
		Load:     0.3, // placeholder; max-load search overrides
		Fidelity: fid,
	}, nil
}

// Fig4 reproduces Fig. 4: the maximum load meeting a single-class tail
// latency SLO, TailGuard vs FIFO, per workload and SLO. (PRIQ and T-EDFQ
// degenerate to FIFO with a single class.)
func Fig4(fid Fidelity, workloads []string, slos map[string][]float64) (*Table, error) {
	if len(workloads) == 0 {
		workloads = dist.TailbenchNames()
	}
	if slos == nil {
		slos = Fig4SLOs
	}
	t := &Table{
		ID:      "fig4",
		Title:   "Max load meeting the single-class x99 SLO (TailGuard vs FIFO)",
		Columns: []string{"workload", "slo_ms", "policy", "max_load", "gain_vs_fifo"},
	}
	// Every (workload, SLO, policy) cell is an independent max-load
	// search; flatten the grid and fan it out on the worker pool,
	// splitting the remaining worker budget across each cell's
	// speculative bisection.
	type cell struct {
		name string
		slo  float64
		spec core.Spec
	}
	var cells []cell
	for _, name := range workloads {
		for _, slo := range slos[name] {
			for _, spec := range []core.Spec{core.TFEDFQ, core.FIFO} {
				cells = append(cells, cell{name: name, slo: slo, spec: spec})
			}
		}
	}
	inner := fid.innerWorkers(len(cells))
	loads, err := parallel.Map(fid.pool(), len(cells), func(i int) (float64, error) {
		c := cells[i]
		s, err := singleClassScenario(c.name, c.spec, c.slo, fid)
		if err != nil {
			return 0, err
		}
		s.Fidelity.Workers = inner
		ml, err := ScenarioMaxLoad(s, DefaultMaxLoadBounds)
		if err != nil {
			return 0, fmt.Errorf("fig4 %s slo=%v %s: %w", c.name, c.slo, c.spec.Name, err)
		}
		return ml, nil
	})
	if err != nil {
		return nil, err
	}
	ci := 0
	for _, name := range workloads {
		for _, slo := range slos[name] {
			tg, fifo := loads[ci], loads[ci+1]
			ci += 2
			for _, p := range []struct {
				name string
				load float64
			}{{"TailGuard", tg}, {"FIFO", fifo}} {
				gain := 0.0
				if fifo > 0 {
					gain = p.load/fifo - 1
				}
				t.Rows = append(t.Rows, []string{name, f2(slo), p.name, pct(p.load), pct(gain)})
				t.Raw = append(t.Raw, map[string]float64{
					"slo_ms": slo, "max_load": p.load, "gain_vs_fifo": gain,
				})
			}
		}
	}
	return t, nil
}

// Fig4Replicated is Fig4 with R independently seeded max-load searches per
// point, reporting mean and sample standard deviation — the honest form of
// the headline numbers.
func Fig4Replicated(fid Fidelity, workloads []string, slos map[string][]float64, replicates int) (*Table, error) {
	if len(workloads) == 0 {
		workloads = dist.TailbenchNames()
	}
	if slos == nil {
		slos = Fig4SLOs
	}
	if replicates < 2 {
		return nil, fmt.Errorf("experiment: need >= 2 replicates, got %d", replicates)
	}
	t := &Table{
		ID:      "fig4",
		Title:   fmt.Sprintf("Max load meeting the single-class x99 SLO, mean±sd over %d replicates", replicates),
		Columns: []string{"workload", "slo_ms", "policy", "max_load_mean", "max_load_sd"},
	}
	// Flatten the full (workload, SLO, policy) x replicate grid into one
	// job list so the pool sees the widest possible fan-out; each job is
	// one independently seeded max-load search, exactly the searches
	// ReplicatedScenarioMaxLoad runs per cell.
	type cell struct {
		name string
		slo  float64
		spec core.Spec
	}
	var cells []cell
	for _, name := range workloads {
		for _, slo := range slos[name] {
			for _, spec := range []core.Spec{core.TFEDFQ, core.FIFO} {
				cells = append(cells, cell{name: name, slo: slo, spec: spec})
			}
		}
	}
	n := len(cells) * replicates
	inner := fid.innerWorkers(n)
	values, err := parallel.Map(fid.pool(), n, func(i int) (float64, error) {
		c := cells[i/replicates]
		rep := i % replicates
		s, err := singleClassScenario(c.name, c.spec, c.slo, fid)
		if err != nil {
			return 0, err
		}
		s.Fidelity.Seed = replicateSeed(fid.Seed, rep)
		s.Fidelity.Workers = inner
		ml, err := ScenarioMaxLoad(s, DefaultMaxLoadBounds)
		if err != nil {
			return 0, fmt.Errorf("fig4r %s slo=%v %s: %w", c.name, c.slo, c.spec.Name,
				fmt.Errorf("experiment: replicate %d: %w", rep, err))
		}
		return ml, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		rep := summarize(values[i*replicates : (i+1)*replicates])
		t.Rows = append(t.Rows, []string{c.name, f2(c.slo), c.spec.Name, pct(rep.Mean), pct(rep.StdDev)})
		t.Raw = append(t.Raw, map[string]float64{
			"slo_ms": c.slo, "max_load": rep.Mean, "max_load_sd": rep.StdDev,
		})
	}
	return t, nil
}

// Table3 reproduces Table III: the per-fanout 99th-percentile query
// latency at each policy's own maximum load, Masstree, four SLOs.
func Table3(fid Fidelity, slos []float64) (*Table, error) {
	if slos == nil {
		slos = Fig4SLOs["masstree"]
	}
	t := &Table{
		ID:      "table3",
		Title:   "p99 (ms) per query fanout at max load (Masstree, single class)",
		Columns: []string{"slo_ms", "policy", "max_load", "p99_k1", "p99_k10", "p99_k100"},
	}
	type cell struct {
		slo  float64
		spec core.Spec
	}
	var cells []cell
	for _, slo := range slos {
		for _, spec := range []core.Spec{core.FIFO, core.TFEDFQ} {
			cells = append(cells, cell{slo: slo, spec: spec})
		}
	}
	type cellResult struct {
		ml  float64
		p99 [3]float64
	}
	inner := fid.innerWorkers(len(cells))
	results, err := parallel.Map(fid.pool(), len(cells), func(i int) (cellResult, error) {
		c := cells[i]
		var out cellResult
		s, err := singleClassScenario("masstree", c.spec, c.slo, fid)
		if err != nil {
			return out, err
		}
		s.Fidelity.Workers = inner
		ml, err := ScenarioMaxLoad(s, DefaultMaxLoadBounds)
		if err != nil {
			return out, err
		}
		if ml <= 0 {
			ml = DefaultMaxLoadBounds.Lo
		}
		out.ml = ml
		s.Load = ml
		res, err := s.Run()
		if err != nil {
			return out, err
		}
		for ki, k := range PaperFanouts {
			rec := res.ByFanout.Recorder(k)
			if rec == nil {
				return out, fmt.Errorf("table3: no samples for fanout %d", k)
			}
			p99, err := rec.P99()
			if err != nil {
				return out, err
			}
			out.p99[ki] = p99
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		r := results[i]
		row := []string{f2(c.slo), c.spec.Name, pct(r.ml)}
		raw := map[string]float64{"slo_ms": c.slo, "max_load": r.ml}
		for ki, k := range PaperFanouts {
			row = append(row, f3(r.p99[ki]))
			raw[fmt.Sprintf("p99_k%d", k)] = r.p99[ki]
		}
		t.Rows = append(t.Rows, row)
		t.Raw = append(t.Raw, raw)
	}
	return t, nil
}

// Fig5 reproduces Fig. 5: two-class maximum loads for Masstree under all
// four policies, with Poisson and Pareto arrivals.
func Fig5(fid Fidelity, highSLOs []float64, arrivals []ArrivalKind) (*Table, error) {
	if highSLOs == nil {
		highSLOs = Fig4SLOs["masstree"]
	}
	if len(arrivals) == 0 {
		arrivals = []ArrivalKind{Poisson, Pareto}
	}
	w, err := dist.TailbenchWorkload("masstree")
	if err != nil {
		return nil, err
	}
	fan, err := workload.NewInverseProportional(PaperFanouts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig5",
		Title:   "Max load, two classes (low SLO = 1.5x high), Masstree",
		Columns: []string{"arrival", "high_slo_ms", "policy", "max_load"},
	}
	type cell struct {
		arrival ArrivalKind
		slo     float64
		spec    core.Spec
	}
	var cells []cell
	for _, arrival := range arrivals {
		for _, slo := range highSLOs {
			for _, spec := range core.Specs() {
				cells = append(cells, cell{arrival: arrival, slo: slo, spec: spec})
			}
		}
	}
	inner := fid.innerWorkers(len(cells))
	loads, err := parallel.Map(fid.pool(), len(cells), func(i int) (float64, error) {
		c := cells[i]
		classes, err := workload.TwoClasses(c.slo, 1.5)
		if err != nil {
			return 0, err
		}
		s := Scenario{
			Workload: w,
			Servers:  100,
			Spec:     c.spec,
			Fanout:   fan,
			Classes:  classes,
			Arrival:  c.arrival,
			Load:     0.3,
			Fidelity: fid,
		}
		s.Fidelity.Workers = inner
		ml, err := ScenarioMaxLoad(s, DefaultMaxLoadBounds)
		if err != nil {
			return 0, fmt.Errorf("fig5 %s slo=%v %s: %w", c.arrival, c.slo, c.spec.Name, err)
		}
		return ml, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.Rows = append(t.Rows, []string{string(c.arrival), f2(c.slo), c.spec.Name, pct(loads[i])})
		t.Raw = append(t.Raw, map[string]float64{"high_slo_ms": c.slo, "max_load": loads[i]})
	}
	return t, nil
}

// oldiScenario builds the Section IV.C OLDI setup: every query fans out to
// all N=100 servers, two classes.
func oldiScenario(workloadName string, spec core.Spec, fid Fidelity) (Scenario, error) {
	w, err := dist.TailbenchWorkload(workloadName)
	if err != nil {
		return Scenario{}, err
	}
	fan, err := workload.NewFixed(100)
	if err != nil {
		return Scenario{}, err
	}
	slos, ok := Fig6SLOs[workloadName]
	if !ok {
		return Scenario{}, fmt.Errorf("experiment: no Fig6 SLOs for %q", workloadName)
	}
	classes, err := workload.TwoClasses(slos[0], slos[1]/slos[0])
	if err != nil {
		return Scenario{}, err
	}
	// Fanout-100 queries carry 100 tasks each; scale query counts down to
	// keep probe cost comparable to the mixed-fanout runs.
	return Scenario{
		Workload: w,
		Servers:  100,
		Spec:     spec,
		Fanout:   fan,
		Classes:  classes,
		Load:     0.3,
		Fidelity: fid.scaled(0.25),
	}, nil
}

// Fig6 reproduces Fig. 6: the 99th-percentile query latency of each class
// versus load for the all-fanout-100 OLDI workloads, under TailGuard,
// FIFO and PRIQ (T-EDFQ coincides with TailGuard at fixed fanout).
func Fig6(fid Fidelity, workloads []string, loads []float64) (*Table, error) {
	if len(workloads) == 0 {
		workloads = dist.TailbenchNames()
	}
	if len(loads) == 0 {
		loads = Fig6Loads
	}
	t := &Table{
		ID:      "fig6",
		Title:   "p99 (ms) vs load, fanout-100 OLDI, two classes",
		Columns: []string{"workload", "policy", "load", "p99_classI", "p99_classII", "sloI", "sloII"},
	}
	type cell struct {
		name string
		spec core.Spec
		load float64
	}
	var cells []cell
	for _, name := range workloads {
		for _, spec := range []core.Spec{core.TFEDFQ, core.FIFO, core.PRIQ} {
			for _, load := range loads {
				cells = append(cells, cell{name: name, spec: spec, load: load})
			}
		}
	}
	results, err := parallel.Map(fid.pool(), len(cells), func(i int) ([2]float64, error) {
		c := cells[i]
		var p99 [2]float64
		s, err := oldiScenario(c.name, c.spec, fid)
		if err != nil {
			return p99, err
		}
		s.Load = c.load
		res, err := s.Run()
		if err != nil {
			return p99, fmt.Errorf("fig6 %s %s load=%v: %w", c.name, c.spec.Name, c.load, err)
		}
		for cl := 0; cl < 2; cl++ {
			rec := res.ByClass.Recorder(cl)
			if rec == nil {
				return p99, fmt.Errorf("fig6: no class-%d samples", cl)
			}
			v, err := rec.P99()
			if err != nil {
				return p99, err
			}
			p99[cl] = v
		}
		return p99, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		slos := Fig6SLOs[c.name]
		p99 := results[i]
		t.Rows = append(t.Rows, []string{
			c.name, c.spec.Name, pct(c.load), f3(p99[0]), f3(p99[1]), f2(slos[0]), f2(slos[1]),
		})
		t.Raw = append(t.Raw, map[string]float64{
			"load": c.load, "p99_classI": p99[0], "p99_classII": p99[1],
			"sloI": slos[0], "sloII": slos[1],
		})
	}
	return t, nil
}

// Fig7 reproduces Fig. 7: TailGuard with query admission control on the
// Masstree OLDI workload — accepted/rejected load and per-class p99 across
// offered loads. Per the paper's procedure, Rth is calibrated first: the
// task deadline-miss ratio measured at the maximum acceptable load without
// admission control (the paper's own calibration yielded 1.7%).
func Fig7(fid Fidelity, offeredLoads []float64) (*Table, error) {
	if len(offeredLoads) == 0 {
		offeredLoads = []float64{0.45, 0.50, 0.55, 0.60, 0.65, 0.70}
	}

	// Calibration phase.
	cal, err := oldiScenario("masstree", core.TFEDFQ, fid)
	if err != nil {
		return nil, err
	}
	maxLoad, err := ScenarioMaxLoad(cal, DefaultMaxLoadBounds)
	if err != nil {
		return nil, fmt.Errorf("fig7 calibration: %w", err)
	}
	rth := 0.017 // paper's value as fallback
	if maxLoad > 0 {
		cal.Load = maxLoad
		res, err := cal.Run()
		if err != nil {
			return nil, fmt.Errorf("fig7 calibration run: %w", err)
		}
		if res.TaskMissRatio > 0.001 {
			rth = res.TaskMissRatio
		}
	}

	t := &Table{
		ID: "fig7",
		Title: fmt.Sprintf("TailGuard admission control (Masstree OLDI): accepted load and p99 vs offered load (max acceptable %.1f%%, calibrated Rth %.2f%%)",
			maxLoad*100, rth*100),
		Columns: []string{"offered", "accepted", "rejected", "p99_classI", "p99_classII", "miss_ratio"},
	}
	type loadResult struct {
		accepted, rejected, miss float64
		p99                      [2]float64
	}
	results, err := parallel.Map(fid.pool(), len(offeredLoads), func(i int) (loadResult, error) {
		load := offeredLoads[i]
		var out loadResult
		s, err := oldiScenario("masstree", core.TFEDFQ, fid)
		if err != nil {
			return out, err
		}
		s.Load = load
		// The paper's window spans ~1000 queries; convert to time at the
		// offered arrival rate (lambda = load*N/(kf*Tm)). Short runs cap
		// the window at a tenth of the run so the control loop can act.
		rate, err := workload.RateForLoad(load, s.Servers, s.Fanout.MeanTasks(), s.Workload.ServiceTime.Mean())
		if err != nil {
			return out, err
		}
		windowQueries := 1000
		if cap := s.Fidelity.Queries / 10; cap < windowQueries {
			windowQueries = cap
		}
		if windowQueries < 10 {
			windowQueries = 10
		}
		s.AdmissionWindowMs = float64(windowQueries) / rate
		s.AdmissionThreshold = rth
		res, err := s.Run()
		if err != nil {
			return out, fmt.Errorf("fig7 load=%v: %w", load, err)
		}
		for c := 0; c < 2; c++ {
			v, err := resultP99(res, c)
			if err != nil {
				return out, fmt.Errorf("fig7 load=%v: %w", load, err)
			}
			out.p99[c] = v
		}
		out.accepted = res.Utilization
		out.rejected = res.OfferedLoad - out.accepted
		if out.rejected < 0 {
			out.rejected = 0
		}
		out.miss = res.TaskMissRatio
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for i, load := range offeredLoads {
		r := results[i]
		t.Rows = append(t.Rows, []string{
			pct(load), pct(r.accepted), pct(r.rejected), f3(r.p99[0]), f3(r.p99[1]), pct(r.miss),
		})
		t.Raw = append(t.Raw, map[string]float64{
			"offered": load, "accepted": r.accepted, "rejected": r.rejected,
			"p99_classI": r.p99[0], "p99_classII": r.p99[1], "miss_ratio": r.miss,
		})
	}
	return t, nil
}

// resultP99 is a small helper used by extension experiments.
func resultP99(res *cluster.Result, class int) (float64, error) {
	rec := res.ByClass.Recorder(class)
	if rec == nil {
		return 0, fmt.Errorf("experiment: no samples for class %d", class)
	}
	return rec.P99()
}
