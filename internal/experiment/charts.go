package experiment

import (
	"fmt"

	"tailguard/internal/dist"
	"tailguard/internal/plot"
)

// Figure is one rendered SVG with a file-friendly name.
type Figure struct {
	Name string // e.g. "fig6-masstree-classI"
	SVG  string
}

// Render turns an experiment table into the figure(s) the paper draws
// from it. Tables without a graphical form (Table II/III) return nil.
func Render(tbl *Table) ([]Figure, error) {
	if tbl == nil {
		return nil, fmt.Errorf("experiment: nil table")
	}
	switch tbl.ID {
	case "fig3":
		return renderFig3(tbl)
	case "fig4":
		return renderMaxLoadBars(tbl, "fig4", 0, 2, "slo_ms", "max_load", "SLO (ms)")
	case "fig5":
		return renderFig5(tbl)
	case "fig6":
		return renderFig6(tbl)
	case "fig7":
		return renderFig7(tbl)
	default:
		return nil, nil
	}
}

// renderFig3 draws the three workload CDFs.
func renderFig3(tbl *Table) ([]Figure, error) {
	var series []plot.Series
	for _, name := range dist.TailbenchNames() {
		s := plot.Series{Name: name}
		for _, raw := range tbl.Raw {
			s.X = append(s.X, raw[name])
			s.Y = append(s.Y, raw["percentile"])
		}
		series = append(series, s)
	}
	c := &plot.LineChart{
		Title:  "Task service-time CDFs (Fig. 3)",
		XLabel: "Task service time (ms)",
		YLabel: "Cumulative probability",
		Series: series,
	}
	svg, err := c.SVG()
	if err != nil {
		return nil, err
	}
	return []Figure{{Name: "fig3-cdfs", SVG: svg}}, nil
}

// renderMaxLoadBars draws grouped max-load bars: rows grouped by the
// string cell at groupCol (e.g. workload), bars labeled by the raw key
// xKey, series from the string cell at policyCol.
func renderMaxLoadBars(tbl *Table, id string, groupCol, policyCol int, xKey, yKey, xName string) ([]Figure, error) {
	type cell struct{ group, label, policy string }
	values := map[cell]float64{}
	var groups, labels, policies []string
	seenG, seenL, seenP := map[string]bool{}, map[string]bool{}, map[string]bool{}
	for i, row := range tbl.Rows {
		g, p := row[groupCol], row[policyCol]
		label := fmt.Sprintf("%g", tbl.Raw[i][xKey])
		values[cell{g, label, p}] = tbl.Raw[i][yKey] * 100
		if !seenG[g] {
			seenG[g] = true
			groups = append(groups, g)
		}
		if !seenL[label] {
			seenL[label] = true
			labels = append(labels, label)
		}
		if !seenP[p] {
			seenP[p] = true
			policies = append(policies, p)
		}
	}
	var figs []Figure
	for _, g := range groups {
		bars := &plot.BarChart{
			Title:       fmt.Sprintf("Max load meeting the SLO — %s (%s)", g, tbl.ID),
			YLabel:      "Max load (%)",
			SeriesNames: policies,
		}
		for _, label := range labels {
			grp := plot.BarGroup{Label: label + " " + xName}
			for _, p := range policies {
				grp.Values = append(grp.Values, values[cell{g, label, p}])
			}
			bars.Groups = append(bars.Groups, grp)
		}
		svg, err := bars.SVG()
		if err != nil {
			return nil, err
		}
		figs = append(figs, Figure{Name: fmt.Sprintf("%s-%s", id, sanitize(g)), SVG: svg})
	}
	return figs, nil
}

// renderFig5 draws one bar chart per arrival process.
func renderFig5(tbl *Table) ([]Figure, error) {
	return renderMaxLoadBars(tbl, "fig5", 0, 2, "high_slo_ms", "max_load", "ms SLO")
}

// renderFig6 draws one p99-vs-load line chart per (workload, class).
func renderFig6(tbl *Table) ([]Figure, error) {
	type key struct{ workload, class string }
	series := map[key]map[string]*plot.Series{} // -> policy -> series
	slos := map[key]float64{}
	var order []key
	for i, row := range tbl.Rows {
		w, p := row[0], row[1]
		for ci, class := range []string{"classI", "classII"} {
			k := key{w, class}
			if series[k] == nil {
				series[k] = map[string]*plot.Series{}
				order = append(order, k)
			}
			s := series[k][p]
			if s == nil {
				s = &plot.Series{Name: p}
				series[k][p] = s
			}
			s.X = append(s.X, tbl.Raw[i]["load"]*100)
			s.Y = append(s.Y, tbl.Raw[i]["p99_"+class])
			if ci == 0 {
				slos[k] = tbl.Raw[i]["sloI"]
			} else {
				slos[k] = tbl.Raw[i]["sloII"]
			}
		}
	}
	var figs []Figure
	for _, k := range order {
		c := &plot.LineChart{
			Title:  fmt.Sprintf("p99 vs load — %s, %s (Fig. 6)", k.workload, k.class),
			XLabel: "Load (%)",
			YLabel: "99th percentile latency (ms)",
			Refs:   []plot.RefLine{{Name: "SLO", Y: slos[k]}},
		}
		for _, p := range []string{"TailGuard", "FIFO", "PRIQ", "T-EDFQ"} {
			if s := series[k][p]; s != nil {
				c.Series = append(c.Series, *s)
			}
		}
		svg, err := c.SVG()
		if err != nil {
			return nil, err
		}
		figs = append(figs, Figure{Name: fmt.Sprintf("fig6-%s-%s", sanitize(k.workload), k.class), SVG: svg})
	}
	return figs, nil
}

// renderFig7 draws the accepted-load and per-class-p99 charts.
func renderFig7(tbl *Table) ([]Figure, error) {
	loads := plot.Series{Name: "accepted"}
	offered := plot.Series{Name: "offered"}
	p99I := plot.Series{Name: "class I p99"}
	p99II := plot.Series{Name: "class II p99"}
	var sloI, sloII float64
	for _, raw := range tbl.Raw {
		x := raw["offered"] * 100
		offered.X = append(offered.X, x)
		offered.Y = append(offered.Y, x)
		loads.X = append(loads.X, x)
		loads.Y = append(loads.Y, raw["accepted"]*100)
		p99I.X = append(p99I.X, x)
		p99I.Y = append(p99I.Y, raw["p99_classI"])
		p99II.X = append(p99II.X, x)
		p99II.Y = append(p99II.Y, raw["p99_classII"])
		sloI, sloII = raw["sloI"], raw["sloII"]
	}
	if sloI == 0 {
		sloI, sloII = 1.0, 1.5 // fig7 runs the Masstree OLDI classes
	}
	acc := &plot.LineChart{
		Title:  "Admission control: accepted vs offered load (Fig. 7a)",
		XLabel: "Offered load (%)",
		YLabel: "Load (%)",
		Series: []plot.Series{loads, offered},
	}
	accSVG, err := acc.SVG()
	if err != nil {
		return nil, err
	}
	tails := &plot.LineChart{
		Title:  "Admission control: per-class p99 (Fig. 7b)",
		XLabel: "Offered load (%)",
		YLabel: "99th percentile latency (ms)",
		Series: []plot.Series{p99I, p99II},
		Refs:   []plot.RefLine{{Name: "SLO I", Y: sloI}, {Name: "SLO II", Y: sloII}},
	}
	tailsSVG, err := tails.SVG()
	if err != nil {
		return nil, err
	}
	return []Figure{
		{Name: "fig7a-accepted-load", SVG: accSVG},
		{Name: "fig7b-class-p99", SVG: tailsSVG},
	}, nil
}

// sanitize makes a string file-name friendly.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
