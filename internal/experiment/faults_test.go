package experiment

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tailguard/internal/core"
	"tailguard/internal/fault"
)

var updateFaultGolden = flag.Bool("update-fault-golden", false, "rewrite the fault-smoke golden with current output")

var faultTestFidelity = Fidelity{Queries: 1500, Warmup: 100, MinSamples: 10, LoadTol: 0.02, Seed: 1}

func TestFaultClassesShape(t *testing.T) {
	classes := FaultClasses(10000, 7)
	names := make([]string, 0, len(classes))
	for _, c := range classes {
		names = append(names, c.Name)
		if c.Plan == nil {
			continue
		}
		if err := c.Plan.Validate(100); err != nil {
			t.Errorf("class %s invalid: %v", c.Name, err)
		}
		if c.Plan.Seed != 7 {
			t.Errorf("class %s seed = %d, want 7", c.Name, c.Plan.Seed)
		}
	}
	want := "baseline,slowdown-10x,stall,crash,transport-drop"
	if got := strings.Join(names, ","); got != want {
		t.Errorf("classes = %s, want %s", got, want)
	}
	if classes[0].Plan.Hash() != "00000000" {
		t.Errorf("baseline hash = %s, want 00000000", classes[0].Plan.Hash())
	}
}

func TestFaultSweepShapeAndCounters(t *testing.T) {
	runs, err := FaultSweep(FaultConfig{Fidelity: faultTestFidelity})
	if err != nil {
		t.Fatalf("FaultSweep: %v", err)
	}
	specs := core.Specs()
	wantRows := 5 * (len(specs) + 1)
	if len(runs) != wantRows {
		t.Fatalf("got %d runs, want %d", len(runs), wantRows)
	}
	// Row order: per fault class, the plain specs then the resilient
	// TF-EDFQ variant.
	for i, run := range runs {
		v := i % (len(specs) + 1)
		if v < len(specs) {
			if run.Spec.Name != specs[v].Name || run.Resil.Enabled() {
				t.Errorf("run %d = %s/%s, want plain %s", i, run.Spec.Name, run.Resil.Label(), specs[v].Name)
			}
		} else if run.Spec.Name != core.TFEDFQ.Name || !run.Resil.Enabled() {
			t.Errorf("run %d = %s/%s, want resilient TF-EDFQ", i, run.Spec.Name, run.Resil.Label())
		}
	}
	byKey := map[string]*FaultRun{}
	for _, run := range runs {
		byKey[run.Class+"/"+run.Spec.Name+"/"+run.Resil.Label()] = run
	}
	// The baseline injects nothing, so nothing is lost or hedged on the
	// plain rows, and its hash is the nil-plan sentinel.
	base := byKey["baseline/"+core.TFEDFQ.Name+"/none"]
	if base == nil {
		t.Fatal("missing baseline TF-EDFQ run")
	}
	if base.Hash != "00000000" || base.Result.LostTasks != 0 || base.Result.Failed != 0 {
		t.Errorf("baseline run: hash=%s lost=%d failed=%d", base.Hash, base.Result.LostTasks, base.Result.Failed)
	}
	// The crash class must lose tasks on unprotected runs and absorb them
	// on the resilient one.
	crash := byKey["crash/"+core.TFEDFQ.Name+"/none"]
	if crash == nil || crash.Result.LostTasks == 0 {
		t.Error("crash class lost no tasks on the unprotected run")
	}
	resil := byKey["crash/"+core.TFEDFQ.Name+"/"+fault.Resilience{Hedge: true, RetryBudget: 2, DegradedAdmission: true}.Label()]
	if resil == nil {
		t.Fatal("missing resilient crash run")
	}
	if resil.Result.Retries == 0 {
		t.Error("resilient crash run spent no retries")
	}
	if resil.Result.Failed >= crash.Result.Failed && crash.Result.Failed > 0 {
		t.Errorf("resilient crash failed %d >= unprotected %d", resil.Result.Failed, crash.Result.Failed)
	}
}

// TestFaultSweepHedgingMitigatesSlowdown is the sweep-level acceptance
// check: under the 10x slowdown straggler, the mitigated TF-EDFQ run must
// beat the un-mitigated one on overall p99.
func TestFaultSweepHedgingMitigatesSlowdown(t *testing.T) {
	runs, err := FaultSweep(FaultConfig{Fidelity: faultTestFidelity})
	if err != nil {
		t.Fatalf("FaultSweep: %v", err)
	}
	var plain, resil *FaultRun
	for _, run := range runs {
		if run.Class != "slowdown-10x" || run.Spec.Name != core.TFEDFQ.Name {
			continue
		}
		if run.Resil.Enabled() {
			resil = run
		} else {
			plain = run
		}
	}
	if plain == nil || resil == nil {
		t.Fatal("missing slowdown-10x TF-EDFQ runs")
	}
	if resil.Result.HedgesIssued == 0 {
		t.Fatal("resilient slowdown run issued no hedges")
	}
	pp, err := plain.Result.Overall.P99()
	if err != nil {
		t.Fatalf("P99(plain): %v", err)
	}
	rp, err := resil.Result.Overall.P99()
	if err != nil {
		t.Fatalf("P99(resilient): %v", err)
	}
	if rp >= pp {
		t.Errorf("mitigated p99 %v not better than un-mitigated %v", rp, pp)
	}
	if resil.Violations() > plain.Violations() {
		t.Errorf("mitigated violation rate %v above un-mitigated %v", resil.Violations(), plain.Violations())
	}
	t.Logf("slowdown-10x p99: plain %.3f ms, resilient %.3f ms (%d hedges, %d wins)",
		pp, rp, resil.Result.HedgesIssued, resil.Result.HedgeWins)
}

// TestFaultSmokeGolden is the fault-smoke CI gate: a tiny seeded sweep
// whose rendered tables (headline comparison + miss-cause breakdown) must
// be byte-identical to the committed golden. Any nondeterminism in the
// fault engine, the resilience paths, or the table rendering shows up as
// a diff here. Regenerate with -update-fault-golden after intentional
// changes.
func TestFaultSmokeGolden(t *testing.T) {
	fid := Fidelity{Queries: 800, Warmup: 80, MinSamples: 5, LoadTol: 0.1, Seed: 1}
	runs, err := FaultSweep(FaultConfig{Fidelity: fid})
	if err != nil {
		t.Fatalf("FaultSweep: %v", err)
	}
	got := FaultTable(runs).String() + "\n" + FaultMissTable(runs).String() + "\n"
	path := filepath.Join("testdata", "fault_smoke_golden.txt")
	if *updateFaultGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatalf("creating testdata: %v", err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update-fault-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("fault sweep output diverged from golden %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestFaultSweepDeterministic pins the acceptance criterion that an
// identical seed and plan reproduce a bit-identical sweep, including the
// rendered tables.
func TestFaultSweepDeterministic(t *testing.T) {
	render := func() (string, string) {
		runs, err := FaultSweep(FaultConfig{Fidelity: faultTestFidelity})
		if err != nil {
			t.Fatalf("FaultSweep: %v", err)
		}
		return FaultTable(runs).String(), FaultMissTable(runs).String()
	}
	a1, b1 := render()
	a2, b2 := render()
	if a1 != a2 {
		t.Error("FaultTable output differs between identical sweeps")
	}
	if b1 != b2 {
		t.Error("FaultMissTable output differs between identical sweeps")
	}
	if !strings.Contains(a1, "transport-drop") || !strings.Contains(a1, "hedge+retry2+degrade") {
		t.Errorf("FaultTable missing expected rows:\n%s", a1)
	}
}
