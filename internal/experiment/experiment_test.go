package experiment

import (
	"errors"
	"math"
	"strings"
	"testing"

	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/workload"
)

// micro is a minimal fidelity for unit tests: enough to exercise every
// code path, far too small for publication numbers.
var micro = Fidelity{Queries: 4000, Warmup: 400, MinSamples: 30, LoadTol: 0.05, Seed: 1}

func TestFidelityValidate(t *testing.T) {
	cases := []Fidelity{
		{Queries: 0, Warmup: 0, MinSamples: 1, LoadTol: 0.01},
		{Queries: 10, Warmup: 10, MinSamples: 1, LoadTol: 0.01},
		{Queries: 10, Warmup: -1, MinSamples: 1, LoadTol: 0.01},
		{Queries: 10, Warmup: 0, MinSamples: 0, LoadTol: 0.01},
		{Queries: 10, Warmup: 0, MinSamples: 1, LoadTol: 0},
		{Queries: 10, Warmup: 0, MinSamples: 1, LoadTol: 0.6},
	}
	for i, f := range cases {
		if err := f.validate(); err == nil {
			t.Errorf("case %d: validate succeeded, want error", i)
		}
	}
	if err := Quick.validate(); err != nil {
		t.Errorf("Quick invalid: %v", err)
	}
	if err := Full.validate(); err != nil {
		t.Errorf("Full invalid: %v", err)
	}
}

func TestFidelityScaled(t *testing.T) {
	f := Fidelity{Queries: 1000, Warmup: 100, MinSamples: 10, LoadTol: 0.01}
	g := f.scaled(0.25)
	if g.Queries != 250 || g.Warmup != 25 {
		t.Errorf("scaled = %+v, want 250/25", g)
	}
	tiny := f.scaled(0.00001)
	if tiny.Queries < 1 || tiny.Warmup >= tiny.Queries {
		t.Errorf("scaled to tiny produced invalid %+v", tiny)
	}
}

func TestTableString(t *testing.T) {
	tbl := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "long_column"},
		Rows:    [][]string{{"1", "2"}, {"333333", "4"}},
	}
	s := tbl.String()
	if !strings.Contains(s, "== x: demo ==") {
		t.Errorf("missing header in %q", s)
	}
	if !strings.Contains(s, "long_column") {
		t.Errorf("missing column in %q", s)
	}
	// Header + column row + 2 data rows.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Errorf("got %d lines, want 4", len(lines))
	}
}

func TestMaxLoadSyntheticProbe(t *testing.T) {
	// True boundary at 0.42.
	probe := func(load float64) (bool, error) { return load <= 0.42, nil }
	got, err := MaxLoad(MaxLoadBounds{Lo: 0.05, Hi: 0.95}, 0.005, probe)
	if err != nil {
		t.Fatalf("MaxLoad: %v", err)
	}
	if math.Abs(got-0.42) > 0.006 {
		t.Errorf("MaxLoad = %v, want ~0.42", got)
	}
	// Lo fails -> 0.
	got, err = MaxLoad(MaxLoadBounds{Lo: 0.5, Hi: 0.9}, 0.01, probe)
	if err != nil {
		t.Fatalf("MaxLoad: %v", err)
	}
	if got != 0 {
		t.Errorf("MaxLoad with failing Lo = %v, want 0", got)
	}
	// Hi passes -> Hi.
	got, err = MaxLoad(MaxLoadBounds{Lo: 0.05, Hi: 0.3}, 0.01, probe)
	if err != nil {
		t.Fatalf("MaxLoad: %v", err)
	}
	if got != 0.3 {
		t.Errorf("MaxLoad with passing Hi = %v, want 0.3", got)
	}
	// Errors propagate.
	wantErr := errors.New("boom")
	if _, err := MaxLoad(DefaultMaxLoadBounds, 0.01, func(float64) (bool, error) { return false, wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("error not propagated: %v", err)
	}
	if _, err := MaxLoad(DefaultMaxLoadBounds, 0, probe); err == nil {
		t.Error("zero tolerance succeeded, want error")
	}
	if _, err := MaxLoad(MaxLoadBounds{Lo: 0.9, Hi: 0.1}, 0.01, probe); err == nil {
		t.Error("inverted bounds succeeded, want error")
	}
}

func TestScenarioValidation(t *testing.T) {
	w := dist.MustTailbenchWorkload("masstree")
	fan, _ := workload.NewFixed(10)
	classes, _ := workload.SingleClass(1)
	good := Scenario{
		Workload: w, Servers: 100, Spec: core.FIFO, Fanout: fan,
		Classes: classes, Load: 0.3, Fidelity: micro,
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"nil workload", func(s *Scenario) { s.Workload = nil }},
		{"no servers", func(s *Scenario) { s.Servers = 0 }},
		{"nil fanout", func(s *Scenario) { s.Fanout = nil }},
		{"nil classes", func(s *Scenario) { s.Classes = nil }},
		{"bad load", func(s *Scenario) { s.Load = 0 }},
		{"bad arrival", func(s *Scenario) { s.Arrival = "weird" }},
		{"bad admission", func(s *Scenario) { s.AdmissionWindowMs = 10; s.AdmissionThreshold = 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := good
			tc.mutate(&s)
			if _, err := s.Build(); err == nil {
				t.Error("Build succeeded, want error")
			}
		})
	}
	if _, err := good.Build(); err != nil {
		t.Errorf("good scenario failed to build: %v", err)
	}
}

func TestScenarioRunSmoke(t *testing.T) {
	w := dist.MustTailbenchWorkload("masstree")
	fan, _ := workload.NewInverseProportional(PaperFanouts)
	classes, _ := workload.SingleClass(1.4)
	for _, arrival := range []ArrivalKind{Poisson, Pareto} {
		s := Scenario{
			Workload: w, Servers: 100, Spec: core.TFEDFQ, Fanout: fan,
			Classes: classes, Arrival: arrival, Load: 0.3, Fidelity: micro,
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("%s: Run: %v", arrival, err)
		}
		if res.Completed != micro.Queries {
			t.Errorf("%s: completed %d, want %d", arrival, res.Completed, micro.Queries)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	tbl, err := Table2()
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("Table2 has %d rows, want 3", len(tbl.Rows))
	}
	// Paper values (masstree row is Raw[0] because names sort first).
	want := map[string][4]float64{
		"masstree": {0.176, 0.219, 0.247, 0.473},
		"shore":    {0.341, 2.095, 2.721, 2.829},
		"xapian":   {0.925, 2.590, 2.998, 3.308},
	}
	for i, name := range dist.TailbenchNames() {
		raw := tbl.Raw[i]
		w := want[name]
		if math.Abs(raw["Tm"]-w[0])/w[0] > 1e-6 {
			t.Errorf("%s Tm = %v, want %v", name, raw["Tm"], w[0])
		}
		for j, k := range []int{1, 10, 100} {
			key := []string{"x99(1)", "x99(10)", "x99(100)"}[j]
			if math.Abs(raw[key]-w[j+1])/w[j+1] > 1e-6 {
				t.Errorf("%s x99(%d) = %v, want %v", name, k, raw[key], w[j+1])
			}
		}
	}
}

func TestFig3Monotone(t *testing.T) {
	tbl, err := Fig3()
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	for _, name := range dist.TailbenchNames() {
		prev := -1.0
		for _, raw := range tbl.Raw {
			if raw[name] < prev {
				t.Errorf("%s quantiles not monotone", name)
			}
			prev = raw[name]
		}
	}
}

func TestFig4MicroTailGuardAtLeastFIFO(t *testing.T) {
	tbl, err := Fig4(micro, []string{"masstree"}, map[string][]float64{"masstree": {1.0}})
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("Fig4 rows = %d, want 2", len(tbl.Rows))
	}
	tg, fifo := tbl.Raw[0]["max_load"], tbl.Raw[1]["max_load"]
	if tg+2*micro.LoadTol < fifo {
		t.Errorf("TailGuard max load %v below FIFO %v", tg, fifo)
	}
	if fifo <= 0 {
		t.Errorf("FIFO max load = %v, want positive", fifo)
	}
}

func TestTable3Micro(t *testing.T) {
	tbl, err := Table3(micro, []float64{1.0})
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("Table3 rows = %d, want 2 (FIFO, TailGuard)", len(tbl.Rows))
	}
	for _, raw := range tbl.Raw {
		// At the max load the binding type (k=100) must sit near its SLO.
		if raw["p99_k100"] <= 0 {
			t.Errorf("p99_k100 = %v, want positive", raw["p99_k100"])
		}
		if raw["max_load"] <= 0 {
			t.Errorf("max_load = %v, want positive", raw["max_load"])
		}
	}
}

func TestFig5Micro(t *testing.T) {
	tbl, err := Fig5(micro, []float64{1.0}, []ArrivalKind{Poisson})
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("Fig5 rows = %d, want 4 policies", len(tbl.Rows))
	}
}

func TestFig6Micro(t *testing.T) {
	tbl, err := Fig6(micro, []string{"masstree"}, []float64{0.30, 0.50})
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("Fig6 rows = %d, want 3 policies x 2 loads", len(tbl.Rows))
	}
	// Latency grows with load for each policy.
	for i := 0; i < 6; i += 2 {
		lo, hi := tbl.Raw[i], tbl.Raw[i+1]
		if hi["p99_classI"] < lo["p99_classI"] {
			t.Errorf("row %d: p99 fell from %v to %v as load rose", i, lo["p99_classI"], hi["p99_classI"])
		}
	}
}

func TestFig7Micro(t *testing.T) {
	tbl, err := Fig7(micro, []float64{0.70})
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	raw := tbl.Raw[0]
	if raw["accepted"] > raw["offered"] {
		t.Errorf("accepted %v above offered %v", raw["accepted"], raw["offered"])
	}
	if raw["rejected"] <= 0 {
		t.Errorf("rejected = %v at 70%% offered, want positive", raw["rejected"])
	}
}

func TestClassSetForPaper(t *testing.T) {
	cs, err := classSetForPaper(1.0, 4, 2.0)
	if err != nil {
		t.Fatalf("classSetForPaper: %v", err)
	}
	if cs.Len() != 4 {
		t.Fatalf("Len = %d, want 4", cs.Len())
	}
	first, _ := cs.Class(0)
	last, _ := cs.Class(3)
	if first.SLOMs != 1.0 || math.Abs(last.SLOMs-2.0) > 1e-12 {
		t.Errorf("SLO endpoints = %v..%v, want 1..2", first.SLOMs, last.SLOMs)
	}
	if _, err := classSetForPaper(1, 0, 2); err == nil {
		t.Error("0 classes succeeded, want error")
	}
}

func TestAblationQueuesMicro(t *testing.T) {
	tbl, err := AblationQueues(micro, 0.3)
	if err != nil {
		t.Fatalf("AblationQueues: %v", err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
}

func TestAblationHeterogeneityMicro(t *testing.T) {
	tbl, err := AblationHeterogeneity(micro, 0.3)
	if err != nil {
		t.Fatalf("AblationHeterogeneity: %v", err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
}

func TestAblationAdmissionWindowMicro(t *testing.T) {
	// Windows must be well below the micro run's ~270 ms span, or the
	// control loop cannot recover within the run.
	tbl, err := AblationAdmissionWindow(micro, 0.65, []float64{20, 80})
	if err != nil {
		t.Fatalf("AblationAdmissionWindow: %v", err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", `x,"y`}, {"2", "plain"}},
	}
	got := tbl.CSV()
	want := "a,b\n1,\"x,\"\"y\"\n2,plain\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestReplicatedScenarioMaxLoad(t *testing.T) {
	w := dist.MustTailbenchWorkload("masstree")
	fan, _ := workload.NewInverseProportional(PaperFanouts)
	classes, _ := workload.SingleClass(1.0)
	s := Scenario{
		Workload: w, Servers: 100, Spec: core.TFEDFQ, Fanout: fan,
		Classes: classes, Load: 0.3, Fidelity: micro,
	}
	rep, err := ReplicatedScenarioMaxLoad(s, DefaultMaxLoadBounds, 3)
	if err != nil {
		t.Fatalf("ReplicatedScenarioMaxLoad: %v", err)
	}
	if len(rep.Values) != 3 {
		t.Fatalf("got %d replicates", len(rep.Values))
	}
	if rep.Mean <= 0 || rep.Mean > 1 {
		t.Errorf("mean = %v", rep.Mean)
	}
	if rep.StdDev < 0 {
		t.Errorf("stddev = %v", rep.StdDev)
	}
	if _, err := ReplicatedScenarioMaxLoad(s, DefaultMaxLoadBounds, 1); err == nil {
		t.Error("1 replicate succeeded, want error")
	}
}

func TestAblationDispatchMicro(t *testing.T) {
	tbl, err := AblationDispatch(micro, 0.3, 0.05)
	if err != nil {
		t.Fatalf("AblationDispatch: %v", err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	// Per-server queuing folds the dispatch leg into the measured wait.
	if tbl.Raw[1]["mean_wait"] <= tbl.Raw[0]["mean_wait"] {
		t.Errorf("per-server mean wait %v not above central %v",
			tbl.Raw[1]["mean_wait"], tbl.Raw[0]["mean_wait"])
	}
}

func TestExtFailureMicro(t *testing.T) {
	tbl, err := ExtFailure(micro, 0.4)
	if err != nil {
		t.Fatalf("ExtFailure: %v", err)
	}
	if len(tbl.Rows) != 10 {
		t.Fatalf("rows = %d, want 2 admission modes x 5 intervals", len(tbl.Rows))
	}
	// The failure interval (index 2) must show a far worse tail than the
	// first interval in the no-admission run.
	if tbl.Raw[2]["p99_ms"] < 5*tbl.Raw[0]["p99_ms"] {
		t.Errorf("failure interval p99 %v not clearly above baseline %v",
			tbl.Raw[2]["p99_ms"], tbl.Raw[0]["p99_ms"])
	}
	// With admission on, the post-failure interval sheds load.
	if tbl.Raw[8]["accepted_frac"] >= 0.95 {
		t.Errorf("post-failure accepted fraction = %v, want rejection", tbl.Raw[8]["accepted_frac"])
	}
}

func TestExtSurgeMicro(t *testing.T) {
	// Larger-than-micro run: the surge needs enough queries per interval.
	fid := Fidelity{Queries: 40000, Warmup: 1000, MinSamples: 50, LoadTol: 0.05, Seed: 2}
	tbl, err := ExtSurge(fid, 0.40, 0.5)
	if err != nil {
		t.Fatalf("ExtSurge: %v", err)
	}
	if len(tbl.Rows) != 16 {
		t.Fatalf("rows = %d, want 2 modes x 8 intervals", len(tbl.Rows))
	}
	// With admission on, the peak intervals (2-4 of 8, sin > 0) must shed
	// some load.
	var minFrac float64 = 1
	for b := 8; b < 16; b++ {
		if f := tbl.Raw[b]["accepted_frac"]; f < minFrac {
			minFrac = f
		}
	}
	if minFrac >= 0.999 {
		t.Errorf("admission never rejected during the surge (min accepted frac %v)", minFrac)
	}
}

func TestRequestExperimentMicro(t *testing.T) {
	tbl, err := RequestExperiment(micro, 3.0)
	if err != nil {
		t.Fatalf("RequestExperiment: %v", err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 2 policies x 3 strategies", len(tbl.Rows))
	}
}
