package experiment

import (
	"errors"
	"reflect"
	"testing"

	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/parallel"
	"tailguard/internal/workload"
)

// goldenFid is deliberately tiny: every generator below runs twice (once
// sequential, once on 8 workers), and only the bit-identity of the two
// outputs matters, not the quality of the numbers.
var goldenFid = Fidelity{Queries: 1200, Warmup: 120, MinSamples: 10, LoadTol: 0.1, Seed: 1}

// TestGeneratorsParallelGolden is the determinism contract of DESIGN.md §8:
// every experiment generator must produce byte-identical tables whether the
// sweep runs sequentially (Workers=1) or on a pool (Workers=8), regardless
// of how many cores the machine has.
func TestGeneratorsParallelGolden(t *testing.T) {
	wl := []string{"masstree"}
	slos := map[string][]float64{"masstree": {1.0}}
	gens := []struct {
		name string
		run  func(Fidelity) (*Table, error)
	}{
		{"fig4", func(f Fidelity) (*Table, error) { return Fig4(f, wl, slos) }},
		{"fig4r", func(f Fidelity) (*Table, error) { return Fig4Replicated(f, wl, slos, 2) }},
		{"table3", func(f Fidelity) (*Table, error) { return Table3(f, []float64{1.0}) }},
		{"fig5", func(f Fidelity) (*Table, error) { return Fig5(f, []float64{1.0}, []ArrivalKind{Poisson}) }},
		{"fig6", func(f Fidelity) (*Table, error) { return Fig6(f, wl, []float64{0.30}) }},
		{"fig7", func(f Fidelity) (*Table, error) { return Fig7(f, []float64{0.5}) }},
		{"ablation-queues", func(f Fidelity) (*Table, error) { return AblationQueues(f, 0.30) }},
		{"ablation-hetero", func(f Fidelity) (*Table, error) { return AblationHeterogeneity(f, 0.30) }},
		{"ablation-admission", func(f Fidelity) (*Table, error) { return AblationAdmissionWindow(f, 0.65, []float64{30, 100}) }},
		{"ablation-dispatch", func(f Fidelity) (*Table, error) { return AblationDispatch(f, 0.30, 0.05) }},
		{"nscale", func(f Fidelity) (*Table, error) { return NScale(f, 1.0) }},
		{"request", func(f Fidelity) (*Table, error) { return RequestExperiment(f, 3.0) }},
	}
	for _, g := range gens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			seq, par := goldenFid, goldenFid
			seq.Workers = 1
			par.Workers = 8
			ts, err := g.run(seq)
			if err != nil {
				t.Fatalf("sequential run: %v", err)
			}
			tp, err := g.run(par)
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			golden := ts.String() + "\n" + ts.CSV()
			got := tp.String() + "\n" + tp.CSV()
			if got != golden {
				t.Errorf("parallel output diverges from sequential:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", golden, got)
			}
		})
	}
}

func TestReplicatedScenarioMaxLoadParallelGolden(t *testing.T) {
	w := dist.MustTailbenchWorkload("masstree")
	fan, _ := workload.NewInverseProportional(PaperFanouts)
	classes, _ := workload.SingleClass(1.0)
	s := Scenario{
		Workload: w, Servers: 100, Spec: core.TFEDFQ, Fanout: fan,
		Classes: classes, Load: 0.3, Fidelity: goldenFid,
	}
	s.Fidelity.Workers = 1
	seq, err := ReplicatedScenarioMaxLoad(s, DefaultMaxLoadBounds, 3)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	s.Fidelity.Workers = 8
	par, err := ReplicatedScenarioMaxLoad(s, DefaultMaxLoadBounds, 3)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("replicated result diverges:\nworkers=1: %+v\nworkers=8: %+v", seq, par)
	}
}

// TestSpeculativeMaxLoadMatchesSequential checks that speculative bisection
// returns the exact float MaxLoad returns, for any pure probe, across pool
// widths, boundaries, and tolerances.
func TestSpeculativeMaxLoadMatchesSequential(t *testing.T) {
	bounds := MaxLoadBounds{Lo: 0.05, Hi: 0.95}
	for _, boundary := range []float64{0.04, 0.13, 0.42, 0.77, 0.96} {
		probe := func(load float64) (bool, error) { return load <= boundary, nil }
		for _, tol := range []float64{0.1, 0.01, 0.003} {
			want, err := MaxLoad(bounds, tol, probe)
			if err != nil {
				t.Fatalf("MaxLoad(boundary=%v tol=%v): %v", boundary, tol, err)
			}
			for _, workers := range []int{1, 2, 3, 4, 8, 16} {
				got, err := SpeculativeMaxLoad(parallel.NewPool(workers), bounds, tol, probe)
				if err != nil {
					t.Fatalf("SpeculativeMaxLoad(workers=%d): %v", workers, err)
				}
				if got != want {
					t.Errorf("boundary=%v tol=%v workers=%d: speculative=%v sequential=%v",
						boundary, tol, workers, got, want)
				}
			}
		}
	}
}

func TestSpeculativeMaxLoadPropagatesErrors(t *testing.T) {
	wantErr := errors.New("probe failed")
	probe := func(load float64) (bool, error) {
		if load > 0.4 {
			return false, wantErr
		}
		return true, nil
	}
	// The error sits on the resolved bisection path, so it must surface
	// no matter how many probes ran speculatively.
	for _, workers := range []int{1, 4, 8} {
		_, err := SpeculativeMaxLoad(parallel.NewPool(workers), MaxLoadBounds{Lo: 0.05, Hi: 0.95}, 0.01, probe)
		if !errors.Is(err, wantErr) {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, wantErr)
		}
	}
	if _, err := SpeculativeMaxLoad(parallel.NewPool(8), MaxLoadBounds{Lo: 0.9, Hi: 0.1}, 0.01, probe); err == nil {
		t.Error("inverted bounds succeeded, want error")
	}
	if _, err := SpeculativeMaxLoad(parallel.NewPool(8), MaxLoadBounds{Lo: 0.05, Hi: 0.95}, 0, probe); err == nil {
		t.Error("zero tolerance succeeded, want error")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	r := summarize(nil)
	if r.Mean != 0 || r.StdDev != 0 || r.Values != nil {
		t.Errorf("summarize(nil) = %+v, want zero value (not NaN)", r)
	}
}
