package experiment

import (
	"fmt"

	"tailguard/internal/cluster"
	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/metrics"
	"tailguard/internal/obs"
	"tailguard/internal/workload"
)

// ObsConfig parameterizes one instrumented diagnostic sweep: every policy
// runs the same two-class mixed-fanout scenario at a fixed load with the
// full obs plane attached (lifecycle tracer, miss attribution, metrics
// registry).
type ObsConfig struct {
	// Workload names the Tailbench service-time model (default "masstree").
	Workload string
	// Load is the offered load for every policy (default 0.6 — high
	// enough that the weaker policies miss deadlines, so the attribution
	// has something to explain).
	Load float64
	// RingCap bounds the lifecycle event ring; the trace keeps the newest
	// RingCap events (default 65536).
	RingCap int
	// Specs lists the policies to run (default core.Specs()).
	Specs    []core.Spec
	Fidelity Fidelity
}

func (c *ObsConfig) setDefaults() {
	if c.Workload == "" {
		c.Workload = "masstree"
	}
	if c.Load == 0 {
		c.Load = 0.6
	}
	if c.RingCap == 0 {
		c.RingCap = 1 << 16
	}
	if c.Specs == nil {
		c.Specs = core.Specs()
	}
}

// ObsRun is one policy's fully instrumented simulation: the standard
// result plus the deadline-miss attribution report, the tail of the
// lifecycle event stream, and a filled metrics registry.
type ObsRun struct {
	Spec   core.Spec
	Result *cluster.Result
	// Report decomposes deadline misses into queueing- vs
	// service-dominated causes per class, with straggler identity.
	Report *obs.Attribution
	// Events is the lifecycle ring's snapshot (oldest first); when the run
	// emits more than RingCap events only the newest survive, and Dropped
	// counts the overflow.
	Events  []obs.Event
	Dropped uint64
	// Registry holds the tg_sim_* metric families for this run.
	Registry *obs.Registry
}

// diagnosticScenario is the shared diagnostic setup used by the obs and
// fault sweeps: N=100, mixed fanouts 1/10/100, two classes with a 1.5x
// SLO spread (the Fig. 4 mid-grid SLO as the tight class), chosen so all
// four policies differentiate.
func diagnosticScenario(workloadName string, load float64, spec core.Spec, fid Fidelity) (Scenario, error) {
	w, err := dist.TailbenchWorkload(workloadName)
	if err != nil {
		return Scenario{}, err
	}
	fan, err := workload.NewInverseProportional(PaperFanouts)
	if err != nil {
		return Scenario{}, err
	}
	slos, ok := Fig4SLOs[workloadName]
	if !ok {
		return Scenario{}, fmt.Errorf("experiment: no SLO grid for %q", workloadName)
	}
	classes, err := workload.TwoClasses(slos[1], 1.5)
	if err != nil {
		return Scenario{}, err
	}
	return Scenario{
		Workload: w,
		Servers:  100,
		Spec:     spec,
		Fanout:   fan,
		Classes:  classes,
		Load:     load,
		Fidelity: fid,
	}, nil
}

// obsScenario adapts the shared diagnostic setup to an ObsConfig.
func obsScenario(cfg ObsConfig, spec core.Spec) (Scenario, error) {
	return diagnosticScenario(cfg.Workload, cfg.Load, spec, cfg.Fidelity)
}

// ObsSweep runs every policy with the obs plane attached and returns one
// ObsRun per policy, in cfg.Specs order. Runs are sequential — each reuses
// nothing from the previous one, and a fixed seed makes the whole sweep
// (events, report, registry) bit-identical across invocations.
func ObsSweep(cfg ObsConfig) ([]*ObsRun, error) {
	cfg.setDefaults()
	if err := cfg.Fidelity.validate(); err != nil {
		return nil, err
	}
	runs := make([]*ObsRun, 0, len(cfg.Specs))
	for _, spec := range cfg.Specs {
		sc, err := obsScenario(cfg, spec)
		if err != nil {
			return nil, err
		}
		ccfg, err := sc.Build()
		if err != nil {
			return nil, err
		}
		ring, err := obs.NewRing(cfg.RingCap)
		if err != nil {
			return nil, err
		}
		attrib := obs.NewAttributor()
		ccfg.Obs = obs.NewTracer(obs.TracerConfig{Sink: ring})
		ccfg.Attribution = attrib
		res, err := cluster.Run(ccfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: obs run %s: %w", spec.Name, err)
		}
		reg := obs.NewRegistry()
		rep := attrib.Report()
		if err := fillObsRegistry(reg, res, rep); err != nil {
			return nil, fmt.Errorf("experiment: obs run %s: %w", spec.Name, err)
		}
		runs = append(runs, &ObsRun{
			Spec:     spec,
			Result:   res,
			Report:   rep,
			Events:   ring.Snapshot(nil),
			Dropped:  ring.Dropped(),
			Registry: reg,
		})
	}
	return runs, nil
}

// fillObsRegistry translates one finished run into tg_sim_* families.
func fillObsRegistry(reg *obs.Registry, res *cluster.Result, rep *obs.Attribution) error {
	rejected, err := reg.Counter("tg_sim_rejected_total", "Queries refused by admission control.", "")
	if err != nil {
		return err
	}
	rejected.Add(uint64(res.Rejected))
	util, err := reg.Gauge("tg_sim_utilization", "Achieved cluster load (busy time / capacity).", "")
	if err != nil {
		return err
	}
	util.Set(res.Utilization)
	taskMiss, err := reg.Gauge("tg_sim_task_miss_ratio", "Fraction of tasks dequeued after their queuing deadline.", "")
	if err != nil {
		return err
	}
	taskMiss.Set(res.TaskMissRatio)

	for _, c := range rep.ByClass {
		labels, err := obs.Labels("class", fmt.Sprint(c.Class))
		if err != nil {
			return err
		}
		for _, fam := range []struct {
			name, help string
			v          int
		}{
			{"tg_sim_queries_total", "Completed queries per class (post-warmup).", c.Queries},
			{"tg_sim_query_slo_miss_total", "Queries finishing past their class SLO.", c.Misses},
			{"tg_sim_miss_queue_dominated_total", "SLO misses where the straggler's queueing wait dominated.", c.QueueDominated},
			{"tg_sim_miss_service_dominated_total", "SLO misses where the straggler's service time dominated.", c.ServiceDominated},
		} {
			ctr, err := reg.Counter(fam.name, fam.help, labels)
			if err != nil {
				return err
			}
			ctr.Add(uint64(fam.v))
		}
		slack, err := reg.Gauge("tg_sim_slack_p1_ms", "1st-percentile SLO slack (negative = miss depth).", labels)
		if err != nil {
			return err
		}
		slack.Set(c.SlackP1Ms)
	}

	type sampled struct {
		name, help string
		rec        interface{ Samples() []float64 }
		labels     string
	}
	fams := []sampled{
		{"tg_sim_task_wait_ms", "Task pre-dequeuing wait t_pr (post-warmup).", res.TaskWait, ""},
	}
	for _, class := range metrics.IntKeys(res.ByClass) {
		labels, err := obs.Labels("class", fmt.Sprint(class))
		if err != nil {
			return err
		}
		fams = append(fams, sampled{
			"tg_sim_query_latency_ms", "Query latency per class (post-warmup).",
			res.ByClass.Recorder(class), labels,
		})
	}
	for _, f := range fams {
		sum, err := reg.Summary(f.name, f.help, f.labels)
		if err != nil {
			return err
		}
		for _, v := range f.rec.Samples() {
			if err := sum.Observe(v); err != nil {
				return err
			}
		}
	}
	return nil
}

// ObsTable renders the sweep's miss-cause breakdown: one row per
// (policy, class) with the queueing/service decomposition and slack tail.
func ObsTable(runs []*ObsRun) *Table {
	t := &Table{
		ID:    "obs",
		Title: "Deadline-miss attribution per policy and class (queue- vs service-dominated)",
		Columns: []string{
			"policy", "class", "queries", "misses", "miss_pct",
			"queue_dom", "service_dom", "mean_q_ms", "mean_s_ms",
			"slack_p1_ms", "slack_p50_ms",
		},
	}
	for _, run := range runs {
		for _, c := range run.Report.ByClass {
			missPct := 0.0
			if c.Queries > 0 {
				missPct = float64(c.Misses) / float64(c.Queries)
			}
			t.Rows = append(t.Rows, []string{
				run.Spec.Name,
				fmt.Sprint(c.Class),
				fmt.Sprint(c.Queries),
				fmt.Sprint(c.Misses),
				pct(missPct),
				fmt.Sprint(c.QueueDominated),
				fmt.Sprint(c.ServiceDominated),
				f2(c.MeanMissQueueMs),
				f2(c.MeanMissServeMs),
				f2(c.SlackP1Ms),
				f2(c.SlackP50Ms),
			})
			t.Raw = append(t.Raw, map[string]float64{
				"class":        float64(c.Class),
				"queries":      float64(c.Queries),
				"misses":       float64(c.Misses),
				"miss_pct":     missPct,
				"queue_dom":    float64(c.QueueDominated),
				"service_dom":  float64(c.ServiceDominated),
				"slack_p1_ms":  c.SlackP1Ms,
				"slack_p50_ms": c.SlackP50Ms,
			})
		}
	}
	return t
}
