package experiment

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateControlGolden = flag.Bool("update-control-golden", false, "rewrite the control-smoke golden with current output")

var controlTestFidelity = Fidelity{Queries: 1200, Warmup: 100, MinSamples: 5, LoadTol: 0.1, Seed: 1}

func TestControlSweepShape(t *testing.T) {
	runs, err := ControlSweep(ControlConfig{Fidelity: controlTestFidelity})
	if err != nil {
		t.Fatalf("ControlSweep: %v", err)
	}
	if len(runs) != 2*len(ControlScenarios) {
		t.Fatalf("got %d runs, want %d", len(runs), 2*len(ControlScenarios))
	}
	for i, run := range runs {
		wantScenario := ControlScenarios[i/2]
		wantVariant := Uncontrolled
		if i%2 == 1 {
			wantVariant = Controlled
		}
		if run.Scenario != wantScenario || run.Variant != wantVariant {
			t.Errorf("run %d = %s/%s, want %s/%s", i, run.Scenario, run.Variant, wantScenario, wantVariant)
		}
		if (run.Variant == Controlled) != (run.Ctl != nil) {
			t.Errorf("run %d (%s): controller presence does not match variant", i, run.Variant)
		}
		if (run.Variant == Controlled) != (run.Registry != nil) {
			t.Errorf("run %d (%s): registry presence does not match variant", i, run.Variant)
		}
		if run.Report == nil {
			t.Errorf("run %d: missing attribution report", i)
		}
	}
}

// TestControlHoldsSLO pins the pack's headline claim on the flash-sale
// scenario: the uncontrolled run collapses during the crowd (most
// queries in the peak window blow the SLO) while the controlled run's
// loops — shed, throttle, backpressure, autoscale — hold the windowed
// miss ratio near the admission target Rth.
func TestControlHoldsSLO(t *testing.T) {
	runs, err := ControlSweep(ControlConfig{Fidelity: controlTestFidelity, Scenarios: []string{"flashsale"}})
	if err != nil {
		t.Fatalf("ControlSweep: %v", err)
	}
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(runs))
	}
	un, ctl := runs[0], runs[1]
	unPeak, ctlPeak := un.PeakWindowMiss(10), ctl.PeakWindowMiss(10)
	if unPeak < 0.5 {
		t.Errorf("uncontrolled peak-window miss = %.3f, want a collapse (>= 0.5)", unPeak)
	}
	if ctlPeak >= unPeak/2 {
		t.Errorf("controlled peak-window miss %.3f not well below uncontrolled %.3f", ctlPeak, unPeak)
	}
	// Overall violation rate should sit near Rth = 0.05, not at the
	// uncontrolled collapse level.
	if v := ctl.Violations(); v > 0.10 {
		t.Errorf("controlled violation rate %.3f, want near Rth 0.05 (<= 0.10)", v)
	}
	if v, uv := ctl.Violations(), un.Violations(); v >= uv/2 {
		t.Errorf("controlled violation rate %.3f not well below uncontrolled %.3f", v, uv)
	}
	// Every loop must have actuated: admission scale shed, the generator
	// hit the credit gate, the class bucket throttled, and the autoscaler
	// both shrank the quiet phase and added servers under the crowd.
	res := ctl.Result
	if res.Throttled == 0 {
		t.Error("controlled run throttled nothing")
	}
	if res.CreditDeferred == 0 {
		t.Error("controlled run never hit the credit gate")
	}
	if res.ControlTicks == 0 {
		t.Error("controller never ticked")
	}
	d := ctl.Ctl.Decisions()
	if len(d) == 0 {
		t.Fatal("no decisions recorded")
	}
	sMin, adds, aMin := 1.0, 0, ctl.Ctl.Config().MaxServers
	for _, dec := range d {
		if dec.Scale < sMin {
			sMin = dec.Scale
		}
		if dec.Added >= 0 {
			adds++
		}
		if dec.Active < aMin {
			aMin = dec.Active
		}
	}
	if sMin >= 1 {
		t.Error("admission scale never shed")
	}
	if adds == 0 {
		t.Error("autoscaler never added a server under the crowd")
	}
	if aMin >= controlActive {
		t.Errorf("autoscaler never scaled down below the initial %d active", controlActive)
	}
	// The registry carries the closed-loop readings for export.
	var sb strings.Builder
	if err := ctl.Registry.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, name := range []string{
		"tg_sim_admission_threshold_scale",
		"tg_sim_control_credits",
		"tg_sim_control_active_servers",
	} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("registry missing %s", name)
		}
	}
}

// TestControlSweepDeterministic runs the sweep twice at the same seed and
// requires bit-identical results and decision traces — the control loops
// must be driven purely by the simulated clock and seeded randomness.
func TestControlSweepDeterministic(t *testing.T) {
	cfg := ControlConfig{Fidelity: controlTestFidelity, Scenarios: []string{"flashsale"}}
	a, err := ControlSweep(cfg)
	if err != nil {
		t.Fatalf("sweep A: %v", err)
	}
	b, err := ControlSweep(cfg)
	if err != nil {
		t.Fatalf("sweep B: %v", err)
	}
	for i := range a {
		if err := a[i].Result.Equal(b[i].Result); err != nil {
			t.Errorf("run %d (%s/%s) diverges: %v", i, a[i].Scenario, a[i].Variant, err)
		}
		if a[i].Ctl == nil {
			continue
		}
		da, db := a[i].Ctl.Decisions(), b[i].Ctl.Decisions()
		if len(da) != len(db) {
			t.Fatalf("run %d: %d decisions vs %d", i, len(da), len(db))
		}
		for j := range da {
			if da[j] != db[j] {
				t.Fatalf("run %d decision %d diverges: %+v vs %+v", i, j, da[j], db[j])
			}
		}
	}
	if ta, tb := ControlTable(a).String(), ControlTable(b).String(); ta != tb {
		t.Errorf("rendered tables differ:\n--- A ---\n%s\n--- B ---\n%s", ta, tb)
	}
}

// TestControlSmokeGolden is the control-smoke CI gate: the full sweep's
// rendered table must be byte-identical to the committed golden. Any
// nondeterminism in the controller, the credit gate, the arrival curves,
// or the cluster wiring shows up as a diff here. Regenerate with
// -update-control-golden after intentional changes.
func TestControlSmokeGolden(t *testing.T) {
	runs, err := ControlSweep(ControlConfig{Fidelity: controlTestFidelity})
	if err != nil {
		t.Fatalf("ControlSweep: %v", err)
	}
	got := ControlTable(runs).String() + "\n"
	path := filepath.Join("testdata", "control_smoke_golden.txt")
	if *updateControlGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatalf("creating testdata: %v", err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update-control-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("control sweep output diverged from golden %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
