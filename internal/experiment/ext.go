package experiment

import (
	"fmt"

	"tailguard/internal/cluster"
	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/parallel"
	"tailguard/internal/policy"
	"tailguard/internal/request"
	"tailguard/internal/workload"
)

// NScale reproduces the Section IV.D note: cluster size N=1000 with four
// service classes (results stated as "consistent" in the paper, not
// plotted). Fanouts 1/10/100/1000 with P ∝ 1/kf; class SLOs spaced from
// baseSLO to 2x baseSLO.
func NScale(fid Fidelity, baseSLOMs float64) (*Table, error) {
	if baseSLOMs <= 0 {
		baseSLOMs = 1.0
	}
	w, err := dist.TailbenchWorkload("masstree")
	if err != nil {
		return nil, err
	}
	fan, err := workload.NewInverseProportional([]int{1, 10, 100, 1000})
	if err != nil {
		return nil, err
	}
	classes, err := classSetForPaper(baseSLOMs, 4, 2.0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "nscale",
		Title:   "Max load at N=1000, 4 classes, fanouts 1/10/100/1000 (Masstree)",
		Columns: []string{"policy", "max_load"},
	}
	// Rare fanout-1000 queries need more data per probe; the per-type
	// minimum is relaxed accordingly.
	f := fid.scaled(2)
	f.MinSamples = fid.MinSamples / 4
	if f.MinSamples < 20 {
		f.MinSamples = 20
	}
	specs := core.Specs()
	inner := fid.innerWorkers(len(specs))
	loads, err := parallel.Map(fid.pool(), len(specs), func(i int) (float64, error) {
		s := Scenario{
			Workload: w,
			Servers:  1000,
			Spec:     specs[i],
			Fanout:   fan,
			Classes:  classes,
			Load:     0.3,
			Fidelity: f,
		}
		s.Fidelity.Workers = inner
		ml, err := ScenarioMaxLoad(s, DefaultMaxLoadBounds)
		if err != nil {
			return 0, fmt.Errorf("nscale %s: %w", specs[i].Name, err)
		}
		return ml, nil
	})
	if err != nil {
		return nil, err
	}
	for i, spec := range specs {
		t.Rows = append(t.Rows, []string{spec.Name, pct(loads[i])})
		t.Raw = append(t.Raw, map[string]float64{"max_load": loads[i]})
	}
	return t, nil
}

// RequestExperiment exercises the request-level decomposition extension
// (Section III.B remark): for each budget-assignment strategy, the maximum
// load at which a 3-query request (fanouts 1/10/100) meets its request
// tail-latency SLO, under TailGuard and FIFO.
func RequestExperiment(fid Fidelity, sloMs float64) (*Table, error) {
	if sloMs <= 0 {
		sloMs = 3.0
	}
	w, err := dist.TailbenchWorkload("masstree")
	if err != nil {
		return nil, err
	}
	plan := request.Plan{Fanouts: []int{1, 10, 100}, SLOMs: sloMs, Percentile: 0.99}
	t := &Table{
		ID:      "request",
		Title:   fmt.Sprintf("Request-level budgets: max load meeting the %.1f ms request SLO (3 sequential queries, fanouts 1/10/100)", sloMs),
		Columns: []string{"policy", "strategy", "max_load"},
	}
	// Requests carry 111 tasks each; scale counts like the OLDI runs.
	requests := fid.Queries / 8
	warmup := fid.Warmup / 8
	if requests < 200 {
		requests = 200
	}
	if warmup >= requests {
		warmup = requests / 10
	}
	type cell struct {
		spec  core.Spec
		strat request.Strategy
	}
	var cells []cell
	for _, spec := range []core.Spec{core.TFEDFQ, core.FIFO} {
		for _, strat := range request.Strategies() {
			cells = append(cells, cell{spec: spec, strat: strat})
		}
	}
	pool := fid.pool()
	innerPool := parallel.NewPool(fid.innerWorkers(len(cells)))
	loads, err := parallel.Map(pool, len(cells), func(i int) (float64, error) {
		c := cells[i]
		ml, err := SpeculativeMaxLoad(innerPool, DefaultMaxLoadBounds, fid.LoadTol, func(load float64) (bool, error) {
			res, err := request.Run(request.RunConfig{
				Plan:          plan,
				Servers:       100,
				Spec:          c.spec,
				Service:       w.ServiceTime,
				Strategy:      c.strat,
				Load:          load,
				Requests:      requests,
				Warmup:        warmup,
				Seed:          fid.Seed,
				BudgetSamples: 100000,
			})
			if err != nil {
				return false, err
			}
			return res.MeetsSLO, nil
		})
		if err != nil {
			return 0, fmt.Errorf("request %s/%s: %w", c.spec.Name, c.strat.Name(), err)
		}
		return ml, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.Rows = append(t.Rows, []string{c.spec.Name, c.strat.Name(), pct(loads[i])})
		t.Raw = append(t.Raw, map[string]float64{"max_load": loads[i]})
	}
	return t, nil
}

// AblationQueues compares queue disciplines under identical TailGuard
// deadlines at a fixed load: EDF (TailGuard), FIFO, LIFO and SJF, reporting
// the per-fanout p99. It isolates the contribution of deadline *ordering*
// from deadline *computation*.
func AblationQueues(fid Fidelity, load float64) (*Table, error) {
	if load <= 0 {
		load = 0.30
	}
	specs := []core.Spec{
		core.TFEDFQ,
		{Name: "FIFO+deadline", Queue: policy.FIFO, Deadline: core.DeadlineSLOFanout},
		{Name: "LIFO+deadline", Queue: policy.LIFO, Deadline: core.DeadlineSLOFanout},
		{Name: "SJF+deadline", Queue: policy.SJF, Deadline: core.DeadlineSLOFanout},
	}
	t := &Table{
		ID:      "ablation-queues",
		Title:   fmt.Sprintf("Queue-discipline ablation at %.0f%% load (Masstree, single class 0.8 ms)", load*100),
		Columns: []string{"queue", "p99_k1", "p99_k10", "p99_k100", "miss_ratio"},
	}
	type specResult struct {
		p99  [3]float64
		miss float64
	}
	results, err := parallel.Map(fid.pool(), len(specs), func(i int) (specResult, error) {
		spec := specs[i]
		var out specResult
		s, err := singleClassScenario("masstree", spec, 0.8, fid)
		if err != nil {
			return out, err
		}
		s.Load = load
		res, err := s.Run()
		if err != nil {
			return out, fmt.Errorf("ablation-queues %s: %w", spec.Name, err)
		}
		out.miss = res.TaskMissRatio
		for ki, k := range PaperFanouts {
			rec := res.ByFanout.Recorder(k)
			if rec == nil {
				return out, fmt.Errorf("ablation-queues: no fanout-%d samples", k)
			}
			p99, err := rec.P99()
			if err != nil {
				return out, err
			}
			out.p99[ki] = p99
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for i, spec := range specs {
		r := results[i]
		row := []string{spec.Name}
		raw := map[string]float64{"miss_ratio": r.miss}
		for ki, k := range PaperFanouts {
			row = append(row, f3(r.p99[ki]))
			raw[fmt.Sprintf("p99_k%d", k)] = r.p99[ki]
		}
		row = append(row, pct(r.miss))
		t.Rows = append(t.Rows, row)
		t.Raw = append(t.Raw, raw)
	}
	return t, nil
}

// AblationHeterogeneity compares three estimator configurations on a
// heterogeneous cluster (half the servers 2x slower): (a) a homogeneous
// estimator wrongly assuming every server is fast, (b) an oracle static
// per-server estimator, and (c) an online-updating estimator seeded with
// the wrong homogeneous model. The measured effect is a consistent but
// modest (~4-8%) fanout-100 tail improvement from accurate per-server
// CDFs, with the online-updated estimator recovering most of the oracle's
// advantage — evidence for the paper's claim that a rough offline
// estimate plus online updating suffices: EDF ordering depends only on
// relative deadlines, so uniform miscalibration largely cancels.
func AblationHeterogeneity(fid Fidelity, load float64) (*Table, error) {
	if load <= 0 {
		load = 0.30
	}
	w, err := dist.TailbenchWorkload("masstree")
	if err != nil {
		return nil, err
	}
	const n = 100
	slow, err := dist.NewScaled(w.ServiceTime, 2)
	if err != nil {
		return nil, err
	}
	perServer := make([]dist.Distribution, n)
	for i := range perServer {
		if i%2 == 0 {
			perServer[i] = w.ServiceTime
		} else {
			perServer[i] = slow
		}
	}
	classes, err := workload.SingleClass(1.6)
	if err != nil {
		return nil, err
	}
	fan, err := workload.NewInverseProportional(PaperFanouts)
	if err != nil {
		return nil, err
	}
	meanSvc := (w.ServiceTime.Mean() + slow.Mean()) / 2
	rate, err := workload.RateForLoad(load, n, fan.MeanTasks(), meanSvc)
	if err != nil {
		return nil, err
	}

	type mode struct {
		name      string
		estimator *core.TailEstimator
		online    bool
		hetero    bool
	}
	wrong, err := core.NewHomogeneousStaticTailEstimator(w.ServiceTime, n)
	if err != nil {
		return nil, err
	}
	oracle, err := core.NewStaticTailEstimator(perServer)
	if err != nil {
		return nil, err
	}
	learned, err := core.NewTailEstimator(n, w.ServiceTime, 2000, 4000)
	if err != nil {
		return nil, err
	}
	modes := []mode{
		{name: "homogeneous-wrong", estimator: wrong},
		{name: "oracle-per-server", estimator: oracle, hetero: true},
		{name: "online-learned", estimator: learned, online: true, hetero: true},
	}

	t := &Table{
		ID:      "ablation-hetero",
		Title:   fmt.Sprintf("Estimator ablation on a half-slow cluster at %.0f%% load (Masstree, SLO 1.6 ms)", load*100),
		Columns: []string{"estimator", "p99_overall", "p99_k100", "slo_met"},
	}
	type modeResult struct {
		overall, k100 float64
		met           bool
	}
	// Each mode owns its estimator (the online one is mutated by its
	// run), so the three runs are independent and fan out cleanly.
	results, err := parallel.Map(fid.pool(), len(modes), func(i int) (modeResult, error) {
		m := modes[i]
		var out modeResult
		arr, err := workload.NewPoisson(rate)
		if err != nil {
			return out, err
		}
		gen, err := workload.NewGenerator(workload.GeneratorConfig{
			Servers: n, Arrival: arr, Fanout: fan, Classes: classes,
		}, fid.Seed)
		if err != nil {
			return out, err
		}
		dl, err := core.NewDeadliner(core.TFEDFQ, m.estimator, classes)
		if err != nil {
			return out, err
		}
		cfg := cluster.Config{
			Servers:                n,
			Spec:                   core.TFEDFQ,
			ServiceTimes:           perServer,
			Generator:              gen,
			Classes:                classes,
			Deadliner:              dl,
			Queries:                fid.Queries,
			Warmup:                 fid.Warmup,
			Seed:                   fid.Seed + 1,
			HeterogeneousDeadlines: m.hetero,
		}
		if m.online {
			cfg.Estimator = m.estimator
		}
		res, err := cluster.Run(cfg)
		if err != nil {
			return out, fmt.Errorf("ablation-hetero %s: %w", m.name, err)
		}
		out.overall, err = res.Overall.P99()
		if err != nil {
			return out, err
		}
		rec := res.ByFanout.Recorder(100)
		if rec == nil {
			return out, fmt.Errorf("ablation-hetero: no fanout-100 samples")
		}
		out.k100, err = rec.P99()
		if err != nil {
			return out, err
		}
		out.met, _, err = res.MeetsSLOs(classes, fid.MinSamples)
		if err != nil {
			return out, err
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for i, m := range modes {
		r := results[i]
		met := "no"
		metRaw := 0.0
		if r.met {
			met, metRaw = "yes", 1
		}
		t.Rows = append(t.Rows, []string{m.name, f3(r.overall), f3(r.k100), met})
		t.Raw = append(t.Raw, map[string]float64{"p99_overall": r.overall, "p99_k100": r.k100, "slo_met": metRaw})
	}
	return t, nil
}

// ExtSurge drives the Masstree OLDI workload with a sinusoidal load swing
// whose peak exceeds the maximum acceptable load (base 40%, amplitude
// +/-50% -> peak ~60% against a ~55% envelope), comparing TailGuard with
// and without admission control — the paper's "sudden surges of
// workloads" motivation, made visible on a timeline of run-eighths.
// Expected shape: without admission, intervals around the peak violate
// the class-I SLO; with admission, rejection concentrates in the peak
// intervals and the accepted queries' tails stay near the SLO.
func ExtSurge(fid Fidelity, baseLoad, amplitude float64) (*Table, error) {
	if baseLoad <= 0 {
		baseLoad = 0.40
	}
	if amplitude <= 0 {
		amplitude = 0.5
	}
	w, err := dist.TailbenchWorkload("masstree")
	if err != nil {
		return nil, err
	}
	const n = 100
	fan, err := workload.NewFixed(n)
	if err != nil {
		return nil, err
	}
	classes, err := workload.SingleClass(1.0)
	if err != nil {
		return nil, err
	}
	f := fid.scaled(0.25) // fanout-100 queries
	rate, err := workload.RateForLoad(baseLoad, n, fan.MeanTasks(), w.ServiceTime.Mean())
	if err != nil {
		return nil, err
	}
	duration := float64(f.Queries) / rate
	const buckets = 8
	bucket := duration / buckets

	t := &Table{
		ID: "ext-surge",
		Title: fmt.Sprintf("Sinusoidal surge (base %.0f%%, amplitude ±%.0f%%, one period per run) on Masstree OLDI: per-interval accepted fraction and p99 (SLO 1.0 ms)",
			baseLoad*100, amplitude*100),
		Columns: []string{"admission", "interval", "accepted_frac", "p99_ms"},
	}
	for _, withAdmission := range []bool{false, true} {
		arr, err := workload.NewSinusoidal(rate, amplitude, duration)
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewGenerator(workload.GeneratorConfig{
			Servers: n, Arrival: arr, Fanout: fan, Classes: classes,
		}, f.Seed)
		if err != nil {
			return nil, err
		}
		est, err := core.NewHomogeneousStaticTailEstimator(w.ServiceTime, n)
		if err != nil {
			return nil, err
		}
		dl, err := core.NewDeadliner(core.TFEDFQ, est, classes)
		if err != nil {
			return nil, err
		}
		cfg := cluster.Config{
			Servers:          n,
			Spec:             core.TFEDFQ,
			ServiceTimes:     []dist.Distribution{w.ServiceTime},
			Generator:        gen,
			Classes:          classes,
			Deadliner:        dl,
			Queries:          f.Queries,
			Warmup:           0,
			Seed:             f.Seed + 1,
			TimelineBucketMs: bucket,
		}
		label := "off"
		if withAdmission {
			adm, err := core.NewAdmissionController(bucket/2, 0.009)
			if err != nil {
				return nil, err
			}
			cfg.Admission = adm
			label = "on"
		}
		res, err := cluster.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("ext-surge admission=%s: %w", label, err)
		}
		for b := 0; b < buckets; b++ {
			adm := res.TimelineAdmitted[b]
			rej := res.TimelineRejected[b]
			frac := 1.0
			if adm+rej > 0 {
				frac = float64(adm) / float64(adm+rej)
			}
			p99 := 0.0
			if rec := res.Timeline.Recorder(b); rec != nil && rec.Count() >= f.MinSamples/4 {
				p99, err = rec.P99()
				if err != nil {
					return nil, err
				}
			}
			t.Rows = append(t.Rows, []string{label, fmt.Sprintf("%d/%d", b+1, buckets), pct(frac), f3(p99)})
			t.Raw = append(t.Raw, map[string]float64{
				"interval": float64(b), "accepted_frac": frac, "p99_ms": p99,
			})
		}
	}
	return t, nil
}

// ExtFailure injects a capacity-loss window (20% of servers down for the
// middle fifth of the run) into the Masstree mixed-fanout workload at
// moderate load, comparing TailGuard with and without admission control —
// the paper's Section III.C motivation ("hardware/software failures").
// The table is a timeline: per run-fifth, the accepted fraction and the
// p99 of queries arriving in that interval.
//
// Expected shape (an honest limitation of the paper's mechanism that this
// experiment makes visible): queries already dispatched to dead servers
// wait out the outage regardless of admission — and because the miss
// signal is observed at *dequeue*, a total outage produces no signal until
// recovery. Admission therefore reacts in the interval after the failure,
// shedding load hard to drain the backlog, and restores afterwards.
// Mitigating the in-outage tail itself requires redundant task issue or
// re-dispatch (the paper's "outlier alleviation" category, out of scope).
func ExtFailure(fid Fidelity, load float64) (*Table, error) {
	if load <= 0 {
		load = 0.40
	}
	w, err := dist.TailbenchWorkload("masstree")
	if err != nil {
		return nil, err
	}
	const n = 100
	fan, err := workload.NewInverseProportional(PaperFanouts)
	if err != nil {
		return nil, err
	}
	classes, err := workload.SingleClass(1.0)
	if err != nil {
		return nil, err
	}
	rate, err := workload.RateForLoad(load, n, fan.MeanTasks(), w.ServiceTime.Mean())
	if err != nil {
		return nil, err
	}
	// Run geometry: expected duration and the failure window inside it.
	duration := float64(fid.Queries) / rate
	bucket := duration / 5
	failStart, failEnd := 2*bucket, 3*bucket
	var failures []cluster.Failure
	for s := 0; s < n/5; s++ {
		failures = append(failures, cluster.Failure{Server: s, Start: failStart, End: failEnd})
	}

	t := &Table{
		ID: "ext-failure",
		Title: fmt.Sprintf("20%% of servers down during interval 3/5 at %.0f%% load (Masstree, SLO 1.0 ms): per-interval accepted fraction and p99",
			load*100),
		Columns: []string{"admission", "interval", "accepted_frac", "p99_ms"},
	}
	for _, withAdmission := range []bool{false, true} {
		est, err := core.NewHomogeneousStaticTailEstimator(w.ServiceTime, n)
		if err != nil {
			return nil, err
		}
		dl, err := core.NewDeadliner(core.TFEDFQ, est, classes)
		if err != nil {
			return nil, err
		}
		arr, err := workload.NewPoisson(rate)
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewGenerator(workload.GeneratorConfig{
			Servers: n, Arrival: arr, Fanout: fan, Classes: classes,
		}, fid.Seed)
		if err != nil {
			return nil, err
		}
		cfg := cluster.Config{
			Servers:          n,
			Spec:             core.TFEDFQ,
			ServiceTimes:     []dist.Distribution{w.ServiceTime},
			Generator:        gen,
			Classes:          classes,
			Deadliner:        dl,
			Queries:          fid.Queries,
			Warmup:           0, // the timeline itself separates transient from steady state
			Seed:             fid.Seed + 1,
			Failures:         failures,
			TimelineBucketMs: bucket,
		}
		label := "off"
		if withAdmission {
			adm, err := core.NewAdmissionController(bucket/4, 0.01)
			if err != nil {
				return nil, err
			}
			cfg.Admission = adm
			label = "on"
		}
		res, err := cluster.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("ext-failure admission=%s: %w", label, err)
		}
		for b := 0; b < 5; b++ {
			adm := res.TimelineAdmitted[b]
			rej := res.TimelineRejected[b]
			frac := 1.0
			if adm+rej > 0 {
				frac = float64(adm) / float64(adm+rej)
			}
			p99 := 0.0
			if rec := res.Timeline.Recorder(b); rec != nil && rec.Count() >= fid.MinSamples/4 {
				p99, err = rec.P99()
				if err != nil {
					return nil, err
				}
			}
			t.Rows = append(t.Rows, []string{label, fmt.Sprintf("%d/5", b+1), pct(frac), f3(p99)})
			t.Raw = append(t.Raw, map[string]float64{
				"interval": float64(b), "accepted_frac": frac, "p99_ms": p99,
				"fail_start": failStart, "fail_end": failEnd,
			})
		}
	}
	return t, nil
}

// AblationDispatch compares the paper's two queuing placements (footnote
// 3): central queuing at the query handler (dispatch delay lands after
// dequeue, inside t_po and server occupancy) versus per-server queuing
// (dispatch lands before enqueue, inside t_pr). Both run TailGuard with
// deadline estimation aware of the dispatch mean.
func AblationDispatch(fid Fidelity, load, dispatchMeanMs float64) (*Table, error) {
	if load <= 0 {
		load = 0.30
	}
	if dispatchMeanMs <= 0 {
		dispatchMeanMs = 0.05
	}
	w, err := dist.TailbenchWorkload("masstree")
	if err != nil {
		return nil, err
	}
	const n = 100
	fan, err := workload.NewInverseProportional(PaperFanouts)
	if err != nil {
		return nil, err
	}
	classes, err := workload.SingleClass(1.0)
	if err != nil {
		return nil, err
	}
	dispatch, err := dist.NewExponential(dispatchMeanMs)
	if err != nil {
		return nil, err
	}
	// Unloaded task response includes the dispatch leg under central
	// queuing; give the estimator the shifted model there.
	centralModel := dist.Shifted{D: w.ServiceTime, Offset: dispatchMeanMs}

	t := &Table{
		ID:      "ablation-dispatch",
		Title:   fmt.Sprintf("Central vs per-server queuing with %.0f us mean dispatch delay at %.0f%% load", dispatchMeanMs*1000, load*100),
		Columns: []string{"queuing", "p99_overall", "p99_k100", "mean_wait"},
	}
	modes := []struct {
		name    string
		mode    cluster.QueuingMode
		estBase dist.Distribution
	}{
		{"central", cluster.CentralQueuing, centralModel},
		{"per-server", cluster.PerServerQueuing, w.ServiceTime},
	}
	type modeResult struct {
		overall, k100, wait float64
	}
	results, err := parallel.Map(fid.pool(), len(modes), func(i int) (modeResult, error) {
		m := modes[i]
		var out modeResult
		est, err := core.NewHomogeneousStaticTailEstimator(m.estBase, n)
		if err != nil {
			return out, err
		}
		dl, err := core.NewDeadliner(core.TFEDFQ, est, classes)
		if err != nil {
			return out, err
		}
		// The dispatch leg adds to effective demand under central
		// queuing; use the same arrival rate for both so the comparison
		// is apples-to-apples on offered queries.
		rate, err := workload.RateForLoad(load, n, fan.MeanTasks(), w.ServiceTime.Mean())
		if err != nil {
			return out, err
		}
		arr, err := workload.NewPoisson(rate)
		if err != nil {
			return out, err
		}
		gen, err := workload.NewGenerator(workload.GeneratorConfig{
			Servers: n, Arrival: arr, Fanout: fan, Classes: classes,
		}, fid.Seed)
		if err != nil {
			return out, err
		}
		res, err := cluster.Run(cluster.Config{
			Servers:       n,
			Spec:          core.TFEDFQ,
			ServiceTimes:  []dist.Distribution{w.ServiceTime},
			Generator:     gen,
			Classes:       classes,
			Deadliner:     dl,
			Queries:       fid.Queries,
			Warmup:        fid.Warmup,
			Seed:          fid.Seed + 1,
			Queuing:       m.mode,
			DispatchDelay: dispatch,
		})
		if err != nil {
			return out, fmt.Errorf("ablation-dispatch %s: %w", m.name, err)
		}
		out.overall, err = res.Overall.P99()
		if err != nil {
			return out, err
		}
		rec := res.ByFanout.Recorder(100)
		if rec == nil {
			return out, fmt.Errorf("ablation-dispatch: no fanout-100 samples")
		}
		out.k100, err = rec.P99()
		if err != nil {
			return out, err
		}
		out.wait = res.TaskWait.Mean()
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for i, m := range modes {
		r := results[i]
		t.Rows = append(t.Rows, []string{m.name, f3(r.overall), f3(r.k100), f3(r.wait)})
		t.Raw = append(t.Raw, map[string]float64{
			"p99_overall": r.overall, "p99_k100": r.k100, "mean_wait": r.wait,
		})
	}
	return t, nil
}

// AblationAdmissionWindow sweeps the admission-control window size at a
// fixed overload, showing the control/measurement-delay trade-off the
// paper discusses for Fig. 7.
func AblationAdmissionWindow(fid Fidelity, offered float64, windowsMs []float64) (*Table, error) {
	if offered <= 0 {
		offered = 0.65
	}
	if len(windowsMs) == 0 {
		windowsMs = []float64{30, 100, 300, 1000}
	}
	t := &Table{
		ID:      "ablation-admission",
		Title:   fmt.Sprintf("Admission window sweep at %.0f%% offered load (Masstree OLDI)", offered*100),
		Columns: []string{"window_ms", "accepted", "p99_classI", "p99_classII"},
	}
	type winResult struct {
		accepted, p99I, p99II float64
	}
	results, err := parallel.Map(fid.pool(), len(windowsMs), func(i int) (winResult, error) {
		win := windowsMs[i]
		var out winResult
		s, err := oldiScenario("masstree", core.TFEDFQ, fid)
		if err != nil {
			return out, err
		}
		s.Load = offered
		s.AdmissionWindowMs = win
		s.AdmissionThreshold = 0.017
		res, err := s.Run()
		if err != nil {
			return out, fmt.Errorf("ablation-admission window=%v: %w", win, err)
		}
		out.accepted = res.Utilization
		out.p99I, err = resultP99(res, 0)
		if err != nil {
			return out, err
		}
		out.p99II, err = resultP99(res, 1)
		if err != nil {
			return out, err
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for i, win := range windowsMs {
		r := results[i]
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%g", win), pct(r.accepted), f3(r.p99I), f3(r.p99II)})
		t.Raw = append(t.Raw, map[string]float64{
			"window_ms": win, "accepted": r.accepted,
			"p99_classI": r.p99I, "p99_classII": r.p99II,
		})
	}
	return t, nil
}
