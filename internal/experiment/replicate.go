package experiment

import (
	"fmt"
	"math"

	"tailguard/internal/parallel"
)

// Replicated is a replicated measurement: mean, sample standard
// deviation, and the individual replicate values.
type Replicated struct {
	Mean   float64
	StdDev float64
	Values []float64
}

// summarize computes the mean and sample standard deviation. An empty
// input yields the zero Replicated (not a NaN mean).
func summarize(values []float64) Replicated {
	if len(values) == 0 {
		return Replicated{}
	}
	r := Replicated{Values: values}
	for _, v := range values {
		r.Mean += v
	}
	r.Mean /= float64(len(values))
	if len(values) > 1 {
		var ss float64
		for _, v := range values {
			d := v - r.Mean
			ss += d * d
		}
		r.StdDev = math.Sqrt(ss / float64(len(values)-1))
	}
	return r
}

// replicateSeed derives replicate i's base seed from the scenario's.
// It is shared by ReplicatedScenarioMaxLoad and the replicated figure
// generators so both report the same numbers for the same inputs.
func replicateSeed(base int64, i int) int64 {
	return parallel.DeriveSeed(base, i)
}

// ReplicatedScenarioMaxLoad repeats the max-load search with independent
// seeds and reports the spread — the honest way to quote a max-load
// number, since a single search inherits the tail noise of each probe.
// Replicates run concurrently on the fidelity's worker pool; seeds are
// a pure function of (base seed, replicate index), so the values are
// identical to the sequential loop's at any worker count.
func ReplicatedScenarioMaxLoad(s Scenario, bounds MaxLoadBounds, replicates int) (Replicated, error) {
	if replicates < 2 {
		return Replicated{}, fmt.Errorf("experiment: need >= 2 replicates, got %d", replicates)
	}
	inner := s.Fidelity.innerWorkers(replicates)
	values, err := parallel.Map(s.Fidelity.pool(), replicates, func(i int) (float64, error) {
		sc := s
		sc.Fidelity.Seed = replicateSeed(s.Fidelity.Seed, i)
		sc.Fidelity.Workers = inner
		ml, err := ScenarioMaxLoad(sc, bounds)
		if err != nil {
			return 0, fmt.Errorf("experiment: replicate %d: %w", i, err)
		}
		return ml, nil
	})
	if err != nil {
		return Replicated{}, err
	}
	return summarize(values), nil
}
