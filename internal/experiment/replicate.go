package experiment

import (
	"fmt"
	"math"
)

// Replicated is a replicated measurement: mean, sample standard
// deviation, and the individual replicate values.
type Replicated struct {
	Mean   float64
	StdDev float64
	Values []float64
}

// summarize computes the mean and sample standard deviation.
func summarize(values []float64) Replicated {
	r := Replicated{Values: values}
	for _, v := range values {
		r.Mean += v
	}
	r.Mean /= float64(len(values))
	if len(values) > 1 {
		var ss float64
		for _, v := range values {
			d := v - r.Mean
			ss += d * d
		}
		r.StdDev = math.Sqrt(ss / float64(len(values)-1))
	}
	return r
}

// ReplicatedScenarioMaxLoad repeats the max-load search with independent
// seeds and reports the spread — the honest way to quote a max-load
// number, since a single search inherits the tail noise of each probe.
func ReplicatedScenarioMaxLoad(s Scenario, bounds MaxLoadBounds, replicates int) (Replicated, error) {
	if replicates < 2 {
		return Replicated{}, fmt.Errorf("experiment: need >= 2 replicates, got %d", replicates)
	}
	values := make([]float64, replicates)
	for i := range values {
		sc := s
		sc.Fidelity.Seed = s.Fidelity.Seed + int64(i)*1000003
		ml, err := ScenarioMaxLoad(sc, bounds)
		if err != nil {
			return Replicated{}, fmt.Errorf("experiment: replicate %d: %w", i, err)
		}
		values[i] = ml
	}
	return summarize(values), nil
}
