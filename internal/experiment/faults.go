package experiment

import (
	"fmt"

	"tailguard/internal/cluster"
	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/fault"
	"tailguard/internal/obs"
	"tailguard/internal/workload"
)

// FaultConfig parameterizes the fault-injection resilience sweep: every
// policy runs the shared diagnostic scenario under each canonical fault
// class, plus one TF-EDFQ run with the resilience mitigations enabled, so
// the table shows what each fault does to each policy and what the
// mitigations buy back.
type FaultConfig struct {
	// Workload names the Tailbench service-time model (default "masstree").
	Workload string
	// Load is the offered load for every run (default 0.30 — the paper's
	// moderate operating point, so fault damage is not masked by overload).
	Load float64
	// Specs lists the policies to run un-mitigated (default core.Specs()).
	Specs []core.Spec
	// Resilience is the mitigation bundle for the extra TF-EDFQ run
	// (default hedging + 2 retries + degraded admission).
	Resilience fault.Resilience
	// Classes overrides the canonical fault classes (e.g. a user-supplied
	// plan loaded by tgsim -faults). Nil selects FaultClasses over the
	// estimated horizon.
	Classes []FaultClass
	// RingCap, when positive, attaches the lifecycle tracer to every run
	// and captures the newest RingCap events into FaultRun.Events (so a
	// faulted trace — including task_lost and hedge instants — can be
	// exported and validated).
	RingCap  int
	Fidelity Fidelity
}

func (c *FaultConfig) setDefaults() {
	if c.Workload == "" {
		c.Workload = "masstree"
	}
	if c.Load == 0 {
		c.Load = 0.30
	}
	if c.Specs == nil {
		c.Specs = core.Specs()
	}
	if !c.Resilience.Enabled() {
		c.Resilience = fault.Resilience{Hedge: true, RetryBudget: 2, DegradedAdmission: true}
	}
}

// FaultClass is one named fault plan of the sweep.
type FaultClass struct {
	Name string
	Plan *fault.Plan // nil for the fault-free baseline
}

// FaultClasses returns the canonical fault classes over a simulated
// horizon of horizonMs, seeded for the transport-drop stream: a clean
// baseline, a 10x slowdown straggler, a full stall, a crash with queue
// loss, and a lossy transport path — all on server 0, with windows placed
// as fixed fractions of the horizon so every fidelity exercises the same
// shape.
func FaultClasses(horizonMs float64, seed int64) []FaultClass {
	return []FaultClass{
		{Name: "baseline", Plan: nil},
		{Name: "slowdown-10x", Plan: &fault.Plan{
			Name: "slowdown-10x", Seed: seed,
			Faults: []fault.Fault{{
				Kind: fault.Slowdown, Server: 0,
				StartMs: 0.2 * horizonMs, EndMs: 0.8 * horizonMs, Factor: 10,
			}},
		}},
		{Name: "stall", Plan: &fault.Plan{
			Name: "stall", Seed: seed,
			Faults: []fault.Fault{{
				Kind: fault.Stall, Server: 0,
				StartMs: 0.3 * horizonMs, EndMs: 0.4 * horizonMs,
			}},
		}},
		{Name: "crash", Plan: &fault.Plan{
			Name: "crash", Seed: seed,
			Faults: []fault.Fault{{
				Kind: fault.Crash, Server: 0,
				StartMs: 0.3 * horizonMs, EndMs: 0.4 * horizonMs,
			}},
		}},
		{Name: "transport-drop", Plan: &fault.Plan{
			Name: "transport-drop", Seed: seed,
			Faults: []fault.Fault{{
				Kind: fault.TransportDrop, Server: 0,
				StartMs: 0.2 * horizonMs, EndMs: 0.8 * horizonMs, DropProb: 0.05,
			}},
		}},
	}
}

// FaultRun is one (fault class, policy, resilience) cell of the sweep.
type FaultRun struct {
	Class string
	// Hash is the fault plan's content hash ("00000000" for the baseline),
	// the same value stamped into emitted artifact filenames.
	Hash   string
	Spec   core.Spec
	Resil  fault.Resilience
	Result *cluster.Result
	// Report is the deadline-miss attribution under the fault.
	Report *obs.Attribution
	// Events is the lifecycle ring's snapshot (oldest first); nil unless
	// FaultConfig.RingCap was set.
	Events []obs.Event
}

// Violations returns the run's SLO-violation rate: post-warmup queries
// finishing past their class SLO plus queries failed outright by
// unabsorbed task losses, over all post-warmup outcomes.
func (r *FaultRun) Violations() float64 {
	misses, queries := 0, 0
	for _, c := range r.Report.ByClass {
		misses += c.Misses
		queries += c.Queries
	}
	misses += r.Result.Failed
	queries += r.Result.Failed
	if queries == 0 {
		return 0
	}
	return float64(misses) / float64(queries)
}

// faultHorizonMs estimates the simulated duration of one diagnostic run,
// used to place fault windows as fractions of the run.
func faultHorizonMs(cfg FaultConfig) (float64, error) {
	w, err := dist.TailbenchWorkload(cfg.Workload)
	if err != nil {
		return 0, err
	}
	fan, err := workload.NewInverseProportional(PaperFanouts)
	if err != nil {
		return 0, err
	}
	rate, err := workload.RateForLoad(cfg.Load, 100, fan.MeanTasks(), w.ServiceTime.Mean())
	if err != nil {
		return 0, err
	}
	return float64(cfg.Fidelity.Queries) / rate, nil
}

// FaultSweep runs the resilience sweep: for every canonical fault class,
// each configured policy un-mitigated plus TF-EDFQ with the mitigation
// bundle. Runs are sequential with a fixed seed, so the whole sweep is
// bit-identical across invocations (same plan hash, same drop stream,
// same latencies).
func FaultSweep(cfg FaultConfig) ([]*FaultRun, error) {
	cfg.setDefaults()
	if err := cfg.Fidelity.validate(); err != nil {
		return nil, err
	}
	horizon, err := faultHorizonMs(cfg)
	if err != nil {
		return nil, err
	}
	classes := cfg.Classes
	if classes == nil {
		classes = FaultClasses(horizon, cfg.Fidelity.Seed)
	}

	type variant struct {
		spec  core.Spec
		resil fault.Resilience
	}
	variants := make([]variant, 0, len(cfg.Specs)+1)
	for _, spec := range cfg.Specs {
		variants = append(variants, variant{spec: spec})
	}
	variants = append(variants, variant{spec: core.TFEDFQ, resil: cfg.Resilience})

	runs := make([]*FaultRun, 0, len(classes)*len(variants))
	for _, fc := range classes {
		hash := fc.Plan.Hash()
		for _, v := range variants {
			sc, err := diagnosticScenario(cfg.Workload, cfg.Load, v.spec, cfg.Fidelity)
			if err != nil {
				return nil, err
			}
			if v.resil.DegradedAdmission {
				// Degraded admission needs a live controller; size its
				// window to a tenth of the horizon so the detector reacts
				// within a fault window.
				sc.AdmissionWindowMs = horizon / 10
				sc.AdmissionThreshold = 0.05
			}
			ccfg, err := sc.Build()
			if err != nil {
				return nil, err
			}
			if fc.Plan != nil {
				eng, err := fault.NewEngine(fc.Plan, ccfg.Servers)
				if err != nil {
					return nil, fmt.Errorf("experiment: fault class %s: %w", fc.Name, err)
				}
				ccfg.Faults = eng
			}
			ccfg.Resilience = v.resil
			attrib := obs.NewAttributor()
			ccfg.Attribution = attrib
			var ring *obs.Ring
			if cfg.RingCap > 0 {
				ring, err = obs.NewRing(cfg.RingCap)
				if err != nil {
					return nil, err
				}
				ccfg.Obs = obs.NewTracer(obs.TracerConfig{Sink: ring})
			}
			res, err := cluster.Run(ccfg)
			if err != nil {
				return nil, fmt.Errorf("experiment: fault run %s/%s/%s: %w", fc.Name, v.spec.Name, v.resil.Label(), err)
			}
			run := &FaultRun{
				Class:  fc.Name,
				Hash:   hash,
				Spec:   v.spec,
				Resil:  v.resil,
				Result: res,
				Report: attrib.Report(),
			}
			if ring != nil {
				run.Events = ring.Snapshot(nil)
			}
			runs = append(runs, run)
		}
	}
	return runs, nil
}

// FaultTable renders the sweep's headline comparison: one row per (fault
// class, policy, resilience) with the overall p99, the SLO-violation
// rate, and the fault/mitigation counters.
func FaultTable(runs []*FaultRun) *Table {
	t := &Table{
		ID:    "faults",
		Title: "SLO violations and tail latency per policy under injected faults",
		Columns: []string{
			"fault", "plan", "policy", "resilience", "p99_ms", "viol_pct",
			"failed", "lost", "retries", "hedges", "hedge_wins",
		},
	}
	for _, run := range runs {
		p99 := 0.0
		if run.Result.Overall.Count() > 0 {
			if v, err := run.Result.Overall.P99(); err == nil {
				p99 = v
			}
		}
		viol := run.Violations()
		t.Rows = append(t.Rows, []string{
			run.Class,
			run.Hash,
			run.Spec.Name,
			run.Resil.Label(),
			f2(p99),
			pct(viol),
			fmt.Sprint(run.Result.Failed),
			fmt.Sprint(run.Result.LostTasks),
			fmt.Sprint(run.Result.Retries),
			fmt.Sprint(run.Result.HedgesIssued),
			fmt.Sprint(run.Result.HedgeWins),
		})
		t.Raw = append(t.Raw, map[string]float64{
			"p99_ms":     p99,
			"viol_pct":   viol,
			"failed":     float64(run.Result.Failed),
			"lost":       float64(run.Result.LostTasks),
			"retries":    float64(run.Result.Retries),
			"hedges":     float64(run.Result.HedgesIssued),
			"hedge_wins": float64(run.Result.HedgeWins),
		})
	}
	return t
}

// FaultMissTable renders the per-class miss-cause breakdown of every
// fault run: the same decomposition as ObsTable with the fault class and
// resilience columns prepended, so a fault-dominated window is visible as
// service-dominated misses concentrating under the faulted classes.
func FaultMissTable(runs []*FaultRun) *Table {
	t := &Table{
		ID:    "fault_misscause",
		Title: "Deadline-miss attribution per fault class and policy",
		Columns: []string{
			"fault", "policy", "resilience", "class", "queries", "misses",
			"miss_pct", "queue_dom", "service_dom", "slack_p1_ms",
		},
	}
	for _, run := range runs {
		for _, c := range run.Report.ByClass {
			missPct := 0.0
			if c.Queries > 0 {
				missPct = float64(c.Misses) / float64(c.Queries)
			}
			t.Rows = append(t.Rows, []string{
				run.Class,
				run.Spec.Name,
				run.Resil.Label(),
				fmt.Sprint(c.Class),
				fmt.Sprint(c.Queries),
				fmt.Sprint(c.Misses),
				pct(missPct),
				fmt.Sprint(c.QueueDominated),
				fmt.Sprint(c.ServiceDominated),
				f2(c.SlackP1Ms),
			})
			t.Raw = append(t.Raw, map[string]float64{
				"class":       float64(c.Class),
				"queries":     float64(c.Queries),
				"misses":      float64(c.Misses),
				"miss_pct":    missPct,
				"queue_dom":   float64(c.QueueDominated),
				"service_dom": float64(c.ServiceDominated),
				"slack_p1_ms": c.SlackP1Ms,
			})
		}
	}
	return t
}
