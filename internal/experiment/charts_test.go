package experiment

import (
	"strings"
	"testing"
)

func TestRenderFig3(t *testing.T) {
	tbl, err := Fig3()
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	figs, err := Render(tbl)
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	if len(figs) != 1 || figs[0].Name != "fig3-cdfs" {
		t.Fatalf("figs = %+v", figs)
	}
	for _, w := range []string{"masstree", "shore", "xapian", "<svg"} {
		if !strings.Contains(figs[0].SVG, w) {
			t.Errorf("fig3 SVG missing %q", w)
		}
	}
}

func TestRenderFig4AndFig5(t *testing.T) {
	// Build synthetic tables with the real schema (no simulation needed).
	fig4 := &Table{
		ID:      "fig4",
		Columns: []string{"workload", "slo_ms", "policy", "max_load", "gain_vs_fifo"},
		Rows: [][]string{
			{"masstree", "0.80", "TailGuard", "30%", "25%"},
			{"masstree", "0.80", "FIFO", "24%", "0%"},
			{"masstree", "1.00", "TailGuard", "41%", "21%"},
			{"masstree", "1.00", "FIFO", "34%", "0%"},
		},
		Raw: []map[string]float64{
			{"slo_ms": 0.8, "max_load": 0.30},
			{"slo_ms": 0.8, "max_load": 0.24},
			{"slo_ms": 1.0, "max_load": 0.41},
			{"slo_ms": 1.0, "max_load": 0.34},
		},
	}
	figs, err := Render(fig4)
	if err != nil {
		t.Fatalf("Render(fig4): %v", err)
	}
	if len(figs) != 1 || !strings.Contains(figs[0].Name, "masstree") {
		t.Fatalf("fig4 figs = %+v", figs)
	}
	if !strings.Contains(figs[0].SVG, "TailGuard") {
		t.Error("fig4 SVG missing legend")
	}

	fig5 := &Table{
		ID:      "fig5",
		Columns: []string{"arrival", "high_slo_ms", "policy", "max_load"},
		Rows: [][]string{
			{"poisson", "0.80", "TailGuard", "40%"},
			{"poisson", "0.80", "FIFO", "25%"},
			{"pareto", "0.80", "TailGuard", "35%"},
			{"pareto", "0.80", "FIFO", "18%"},
		},
		Raw: []map[string]float64{
			{"high_slo_ms": 0.8, "max_load": 0.40},
			{"high_slo_ms": 0.8, "max_load": 0.25},
			{"high_slo_ms": 0.8, "max_load": 0.35},
			{"high_slo_ms": 0.8, "max_load": 0.18},
		},
	}
	figs, err = Render(fig5)
	if err != nil {
		t.Fatalf("Render(fig5): %v", err)
	}
	if len(figs) != 2 {
		t.Fatalf("fig5 produced %d figures, want 2 (one per arrival)", len(figs))
	}
}

func TestRenderFig6(t *testing.T) {
	tbl := &Table{
		ID:      "fig6",
		Columns: []string{"workload", "policy", "load", "p99_classI", "p99_classII", "sloI", "sloII"},
		Rows: [][]string{
			{"masstree", "TailGuard", "20%", "0.6", "0.8", "1.0", "1.5"},
			{"masstree", "TailGuard", "40%", "0.7", "1.1", "1.0", "1.5"},
			{"masstree", "FIFO", "20%", "0.66", "0.66", "1.0", "1.5"},
			{"masstree", "FIFO", "40%", "0.88", "0.88", "1.0", "1.5"},
		},
		Raw: []map[string]float64{
			{"load": 0.2, "p99_classI": 0.6, "p99_classII": 0.8, "sloI": 1, "sloII": 1.5},
			{"load": 0.4, "p99_classI": 0.7, "p99_classII": 1.1, "sloI": 1, "sloII": 1.5},
			{"load": 0.2, "p99_classI": 0.66, "p99_classII": 0.66, "sloI": 1, "sloII": 1.5},
			{"load": 0.4, "p99_classI": 0.88, "p99_classII": 0.88, "sloI": 1, "sloII": 1.5},
		},
	}
	figs, err := Render(tbl)
	if err != nil {
		t.Fatalf("Render(fig6): %v", err)
	}
	if len(figs) != 2 {
		t.Fatalf("fig6 produced %d figures, want 2 (one per class)", len(figs))
	}
	for _, f := range figs {
		if !strings.Contains(f.SVG, "stroke-dasharray") {
			t.Errorf("%s missing SLO reference line", f.Name)
		}
	}
}

func TestRenderFig7(t *testing.T) {
	tbl := &Table{
		ID:      "fig7",
		Columns: []string{"offered", "accepted", "rejected", "p99_classI", "p99_classII", "miss_ratio"},
		Rows:    [][]string{{"45%", "44%", "1%", "0.77", "1.19", "0.2%"}},
		Raw: []map[string]float64{
			{"offered": 0.45, "accepted": 0.44, "rejected": 0.01, "p99_classI": 0.77, "p99_classII": 1.19},
		},
	}
	figs, err := Render(tbl)
	if err != nil {
		t.Fatalf("Render(fig7): %v", err)
	}
	if len(figs) != 2 {
		t.Fatalf("fig7 produced %d figures, want 2", len(figs))
	}
}

func TestRenderUnknownAndNil(t *testing.T) {
	figs, err := Render(&Table{ID: "table2"})
	if err != nil || figs != nil {
		t.Errorf("table-only ID: figs=%v err=%v, want nil/nil", figs, err)
	}
	if _, err := Render(nil); err == nil {
		t.Error("Render(nil) succeeded, want error")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("wet-lab (x/y)"); got != "wet-lab__x_y_" {
		t.Errorf("sanitize = %q", got)
	}
}
