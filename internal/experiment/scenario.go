package experiment

import (
	"fmt"

	"tailguard/internal/cluster"
	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/workload"
)

// ArrivalKind selects the query arrival process.
type ArrivalKind string

// Arrival kinds.
const (
	Poisson ArrivalKind = "poisson"
	Pareto  ArrivalKind = "pareto"
)

// Scenario declares one simulation setup at a given load; Build turns it
// into a runnable cluster.Config. The zero value is not valid — populate
// every field group as the case studies do.
type Scenario struct {
	Workload *dist.Workload // service-time model (Tailbench)
	Servers  int            // cluster size N
	Spec     core.Spec      // queuing policy
	Fanout   workload.FanoutDist
	Classes  *workload.ClassSet
	Arrival  ArrivalKind // default Poisson
	// ParetoAlpha is the Pareto shape when Arrival == Pareto
	// (default workload.DefaultParetoAlpha).
	ParetoAlpha float64
	Load        float64
	Fidelity    Fidelity
	// AdmissionWindowMs/AdmissionThreshold enable admission control when
	// the window is positive. The window is a moving time span (ms of
	// simulated time), sized to the horizon over which the SLO must hold.
	AdmissionWindowMs  float64
	AdmissionThreshold float64
	// Shards > 1 runs the cluster on the sharded parallel core
	// (cluster.Config.Shards); results are bit-identical to the
	// sequential engine (DESIGN.md §13). ShardWindowMs optionally
	// overrides the synchronization window width.
	Shards        int
	ShardWindowMs float64
}

// Build assembles the cluster configuration (generator, estimator,
// deadliner, admission) for this scenario.
func (s Scenario) Build() (cluster.Config, error) {
	if s.Workload == nil {
		return cluster.Config{}, fmt.Errorf("experiment: scenario needs a workload")
	}
	if s.Servers < 1 {
		return cluster.Config{}, fmt.Errorf("experiment: scenario needs >= 1 server")
	}
	if s.Fanout == nil {
		return cluster.Config{}, fmt.Errorf("experiment: scenario needs a fanout distribution")
	}
	if s.Classes == nil {
		return cluster.Config{}, fmt.Errorf("experiment: scenario needs a class set")
	}
	if s.Load <= 0 || s.Load > 2 {
		return cluster.Config{}, fmt.Errorf("experiment: load %v outside (0, 2]", s.Load)
	}
	if err := s.Fidelity.validate(); err != nil {
		return cluster.Config{}, err
	}

	rate, err := workload.RateForLoad(s.Load, s.Servers, s.Fanout.MeanTasks(), s.Workload.ServiceTime.Mean())
	if err != nil {
		return cluster.Config{}, err
	}
	var arrival workload.ArrivalProcess
	switch s.Arrival {
	case Poisson, "":
		arrival, err = workload.NewPoisson(rate)
	case Pareto:
		alpha := s.ParetoAlpha
		if alpha == 0 {
			alpha = workload.DefaultParetoAlpha
		}
		arrival, err = workload.NewPareto(rate, alpha)
	default:
		return cluster.Config{}, fmt.Errorf("experiment: unknown arrival kind %q", s.Arrival)
	}
	if err != nil {
		return cluster.Config{}, err
	}

	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Servers: s.Servers,
		Arrival: arrival,
		Fanout:  s.Fanout,
		Classes: s.Classes,
	}, s.Fidelity.Seed)
	if err != nil {
		return cluster.Config{}, err
	}
	est, err := core.NewHomogeneousStaticTailEstimator(s.Workload.ServiceTime, s.Servers)
	if err != nil {
		return cluster.Config{}, err
	}
	dl, err := core.NewDeadliner(s.Spec, est, s.Classes)
	if err != nil {
		return cluster.Config{}, err
	}
	cfg := cluster.Config{
		Servers:       s.Servers,
		Spec:          s.Spec,
		ServiceTimes:  []dist.Distribution{s.Workload.ServiceTime},
		Generator:     gen,
		Classes:       s.Classes,
		Deadliner:     dl,
		Queries:       s.Fidelity.Queries,
		Warmup:        s.Fidelity.Warmup,
		Seed:          s.Fidelity.Seed + 1,
		Shards:        s.Shards,
		ShardWindowMs: s.ShardWindowMs,
	}
	if s.AdmissionWindowMs > 0 {
		adm, err := core.NewAdmissionController(s.AdmissionWindowMs, s.AdmissionThreshold)
		if err != nil {
			return cluster.Config{}, err
		}
		cfg.Admission = adm
	}
	return cfg, nil
}

// Run builds and executes the scenario.
func (s Scenario) Run() (*cluster.Result, error) {
	cfg, err := s.Build()
	if err != nil {
		return nil, err
	}
	return cluster.Run(cfg)
}
