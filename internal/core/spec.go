// Package core implements TailGuard itself: the task-decomposition /
// queuing-deadline estimation of Section III.B (translating a query's
// tail-latency SLO and fanout into a per-task queuing deadline), the
// policy specifications that map the paper's four evaluated policies onto
// queue disciplines and deadline rules, and the query admission controller
// of Section III.C.
package core

import (
	"fmt"

	"tailguard/internal/policy"
)

// DeadlineRule says how a policy computes the task queuing deadline tD for
// a query arriving at t0 with tail-latency SLO x_p^SLO and fanout kf.
type DeadlineRule int

// Deadline rules.
const (
	// DeadlineNone: the policy ignores deadlines (FIFO, PRIQ).
	DeadlineNone DeadlineRule = iota
	// DeadlineSLO: tD = t0 + x_p^SLO (T-EDFQ) — SLO-aware, fanout-blind.
	DeadlineSLO
	// DeadlineSLOFanout: tD = t0 + x_p^SLO - x_p^u(kf) (TF-EDFQ, i.e.
	// TailGuard) — both SLO- and fanout-aware via Eqn. 6.
	DeadlineSLOFanout
)

// Spec is a named scheduling policy: a queue discipline plus a deadline
// rule. The paper's comparison set differs only along these two axes.
type Spec struct {
	Name     string
	Queue    policy.Kind
	Deadline DeadlineRule
}

// The four policies evaluated in the paper.
var (
	// FIFO: first-in-first-out task queuing.
	FIFO = Spec{Name: "FIFO", Queue: policy.FIFO, Deadline: DeadlineNone}
	// PRIQ: strict class-priority queuing.
	PRIQ = Spec{Name: "PRIQ", Queue: policy.PRIQ, Deadline: DeadlineNone}
	// TEDFQ: tail-latency-SLO-aware EDF queuing (fanout-blind).
	TEDFQ = Spec{Name: "T-EDFQ", Queue: policy.EDF, Deadline: DeadlineSLO}
	// TFEDFQ: TailGuard's tail-latency-SLO-and-fanout-aware EDF queuing.
	TFEDFQ = Spec{Name: "TailGuard", Queue: policy.EDF, Deadline: DeadlineSLOFanout}
)

// Specs returns the paper's four policies in presentation order.
func Specs() []Spec { return []Spec{TFEDFQ, FIFO, PRIQ, TEDFQ} }

// SpecByName resolves a policy by case-sensitive short name: "fifo",
// "priq", "tedfq", "tfedfq" (alias "tailguard").
func SpecByName(name string) (Spec, error) {
	switch name {
	case "fifo":
		return FIFO, nil
	case "priq":
		return PRIQ, nil
	case "tedfq":
		return TEDFQ, nil
	case "tfedfq", "tailguard":
		return TFEDFQ, nil
	default:
		return Spec{}, fmt.Errorf("core: unknown policy %q (want fifo, priq, tedfq, tfedfq)", name)
	}
}
