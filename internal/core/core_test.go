package core

import (
	"math"
	"testing"

	"tailguard/internal/dist"
	"tailguard/internal/workload"
)

func TestSpecByName(t *testing.T) {
	cases := []struct {
		name string
		want Spec
	}{
		{"fifo", FIFO}, {"priq", PRIQ}, {"tedfq", TEDFQ}, {"tfedfq", TFEDFQ}, {"tailguard", TFEDFQ},
	}
	for _, tc := range cases {
		got, err := SpecByName(tc.name)
		if err != nil {
			t.Errorf("SpecByName(%q): %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("SpecByName(%q) = %+v, want %+v", tc.name, got, tc.want)
		}
	}
	if _, err := SpecByName("bogus"); err == nil {
		t.Error("SpecByName(bogus) succeeded, want error")
	}
	if got := len(Specs()); got != 4 {
		t.Errorf("Specs() has %d entries, want 4", got)
	}
}

func TestStaticEstimatorHomogeneous(t *testing.T) {
	w := dist.MustTailbenchWorkload("masstree")
	e, err := NewHomogeneousStaticTailEstimator(w.ServiceTime, 100)
	if err != nil {
		t.Fatalf("NewHomogeneousStaticTailEstimator: %v", err)
	}
	if got := e.Servers(); got != 100 {
		t.Errorf("Servers() = %d, want 100", got)
	}
	// x99^u(kf) must match Table II exactly.
	for _, tc := range []struct {
		fanout int
		want   float64
	}{{1, 0.219}, {10, 0.247}, {100, 0.473}} {
		got, err := e.XPuFanout(0.99, tc.fanout)
		if err != nil {
			t.Fatalf("XPuFanout(0.99, %d): %v", tc.fanout, err)
		}
		if math.Abs(got-tc.want)/tc.want > 1e-9 {
			t.Errorf("XPuFanout(0.99, %d) = %v, want %v", tc.fanout, got, tc.want)
		}
	}
	// Static estimators reject observations.
	if err := e.Observe(0, 1); err == nil {
		t.Error("Observe on static estimator succeeded, want error")
	}
}

func TestEstimatorXPuFanoutValidation(t *testing.T) {
	w := dist.MustTailbenchWorkload("masstree")
	e, _ := NewHomogeneousStaticTailEstimator(w.ServiceTime, 10)
	if _, err := e.XPuFanout(0.99, 0); err == nil {
		t.Error("fanout 0 succeeded, want error")
	}
	if _, err := e.XPuFanout(0, 10); err == nil {
		t.Error("percentile 0 succeeded, want error")
	}
	if _, err := e.XPuFanout(1, 10); err == nil {
		t.Error("percentile 1 succeeded, want error")
	}
}

func TestEstimatorXPuServersHeterogeneous(t *testing.T) {
	fast, _ := dist.NewExponential(1)
	slow, _ := dist.NewExponential(10)
	e, err := NewStaticTailEstimator([]dist.Distribution{fast, slow})
	if err != nil {
		t.Fatalf("NewStaticTailEstimator: %v", err)
	}
	x, err := e.XPuServers(0.99, []int{0, 1})
	if err != nil {
		t.Fatalf("XPuServers: %v", err)
	}
	want, err := dist.QueryQuantile([]dist.Distribution{fast, slow}, 0.99)
	if err != nil {
		t.Fatalf("QueryQuantile: %v", err)
	}
	if math.Abs(x-want)/want > 1e-9 {
		t.Errorf("XPuServers = %v, want %v", x, want)
	}
	if _, err := e.XPuServers(0.99, nil); err == nil {
		t.Error("empty server set succeeded, want error")
	}
	if _, err := e.XPuServers(0.99, []int{5}); err == nil {
		t.Error("out-of-range server succeeded, want error")
	}
}

func TestOnlineEstimatorSeedAndObserve(t *testing.T) {
	exp, _ := dist.NewExponential(1)
	e, err := NewTailEstimator(4, exp, 20000, 0)
	if err != nil {
		t.Fatalf("NewTailEstimator: %v", err)
	}
	// Seeded quantile close to the analytic one.
	x, err := e.XPuFanout(0.99, 1)
	if err != nil {
		t.Fatalf("XPuFanout: %v", err)
	}
	want := exp.Quantile(0.99)
	if math.Abs(x-want)/want > 0.1 {
		t.Errorf("seeded x99(1) = %v, want ~%v", x, want)
	}
	// Observations shift the estimate and invalidate the cache.
	for i := 0; i < 200000; i++ {
		if err := e.Observe(0, 50); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	x2, err := e.XPuFanout(0.99, 1)
	if err != nil {
		t.Fatalf("XPuFanout after observe: %v", err)
	}
	if x2 < 10 {
		t.Errorf("x99(1) after heavy slow observations = %v, want shifted toward 50", x2)
	}
	if err := e.Observe(99, 1); err == nil {
		t.Error("Observe out-of-range server succeeded, want error")
	}
}

func TestEstimatorConstructorValidation(t *testing.T) {
	exp, _ := dist.NewExponential(1)
	if _, err := NewTailEstimator(0, exp, 10, 0); err == nil {
		t.Error("0 servers succeeded, want error")
	}
	if _, err := NewTailEstimator(1, nil, 10, 0); err == nil {
		t.Error("nil offline dist succeeded, want error")
	}
	if _, err := NewTailEstimator(1, exp, 0, 0); err == nil {
		t.Error("0 seed samples succeeded, want error")
	}
	if _, err := NewStaticTailEstimator(nil); err == nil {
		t.Error("empty static set succeeded, want error")
	}
	if _, err := NewStaticTailEstimator([]dist.Distribution{nil}); err == nil {
		t.Error("nil static dist succeeded, want error")
	}
	if _, err := NewHomogeneousStaticTailEstimator(exp, 0); err == nil {
		t.Error("0 homogeneous servers succeeded, want error")
	}
}

func TestServerQuantile(t *testing.T) {
	fast, _ := dist.NewExponential(1)
	slow, _ := dist.NewExponential(10)
	e, _ := NewStaticTailEstimator([]dist.Distribution{fast, slow})
	q0, err := e.ServerQuantile(0, 0.5)
	if err != nil {
		t.Fatalf("ServerQuantile: %v", err)
	}
	q1, _ := e.ServerQuantile(1, 0.5)
	if q1 <= q0 {
		t.Errorf("slow server quantile %v not above fast %v", q1, q0)
	}
	if _, err := e.ServerQuantile(5, 0.5); err == nil {
		t.Error("out-of-range server succeeded, want error")
	}
}

func testClasses(t *testing.T) *workload.ClassSet {
	t.Helper()
	cs, err := workload.TwoClasses(1.0, 1.5)
	if err != nil {
		t.Fatalf("TwoClasses: %v", err)
	}
	return cs
}

func TestDeadlinerBudgets(t *testing.T) {
	w := dist.MustTailbenchWorkload("masstree")
	est, _ := NewHomogeneousStaticTailEstimator(w.ServiceTime, 100)
	classes := testClasses(t)

	// FIFO/PRIQ: infinite budget (deadline unused).
	for _, spec := range []Spec{FIFO, PRIQ} {
		d, err := NewDeadliner(spec, nil, classes)
		if err != nil {
			t.Fatalf("NewDeadliner(%s): %v", spec.Name, err)
		}
		b, err := d.Budget(0, 100)
		if err != nil {
			t.Fatalf("Budget: %v", err)
		}
		if !math.IsInf(b, 1) {
			t.Errorf("%s budget = %v, want +Inf", spec.Name, b)
		}
	}

	// T-EDFQ: budget equals the SLO, fanout-blind.
	d, err := NewDeadliner(TEDFQ, est, classes)
	if err != nil {
		t.Fatalf("NewDeadliner(TEDFQ): %v", err)
	}
	for _, k := range []int{1, 10, 100} {
		b, err := d.Budget(0, k)
		if err != nil {
			t.Fatalf("Budget: %v", err)
		}
		if b != 1.0 {
			t.Errorf("T-EDFQ budget(class 0, k=%d) = %v, want 1.0", k, b)
		}
	}

	// TF-EDFQ: budget = SLO - x99^u(kf); the paper's Section IV.C example:
	// class I budget = 1 - 0.473 = 0.527 ms, class II = 1.5 - 0.473 = 1.027 ms.
	dg, err := NewDeadliner(TFEDFQ, est, classes)
	if err != nil {
		t.Fatalf("NewDeadliner(TFEDFQ): %v", err)
	}
	b0, err := dg.Budget(0, 100)
	if err != nil {
		t.Fatalf("Budget: %v", err)
	}
	if math.Abs(b0-0.527) > 1e-9 {
		t.Errorf("TailGuard class I budget = %v, want 0.527", b0)
	}
	b1, _ := dg.Budget(1, 100)
	if math.Abs(b1-1.027) > 1e-9 {
		t.Errorf("TailGuard class II budget = %v, want 1.027", b1)
	}
	// Budget decreases with fanout.
	bk1, _ := dg.Budget(0, 1)
	bk10, _ := dg.Budget(0, 10)
	if !(bk1 > bk10 && bk10 > b0) {
		t.Errorf("budgets not decreasing in fanout: %v, %v, %v", bk1, bk10, b0)
	}
}

func TestDeadlinerDeadline(t *testing.T) {
	w := dist.MustTailbenchWorkload("masstree")
	est, _ := NewHomogeneousStaticTailEstimator(w.ServiceTime, 100)
	classes := testClasses(t)
	d, err := NewDeadliner(TFEDFQ, est, classes)
	if err != nil {
		t.Fatalf("NewDeadliner: %v", err)
	}
	// tD = t0 + budget.
	td, err := d.Deadline(100, 0, 100)
	if err != nil {
		t.Fatalf("Deadline: %v", err)
	}
	if math.Abs(td-100.527) > 1e-9 {
		t.Errorf("Deadline = %v, want 100.527", td)
	}
	if _, err := d.Deadline(0, 9, 100); err == nil {
		t.Error("unknown class succeeded, want error")
	}
}

func TestDeadlinerServersPath(t *testing.T) {
	fast, _ := dist.NewExponential(0.1)
	slow, _ := dist.NewExponential(1.0)
	est, _ := NewStaticTailEstimator([]dist.Distribution{fast, slow})
	classes, _ := workload.SingleClass(10)
	d, err := NewDeadliner(TFEDFQ, est, classes)
	if err != nil {
		t.Fatalf("NewDeadliner: %v", err)
	}
	// A query touching only the fast server gets a bigger budget than one
	// touching the slow server.
	bFast, err := d.BudgetServers(0, []int{0})
	if err != nil {
		t.Fatalf("BudgetServers: %v", err)
	}
	bSlow, _ := d.BudgetServers(0, []int{1})
	if bFast <= bSlow {
		t.Errorf("fast-server budget %v not above slow-server budget %v", bFast, bSlow)
	}
	td, err := d.DeadlineServers(50, 0, []int{0, 1})
	if err != nil {
		t.Fatalf("DeadlineServers: %v", err)
	}
	if td <= 50 {
		t.Errorf("DeadlineServers = %v, want > t0", td)
	}
}

func TestDeadlinerValidation(t *testing.T) {
	classes := testClasses(t)
	if _, err := NewDeadliner(TFEDFQ, nil, classes); err == nil {
		t.Error("deadline policy without estimator succeeded, want error")
	}
	if _, err := NewDeadliner(FIFO, nil, nil); err == nil {
		t.Error("nil class set succeeded, want error")
	}
}

func TestNegativeBudgetAllowed(t *testing.T) {
	// SLO tighter than the unloaded tail: budget goes negative, meaning
	// the deadline is already past at arrival — EDF treats it as maximally
	// urgent. This must not error.
	w := dist.MustTailbenchWorkload("masstree")
	est, _ := NewHomogeneousStaticTailEstimator(w.ServiceTime, 100)
	classes, _ := workload.SingleClass(0.3) // x99u(100) = 0.473 > 0.3
	d, _ := NewDeadliner(TFEDFQ, est, classes)
	b, err := d.Budget(0, 100)
	if err != nil {
		t.Fatalf("Budget: %v", err)
	}
	if b >= 0 {
		t.Errorf("budget = %v, want negative", b)
	}
}

func TestAdmissionController(t *testing.T) {
	// 10 ms moving window, Rth = 20%.
	a, err := NewAdmissionController(10, 0.2)
	if err != nil {
		t.Fatalf("NewAdmissionController: %v", err)
	}
	if got := a.Threshold(); got != 0.2 {
		t.Errorf("Threshold() = %v, want 0.2", got)
	}
	if got := a.WindowMs(); got != 10 {
		t.Errorf("WindowMs() = %v, want 10", got)
	}
	// Empty window: admit, zero drop probability.
	if !a.Admit(0) {
		t.Error("Admit at t=0 = false on empty window")
	}
	if got := a.DropProbability(0); got != 0 {
		t.Errorf("DropProbability(0) = %v, want 0", got)
	}
	// At t=1: 7 hits, 3 misses -> ratio 0.3 > 0.2.
	for i := 0; i < 7; i++ {
		a.ObserveTask(false, 1)
	}
	for i := 0; i < 3; i++ {
		a.ObserveTask(true, 1)
	}
	if got := a.MissRatio(2); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("MissRatio(2) = %v, want 0.3", got)
	}
	// The drop probability integrates while the ratio stays above the
	// threshold (repeated misses keep the window hot); after several
	// window spans it saturates at 1 and admissions become rejections.
	for ts := 2.0; ts <= 100; ts++ {
		a.ObserveTask(true, ts)
		a.DropProbability(ts) // advance the control integrator
	}
	if got := a.DropProbability(100); got != 1 {
		t.Errorf("DropProbability after sustained misses = %v, want 1", got)
	}
	if a.Admit(100) {
		t.Error("Admit at saturated drop probability = true")
	}
	// Once the misses expire, the probability ramps back down and
	// admission resumes — recovery requires no new observations.
	for ts := 101.0; ts <= 200; ts++ {
		a.DropProbability(ts)
	}
	if got := a.MissRatio(200); got != 0 {
		t.Errorf("MissRatio after expiry = %v, want 0", got)
	}
	if got := a.DropProbability(200); got != 0 {
		t.Errorf("DropProbability after recovery = %v, want 0", got)
	}
	if !a.Admit(200) {
		t.Error("Admit after recovery = false")
	}
	acc, rej := a.Counts()
	if acc < 2 || rej < 1 {
		t.Errorf("Counts() = (%d, %d), want >= (2, 1)", acc, rej)
	}
	a.Reset()
	acc, rej = a.Counts()
	if acc != 0 || rej != 0 || a.MissRatio(201) != 0 {
		t.Errorf("Reset left state: %d/%d", acc, rej)
	}
}

func TestAdmissionControllerPartialExpiry(t *testing.T) {
	a, err := NewAdmissionController(10, 0.5)
	if err != nil {
		t.Fatalf("NewAdmissionController: %v", err)
	}
	a.ObserveTask(true, 0)  // expires at t=10
	a.ObserveTask(false, 5) // expires at t=15
	if got := a.MissRatio(5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MissRatio(5) = %v, want 0.5", got)
	}
	// At t=12 only the miss has expired.
	if got := a.MissRatio(12); got != 0 {
		t.Errorf("MissRatio(12) = %v, want 0", got)
	}
}

func TestAdmissionControllerValidation(t *testing.T) {
	if _, err := NewAdmissionController(0, 0.1); err == nil {
		t.Error("zero window succeeded, want error")
	}
	if _, err := NewAdmissionController(10, 0); err == nil {
		t.Error("zero threshold succeeded, want error")
	}
	if _, err := NewAdmissionController(10, 1); err == nil {
		t.Error("threshold 1 succeeded, want error")
	}
}

func TestAdmissionThresholdScale(t *testing.T) {
	a, err := NewAdmissionController(10, 0.2)
	if err != nil {
		t.Fatalf("NewAdmissionController: %v", err)
	}
	if got := a.ThresholdScale(); got != 1 {
		t.Fatalf("initial ThresholdScale = %v, want 1", got)
	}
	if got := a.EffectiveThreshold(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("initial EffectiveThreshold = %v, want 0.2", got)
	}
	// Hold the windowed ratio at 15%: below nominal Rth, above the
	// degraded target 0.2×0.5 = 10%.
	feed := func(ts float64) {
		for i := 0; i < 17; i++ {
			a.ObserveTask(false, ts)
		}
		for i := 0; i < 3; i++ {
			a.ObserveTask(true, ts)
		}
	}
	for ts := 0.0; ts <= 100; ts++ {
		feed(ts)
		a.DropProbability(ts)
	}
	if got := a.DropProbability(100); got != 0 {
		t.Fatalf("DropProbability below nominal Rth = %v, want 0", got)
	}
	// Degrade: same traffic now exceeds the effective threshold, so the
	// controller starts shedding.
	a.SetThresholdScale(0.5)
	if got := a.EffectiveThreshold(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("degraded EffectiveThreshold = %v, want 0.1", got)
	}
	for ts := 101.0; ts <= 200; ts++ {
		feed(ts)
		a.DropProbability(ts)
	}
	if got := a.DropProbability(200); got != 1 {
		t.Fatalf("DropProbability at degraded Rth = %v, want 1", got)
	}
	// Restoring the scale lets the same traffic pass again.
	a.SetThresholdScale(1)
	for ts := 201.0; ts <= 300; ts++ {
		feed(ts)
		a.DropProbability(ts)
	}
	if got := a.DropProbability(300); got != 0 {
		t.Fatalf("DropProbability after restore = %v, want 0", got)
	}
	// Out-of-range scales restore nominal.
	a.SetThresholdScale(-3)
	if got := a.ThresholdScale(); got != 1 {
		t.Fatalf("ThresholdScale(-3) left %v, want 1", got)
	}
	a.SetThresholdScale(2)
	if got := a.ThresholdScale(); got != 1 {
		t.Fatalf("ThresholdScale(2) left %v, want 1", got)
	}
	// Reset restores the nominal scale.
	a.SetThresholdScale(0.5)
	a.Reset()
	if got := a.ThresholdScale(); got != 1 {
		t.Fatalf("ThresholdScale after Reset = %v, want 1", got)
	}
}
