package core

import (
	"fmt"
	"math/rand"
	"sync"
)

// AdmissionController implements the paper's query admission control
// (Section III.C): it tracks the fraction of tasks that missed their
// queuing deadlines over a moving time window and rejects incoming
// queries while that ratio exceeds the threshold Rth. Per the paper, "the
// moving time window can be set to be the same as the time window in which
// the tail latency SLOs should be guaranteed" — the Fig. 7 configuration
// corresponds to the span of ~1000 queries (~100k tasks) at the operating
// load, with Rth = 1.7%.
//
// Two engineering choices depart from the paper's one-paragraph sketch,
// both forced by closed-loop stability (and documented in DESIGN.md):
//
//  1. The window is time-based rather than task-count-based: while queries
//     are being rejected no new tasks are observed, so a count window
//     freezes above the threshold and rejects forever; with a time window
//     old misses expire and admission resumes.
//  2. Rejection is proportional rather than bang-bang. "Reject everything
//     while ratio > Rth" time-shares the cluster between full overload
//     and full lockout — each admit burst creates a cohort of queries
//     that miss the SLO before the dequeue-time miss signal can react.
//     Instead, a drop probability integrates the sign of (ratio − Rth)
//     with a bounded slew rate, converging to the rejection level that
//     holds the windowed miss ratio at Rth — the fixed point the paper's
//     rule also aims for.
//
// Times are float64 in the caller's unit (simulated ms or wall-clock ms)
// and must be non-decreasing across calls. AdmissionController is safe for
// concurrent use.
type AdmissionController struct {
	mu        sync.Mutex
	windowMs  float64
	threshold float64
	rng       *rand.Rand       // guarded by mu
	events    []admissionEvent // guarded by mu; chronological queue of observations
	head      int              // guarded by mu; index of oldest live event
	misses    int              // guarded by mu; misses among live events
	dropProb  float64          // guarded by mu
	lastCtl   float64          // guarded by mu; time of the last drop-probability update
	scale     float64          // guarded by mu; Rth multiplier in (0,1], 1 = nominal
	accepted  int              // guarded by mu
	rejected  int              // guarded by mu
}

type admissionEvent struct {
	at     float64
	missed bool
}

// NewAdmissionController builds a controller with the given moving time
// window (in the same unit as the times passed to Admit/ObserveTask) and
// miss-ratio threshold Rth in (0, 1). Per the paper's calibration
// procedure, Rth should be the task deadline-miss ratio measured at the
// maximum acceptable load without admission control.
func NewAdmissionController(windowMs, threshold float64) (*AdmissionController, error) {
	if windowMs <= 0 {
		return nil, fmt.Errorf("core: admission window must be positive, got %v", windowMs)
	}
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("core: admission threshold %v outside (0, 1)", threshold)
	}
	return &AdmissionController{
		windowMs:  windowMs,
		threshold: threshold,
		scale:     1,
		rng:       rand.New(rand.NewSource(admissionSeed)),
	}, nil
}

// admissionSeed fixes the drop-decision stream so experiments are
// reproducible; the controller's behavior is insensitive to its value.
const admissionSeed = 0x7a11

// slewWindows is how many window spans the drop probability needs to sweep
// its full range: small enough to react within a few control horizons,
// large enough not to chatter.
const slewWindows = 3.0

// updateDropLocked integrates the drop probability toward the level that
// pins the windowed miss ratio at the threshold.
func (a *AdmissionController) updateDropLocked(now float64) {
	dt := now - a.lastCtl
	if dt <= 0 {
		return
	}
	a.lastCtl = now
	step := dt / (slewWindows * a.windowMs)
	if step > 0.25 {
		step = 0.25 // a single long gap must not slam the control
	}
	if a.ratioLocked() > a.threshold*a.scale {
		a.dropProb += step
		if a.dropProb > 1 {
			a.dropProb = 1
		}
	} else {
		a.dropProb -= step
		if a.dropProb < 0 {
			a.dropProb = 0
		}
	}
}

// evictLocked drops observations older than now - windowMs and compacts
// the backing slice when the dead prefix dominates; callers hold mu.
func (a *AdmissionController) evictLocked(now float64) {
	cutoff := now - a.windowMs
	for a.head < len(a.events) && a.events[a.head].at < cutoff {
		if a.events[a.head].missed {
			a.misses--
		}
		a.head++
	}
	if a.head > 1024 && a.head*2 >= len(a.events) {
		a.events = append(a.events[:0], a.events[a.head:]...)
		a.head = 0
	}
}

// ratioLocked returns the windowed miss ratio; callers hold the lock.
func (a *AdmissionController) ratioLocked() float64 {
	live := len(a.events) - a.head
	if live == 0 {
		return 0
	}
	return float64(a.misses) / float64(live)
}

// Admit decides whether a query arriving at time now is accepted, and
// records the decision. Queries are dropped with the current rejection
// probability, which rises while the windowed task deadline-miss ratio
// exceeds Rth and falls back to zero otherwise.
func (a *AdmissionController) Admit(now float64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.evictLocked(now)
	a.updateDropLocked(now)
	if a.dropProb > 0 && a.rng.Float64() < a.dropProb {
		a.rejected++
		return false
	}
	a.accepted++
	return true
}

// DropProbability returns the current rejection probability as of now.
func (a *AdmissionController) DropProbability(now float64) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.evictLocked(now)
	a.updateDropLocked(now)
	return a.dropProb
}

// ObserveTask records whether a task dequeued at time now missed its
// queuing deadline. In the central-queuing deployment this is known at
// dequeue time; with per-server queues it is piggybacked on the task
// result (Section III.C).
func (a *AdmissionController) ObserveTask(missedDeadline bool, now float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.evictLocked(now)
	a.events = append(a.events, admissionEvent{at: now, missed: missedDeadline})
	if missedDeadline {
		a.misses++
	}
}

// MissRatio returns the windowed task deadline-miss ratio as of time now.
func (a *AdmissionController) MissRatio(now float64) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.evictLocked(now)
	return a.ratioLocked()
}

// Threshold returns the nominal Rth.
func (a *AdmissionController) Threshold() float64 { return a.threshold }

// SetThresholdScale sets the degraded-admission multiplier on Rth: the
// controller targets threshold×s until told otherwise. s is clamped to
// (0, 1] — values ≤ 0 or > 1 restore the nominal threshold. Tightening
// the target makes the controller shed load earlier, which is the
// resilience layer's response to a fault-dominated miss window.
func (a *AdmissionController) SetThresholdScale(s float64) {
	if s <= 0 || s > 1 {
		s = 1
	}
	a.mu.Lock()
	a.scale = s
	a.mu.Unlock()
}

// ThresholdScale returns the current degraded-admission multiplier.
func (a *AdmissionController) ThresholdScale() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.scale
}

// EffectiveThreshold returns the miss-ratio target currently in force
// (Rth × scale).
func (a *AdmissionController) EffectiveThreshold() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.threshold * a.scale
}

// WindowMs returns the moving-window span.
func (a *AdmissionController) WindowMs() float64 { return a.windowMs }

// Counts returns the number of accepted and rejected queries so far.
func (a *AdmissionController) Counts() (accepted, rejected int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.accepted, a.rejected
}

// AdmissionSnapshot is a consistent view of the controller's internals as
// of one instant — the export surface the observability plane charts
// (obs gauges on /metrics and in `tgsim -obs` dumps) and the adaptive
// control plane reads as feedback.
type AdmissionSnapshot struct {
	DropProbability    float64 // current rejection probability
	MissRatio          float64 // windowed task deadline-miss ratio
	ThresholdScale     float64 // degraded-admission multiplier on Rth
	EffectiveThreshold float64 // Rth × scale currently in force
	Accepted           int     // queries admitted so far
	Rejected           int     // queries rejected so far
}

// Snapshot advances the window and control integrator to now and returns
// every internal the controller exposes, under one lock acquisition so
// the fields are mutually consistent.
func (a *AdmissionController) Snapshot(now float64) AdmissionSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.evictLocked(now)
	a.updateDropLocked(now)
	return AdmissionSnapshot{
		DropProbability:    a.dropProb,
		MissRatio:          a.ratioLocked(),
		ThresholdScale:     a.scale,
		EffectiveThreshold: a.threshold * a.scale,
		Accepted:           a.accepted,
		Rejected:           a.rejected,
	}
}

// Reset clears the window, the control state, and the decision counters.
func (a *AdmissionController) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.events = a.events[:0]
	a.head, a.misses = 0, 0
	a.accepted, a.rejected = 0, 0
	a.dropProb, a.lastCtl = 0, 0
	a.scale = 1
}
