package core

import (
	"fmt"
	"math"

	"tailguard/internal/workload"
)

// Deadliner computes task queuing deadlines for queries. One Deadliner is
// shared by all task queues of a cluster (queuing may be central or
// per-server; the deadline is a property of the query either way).
type Deadliner struct {
	spec      Spec
	estimator *TailEstimator
	classes   *workload.ClassSet
}

// NewDeadliner builds the deadline calculator for the given policy. The
// estimator may be nil for DeadlineNone policies; classes are always
// required (PRIQ reads class IDs, and budget reporting reads SLOs).
func NewDeadliner(spec Spec, estimator *TailEstimator, classes *workload.ClassSet) (*Deadliner, error) {
	if classes == nil {
		return nil, fmt.Errorf("core: deadliner needs a class set")
	}
	if spec.Deadline != DeadlineNone && estimator == nil {
		return nil, fmt.Errorf("core: policy %s needs a tail estimator", spec.Name)
	}
	return &Deadliner{spec: spec, estimator: estimator, classes: classes}, nil
}

// Spec returns the policy this deadliner serves.
func (d *Deadliner) Spec() Spec { return d.spec }

// Budget returns the task pre-dequeuing time budget T_b(x_p^SLO, kf) for a
// query of the given class and fanout (Eqn. 6):
//
//	DeadlineNone:      +Inf (deadline ignored by the queue discipline)
//	DeadlineSLO:       x_p^SLO
//	DeadlineSLOFanout: x_p^SLO - x_p^u(kf)
//
// A negative budget is legal: it means the SLO is unreachable even with
// zero queuing for this fanout; EDF then simply schedules the task as
// maximally urgent.
func (d *Deadliner) Budget(classID, fanout int) (float64, error) {
	cls, err := d.classes.Class(classID)
	if err != nil {
		return 0, err
	}
	switch d.spec.Deadline {
	case DeadlineNone:
		return math.Inf(1), nil
	case DeadlineSLO:
		return cls.SLOMs, nil
	case DeadlineSLOFanout:
		xpu, err := d.estimator.XPuFanout(cls.Percentile, fanout)
		if err != nil {
			return 0, err
		}
		return cls.SLOMs - xpu, nil
	default:
		return 0, fmt.Errorf("core: unknown deadline rule %d", d.spec.Deadline)
	}
}

// BudgetServers is Budget using the actual per-query server set instead of
// the homogeneous fanout shortcut — the heterogeneous (testbed) path.
func (d *Deadliner) BudgetServers(classID int, servers []int) (float64, error) {
	cls, err := d.classes.Class(classID)
	if err != nil {
		return 0, err
	}
	switch d.spec.Deadline {
	case DeadlineNone:
		return math.Inf(1), nil
	case DeadlineSLO:
		return cls.SLOMs, nil
	case DeadlineSLOFanout:
		xpu, err := d.estimator.XPuServers(cls.Percentile, servers)
		if err != nil {
			return 0, err
		}
		return cls.SLOMs - xpu, nil
	default:
		return 0, fmt.Errorf("core: unknown deadline rule %d", d.spec.Deadline)
	}
}

// Deadline returns tD = t0 + T_b for a query arriving at t0 (Eqn. 6).
func (d *Deadliner) Deadline(t0 float64, classID, fanout int) (float64, error) {
	b, err := d.Budget(classID, fanout)
	if err != nil {
		return 0, err
	}
	return t0 + b, nil
}

// DeadlineServers is Deadline with an explicit server set.
func (d *Deadliner) DeadlineServers(t0 float64, classID int, servers []int) (float64, error) {
	b, err := d.BudgetServers(classID, servers)
	if err != nil {
		return 0, err
	}
	return t0 + b, nil
}
