package core

import (
	"fmt"
	"math"
	"sync"

	"tailguard/internal/dist"
)

// TailEstimator maintains the per-task-server unloaded task response time
// distributions F_l(t) and answers the unloaded query tail quantile
// x_p^u(kf) queries that the deadline rule of Eqn. 6 needs. It implements
// the paper's combined offline estimation + periodic online updating
// process (Section III.B.2):
//
//   - Offline: every server starts from a common seed distribution F(t)
//     measured on one representative server (homogeneous-cluster
//     assumption).
//   - Online: each merged task result contributes its observed
//     post-queuing time to the owning server's OnlineCDF, capturing
//     heterogeneity and drift.
//
// x_p^u values are cached per (percentile, fanout) and invalidated when
// the underlying CDFs change (version counters), so deadline estimation is
// O(1) per query in the steady state — the paper's "lightweight" claim.
//
// TailEstimator is safe for concurrent use.
type TailEstimator struct {
	mu       sync.Mutex
	servers  []*dist.OnlineCDF
	static   []dist.Distribution // non-updating alternative to servers
	cache    map[tailKey]float64 // guarded by mu
	cacheVer uint64              // guarded by mu
}

type tailKey struct {
	percentile float64
	fanout     int
}

// NewTailEstimator creates an estimator for n servers, each seeded from
// the offline distribution with seedSamples synthetic samples. When
// halfLife > 0, online observations decay with that half-life (in
// samples), letting the estimate track drift.
func NewTailEstimator(n int, offline dist.Distribution, seedSamples, halfLife int) (*TailEstimator, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: estimator needs >= 1 server, got %d", n)
	}
	if offline == nil {
		return nil, fmt.Errorf("core: estimator needs an offline seed distribution")
	}
	if seedSamples < 1 {
		return nil, fmt.Errorf("core: estimator needs >= 1 seed sample, got %d", seedSamples)
	}
	e := &TailEstimator{
		servers: make([]*dist.OnlineCDF, n),
		cache:   make(map[tailKey]float64),
	}
	for i := range e.servers {
		o := dist.NewOnlineCDF(dist.OnlineCDFConfig{HalfLife: halfLife})
		if err := o.Seed(offline, seedSamples); err != nil {
			return nil, fmt.Errorf("core: seeding server %d: %w", i, err)
		}
		e.servers[i] = o
	}
	return e, nil
}

// NewStaticTailEstimator creates an estimator whose per-server
// distributions are fixed analytic models, bypassing online updating.
// The simulation case studies use it with the exact workload model, which
// matches the paper's simulation setup ("Fl(t)=F(t) for l=1..N ... which
// do not change over time").
func NewStaticTailEstimator(servers []dist.Distribution) (*TailEstimator, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("core: estimator needs >= 1 server distribution")
	}
	for i, d := range servers {
		if d == nil {
			return nil, fmt.Errorf("core: nil distribution for server %d", i)
		}
	}
	return &TailEstimator{
		static: append([]dist.Distribution(nil), servers...),
		cache:  make(map[tailKey]float64),
	}, nil
}

// NewHomogeneousStaticTailEstimator is NewStaticTailEstimator with one
// shared model replicated across n servers.
func NewHomogeneousStaticTailEstimator(d dist.Distribution, n int) (*TailEstimator, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: estimator needs >= 1 server, got %d", n)
	}
	servers := make([]dist.Distribution, n)
	for i := range servers {
		servers[i] = d
	}
	return NewStaticTailEstimator(servers)
}

// Servers returns the number of task servers tracked.
func (e *TailEstimator) Servers() int {
	if e.static != nil {
		return len(e.static)
	}
	return len(e.servers)
}

// Observe feeds one observed task post-queuing time for the given server
// into the online updating process. It is a no-op (with an error) for
// static estimators.
func (e *TailEstimator) Observe(server int, postQueuingMs float64) error {
	if e.static != nil {
		return fmt.Errorf("core: static estimator does not accept observations")
	}
	if server < 0 || server >= len(e.servers) {
		return fmt.Errorf("core: server %d out of range [0, %d)", server, len(e.servers))
	}
	return e.servers[server].Add(postQueuingMs)
}

// serverDist returns the current distribution handle for server l.
func (e *TailEstimator) serverDist(l int) dist.Distribution {
	if e.static != nil {
		return e.static[l]
	}
	return e.servers[l]
}

// versionSum aggregates the online CDF versions for cache invalidation.
func (e *TailEstimator) versionSum() uint64 {
	if e.static != nil {
		return 0
	}
	var v uint64
	for _, o := range e.servers {
		v += o.Version()
	}
	return v
}

// XPuFanout returns x_p^u(kf) for a query fanned out to kf servers under
// the homogeneous assumption, using server 0's distribution as the
// representative F(t): x_p^u(kf) = F^{-1}(p^{1/kf}) (Eqn. 2). Cached per
// (p, kf); the cache is dropped whenever any server's online CDF version
// advances.
func (e *TailEstimator) XPuFanout(percentile float64, fanout int) (float64, error) {
	if fanout < 1 {
		return 0, fmt.Errorf("core: fanout must be >= 1, got %d", fanout)
	}
	if percentile <= 0 || percentile >= 1 {
		return 0, fmt.Errorf("core: percentile %v outside (0, 1)", percentile)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if v := e.versionSum(); v != e.cacheVer {
		e.cache = make(map[tailKey]float64)
		e.cacheVer = v
	}
	key := tailKey{percentile: percentile, fanout: fanout}
	if x, ok := e.cache[key]; ok {
		return x, nil
	}
	x, err := dist.HomogeneousQueryQuantile(e.serverDist(0), fanout, percentile)
	if err != nil {
		return 0, err
	}
	e.cache[key] = x
	return x, nil
}

// XPuServers returns x_p^u for a query dispatched to the specific server
// set, using the per-server distributions (the heterogeneous form of
// Eqns. 1-2). Not cached: server sets vary per query; the bisection cost
// is still microseconds and only the heterogeneous testbed path uses it.
func (e *TailEstimator) XPuServers(percentile float64, servers []int) (float64, error) {
	if len(servers) == 0 {
		return 0, fmt.Errorf("core: empty server set")
	}
	n := e.Servers()
	ds := make([]dist.Distribution, len(servers))
	for i, s := range servers {
		if s < 0 || s >= n {
			return 0, fmt.Errorf("core: server %d out of range [0, %d)", s, n)
		}
		ds[i] = e.serverDist(s)
	}
	return dist.QueryQuantile(ds, percentile)
}

// ServerQuantile exposes a single server's current p-quantile, used by
// diagnostics and the testbed's CDF reporting.
func (e *TailEstimator) ServerQuantile(server int, p float64) (float64, error) {
	n := e.Servers()
	if server < 0 || server >= n {
		return 0, fmt.Errorf("core: server %d out of range [0, %d)", server, n)
	}
	q := e.serverDist(server).Quantile(p)
	if math.IsNaN(q) {
		return 0, fmt.Errorf("core: server %d quantile is NaN", server)
	}
	return q, nil
}
