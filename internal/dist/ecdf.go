package dist

import (
	"fmt"
	"math/rand"
	"sort"
)

// ECDF is the empirical distribution of a fixed set of samples. It backs
// the paper's offline estimation process (Section III.B.2): collect task
// post-queuing-time samples from a single loaded task server, construct
// F(t), and use it as the initial distribution for every server.
//
// ECDF is immutable after construction and safe for concurrent use.
type ECDF struct {
	sorted []float64
	mean   float64
	idx    bucketIndex // value axis, backs CDF
}

// NewECDF builds an empirical CDF from samples. The input slice is copied.
// All samples must be non-negative (latencies).
func NewECDF(samples []float64) (*ECDF, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("dist: ECDF needs at least one sample")
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if s[0] < 0 {
		return nil, fmt.Errorf("dist: ECDF sample %v is negative", s[0])
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	e := &ECDF{sorted: s, mean: sum / float64(len(s))}
	e.idx = newBucketIndex(func(i int) float64 { return e.sorted[i] }, len(e.sorted))
	return e, nil
}

// N returns the number of samples.
func (e *ECDF) N() int { return len(e.sorted) }

// CDF implements Distribution: the fraction of samples <= t. The former
// sort.SearchFloat64s found the first index >= t and then advanced over
// equal values; both steps collapse into one upper-bound walk (smallest
// i with sorted[i] > t) seeded by the value-axis bucket index, so the
// count — and hence the returned fraction — is unchanged.
func (e *ECDF) CDF(t float64) float64 {
	n := len(e.sorted)
	i := e.idx.seed(t)
	for i > 0 && e.sorted[i-1] > t {
		i--
	}
	for i < n && e.sorted[i] <= t {
		i++
	}
	return float64(i) / float64(n)
}

// Quantile implements Distribution using linear interpolation between
// order statistics, which keeps tail estimates smooth for the deadline
// math even with moderate sample counts.
func (e *ECDF) Quantile(p float64) float64 {
	p = clampProb(p)
	n := len(e.sorted)
	if n == 1 {
		return e.sorted[0]
	}
	pos := p * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return e.sorted[n-1]
	}
	frac := pos - float64(i)
	return e.sorted[i] + frac*(e.sorted[i+1]-e.sorted[i])
}

// Mean implements Distribution.
func (e *ECDF) Mean() float64 { return e.mean }

// Sample implements Distribution (inverse-transform over the interpolated
// quantile function).
func (e *ECDF) Sample(r *rand.Rand) float64 { return e.Quantile(r.Float64()) }

// Table materializes the ECDF as a QuantileTable with at most maxPoints
// breakpoints, preserving the extreme tail exactly (the last few order
// statistics are always kept, since the deadline math lives at p >= 0.99).
func (e *ECDF) Table(maxPoints int) (*QuantileTable, error) {
	if maxPoints < 2 {
		return nil, fmt.Errorf("dist: quantile table needs >= 2 points, got %d", maxPoints)
	}
	n := len(e.sorted)
	add := func(bps []Breakpoint, p float64) []Breakpoint {
		t := e.Quantile(p)
		if len(bps) > 0 {
			if p <= bps[len(bps)-1].P {
				return bps
			}
			if t < bps[len(bps)-1].T {
				t = bps[len(bps)-1].T
			}
		}
		return append(bps, Breakpoint{P: p, T: t})
	}
	bps := add(nil, 0)
	// Two-thirds of the budget covers the body uniformly; one-third covers
	// the tail at geometrically increasing percentiles.
	bodyPts := (maxPoints - 2) * 2 / 3
	for i := 1; i <= bodyPts; i++ {
		bps = add(bps, 0.99*float64(i)/float64(bodyPts+1))
	}
	tailPts := maxPoints - 2 - bodyPts
	q := 0.99
	for i := 0; i < tailPts; i++ {
		bps = add(bps, q)
		q = 1 - (1-q)/4
		if 1-q < 1/float64(n) {
			break
		}
	}
	bps = add(bps, 1)
	return NewQuantileTable(bps)
}
