// Package dist provides the probability-distribution substrate used
// throughout TailGuard: parametric samplers, piecewise-linear quantile
// models, empirical CDFs built from observed samples, an online-updating
// streaming CDF, and the order-statistics math that converts per-server
// task latency distributions into unloaded query tail latencies (Eqns. 1-2
// of the paper).
//
// All latencies in this package are expressed as float64 milliseconds,
// matching the paper's units and the simulator's clock. Conversions to and
// from time.Duration happen at the live-testbed boundary.
package dist

import (
	"fmt"
	"math/rand"
)

// Distribution is a one-dimensional latency distribution. Implementations
// must be safe for concurrent readers after construction; mutating
// implementations (e.g. OnlineCDF) document their own synchronization.
type Distribution interface {
	// CDF returns P(X <= t). It is non-decreasing in t, 0 for t below the
	// support and 1 above it.
	CDF(t float64) float64
	// Quantile returns the smallest t with CDF(t) >= p, for p in [0, 1].
	// Implementations clamp p outside [0, 1].
	Quantile(p float64) float64
	// Mean returns E[X].
	Mean() float64
	// Sample draws one value using the provided random source.
	Sample(r *rand.Rand) float64
}

// clampProb clamps p to [0, 1].
func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// checkProb returns an error for probabilities outside [0, 1]; used by
// constructors that validate caller input instead of clamping.
func checkProb(p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("dist: probability %v outside [0, 1]", p)
	}
	return nil
}
