package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// sampleMean draws n samples and returns their mean.
func sampleMean(t *testing.T, d Distribution, n int, seed int64) float64 {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	var sum float64
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("Sample returned invalid value %v", v)
		}
		sum += v
	}
	return sum / float64(n)
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{V: 3.5}
	if got := d.CDF(3.4); got != 0 {
		t.Errorf("CDF(3.4) = %v, want 0", got)
	}
	if got := d.CDF(3.5); got != 1 {
		t.Errorf("CDF(3.5) = %v, want 1", got)
	}
	if got := d.Quantile(0.99); got != 3.5 {
		t.Errorf("Quantile(0.99) = %v, want 3.5", got)
	}
	if got := d.Mean(); got != 3.5 {
		t.Errorf("Mean() = %v, want 3.5", got)
	}
}

func TestUniform(t *testing.T) {
	u, err := NewUniform(1, 3)
	if err != nil {
		t.Fatalf("NewUniform: %v", err)
	}
	tests := []struct {
		t, want float64
	}{
		{0.5, 0}, {1, 0}, {2, 0.5}, {3, 1}, {4, 1},
	}
	for _, tc := range tests {
		if got := u.CDF(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	if got := u.Quantile(0.25); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Quantile(0.25) = %v, want 1.5", got)
	}
	if got := u.Mean(); got != 2 {
		t.Errorf("Mean() = %v, want 2", got)
	}
	if m := sampleMean(t, u, 20000, 1); math.Abs(m-2) > 0.02 {
		t.Errorf("sample mean = %v, want ~2", m)
	}
}

func TestUniformInvalid(t *testing.T) {
	if _, err := NewUniform(3, 1); err == nil {
		t.Error("NewUniform(3, 1) succeeded, want error")
	}
}

func TestExponential(t *testing.T) {
	e, err := NewExponential(2)
	if err != nil {
		t.Fatalf("NewExponential: %v", err)
	}
	if got := e.Mean(); got != 2 {
		t.Errorf("Mean() = %v, want 2", got)
	}
	// Median of Exp(mean 2) is 2*ln 2.
	if got, want := e.Quantile(0.5), 2*math.Ln2; math.Abs(got-want) > 1e-12 {
		t.Errorf("Quantile(0.5) = %v, want %v", got, want)
	}
	// CDF(Quantile(p)) == p.
	for _, p := range []float64{0.01, 0.5, 0.9, 0.99, 0.9999} {
		if got := e.CDF(e.Quantile(p)); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if m := sampleMean(t, e, 50000, 2); math.Abs(m-2) > 0.05 {
		t.Errorf("sample mean = %v, want ~2", m)
	}
}

func TestExponentialInvalid(t *testing.T) {
	if _, err := NewExponential(0); err == nil {
		t.Error("NewExponential(0) succeeded, want error")
	}
	if _, err := NewExponential(-1); err == nil {
		t.Error("NewExponential(-1) succeeded, want error")
	}
}

func TestLogNormal(t *testing.T) {
	l, err := NewLogNormal(0, 0.5)
	if err != nil {
		t.Fatalf("NewLogNormal: %v", err)
	}
	// Median is exp(mu).
	if got := l.Quantile(0.5); math.Abs(got-1) > 1e-9 {
		t.Errorf("Quantile(0.5) = %v, want 1", got)
	}
	if got, want := l.Mean(), math.Exp(0.125); math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean() = %v, want %v", got, want)
	}
	for _, p := range []float64{0.001, 0.1, 0.5, 0.9, 0.99, 0.9999} {
		if got := l.CDF(l.Quantile(p)); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if m := sampleMean(t, l, 100000, 3); math.Abs(m-l.Mean()) > 0.02 {
		t.Errorf("sample mean = %v, want ~%v", m, l.Mean())
	}
}

func TestLogNormalInvalid(t *testing.T) {
	if _, err := NewLogNormal(0, 0); err == nil {
		t.Error("NewLogNormal(0, 0) succeeded, want error")
	}
}

func TestBoundedPareto(t *testing.T) {
	b, err := NewBoundedPareto(1, 1.5, 100)
	if err != nil {
		t.Fatalf("NewBoundedPareto: %v", err)
	}
	if got := b.CDF(1); got != 0 {
		t.Errorf("CDF(xm) = %v, want 0", got)
	}
	if got := b.CDF(100); got != 1 {
		t.Errorf("CDF(cap) = %v, want 1", got)
	}
	for _, p := range []float64{0.01, 0.5, 0.99, 0.9999} {
		if got := b.CDF(b.Quantile(p)); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if m := sampleMean(t, b, 200000, 4); math.Abs(m-b.Mean())/b.Mean() > 0.03 {
		t.Errorf("sample mean = %v, want ~%v", m, b.Mean())
	}
}

func TestBoundedParetoAlphaOneMean(t *testing.T) {
	b, err := NewBoundedPareto(1, 1, math.E)
	if err != nil {
		t.Fatalf("NewBoundedPareto: %v", err)
	}
	// For alpha=1: mean = xm*ln(cap/xm)/(1-xm/cap) = 1/(1-1/e).
	want := 1 / (1 - 1/math.E)
	if got := b.Mean(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean() = %v, want %v", got, want)
	}
}

func TestBoundedParetoInvalid(t *testing.T) {
	cases := [][3]float64{{0, 1, 2}, {1, 0, 2}, {2, 1, 1}}
	for _, c := range cases {
		if _, err := NewBoundedPareto(c[0], c[1], c[2]); err == nil {
			t.Errorf("NewBoundedPareto(%v) succeeded, want error", c)
		}
	}
}

func TestShiftedAndScaled(t *testing.T) {
	e, _ := NewExponential(1)
	s := Shifted{D: e, Offset: 5}
	if got := s.Mean(); math.Abs(got-6) > 1e-12 {
		t.Errorf("Shifted.Mean() = %v, want 6", got)
	}
	if got := s.Quantile(0.5); math.Abs(got-(5+math.Ln2)) > 1e-12 {
		t.Errorf("Shifted.Quantile(0.5) = %v", got)
	}
	if got := s.CDF(5 + math.Ln2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Shifted.CDF = %v, want 0.5", got)
	}

	sc, err := NewScaled(e, 3)
	if err != nil {
		t.Fatalf("NewScaled: %v", err)
	}
	if got := sc.Mean(); math.Abs(got-3) > 1e-12 {
		t.Errorf("Scaled.Mean() = %v, want 3", got)
	}
	if got := sc.CDF(sc.Quantile(0.9)); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("Scaled CDF/Quantile roundtrip = %v", got)
	}
	if _, err := NewScaled(e, 0); err == nil {
		t.Error("NewScaled(e, 0) succeeded, want error")
	}
}

func TestMixtureBimodal(t *testing.T) {
	fast := Deterministic{V: 1}
	slow := Deterministic{V: 10}
	m, err := NewMixture([]Distribution{fast, slow}, []float64{0.9, 0.1})
	if err != nil {
		t.Fatalf("NewMixture: %v", err)
	}
	if got := m.Mean(); math.Abs(got-1.9) > 1e-12 {
		t.Errorf("Mean() = %v, want 1.9", got)
	}
	if got := m.CDF(5); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("CDF(5) = %v, want 0.9", got)
	}
	// p=0.95 falls in the slow mode.
	if got := m.Quantile(0.95); math.Abs(got-10) > 1e-6 {
		t.Errorf("Quantile(0.95) = %v, want 10", got)
	}
	// Sampling proportions.
	r := rand.New(rand.NewSource(5))
	var slowCount int
	const n = 50000
	for i := 0; i < n; i++ {
		if m.Sample(r) > 5 {
			slowCount++
		}
	}
	if frac := float64(slowCount) / n; math.Abs(frac-0.1) > 0.01 {
		t.Errorf("slow-mode fraction = %v, want ~0.1", frac)
	}
}

func TestMixtureWeightNormalization(t *testing.T) {
	e, _ := NewExponential(1)
	m, err := NewMixture([]Distribution{e, e}, []float64{2, 6})
	if err != nil {
		t.Fatalf("NewMixture: %v", err)
	}
	if got := m.weights[0]; math.Abs(got-0.25) > 1e-12 {
		t.Errorf("normalized weight = %v, want 0.25", got)
	}
}

func TestMixtureInvalid(t *testing.T) {
	e, _ := NewExponential(1)
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture succeeded, want error")
	}
	if _, err := NewMixture([]Distribution{e}, []float64{1, 2}); err == nil {
		t.Error("length mismatch succeeded, want error")
	}
	if _, err := NewMixture([]Distribution{e}, []float64{-1}); err == nil {
		t.Error("negative weight succeeded, want error")
	}
	if _, err := NewMixture([]Distribution{e}, []float64{0}); err == nil {
		t.Error("zero-sum weights succeeded, want error")
	}
}

func TestErfcInvAccuracy(t *testing.T) {
	for _, x := range []float64{1e-10, 1e-6, 0.001, 0.01, 0.1, 0.5, 1, 1.5, 1.9, 1.999} {
		z := erfcInv(x)
		if got := math.Erfc(z); math.Abs(got-x) > 1e-10*math.Max(1, 1/x) {
			t.Errorf("Erfc(erfcInv(%v)) = %v", x, got)
		}
	}
}

// Property: for every parametric distribution, CDF is monotone and the
// quantile function is its (generalized) inverse.
func TestQuantileCDFInverseProperty(t *testing.T) {
	e, _ := NewExponential(1.3)
	l, _ := NewLogNormal(-0.5, 0.8)
	b, _ := NewBoundedPareto(0.5, 1.2, 50)
	u, _ := NewUniform(0.1, 9)
	dists := map[string]Distribution{"exp": e, "lognormal": l, "pareto": b, "uniform": u}
	for name, d := range dists {
		d := d
		prop := func(raw float64) bool {
			p := math.Mod(math.Abs(raw), 1)
			q := d.Quantile(p)
			if math.IsInf(q, 1) {
				return p == 1
			}
			c := d.CDF(q)
			return c+1e-7 >= p
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: CDF(Quantile(p)) >= p violated: %v", name, err)
		}
		propMono := func(a, b float64) bool {
			x, y := math.Abs(a), math.Abs(b)
			if x > y {
				x, y = y, x
			}
			return d.CDF(x) <= d.CDF(y)+1e-12
		}
		if err := quick.Check(propMono, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: CDF monotonicity violated: %v", name, err)
		}
	}
}
