package dist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refTableQuantile is the pre-bucket-index Quantile: sort.Search over the
// P axis plus the identical interpolation. The optimized path must match
// it bit for bit.
func refTableQuantile(q *QuantileTable, p float64) float64 {
	p = clampProb(p)
	i := sort.Search(len(q.bps), func(i int) bool { return q.bps[i].P >= p })
	if i == 0 {
		return q.bps[0].T
	}
	if i >= len(q.bps) {
		return q.bps[len(q.bps)-1].T
	}
	a, b := q.bps[i-1], q.bps[i]
	frac := (p - a.P) / (b.P - a.P)
	return a.T + frac*(b.T-a.T)
}

// refTableCDF is the pre-bucket-index CDF: sort.Search over the T axis
// plus the identical degenerate-segment handling and interpolation.
func refTableCDF(q *QuantileTable, t float64) float64 {
	if t < q.bps[0].T {
		return 0
	}
	last := q.bps[len(q.bps)-1]
	if t >= last.T {
		return 1
	}
	i := sort.Search(len(q.bps), func(i int) bool { return q.bps[i].T > t })
	a, b := q.bps[i-1], q.bps[i]
	if b.T <= a.T {
		return b.P
	}
	frac := (t - a.T) / (b.T - a.T)
	return a.P + frac*(b.P-a.P)
}

// refECDFCDF is the pre-bucket-index ECDF.CDF: sort.SearchFloat64s plus
// the equal-value walk.
func refECDFCDF(e *ECDF, t float64) float64 {
	i := sort.SearchFloat64s(e.sorted, t)
	for i < len(e.sorted) && e.sorted[i] <= t {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

func testTables(t *testing.T) []*QuantileTable {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	tables := []*QuantileTable{
		// Minimal two-point table.
		MustQuantileTable([]Breakpoint{{P: 0, T: 1}, {P: 1, T: 5}}),
		// Flat segments (repeated T) exercise the degenerate-segment branch.
		MustQuantileTable([]Breakpoint{
			{P: 0, T: 0}, {P: 0.2, T: 2}, {P: 0.5, T: 2}, {P: 0.9, T: 2}, {P: 1, T: 10},
		}),
		// Entirely constant T: the T-axis bucket index is degenerate and
		// must fall back to a plain walk.
		MustQuantileTable([]Breakpoint{{P: 0, T: 3}, {P: 0.4, T: 3}, {P: 1, T: 3}}),
	}
	// A large random table with clustered breakpoints.
	bps := []Breakpoint{{P: 0, T: 0}}
	p, v := 0.0, 0.0
	for i := 0; i < 400; i++ {
		p += rng.Float64() * 0.002
		if p >= 1 {
			break
		}
		if rng.Intn(4) > 0 {
			v += rng.ExpFloat64()
		}
		bps = append(bps, Breakpoint{P: p, T: v})
	}
	bps = append(bps, Breakpoint{P: 1, T: v + 1})
	tables = append(tables, MustQuantileTable(bps))
	return tables
}

// TestQuantileTableMatchesSortSearch checks that the bucket-index lookup
// is bit-identical to the binary-search reference over dense probe grids,
// including probes exactly at and adjacent to every breakpoint.
func TestQuantileTableMatchesSortSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for ti, q := range testTables(t) {
		var probes []float64
		for i := 0; i <= 4000; i++ {
			probes = append(probes, float64(i)/4000)
		}
		for i := 0; i < 2000; i++ {
			probes = append(probes, rng.Float64())
		}
		for _, bp := range q.bps {
			probes = append(probes,
				bp.P, math.Nextafter(bp.P, 0), math.Nextafter(bp.P, 2),
				bp.T, math.Nextafter(bp.T, -1), math.Nextafter(bp.T, math.MaxFloat64),
				-bp.T, bp.T*1.5)
		}
		for _, x := range probes {
			if got, want := q.Quantile(x), refTableQuantile(q, x); got != want {
				t.Fatalf("table %d: Quantile(%v) = %v, want %v", ti, x, got, want)
			}
			if got, want := q.CDF(x), refTableCDF(q, x); got != want {
				t.Fatalf("table %d: CDF(%v) = %v, want %v", ti, x, got, want)
			}
		}
	}
}

// TestECDFCDFMatchesSortSearch checks ECDF.CDF against the
// sort.SearchFloat64s reference, including heavy ties.
func TestECDFCDFMatchesSortSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sets := [][]float64{
		{0},
		{1, 1, 1, 1},
		{0, 0, 1, 1, 2, 2, 2, 5},
	}
	var big []float64
	for i := 0; i < 3000; i++ {
		// Quantized values generate many exact ties.
		big = append(big, math.Floor(rng.ExpFloat64()*20)/4)
	}
	sets = append(sets, big)
	for si, set := range sets {
		e, err := NewECDF(set)
		if err != nil {
			t.Fatal(err)
		}
		var probes []float64
		for i := -10; i <= 400; i++ {
			probes = append(probes, float64(i)/4)
		}
		for _, v := range e.sorted {
			probes = append(probes, v, math.Nextafter(v, -1), math.Nextafter(v, math.MaxFloat64))
		}
		for i := 0; i < 2000; i++ {
			probes = append(probes, rng.ExpFloat64()*25)
		}
		for _, x := range probes {
			if got, want := e.CDF(x), refECDFCDF(e, x); got != want {
				t.Fatalf("set %d: CDF(%v) = %v, want %v", si, x, got, want)
			}
		}
	}
}

// TestQuantileLookupsAllocationFree pins the sampling hot path at zero
// heap allocations per call.
func TestQuantileLookupsAllocationFree(t *testing.T) {
	q := testTables(t)[3]
	e, err := NewECDF([]float64{1, 2, 2, 3, 5, 8, 13})
	if err != nil {
		t.Fatal(err)
	}
	var sink float64
	probe := 0.0
	allocs := testing.AllocsPerRun(1000, func() {
		probe += 0.0001
		sink += q.Quantile(probe)
		sink += q.CDF(probe * 40)
		sink += e.Quantile(probe)
		sink += e.CDF(probe * 13)
	})
	if allocs != 0 {
		t.Fatalf("quantile/CDF lookups allocated %v per run, want 0", allocs)
	}
	_ = sink
}
