package dist

import "math"

// NearlyEqual reports whether a and b agree to within a combined
// absolute/relative tolerance of eps: |a-b| <= eps * max(1, |a|, |b|).
// It is the epsilon helper the floateq analyzer points at — quantile and
// CDF math must never compare computed floats with == / != (bisection,
// bucket interpolation, and closed-form inversions all carry rounding
// error). NaN is never nearly equal to anything, matching IEEE ==;
// infinities are nearly equal only to themselves.
func NearlyEqual(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return math.Float64bits(a) == math.Float64bits(b)
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= eps*scale
}

// DefaultEps is a practical tolerance for latency math in milliseconds:
// far below any physically meaningful latency difference, far above
// accumulated float64 rounding error.
const DefaultEps = 1e-9
