package dist

import (
	"math"
	"testing"
)

func TestNearlyEqual(t *testing.T) {
	inf := math.Inf(1)
	nan := math.NaN()
	cases := []struct {
		a, b, eps float64
		want      bool
	}{
		{1, 1, 1e-12, true},
		{1, 1 + 1e-13, 1e-12, true},
		{1, 1 + 1e-6, 1e-9, false},
		{0, 1e-12, 1e-9, true},                 // absolute floor near zero
		{0, math.Copysign(0, -1), 1e-15, true}, // +0 vs -0
		{1e12, 1e12 * (1 + 1e-12), 1e-9, true}, // relative at scale
		{1e12, 1.001e12, 1e-9, false},
		{inf, inf, 1e-9, true},
		{inf, -inf, 1e-9, false},
		{inf, 1e300, 1e-9, false},
		{nan, nan, 1e-9, false},
		{nan, 1, 1e-9, false},
	}
	for _, c := range cases {
		if got := NearlyEqual(c.a, c.b, c.eps); got != c.want {
			t.Errorf("NearlyEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.eps, got, c.want)
		}
	}
}
