package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestTailbenchNames(t *testing.T) {
	got := TailbenchNames()
	want := []string{"masstree", "shore", "xapian"}
	if len(got) != len(want) {
		t.Fatalf("TailbenchNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TailbenchNames()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTailbenchUnknown(t *testing.T) {
	if _, err := TailbenchWorkload("nope"); err == nil {
		t.Error("unknown workload succeeded, want error")
	}
}

// TestTailbenchTable2 validates the calibration against the paper's
// Table II: mean task service time and unloaded p99 query tails at fanouts
// 1, 10, 100 must reproduce the published values.
func TestTailbenchTable2(t *testing.T) {
	for _, name := range TailbenchNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := TailbenchWorkload(name)
			if err != nil {
				t.Fatalf("TailbenchWorkload: %v", err)
			}
			if got, want := w.ServiceTime.Mean(), w.Paper.MeanMs; math.Abs(got-want)/want > 1e-6 {
				t.Errorf("mean = %v ms, want %v ms", got, want)
			}
			checks := []struct {
				fanout int
				want   float64
			}{
				{1, w.Paper.X99K1}, {10, w.Paper.X99K10}, {100, w.Paper.X99K100},
			}
			for _, c := range checks {
				got, err := w.X99(c.fanout)
				if err != nil {
					t.Fatalf("X99(%d): %v", c.fanout, err)
				}
				if math.Abs(got-c.want)/c.want > 1e-9 {
					t.Errorf("x99^u(%d) = %v ms, want %v ms", c.fanout, got, c.want)
				}
			}
		})
	}
}

// TestTailbenchSampledStats confirms that statistics recovered from samples
// (the only thing the scheduler ever sees) match the model.
func TestTailbenchSampledStats(t *testing.T) {
	for _, name := range TailbenchNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			w := MustTailbenchWorkload(name)
			r := rand.New(rand.NewSource(99))
			const n = 400000
			samples := make([]float64, n)
			for i := range samples {
				samples[i] = w.ServiceTime.Sample(r)
			}
			e, err := NewECDF(samples)
			if err != nil {
				t.Fatalf("NewECDF: %v", err)
			}
			if got, want := e.Mean(), w.Paper.MeanMs; math.Abs(got-want)/want > 0.01 {
				t.Errorf("sampled mean = %v, want ~%v", got, want)
			}
			if got, want := e.Quantile(0.99), w.Paper.X99K1; math.Abs(got-want)/want > 0.03 {
				t.Errorf("sampled p99 = %v, want ~%v", got, want)
			}
		})
	}
}

// TestTailbenchX99MonotoneInFanout checks the structural property that
// drives the whole paper: the unloaded query tail grows with fanout.
func TestTailbenchX99MonotoneInFanout(t *testing.T) {
	for _, name := range TailbenchNames() {
		w := MustTailbenchWorkload(name)
		prev := 0.0
		for _, k := range []int{1, 2, 5, 10, 20, 50, 100, 200} {
			x, err := w.X99(k)
			if err != nil {
				t.Fatalf("%s X99(%d): %v", name, k, err)
			}
			if x < prev {
				t.Errorf("%s: x99(%d) = %v < x99(prev) = %v", name, k, x, prev)
			}
			prev = x
		}
	}
}

// TestTailbenchFig3Shape spot-checks the qualitative CDF shapes of Fig. 3.
func TestTailbenchFig3Shape(t *testing.T) {
	masstree := MustTailbenchWorkload("masstree")
	shore := MustTailbenchWorkload("shore")
	xapian := MustTailbenchWorkload("xapian")

	// Masstree: tight — p90/p10 ratio below 2.
	ratio := masstree.ServiceTime.Quantile(0.9) / masstree.ServiceTime.Quantile(0.1)
	if ratio > 2 {
		t.Errorf("masstree p90/p10 = %v, want < 2 (tight unimodal)", ratio)
	}
	// Shore: bimodal — 80% of mass below 0.4 ms but p99 above 2 ms.
	if c := shore.ServiceTime.CDF(0.4); c < 0.75 {
		t.Errorf("shore CDF(0.4ms) = %v, want >= 0.75 (fast mode)", c)
	}
	if q := shore.ServiceTime.Quantile(0.99); q < 2 {
		t.Errorf("shore p99 = %v, want > 2 ms (slow mode)", q)
	}
	// Xapian: broad — interquartile range wider than 0.4 ms.
	iqr := xapian.ServiceTime.Quantile(0.75) - xapian.ServiceTime.Quantile(0.25)
	if iqr < 0.4 {
		t.Errorf("xapian IQR = %v ms, want >= 0.4 (broad body)", iqr)
	}
}

func TestMustTailbenchWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustTailbenchWorkload(unknown) did not panic")
		}
	}()
	MustTailbenchWorkload("unknown")
}
