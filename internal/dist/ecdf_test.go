package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestECDFBasics(t *testing.T) {
	e, err := NewECDF([]float64{3, 1, 2, 4})
	if err != nil {
		t.Fatalf("NewECDF: %v", err)
	}
	if got := e.N(); got != 4 {
		t.Errorf("N() = %d, want 4", got)
	}
	if got := e.Mean(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Mean() = %v, want 2.5", got)
	}
	tests := []struct {
		t, want float64
	}{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.5}, {3.9, 0.75}, {4, 1}, {5, 1},
	}
	for _, tc := range tests {
		if got := e.CDF(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestECDFDuplicates(t *testing.T) {
	e, err := NewECDF([]float64{2, 2, 2, 5})
	if err != nil {
		t.Fatalf("NewECDF: %v", err)
	}
	if got := e.CDF(2); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("CDF(2) = %v, want 0.75", got)
	}
}

func TestECDFInvalid(t *testing.T) {
	if _, err := NewECDF(nil); err == nil {
		t.Error("NewECDF(nil) succeeded, want error")
	}
	if _, err := NewECDF([]float64{-1, 2}); err == nil {
		t.Error("NewECDF with negative sample succeeded, want error")
	}
}

func TestECDFQuantileInterpolation(t *testing.T) {
	e, err := NewECDF([]float64{0, 10})
	if err != nil {
		t.Fatalf("NewECDF: %v", err)
	}
	if got := e.Quantile(0.5); math.Abs(got-5) > 1e-12 {
		t.Errorf("Quantile(0.5) = %v, want 5", got)
	}
	if got := e.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v, want 0", got)
	}
	if got := e.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %v, want 10", got)
	}
}

func TestECDFSingleSample(t *testing.T) {
	e, err := NewECDF([]float64{7})
	if err != nil {
		t.Fatalf("NewECDF: %v", err)
	}
	for _, p := range []float64{0, 0.5, 1} {
		if got := e.Quantile(p); got != 7 {
			t.Errorf("Quantile(%v) = %v, want 7", p, got)
		}
	}
}

func TestECDFRecoversKnownDistribution(t *testing.T) {
	exp, _ := NewExponential(1)
	r := rand.New(rand.NewSource(42))
	samples := make([]float64, 200000)
	for i := range samples {
		samples[i] = exp.Sample(r)
	}
	e, err := NewECDF(samples)
	if err != nil {
		t.Fatalf("NewECDF: %v", err)
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		got, want := e.Quantile(p), exp.Quantile(p)
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("Quantile(%v) = %v, want ~%v", p, got, want)
		}
	}
	if math.Abs(e.Mean()-1) > 0.02 {
		t.Errorf("Mean() = %v, want ~1", e.Mean())
	}
}

func TestECDFTable(t *testing.T) {
	exp, _ := NewExponential(1)
	r := rand.New(rand.NewSource(43))
	samples := make([]float64, 100000)
	for i := range samples {
		samples[i] = exp.Sample(r)
	}
	e, err := NewECDF(samples)
	if err != nil {
		t.Fatalf("NewECDF: %v", err)
	}
	tbl, err := e.Table(64)
	if err != nil {
		t.Fatalf("Table: %v", err)
	}
	// The materialized table must agree with the ECDF at body and tail
	// quantiles, since the deadline math reads p >= 0.99.
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		got, want := tbl.Quantile(p), e.Quantile(p)
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("table Quantile(%v) = %v, ECDF = %v", p, got, want)
		}
	}
	if _, err := e.Table(1); err == nil {
		t.Error("Table(1) succeeded, want error")
	}
}
