package dist

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestOnlineCDFEmpty(t *testing.T) {
	o := NewOnlineCDF(OnlineCDFConfig{})
	if got := o.Count(); got != 0 {
		t.Errorf("Count() = %v, want 0", got)
	}
	if got := o.CDF(1); got != 0 {
		t.Errorf("CDF on empty = %v, want 0", got)
	}
	if got := o.Quantile(0.5); got != 0 {
		t.Errorf("Quantile on empty = %v, want 0", got)
	}
	if _, err := o.Snapshot(32); err == nil {
		t.Error("Snapshot of empty online CDF succeeded, want error")
	}
}

func TestOnlineCDFInvalidAdd(t *testing.T) {
	o := NewOnlineCDF(OnlineCDFConfig{})
	if err := o.Add(-1); err == nil {
		t.Error("Add(-1) succeeded, want error")
	}
	if err := o.Add(math.NaN()); err == nil {
		t.Error("Add(NaN) succeeded, want error")
	}
}

func TestOnlineCDFRecoversExponential(t *testing.T) {
	o := NewOnlineCDF(OnlineCDFConfig{})
	exp, _ := NewExponential(2)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		if err := o.Add(exp.Sample(r)); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		got, want := o.Quantile(p), exp.Quantile(p)
		if math.Abs(got-want)/want > 0.06 {
			t.Errorf("Quantile(%v) = %v, want ~%v", p, got, want)
		}
	}
	if got := o.Mean(); math.Abs(got-2) > 0.05 {
		t.Errorf("Mean() = %v, want ~2", got)
	}
	// Round trip through CDF.
	for _, p := range []float64{0.5, 0.9, 0.99} {
		q := o.Quantile(p)
		if c := o.CDF(q); math.Abs(c-p) > 0.02 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, c)
		}
	}
}

func TestOnlineCDFDecayTracksDrift(t *testing.T) {
	// Feed a slow regime, then a fast one; with decay the quantiles must
	// follow the new regime (the paper's heterogeneity/drift adaptation).
	o := NewOnlineCDF(OnlineCDFConfig{HalfLife: 2000, DecayInterval: 256})
	slow := Deterministic{V: 100}
	fast := Deterministic{V: 1}
	for i := 0; i < 20000; i++ {
		if err := o.Add(slow.Sample(nil)); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if got := o.Quantile(0.99); got < 90 {
		t.Fatalf("pre-drift Quantile(0.99) = %v, want ~100", got)
	}
	for i := 0; i < 40000; i++ {
		if err := o.Add(fast.Sample(nil)); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if got := o.Quantile(0.99); got > 2 {
		t.Errorf("post-drift Quantile(0.99) = %v, want ~1 (decay failed to track)", got)
	}
}

func TestOnlineCDFNoDecayRemembers(t *testing.T) {
	o := NewOnlineCDF(OnlineCDFConfig{})
	for i := 0; i < 1000; i++ {
		_ = o.Add(100)
	}
	for i := 0; i < 1000; i++ {
		_ = o.Add(1)
	}
	// Without decay the median sits between the modes and p99 stays high.
	if got := o.Quantile(0.99); got < 90 {
		t.Errorf("Quantile(0.99) = %v, want ~100 without decay", got)
	}
}

func TestOnlineCDFVersionAdvances(t *testing.T) {
	o := NewOnlineCDF(OnlineCDFConfig{DecayInterval: 64})
	v0 := o.Version()
	for i := 0; i < 1000; i++ {
		_ = o.Add(1)
	}
	if o.Version() == v0 {
		t.Error("Version() did not advance after 1000 adds")
	}
}

func TestOnlineCDFSeed(t *testing.T) {
	o := NewOnlineCDF(OnlineCDFConfig{})
	exp, _ := NewExponential(3)
	if err := o.Seed(exp, 10000); err != nil {
		t.Fatalf("Seed: %v", err)
	}
	if got := o.Count(); math.Abs(got-10000) > 1 {
		t.Errorf("Count() = %v, want 10000", got)
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		got, want := o.Quantile(p), exp.Quantile(p)
		if math.Abs(got-want)/want > 0.06 {
			t.Errorf("seeded Quantile(%v) = %v, want ~%v", p, got, want)
		}
	}
	if err := o.Seed(exp, 0); err == nil {
		t.Error("Seed(d, 0) succeeded, want error")
	}
}

func TestOnlineCDFSnapshot(t *testing.T) {
	o := NewOnlineCDF(OnlineCDFConfig{})
	exp, _ := NewExponential(1)
	if err := o.Seed(exp, 50000); err != nil {
		t.Fatalf("Seed: %v", err)
	}
	tbl, err := o.Snapshot(64)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		got, want := tbl.Quantile(p), exp.Quantile(p)
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("snapshot Quantile(%v) = %v, want ~%v", p, got, want)
		}
	}
	if _, err := o.Snapshot(1); err == nil {
		t.Error("Snapshot(1) succeeded, want error")
	}
}

func TestOnlineCDFConcurrent(t *testing.T) {
	o := NewOnlineCDF(OnlineCDFConfig{HalfLife: 10000})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			exp, _ := NewExponential(1)
			for i := 0; i < 5000; i++ {
				_ = o.Add(exp.Sample(r))
				if i%100 == 0 {
					_ = o.Quantile(0.99)
					_ = o.CDF(1)
					_ = o.Mean()
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if got := o.Quantile(0.5); math.Abs(got-math.Ln2) > 0.15 {
		t.Errorf("median after concurrent adds = %v, want ~%v", got, math.Ln2)
	}
}

func TestOnlineCDFQuantileMemo(t *testing.T) {
	o := NewOnlineCDF(OnlineCDFConfig{DecayInterval: 64})
	for i := 0; i < 63; i++ {
		_ = o.Add(float64(i + 1)) // stays within version 0
	}
	q1 := o.Quantile(0.5)
	if q2 := o.Quantile(0.5); q2 != q1 {
		t.Errorf("memoized Quantile(0.5) = %v, want %v", q2, q1)
	}
	// A single Add invalidates the memo: the memo is a pure cache and
	// must never serve a value the unmemoized scan would not return.
	_ = o.Add(1000)
	if q3 := o.Quantile(0.99); q3 < 500 {
		t.Errorf("post-Add Quantile(0.99) = %v, want ~1000 (stale memo served)", q3)
	}
	v0 := o.Version()
	for i := 0; i < 64; i++ {
		_ = o.Add(1000)
	}
	if o.Version() == v0 {
		t.Fatal("Version() did not advance")
	}
	if q4 := o.Quantile(0.99); q4 < 500 {
		t.Errorf("post-bump Quantile(0.99) = %v, want ~1000 (stale memo served)", q4)
	}
	// The memo stays bounded under many distinct probabilities.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 4*quantileMemoMax; i++ {
		_ = o.Quantile(r.Float64())
	}
	o.mu.Lock()
	if len(o.qmemo) > quantileMemoMax {
		t.Errorf("memo grew to %d entries, cap is %d", len(o.qmemo), quantileMemoMax)
	}
	o.mu.Unlock()
}

func TestOnlineCDFClampedRange(t *testing.T) {
	o := NewOnlineCDF(OnlineCDFConfig{Min: 1, Max: 100})
	_ = o.Add(0.001) // below min: clamped into first bucket
	_ = o.Add(1e9)   // above max: clamped into last bucket
	if got := o.Count(); got != 2 {
		t.Errorf("Count() = %v, want 2", got)
	}
	if q := o.Quantile(0.25); q > 1.2 {
		t.Errorf("low quantile = %v, want near Min", q)
	}
}
