package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func simpleTable(t *testing.T) *QuantileTable {
	t.Helper()
	q, err := NewQuantileTable([]Breakpoint{
		{P: 0, T: 1}, {P: 0.5, T: 2}, {P: 0.9, T: 4}, {P: 1, T: 10},
	})
	if err != nil {
		t.Fatalf("NewQuantileTable: %v", err)
	}
	return q
}

func TestQuantileTableValidation(t *testing.T) {
	tests := []struct {
		name string
		bps  []Breakpoint
	}{
		{"too few", []Breakpoint{{P: 0, T: 1}}},
		{"not starting at 0", []Breakpoint{{P: 0.1, T: 1}, {P: 1, T: 2}}},
		{"not ending at 1", []Breakpoint{{P: 0, T: 1}, {P: 0.9, T: 2}}},
		{"non-increasing P", []Breakpoint{{P: 0, T: 1}, {P: 0.5, T: 2}, {P: 0.5, T: 3}, {P: 1, T: 4}}},
		{"decreasing T", []Breakpoint{{P: 0, T: 1}, {P: 0.5, T: 0.5}, {P: 1, T: 4}}},
		{"negative T", []Breakpoint{{P: 0, T: -1}, {P: 1, T: 4}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewQuantileTable(tc.bps); err == nil {
				t.Errorf("NewQuantileTable(%v) succeeded, want error", tc.bps)
			}
		})
	}
}

func TestQuantileTableInterpolation(t *testing.T) {
	q := simpleTable(t)
	tests := []struct {
		p, want float64
	}{
		{0, 1}, {0.25, 1.5}, {0.5, 2}, {0.7, 3}, {0.9, 4}, {0.95, 7}, {1, 10},
		{-0.5, 1}, {1.5, 10}, // clamped
	}
	for _, tc := range tests {
		if got := q.Quantile(tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestQuantileTableCDF(t *testing.T) {
	q := simpleTable(t)
	tests := []struct {
		t, want float64
	}{
		{0.5, 0}, {1, 0}, {1.5, 0.25}, {2, 0.5}, {3, 0.7}, {4, 0.9}, {7, 0.95}, {10, 1}, {11, 1},
	}
	for _, tc := range tests {
		if got := q.CDF(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestQuantileTableFlatSegmentCDF(t *testing.T) {
	q, err := NewQuantileTable([]Breakpoint{
		{P: 0, T: 1}, {P: 0.3, T: 2}, {P: 0.7, T: 2}, {P: 1, T: 3},
	})
	if err != nil {
		t.Fatalf("NewQuantileTable: %v", err)
	}
	// A flat quantile segment is a point mass: CDF(2) must include it all.
	if got := q.CDF(2); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("CDF(2) = %v, want 0.7", got)
	}
}

func TestQuantileTableMeanExact(t *testing.T) {
	q := simpleTable(t)
	// Trapezoid integral: 0.5*1.5 + 0.4*3 + 0.1*7 = 0.75+1.2+0.7 = 2.65.
	if got := q.Mean(); math.Abs(got-2.65) > 1e-12 {
		t.Errorf("Mean() = %v, want 2.65", got)
	}
	if m := sampleMean(t, q, 200000, 7); math.Abs(m-2.65) > 0.02 {
		t.Errorf("sample mean = %v, want ~2.65", m)
	}
}

func TestQuantileTableRoundTripProperty(t *testing.T) {
	q := simpleTable(t)
	prop := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 1)
		return q.CDF(q.Quantile(p))+1e-9 >= p
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("CDF(Quantile(p)) >= p violated: %v", err)
	}
}

func TestScaleBody(t *testing.T) {
	q := simpleTable(t)
	scaled, err := q.ScaleBody(0.5, 2)
	if err != nil {
		t.Fatalf("ScaleBody: %v", err)
	}
	if got := scaled.Quantile(0); got != 2 {
		t.Errorf("scaled Quantile(0) = %v, want 2", got)
	}
	if got := scaled.Quantile(0.5); got != 4 {
		t.Errorf("scaled Quantile(0.5) = %v, want 4", got)
	}
	// Tail untouched.
	if got := scaled.Quantile(1); got != 10 {
		t.Errorf("scaled Quantile(1) = %v, want 10", got)
	}
	// Monotonicity violation: scaling the body above the fixed tail fails.
	if _, err := q.ScaleBody(0.5, 3); err == nil {
		t.Error("ScaleBody(0.5, 3) succeeded, want monotonicity error")
	}
	if _, err := q.ScaleBody(0.5, 0); err == nil {
		t.Error("ScaleBody with factor 0 succeeded, want error")
	}
	if _, err := q.ScaleBody(1.5, 1); err == nil {
		t.Error("ScaleBody with pBody > 1 succeeded, want error")
	}
}

func TestCalibrateMean(t *testing.T) {
	q := simpleTable(t)
	for _, target := range []float64{2.0, 2.65, 3.0} {
		cal, err := q.CalibrateMean(0.5, target)
		if err != nil {
			t.Fatalf("CalibrateMean(%v): %v", target, err)
		}
		if got := cal.Mean(); math.Abs(got-target) > 1e-9 {
			t.Errorf("calibrated mean = %v, want %v", got, target)
		}
		// Tail quantiles preserved.
		if got := cal.Quantile(0.95); math.Abs(got-q.Quantile(0.95)) > 1e-12 {
			t.Errorf("tail quantile moved: %v != %v", got, q.Quantile(0.95))
		}
	}
	if _, err := q.CalibrateMean(0.5, 0); err == nil {
		t.Error("CalibrateMean target 0 succeeded, want error")
	}
	// Unreachable target: tail alone already contributes more.
	if _, err := q.CalibrateMean(0.5, 0.01); err == nil {
		t.Error("CalibrateMean to unreachably small mean succeeded, want error")
	}
}

func TestQuantileTableSampleWithinSupport(t *testing.T) {
	q := simpleTable(t)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 10000; i++ {
		v := q.Sample(r)
		if v < 1 || v > 10 {
			t.Fatalf("Sample() = %v outside support [1, 10]", v)
		}
	}
}

func TestBreakpointsCopy(t *testing.T) {
	q := simpleTable(t)
	bps := q.Breakpoints()
	bps[0].T = 999
	if got := q.Quantile(0); got != 1 {
		t.Errorf("mutating Breakpoints() result changed the table: Quantile(0) = %v", got)
	}
}
