package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQueryCDFProduct(t *testing.T) {
	u1, _ := NewUniform(0, 1)
	u2, _ := NewUniform(0, 2)
	// At t=0.5: F1=0.5, F2=0.25 -> product 0.125.
	if got := QueryCDF([]Distribution{u1, u2}, 0.5); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("QueryCDF = %v, want 0.125", got)
	}
	if got := QueryCDF(nil, 0.5); got != 1 {
		t.Errorf("QueryCDF(no servers) = %v, want 1 (empty product)", got)
	}
}

func TestHomogeneousQueryQuantileClosedForm(t *testing.T) {
	exp, _ := NewExponential(1)
	// x_p(k) = F^{-1}(p^{1/k}).
	for _, k := range []int{1, 10, 100} {
		got, err := HomogeneousQueryQuantile(exp, k, 0.99)
		if err != nil {
			t.Fatalf("HomogeneousQueryQuantile: %v", err)
		}
		want := exp.Quantile(math.Pow(0.99, 1/float64(k)))
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("k=%d: got %v, want %v", k, got, want)
		}
		// Must grow with fanout.
		if k > 1 {
			base, _ := HomogeneousQueryQuantile(exp, 1, 0.99)
			if got <= base {
				t.Errorf("k=%d quantile %v not above fanout-1 quantile %v", k, got, base)
			}
		}
	}
	if _, err := HomogeneousQueryQuantile(exp, 0, 0.99); err == nil {
		t.Error("fanout 0 succeeded, want error")
	}
	if _, err := HomogeneousQueryQuantile(exp, 1, 1.5); err == nil {
		t.Error("p > 1 succeeded, want error")
	}
}

func TestQueryQuantileMatchesClosedFormWhenHomogeneous(t *testing.T) {
	exp, _ := NewExponential(1.7)
	servers := make([]Distribution, 25)
	for i := range servers {
		servers[i] = exp
	}
	got, err := QueryQuantile(servers, 0.99)
	if err != nil {
		t.Fatalf("QueryQuantile: %v", err)
	}
	want, _ := HomogeneousQueryQuantile(exp, 25, 0.99)
	if math.Abs(got-want)/want > 1e-6 {
		t.Errorf("QueryQuantile = %v, closed form = %v", got, want)
	}
}

func TestQueryQuantileHeterogeneous(t *testing.T) {
	fast, _ := NewExponential(1)
	slow, _ := NewExponential(10)
	got, err := QueryQuantile([]Distribution{fast, slow}, 0.99)
	if err != nil {
		t.Fatalf("QueryQuantile: %v", err)
	}
	// The slow server dominates: the query quantile must be at least the
	// slow server's own p99 (the other factor only pushes it up).
	if lo := slow.Quantile(0.99); got < lo*(1-1e-9) {
		t.Errorf("QueryQuantile = %v, want >= slow p99 %v", got, lo)
	}
	// And the product CDF at the result equals 0.99.
	if c := QueryCDF([]Distribution{fast, slow}, got); math.Abs(c-0.99) > 1e-6 {
		t.Errorf("QueryCDF at quantile = %v, want 0.99", c)
	}
}

func TestQueryQuantileErrors(t *testing.T) {
	if _, err := QueryQuantile(nil, 0.99); err == nil {
		t.Error("empty server set succeeded, want error")
	}
	exp, _ := NewExponential(1)
	if _, err := QueryQuantile([]Distribution{exp}, -0.1); err == nil {
		t.Error("negative p succeeded, want error")
	}
	if got, err := QueryQuantile([]Distribution{exp}, 0); err != nil || got != 0 {
		t.Errorf("p=0: got (%v, %v), want (0, nil)", got, err)
	}
}

func TestSLOViolationProbabilityPaperExample(t *testing.T) {
	// Introduction example: 1% per-task violation, fanout 100 ->
	// 1-0.99^100 = 63.4% query violation.
	got, err := SLOViolationProbability(0.01, 100)
	if err != nil {
		t.Fatalf("SLOViolationProbability: %v", err)
	}
	if math.Abs(got-0.634) > 0.001 {
		t.Errorf("violation = %v, want ~0.634", got)
	}
	// And with per-task 0.01%: 1-0.9999^100 ≈ 1%.
	got, err = SLOViolationProbability(0.0001, 100)
	if err != nil {
		t.Fatalf("SLOViolationProbability: %v", err)
	}
	if math.Abs(got-0.00995) > 0.0002 {
		t.Errorf("violation = %v, want ~0.00995", got)
	}
}

func TestRequiredTaskQuantileInverse(t *testing.T) {
	// RequiredTaskQuantile inverts SLOViolationProbability.
	prop := func(rawV float64, rawK uint8) bool {
		v := math.Mod(math.Abs(rawV), 0.999)
		k := int(rawK%200) + 1
		tv, err := RequiredTaskQuantile(v, k)
		if err != nil {
			return false
		}
		back, err := SLOViolationProbability(tv, k)
		if err != nil {
			return false
		}
		return math.Abs(back-v) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Errorf("inverse property violated: %v", err)
	}
	if _, err := RequiredTaskQuantile(0.01, 0); err == nil {
		t.Error("fanout 0 succeeded, want error")
	}
	if _, err := SLOViolationProbability(1.5, 10); err == nil {
		t.Error("probability > 1 succeeded, want error")
	}
}

// Property: query quantile is monotone in fanout and in p.
func TestQueryQuantileMonotoneProperty(t *testing.T) {
	exp, _ := NewExponential(1)
	prop := func(rawK uint8, rawP float64) bool {
		k := int(rawK%100) + 1
		p := 0.5 + math.Mod(math.Abs(rawP), 0.49)
		q1, err1 := HomogeneousQueryQuantile(exp, k, p)
		q2, err2 := HomogeneousQueryQuantile(exp, k+1, p)
		if err1 != nil || err2 != nil {
			return false
		}
		return q2+1e-12 >= q1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("fanout monotonicity violated: %v", err)
	}
}
