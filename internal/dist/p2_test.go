package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestP2QuantileValidation(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewP2Quantile(p); err == nil {
			t.Errorf("NewP2Quantile(%v) succeeded, want error", p)
		}
	}
	e, err := NewP2Quantile(0.99)
	if err != nil {
		t.Fatalf("NewP2Quantile: %v", err)
	}
	if got := e.P(); got != 0.99 {
		t.Errorf("P() = %v", got)
	}
	if _, err := e.Quantile(); err == nil {
		t.Error("Quantile on empty succeeded, want error")
	}
	if err := e.Add(math.NaN()); err == nil {
		t.Error("Add(NaN) succeeded, want error")
	}
}

func TestP2QuantileSmallCounts(t *testing.T) {
	e, _ := NewP2Quantile(0.5)
	for _, v := range []float64{5, 1, 3} {
		if err := e.Add(v); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	q, err := e.Quantile()
	if err != nil {
		t.Fatalf("Quantile: %v", err)
	}
	if q != 3 {
		t.Errorf("median of {1,3,5} = %v, want 3", q)
	}
	if e.Count() != 3 {
		t.Errorf("Count = %d", e.Count())
	}
}

// TestP2QuantileAccuracy compares the streaming estimate against exact
// quantiles on distributions of very different shape.
func TestP2QuantileAccuracy(t *testing.T) {
	exp, _ := NewExponential(1)
	ln, _ := NewLogNormal(0, 1)
	u, _ := NewUniform(2, 9)
	cases := []struct {
		name string
		d    Distribution
		tol  float64
	}{
		{"exponential", exp, 0.05},
		{"lognormal", ln, 0.10},
		{"uniform", u, 0.02},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, p := range []float64{0.5, 0.9, 0.99} {
				e, err := NewP2Quantile(p)
				if err != nil {
					t.Fatalf("NewP2Quantile: %v", err)
				}
				rng := rand.New(rand.NewSource(7))
				for i := 0; i < 200000; i++ {
					if err := e.Add(tc.d.Sample(rng)); err != nil {
						t.Fatalf("Add: %v", err)
					}
				}
				got, err := e.Quantile()
				if err != nil {
					t.Fatalf("Quantile: %v", err)
				}
				want := tc.d.Quantile(p)
				if math.Abs(got-want)/want > tc.tol {
					t.Errorf("p=%v: estimate %v, exact %v", p, got, want)
				}
			}
		})
	}
}

// TestP2QuantileVsOnlineCDF confirms the two streaming estimators agree,
// since P2Quantile is offered as the low-memory substitute.
func TestP2QuantileVsOnlineCDF(t *testing.T) {
	w := MustTailbenchWorkload("xapian")
	e, _ := NewP2Quantile(0.99)
	o := NewOnlineCDF(OnlineCDFConfig{})
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 150000; i++ {
		v := w.ServiceTime.Sample(rng)
		if err := e.Add(v); err != nil {
			t.Fatalf("Add: %v", err)
		}
		if err := o.Add(v); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	p2, err := e.Quantile()
	if err != nil {
		t.Fatalf("Quantile: %v", err)
	}
	hist := o.Quantile(0.99)
	if math.Abs(p2-hist)/hist > 0.06 {
		t.Errorf("P2 %v vs OnlineCDF %v disagree > 6%%", p2, hist)
	}
}

// TestP2QuantileMonotoneInput is the algorithm's classic stress case.
func TestP2QuantileMonotoneInput(t *testing.T) {
	e, _ := NewP2Quantile(0.9)
	for i := 1; i <= 100000; i++ {
		if err := e.Add(float64(i)); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	got, err := e.Quantile()
	if err != nil {
		t.Fatalf("Quantile: %v", err)
	}
	if math.Abs(got-90000)/90000 > 0.05 {
		t.Errorf("p90 of 1..100000 = %v, want ~90000", got)
	}
}
