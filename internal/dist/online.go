package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// OnlineCDFConfig configures an OnlineCDF.
type OnlineCDFConfig struct {
	// Min and Max bound the representable latency range; values outside
	// are clamped into the edge buckets. Defaults: 1e-3 and 1e6 ms.
	Min, Max float64
	// BucketsPerDecade controls resolution. Default 100 (≈2.3% relative
	// bucket width), well below the noise of any tail estimate here.
	BucketsPerDecade int
	// HalfLife, if positive, is the number of samples after which an old
	// observation's weight halves, implemented as lazy exponential decay
	// applied every DecayInterval samples. Zero disables decay (all
	// history weighs equally).
	HalfLife int
	// DecayInterval is how many Add calls occur between lazy decay sweeps.
	// Default 1024. Only meaningful when HalfLife > 0.
	DecayInterval int
}

func (c *OnlineCDFConfig) setDefaults() {
	if c.Min <= 0 {
		c.Min = 1e-3
	}
	if c.Max <= c.Min {
		c.Max = 1e6
	}
	if c.BucketsPerDecade <= 0 {
		c.BucketsPerDecade = 100
	}
	if c.DecayInterval <= 0 {
		c.DecayInterval = 1024
	}
}

// OnlineCDF is a streaming latency distribution built on a log-spaced
// bucket histogram. It implements the paper's online updating process
// (Section III.B.2): every merged task result contributes its observed
// post-queuing time, keeping the per-server CDFs current in the face of
// heterogeneity, skew, and drift. With a positive HalfLife, stale history
// decays so the estimate tracks regime changes.
//
// OnlineCDF is safe for concurrent use.
type OnlineCDF struct {
	mu      sync.RWMutex
	cfg     OnlineCDFConfig
	logMin  float64
	perDec  float64
	counts  []float64 // guarded by mu (bucket weights; the slice itself is fixed)
	total   float64   // guarded by mu
	sum     float64   // guarded by mu
	adds    int       // guarded by mu
	version uint64    // guarded by mu
	decayF  float64   // multiplicative decay applied every DecayInterval adds

	// Quantile memoization: a full Quantile call scans the histogram
	// (hundreds of buckets), while read-heavy phases (deadline budget
	// recomputes, testbed CDF reporting, repeated probes of the same p)
	// ask for the same probabilities over and over between writes. The
	// memo is a pure cache — it is dropped by every Add, so Quantile
	// always returns exactly what the unmemoized scan would.
	qmemo     map[float64]float64 // guarded by mu (valid while qmemoAdds == adds)
	qmemoAdds int                 // guarded by mu
}

// quantileMemoMax caps the memo so callers probing many distinct
// probabilities (e.g. inverse-transform sampling) cannot grow it without
// bound; on overflow the memo simply resets.
const quantileMemoMax = 256

// NewOnlineCDF returns an empty online CDF with the given configuration.
func NewOnlineCDF(cfg OnlineCDFConfig) *OnlineCDF {
	cfg.setDefaults()
	decades := math.Log10(cfg.Max / cfg.Min)
	n := int(math.Ceil(decades*float64(cfg.BucketsPerDecade))) + 1
	o := &OnlineCDF{
		cfg:    cfg,
		logMin: math.Log10(cfg.Min),
		perDec: float64(cfg.BucketsPerDecade),
		counts: make([]float64, n),
	}
	if cfg.HalfLife > 0 {
		o.decayF = math.Exp2(-float64(cfg.DecayInterval) / float64(cfg.HalfLife))
	}
	return o
}

// bucketLocked returns the bucket index for latency t (clamped);
// callers hold mu.
func (o *OnlineCDF) bucketLocked(t float64) int {
	if t <= o.cfg.Min {
		return 0
	}
	i := int((math.Log10(t) - o.logMin) * o.perDec)
	if i >= len(o.counts) {
		i = len(o.counts) - 1
	}
	return i
}

// bucketLow returns the lower edge of bucket i.
func (o *OnlineCDF) bucketLow(i int) float64 {
	return math.Pow(10, o.logMin+float64(i)/o.perDec)
}

// Add records one observed latency. Negative or NaN values are rejected.
func (o *OnlineCDF) Add(t float64) error {
	if t < 0 || math.IsNaN(t) {
		return fmt.Errorf("dist: invalid latency observation %v", t)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.counts[o.bucketLocked(t)]++
	o.total++
	o.sum += t
	o.adds++
	if o.decayF > 0 && o.adds%o.cfg.DecayInterval == 0 {
		for i := range o.counts {
			o.counts[i] *= o.decayF
		}
		o.total *= o.decayF
		o.sum *= o.decayF
		o.version++
	} else if o.adds%o.cfg.DecayInterval == 0 {
		// Even without decay, bump the version periodically so consumers
		// caching derived quantities refresh as data accumulates.
		o.version++
	}
	return nil
}

// Count returns the current (possibly decayed) total weight.
func (o *OnlineCDF) Count() float64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.total
}

// Version returns a counter that increases when the distribution has
// changed enough that cached derivations (e.g. per-fanout budget tables)
// should be recomputed.
func (o *OnlineCDF) Version() uint64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.version
}

// CDF implements Distribution.
func (o *OnlineCDF) CDF(t float64) float64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if o.total == 0 {
		return 0
	}
	if t < o.cfg.Min {
		return 0
	}
	b := o.bucketLocked(t)
	var c float64
	for i := 0; i < b; i++ {
		c += o.counts[i]
	}
	// Linear interpolation within the bucket.
	lo, hi := o.bucketLow(b), o.bucketLow(b+1)
	frac := 1.0
	if hi > lo {
		frac = math.Min(1, math.Max(0, (t-lo)/(hi-lo)))
	}
	c += o.counts[b] * frac
	return math.Min(1, c/o.total)
}

// Quantile implements Distribution. Results are memoized until the next
// Add, so repeated queries at the same probability between writes cost
// one map lookup instead of a histogram scan.
func (o *OnlineCDF) Quantile(p float64) float64 {
	p = clampProb(p)
	o.mu.RLock()
	if o.qmemo != nil && o.qmemoAdds == o.adds {
		if v, ok := o.qmemo[p]; ok {
			o.mu.RUnlock()
			return v
		}
	}
	if o.total == 0 {
		o.mu.RUnlock()
		return 0
	}
	o.mu.RUnlock()
	// Miss: recompute and record under the write lock, so the stored
	// value is consistent with the qmemoAdds it is filed under even if
	// Adds landed between the two lock acquisitions.
	o.mu.Lock()
	defer o.mu.Unlock()
	v := o.quantileLocked(p)
	if o.qmemo == nil || o.qmemoAdds != o.adds || len(o.qmemo) >= quantileMemoMax {
		o.qmemo = make(map[float64]float64, 8)
		o.qmemoAdds = o.adds
	}
	o.qmemo[p] = v
	return v
}

// quantileLocked scans the histogram for the p-quantile; callers hold mu.
func (o *OnlineCDF) quantileLocked(p float64) float64 {
	if o.total == 0 {
		return 0
	}
	target := p * o.total
	var c float64
	for i, w := range o.counts {
		if c+w >= target && w > 0 {
			lo, hi := o.bucketLow(i), o.bucketLow(i+1)
			frac := (target - c) / w
			return lo + frac*(hi-lo)
		}
		c += w
	}
	return o.bucketLow(len(o.counts))
}

// Mean implements Distribution.
func (o *OnlineCDF) Mean() float64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if o.total == 0 {
		return 0
	}
	return o.sum / o.total
}

// Sample implements Distribution (inverse transform on the histogram).
// It bypasses the quantile memo: random probabilities never repeat, so
// caching them would only churn the memo.
func (o *OnlineCDF) Sample(r *rand.Rand) float64 {
	p := clampProb(r.Float64())
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.quantileLocked(p)
}

// Seed bulk-loads the histogram from a distribution, emulating the paper's
// offline estimation process: n synthetic samples drawn at evenly spaced
// quantiles initialize every server's CDF before the service starts.
func (o *OnlineCDF) Seed(d Distribution, n int) error {
	if n <= 0 {
		return fmt.Errorf("dist: seed count must be positive, got %d", n)
	}
	for i := 0; i < n; i++ {
		p := (float64(i) + 0.5) / float64(n)
		if err := o.Add(d.Quantile(p)); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot materializes the current state as an immutable QuantileTable
// with roughly maxPoints breakpoints. Returns an error when empty.
func (o *OnlineCDF) Snapshot(maxPoints int) (*QuantileTable, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if o.total == 0 {
		return nil, fmt.Errorf("dist: snapshot of empty online CDF")
	}
	if maxPoints < 2 {
		return nil, fmt.Errorf("dist: snapshot needs >= 2 points, got %d", maxPoints)
	}
	// Walk buckets accumulating probability; emit a breakpoint whenever
	// enough probability has accumulated, plus fine-grained tail points.
	var bps []Breakpoint
	emit := func(p, t float64) {
		if len(bps) > 0 {
			last := bps[len(bps)-1]
			if p <= last.P {
				return
			}
			if t < last.T {
				t = last.T
			}
		}
		bps = append(bps, Breakpoint{P: p, T: t})
	}
	// First non-empty bucket's lower edge anchors P=0.
	first := -1
	for i, w := range o.counts {
		if w > 0 {
			first = i
			break
		}
	}
	emit(0, o.bucketLow(first))
	step := 1.0 / float64(maxPoints)
	var c float64
	nextP := step
	for i, w := range o.counts {
		if w == 0 {
			continue
		}
		c += w
		p := c / o.total
		if p >= nextP || 1-p < 0.02 {
			emit(math.Min(p, 1), o.bucketLow(i+1))
			nextP = p + step
		}
	}
	emit(1, o.bucketLow(len(o.counts)))
	if len(bps) < 2 {
		// All mass in one bucket: synthesize a two-point table.
		t := bps[0].T
		bps = []Breakpoint{{P: 0, T: t}, {P: 1, T: t}}
	}
	return NewQuantileTable(bps)
}
