package dist

import (
	"fmt"
	"math"
	"sort"
)

// This file defines the three Tailbench-derived task service-time models
// used throughout the paper's evaluation (Section IV.A, Fig. 3, Table II):
// Masstree (in-memory key-value store), Shore (SSD-backed transactional
// database) and Xapian (web search).
//
// Substitution note (see DESIGN.md §4): the paper collects service-time
// samples by running the actual Tailbench C++ applications. Here each
// workload is a piecewise-linear quantile model whose tail breakpoints are
// placed exactly at the published unloaded 99th-percentile query tails for
// fanouts 1, 10, and 100 (Table II) and whose body is shaped after Fig. 3,
// then affinely calibrated so the mean task service time matches Table II
// exactly. The scheduler only ever consumes service-time samples and their
// empirical CDF, so all downstream code paths are exercised identically.

// TailbenchStats records the published Table II statistics for a workload.
type TailbenchStats struct {
	MeanMs  float64 // Tm: mean task service time (ms)
	X99K1   float64 // x99^u(1): unloaded p99 query tail at fanout 1 (ms)
	X99K10  float64 // x99^u(10) (ms)
	X99K100 float64 // x99^u(100) (ms)
}

// Workload couples a named service-time distribution with the paper
// statistics it was calibrated against.
type Workload struct {
	Name        string
	Description string
	ServiceTime *QuantileTable
	Paper       TailbenchStats
}

// Tail probabilities at which Table II pins the quantile function:
// x99^u(k) = Q(0.99^{1/k}).
var (
	p99K1   = 0.99
	p99K10  = math.Pow(0.99, 1.0/10)
	p99K100 = math.Pow(0.99, 1.0/100)
)

// tailbenchSpec is the pre-calibration shape of one workload model.
type tailbenchSpec struct {
	description string
	paper       TailbenchStats
	body        []Breakpoint // Fig. 3 body shape, P strictly increasing, all P < p99K1
	pBody       float64      // breakpoints at P <= pBody are scaled during calibration
	maxMs       float64      // Q(1): upper support bound
}

var tailbenchSpecs = map[string]tailbenchSpec{
	"masstree": {
		description: "in-memory key-value store: tight unimodal service times around 0.18 ms",
		paper:       TailbenchStats{MeanMs: 0.176, X99K1: 0.219, X99K10: 0.247, X99K100: 0.473},
		body: []Breakpoint{
			{P: 0, T: 0.06}, {P: 0.10, T: 0.13}, {P: 0.50, T: 0.18}, {P: 0.90, T: 0.205},
		},
		pBody: 0.90,
		maxMs: 0.70,
	},
	"shore": {
		description: "SSD-backed transactional database: bimodal, fast in-cache mode near 0.2 ms and slow storage mode near 2 ms",
		paper:       TailbenchStats{MeanMs: 0.341, X99K1: 2.095, X99K10: 2.721, X99K100: 2.829},
		body: []Breakpoint{
			{P: 0, T: 0.05}, {P: 0.50, T: 0.15}, {P: 0.80, T: 0.25}, {P: 0.90, T: 0.60}, {P: 0.95, T: 1.20},
		},
		pBody: 0.95,
		maxMs: 3.0,
	},
	"xapian": {
		description: "web search: broad service-time body from 0.3 ms to 2.6 ms",
		paper:       TailbenchStats{MeanMs: 0.925, X99K1: 2.590, X99K10: 2.998, X99K100: 3.308},
		body: []Breakpoint{
			{P: 0, T: 0.25}, {P: 0.25, T: 0.50}, {P: 0.50, T: 0.80}, {P: 0.75, T: 1.10}, {P: 0.90, T: 1.50}, {P: 0.95, T: 1.80},
		},
		pBody: 0.95,
		maxMs: 3.5,
	},
}

// TailbenchNames returns the available workload names in sorted order.
func TailbenchNames() []string {
	names := make([]string, 0, len(tailbenchSpecs))
	for n := range tailbenchSpecs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TailbenchWorkload constructs the named calibrated workload model.
// Valid names are returned by TailbenchNames.
func TailbenchWorkload(name string) (*Workload, error) {
	spec, ok := tailbenchSpecs[name]
	if !ok {
		return nil, fmt.Errorf("dist: unknown tailbench workload %q (have %v)", name, TailbenchNames())
	}
	bps := append([]Breakpoint(nil), spec.body...)
	bps = append(bps,
		Breakpoint{P: p99K1, T: spec.paper.X99K1},
		Breakpoint{P: p99K10, T: spec.paper.X99K10},
		Breakpoint{P: p99K100, T: spec.paper.X99K100},
		Breakpoint{P: 1, T: spec.maxMs},
	)
	raw, err := NewQuantileTable(bps)
	if err != nil {
		return nil, fmt.Errorf("dist: building %s model: %w", name, err)
	}
	calibrated, err := raw.CalibrateMean(spec.pBody, spec.paper.MeanMs)
	if err != nil {
		return nil, fmt.Errorf("dist: calibrating %s model to mean %v ms: %w", name, spec.paper.MeanMs, err)
	}
	return &Workload{
		Name:        name,
		Description: spec.description,
		ServiceTime: calibrated,
		Paper:       spec.paper,
	}, nil
}

// MustTailbenchWorkload is TailbenchWorkload panicking on error, for use
// with the statically known names.
func MustTailbenchWorkload(name string) *Workload {
	w, err := TailbenchWorkload(name)
	if err != nil {
		panic(err)
	}
	return w
}

// X99 returns the unloaded 99th-percentile query tail latency of this
// workload at the given fanout, x99^u(kf) (Eqn. 2 specialized to the
// homogeneous case).
func (w *Workload) X99(fanout int) (float64, error) {
	return HomogeneousQueryQuantile(w.ServiceTime, fanout, 0.99)
}
