package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Deterministic is a point mass at V.
type Deterministic struct{ V float64 }

// CDF implements Distribution.
func (d Deterministic) CDF(t float64) float64 {
	if t >= d.V {
		return 1
	}
	return 0
}

// Quantile implements Distribution.
func (d Deterministic) Quantile(float64) float64 { return d.V }

// Mean implements Distribution.
func (d Deterministic) Mean() float64 { return d.V }

// Sample implements Distribution.
func (d Deterministic) Sample(*rand.Rand) float64 { return d.V }

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct{ Lo, Hi float64 }

// NewUniform validates the bounds and returns a Uniform distribution.
func NewUniform(lo, hi float64) (Uniform, error) {
	if hi < lo {
		return Uniform{}, fmt.Errorf("dist: uniform bounds inverted: [%v, %v]", lo, hi)
	}
	return Uniform{Lo: lo, Hi: hi}, nil
}

// CDF implements Distribution.
func (u Uniform) CDF(t float64) float64 {
	switch {
	case t <= u.Lo:
		return 0
	case t >= u.Hi:
		return 1
	default:
		return (t - u.Lo) / (u.Hi - u.Lo)
	}
}

// Quantile implements Distribution.
func (u Uniform) Quantile(p float64) float64 {
	p = clampProb(p)
	return u.Lo + p*(u.Hi-u.Lo)
}

// Mean implements Distribution.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Sample implements Distribution.
func (u Uniform) Sample(r *rand.Rand) float64 { return u.Quantile(r.Float64()) }

// Exponential is the exponential distribution with the given mean
// (rate = 1/Mean). It is the service-time analog of the Poisson
// inter-arrival processes used by the workload package.
type Exponential struct{ M float64 }

// NewExponential validates the mean and returns an Exponential distribution.
func NewExponential(mean float64) (Exponential, error) {
	if mean <= 0 {
		return Exponential{}, fmt.Errorf("dist: exponential mean must be positive, got %v", mean)
	}
	return Exponential{M: mean}, nil
}

// CDF implements Distribution.
func (e Exponential) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return 1 - math.Exp(-t/e.M)
}

// Quantile implements Distribution.
func (e Exponential) Quantile(p float64) float64 {
	p = clampProb(p)
	if p >= 1 {
		return math.Inf(1)
	}
	return -e.M * math.Log(1-p)
}

// Mean implements Distribution.
func (e Exponential) Mean() float64 { return e.M }

// Sample implements Distribution.
func (e Exponential) Sample(r *rand.Rand) float64 { return e.M * r.ExpFloat64() }

// LogNormal is the log-normal distribution: ln X ~ N(Mu, Sigma^2).
// Log-normals are the standard model for service-time bodies in
// latency-critical systems.
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// NewLogNormal validates sigma and returns a LogNormal distribution.
func NewLogNormal(mu, sigma float64) (LogNormal, error) {
	if sigma <= 0 {
		return LogNormal{}, fmt.Errorf("dist: lognormal sigma must be positive, got %v", sigma)
	}
	return LogNormal{Mu: mu, Sigma: sigma}, nil
}

// CDF implements Distribution.
func (l LogNormal) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return 0.5 * math.Erfc(-(math.Log(t)-l.Mu)/(l.Sigma*math.Sqrt2))
}

// Quantile implements Distribution.
func (l LogNormal) Quantile(p float64) float64 {
	p = clampProb(p)
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return math.Exp(l.Mu + l.Sigma*math.Sqrt2*erfcInv(2*(1-p)))
}

// Mean implements Distribution.
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Sample implements Distribution.
func (l LogNormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// BoundedPareto is a Pareto distribution with shape Alpha and scale Xm,
// truncated at Cap to keep simulated tails finite. Pareto inter-arrival
// gaps model the bursty arrival process of Section IV.B; bounded Pareto
// service times model heavy-tailed task outliers.
type BoundedPareto struct {
	Xm    float64 // scale (minimum value), > 0
	Alpha float64 // shape, > 0
	Cap   float64 // upper truncation point, > Xm
}

// NewBoundedPareto validates the parameters and returns a BoundedPareto.
func NewBoundedPareto(xm, alpha, cap float64) (BoundedPareto, error) {
	if xm <= 0 || alpha <= 0 || cap <= xm {
		return BoundedPareto{}, fmt.Errorf("dist: invalid bounded pareto (xm=%v alpha=%v cap=%v)", xm, alpha, cap)
	}
	return BoundedPareto{Xm: xm, Alpha: alpha, Cap: cap}, nil
}

// CDF implements Distribution.
func (b BoundedPareto) CDF(t float64) float64 {
	switch {
	case t <= b.Xm:
		return 0
	case t >= b.Cap:
		return 1
	}
	num := 1 - math.Pow(b.Xm/t, b.Alpha)
	den := 1 - math.Pow(b.Xm/b.Cap, b.Alpha)
	return num / den
}

// Quantile implements Distribution.
func (b BoundedPareto) Quantile(p float64) float64 {
	p = clampProb(p)
	den := 1 - math.Pow(b.Xm/b.Cap, b.Alpha)
	return b.Xm * math.Pow(1-p*den, -1/b.Alpha)
}

// Mean implements Distribution.
func (b BoundedPareto) Mean() float64 {
	den := 1 - math.Pow(b.Xm/b.Cap, b.Alpha)
	if b.Alpha == 1 {
		return b.Xm * math.Log(b.Cap/b.Xm) / den
	}
	a := b.Alpha
	return a * b.Xm / (a - 1) * (1 - math.Pow(b.Xm/b.Cap, a-1)) / den
}

// Sample implements Distribution.
func (b BoundedPareto) Sample(r *rand.Rand) float64 { return b.Quantile(r.Float64()) }

// Shifted adds a constant offset to another distribution, modelling fixed
// overheads such as dispatch or network round-trip floors.
type Shifted struct {
	D      Distribution
	Offset float64
}

// CDF implements Distribution.
func (s Shifted) CDF(t float64) float64 { return s.D.CDF(t - s.Offset) }

// Quantile implements Distribution.
func (s Shifted) Quantile(p float64) float64 { return s.D.Quantile(p) + s.Offset }

// Mean implements Distribution.
func (s Shifted) Mean() float64 { return s.D.Mean() + s.Offset }

// Sample implements Distribution.
func (s Shifted) Sample(r *rand.Rand) float64 { return s.D.Sample(r) + s.Offset }

// Scaled multiplies another distribution by a positive factor, modelling
// slower or faster server hardware sharing a common latency shape.
type Scaled struct {
	D      Distribution
	Factor float64
}

// NewScaled validates the factor and returns a Scaled distribution.
func NewScaled(d Distribution, factor float64) (Scaled, error) {
	if factor <= 0 {
		return Scaled{}, fmt.Errorf("dist: scale factor must be positive, got %v", factor)
	}
	return Scaled{D: d, Factor: factor}, nil
}

// CDF implements Distribution.
func (s Scaled) CDF(t float64) float64 { return s.D.CDF(t / s.Factor) }

// Quantile implements Distribution.
func (s Scaled) Quantile(p float64) float64 { return s.D.Quantile(p) * s.Factor }

// Mean implements Distribution.
func (s Scaled) Mean() float64 { return s.D.Mean() * s.Factor }

// Sample implements Distribution.
func (s Scaled) Sample(r *rand.Rand) float64 { return s.D.Sample(r) * s.Factor }

// Mixture is a finite mixture of component distributions with the given
// weights. Mixtures model bimodal service times such as Shore's
// cache-hit/SSD-miss split.
type Mixture struct {
	components []Distribution
	weights    []float64 // normalized, same length as components
	cum        []float64 // cumulative weights for sampling
}

// NewMixture builds a mixture from parallel component and weight slices.
// Weights must be non-negative with a positive sum; they are normalized.
func NewMixture(components []Distribution, weights []float64) (*Mixture, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("dist: mixture needs at least one component")
	}
	if len(components) != len(weights) {
		return nil, fmt.Errorf("dist: mixture has %d components but %d weights", len(components), len(weights))
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("dist: mixture weight %d is %v", i, w)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("dist: mixture weights sum to %v", sum)
	}
	m := &Mixture{
		components: append([]Distribution(nil), components...),
		weights:    make([]float64, len(weights)),
		cum:        make([]float64, len(weights)),
	}
	var c float64
	for i, w := range weights {
		m.weights[i] = w / sum
		c += w / sum
		m.cum[i] = c
	}
	m.cum[len(m.cum)-1] = 1 // guard against rounding
	return m, nil
}

// CDF implements Distribution.
func (m *Mixture) CDF(t float64) float64 {
	var s float64
	for i, d := range m.components {
		s += m.weights[i] * d.CDF(t)
	}
	return s
}

// Quantile implements Distribution. Mixtures have no closed-form quantile;
// it is computed by bisection over the CDF.
func (m *Mixture) Quantile(p float64) float64 {
	p = clampProb(p)
	return invertCDF(m.CDF, p, quantileHint(m.components, p))
}

// Mean implements Distribution.
func (m *Mixture) Mean() float64 {
	var s float64
	for i, d := range m.components {
		s += m.weights[i] * d.Mean()
	}
	return s
}

// Sample implements Distribution.
func (m *Mixture) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.components) {
		i = len(m.components) - 1
	}
	return m.components[i].Sample(r)
}

// quantileHint returns an upper bound for the p-quantile of a mixture or
// product of the given components, used to bracket bisection.
func quantileHint(components []Distribution, p float64) float64 {
	hi := 1e-9
	for _, d := range components {
		// The mixture p-quantile is at most the largest component
		// (1 - (1-p)/n)-quantile; use a slightly generous probe.
		q := d.Quantile(math.Min(1, p+0.5*(1-p)))
		if !math.IsInf(q, 1) && q > hi {
			hi = q
		}
	}
	return hi
}

// invertCDF finds the smallest t with cdf(t) >= p by expanding the bracket
// from hint and bisecting. cdf must be non-decreasing.
func invertCDF(cdf func(float64) float64, p float64, hint float64) float64 {
	if p <= 0 {
		return 0
	}
	hi := hint
	if hi <= 0 {
		hi = 1
	}
	for i := 0; cdf(hi) < p && i < 128; i++ {
		hi *= 2
	}
	lo := 0.0
	for i := 0; i < 96; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) >= p {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// erfcInv returns the inverse of math.Erfc on (0, 2), via Newton refinement
// of a rational initial estimate. Accuracy is ~1e-12 over the probabilities
// used in tail math, which is far tighter than the statistical noise of any
// experiment in this repository.
func erfcInv(x float64) float64 {
	if x <= 0 {
		return math.Inf(1)
	}
	if x >= 2 {
		return math.Inf(-1)
	}
	// Initial estimate from the inverse of the normal CDF
	// (Beasley-Springer-Moro style), then polish with Newton on Erfc.
	sign := 1.0
	if x > 1 {
		sign = -1
		x = 2 - x
	}
	t := math.Sqrt(-2 * math.Log(x/2))
	z := t - (2.30753+0.27061*t)/(1+0.99229*t+0.04481*t*t)
	z /= math.Sqrt2
	for i := 0; i < 4; i++ {
		e := math.Erfc(z) - x
		d := -2 / math.SqrtPi * math.Exp(-z*z)
		if d == 0 {
			break
		}
		z -= e / d
	}
	return sign * z
}
