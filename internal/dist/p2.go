package dist

import (
	"fmt"
	"math"
)

// P2Quantile is the Jain–Chlamtac P² streaming estimator of a single
// quantile: five markers, O(1) memory and O(1) update, no buckets. It is
// the memory-light alternative to OnlineCDF when a deployment tracks only
// one or two percentiles per server (e.g. just the p99 feeding Eqn. 6)
// instead of full CDFs — thousands of servers times one float-quintet
// instead of a histogram each.
//
// P2Quantile is not safe for concurrent use; wrap it if needed.
type P2Quantile struct {
	p     float64
	n     int
	q     [5]float64 // marker heights
	pos   [5]float64 // marker positions (1-based)
	want  [5]float64 // desired positions
	dWant [5]float64 // desired-position increments
	init  []float64  // first observations until 5 arrive
}

// NewP2Quantile tracks the p-quantile, p in (0, 1).
func NewP2Quantile(p float64) (*P2Quantile, error) {
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("dist: p2 quantile probability %v outside (0, 1)", p)
	}
	e := &P2Quantile{p: p}
	e.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	e.dWant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e, nil
}

// P returns the tracked probability.
func (e *P2Quantile) P() float64 { return e.p }

// Count returns the number of observations.
func (e *P2Quantile) Count() int { return e.n }

// Add feeds one observation.
func (e *P2Quantile) Add(x float64) error {
	if math.IsNaN(x) {
		return fmt.Errorf("dist: p2 observation is NaN")
	}
	e.n++
	if e.n <= 5 {
		e.init = append(e.init, x)
		if e.n == 5 {
			// Initialize markers from the sorted first five.
			sortFive(e.init)
			for i := 0; i < 5; i++ {
				e.q[i] = e.init[i]
				e.pos[i] = float64(i + 1)
			}
			e.init = nil
		}
		return nil
	}

	// Find the cell k containing x and update extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.dWant[i]
	}
	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := sign(d)
			qNew := e.parabolic(i, s)
			if e.q[i-1] < qNew && qNew < e.q[i+1] {
				e.q[i] = qNew
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
	return nil
}

// Quantile returns the current estimate. With fewer than 5 observations it
// falls back to the sorted sample.
func (e *P2Quantile) Quantile() (float64, error) {
	if e.n == 0 {
		return 0, fmt.Errorf("dist: p2 quantile of empty estimator")
	}
	if e.n < 5 {
		buf := append([]float64(nil), e.init...)
		sortFive(buf)
		idx := int(e.p * float64(len(buf)))
		if idx >= len(buf) {
			idx = len(buf) - 1
		}
		return buf[idx], nil
	}
	return e.q[2], nil
}

// parabolic is the P² piecewise-parabolic marker update.
func (e *P2Quantile) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+s)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-s)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback marker update.
func (e *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

func sign(v float64) float64 {
	if v >= 0 {
		return 1
	}
	return -1
}

// sortFive sorts a tiny slice in place (insertion sort; n <= 5).
func sortFive(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
