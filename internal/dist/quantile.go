package dist

import (
	"fmt"
	"math/rand"
)

// Breakpoint is one (probability, value) pair of a piecewise-linear
// quantile function.
type Breakpoint struct {
	P float64 // cumulative probability in [0, 1]
	T float64 // latency value at that probability
}

// QuantileTable is a distribution defined by a piecewise-linear quantile
// function through a set of breakpoints. It is the workhorse model of this
// repository: the Tailbench workload models are hand-calibrated tables, and
// ECDF/OnlineCDF snapshots are materialized as tables.
//
// Quantile and CDF run in O(1) expected time: fixed-stride bucket
// indexes over the breakpoints' P and T axes (built once at
// construction) narrow each lookup to the same bracket binary search
// would find, and the interpolation is unchanged — so every output is
// bit-identical to the former sort.Search implementation while the
// inverse-transform sampling hot path loses its log factor and its
// closure-calling overhead.
//
// The table is immutable after construction and safe for concurrent use.
type QuantileTable struct {
	bps  []Breakpoint
	mean float64
	pidx bucketIndex // probability axis, backs Quantile
	tidx bucketIndex // value axis, backs CDF
}

// bucketIndex accelerates lower-bound searches over a sorted float axis.
// For bucket k covering [lo + k*stride, lo + (k+1)*stride), start[k] is
// the smallest element index whose axis value is >= the bucket's lower
// edge. A lookup seeds from start[bucket(x)] and walks the few elements
// sharing the bucket; the walk (not the seed) decides the final index,
// so floating-point rounding in the bucket computation can never change
// the result — only the walk length.
type bucketIndex struct {
	lo, stride float64
	start      []int32
}

// newBucketIndex indexes axis (sorted ascending) with about 2 buckets
// per element, capping the expected per-lookup walk at O(1).
func newBucketIndex(axis func(i int) float64, n int) bucketIndex {
	lo, hi := axis(0), axis(n-1)
	if n < 2 || hi <= lo {
		return bucketIndex{} // degenerate axis; lookups fall back to a walk
	}
	buckets := 2 * n
	idx := bucketIndex{lo: lo, stride: (hi - lo) / float64(buckets), start: make([]int32, buckets+1)}
	e := 0
	for k := 0; k <= buckets; k++ {
		edge := lo + float64(k)*idx.stride
		for e < n && axis(e) < edge {
			e++
		}
		idx.start[k] = int32(e)
	}
	return idx
}

// seed returns a starting element index for the lower-bound search of x.
// It is only a hint: callers must walk to the exact bracket.
func (b *bucketIndex) seed(x float64) int {
	if len(b.start) == 0 {
		return 0
	}
	k := int((x - b.lo) / b.stride)
	if k < 0 {
		return 0
	}
	if k >= len(b.start) {
		k = len(b.start) - 1
	}
	return int(b.start[k])
}

// NewQuantileTable builds a table from breakpoints. Requirements:
// strictly increasing P starting at 0 and ending at 1, and non-decreasing
// non-negative T.
func NewQuantileTable(bps []Breakpoint) (*QuantileTable, error) {
	if len(bps) < 2 {
		return nil, fmt.Errorf("dist: quantile table needs >= 2 breakpoints, got %d", len(bps))
	}
	if bps[0].P != 0 {
		return nil, fmt.Errorf("dist: quantile table must start at P=0, got %v", bps[0].P)
	}
	if bps[len(bps)-1].P != 1 {
		return nil, fmt.Errorf("dist: quantile table must end at P=1, got %v", bps[len(bps)-1].P)
	}
	for i := 1; i < len(bps); i++ {
		if bps[i].P <= bps[i-1].P {
			return nil, fmt.Errorf("dist: quantile table P not strictly increasing at index %d (%v <= %v)", i, bps[i].P, bps[i-1].P)
		}
		if bps[i].T < bps[i-1].T {
			return nil, fmt.Errorf("dist: quantile table T decreasing at index %d (%v < %v)", i, bps[i].T, bps[i-1].T)
		}
	}
	if bps[0].T < 0 {
		return nil, fmt.Errorf("dist: quantile table has negative latency %v", bps[0].T)
	}
	q := &QuantileTable{bps: append([]Breakpoint(nil), bps...)}
	q.mean = q.integrate()
	q.pidx = newBucketIndex(func(i int) float64 { return q.bps[i].P }, len(q.bps))
	q.tidx = newBucketIndex(func(i int) float64 { return q.bps[i].T }, len(q.bps))
	return q, nil
}

// MustQuantileTable is NewQuantileTable for statically known tables; it
// panics on invalid input.
func MustQuantileTable(bps []Breakpoint) *QuantileTable {
	q, err := NewQuantileTable(bps)
	if err != nil {
		panic(err)
	}
	return q
}

// integrate computes E[X] = ∫₀¹ Q(u) du exactly (trapezoid per segment,
// which is exact for a piecewise-linear Q).
func (q *QuantileTable) integrate() float64 {
	var m float64
	for i := 1; i < len(q.bps); i++ {
		a, b := q.bps[i-1], q.bps[i]
		m += (b.P - a.P) * (a.T + b.T) / 2
	}
	return m
}

// Breakpoints returns a copy of the table's breakpoints.
func (q *QuantileTable) Breakpoints() []Breakpoint {
	return append([]Breakpoint(nil), q.bps...)
}

// Quantile implements Distribution. The bucket index narrows to the
// exact bracket sort.Search would find; the interpolation is identical,
// so outputs are bit-for-bit those of the binary-search implementation.
func (q *QuantileTable) Quantile(p float64) float64 {
	p = clampProb(p)
	// Inline lower bound over the P axis (smallest i with P[i] >= p),
	// seeded by the bucket index; the explicit walk avoids the closure
	// call of bucketIndex.lowerBound on the sampling hot path.
	n := len(q.bps)
	i := q.pidx.seed(p)
	for i > 0 && q.bps[i-1].P >= p {
		i--
	}
	for i < n && q.bps[i].P < p {
		i++
	}
	if i == 0 {
		return q.bps[0].T
	}
	if i >= n {
		return q.bps[n-1].T
	}
	a, b := q.bps[i-1], q.bps[i]
	frac := (p - a.P) / (b.P - a.P)
	return a.T + frac*(b.T-a.T)
}

// CDF implements Distribution. For flat segments (repeated T) it returns
// the highest probability attaining t, consistent with P(X <= t).
func (q *QuantileTable) CDF(t float64) float64 {
	if t < q.bps[0].T {
		return 0
	}
	last := q.bps[len(q.bps)-1]
	if t >= last.T {
		return 1
	}
	// Find the last breakpoint with T <= t, then interpolate within the
	// following segment: an upper-bound walk (smallest i with T[i] > t)
	// seeded by the T-axis bucket index, matching the former sort.Search
	// bracket exactly.
	n := len(q.bps)
	i := q.tidx.seed(t)
	for i > 0 && q.bps[i-1].T > t {
		i--
	}
	for i < n && q.bps[i].T <= t {
		i++
	}
	// i >= 1 because t >= bps[0].T, and i < len because t < last.T.
	a, b := q.bps[i-1], q.bps[i]
	// Breakpoints are T-sorted, so <= here means a degenerate (zero-width)
	// segment; bail before dividing by it.
	if b.T <= a.T {
		return b.P
	}
	frac := (t - a.T) / (b.T - a.T)
	return a.P + frac*(b.P-a.P)
}

// Mean implements Distribution.
func (q *QuantileTable) Mean() float64 { return q.mean }

// Sample implements Distribution (inverse-transform sampling).
func (q *QuantileTable) Sample(r *rand.Rand) float64 { return q.Quantile(r.Float64()) }

// ScaleBody returns a copy of the table with every breakpoint at P <= pBody
// multiplied by factor. Breakpoints above pBody are untouched, so tail
// quantiles are preserved exactly. Used to calibrate a model's mean without
// disturbing its published tail statistics. Returns an error if the scaled
// body would overtake the fixed tail (monotonicity violation).
func (q *QuantileTable) ScaleBody(pBody, factor float64) (*QuantileTable, error) {
	if err := checkProb(pBody); err != nil {
		return nil, err
	}
	if factor <= 0 {
		return nil, fmt.Errorf("dist: body scale factor must be positive, got %v", factor)
	}
	bps := q.Breakpoints()
	for i := range bps {
		if bps[i].P <= pBody {
			bps[i].T *= factor
		}
	}
	return NewQuantileTable(bps)
}

// CalibrateMean searches for a body-scale factor such that the resulting
// table's mean equals target, scaling only breakpoints at P <= pBody. The
// mean of a piecewise-linear quantile table is affine in the body scale, so
// the factor is solved directly. Tail breakpoints (P > pBody) keep their
// exact values.
func (q *QuantileTable) CalibrateMean(pBody, target float64) (*QuantileTable, error) {
	if target <= 0 {
		return nil, fmt.Errorf("dist: target mean must be positive, got %v", target)
	}
	base, err := q.ScaleBody(pBody, 1) // validates pBody, copies
	if err != nil {
		return nil, err
	}
	// Mean(c) = fixed + c*bodyContribution. Evaluate at c=1 and c=0.5 and
	// solve the linear equation. ScaleBody at small c may violate
	// monotonicity; compute contributions directly instead.
	var fixed, body float64
	for i := 1; i < len(base.bps); i++ {
		a, b := base.bps[i-1], base.bps[i]
		w := (b.P - a.P) / 2
		for _, bp := range []Breakpoint{a, b} {
			if bp.P <= pBody {
				body += w * bp.T
			} else {
				fixed += w * bp.T
			}
		}
	}
	if body <= 0 {
		return nil, fmt.Errorf("dist: no body mass below P=%v to calibrate", pBody)
	}
	factor := (target - fixed) / body
	if factor <= 0 {
		return nil, fmt.Errorf("dist: target mean %v unreachable (fixed tail already contributes %v)", target, fixed)
	}
	return q.ScaleBody(pBody, factor)
}
