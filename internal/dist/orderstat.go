package dist

import (
	"fmt"
	"math"
)

// This file implements the order-statistics core of the paper's task
// decomposition (Section III.B, Eqns. 1-2):
//
//	F_Q^u(t; kf) = Π_{k=1..kf} F_{n(k)}^u(t)     (Eqn. 1)
//	x_p^u(kf)    = F_Q^{u,-1}(p/100)             (Eqn. 2)
//
// The unloaded query latency is the maximum of the kf task post-queuing
// times, so its CDF is the product of the per-server CDFs, and the
// unloaded query tail quantile is the inverse of that product.

// QueryCDF returns the CDF of the unloaded query latency for a query whose
// tasks run on servers with the given latency distributions (Eqn. 1).
func QueryCDF(servers []Distribution, t float64) float64 {
	p := 1.0
	for _, d := range servers {
		p *= d.CDF(t)
		if p == 0 {
			return 0
		}
	}
	return p
}

// QueryQuantile returns the p-quantile of the unloaded query latency for a
// query fanned out to the given servers (Eqn. 2), found by bisection on
// the product CDF.
func QueryQuantile(servers []Distribution, p float64) (float64, error) {
	if len(servers) == 0 {
		return 0, fmt.Errorf("dist: query quantile of empty server set")
	}
	if err := checkProb(p); err != nil {
		return 0, err
	}
	if p == 0 {
		return 0, nil
	}
	// Each per-server CDF must reach at least p^{1/k} at the query
	// quantile; the largest per-server quantile at that level brackets
	// the answer from below and is a tight starting hint.
	perServer := math.Pow(p, 1/float64(len(servers)))
	hint := 1e-9
	for _, d := range servers {
		q := d.Quantile(perServer)
		if math.IsInf(q, 1) {
			return 0, fmt.Errorf("dist: server distribution has unbounded %v-quantile", perServer)
		}
		if q > hint {
			hint = q
		}
	}
	cdf := func(t float64) float64 { return QueryCDF(servers, t) }
	return invertCDF(cdf, p, hint), nil
}

// HomogeneousQueryQuantile returns x_p^u(kf) when all kf task servers share
// one distribution d: F_Q(t) = F(t)^kf, so x_p^u(kf) = F^{-1}(p^{1/kf}).
// This closed form is what the simulation case studies use (the paper's
// homogeneous-cluster assumption) and is O(1) given d's quantile function.
func HomogeneousQueryQuantile(d Distribution, fanout int, p float64) (float64, error) {
	if fanout < 1 {
		return 0, fmt.Errorf("dist: fanout must be >= 1, got %d", fanout)
	}
	if err := checkProb(p); err != nil {
		return 0, err
	}
	return d.Quantile(math.Pow(p, 1/float64(fanout))), nil
}

// SLOViolationProbability returns the probability that a query with the
// given fanout exceeds latency slo when each of its tasks independently
// exceeds slo with probability taskViolation. This is the introduction's
// motivating identity: 1 - (1 - v)^kf.
func SLOViolationProbability(taskViolation float64, fanout int) (float64, error) {
	if err := checkProb(taskViolation); err != nil {
		return 0, err
	}
	if fanout < 1 {
		return 0, fmt.Errorf("dist: fanout must be >= 1, got %d", fanout)
	}
	return 1 - math.Pow(1-taskViolation, float64(fanout)), nil
}

// RequiredTaskQuantile inverts SLOViolationProbability: to give a query of
// the given fanout at most queryViolation probability of exceeding the SLO,
// each task may exceed it with probability at most 1-(1-qv)^{1/kf}.
// For the paper's example, fanout 100 and queryViolation 0.01 yields
// ~1e-4 per task.
func RequiredTaskQuantile(queryViolation float64, fanout int) (float64, error) {
	if err := checkProb(queryViolation); err != nil {
		return 0, err
	}
	if fanout < 1 {
		return 0, fmt.Errorf("dist: fanout must be >= 1, got %d", fanout)
	}
	return 1 - math.Pow(1-queryViolation, 1/float64(fanout)), nil
}
