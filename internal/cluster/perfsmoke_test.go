package cluster

import (
	"testing"

	"tailguard/internal/sim"
)

// TestPerfSmokeWheelVsHeap is the `make perf-smoke` equivalence gate:
// one policy × fault plan × seed simulated end to end on the timing
// wheel and on the reference binary heap must produce bit-identical
// Results. The scenario is the canonical all-fault-kinds plan with
// hedging and retries enabled, so the comparison covers clock-stopping
// windows, crash re-dispatch, and hedge timers — every engine access
// pattern the wheel's clamped batch insertion exists for.
func TestPerfSmokeWheelVsHeap(t *testing.T) {
	wheel, err := Run(resilientConfig(t, 1))
	if err != nil {
		t.Fatalf("wheel Run: %v", err)
	}
	cfg := resilientConfig(t, 1)
	a := NewArena()
	a.engine = sim.NewHeapEngine()
	cfg.Arena = a
	heap, err := Run(cfg)
	if err != nil {
		t.Fatalf("heap Run: %v", err)
	}
	if err := wheel.Equal(heap); err != nil {
		t.Errorf("wheel and heap runs diverge: %v", err)
	}
}
