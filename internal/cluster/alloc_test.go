package cluster

import (
	"testing"

	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/workload"
)

// steadyRun executes one arena-backed simulation of the given size and
// returns the result to the arena, the way experiment replicates do.
func steadyRun(t *testing.T, arena *Arena, dl *core.Deadliner,
	classes *workload.ClassSet, svc dist.Distribution, queries int) {
	t.Helper()
	fan, err := workload.NewFixed(2)
	if err != nil {
		t.Fatalf("NewFixed: %v", err)
	}
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Servers: 4,
		Arrival: fixedGap{gap: 2},
		Fanout:  fan,
		Classes: classes,
	}, 7)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	res, err := Run(Config{
		Servers:      4,
		Spec:         core.TFEDFQ,
		ServiceTimes: []dist.Distribution{svc},
		Generator:    gen,
		Classes:      classes,
		Deadliner:    dl,
		Queries:      queries,
		Warmup:       100,
		Seed:         8,
		Arena:        arena,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	arena.Release(res)
}

// TestSteadyStateRunAllocations pins the tentpole claim: with a warmed
// Arena, a simulation run's allocation count is per-run setup only
// (generator, RNG, config plumbing) and does not scale with the number
// of queries dispatched. Tasks, query state, query boxes, events, and
// recorders all come from the arena's freelists.
func TestSteadyStateRunAllocations(t *testing.T) {
	classes, err := workload.SingleClass(10)
	if err != nil {
		t.Fatalf("SingleClass: %v", err)
	}
	svc := dist.Deterministic{V: 1}
	est, err := core.NewHomogeneousStaticTailEstimator(svc, 4)
	if err != nil {
		t.Fatalf("NewHomogeneousStaticTailEstimator: %v", err)
	}
	dl, err := core.NewDeadliner(core.TFEDFQ, est, classes)
	if err != nil {
		t.Fatalf("NewDeadliner: %v", err)
	}
	arena := NewArena()
	// Warm at the largest size so freelists, the event heap, and the
	// recorders reach their high-water capacity before measuring.
	steadyRun(t, arena, dl, classes, svc, 4000)

	small := testing.AllocsPerRun(5, func() { steadyRun(t, arena, dl, classes, svc, 1000) })
	large := testing.AllocsPerRun(5, func() { steadyRun(t, arena, dl, classes, svc, 4000) })
	// 3000 extra queries × 2 tasks each: without pooling this delta would
	// be tens of thousands of allocations (tasks, states, events, boxes).
	if large-small > 64 {
		t.Errorf("allocations scale with query count: %0.f/run at 1000 queries, %0.f/run at 4000 (delta %0.f, want <= 64)",
			small, large, large-small)
	}
	if large > 256 {
		t.Errorf("steady-state run allocates %0.f/run, want <= 256 (per-run setup only)", large)
	}
}
