package cluster

import (
	"math/rand"
	"testing"

	"tailguard/internal/core"
	"tailguard/internal/fault"
	"tailguard/internal/policy"
)

// scanBest is the reference answer: lowest-index up server with the
// strictly smallest load, mirroring runner.leastLoadedScan.
func scanBest(loads []int32, exclude int) int {
	best, bestLoad := -1, int32(0)
	for s, load := range loads {
		if s == exclude || load == loadDown {
			continue
		}
		if best < 0 || load < bestLoad {
			best, bestLoad = s, load
		}
	}
	return best
}

// Property: across random load updates, outages, sizes (including the
// non-power-of-two and single-server shapes), and every exclude value,
// the tournament tree answers exactly like the scan — same server on
// ties, -1 when nothing is up.
func TestLoadIndexVsScanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 7, 16, 100, 129} {
		var ix loadIndex
		ix.init(n)
		loads := make([]int32, n)
		for step := 0; step < 400; step++ {
			s := rng.Intn(n)
			var load int32
			switch rng.Intn(4) {
			case 0:
				load = loadDown // outage
			default:
				load = int32(rng.Intn(4)) // small loads force ties
			}
			loads[s] = load
			ix.update(s, load)
			for exclude := -1; exclude <= n; exclude++ {
				if got, want := ix.best(exclude), scanBest(loads, exclude); got != want {
					t.Fatalf("n=%d step=%d exclude=%d: index=%d scan=%d loads=%v",
						n, step, exclude, got, want, loads)
				}
			}
		}
	}
}

// Index reuse across runs of different sizes must re-shape cleanly.
func TestLoadIndexReuse(t *testing.T) {
	var ix loadIndex
	ix.init(100)
	for s := 0; s < 100; s++ {
		ix.update(s, int32(s+1))
	}
	ix.init(5) // shrink: stale large-tree state must not leak
	if got := ix.best(-1); got != 0 {
		t.Errorf("after re-init(5): best(-1) = %d, want 0", got)
	}
	ix.update(0, loadDown)
	ix.update(1, 2)
	if got := ix.best(1); got != 2 {
		t.Errorf("best(1) = %d, want 2 (server 0 down, 2..4 idle)", got)
	}
}

// resilientConfig is the end-to-end differential scenario: random
// placement across 16 servers with every fault kind in the plan, plus
// hedging and a retry budget so leastLoaded is hit from all three call
// paths (hedge placement, crash re-dispatch, retry placement).
func resilientConfig(t *testing.T, seed int64) Config {
	t.Helper()
	cfg := shardedConfig(t, core.TFEDFQ, 16, 400, 50, seed, canonicalShardPlan())
	cfg.Resilience = fault.Resilience{Hedge: true, RetryBudget: 2}
	return cfg
}

// TestLeastLoadedIndexMatchesScanEndToEnd proves the index never picks
// a different server than the scan: the same resilient faulted run,
// once with the tournament tree and once forced onto the O(n) scan,
// must produce bit-identical Results.
func TestLeastLoadedIndexMatchesScanEndToEnd(t *testing.T) {
	var hedges, retries int64
	for _, seed := range []int64{1, 2, 3} {
		withIndex, err := Run(resilientConfig(t, seed))
		if err != nil {
			t.Fatalf("seed=%d indexed Run: %v", seed, err)
		}
		cfg := resilientConfig(t, seed)
		a := NewArena()
		a.noLoadIndex = true
		cfg.Arena = a
		scanned, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed=%d scan Run: %v", seed, err)
		}
		if err := withIndex.Equal(scanned); err != nil {
			t.Errorf("seed=%d: indexed and scanned runs diverge: %v", seed, err)
		}
		hedges += int64(withIndex.HedgesIssued)
		retries += int64(withIndex.Retries)
	}
	if hedges == 0 || retries == 0 {
		t.Errorf("scenario too tame across seeds (hedges=%d retries=%d), index untested", hedges, retries)
	}
}

// benchLeastLoaded measures one load transition plus one leastLoaded
// answer on a large cluster — the per-lost-task cost under a crash
// fault — with and without the tournament tree.
func benchLeastLoaded(b *testing.B, servers int, indexed bool) {
	r := &runner{cfg: Config{Servers: servers}}
	r.busy = make([]bool, servers)
	r.paused = make([]bool, servers)
	r.queues = make([]policy.Queue, servers)
	for s := range r.queues {
		q, err := policy.New(core.FIFO.Queue)
		if err != nil {
			b.Fatal(err)
		}
		r.queues[s] = q
	}
	rng := rand.New(rand.NewSource(7))
	for s := 0; s < servers; s++ {
		r.busy[s] = rng.Intn(2) == 0
	}
	if indexed {
		r.loadIx = new(loadIndex)
		r.loadIx.init(servers)
		for s := range r.busy {
			r.loadChanged(s)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := i % servers
		r.busy[s] = !r.busy[s]
		r.loadChanged(s)
		if r.leastLoaded(s) < 0 {
			b.Fatal("no server")
		}
	}
}

func BenchmarkLeastLoadedIndex10k(b *testing.B) { benchLeastLoaded(b, 10000, true) }
func BenchmarkLeastLoadedScan10k(b *testing.B)  { benchLeastLoaded(b, 10000, false) }
