// Least-loaded server index: an incrementally maintained tournament
// tree replacing the O(n) scan in runner.leastLoaded (DESIGN.md §14).
//
// Hedging, crash re-dispatch, and retry placement all ask "which up
// server, excluding one, has the fewest queued-plus-in-service tasks?"
// On a 10k-server cluster under a crash fault that question used to be
// a 10k-element scan per lost task. The tournament tree answers it in
// O(log n) from per-server load values updated in O(log n) at each
// queue, busy, or availability transition — and answers it with the
// exact server the scan would have picked: the combine rule prefers the
// left child on equal load, and the left subtree holds the lower server
// indices, so ties resolve to the lowest index just like the scan's
// strict-less update. Down (paused or crashed) servers carry the
// loadDown sentinel, which never beats a real load and maps to the
// scan's skip.
//
// The index is maintained only when the run can actually call
// leastLoaded (hedging or a retry budget enabled); fault-free runs pay
// nothing. Bit-identity with the scan is gated by the randomized
// index-vs-scan property test and the end-to-end differential run in
// index_test.go.
package cluster

import "math"

// loadDown marks a server that cannot accept work (paused or crashed).
// It exceeds any real load, so an all-down tree reports no winner.
const loadDown = math.MaxInt32

// loadIndex is a flat-array tournament (min) tree over per-server
// loads. Nodes live in val/arg indexed 1..2*size-1: node i's children
// are 2i and 2i+1, leaves start at size (a power of two), and leaf
// size+s belongs to server s. Each node holds the minimum load in its
// subtree and the lowest server index achieving it (arg -1 on padding
// leaves past the server count).
type loadIndex struct {
	n    int // servers
	size int // leaf count, power of two, >= n
	val  []int32
	arg  []int32
}

// init shapes the tree for n servers with every server up and idle
// (load 0), reusing the backing arrays across runs when large enough.
func (ix *loadIndex) init(n int) {
	size := 1
	for size < n {
		size <<= 1
	}
	if cap(ix.val) < 2*size {
		ix.val = make([]int32, 2*size)
		ix.arg = make([]int32, 2*size)
	}
	ix.val = ix.val[:2*size]
	ix.arg = ix.arg[:2*size]
	ix.n, ix.size = n, size
	for s := 0; s < size; s++ {
		if s < n {
			ix.val[size+s], ix.arg[size+s] = 0, int32(s)
		} else {
			ix.val[size+s], ix.arg[size+s] = loadDown, -1
		}
	}
	for i := size - 1; i >= 1; i-- {
		ix.combine(i)
	}
}

// combine recomputes node i from its children: minimum load, left
// (lower-index) child winning ties.
//
//tg:hotpath
func (ix *loadIndex) combine(i int) {
	l, r := 2*i, 2*i+1
	if ix.val[r] < ix.val[l] {
		ix.val[i], ix.arg[i] = ix.val[r], ix.arg[r]
	} else {
		ix.val[i], ix.arg[i] = ix.val[l], ix.arg[l]
	}
}

// update sets server s's load (or loadDown) and rebuilds its root path.
//
//tg:hotpath
func (ix *loadIndex) update(s int, load int32) {
	i := ix.size + s
	ix.val[i] = load
	for i >>= 1; i >= 1; i >>= 1 {
		ix.combine(i)
	}
}

// best returns the up server with the smallest load, excluding exclude,
// lowest index winning ties; -1 when every other server is down. It
// matches runner.leastLoadedScan exactly. With exclude outside [0, n)
// the root answers directly; otherwise the answer is the best of the
// sibling subtrees hanging off the excluded leaf's root path, compared
// as (load, index) pairs since the subtrees' index ranges are disjoint.
//
//tg:hotpath
func (ix *loadIndex) best(exclude int) int {
	if exclude < 0 || exclude >= ix.n {
		if ix.val[1] >= loadDown {
			return -1
		}
		return int(ix.arg[1])
	}
	bv, ba := int32(loadDown), int32(-1)
	for i := ix.size + exclude; i > 1; i >>= 1 {
		sib := i ^ 1
		if v, a := ix.val[sib], ix.arg[sib]; v < bv || (v == bv && a < ba) {
			bv, ba = v, a
		}
	}
	if bv >= loadDown {
		return -1
	}
	return int(ba)
}
