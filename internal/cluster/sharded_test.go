package cluster

import (
	"reflect"
	"testing"

	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/fault"
	"tailguard/internal/obs"
	"tailguard/internal/workload"
)

// shardedConfig builds a sequential-vs-sharded comparison config with
// continuous arrival/service distributions (the bit-identity contract
// requires that cross-stream event-time ties have measure zero; see
// DESIGN.md §13).
func shardedConfig(t *testing.T, spec core.Spec, servers, queries, warmup int, seed int64, plan *fault.Plan) Config {
	t.Helper()
	classes, err := workload.SingleClass(50)
	if err != nil {
		t.Fatalf("SingleClass: %v", err)
	}
	arrival, err := workload.NewPoisson(2.0) // queries/ms
	if err != nil {
		t.Fatalf("NewPoisson: %v", err)
	}
	fanout, err := workload.NewWeighted([]int{1, 2, 4, 8}, []float64{1, 2, 2, 1})
	if err != nil {
		t.Fatalf("NewWeighted: %v", err)
	}
	svc := dist.Exponential{M: 1.5}
	cfg := buildConfig(t, spec, svc, servers, arrival, fanout, classes, queries, warmup, seed)
	if plan != nil {
		cfg.Faults = fault.MustEngine(plan, servers)
	}
	return cfg
}

// canonicalShardPlan exercises every fault kind inside the simulated
// horizon of a ~200 ms run: slowdown, stall, crash (losing queues and
// in-flight tasks), transport delay and transport drop.
func canonicalShardPlan() *fault.Plan {
	return &fault.Plan{Seed: 11, Faults: []fault.Fault{
		{Kind: fault.Slowdown, Server: 1, StartMs: 10, EndMs: 60, Factor: 4},
		{Kind: fault.Stall, Server: 2, StartMs: 20, EndMs: 35},
		{Kind: fault.Crash, Server: 3, StartMs: 30, EndMs: 70},
		{Kind: fault.Crash, Server: 5, StartMs: 40, EndMs: 55},
		{Kind: fault.TransportDelay, Server: 6, StartMs: 15, EndMs: 90, DelayMs: 0.8},
		{Kind: fault.TransportDrop, Server: 7, StartMs: 25, EndMs: 80, DropProb: 0.5},
	}}
}

// runPair runs cfg sequentially and with the given shard count (each on a
// fresh generator, since sources are stateful) and returns both results.
func runPair(t *testing.T, build func() Config, shards int) (*Result, *Result) {
	t.Helper()
	seq, err := Run(build())
	if err != nil {
		t.Fatalf("sequential Run: %v", err)
	}
	cfg := build()
	cfg.Shards = shards
	par, err := Run(cfg)
	if err != nil {
		t.Fatalf("sharded Run (shards=%d): %v", shards, err)
	}
	return seq, par
}

// TestShardedMatchesSequentialMatrix is the golden equivalence matrix:
// across seeds, policies, fault plans and shard counts, the sharded core
// must produce a Result bit-identical to the sequential engine.
func TestShardedMatchesSequentialMatrix(t *testing.T) {
	specs := []core.Spec{core.TFEDFQ, core.FIFO, core.PRIQ}
	plans := map[string]func() *fault.Plan{
		"baseline": func() *fault.Plan { return nil },
		"faults":   canonicalShardPlan,
	}
	for _, spec := range specs {
		for planName, plan := range plans {
			for _, seed := range []int64{1, 2, 3} {
				seq, err := Run(shardedConfig(t, spec, 16, 400, 50, seed, plan()))
				if err != nil {
					t.Fatalf("%s/%s/seed=%d sequential: %v", spec.Name, planName, seed, err)
				}
				for _, shards := range []int{2, 4, 8} {
					cfg := shardedConfig(t, spec, 16, 400, 50, seed, plan())
					cfg.Shards = shards
					par, err := Run(cfg)
					if err != nil {
						t.Fatalf("%s/%s/seed=%d/shards=%d: %v", spec.Name, planName, seed, shards, err)
					}
					if err := seq.Equal(par); err != nil {
						t.Errorf("%s/%s/seed=%d/shards=%d diverges: %v", spec.Name, planName, seed, shards, err)
					}
				}
			}
		}
	}
}

// TestShardedWindowWidthInvariance: the window width trades barrier
// frequency against batch size and must never change the Result.
func TestShardedWindowWidthInvariance(t *testing.T) {
	build := func() Config {
		return shardedConfig(t, core.TFEDFQ, 16, 300, 20, 7, canonicalShardPlan())
	}
	seq, err := Run(build())
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	for _, w := range []float64{0.05, 1, 7.3, 500} {
		cfg := build()
		cfg.Shards = 4
		cfg.ShardWindowMs = w
		par, err := Run(cfg)
		if err != nil {
			t.Fatalf("window=%v: %v", w, err)
		}
		if err := seq.Equal(par); err != nil {
			t.Errorf("window=%v diverges: %v", w, err)
		}
	}
}

// TestShardedFailureWindows: paused-server outage windows (Config.Failures)
// behave identically sharded.
func TestShardedFailureWindows(t *testing.T) {
	build := func() Config {
		cfg := shardedConfig(t, core.FIFO, 8, 300, 0, 5, nil)
		cfg.Failures = []Failure{{Server: 2, Start: 10, End: 60}, {Server: 5, Start: 30, End: 40}}
		return cfg
	}
	seq, par := runPair(t, build, 4)
	if err := seq.Equal(par); err != nil {
		t.Errorf("failure windows diverge: %v", err)
	}
}

// TestShardedPerServerDispatchDelay: under per-server queuing the dispatch
// delay is sampled at arrival time (pump-side), so it shards cleanly.
func TestShardedPerServerDispatchDelay(t *testing.T) {
	build := func() Config {
		cfg := shardedConfig(t, core.TFEDFQ, 12, 300, 30, 9, nil)
		cfg.Queuing = PerServerQueuing
		cfg.DispatchDelay = dist.Uniform{Lo: 0.01, Hi: 0.4}
		return cfg
	}
	seq, par := runPair(t, build, 3)
	if err := seq.Equal(par); err != nil {
		t.Errorf("per-server dispatch delay diverges: %v", err)
	}
}

// TestShardedTimelineAndAttribution: the timeline recorders and the
// miss-attribution report survive sharding bit-identically.
func TestShardedTimelineAndAttribution(t *testing.T) {
	build := func() Config {
		cfg := shardedConfig(t, core.TFEDFQ, 16, 400, 40, 4, canonicalShardPlan())
		cfg.TimelineBucketMs = 25
		cfg.Attribution = obs.NewAttributor()
		return cfg
	}
	seqCfg := build()
	seq, err := Run(seqCfg)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	parCfg := build()
	parCfg.Shards = 4
	par, err := Run(parCfg)
	if err != nil {
		t.Fatalf("sharded: %v", err)
	}
	if err := seq.Equal(par); err != nil {
		t.Errorf("timeline run diverges: %v", err)
	}
	seqRep, parRep := seqCfg.Attribution.Report(), parCfg.Attribution.Report()
	if !reflect.DeepEqual(seqRep, parRep) {
		t.Errorf("attribution reports diverge:\nseq: %+v\npar: %+v", seqRep, parRep)
	}
}

// TestShardedArenaReuse: a reused arena must replay bit-identically across
// repeated sharded runs and across shard-count changes.
func TestShardedArenaReuse(t *testing.T) {
	build := func() Config { return shardedConfig(t, core.FIFO, 16, 300, 20, 2, canonicalShardPlan()) }
	seq, err := Run(build())
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	arena := NewArena()
	for run := 0; run < 3; run++ {
		for _, shards := range []int{4, 2} {
			cfg := build()
			cfg.Shards = shards
			cfg.Arena = arena
			par, err := Run(cfg)
			if err != nil {
				t.Fatalf("run %d shards=%d: %v", run, shards, err)
			}
			if err := seq.Equal(par); err != nil {
				t.Errorf("run %d shards=%d diverges: %v", run, shards, err)
			}
			arena.Release(par)
		}
	}
}

// TestShardedRejectsUnsupportedFeatures pins the clear-error contract for
// every feature the sharded core refuses.
func TestShardedRejectsUnsupportedFeatures(t *testing.T) {
	base := func() Config {
		cfg := shardedConfig(t, core.FIFO, 8, 50, 0, 1, nil)
		cfg.Shards = 2
		return cfg
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"admission", func(c *Config) {
			ac, err := core.NewAdmissionController(10, 0.1)
			if err != nil {
				t.Fatalf("NewAdmissionController: %v", err)
			}
			c.Admission = ac
		}},
		{"estimator", func(c *Config) { c.Estimator = &core.TailEstimator{} }},
		{"completion hook", func(c *Config) {
			c.OnQueryDone = func(workload.Query, float64, float64) []workload.Query { return nil }
		}},
		{"hedging", func(c *Config) { c.Resilience = fault.Resilience{Hedge: true} }},
		{"retries", func(c *Config) { c.Resilience = fault.Resilience{RetryBudget: 1} }},
		{"tracing", func(c *Config) { c.Obs = &obs.Tracer{} }},
		{"central dispatch delay", func(c *Config) { c.DispatchDelay = dist.Uniform{Lo: 0.1, Hi: 0.2} }},
		{"more shards than servers", func(c *Config) { c.Shards = 9 }},
		{"negative shards", func(c *Config) { c.Shards = -1 }},
		{"negative window", func(c *Config) { c.ShardWindowMs = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("Run succeeded, want a clear sharded-mode error")
			}
		})
	}
	// Shards <= 1 selects the sequential engine and accepts everything.
	cfg := base()
	cfg.Shards = 1
	cfg.Obs = obs.NewTracer(obs.TracerConfig{})
	if _, err := Run(cfg); err != nil {
		t.Errorf("Shards=1 must use the sequential path: %v", err)
	}
}

// TestShardedBarrierStress hammers the window barrier with a tiny window
// (thousands of barriers), the full fault plan and the maximum shard
// fan-out; run under -race this pins the protocol's happens-before edges.
func TestShardedBarrierStress(t *testing.T) {
	arena := NewArena()
	for run := 0; run < 3; run++ {
		cfg := shardedConfig(t, core.TFEDFQ, 16, 800, 0, int64(run), canonicalShardPlan())
		cfg.Shards = 8
		cfg.ShardWindowMs = 0.05
		cfg.Arena = arena
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if res.Completed == 0 {
			t.Fatalf("run %d completed no queries", run)
		}
		arena.Release(res)
	}
}
