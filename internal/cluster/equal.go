// Result equality: a bit-exact comparison used by the sharded-core
// equivalence gates (golden tests, the shardscale experiment, and `make
// shard-smoke`). Two results are equal only if every counter, every
// float64 aggregate (compared by bit pattern, so the order-sensitive
// floating-point sums must have been accumulated in the same order), and
// every recorder's full sample sequence — including breakdown key
// insertion order — match.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"tailguard/internal/metrics"
)

// eqF compares two float64s by bit pattern.
func eqF(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// eqRecorder compares two recorders' sample sequences bit-exactly.
func eqRecorder(name string, a, b *metrics.LatencyRecorder) error {
	if (a == nil) != (b == nil) {
		return fmt.Errorf("%s: nil mismatch", name)
	}
	if a == nil {
		return nil
	}
	as, bs := a.Samples(), b.Samples()
	if len(as) != len(bs) {
		return fmt.Errorf("%s: %d samples vs %d", name, len(as), len(bs))
	}
	for i := range as {
		if !eqF(as[i], bs[i]) {
			return fmt.Errorf("%s: sample %d: %v vs %v", name, i, as[i], bs[i])
		}
	}
	return nil
}

// eqBreakdown compares two breakdowns: same key insertion order, same
// sample sequences per key.
func eqBreakdown[K comparable](name string, a, b *metrics.Breakdown[K]) error {
	if (a == nil) != (b == nil) {
		return fmt.Errorf("%s: nil mismatch", name)
	}
	if a == nil {
		return nil
	}
	var ak, bk []K
	a.Each(func(k K, _ *metrics.LatencyRecorder) { ak = append(ak, k) })
	b.Each(func(k K, _ *metrics.LatencyRecorder) { bk = append(bk, k) })
	if len(ak) != len(bk) {
		return fmt.Errorf("%s: %d keys vs %d", name, len(ak), len(bk))
	}
	for i := range ak {
		if ak[i] != bk[i] {
			return fmt.Errorf("%s: key %d: %v vs %v (insertion order)", name, i, ak[i], bk[i])
		}
		if err := eqRecorder(fmt.Sprintf("%s[%v]", name, ak[i]), a.Recorder(ak[i]), b.Recorder(bk[i])); err != nil {
			return err
		}
	}
	return nil
}

// eqIntMap compares two int->int maps. Keys are visited in sorted order
// so the first-divergence error message is itself deterministic.
func eqIntMap(name string, a, b map[int]int) error {
	if (a == nil) != (b == nil) {
		return fmt.Errorf("%s: nil mismatch", name)
	}
	if len(a) != len(b) {
		return fmt.Errorf("%s: %d entries vs %d", name, len(a), len(b))
	}
	keys := make([]int, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		if bv, ok := b[k]; !ok || bv != a[k] {
			return fmt.Errorf("%s[%d]: %d vs %d", name, k, a[k], bv)
		}
	}
	return nil
}

// Equal reports whether res and other are bit-identical, returning a
// descriptive error naming the first divergence (nil means equal). It is
// the equivalence oracle for the sharded core: a sharded run must compare
// Equal to the sequential run of the same config.
func (res *Result) Equal(other *Result) error {
	if (res == nil) != (other == nil) {
		return fmt.Errorf("nil result mismatch")
	}
	if res == nil {
		return nil
	}
	if res.Spec != other.Spec {
		return fmt.Errorf("Spec: %q vs %q", res.Spec, other.Spec)
	}
	ints := [...]struct {
		name string
		a, b int
	}{
		{"Queries", res.Queries, other.Queries},
		{"Injected", res.Injected, other.Injected},
		{"Admitted", res.Admitted, other.Admitted},
		{"Rejected", res.Rejected, other.Rejected},
		{"Completed", res.Completed, other.Completed},
		{"Failed", res.Failed, other.Failed},
		{"LostTasks", res.LostTasks, other.LostTasks},
		{"Retries", res.Retries, other.Retries},
		{"HedgesIssued", res.HedgesIssued, other.HedgesIssued},
		{"HedgeWins", res.HedgeWins, other.HedgeWins},
		{"CreditDeferred", res.CreditDeferred, other.CreditDeferred},
		{"Throttled", res.Throttled, other.Throttled},
		{"ControlTicks", res.ControlTicks, other.ControlTicks},
	}
	for _, c := range ints {
		if c.a != c.b {
			return fmt.Errorf("%s: %d vs %d", c.name, c.a, c.b)
		}
	}
	floats := [...]struct {
		name string
		a, b float64
	}{
		{"Duration", res.Duration, other.Duration},
		{"Utilization", res.Utilization, other.Utilization},
		{"OfferedLoad", res.OfferedLoad, other.OfferedLoad},
		{"TaskMissRatio", res.TaskMissRatio, other.TaskMissRatio},
	}
	for _, c := range floats {
		if !eqF(c.a, c.b) {
			return fmt.Errorf("%s: %v vs %v (bits %x vs %x)", c.name, c.a, c.b,
				math.Float64bits(c.a), math.Float64bits(c.b))
		}
	}
	if err := eqRecorder("Overall", res.Overall, other.Overall); err != nil {
		return err
	}
	if err := eqRecorder("TaskWait", res.TaskWait, other.TaskWait); err != nil {
		return err
	}
	if err := eqBreakdown("ByClass", res.ByClass, other.ByClass); err != nil {
		return err
	}
	if err := eqBreakdown("ByFanout", res.ByFanout, other.ByFanout); err != nil {
		return err
	}
	if err := eqBreakdown("ByType", res.ByType, other.ByType); err != nil {
		return err
	}
	if err := eqBreakdown("Timeline", res.Timeline, other.Timeline); err != nil {
		return err
	}
	if err := eqIntMap("TimelineAdmitted", res.TimelineAdmitted, other.TimelineAdmitted); err != nil {
		return err
	}
	return eqIntMap("TimelineRejected", res.TimelineRejected, other.TimelineRejected)
}
