// Sharded parallel core: one simulation run spread across P discrete-event
// shards under the conservative time-window protocol (DESIGN.md §13).
//
// Servers are striped across shards (server s lives on shard s%P at local
// index s/P). The run is a three-stage pipeline:
//
//	pump  -> shards -> merger
//
// The pump goroutine owns every random stream the sequential engine draws
// in arrival order (the generator's rng, the cluster rng's service and
// dispatch-delay samples, the fault engine's per-server drop streams) and
// turns each arrival batch into per-shard taskMsg exchange queues plus a
// stream of bookkeeping records. The coordinator delivers each batch at a
// window barrier — every message is stamped at or after the previous
// window's limit, so no shard ever schedules into its past — and the
// shards advance independently inside the window: arrival processing
// never reads server state and servers never talk to each other, so the
// dataflow is acyclic and the protocol needs no shard-to-shard lookahead.
// Each shard appends its observation records (dispatch waits, completions,
// fault losses) to a per-shard stream in its own deterministic event
// order; the merger k-way-merges the P+1 time-sorted streams back into the
// sequential engine's observation order and feeds the result recorders,
// whose floating-point sums are order-sensitive. The merge key is
// (time, pump records first, then task index): at one instant the
// sequential engine records a query's start before its same-instant
// immediate dispatches and orders those dispatches by task index, which is
// exactly this key. Records from different queries colliding at the same
// instant across shards have no defined relative order; with continuous
// service/interarrival distributions such ties have measure zero, which is
// why the stock scenarios are bit-identical at every shard count (the
// golden tests pin this).
//
// Features whose semantics are inherently global-order-dependent
// (admission feedback, online estimation, hedging and retries, lifecycle
// tracing, completion hooks, central-queuing dispatch delays) are rejected
// up front by validateSharded; everything else — all fault kinds, failure
// windows, per-server queuing dispatch delays, attribution, timelines —
// runs sharded with bit-identical results.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"tailguard/internal/fault"
	"tailguard/internal/obs"
	"tailguard/internal/policy"
	"tailguard/internal/sim"
	"tailguard/internal/workload"
)

// defaultShardWindowMs is the conservative window width when the config
// does not choose one. Any positive width yields the same Result; the
// width only trades barrier frequency against delivery batch size.
const defaultShardWindowMs = 1.0

// shardWindow returns the run's window width in ms.
func shardWindow(cfg *Config) float64 {
	if cfg.ShardWindowMs > 0 {
		return cfg.ShardWindowMs
	}
	return defaultShardWindowMs
}

// taskMsg is one task crossing the pump->shard exchange. It is a pure
// value — no pointers — so shards share nothing with the pump: the task
// object itself is materialized from the destination shard's own pool at
// delivery time.
type taskMsg struct {
	enqueueAt float64 // arrival + transport/dispatch delay
	arrival   float64
	deadline  float64
	service   float64
	qid       int64
	server    int32 // global server id
	index     int32
	class     int32
}

// mergeRec kinds.
const (
	recQueryStart uint8 = iota // pump: admitted query (idx=fanout, cls=class)
	recDispatch                // shard: task dequeued (wait=t_pr), post-warmup only
	recComplete                // shard: task finished (wait=t_pr, svc=t_po)
	recLost                    // pump or shard: task copy destroyed by a fault
)

// mergeRec is one observation record flowing shard->merger (or
// pump->merger). The merger replays records in the sequential engine's
// observation order, reconstructed by merging the per-stream records on
// (at, pump first, idx).
type mergeRec struct {
	at   float64
	wait float64
	svc  float64
	qid  int64
	srv  int32
	idx  int32
	cls  int32
	kind uint8
}

// shardBatch carries one window's work from the pump: the per-shard
// exchange queues and the pump's own record stream, plus the window limit.
type shardBatch struct {
	hi   float64
	msgs [][]taskMsg // indexed by destination shard
	recs []mergeRec  // query starts and send-drop losses, arrival order
	err  error
}

// shardBundle carries one window's P+1 record streams to the merger:
// streams[0] is the pump's, streams[1+i] is shard i's.
type shardBundle struct {
	streams [][]mergeRec
	cur     []int // merge cursors, reused across bundles
}

// shardExchange recycles batches and bundles between the pump, the
// coordinator and the merger. Its mutex is a leaf: it is never held
// across a channel operation or any other blocking call (all slice
// truncation happens outside the critical section).
//
//tg:lockorder tailguard/internal/parallel.Pool.mu < shardExchange.mu
type shardExchange struct {
	mu      sync.Mutex
	batches []*shardBatch
	bundles []*shardBundle
}

// getBatch returns a recycled (or fresh) batch shaped for p shards.
func (ex *shardExchange) getBatch(p int) *shardBatch {
	ex.mu.Lock()
	var b *shardBatch
	if n := len(ex.batches); n > 0 {
		b = ex.batches[n-1]
		ex.batches[n-1] = nil
		ex.batches = ex.batches[:n-1]
	}
	ex.mu.Unlock()
	if b == nil {
		b = &shardBatch{msgs: make([][]taskMsg, p)} //tg:cold pool warm-up
	}
	return b
}

// reset truncates the batch for reuse, keeping slice capacity.
func (b *shardBatch) reset() {
	for i := range b.msgs {
		b.msgs[i] = b.msgs[i][:0]
	}
	b.recs = b.recs[:0]
	b.hi, b.err = 0, nil
}

// putBatch truncates b (keeping capacity) and pools it.
func (ex *shardExchange) putBatch(b *shardBatch) {
	b.reset()
	ex.mu.Lock()
	ex.batches = append(ex.batches, b)
	ex.mu.Unlock()
}

// getBundle returns a recycled (or fresh) bundle with n streams.
func (ex *shardExchange) getBundle(n int) *shardBundle {
	ex.mu.Lock()
	var bu *shardBundle
	if m := len(ex.bundles); m > 0 {
		bu = ex.bundles[m-1]
		ex.bundles[m-1] = nil
		ex.bundles = ex.bundles[:m-1]
	}
	ex.mu.Unlock()
	if bu == nil {
		bu = &shardBundle{streams: make([][]mergeRec, n), cur: make([]int, n)} //tg:cold pool warm-up
	}
	return bu
}

// reset truncates the bundle's streams for reuse, keeping capacity.
func (bu *shardBundle) reset() {
	for i := range bu.streams {
		bu.streams[i] = bu.streams[i][:0]
	}
}

// putBundle truncates bu's streams (keeping capacity) and pools it.
func (ex *shardExchange) putBundle(bu *shardBundle) {
	bu.reset()
	ex.mu.Lock()
	ex.bundles = append(ex.bundles, bu)
	ex.mu.Unlock()
}

// clusterShard is one shard's server-side state: the striped subset of
// queues, busy/paused/crashed flags and busy-time accumulators, its own
// task pool, and the record stream it feeds the merger. It mirrors the
// sequential runner's enqueue/startService/complete/crash logic exactly,
// minus the features validateSharded rejects. Inside a window only the
// shard's own worker touches it; between windows the coordinator swaps
// out its record stream (the gang barrier is the happens-before edge).
type clusterShard struct {
	id      int
	nShards int
	cfg     *Config
	engine  *sim.Engine
	faults  *fault.Engine
	pool    policy.TaskPool
	queues  []policy.Queue
	busy    []bool
	paused  []bool
	busyAcc []float64
	// crashed/inflight are sized only on fault runs, like the sequential
	// engine, so fault-free runs skip their bookkeeping entirely.
	crashed  []bool
	inflight []*policy.Task
	recs     []mergeRec
	enqH     sim.Handler
	compH    sim.Handler
	warmup   int64
	nMissed  int
	nTasks   int
	err      error
}

// nLocal returns the number of servers striped onto shard id.
func shardLocalCount(servers, shards, id int) int {
	return (servers - id + shards - 1) / shards
}

// prepare resets the shard for one run and schedules its failure windows
// (config order) and crash/restart transitions (server-ascending), giving
// them the same low-sequence-number priority over same-time deliveries
// that the sequential engine's init-time scheduling gives them.
func (sh *clusterShard) prepare(cfg *Config) error {
	sh.cfg = cfg
	sh.faults = cfg.Faults
	sh.warmup = int64(cfg.Warmup)
	sh.err = nil
	sh.nMissed, sh.nTasks = 0, 0
	sh.recs = sh.recs[:0]
	n := shardLocalCount(cfg.Servers, sh.nShards, sh.id)
	for _, q := range sh.queues {
		q.Reset()
	}
	sh.busy = resetBools(sh.busy, n)
	sh.paused = resetBools(sh.paused, n)
	sh.busyAcc = resetFloats(sh.busyAcc, n)
	if cfg.Faults != nil {
		sh.crashed = resetBools(sh.crashed, n)
		sh.inflight = resetTasks(sh.inflight, n)
	} else {
		sh.crashed, sh.inflight = nil, nil
	}
	for _, f := range cfg.Failures {
		if f.Server%sh.nShards != sh.id {
			continue
		}
		l := f.Server / sh.nShards
		if err := sh.engine.Schedule(f.Start, func() { sh.paused[l] = true }); err != nil {
			return err
		}
		if err := sh.engine.Schedule(f.End, func() { sh.resume(l) }); err != nil {
			return err
		}
	}
	if cfg.Faults != nil {
		for s := sh.id; s < cfg.Servers; s += sh.nShards {
			l := s / sh.nShards
			for _, w := range cfg.Faults.Crashes(s) {
				l, w := l, w
				if err := sh.engine.Schedule(w.Start, func() { sh.crash(l) }); err != nil {
					return err
				}
				if err := sh.engine.Schedule(w.End, func() { sh.restart(l) }); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// fail records the shard's first internal error and stops its engine; the
// coordinator aborts the run at the next barrier.
func (sh *clusterShard) fail(err error) {
	if sh.err == nil {
		sh.err = err
		sh.engine.Stop()
	}
}

// emit appends one observation record to the shard's stream. Records are
// emitted at the engine's current time, so the stream is time-sorted.
//
//tg:hotpath
func (sh *clusterShard) emit(r mergeRec) {
	sh.recs = append(sh.recs, r)
}

// deliverWindow materializes one window's exchange messages into tasks
// from the shard's own pool and schedules their enqueue events. Delivery
// order is the pump's emission order (arrival, then task index), which
// reproduces the sequential engine's schedule order for same-instant
// events on this shard's servers.
//
//tg:hotpath
func (sh *clusterShard) deliverWindow(msgs []taskMsg) error {
	for k := range msgs {
		m := &msgs[k]
		t := sh.pool.Get()
		t.QueryID = m.qid
		t.Index = int(m.index)
		t.Server = int(m.server)
		t.Class = int(m.class)
		t.Arrival = m.arrival
		t.Deadline = m.deadline
		t.Enqueued = m.arrival
		t.Service = m.service
		if err := sh.engine.ScheduleCall(m.enqueueAt, sh.enqH, t, 0); err != nil {
			sh.pool.Put(t)
			return err
		}
	}
	return nil
}

// onEnqueueEvent delivers a dispatched task to its server's queue,
// mirroring the sequential runner's enqueue (crashed servers refuse the
// task; busy or paused servers queue it; idle servers start service).
//
//tg:hotpath
func (sh *clusterShard) onEnqueueEvent(arg any, _ float64) {
	t := arg.(*policy.Task)
	l := t.Server / sh.nShards
	if sh.crashed != nil && sh.crashed[l] {
		sh.taskLost(t, sh.engine.Now(), true)
		return
	}
	if sh.busy[l] || sh.paused[l] {
		sh.queues[l].Push(t)
	} else {
		sh.startService(l, t)
	}
}

// startService begins serving a task on an idle local server, mirroring
// the sequential runner (deadline-miss accounting, dispatch record for
// the merger's TaskWait stream, fault-stretched occupancy).
//
//tg:hotpath
func (sh *clusterShard) startService(l int, t *policy.Task) {
	now := sh.engine.Now()
	sh.busy[l] = true
	sh.nTasks++
	t.Dequeued = now
	if now > t.Deadline { // +Inf deadlines never miss
		sh.nMissed++
	}
	if t.QueryID >= sh.warmup {
		sh.emit(mergeRec{at: now, wait: now - t.Enqueued, qid: t.QueryID,
			srv: int32(t.Server), idx: int32(t.Index), kind: recDispatch})
	}
	if sh.inflight != nil {
		sh.inflight[l] = t
	}
	occupancy := t.Service
	if sh.faults != nil {
		occupancy = sh.faults.Stretch(t.Server, now, t.Service)
	}
	if err := sh.engine.ScheduleCallAfter(occupancy, sh.compH, t, occupancy); err != nil {
		sh.fail(err)
	}
}

// onCompleteEvent finishes a task's service: stale completions of
// crash-aborted tasks only return the task to the pool; live completions
// accumulate busy time, emit the completion record, and serve the next
// queued task (work conservation).
//
//tg:hotpath
func (sh *clusterShard) onCompleteEvent(arg any, val float64) {
	t := arg.(*policy.Task)
	l := t.Server / sh.nShards
	now := sh.engine.Now()
	if sh.inflight != nil {
		if sh.inflight[l] != t {
			sh.pool.Put(t)
			return
		}
		sh.inflight[l] = nil
	}
	sh.busyAcc[l] += val
	sh.emit(mergeRec{at: now, wait: t.Dequeued - t.Enqueued, svc: now - t.Dequeued,
		qid: t.QueryID, srv: int32(t.Server), idx: int32(t.Index), kind: recComplete})
	sh.pool.Put(t)
	sh.serveNext(l)
}

// serveNext marks local server l idle and, if it is up, starts its next
// queued task.
//
//tg:hotpath
func (sh *clusterShard) serveNext(l int) {
	sh.busy[l] = false
	if sh.paused[l] || (sh.crashed != nil && sh.crashed[l]) {
		return
	}
	if next := sh.queues[l].Pop(); next != nil {
		sh.startService(l, next)
	}
}

// taskLost emits the loss record for a task copy destroyed by a fault.
// The query-level bookkeeping (failed flag, remaining count, Failed
// counter) happens merger-side in merged order. reusable mirrors the
// sequential engine: a crash-aborted in-flight task cannot be pooled
// while its completion event still points at it.
func (sh *clusterShard) taskLost(t *policy.Task, now float64, reusable bool) {
	sh.emit(mergeRec{at: now, qid: t.QueryID, srv: int32(t.Server), idx: int32(t.Index), kind: recLost})
	if reusable {
		sh.pool.Put(t)
	}
}

// crash takes local server l down: the in-flight task and every queued
// task are lost to the fault, in the same pop order as the sequential
// engine.
func (sh *clusterShard) crash(l int) {
	now := sh.engine.Now()
	sh.crashed[l] = true
	if sh.busy[l] {
		t := sh.inflight[l]
		sh.inflight[l] = nil
		sh.busy[l] = false
		if t != nil {
			sh.taskLost(t, now, false)
		}
	}
	for {
		t := sh.queues[l].Pop()
		if t == nil {
			break
		}
		sh.taskLost(t, now, true)
	}
}

// restart brings a crashed local server back with an empty queue.
func (sh *clusterShard) restart(l int) {
	sh.crashed[l] = false
	if !sh.busy[l] && !sh.paused[l] {
		if next := sh.queues[l].Pop(); next != nil {
			sh.startService(l, next)
		}
	}
}

// resume ends a local server's outage and restarts its queue.
func (sh *clusterShard) resume(l int) {
	sh.paused[l] = false
	if !sh.busy[l] {
		if next := sh.queues[l].Pop(); next != nil {
			sh.startService(l, next)
		}
	}
}

// shardPump generates arrival batches on its own goroutine. It owns every
// random stream the sequential engine consumes in arrival order — the
// generator's internal rng, the cluster rng (service samples and
// per-server-queuing dispatch delays, drawn in arrival-then-task-index
// order exactly as the sequential engine draws them), and the fault
// engine's per-server drop streams — so each stream's draw order is
// independent of shard count and scheduling.
type shardPump struct {
	cfg      *Config
	rng      *rand.Rand
	faults   *fault.Engine
	recycler ServerRecycler
	shards   int
	windowMs float64
	pending  workload.Query
	have     bool
	// Run-level aggregates folded into the Result after the pipeline
	// drains; the pump keeps them private so no goroutine shares the
	// Result with the merger.
	generated        int
	admitted         int
	offered          float64
	lastArr          float64
	timelineAdmitted map[int]int
}

// next prefetches the pump's next query, mirroring the sequential
// engine's one-ahead generator draw discipline (one Next call per
// generated query, in arrival order).
func (p *shardPump) next() {
	p.have = false
	if p.generated >= p.cfg.Queries {
		return
	}
	q, ok := p.cfg.Generator.Next()
	if !ok {
		return
	}
	p.generated++
	p.pending = q
	p.have = true
}

// emitQuery turns the pending query into exchange messages and pump
// records, drawing the cluster rng and fault drop streams in the
// sequential engine's order.
//
//tg:hotpath
func (p *shardPump) emitQuery(b *shardBatch) error {
	q := p.pending
	if q.Arrival < p.lastArr {
		return fmt.Errorf("cluster: sharded run requires nondecreasing arrivals: query %d at %v after %v", q.ID, q.Arrival, p.lastArr) //tg:cold malformed source
	}
	p.lastArr = q.Arrival
	cfg := p.cfg
	for _, s := range q.Servers {
		p.offered += serviceDistFor(cfg, s).Mean()
	}
	p.admitted++
	if p.timelineAdmitted != nil {
		p.timelineAdmitted[int(q.Arrival/cfg.TimelineBucketMs)]++
	}
	deadline, err := deadlineForQuery(cfg, q)
	if err != nil {
		return fmt.Errorf("cluster: deadline for query %d: %w", q.ID, err) //tg:cold config error
	}
	b.recs = append(b.recs, mergeRec{at: q.Arrival, qid: q.ID,
		idx: int32(q.Fanout), cls: int32(q.Class), kind: recQueryStart})
	for i, s := range q.Servers {
		svc := 0.0
		if q.Services != nil {
			svc = q.Services[i]
		} else {
			svc = serviceDistFor(cfg, s).Sample(p.rng)
		}
		if p.faults.DropSend(s, q.Arrival) {
			// Dropped on the dispatch leg: like the sequential engine, the
			// send delay and dispatch delay are never sampled for a
			// dropped copy.
			b.recs = append(b.recs, mergeRec{at: q.Arrival, qid: q.ID,
				srv: int32(s), idx: int32(i), kind: recLost})
			continue
		}
		delay := p.faults.SendDelay(s, q.Arrival)
		if cfg.Queuing == PerServerQueuing && cfg.DispatchDelay != nil {
			delay += cfg.DispatchDelay.Sample(p.rng)
		}
		dst := s % p.shards
		b.msgs[dst] = append(b.msgs[dst], taskMsg{
			enqueueAt: q.Arrival + delay,
			arrival:   q.Arrival,
			deadline:  deadline,
			service:   svc,
			qid:       q.ID,
			server:    int32(s),
			index:     int32(i),
			class:     int32(q.Class),
		})
	}
	if p.recycler != nil && q.Servers != nil {
		p.recycler.Recycle(q.Servers)
	}
	return nil
}

// run produces batches until the source ends, an error occurs, or the
// coordinator aborts. Each batch covers the window [first arrival,
// first arrival + W): the loop condition (not float window arithmetic)
// guarantees every later batch's arrivals are at or after this batch's
// limit, so deliveries can never land in a shard's past.
func (p *shardPump) run(batchCh chan<- *shardBatch, quit <-chan struct{}, ex *shardExchange) {
	defer close(batchCh)
	p.next()
	for p.have {
		select {
		case <-quit:
			return
		default:
		}
		b := ex.getBatch(p.shards)
		w := p.windowMs
		hi := p.pending.Arrival + w
		for hi <= p.pending.Arrival {
			// Extreme arrival times can absorb the width; widen until the
			// window clears the arrival (any width is equally correct).
			w *= 2
			hi = p.pending.Arrival + w
		}
		var err error
		for p.have && p.pending.Arrival < hi {
			if err = p.emitQuery(b); err != nil {
				break
			}
			p.next()
		}
		b.hi = hi
		b.err = err
		select {
		case batchCh <- b:
		case <-quit:
			return
		}
		if err != nil {
			return
		}
	}
}

// shardMerger replays the merged observation streams into the Result on
// its own goroutine, reproducing the sequential engine's recorder update
// order (and so its bit-exact floating-point sums).
type shardMerger struct {
	cfg    *Config
	res    *Result
	states *stateStore
	attrib *obs.Attributor
	err    error
}

// run consumes bundles until the coordinator closes the channel.
func (m *shardMerger) run(bundleCh <-chan *shardBundle, ex *shardExchange, done chan<- struct{}) {
	defer close(done)
	for bu := range bundleCh {
		if m.err == nil {
			m.consume(bu)
		}
		ex.putBundle(bu)
	}
}

// consume k-way-merges one bundle's time-sorted streams in
// (at, pump-stream-first, task-index) order and applies each record. A
// linear min-scan over P+1 cursors beats a heap for the shard counts in
// scope (P <= 16).
//
//tg:hotpath
func (m *shardMerger) consume(bu *shardBundle) {
	n := len(bu.streams)
	cur := bu.cur
	for i := 0; i < n; i++ {
		cur[i] = 0
	}
	for {
		best := -1
		for i := 0; i < n; i++ {
			if cur[i] >= len(bu.streams[i]) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			r := &bu.streams[i][cur[i]]
			b := &bu.streams[best][cur[best]]
			// Scanning from stream 0 (the pump) upward means the pump
			// wins ties by default and shard ties fall to task index.
			if r.at < b.at || (r.at == b.at && best != 0 && r.idx < b.idx) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		r := &bu.streams[best][cur[best]]
		cur[best]++
		m.apply(r)
		if m.err != nil {
			return
		}
	}
}

// apply replays one observation record, mirroring the sequential
// runner's bookkeeping for the corresponding event.
//
//tg:hotpath
func (m *shardMerger) apply(r *mergeRec) {
	switch r.kind {
	case recQueryStart:
		st, ok := m.states.claim(r.qid)
		if !ok {
			m.err = fmt.Errorf("cluster: duplicate query ID %d", r.qid) //tg:cold malformed source
			return
		}
		st.query.ID = r.qid
		st.query.Arrival = r.at
		st.query.Class = int(r.cls)
		st.query.Fanout = int(r.idx)
		st.stragTask, st.stragSrv = -1, -1
		st.lostSrv = -1
		st.remaining = r.idx
		st.counted = r.qid >= int64(m.cfg.Warmup)
	case recDispatch:
		if err := m.res.TaskWait.Observe(r.wait); err != nil {
			m.err = err
		}
	case recComplete:
		st := m.states.get(r.qid)
		if st == nil {
			m.err = fmt.Errorf("cluster: completion for unknown query %d", r.qid) //tg:cold internal invariant
			return
		}
		if r.at >= st.maxFinish {
			// Straggler so far (>= keeps the later task on simultaneous
			// finishes, like the sequential engine).
			st.maxFinish = r.at
			st.stragTask = r.idx
			st.stragSrv = r.srv
			st.stragWait = r.wait
			st.stragSvc = r.svc
		}
		st.remaining--
		if st.remaining == 0 {
			m.queryDone(r.qid, st)
		}
	case recLost:
		m.res.LostTasks++
		st := m.states.get(r.qid)
		if st == nil {
			m.err = fmt.Errorf("cluster: lost task for unknown query %d", r.qid) //tg:cold internal invariant
			return
		}
		st.failed = true
		if st.lostSrv < 0 {
			st.lostSrv = r.srv
		}
		st.remaining--
		if st.remaining == 0 {
			m.queryDone(r.qid, st)
		}
	}
}

// queryDone records a finished query, mirroring the sequential
// onQueryDone minus the features validateSharded rejects. st is released
// (and invalid) once this returns.
func (m *shardMerger) queryDone(id int64, st *queryState) {
	q := st.query
	counted := st.counted
	latency := st.maxFinish - q.Arrival
	if st.failed {
		m.res.Failed++
		m.states.release(id)
		return
	}
	m.res.Completed++
	if m.attrib != nil && counted {
		class, err := m.cfg.Classes.Class(q.Class)
		if err != nil {
			m.err = fmt.Errorf("cluster: attributing query %d: %w", id, err)
			return
		}
		m.attrib.Observe(obs.QueryOutcome{
			QueryID:            id,
			Class:              q.Class,
			Fanout:             q.Fanout,
			LatencyMs:          latency,
			SLOMs:              class.SLOMs,
			StragglerTask:      st.stragTask,
			StragglerServer:    st.stragSrv,
			StragglerWaitMs:    st.stragWait,
			StragglerServiceMs: st.stragSvc,
		})
	}
	m.states.release(id)
	if counted {
		cls, fanout := q.Class, q.Fanout
		if err := m.res.Overall.Observe(latency); err != nil {
			m.err = err
			return
		}
		if err := m.res.ByClass.Observe(cls, latency); err != nil {
			m.err = err
			return
		}
		if err := m.res.ByFanout.Observe(fanout, latency); err != nil {
			m.err = err
			return
		}
		if err := m.res.ByType.Observe(ClassFanout{Class: cls, Fanout: fanout}, latency); err != nil {
			m.err = err
			return
		}
		if m.res.Timeline != nil {
			if err := m.res.Timeline.Observe(int(q.Arrival/m.cfg.TimelineBucketMs), latency); err != nil {
				m.err = err
				return
			}
		}
	}
}

// shardedState is the arena's reusable sharded-core machinery: the shard
// engines and their worker gang, the per-shard server state, and the
// exchange pools. It is rebuilt only when the (shards, servers, queue
// kind) shape changes.
type shardedState struct {
	set       *sim.ShardSet
	shards    []*clusterShard
	ex        shardExchange
	servers   int
	kind      policy.Kind
	curBatch  *shardBatch
	deliverFn func(int) error
}

// deliver is the per-window gang callback: worker i drains the current
// batch's shard-i exchange queue into its engine.
//
//tg:hotpath
func (ss *shardedState) deliver(i int) error {
	return ss.shards[i].deliverWindow(ss.curBatch.msgs[i])
}

// firstShardErr returns the lowest-shard-index internal error of the last
// window, if any.
func (ss *shardedState) firstShardErr() error {
	for _, sh := range ss.shards {
		if sh.err != nil {
			return sh.err
		}
	}
	return nil
}

// shardedFor returns the arena's sharded state, rebuilding it when the
// run's shape changed.
func (a *Arena) shardedFor(cfg *Config) (*shardedState, error) {
	ss := a.sharded
	if ss != nil && (ss.servers != cfg.Servers || len(ss.shards) != cfg.Shards || ss.kind != cfg.Spec.Queue) {
		ss.set.Stop()
		ss = nil
	}
	if ss == nil {
		ss = &shardedState{
			set:     sim.NewShardSet(cfg.Shards),
			shards:  make([]*clusterShard, cfg.Shards),
			servers: cfg.Servers,
			kind:    cfg.Spec.Queue,
		}
		for i := range ss.shards {
			sh := &clusterShard{id: i, nShards: cfg.Shards, engine: ss.set.Engine(i)}
			for n := shardLocalCount(cfg.Servers, cfg.Shards, i); len(sh.queues) < n; {
				q, err := policy.New(cfg.Spec.Queue)
				if err != nil {
					return nil, fmt.Errorf("cluster: building shard queue: %w", err)
				}
				sh.queues = append(sh.queues, q)
			}
			sh.enqH = sh.onEnqueueEvent
			sh.compH = sh.onCompleteEvent
			ss.shards[i] = sh
		}
		ss.deliverFn = ss.deliver
		a.sharded = ss
	}
	return ss, nil
}

// runSharded executes the configured simulation on the sharded parallel
// core. The caller has already validated cfg (including validateSharded).
func runSharded(cfg Config) (*Result, error) {
	a := cfg.Arena
	if a == nil {
		a = NewArena()
	}
	a.states.reset()
	ss, err := a.shardedFor(&cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Faults != nil {
		// Rewind the seeded drop streams so a reused engine replays the
		// identical fault schedule.
		cfg.Faults.Reset()
	}
	ss.set.Reset()
	for _, sh := range ss.shards {
		if err := sh.prepare(&cfg); err != nil {
			return nil, err
		}
	}
	res := a.takeResult(&cfg)

	pump := &shardPump{
		cfg:      &cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		faults:   cfg.Faults,
		shards:   cfg.Shards,
		windowMs: shardWindow(&cfg),
	}
	pump.recycler, _ = cfg.Generator.(ServerRecycler)
	if cfg.TimelineBucketMs > 0 {
		pump.timelineAdmitted = make(map[int]int)
	}
	merger := &shardMerger{cfg: &cfg, res: res, states: &a.states, attrib: cfg.Attribution}

	batchCh := make(chan *shardBatch, 2)
	bundleCh := make(chan *shardBundle, 2)
	quit := make(chan struct{})
	mergeDone := make(chan struct{})
	ss.set.Start()
	defer ss.set.Stop()
	go pump.run(batchCh, quit, &ss.ex)
	go merger.run(bundleCh, &ss.ex, mergeDone)

	var runErr error
	for b := range batchCh {
		if b.err != nil {
			runErr = b.err
			ss.ex.putBatch(b)
			break
		}
		ss.curBatch = b
		err := ss.set.RunWindow(b.hi, ss.deliverFn)
		if err == nil {
			err = ss.firstShardErr()
		}
		if err != nil {
			runErr = err
			ss.ex.putBatch(b)
			break
		}
		// Hand this window's record streams to the merger, swapping in the
		// recycled bundle's empty (capacity-preserving) slices.
		bu := ss.ex.getBundle(len(ss.shards) + 1)
		bu.streams[0], b.recs = b.recs, bu.streams[0]
		for i, sh := range ss.shards {
			bu.streams[1+i], sh.recs = sh.recs, bu.streams[1+i]
		}
		ss.ex.putBatch(b)
		bundleCh <- bu
	}
	if runErr != nil {
		close(quit)
		for b := range batchCh {
			ss.ex.putBatch(b)
		}
	} else {
		// Final window: drain the in-flight completions past the last
		// arrival batch, then ship the tail records.
		err := ss.set.Drain(nil)
		if err == nil {
			err = ss.firstShardErr()
		}
		if err != nil {
			runErr = err
		} else {
			bu := ss.ex.getBundle(len(ss.shards) + 1)
			for i, sh := range ss.shards {
				bu.streams[1+i], sh.recs = sh.recs, bu.streams[1+i]
			}
			bundleCh <- bu
		}
	}
	close(bundleCh)
	<-mergeDone
	if runErr == nil {
		runErr = merger.err
	}
	if runErr != nil {
		return nil, runErr
	}

	res.Queries = pump.generated
	res.Admitted = pump.admitted
	res.OfferedLoad = pump.offered
	// The sequential clock ends at the last executed event: the latest
	// shard event or the last arrival, whichever is later.
	dur := ss.set.MaxNow()
	if pump.lastArr > dur {
		dur = pump.lastArr
	}
	res.Duration = dur
	if dur > 0 {
		// Sum busy time in global server order so the floating-point sum
		// is bit-identical to the sequential engine's.
		var busy float64
		for s := 0; s < cfg.Servers; s++ {
			busy += ss.shards[s%cfg.Shards].busyAcc[s/cfg.Shards]
		}
		capacity := dur * float64(cfg.Servers)
		res.Utilization = busy / capacity
		res.OfferedLoad /= capacity
	}
	var nTasks, nMissed int
	for _, sh := range ss.shards {
		nTasks += sh.nTasks
		nMissed += sh.nMissed
	}
	if nTasks > 0 {
		res.TaskMissRatio = float64(nMissed) / float64(nTasks)
	}
	if res.TimelineAdmitted != nil && pump.timelineAdmitted != nil {
		// Fold in sorted-bucket order so map iteration order never leaks
		// into observable behavior (detflow).
		keys := make([]int, 0, len(pump.timelineAdmitted))
		for k := range pump.timelineAdmitted {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			res.TimelineAdmitted[k] = pump.timelineAdmitted[k]
		}
	}
	return res, nil
}
