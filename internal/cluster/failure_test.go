package cluster

import (
	"math"
	"testing"

	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/workload"
)

func TestFailureValidation(t *testing.T) {
	classes, _ := workload.SingleClass(100)
	fan, _ := workload.NewFixed(1)
	svc := dist.Deterministic{V: 1}
	gen, _ := workload.NewGenerator(workload.GeneratorConfig{
		Servers: 1, Arrival: fixedGap{gap: 10}, Fanout: fan, Classes: classes,
	}, 1)
	est, _ := core.NewHomogeneousStaticTailEstimator(svc, 1)
	dl, _ := core.NewDeadliner(core.FIFO, est, classes)
	base := Config{
		Servers: 1, Spec: core.FIFO, ServiceTimes: []dist.Distribution{svc},
		Generator: gen, Classes: classes, Deadliner: dl, Queries: 5,
	}
	cases := []struct {
		name string
		f    Failure
	}{
		{"server out of range", Failure{Server: 5, Start: 1, End: 2}},
		{"inverted window", Failure{Server: 0, Start: 2, End: 1}},
		{"negative start", Failure{Server: 0, Start: -1, End: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			cfg.Failures = []Failure{tc.f}
			if _, err := Run(cfg); err == nil {
				t.Error("Run succeeded, want error")
			}
		})
	}
	cfg := base
	cfg.TimelineBucketMs = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative timeline bucket succeeded, want error")
	}
}

// TestFailureStallsServer pins the outage semantics with deterministic
// arithmetic: one server, 1 ms tasks arriving every 2 ms, an outage over
// [3, 9). The query arriving at 4 ms must wait for the recovery.
func TestFailureStallsServer(t *testing.T) {
	classes, _ := workload.SingleClass(1000)
	fan, _ := workload.NewFixed(1)
	svc := dist.Deterministic{V: 1}
	gen, _ := workload.NewGenerator(workload.GeneratorConfig{
		Servers: 1, Arrival: fixedGap{gap: 2}, Fanout: fan, Classes: classes,
	}, 1)
	est, _ := core.NewHomogeneousStaticTailEstimator(svc, 1)
	dl, _ := core.NewDeadliner(core.FIFO, est, classes)
	res, err := Run(Config{
		Servers: 1, Spec: core.FIFO, ServiceTimes: []dist.Distribution{svc},
		Generator: gen, Classes: classes, Deadliner: dl, Queries: 3,
		Failures: []Failure{{Server: 0, Start: 3, End: 9}},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Arrivals at 2, 4, 6. Query 1 (t=2): served 2-3, latency 1.
	// Query 2 (t=4): server down until 9, served 9-10, latency 6.
	// Query 3 (t=6): queued behind, served 10-11, latency 5.
	got := res.Overall.Samples()
	want := []float64{1, 6, 5} // completion order
	if len(got) != 3 {
		t.Fatalf("latencies = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("latency[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if res.Duration != 11 {
		t.Errorf("Duration = %v, want 11", res.Duration)
	}
}

func TestTimelineBuckets(t *testing.T) {
	classes, _ := workload.SingleClass(1000)
	fan, _ := workload.NewFixed(1)
	svc := dist.Deterministic{V: 0.1}
	gen, _ := workload.NewGenerator(workload.GeneratorConfig{
		Servers: 1, Arrival: fixedGap{gap: 1}, Fanout: fan, Classes: classes,
	}, 1)
	est, _ := core.NewHomogeneousStaticTailEstimator(svc, 1)
	dl, _ := core.NewDeadliner(core.FIFO, est, classes)
	res, err := Run(Config{
		Servers: 1, Spec: core.FIFO, ServiceTimes: []dist.Distribution{svc},
		Generator: gen, Classes: classes, Deadliner: dl, Queries: 10,
		TimelineBucketMs: 5,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Arrivals at 1..10: buckets 0 (1-4.99: 4 queries) 1 (5-9.99: 5) 2 (10: 1).
	if res.Timeline == nil {
		t.Fatal("Timeline not populated")
	}
	if got := res.Timeline.Recorder(0).Count(); got != 4 {
		t.Errorf("bucket 0 count = %d, want 4", got)
	}
	if got := res.Timeline.Recorder(1).Count(); got != 5 {
		t.Errorf("bucket 1 count = %d, want 5", got)
	}
	if got := res.TimelineAdmitted[0]; got != 4 {
		t.Errorf("bucket 0 admitted = %d, want 4", got)
	}
}
