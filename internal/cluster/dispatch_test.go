package cluster

import (
	"math"
	"testing"

	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/workload"
)

// runWithDispatch runs a single-server deterministic scenario under the
// given queuing mode with a fixed dispatch delay.
func runWithDispatch(t *testing.T, mode QueuingMode, dispatch float64) *Result {
	t.Helper()
	classes, _ := workload.SingleClass(100)
	fan, _ := workload.NewFixed(1)
	svc := dist.Deterministic{V: 1}
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Servers: 1, Arrival: fixedGap{gap: 10}, Fanout: fan, Classes: classes,
	}, 1)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	est, _ := core.NewHomogeneousStaticTailEstimator(svc, 1)
	dl, _ := core.NewDeadliner(core.FIFO, est, classes)
	res, err := Run(Config{
		Servers:       1,
		Spec:          core.FIFO,
		ServiceTimes:  []dist.Distribution{svc},
		Generator:     gen,
		Classes:       classes,
		Deadliner:     dl,
		Queries:       10,
		Warmup:        0,
		Seed:          2,
		Queuing:       mode,
		DispatchDelay: dist.Deterministic{V: dispatch},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestDispatchDelayCentral(t *testing.T) {
	// Uncontended: latency = dispatch + service under central queuing
	// (the dispatch leg happens after dequeue).
	res := runWithDispatch(t, CentralQueuing, 0.5)
	for _, v := range res.Overall.Samples() {
		if math.Abs(v-1.5) > 1e-9 {
			t.Fatalf("central latency = %v, want 1.5", v)
		}
	}
	// Occupancy includes the dispatch leg: busy time = 10 * 1.5.
	busy := res.Utilization * res.Duration
	if math.Abs(busy-15) > 1e-6 {
		t.Errorf("busy time = %v, want 15", busy)
	}
	// Task wait is still zero (no contention).
	if res.TaskWait.Mean() != 0 {
		t.Errorf("central mean wait = %v, want 0", res.TaskWait.Mean())
	}
}

func TestDispatchDelayPerServer(t *testing.T) {
	// Uncontended: latency = dispatch + service as well, but the dispatch
	// leg is pre-queue: it shows up in the measured task wait, and server
	// occupancy excludes it.
	res := runWithDispatch(t, PerServerQueuing, 0.5)
	for _, v := range res.Overall.Samples() {
		if math.Abs(v-1.5) > 1e-9 {
			t.Fatalf("per-server latency = %v, want 1.5", v)
		}
	}
	busy := res.Utilization * res.Duration
	if math.Abs(busy-10) > 1e-6 {
		t.Errorf("busy time = %v, want 10 (dispatch not occupancy)", busy)
	}
	if got := res.TaskWait.Mean(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("per-server mean wait = %v, want 0.5 (includes dispatch)", got)
	}
}

func TestDispatchDelayNilIsZero(t *testing.T) {
	classes, _ := workload.SingleClass(100)
	fan, _ := workload.NewFixed(1)
	svc := dist.Deterministic{V: 1}
	gen, _ := workload.NewGenerator(workload.GeneratorConfig{
		Servers: 1, Arrival: fixedGap{gap: 10}, Fanout: fan, Classes: classes,
	}, 1)
	est, _ := core.NewHomogeneousStaticTailEstimator(svc, 1)
	dl, _ := core.NewDeadliner(core.FIFO, est, classes)
	res, err := Run(Config{
		Servers: 1, Spec: core.FIFO, ServiceTimes: []dist.Distribution{svc},
		Generator: gen, Classes: classes, Deadliner: dl, Queries: 5,
		Queuing: PerServerQueuing, // no DispatchDelay
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, v := range res.Overall.Samples() {
		if v != 1 {
			t.Fatalf("latency = %v, want 1", v)
		}
	}
}
