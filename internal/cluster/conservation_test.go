package cluster

import (
	"math"
	"testing"

	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/policy"
	"tailguard/internal/trace"
	"tailguard/internal/workload"
)

// TestWorkConservationAcrossPolicies replays one pinned trace (identical
// arrivals, placements, and per-task service times) under every queue
// discipline. For non-preemptive work-conserving scheduling, the server
// busy periods are invariant to queue order, so total busy time, run
// duration, and completion counts must be bit-identical across policies —
// only the latency distributions may differ. This pins down a large class
// of bookkeeping bugs (lost tasks, double service, idle servers with
// non-empty queues).
func TestWorkConservationAcrossPolicies(t *testing.T) {
	const servers = 50
	w := dist.MustTailbenchWorkload("shore")
	arr, err := workload.NewPoisson(2)
	if err != nil {
		t.Fatalf("NewPoisson: %v", err)
	}
	fan, err := workload.NewInverseProportional([]int{1, 10, 50})
	if err != nil {
		t.Fatalf("NewInverseProportional: %v", err)
	}
	classes, err := workload.TwoClasses(5, 1.5)
	if err != nil {
		t.Fatalf("TwoClasses: %v", err)
	}
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Servers: servers, Arrival: arr, Fanout: fan, Classes: classes,
	}, 17)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	recs, err := trace.Generate(gen, []dist.Distribution{w.ServiceTime}, servers, 20000, 18)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}

	est, err := core.NewHomogeneousStaticTailEstimator(w.ServiceTime, servers)
	if err != nil {
		t.Fatalf("NewHomogeneousStaticTailEstimator: %v", err)
	}

	specs := []core.Spec{
		core.FIFO,
		core.PRIQ,
		core.TEDFQ,
		core.TFEDFQ,
		{Name: "LIFO", Queue: policy.LIFO, Deadline: core.DeadlineNone},
		{Name: "SJF", Queue: policy.SJF, Deadline: core.DeadlineNone},
	}
	type invariant struct {
		busyTotal float64
		duration  float64
		completed int
		counted   int
	}
	var base *invariant
	var baseName string
	p99s := map[string]float64{}
	for _, spec := range specs {
		rep, err := trace.NewReplayer(recs)
		if err != nil {
			t.Fatalf("NewReplayer: %v", err)
		}
		dl, err := core.NewDeadliner(spec, est, classes)
		if err != nil {
			t.Fatalf("NewDeadliner(%s): %v", spec.Name, err)
		}
		res, err := Run(Config{
			Servers:      servers,
			Spec:         spec,
			ServiceTimes: []dist.Distribution{w.ServiceTime},
			Generator:    rep,
			Classes:      classes,
			Deadliner:    dl,
			Queries:      len(recs),
			Warmup:       1000,
			Seed:         99, // irrelevant: services pinned by the trace
		})
		if err != nil {
			t.Fatalf("Run(%s): %v", spec.Name, err)
		}
		got := &invariant{
			busyTotal: res.Utilization * res.Duration * float64(servers),
			duration:  res.Duration,
			completed: res.Completed,
			counted:   res.Overall.Count(),
		}
		p99, err := res.Overall.P99()
		if err != nil {
			t.Fatalf("P99: %v", err)
		}
		p99s[spec.Name] = p99
		if base == nil {
			base, baseName = got, spec.Name
			continue
		}
		if got.completed != base.completed || got.counted != base.counted {
			t.Errorf("%s vs %s: completed/counted %d/%d != %d/%d",
				spec.Name, baseName, got.completed, got.counted, base.completed, base.counted)
		}
		if math.Abs(got.busyTotal-base.busyTotal) > 1e-6*base.busyTotal {
			t.Errorf("%s vs %s: busy time %v != %v (work not conserved)",
				spec.Name, baseName, got.busyTotal, base.busyTotal)
		}
		if math.Abs(got.duration-base.duration) > 1e-6*base.duration {
			t.Errorf("%s vs %s: duration %v != %v", spec.Name, baseName, got.duration, base.duration)
		}
	}
	// The latency profiles must NOT all coincide (the policies do differ):
	// LIFO's p99 is reliably far from FIFO's at this load.
	if math.Abs(p99s["LIFO"]-p99s["FIFO"]) < 1e-9 {
		t.Errorf("LIFO and FIFO produced identical p99 %v — policies not taking effect", p99s["FIFO"])
	}
}
