package cluster

import (
	"math"
	"math/rand"
	"testing"

	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/fault"
	"tailguard/internal/workload"
)

// pinnedGen builds a generator that places every (fanout-1) query on the
// given server, for deterministic fault-arithmetic tests.
func pinnedGen(t *testing.T, servers, server int, gap float64, classes *workload.ClassSet, seed int64) workload.QuerySource {
	t.Helper()
	fan, err := workload.NewFixed(1)
	if err != nil {
		t.Fatalf("NewFixed: %v", err)
	}
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Servers: servers,
		Arrival: fixedGap{gap: gap},
		Fanout:  fan,
		Classes: classes,
		Placement: func(_ *rand.Rand, _ int) []int {
			return []int{server}
		},
	}, seed)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return gen
}

func faultConfig(t *testing.T, servers int, sloMs, gap float64, queries int, plan *fault.Plan) Config {
	t.Helper()
	classes, _ := workload.SingleClass(sloMs)
	svc := dist.Deterministic{V: 1}
	cfg := Config{
		Servers:      servers,
		Spec:         core.FIFO,
		ServiceTimes: []dist.Distribution{svc},
		Generator:    pinnedGen(t, servers, 0, gap, classes, 1),
		Classes:      classes,
		Queries:      queries,
	}
	est, err := core.NewHomogeneousStaticTailEstimator(svc, servers)
	if err != nil {
		t.Fatalf("NewHomogeneousStaticTailEstimator: %v", err)
	}
	cfg.Deadliner, err = core.NewDeadliner(core.FIFO, est, classes)
	if err != nil {
		t.Fatalf("NewDeadliner: %v", err)
	}
	if plan != nil {
		cfg.Faults = fault.MustEngine(plan, servers)
	}
	return cfg
}

func TestFaultConfigValidation(t *testing.T) {
	cfg := faultConfig(t, 2, 1000, 10, 3, nil)
	cfg.Faults = fault.MustEngine(&fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Slowdown, Server: 0, StartMs: 1, EndMs: 2, Factor: 2},
	}}, 4) // compiled for 4 servers, cluster has 2
	if _, err := Run(cfg); err == nil {
		t.Error("engine/server mismatch accepted")
	}

	cfg = faultConfig(t, 2, 1000, 10, 3, nil)
	cfg.Resilience = fault.Resilience{RetryBudget: -1}
	if _, err := Run(cfg); err == nil {
		t.Error("negative retry budget accepted")
	}

	cfg = faultConfig(t, 2, 1000, 10, 3, nil)
	cfg.Resilience = fault.Resilience{DegradedAdmission: true}
	if _, err := Run(cfg); err == nil {
		t.Error("degraded admission without an admission controller accepted")
	}
}

// TestDormantFaultEnginePreservesRun pins the preservation contract: an
// engine whose only fault window lies beyond the simulated horizon leaves
// the run identical to a fault-free one.
func TestDormantFaultEnginePreservesRun(t *testing.T) {
	base := faultConfig(t, 2, 1000, 2, 20, nil)
	plain, err := Run(base)
	if err != nil {
		t.Fatalf("Run(plain): %v", err)
	}
	faulted := faultConfig(t, 2, 1000, 2, 20, &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Slowdown, Server: 0, StartMs: 1e9, EndMs: 2e9, Factor: 10},
	}})
	withEngine, err := Run(faulted)
	if err != nil {
		t.Fatalf("Run(dormant faults): %v", err)
	}
	a, b := plain.Overall.Samples(), withEngine.Overall.Samples()
	if len(a) != len(b) {
		t.Fatalf("sample counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency[%d]: %v vs %v", i, a[i], b[i])
		}
	}
	if withEngine.LostTasks != 0 || withEngine.Failed != 0 {
		t.Errorf("dormant engine lost %d tasks, failed %d queries", withEngine.LostTasks, withEngine.Failed)
	}
}

// TestSlowdownStretchesService: an idle server serving 1 ms tasks under a
// 5x slowdown takes 5 ms per task.
func TestSlowdownStretchesService(t *testing.T) {
	cfg := faultConfig(t, 1, 1000, 10, 3, &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Slowdown, Server: 0, StartMs: 15, EndMs: 40, Factor: 5},
	}})
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Arrivals at 10, 20, 30 on an idle server. Query at 10 is outside the
	// window (service 10-11, latency 1); queries at 20 and 30 start inside
	// it and run at 1/5 speed (latency 5).
	want := []float64{1, 5, 5}
	got := res.Overall.Samples()
	if len(got) != len(want) {
		t.Fatalf("latencies = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("latency[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestStallDelaysCompletion: a full stop over [10.5, 15) suspends the task
// in service; the remaining work resumes at the window end.
func TestStallDelaysCompletion(t *testing.T) {
	cfg := faultConfig(t, 1, 1000, 10, 2, &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Stall, Server: 0, StartMs: 10.5, EndMs: 15},
	}})
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Query at 10: 0.5 ms served, stalled until 15, remaining 0.5 ms done
	// at 15.5 -> latency 5.5. Query at 20: unaffected, latency 1.
	want := []float64{5.5, 1}
	got := res.Overall.Samples()
	if len(got) != len(want) {
		t.Fatalf("latencies = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("latency[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestCrashFailsQueriesWithoutResilience: with no retry budget and no
// hedging, every task caught by a crash window fails its query.
func TestCrashFailsQueriesWithoutResilience(t *testing.T) {
	cfg := faultConfig(t, 1, 1000, 2, 3, &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Crash, Server: 0, StartMs: 2.5, EndMs: 9},
	}})
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Arrivals at 2, 4, 6. The first is in service when the crash hits at
	// 2.5; the others arrive at a crashed server. All three are lost.
	if res.Failed != 3 || res.LostTasks != 3 || res.Completed != 0 {
		t.Errorf("Failed=%d LostTasks=%d Completed=%d, want 3/3/0",
			res.Failed, res.LostTasks, res.Completed)
	}
	if res.Overall.Count() != 0 {
		t.Errorf("failed queries contributed %d latency samples", res.Overall.Count())
	}
}

// TestRetryRedispatchesLostTask: with a retry budget, tasks lost to a
// crash are re-dispatched to the least-loaded surviving server.
func TestRetryRedispatchesLostTask(t *testing.T) {
	cfg := faultConfig(t, 2, 1000, 2, 3, &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Crash, Server: 0, StartMs: 2.5, EndMs: 9},
	}})
	cfg.Resilience = fault.Resilience{RetryBudget: 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Failed != 0 || res.Completed != 3 {
		t.Fatalf("Failed=%d Completed=%d, want 0/3", res.Failed, res.Completed)
	}
	if res.LostTasks != 3 || res.Retries != 3 {
		t.Errorf("LostTasks=%d Retries=%d, want 3/3", res.LostTasks, res.Retries)
	}
	// Query at 2 is aborted at 2.5 and replayed on server 1 (2.5-3.5):
	// latency 1.5. Queries at 4 and 6 are refused by the crashed server
	// and retried immediately on the idle server 1: latency 1.
	want := []float64{1.5, 1, 1}
	got := res.Overall.Samples()
	if len(got) != len(want) {
		t.Fatalf("latencies = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("latency[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestTransportDelayAddsLatency: a 3 ms transport delay on the dispatch
// leg shifts enqueue (and completion) by 3 ms.
func TestTransportDelayAddsLatency(t *testing.T) {
	cfg := faultConfig(t, 1, 1000, 10, 2, &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.TransportDelay, Server: 0, StartMs: 0, EndMs: 15, DelayMs: 3},
	}})
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Query at 10 is delayed 3 ms in flight (latency 4); query at 20 is
	// outside the window (latency 1).
	want := []float64{4, 1}
	got := res.Overall.Samples()
	if len(got) != len(want) {
		t.Fatalf("latencies = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("latency[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestTransportDropConsumesRetryBudget: a certain drop (p=1) destroys
// every dispatch to server 0; the retry budget redirects the copies.
func TestTransportDropConsumesRetryBudget(t *testing.T) {
	plan := &fault.Plan{Seed: 7, Faults: []fault.Fault{
		{Kind: fault.TransportDrop, Server: 0, StartMs: 0, EndMs: 1e9, DropProb: 1},
	}}

	cfg := faultConfig(t, 2, 1000, 2, 5, plan)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(no budget): %v", err)
	}
	if res.Failed != 5 || res.Completed != 0 {
		t.Errorf("no budget: Failed=%d Completed=%d, want 5/0", res.Failed, res.Completed)
	}

	cfg = faultConfig(t, 2, 1000, 2, 5, plan)
	cfg.Resilience = fault.Resilience{RetryBudget: 1}
	res, err = Run(cfg)
	if err != nil {
		t.Fatalf("Run(budget 1): %v", err)
	}
	if res.Failed != 0 || res.Completed != 5 || res.Retries != 5 {
		t.Errorf("budget 1: Failed=%d Completed=%d Retries=%d, want 0/5/5",
			res.Failed, res.Completed, res.Retries)
	}
}

// TestFaultRunDeterminism: the same seed and plan reproduce bit-identical
// results, including the seeded transport-drop stream.
func TestFaultRunDeterminism(t *testing.T) {
	plan := &fault.Plan{Seed: 42, Faults: []fault.Fault{
		{Kind: fault.TransportDrop, Server: 0, StartMs: 0, EndMs: 1e9, DropProb: 0.3},
		{Kind: fault.Slowdown, Server: 1, StartMs: 10, EndMs: 50, Factor: 4},
	}}
	run := func() *Result {
		cfg := faultConfig(t, 2, 1000, 1, 40, plan)
		cfg.Resilience = fault.Resilience{RetryBudget: 2}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.LostTasks != b.LostTasks || a.Retries != b.Retries || a.Failed != b.Failed || a.Completed != b.Completed {
		t.Fatalf("counters differ: %+v vs %+v", a, b)
	}
	as, bs := a.Overall.Samples(), b.Overall.Samples()
	if len(as) != len(bs) {
		t.Fatalf("sample counts differ: %d vs %d", len(as), len(bs))
	}
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("latency[%d]: %v vs %v", i, as[i], bs[i])
		}
	}
	if a.LostTasks == 0 {
		t.Error("drop plan lost no tasks; determinism check is vacuous")
	}
}

// TestHedgeMitigatesStraggler is the mitigation acceptance check at the
// cluster level: under a 10x slowdown on one server, hedging over TF-EDFQ
// must improve overall p99 versus the un-hedged run.
func TestHedgeMitigatesStraggler(t *testing.T) {
	w := dist.MustTailbenchWorkload("masstree")
	classes, _ := workload.SingleClass(0.8)
	plan := &fault.Plan{Seed: 3, Faults: []fault.Fault{
		{Kind: fault.Slowdown, Server: 0, StartMs: 0, EndMs: 1e12, Factor: 10},
	}}
	run := func(resil fault.Resilience) *Result {
		fan, _ := workload.NewFixed(8)
		rate, _ := workload.RateForLoad(0.30, 16, fan.MeanTasks(), w.ServiceTime.Mean())
		arr, _ := workload.NewPoisson(rate)
		cfg := buildConfig(t, core.TFEDFQ, w.ServiceTime, 16, arr, fan, classes, 20000, 1000, 5)
		cfg.Faults = fault.MustEngine(plan, 16)
		cfg.Resilience = resil
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run(%s): %v", resil.Label(), err)
		}
		return res
	}
	plain := run(fault.Resilience{})
	hedged := run(fault.Resilience{Hedge: true})
	if hedged.HedgesIssued == 0 {
		t.Fatal("hedged run issued no hedges")
	}
	if hedged.HedgeWins == 0 {
		t.Error("hedged run won no races")
	}
	pp, err := plain.Overall.P99()
	if err != nil {
		t.Fatalf("P99(plain): %v", err)
	}
	hp, err := hedged.Overall.P99()
	if err != nil {
		t.Fatalf("P99(hedged): %v", err)
	}
	if hp >= pp {
		t.Errorf("hedged p99 %v not better than un-hedged %v", hp, pp)
	}
	t.Logf("p99 un-hedged %.3f ms, hedged %.3f ms (%d hedges, %d wins)",
		pp, hp, hedged.HedgesIssued, hedged.HedgeWins)
}

// TestDegradedAdmissionActivates: once the miss window turns
// fault-dominated, the admission threshold is scaled down, and it is
// restored to nominal when the run finalizes.
func TestDegradedAdmissionActivates(t *testing.T) {
	classes, _ := workload.SingleClass(1) // 1 ms SLO: every 2 ms query misses
	svc := dist.Deterministic{V: 2}
	fan, _ := workload.NewFixed(1)
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Servers: 1, Arrival: fixedGap{gap: 5}, Fanout: fan, Classes: classes,
	}, 1)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	est, _ := core.NewHomogeneousStaticTailEstimator(svc, 1)
	dl, _ := core.NewDeadliner(core.FIFO, est, classes)
	adm, err := core.NewAdmissionController(1000, 0.5)
	if err != nil {
		t.Fatalf("NewAdmissionController: %v", err)
	}
	minScale := 1.0
	cfg := Config{
		Servers: 1, Spec: core.FIFO, ServiceTimes: []dist.Distribution{svc},
		Generator: gen, Classes: classes, Deadliner: dl, Queries: 40,
		Admission:  adm,
		Resilience: fault.Resilience{DegradedAdmission: true},
		OnQueryDone: func(workload.Query, float64, float64) []workload.Query {
			if s := adm.ThresholdScale(); s < minScale {
				minScale = s
			}
			return nil
		},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if minScale != fault.DefaultDegradedScale {
		t.Errorf("min threshold scale = %v, want %v", minScale, fault.DefaultDegradedScale)
	}
	if got := adm.ThresholdScale(); got != 1 {
		t.Errorf("post-run threshold scale = %v, want restored to 1", got)
	}
}
