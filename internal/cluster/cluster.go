// Package cluster simulates the paper's query processing model (Fig. 2):
// a query arrival process feeding a query handler that spawns kf tasks per
// query, dispatches them to task-server queues managed by a pluggable
// queuing policy, and merges task results; the slowest task determines the
// query response time. It is the engine behind every simulation experiment
// in Section IV.
//
// The simulator is allocation-free in steady state: tasks and query
// states come from per-run freelists owned by an Arena, events carry
// their payloads through pre-bound sim.Handlers instead of closures, and
// an Arena reused across runs also recycles the event heap, queues, and
// result recorders. See DESIGN.md §9 for the pooling invariants.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/metrics"
	"tailguard/internal/obs"
	"tailguard/internal/policy"
	"tailguard/internal/sim"
	"tailguard/internal/workload"
)

// ClassFanout identifies one "query type" in the paper's sense: a service
// class and fanout pair. SLO compliance is verified per type.
type ClassFanout struct {
	Class  int
	Fanout int
}

// Config configures one simulation run.
type Config struct {
	// Servers is the cluster size N.
	Servers int
	// Spec selects the queuing policy (queue discipline + deadline rule).
	Spec core.Spec
	// ServiceTimes holds per-server task service-time distributions:
	// either one entry (homogeneous, used by all servers) or exactly
	// Servers entries.
	ServiceTimes []dist.Distribution
	// Generator produces the query stream (arrivals, classes, fanouts,
	// placements). Finite sources (trace replays) may end before Queries
	// queries; the run then simply drains. Sources implementing
	// ServerRecycler get their placement slices back once a query's
	// statistics are recorded.
	Generator workload.QuerySource
	// Classes defines the service classes and their SLOs.
	Classes *workload.ClassSet
	// Deadliner computes task queuing deadlines for the chosen Spec.
	Deadliner *core.Deadliner
	// Queries is the total number of queries to generate.
	Queries int
	// Warmup queries are simulated but excluded from statistics.
	Warmup int
	// Seed drives service-time sampling.
	Seed int64
	// Admission, if non-nil, applies query admission control.
	Admission *core.AdmissionController
	// Estimator, if non-nil, receives online post-queuing-time
	// observations (the paper's online updating process). Must be an
	// updatable (non-static) estimator.
	Estimator *core.TailEstimator
	// HeterogeneousDeadlines computes deadlines from each query's actual
	// server set (Eqn. 1 product form) instead of the homogeneous fanout
	// shortcut. Needed when ServiceTimes differ across servers.
	HeterogeneousDeadlines bool
	// OnQueryDone, if non-nil, is invoked when a query completes (warmup
	// or not) and may return follow-up queries to inject with arrival set
	// to the completion time. The request-level extension chains a
	// request's sequential queries through it. Injected queries bypass
	// admission control (the request was already admitted). The hook must
	// not retain q.Servers past its return: the slice may be recycled.
	OnQueryDone func(q workload.Query, latencyMs, now float64) []workload.Query
	// Queuing selects where task queuing takes place (the paper's
	// footnote 3): centrally at the query handler (default) or at the
	// task servers. The difference only matters with a DispatchDelay.
	Queuing QueuingMode
	// DispatchDelay, if non-nil, models the per-task dispatch network
	// delay. Under central queuing it is incurred after dequeue (part of
	// the post-queuing time t_po and of server occupancy); under
	// per-server queuing it is incurred before enqueue (part of the
	// pre-dequeuing time t_pr).
	DispatchDelay dist.Distribution
	// Failures injects server outages: during [Start, End) the server
	// finishes its in-flight task but starts no new ones; its queue keeps
	// accumulating. This models the paper's "hardware/software failures"
	// motivation for admission control.
	Failures []Failure
	// TimelineBucketMs, when positive, buckets post-warmup query
	// latencies and admission decisions by arrival time, enabling
	// transient analysis (e.g. behavior across a failure window).
	TimelineBucketMs float64
	// Arena, if non-nil, supplies the run's reusable resources (event
	// heap, freelists, queues, recorders) so repeated runs stop
	// allocating. An Arena serves one run at a time.
	Arena *Arena
	// Obs, if non-nil, receives query/task lifecycle events in virtual
	// milliseconds. A nil tracer costs one pointer compare per event site
	// and keeps the run allocation-free (the nil-sink contract).
	Obs *obs.Tracer
	// Attribution, if non-nil, accumulates per-query deadline-miss
	// attribution (latency vs. SLO, straggler identity and decomposition)
	// for post-warmup queries.
	Attribution *obs.Attributor
}

// Failure is one server outage window.
type Failure struct {
	Server int
	Start  float64 // ms
	End    float64 // ms, > Start
}

// QueuingMode selects the task queuing location.
type QueuingMode int

// Queuing modes.
const (
	// CentralQueuing keeps all task queues at the query handler.
	CentralQueuing QueuingMode = iota
	// PerServerQueuing dispatches tasks to per-server queues first.
	PerServerQueuing
)

// ServerRecycler is implemented by query sources that want their
// placement slices back after the simulator is done with a query.
// workload.Generator implements it to reuse its Servers allocations.
type ServerRecycler interface {
	Recycle(servers []int)
}

func (c *Config) validate() error {
	if c.Servers < 1 {
		return fmt.Errorf("cluster: need >= 1 server, got %d", c.Servers)
	}
	switch len(c.ServiceTimes) {
	case 1, c.Servers:
	default:
		return fmt.Errorf("cluster: ServiceTimes must have 1 or %d entries, got %d", c.Servers, len(c.ServiceTimes))
	}
	for i, d := range c.ServiceTimes {
		if d == nil {
			return fmt.Errorf("cluster: nil service-time distribution at %d", i)
		}
	}
	if c.Generator == nil {
		return fmt.Errorf("cluster: generator is required")
	}
	if c.Classes == nil {
		return fmt.Errorf("cluster: class set is required")
	}
	if c.Deadliner == nil {
		return fmt.Errorf("cluster: deadliner is required")
	}
	if c.Queries < 1 {
		return fmt.Errorf("cluster: need >= 1 query, got %d", c.Queries)
	}
	if c.Warmup < 0 || c.Warmup >= c.Queries {
		return fmt.Errorf("cluster: warmup %d outside [0, %d)", c.Warmup, c.Queries)
	}
	for i, f := range c.Failures {
		if f.Server < 0 || f.Server >= c.Servers {
			return fmt.Errorf("cluster: failure %d targets server %d outside [0, %d)", i, f.Server, c.Servers)
		}
		if f.Start < 0 || f.End <= f.Start {
			return fmt.Errorf("cluster: failure %d window [%v, %v) invalid", i, f.Start, f.End)
		}
	}
	if c.TimelineBucketMs < 0 {
		return fmt.Errorf("cluster: timeline bucket %v negative", c.TimelineBucketMs)
	}
	return nil
}

// Result aggregates one run's measurements.
type Result struct {
	Spec      string
	Queries   int // generated by the source
	Injected  int // injected by the OnQueryDone hook
	Admitted  int
	Rejected  int
	Completed int // admitted queries that finished

	// Duration is the simulated time from t=0 to the last completion (ms).
	Duration float64
	// Utilization is total busy time / (Servers * Duration): the achieved
	// (accepted) load.
	Utilization float64
	// OfferedLoad is the expected demand of all generated queries
	// (admitted or not) relative to capacity.
	OfferedLoad float64
	// TaskMissRatio is the fraction of tasks dequeued after their queuing
	// deadline (always 0 for policies without deadlines).
	TaskMissRatio float64

	// Overall holds query latencies across all types; ByClass, ByFanout
	// and ByType break them down (post-warmup only).
	Overall  *metrics.LatencyRecorder
	ByClass  *metrics.Breakdown[int]
	ByFanout *metrics.Breakdown[int]
	ByType   *metrics.Breakdown[ClassFanout]
	// TaskWait records task pre-dequeuing times t_pr (post-warmup).
	TaskWait *metrics.LatencyRecorder
	// Timeline buckets post-warmup query latencies by arrival time
	// (bucket = arrival / TimelineBucketMs); nil unless enabled.
	Timeline *metrics.Breakdown[int]
	// TimelineAdmitted/TimelineRejected count admission decisions per
	// arrival bucket; nil unless the timeline is enabled.
	TimelineAdmitted map[int]int
	TimelineRejected map[int]int
}

// reset clears counters and recorders for reuse, keeping their capacity.
func (res *Result) reset() {
	res.Spec = ""
	res.Queries, res.Injected = 0, 0
	res.Admitted, res.Rejected, res.Completed = 0, 0, 0
	res.Duration, res.Utilization = 0, 0
	res.OfferedLoad, res.TaskMissRatio = 0, 0
	res.Overall.Reset()
	res.TaskWait.Reset()
	res.ByClass.Reset()
	res.ByFanout.Reset()
	res.ByType.Reset()
	if res.Timeline != nil {
		res.Timeline.Reset()
	}
	for k := range res.TimelineAdmitted {
		delete(res.TimelineAdmitted, k)
	}
	for k := range res.TimelineRejected {
		delete(res.TimelineRejected, k)
	}
}

// queryState tracks one in-flight query.
type queryState struct {
	query     workload.Query
	maxFinish float64 // latest task completion time so far
	// Straggler tracking for miss attribution: identity and time
	// decomposition of the task whose completion set maxFinish.
	stragWait float64 // straggler pre-dequeuing wait t_pr
	stragSvc  float64 // straggler post-queuing time t_po
	stragTask int32
	stragSrv  int32
	remaining int32
	counted   bool // include in statistics (past warmup)
	injected  bool // created by the OnQueryDone hook
	active    bool // slot occupancy marker (dense store)
}

// maxDenseGap bounds how far past the current dense range a query ID may
// land and still grow the dense store; larger jumps (arbitrary trace IDs)
// go to the overflow map so a sparse ID space cannot exhaust memory.
const maxDenseGap = 4096

// stateStore holds the in-flight query states. IDs are near-contiguous
// for every built-in source (the generator counts from zero; request
// workloads use req*m+idx), so states live in a dense slice indexed by
// ID — claiming and releasing a state is then index arithmetic with no
// map hashing and no per-query allocation. A released slot is zeroed so
// no stale query data survives into its next claimant.
type stateStore struct {
	dense    []queryState
	overflow map[int64]*queryState
	free     []*queryState
}

// claim reserves the state slot for id; ok is false if id is in flight.
// Claiming may grow the dense slice: callers must not hold a *queryState
// from an earlier claim across a claim call.
func (s *stateStore) claim(id int64) (st *queryState, ok bool) {
	if id >= 0 && id < int64(len(s.dense))+maxDenseGap {
		for int64(len(s.dense)) <= id {
			s.dense = append(s.dense, queryState{})
		}
		st = &s.dense[id]
		if st.active {
			return nil, false
		}
		if s.overflow != nil {
			if _, dup := s.overflow[id]; dup {
				return nil, false
			}
		}
		st.active = true
		return st, true
	}
	if s.overflow == nil {
		s.overflow = make(map[int64]*queryState)
	}
	if _, dup := s.overflow[id]; dup {
		return nil, false
	}
	if n := len(s.free); n > 0 {
		st = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		st = new(queryState)
	}
	st.active = true
	s.overflow[id] = st
	return st, true
}

// get returns the in-flight state for id, or nil.
func (s *stateStore) get(id int64) *queryState {
	if id >= 0 && id < int64(len(s.dense)) {
		if st := &s.dense[id]; st.active {
			return st
		}
	}
	return s.overflow[id]
}

// release zeroes id's state and returns its slot for reuse.
func (s *stateStore) release(id int64) {
	if id >= 0 && id < int64(len(s.dense)) && s.dense[id].active {
		s.dense[id] = queryState{}
		return
	}
	if st, ok := s.overflow[id]; ok {
		delete(s.overflow, id)
		*st = queryState{}
		s.free = append(s.free, st)
	}
}

// reset clears any states left over from an aborted run, keeping capacity.
func (s *stateStore) reset() {
	for i := range s.dense {
		if s.dense[i].active {
			s.dense[i] = queryState{}
		}
	}
	for id, st := range s.overflow {
		delete(s.overflow, id)
		*st = queryState{}
		s.free = append(s.free, st)
	}
}

// Arena owns the reusable resources of a simulation run: the event
// engine, the task and query-box freelists, the query-state store, the
// per-server queue set and occupancy slices, and a spare Result. Reusing
// one arena across runs (Config.Arena) makes steady-state simulation
// effectively allocation-free; a nil Config.Arena gets a private arena,
// reproducing the old allocate-per-run behavior. An arena serves one run
// at a time and is not safe for concurrent use.
type Arena struct {
	engine    *sim.Engine
	tasks     policy.TaskPool
	states    stateStore
	queues    []policy.Queue
	queueKind policy.Kind
	qboxes    []*workload.Query
	busy      []bool
	paused    []bool
	busyAcc   []float64
	spare     *Result
}

// NewArena returns an empty arena. The zero value is also usable.
func NewArena() *Arena { return &Arena{} }

// Release hands a Result obtained from Run back for reuse by the arena's
// next run. The caller must not touch res afterwards.
func (a *Arena) Release(res *Result) {
	if res != nil {
		a.spare = res
	}
}

// getQueryBox returns a pooled query box for an arrival event payload.
func (a *Arena) getQueryBox() *workload.Query {
	if n := len(a.qboxes); n > 0 {
		b := a.qboxes[n-1]
		a.qboxes[n-1] = nil
		a.qboxes = a.qboxes[:n-1]
		return b
	}
	return new(workload.Query)
}

// putQueryBox zeroes b and returns it to the pool.
func (a *Arena) putQueryBox(b *workload.Query) {
	*b = workload.Query{}
	a.qboxes = append(a.qboxes, b)
}

// resetBools returns s resized to n with all elements false, reusing its
// backing array when possible.
func resetBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// resetFloats returns s resized to n with all elements zero, reusing its
// backing array when possible.
func resetFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// runner executes one simulation.
type runner struct {
	cfg      Config
	arena    *Arena
	engine   *sim.Engine
	rng      *rand.Rand
	queues   []policy.Queue
	busy     []bool
	paused   []bool
	busyAcc  []float64
	res      *Result
	recycler ServerRecycler
	obs      *obs.Tracer     // nil when tracing is off
	attrib   *obs.Attributor // nil when attribution is off
	// Event handlers bound once per run: binding a method value
	// allocates, so the hot path must reuse these fields.
	arrivalH  sim.Handler
	enqueueH  sim.Handler
	completeH sim.Handler
	missed    int
	tasks     int
	err       error // first internal error; aborts the run
}

// Run executes the configured simulation to completion and returns its
// measurements.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	a := cfg.Arena
	if a == nil {
		a = NewArena()
	}
	if a.engine == nil {
		a.engine = sim.NewEngine()
	}
	a.engine.Reset()
	a.states.reset()

	if a.queueKind != cfg.Spec.Queue {
		a.queues = a.queues[:0]
		a.queueKind = cfg.Spec.Queue
	}
	for len(a.queues) < cfg.Servers {
		q, err := policy.New(cfg.Spec.Queue)
		if err != nil {
			return nil, fmt.Errorf("cluster: building queue: %w", err)
		}
		a.queues = append(a.queues, q)
	}
	queues := a.queues[:cfg.Servers]
	for _, q := range queues {
		q.Reset()
	}
	a.busy = resetBools(a.busy, cfg.Servers)
	a.paused = resetBools(a.paused, cfg.Servers)
	a.busyAcc = resetFloats(a.busyAcc, cfg.Servers)

	res := a.spare
	a.spare = nil
	if res == nil {
		res = &Result{
			Overall:  metrics.NewLatencyRecorder(cfg.Queries - cfg.Warmup),
			ByClass:  metrics.NewBreakdown[int](1024),
			ByFanout: metrics.NewBreakdown[int](1024),
			ByType:   metrics.NewBreakdown[ClassFanout](1024),
			TaskWait: metrics.NewLatencyRecorder(4096),
		}
	} else {
		res.reset()
	}
	res.Spec = cfg.Spec.Name
	if cfg.TimelineBucketMs > 0 {
		if res.Timeline == nil {
			res.Timeline = metrics.NewBreakdown[int](256)
		}
		if res.TimelineAdmitted == nil {
			res.TimelineAdmitted = make(map[int]int)
		}
		if res.TimelineRejected == nil {
			res.TimelineRejected = make(map[int]int)
		}
	} else {
		res.Timeline = nil
		res.TimelineAdmitted, res.TimelineRejected = nil, nil
	}

	r := &runner{
		cfg:     cfg,
		arena:   a,
		engine:  a.engine,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		queues:  queues,
		busy:    a.busy,
		paused:  a.paused,
		busyAcc: a.busyAcc,
		res:     res,
		obs:     cfg.Obs,
		attrib:  cfg.Attribution,
	}
	r.recycler, _ = cfg.Generator.(ServerRecycler)
	r.arrivalH = r.onArrivalEvent
	r.enqueueH = r.onEnqueueEvent
	r.completeH = r.onCompleteEvent
	for _, f := range cfg.Failures {
		f := f
		if err := r.engine.Schedule(f.Start, func() { r.paused[f.Server] = true }); err != nil {
			return nil, err
		}
		if err := r.engine.Schedule(f.End, func() { r.resume(f.Server) }); err != nil {
			return nil, err
		}
	}
	if err := r.scheduleNextArrival(); err != nil {
		return nil, err
	}
	r.engine.Run()
	if r.err != nil {
		return nil, r.err
	}
	r.finalize()
	return r.res, nil
}

// fail records the first internal error and stops the engine.
func (r *runner) fail(err error) {
	if r.err == nil {
		r.err = err
		r.engine.Stop()
	}
}

// serviceDist returns the service-time distribution for server s.
func (r *runner) serviceDist(s int) dist.Distribution {
	if len(r.cfg.ServiceTimes) == 1 {
		return r.cfg.ServiceTimes[0]
	}
	return r.cfg.ServiceTimes[s]
}

// scheduleNextArrival draws the next query from the generator and
// schedules its arrival event; each arrival schedules its successor until
// Queries have been generated or the source ends.
func (r *runner) scheduleNextArrival() error {
	if r.res.Queries >= r.cfg.Queries {
		return nil
	}
	q, ok := r.cfg.Generator.Next()
	if !ok {
		return nil
	}
	r.res.Queries++
	box := r.arena.getQueryBox()
	*box = q
	return r.engine.ScheduleCall(q.Arrival, r.arrivalH, box, 0)
}

// onArrivalEvent unboxes an arrival event's query (val != 0 marks hook
// injection) and recycles the box before processing.
func (r *runner) onArrivalEvent(arg any, val float64) {
	box := arg.(*workload.Query)
	q := *box
	r.arena.putQueryBox(box)
	r.onArrival(q, val != 0)
}

// onEnqueueEvent delivers a dispatched task to its server's queue.
func (r *runner) onEnqueueEvent(arg any, _ float64) {
	t := arg.(*policy.Task)
	r.enqueue(t.Server, t)
}

// onCompleteEvent finishes a task's service; val carries its occupancy.
func (r *runner) onCompleteEvent(arg any, val float64) {
	t := arg.(*policy.Task)
	r.onComplete(t.Server, t, val)
}

// recycle returns a query's placement slice to its source. Injected
// queries are skipped: their Servers belong to the completion hook.
func (r *runner) recycle(q workload.Query, injected bool) {
	if r.recycler == nil || injected || q.Servers == nil {
		return
	}
	r.recycler.Recycle(q.Servers)
}

// onArrival processes one query arrival: admission, deadline computation,
// and task dispatch. Injected queries (request chaining) skip admission.
func (r *runner) onArrival(q workload.Query, injected bool) {
	if !injected {
		if err := r.scheduleNextArrival(); err != nil {
			r.fail(err)
			return
		}
	}
	// Offered demand bookkeeping uses the expected service time so that
	// rejected queries (whose tasks are never sampled) count too.
	for _, s := range q.Servers {
		r.res.OfferedLoad += r.serviceDist(s).Mean()
	}
	r.obs.Query(obs.KindArrival, q.Arrival, q.ID, int32(q.Class), float64(q.Fanout))

	if !injected && r.cfg.Admission != nil && !r.cfg.Admission.Admit(q.Arrival) {
		r.res.Rejected++
		if r.res.TimelineRejected != nil {
			r.res.TimelineRejected[r.timelineBucket(q.Arrival)]++
		}
		r.obs.Query(obs.KindReject, q.Arrival, q.ID, int32(q.Class), 0)
		r.recycle(q, injected)
		return
	}
	r.res.Admitted++
	if r.res.TimelineAdmitted != nil && !injected {
		r.res.TimelineAdmitted[r.timelineBucket(q.Arrival)]++
	}

	deadline, err := r.deadlineFor(q)
	if err != nil {
		r.fail(fmt.Errorf("cluster: deadline for query %d: %w", q.ID, err))
		return
	}
	r.obs.Query(obs.KindDeadline, q.Arrival, q.ID, int32(q.Class), deadline)
	st, ok := r.arena.states.claim(q.ID)
	if !ok {
		r.fail(fmt.Errorf("cluster: duplicate query ID %d", q.ID))
		return
	}
	st.query = q
	st.stragTask, st.stragSrv = -1, -1
	st.remaining = int32(q.Fanout)
	st.counted = q.ID >= int64(r.cfg.Warmup)
	st.injected = injected

	for i, s := range q.Servers {
		svc := 0.0
		if q.Services != nil {
			svc = q.Services[i]
		} else {
			svc = r.serviceDist(s).Sample(r.rng)
		}
		t := r.arena.tasks.Get()
		t.QueryID = q.ID
		t.Index = i
		t.Server = s
		t.Class = q.Class
		t.Arrival = q.Arrival
		t.Deadline = deadline
		t.Enqueued = q.Arrival
		t.Service = svc
		if r.cfg.Queuing == PerServerQueuing && r.cfg.DispatchDelay != nil {
			// The task travels to the server before queuing; its wait
			// (t_pr) includes the dispatch leg.
			at := q.Arrival + r.cfg.DispatchDelay.Sample(r.rng)
			if err := r.engine.ScheduleCall(at, r.enqueueH, t, 0); err != nil {
				r.fail(err)
				return
			}
			continue
		}
		r.enqueue(s, t)
	}
}

// enqueue places a task at its server, starting service if idle and up.
func (r *runner) enqueue(s int, t *policy.Task) {
	if r.obs != nil {
		r.obs.TaskEvent(obs.KindEnqueue, r.engine.Now(), t.QueryID, int32(t.Index), int32(s), int32(t.Class), 0)
	}
	if r.busy[s] || r.paused[s] {
		r.queues[s].Push(t)
		if r.obs != nil {
			r.obs.QueueDepth(r.engine.Now(), int32(s), r.queues[s].Len())
		}
	} else {
		r.startService(s, t)
	}
}

// popNext dequeues the next task for server s, emitting the depth sample.
func (r *runner) popNext(s int) *policy.Task {
	next := r.queues[s].Pop()
	if next != nil && r.obs != nil {
		r.obs.QueueDepth(r.engine.Now(), int32(s), r.queues[s].Len())
	}
	return next
}

// resume ends a server's outage and restarts its queue.
func (r *runner) resume(s int) {
	r.paused[s] = false
	if !r.busy[s] {
		if next := r.popNext(s); next != nil {
			r.startService(s, next)
		}
	}
}

// timelineBucket maps an arrival time onto its timeline bucket.
func (r *runner) timelineBucket(arrival float64) int {
	return int(arrival / r.cfg.TimelineBucketMs)
}

// deadlineFor computes the task queuing deadline for a query, honoring
// per-query budget overrides (the request-level extension).
func (r *runner) deadlineFor(q workload.Query) (float64, error) {
	if q.HasBudget {
		return q.Arrival + q.Budget, nil
	}
	if r.cfg.HeterogeneousDeadlines {
		return r.cfg.Deadliner.DeadlineServers(q.Arrival, q.Class, q.Servers)
	}
	return r.cfg.Deadliner.Deadline(q.Arrival, q.Class, q.Fanout)
}

// startService begins serving a task on an idle server.
func (r *runner) startService(s int, t *policy.Task) {
	now := r.engine.Now()
	r.busy[s] = true
	r.tasks++
	t.Dequeued = now
	r.obs.TaskEvent(obs.KindDispatch, now, t.QueryID, int32(t.Index), int32(s), int32(t.Class), now-t.Enqueued)

	missed := now > t.Deadline // +Inf deadlines never miss
	if missed {
		r.missed++
	}
	if r.cfg.Admission != nil {
		r.cfg.Admission.ObserveTask(missed, now)
	}

	st := r.arena.states.get(t.QueryID)
	if st != nil && st.counted {
		if err := r.res.TaskWait.Observe(now - t.Enqueued); err != nil {
			r.fail(err)
			return
		}
	}

	// Under central queuing the dequeued task still has to travel to the
	// server; the dispatch leg is part of its post-queuing time and of
	// the server occupancy (the server cannot accept another task until
	// this one completes and the idle signal returns).
	occupancy := t.Service
	if r.cfg.Queuing == CentralQueuing && r.cfg.DispatchDelay != nil {
		occupancy += r.cfg.DispatchDelay.Sample(r.rng)
	}
	if err := r.engine.ScheduleCallAfter(occupancy, r.completeH, t, occupancy); err != nil {
		r.fail(err)
	}
}

// onComplete handles a task finishing service.
func (r *runner) onComplete(s int, t *policy.Task, svc float64) {
	now := r.engine.Now()
	r.busyAcc[s] += svc

	// Online updating: the post-queuing time observed by the handler when
	// merging the task result. In the simulator that is the service time
	// (dispatch and merge are instantaneous).
	if r.cfg.Estimator != nil {
		if err := r.cfg.Estimator.Observe(s, svc); err != nil {
			r.fail(fmt.Errorf("cluster: online update: %w", err))
			return
		}
	}

	st := r.arena.states.get(t.QueryID)
	if st == nil {
		r.fail(fmt.Errorf("cluster: completion for unknown query %d", t.QueryID))
		return
	}
	r.obs.TaskEvent(obs.KindServiceEnd, now, t.QueryID, int32(t.Index), int32(s), int32(t.Class), now-t.Dequeued)
	if now >= st.maxFinish {
		// This task is the straggler so far: its completion sets the
		// query latency, so record its identity and time split for miss
		// attribution (>= so simultaneous finishes keep the later task).
		st.maxFinish = now
		st.stragTask = int32(t.Index)
		st.stragSrv = int32(s)
		st.stragWait = t.Dequeued - t.Enqueued
		st.stragSvc = now - t.Dequeued
	}
	st.remaining--
	if st.remaining == 0 {
		r.onQueryDone(t.QueryID, st)
	}
	r.arena.tasks.Put(t)
	if r.err != nil {
		return
	}

	// Work conservation: immediately serve the next queued task, unless
	// the server is inside a failure window.
	r.busy[s] = false
	if r.paused[s] {
		return
	}
	if next := r.popNext(s); next != nil {
		r.startService(s, next)
	}
}

// onQueryDone records a finished query and lets the completion hook inject
// follow-up queries (request chaining). st is released (and invalid) once
// this returns.
func (r *runner) onQueryDone(id int64, st *queryState) {
	r.res.Completed++
	now := r.engine.Now()
	q := st.query
	injected := st.injected
	counted := st.counted
	latency := st.maxFinish - q.Arrival
	if r.attrib != nil && counted {
		class, err := r.cfg.Classes.Class(q.Class)
		if err != nil {
			r.fail(fmt.Errorf("cluster: attributing query %d: %w", id, err))
			return
		}
		r.attrib.Observe(obs.QueryOutcome{
			QueryID:            id,
			Class:              q.Class,
			Fanout:             q.Fanout,
			LatencyMs:          latency,
			SLOMs:              class.SLOMs,
			StragglerTask:      st.stragTask,
			StragglerServer:    st.stragSrv,
			StragglerWaitMs:    st.stragWait,
			StragglerServiceMs: st.stragSvc,
		})
	}
	r.arena.states.release(id)
	r.obs.Query(obs.KindQueryDone, now, id, int32(q.Class), latency)
	if counted {
		cls, fanout := q.Class, q.Fanout
		if err := r.res.Overall.Observe(latency); err != nil {
			r.fail(err)
			return
		}
		if err := r.res.ByClass.Observe(cls, latency); err != nil {
			r.fail(err)
			return
		}
		if err := r.res.ByFanout.Observe(fanout, latency); err != nil {
			r.fail(err)
			return
		}
		if err := r.res.ByType.Observe(ClassFanout{Class: cls, Fanout: fanout}, latency); err != nil {
			r.fail(err)
			return
		}
		if r.res.Timeline != nil {
			if err := r.res.Timeline.Observe(r.timelineBucket(q.Arrival), latency); err != nil {
				r.fail(err)
				return
			}
		}
	}
	if r.cfg.OnQueryDone != nil {
		for _, next := range r.cfg.OnQueryDone(q, latency, now) {
			if next.Arrival < now {
				next.Arrival = now
			}
			r.res.Injected++
			box := r.arena.getQueryBox()
			*box = next
			if err := r.engine.ScheduleCall(next.Arrival, r.arrivalH, box, 1); err != nil {
				r.fail(err)
				return
			}
		}
	}
	r.recycle(q, injected)
}

// finalize computes the run-level aggregates.
func (r *runner) finalize() {
	r.res.Duration = r.engine.Now()
	if r.res.Duration > 0 {
		var busy float64
		for _, b := range r.busyAcc {
			busy += b
		}
		capacity := r.res.Duration * float64(r.cfg.Servers)
		r.res.Utilization = busy / capacity
		r.res.OfferedLoad /= capacity
	}
	if r.tasks > 0 {
		r.res.TaskMissRatio = float64(r.missed) / float64(r.tasks)
	}
}

// MeetsSLOs reports whether every query type (class, fanout) with at least
// minSamples post-warmup samples met its class's tail-latency SLO — the
// paper's per-type compliance criterion. It returns the worst margin
// (measured tail / SLO) across checked types; a margin <= 1 passes.
func (res *Result) MeetsSLOs(classes *workload.ClassSet, minSamples int) (bool, float64, error) {
	if classes == nil {
		return false, 0, fmt.Errorf("cluster: class set required")
	}
	if minSamples < 1 {
		minSamples = 1
	}
	ok := true
	worst := 0.0
	var firstErr error
	res.ByType.Each(func(key ClassFanout, rec *metrics.LatencyRecorder) {
		if rec.Count() < minSamples || firstErr != nil {
			return
		}
		cls, err := classes.Class(key.Class)
		if err != nil {
			firstErr = err
			return
		}
		tail, err := rec.Quantile(cls.Percentile)
		if err != nil {
			firstErr = err
			return
		}
		margin := tail / cls.SLOMs
		if margin > worst {
			worst = margin
		}
		if tail > cls.SLOMs {
			ok = false
		}
	})
	if firstErr != nil {
		return false, 0, firstErr
	}
	if math.IsNaN(worst) {
		return false, 0, fmt.Errorf("cluster: NaN SLO margin")
	}
	return ok, worst, nil
}
