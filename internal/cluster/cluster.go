// Package cluster simulates the paper's query processing model (Fig. 2):
// a query arrival process feeding a query handler that spawns kf tasks per
// query, dispatches them to task-server queues managed by a pluggable
// queuing policy, and merges task results; the slowest task determines the
// query response time. It is the engine behind every simulation experiment
// in Section IV.
//
// The simulator is allocation-free in steady state: tasks and query
// states come from per-run freelists owned by an Arena, events carry
// their payloads through pre-bound sim.Handlers instead of closures, and
// an Arena reused across runs also recycles the event heap, queues, and
// result recorders. See DESIGN.md §9 for the pooling invariants.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"tailguard/internal/control"
	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/fault"
	"tailguard/internal/metrics"
	"tailguard/internal/obs"
	"tailguard/internal/policy"
	"tailguard/internal/sim"
	"tailguard/internal/workload"
)

// ClassFanout identifies one "query type" in the paper's sense: a service
// class and fanout pair. SLO compliance is verified per type.
type ClassFanout struct {
	Class  int
	Fanout int
}

// Config configures one simulation run.
type Config struct {
	// Servers is the cluster size N.
	Servers int
	// Spec selects the queuing policy (queue discipline + deadline rule).
	Spec core.Spec
	// ServiceTimes holds per-server task service-time distributions:
	// either one entry (homogeneous, used by all servers) or exactly
	// Servers entries.
	ServiceTimes []dist.Distribution
	// Generator produces the query stream (arrivals, classes, fanouts,
	// placements). Finite sources (trace replays) may end before Queries
	// queries; the run then simply drains. Sources implementing
	// ServerRecycler get their placement slices back once a query's
	// statistics are recorded.
	Generator workload.QuerySource
	// Classes defines the service classes and their SLOs.
	Classes *workload.ClassSet
	// Deadliner computes task queuing deadlines for the chosen Spec.
	Deadliner *core.Deadliner
	// Queries is the total number of queries to generate.
	Queries int
	// Warmup queries are simulated but excluded from statistics.
	Warmup int
	// Seed drives service-time sampling.
	Seed int64
	// Admission, if non-nil, applies query admission control.
	Admission *core.AdmissionController
	// Estimator, if non-nil, receives online post-queuing-time
	// observations (the paper's online updating process). Must be an
	// updatable (non-static) estimator.
	Estimator *core.TailEstimator
	// HeterogeneousDeadlines computes deadlines from each query's actual
	// server set (Eqn. 1 product form) instead of the homogeneous fanout
	// shortcut. Needed when ServiceTimes differ across servers.
	HeterogeneousDeadlines bool
	// OnQueryDone, if non-nil, is invoked when a query completes (warmup
	// or not) and may return follow-up queries to inject with arrival set
	// to the completion time. The request-level extension chains a
	// request's sequential queries through it. Injected queries bypass
	// admission control (the request was already admitted). The hook must
	// not retain q.Servers past its return: the slice may be recycled.
	OnQueryDone func(q workload.Query, latencyMs, now float64) []workload.Query
	// Queuing selects where task queuing takes place (the paper's
	// footnote 3): centrally at the query handler (default) or at the
	// task servers. The difference only matters with a DispatchDelay.
	Queuing QueuingMode
	// DispatchDelay, if non-nil, models the per-task dispatch network
	// delay. Under central queuing it is incurred after dequeue (part of
	// the post-queuing time t_po and of server occupancy); under
	// per-server queuing it is incurred before enqueue (part of the
	// pre-dequeuing time t_pr).
	DispatchDelay dist.Distribution
	// Failures injects server outages: during [Start, End) the server
	// finishes its in-flight task but starts no new ones; its queue keeps
	// accumulating. This models the paper's "hardware/software failures"
	// motivation for admission control.
	Failures []Failure
	// Faults, if non-nil, injects the compiled fault plan (service
	// slowdowns and stalls stretch occupancy, crashes lose the queue and
	// the in-flight task, transport faults delay or drop the dispatch
	// leg). The engine must be compiled for exactly Servers servers. A
	// nil engine leaves the run bit-identical to a fault-free build.
	Faults *fault.Engine
	// Resilience selects the mitigations applied against faults (hedging,
	// lost-task retries, degraded admission). The zero value disables
	// them all and preserves bit-identical unmitigated behavior.
	Resilience fault.Resilience
	// TimelineBucketMs, when positive, buckets post-warmup query
	// latencies and admission decisions by arrival time, enabling
	// transient analysis (e.g. behavior across a failure window).
	TimelineBucketMs float64
	// Shards, when > 1, runs the simulation on the sharded parallel core:
	// servers are striped across Shards discrete-event shards that advance
	// under a conservative time-window protocol, producing a Result
	// bit-identical to the sequential engine (see DESIGN.md §13). The
	// sharded core supports the data path only — admission control, online
	// estimation, fault resilience, tracing, completion hooks and
	// central-queuing dispatch delays are rejected with clear errors
	// (validateSharded). 0 and 1 select the sequential engine.
	Shards int
	// ShardWindowMs overrides the conservative window width (ms) of the
	// sharded core; 0 picks a default. Any positive width yields the same
	// Result — the width trades barrier frequency against delivery batch
	// size, nothing else.
	ShardWindowMs float64
	// Arena, if non-nil, supplies the run's reusable resources (event
	// heap, freelists, queues, recorders) so repeated runs stop
	// allocating. An Arena serves one run at a time.
	Arena *Arena
	// Control, if non-nil, attaches the adaptive control plane
	// (internal/control). The runner ticks it every Control TickMs on the
	// simulated clock, feeding back the windowed query miss ratio; the
	// controller's loops actuate the admission threshold scale (when
	// Admission is set), the per-class token buckets (arrivals they shed
	// count as Throttled), and — when a credit gate is attached — bound
	// the number of in-flight generator queries, deferring the arrival
	// chain while credits are exhausted (backpressure on the source).
	// Autoscaling acts through the controller's ActiveSet, which the
	// scenario wires into the generator's placement; the runner only
	// drives the ticks. Sequential engine only, and mutually exclusive
	// with Resilience.DegradedAdmission (both actuate the admission
	// threshold scale).
	Control *control.Controller
	// Obs, if non-nil, receives query/task lifecycle events in virtual
	// milliseconds. A nil tracer costs one pointer compare per event site
	// and keeps the run allocation-free (the nil-sink contract).
	Obs *obs.Tracer
	// Attribution, if non-nil, accumulates per-query deadline-miss
	// attribution (latency vs. SLO, straggler identity and decomposition)
	// for post-warmup queries.
	Attribution *obs.Attributor
}

// Failure is one server outage window.
type Failure struct {
	Server int
	Start  float64 // ms
	End    float64 // ms, > Start
}

// QueuingMode selects the task queuing location.
type QueuingMode int

// Queuing modes.
const (
	// CentralQueuing keeps all task queues at the query handler.
	CentralQueuing QueuingMode = iota
	// PerServerQueuing dispatches tasks to per-server queues first.
	PerServerQueuing
)

// ServerRecycler is implemented by query sources that want their
// placement slices back after the simulator is done with a query.
// workload.Generator implements it to reuse its Servers allocations.
type ServerRecycler interface {
	Recycle(servers []int)
}

// arrivalRebaser is implemented by query sources whose arrival clock can
// jump forward when the control plane's credit gate unblocks — the time
// the source spent blocked must not be replayed as a burst of stale
// arrivals. workload.Generator implements it via RebaseTo.
type arrivalRebaser interface {
	RebaseTo(t float64)
}

func (c *Config) validate() error {
	if c.Servers < 1 {
		return fmt.Errorf("cluster: need >= 1 server, got %d", c.Servers)
	}
	switch len(c.ServiceTimes) {
	case 1, c.Servers:
	default:
		return fmt.Errorf("cluster: ServiceTimes must have 1 or %d entries, got %d", c.Servers, len(c.ServiceTimes))
	}
	for i, d := range c.ServiceTimes {
		if d == nil {
			return fmt.Errorf("cluster: nil service-time distribution at %d", i)
		}
	}
	if c.Generator == nil {
		return fmt.Errorf("cluster: generator is required")
	}
	if c.Classes == nil {
		return fmt.Errorf("cluster: class set is required")
	}
	if c.Deadliner == nil {
		return fmt.Errorf("cluster: deadliner is required")
	}
	if c.Queries < 1 {
		return fmt.Errorf("cluster: need >= 1 query, got %d", c.Queries)
	}
	if c.Warmup < 0 || c.Warmup >= c.Queries {
		return fmt.Errorf("cluster: warmup %d outside [0, %d)", c.Warmup, c.Queries)
	}
	for i, f := range c.Failures {
		if f.Server < 0 || f.Server >= c.Servers {
			return fmt.Errorf("cluster: failure %d targets server %d outside [0, %d)", i, f.Server, c.Servers)
		}
		if f.Start < 0 || f.End <= f.Start {
			return fmt.Errorf("cluster: failure %d window [%v, %v) invalid", i, f.Start, f.End)
		}
	}
	if c.TimelineBucketMs < 0 {
		return fmt.Errorf("cluster: timeline bucket %v negative", c.TimelineBucketMs)
	}
	if c.Faults != nil && c.Faults.Servers() != c.Servers {
		return fmt.Errorf("cluster: fault engine compiled for %d servers, cluster has %d", c.Faults.Servers(), c.Servers)
	}
	if err := c.Resilience.Validate(); err != nil {
		return err
	}
	if c.Resilience.DegradedAdmission && c.Admission == nil {
		return fmt.Errorf("cluster: degraded admission requires an admission controller")
	}
	if c.Control != nil && c.Resilience.DegradedAdmission {
		return fmt.Errorf("cluster: the control plane and degraded admission both actuate the admission threshold scale; enable one")
	}
	if c.Shards < 0 {
		return fmt.Errorf("cluster: shards %d negative", c.Shards)
	}
	if c.Shards > c.Servers {
		return fmt.Errorf("cluster: %d shards exceed %d servers", c.Shards, c.Servers)
	}
	if c.ShardWindowMs < 0 {
		return fmt.Errorf("cluster: shard window %v negative", c.ShardWindowMs)
	}
	if c.Shards > 1 {
		if err := c.validateSharded(); err != nil {
			return err
		}
	}
	return nil
}

// validateSharded rejects features the sharded core does not carry. Each
// restriction exists to preserve bit-identity with the sequential engine:
// these features either consume the cluster rng outside the arrival-order
// prefix the pump replays (central-queuing dispatch delay, hedging,
// retries) or observe events in global completion order on the hot path
// (admission feedback, online estimation, tracing, completion hooks),
// which no per-shard schedule can reproduce without serializing.
func (c *Config) validateSharded() error {
	if c.Admission != nil {
		return fmt.Errorf("cluster: sharded runs do not support admission control (its feedback loop observes tasks in global dequeue order)")
	}
	if c.Estimator != nil {
		return fmt.Errorf("cluster: sharded runs do not support online estimation (it observes completions in global order)")
	}
	if c.OnQueryDone != nil {
		return fmt.Errorf("cluster: sharded runs do not support completion hooks (injected arrivals would re-enter mid-window)")
	}
	if c.Resilience != (fault.Resilience{}) {
		return fmt.Errorf("cluster: sharded runs do not support fault resilience (hedges and retries sample the rng at completion time)")
	}
	if c.Obs != nil {
		return fmt.Errorf("cluster: sharded runs do not support lifecycle tracing; attribution is supported")
	}
	if c.Control != nil {
		return fmt.Errorf("cluster: sharded runs do not support the adaptive control plane (its feedback loop observes completions in global order)")
	}
	if c.DispatchDelay != nil && c.Queuing != PerServerQueuing {
		return fmt.Errorf("cluster: sharded runs support a dispatch delay only under per-server queuing (central queuing samples it at dequeue time)")
	}
	return nil
}

// Result aggregates one run's measurements.
type Result struct {
	Spec      string
	Queries   int // generated by the source
	Injected  int // injected by the OnQueryDone hook
	Admitted  int
	Rejected  int
	Completed int // admitted queries that finished
	// Failed counts admitted queries that could not finish because a
	// task copy was lost to a fault and neither a hedge sibling nor the
	// retry budget could absorb the loss.
	Failed int
	// LostTasks counts task copies destroyed by faults (crashes,
	// transport drops); Retries counts re-dispatches of lost copies.
	LostTasks int
	Retries   int
	// HedgesIssued counts duplicate tasks spawned by the hedging policy;
	// HedgeWins counts races the duplicate won.
	HedgesIssued int
	HedgeWins    int
	// CreditDeferred counts generator arrivals the control plane's credit
	// gate held back (backpressure applied to the source); Throttled
	// counts arrivals its per-class token buckets shed; ControlTicks
	// counts controller decisions applied during the run.
	CreditDeferred int
	Throttled      int
	ControlTicks   int

	// Duration is the simulated time from t=0 to the last completion (ms).
	Duration float64
	// Utilization is total busy time / (Servers * Duration): the achieved
	// (accepted) load.
	Utilization float64
	// OfferedLoad is the expected demand of all generated queries
	// (admitted or not) relative to capacity.
	OfferedLoad float64
	// TaskMissRatio is the fraction of tasks dequeued after their queuing
	// deadline (always 0 for policies without deadlines).
	TaskMissRatio float64

	// Overall holds query latencies across all types; ByClass, ByFanout
	// and ByType break them down (post-warmup only).
	Overall  *metrics.LatencyRecorder
	ByClass  *metrics.Breakdown[int]
	ByFanout *metrics.Breakdown[int]
	ByType   *metrics.Breakdown[ClassFanout]
	// TaskWait records task pre-dequeuing times t_pr (post-warmup).
	TaskWait *metrics.LatencyRecorder
	// Timeline buckets post-warmup query latencies by arrival time
	// (bucket = arrival / TimelineBucketMs); nil unless enabled.
	Timeline *metrics.Breakdown[int]
	// TimelineAdmitted/TimelineRejected count admission decisions per
	// arrival bucket; nil unless the timeline is enabled.
	TimelineAdmitted map[int]int
	TimelineRejected map[int]int
}

// reset clears counters and recorders for reuse, keeping their capacity.
func (res *Result) reset() {
	res.Spec = ""
	res.Queries, res.Injected = 0, 0
	res.Admitted, res.Rejected, res.Completed = 0, 0, 0
	res.Failed, res.LostTasks, res.Retries = 0, 0, 0
	res.HedgesIssued, res.HedgeWins = 0, 0
	res.CreditDeferred, res.Throttled, res.ControlTicks = 0, 0, 0
	res.Duration, res.Utilization = 0, 0
	res.OfferedLoad, res.TaskMissRatio = 0, 0
	res.Overall.Reset()
	res.TaskWait.Reset()
	res.ByClass.Reset()
	res.ByFanout.Reset()
	res.ByType.Reset()
	if res.Timeline != nil {
		res.Timeline.Reset()
	}
	for k := range res.TimelineAdmitted {
		delete(res.TimelineAdmitted, k)
	}
	for k := range res.TimelineRejected {
		delete(res.TimelineRejected, k)
	}
}

// queryState tracks one in-flight query.
type queryState struct {
	query     workload.Query
	maxFinish float64 // latest task completion time so far
	// Straggler tracking for miss attribution: identity and time
	// decomposition of the task whose completion set maxFinish.
	stragWait float64 // straggler pre-dequeuing wait t_pr
	stragSvc  float64 // straggler post-queuing time t_po
	stragTask int32
	stragSrv  int32
	remaining int32
	retries   int32 // lost-task retries spent (fault resilience)
	lostSrv   int32 // server of the first unabsorbed task loss, or -1
	counted   bool  // include in statistics (past warmup)
	injected  bool  // created by the OnQueryDone hook
	failed    bool  // a task copy was lost and not absorbed
	active    bool  // slot occupancy marker (dense store)
}

// maxDenseGap bounds how far past the current ring window a query ID may
// land and still grow the ring; larger jumps (arbitrary trace IDs) go to
// the overflow map so a sparse ID space cannot exhaust memory.
const maxDenseGap = 4096

// minRingCap is the ring's initial power-of-two capacity.
const minRingCap = 1024

// stateStore holds the in-flight query states. IDs are near-contiguous
// and (near-)monotone for every built-in source (the generator counts
// from zero; request workloads use req*m+idx), so states live in a
// sliding ring window [base, base+cap): claiming and releasing a state
// is index arithmetic with no map hashing and no per-query allocation,
// and the window advances as the lowest in-flight IDs release. Memory is
// therefore bounded by the number of queries simultaneously in flight,
// not by the run length — a 10M-query run with a few thousand in flight
// keeps a few-thousand-slot ring, where a zero-based dense slice would
// grow to 10M slots. A released slot is zeroed so no stale query data
// survives into its next claimant; IDs outside the window (sparse trace
// IDs, stragglers below base) use the overflow map exactly as before.
type stateStore struct {
	ring     []queryState // power-of-two capacity (or empty)
	start    int          // ring index of base
	base     int64        // lowest ID the ring can currently hold
	used     int64        // one past the highest ID claimed in the window
	overflow map[int64]*queryState
	free     []*queryState
}

// slot maps an in-window ID to its ring index.
func (s *stateStore) slot(id int64) int {
	return (s.start + int(id-s.base)) & (len(s.ring) - 1)
}

// grow rehomes the window into a ring that can hold offset off from base.
func (s *stateStore) grow(off int64) {
	newCap := minRingCap
	for newCap < 2*len(s.ring) {
		newCap <<= 1
	}
	for int64(newCap) <= off {
		newCap <<= 1
	}
	ring := make([]queryState, newCap)
	if len(s.ring) > 0 {
		mask := len(s.ring) - 1
		for i := 0; int64(i) < s.used-s.base; i++ {
			ring[i] = s.ring[(s.start+i)&mask]
		}
	}
	s.ring = ring
	s.start = 0
}

// claim reserves the state slot for id; ok is false if id is in flight.
// Claiming may grow the ring: callers must not hold a *queryState from an
// earlier claim across a claim call.
//
//tg:hotpath
func (s *stateStore) claim(id int64) (st *queryState, ok bool) {
	if id >= s.base {
		off := id - s.base
		if off >= int64(len(s.ring)) && off < int64(len(s.ring))+maxDenseGap {
			s.grow(off) //tg:cold ring growth, amortized across the window
			off = id - s.base
		}
		if off < int64(len(s.ring)) {
			st = &s.ring[s.slot(id)]
			if st.active {
				return nil, false
			}
			if s.overflow != nil {
				if _, dup := s.overflow[id]; dup {
					return nil, false
				}
			}
			st.active = true
			if id >= s.used {
				s.used = id + 1
			}
			return st, true
		}
	}
	if s.overflow == nil {
		s.overflow = make(map[int64]*queryState) //tg:cold lazy init, first sparse ID only
	}
	if _, dup := s.overflow[id]; dup {
		return nil, false
	}
	if n := len(s.free); n > 0 {
		st = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		st = new(queryState) //tg:cold freelist warm-up, reused ever after
	}
	st.active = true
	s.overflow[id] = st
	return st, true
}

// get returns the in-flight state for id, or nil.
//
//tg:hotpath
func (s *stateStore) get(id int64) *queryState {
	if id >= s.base && id < s.base+int64(len(s.ring)) {
		if st := &s.ring[s.slot(id)]; st.active {
			return st
		}
	}
	return s.overflow[id]
}

// release zeroes id's state and returns its slot for reuse, sliding the
// window forward when the lowest in-flight ID goes.
//
//tg:hotpath
func (s *stateStore) release(id int64) {
	if id >= s.base && id < s.base+int64(len(s.ring)) {
		i := s.slot(id)
		if s.ring[i].active {
			s.ring[i] = queryState{}
			if id == s.base {
				s.advance()
			}
			return
		}
	}
	if st, ok := s.overflow[id]; ok {
		delete(s.overflow, id)
		*st = queryState{}
		s.free = append(s.free, st)
	}
}

// advance slides base past released (and never-claimed) low slots.
//
//tg:hotpath
func (s *stateStore) advance() {
	mask := len(s.ring) - 1
	for s.base < s.used && !s.ring[s.start].active {
		s.start = (s.start + 1) & mask
		s.base++
	}
	if s.base == s.used {
		// Empty window: rehome to the ring's front for locality.
		s.start = 0
	}
}

// reset clears any states left over from an aborted run, keeping
// capacity, and rewinds the window to zero so the next run's claims land
// in the ring again.
func (s *stateStore) reset() {
	if s.used > s.base {
		mask := len(s.ring) - 1
		for i := 0; int64(i) < s.used-s.base; i++ {
			j := (s.start + i) & mask
			if s.ring[j].active {
				s.ring[j] = queryState{}
			}
		}
	}
	s.start, s.base, s.used = 0, 0, 0
	// Drain the overflow in sorted-ID order so the freelist — and with it
	// the pointer each later claim hands out — is identical run to run.
	ids := make([]int64, 0, len(s.overflow))
	for id := range s.overflow {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := s.overflow[id]
		delete(s.overflow, id)
		*st = queryState{}
		s.free = append(s.free, st)
	}
}

// Arena owns the reusable resources of a simulation run: the event
// engine, the task and query-box freelists, the query-state store, the
// per-server queue set and occupancy slices, and a spare Result. Reusing
// one arena across runs (Config.Arena) makes steady-state simulation
// effectively allocation-free; a nil Config.Arena gets a private arena,
// reproducing the old allocate-per-run behavior. An arena serves one run
// at a time and is not safe for concurrent use.
type Arena struct {
	engine    *sim.Engine
	tasks     policy.TaskPool
	states    stateStore
	queues    []policy.Queue
	queueKind policy.Kind
	qboxes    []*workload.Query
	busy      []bool
	paused    []bool
	busyAcc   []float64
	spare     *Result
	// Fault-run state, sized only when a run injects faults or hedges:
	// crash markers, the per-server in-flight task (to detect completions
	// of crash-aborted tasks), and the hedge-skimming queue wrappers.
	crashed  []bool
	inflight []*policy.Task
	wrapped  []policy.Queue
	// Least-loaded tournament tree, maintained only on runs that can
	// call leastLoaded (hedging or a retry budget). noLoadIndex is a
	// test hook forcing the O(n) scan so the differential test can
	// prove the index picks identical servers.
	loadIx      *loadIndex
	noLoadIndex bool
	// Sharded-core state (shard engines, worker gang, exchange buffers),
	// built on the first sharded run and reused while the (shards,
	// servers, queue kind) shape holds.
	sharded *shardedState
}

// NewArena returns an empty arena. The zero value is also usable.
func NewArena() *Arena { return &Arena{} }

// Release hands a Result obtained from Run back for reuse by the arena's
// next run. The caller must not touch res afterwards.
func (a *Arena) Release(res *Result) {
	if res != nil {
		a.spare = res
	}
}

// getQueryBox returns a pooled query box for an arrival event payload.
//
//tg:hotpath
func (a *Arena) getQueryBox() *workload.Query {
	if n := len(a.qboxes); n > 0 {
		b := a.qboxes[n-1]
		a.qboxes[n-1] = nil
		a.qboxes = a.qboxes[:n-1]
		return b
	}
	return new(workload.Query) //tg:cold pool warm-up, recycled by putQueryBox
}

// putQueryBox zeroes b and returns it to the pool.
//
//tg:hotpath
func (a *Arena) putQueryBox(b *workload.Query) {
	*b = workload.Query{}
	a.qboxes = append(a.qboxes, b)
}

// takeResult returns the arena's spare Result (or a fresh one) reset and
// shaped for cfg: spec name set, timeline recorders present exactly when
// the timeline is enabled.
func (a *Arena) takeResult(cfg *Config) *Result {
	res := a.spare
	a.spare = nil
	if res == nil {
		res = &Result{
			Overall:  metrics.NewLatencyRecorder(cfg.Queries - cfg.Warmup),
			ByClass:  metrics.NewBreakdown[int](1024),
			ByFanout: metrics.NewBreakdown[int](1024),
			ByType:   metrics.NewBreakdown[ClassFanout](1024),
			TaskWait: metrics.NewLatencyRecorder(4096),
		}
	} else {
		res.reset()
	}
	res.Spec = cfg.Spec.Name
	if cfg.TimelineBucketMs > 0 {
		if res.Timeline == nil {
			res.Timeline = metrics.NewBreakdown[int](256)
		}
		if res.TimelineAdmitted == nil {
			res.TimelineAdmitted = make(map[int]int)
		}
		if res.TimelineRejected == nil {
			res.TimelineRejected = make(map[int]int)
		}
	} else {
		res.Timeline = nil
		res.TimelineAdmitted, res.TimelineRejected = nil, nil
	}
	return res
}

// resetBools returns s resized to n with all elements false, reusing its
// backing array when possible.
func resetBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// resetFloats returns s resized to n with all elements zero, reusing its
// backing array when possible.
func resetFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// resetTasks returns s resized to n with all elements nil, reusing its
// backing array when possible.
func resetTasks(s []*policy.Task, n int) []*policy.Task {
	if cap(s) < n {
		return make([]*policy.Task, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}

// runner executes one simulation.
type runner struct {
	cfg      Config
	arena    *Arena
	engine   *sim.Engine
	rng      *rand.Rand
	queues   []policy.Queue
	busy     []bool
	paused   []bool
	busyAcc  []float64
	res      *Result
	recycler ServerRecycler
	obs      *obs.Tracer     // nil when tracing is off
	attrib   *obs.Attributor // nil when attribution is off
	// Fault injection and resilience (nil / zero on fault-free runs).
	faults   *fault.Engine
	resil    fault.Resilience
	crashed  []bool         // nil unless faults are injected
	inflight []*policy.Task // nil unless faults are injected
	missWin  *obs.MissWindow
	degraded bool
	// Adaptive control plane (nil / zero unless cfg.Control is set).
	ctl     *control.Controller
	ctlWin  *obs.MissWindow      // feeds Tick's miss-ratio signal
	gate    *workload.CreditGate // nil when backpressure is off
	pending *workload.Query      // arrival deferred by an exhausted gate
	rebase  arrivalRebaser       // generator clock hook, nil if unsupported
	live    int                  // admitted queries not yet settled
	// Event handlers bound once per run: binding a method value
	// allocates, so the hot path must reuse these fields.
	arrivalH  sim.Handler
	enqueueH  sim.Handler
	completeH sim.Handler
	hedgeH    sim.Handler
	ctlH      sim.Handler
	loadIx    *loadIndex // nil unless hedging or retries can read it
	missed    int
	tasks     int
	err       error // first internal error; aborts the run
}

// Run executes the configured simulation to completion and returns its
// measurements.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		return runSharded(cfg)
	}
	a := cfg.Arena
	if a == nil {
		a = NewArena()
	}
	if a.engine == nil {
		a.engine = sim.NewEngine()
	}
	a.engine.Reset()
	a.states.reset()

	if a.queueKind != cfg.Spec.Queue {
		a.queues = a.queues[:0]
		a.queueKind = cfg.Spec.Queue
	}
	for len(a.queues) < cfg.Servers {
		q, err := policy.New(cfg.Spec.Queue)
		if err != nil {
			return nil, fmt.Errorf("cluster: building queue: %w", err)
		}
		a.queues = append(a.queues, q)
	}
	queues := a.queues[:cfg.Servers]
	for _, q := range queues {
		q.Reset()
	}
	a.busy = resetBools(a.busy, cfg.Servers)
	a.paused = resetBools(a.paused, cfg.Servers)
	a.busyAcc = resetFloats(a.busyAcc, cfg.Servers)

	res := a.takeResult(&cfg)

	r := &runner{
		cfg:     cfg,
		arena:   a,
		engine:  a.engine,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		queues:  queues,
		busy:    a.busy,
		paused:  a.paused,
		busyAcc: a.busyAcc,
		res:     res,
		obs:     cfg.Obs,
		attrib:  cfg.Attribution,
		faults:  cfg.Faults,
		resil:   cfg.Resilience,
	}
	r.recycler, _ = cfg.Generator.(ServerRecycler)
	r.arrivalH = r.onArrivalEvent
	r.enqueueH = r.onEnqueueEvent
	r.completeH = r.onCompleteEvent
	r.hedgeH = r.onHedgeEvent
	for _, f := range cfg.Failures {
		f := f
		if err := r.engine.Schedule(f.Start, func() { r.pause(f.Server) }); err != nil {
			return nil, err
		}
		if err := r.engine.Schedule(f.End, func() { r.resume(f.Server) }); err != nil {
			return nil, err
		}
	}
	if cfg.Faults != nil {
		// Rewind the engine's seeded drop streams so a reused engine
		// replays the identical fault schedule, then schedule the
		// crash/restart transitions.
		cfg.Faults.Reset()
		a.crashed = resetBools(a.crashed, cfg.Servers)
		a.inflight = resetTasks(a.inflight, cfg.Servers)
		r.crashed, r.inflight = a.crashed, a.inflight
		for s := 0; s < cfg.Servers; s++ {
			for _, w := range cfg.Faults.Crashes(s) {
				s, w := s, w
				if err := r.engine.Schedule(w.Start, func() { r.crash(s) }); err != nil {
					return nil, err
				}
				if err := r.engine.Schedule(w.End, func() { r.restart(s) }); err != nil {
					return nil, err
				}
			}
		}
	}
	if cfg.Resilience.Hedge {
		// Hedging wraps every queue so cancelled losers are skimmed back
		// into the task pool instead of being served. The wrapper slice
		// and Drop closure are the hedged mode's per-run allocations.
		a.wrapped = a.wrapped[:0]
		drop := func(t *policy.Task) { a.tasks.Put(t) }
		for _, q := range queues {
			a.wrapped = append(a.wrapped, policy.Hedged{Queue: q, Drop: drop})
		}
		r.queues = a.wrapped
	}
	if (cfg.Resilience.Hedge || cfg.Resilience.RetryBudget > 0) && !a.noLoadIndex {
		// Only hedging and retry placement ever call leastLoaded; other
		// runs skip the index maintenance entirely. Built after the
		// hedge wrapping so loadChanged reads the final queue set.
		if a.loadIx == nil {
			a.loadIx = new(loadIndex)
		}
		a.loadIx.init(cfg.Servers)
		r.loadIx = a.loadIx
	}
	if cfg.Resilience.DegradedAdmission {
		cfg.Admission.SetThresholdScale(1)
		r.missWin = obs.NewMissWindow(cfg.Admission.WindowMs(), 0)
	}
	if cfg.Control != nil {
		if cfg.Admission != nil {
			cfg.Admission.SetThresholdScale(1)
			cfg.Control.AttachAdmission(cfg.Admission)
		}
		r.ctl = cfg.Control
		r.gate = cfg.Control.Gate()
		r.ctlWin = obs.NewMissWindow(cfg.Control.Config().WindowMs, 1)
		r.rebase, _ = cfg.Generator.(arrivalRebaser)
		r.ctlH = r.onControlTick
		if err := r.engine.ScheduleCall(cfg.Control.Config().TickMs, r.ctlH, nil, 0); err != nil {
			return nil, err
		}
	}
	if err := r.scheduleNextArrival(); err != nil {
		return nil, err
	}
	r.engine.Run()
	if r.err != nil {
		return nil, r.err
	}
	r.finalize()
	return r.res, nil
}

// fail records the first internal error and stops the engine.
func (r *runner) fail(err error) {
	if r.err == nil {
		r.err = err
		r.engine.Stop()
	}
}

// serviceDistFor returns cfg's service-time distribution for server s.
//
//tg:hotpath
func serviceDistFor(cfg *Config, s int) dist.Distribution {
	if len(cfg.ServiceTimes) == 1 {
		return cfg.ServiceTimes[0]
	}
	return cfg.ServiceTimes[s]
}

// serviceDist returns the service-time distribution for server s.
func (r *runner) serviceDist(s int) dist.Distribution {
	return serviceDistFor(&r.cfg, s)
}

// deadlineForQuery computes the task queuing deadline for a query under
// cfg, honoring per-query budget overrides (the request-level extension).
func deadlineForQuery(cfg *Config, q workload.Query) (float64, error) {
	if q.HasBudget {
		return q.Arrival + q.Budget, nil
	}
	if cfg.HeterogeneousDeadlines {
		return cfg.Deadliner.DeadlineServers(q.Arrival, q.Class, q.Servers)
	}
	return cfg.Deadliner.Deadline(q.Arrival, q.Class, q.Fanout)
}

// scheduleNextArrival draws the next query from the generator and
// schedules its arrival event; each arrival schedules its successor until
// Queries have been generated or the source ends.
func (r *runner) scheduleNextArrival() error {
	if r.res.Queries >= r.cfg.Queries {
		return nil
	}
	q, ok := r.cfg.Generator.Next()
	if !ok {
		return nil
	}
	r.res.Queries++
	box := r.arena.getQueryBox()
	*box = q
	return r.engine.ScheduleCall(q.Arrival, r.arrivalH, box, 0)
}

// onArrivalEvent unboxes an arrival event's query (val != 0 marks hook
// injection) and recycles the box before processing.
func (r *runner) onArrivalEvent(arg any, val float64) {
	box := arg.(*workload.Query)
	q := *box
	r.arena.putQueryBox(box)
	r.onArrival(q, val != 0)
}

// onEnqueueEvent delivers a dispatched task to its server's queue.
func (r *runner) onEnqueueEvent(arg any, _ float64) {
	t := arg.(*policy.Task)
	r.enqueue(t.Server, t)
}

// onCompleteEvent finishes a task's service; val carries its occupancy.
func (r *runner) onCompleteEvent(arg any, val float64) {
	t := arg.(*policy.Task)
	r.onComplete(t.Server, t, val)
}

// recycle returns a query's placement slice to its source. Injected
// queries are skipped: their Servers belong to the completion hook.
func (r *runner) recycle(q workload.Query, injected bool) {
	if r.recycler == nil || injected || q.Servers == nil {
		return
	}
	r.recycler.Recycle(q.Servers)
}

// onArrival processes one query arrival: admission, deadline computation,
// and task dispatch. Injected queries (request chaining) skip admission.
func (r *runner) onArrival(q workload.Query, injected bool) {
	if !injected {
		if r.gate != nil && !r.gate.TryAcquire() {
			// Credit gate exhausted: park this arrival and stop drawing
			// from the generator until a settling query frees a credit
			// (settleCredit re-injects it and resumes the chain). The
			// source is blocked, not shedding — nothing is rejected here.
			r.res.CreditDeferred++
			box := r.arena.getQueryBox()
			*box = q
			r.pending = box
			return
		}
		if err := r.scheduleNextArrival(); err != nil {
			r.fail(err)
			return
		}
	}
	// Offered demand bookkeeping uses the expected service time so that
	// rejected queries (whose tasks are never sampled) count too.
	for _, s := range q.Servers {
		r.res.OfferedLoad += r.serviceDist(s).Mean()
	}
	r.obs.Query(obs.KindArrival, q.Arrival, q.ID, int32(q.Class), float64(q.Fanout))

	if !injected && r.ctl != nil && !r.ctl.AllowClass(q.Class, q.Arrival) {
		// The control plane's token bucket shed this class: best-effort
		// traffic thins first under overload (Value 1 distinguishes a
		// throttle shed from an admission rejection).
		r.res.Throttled++
		if r.res.TimelineRejected != nil {
			r.res.TimelineRejected[r.timelineBucket(q.Arrival)]++
		}
		r.obs.Query(obs.KindReject, q.Arrival, q.ID, int32(q.Class), 1)
		r.settleCredit(q.Arrival)
		r.recycle(q, injected)
		return
	}
	if !injected && r.cfg.Admission != nil && !r.cfg.Admission.Admit(q.Arrival) {
		r.res.Rejected++
		if r.res.TimelineRejected != nil {
			r.res.TimelineRejected[r.timelineBucket(q.Arrival)]++
		}
		r.obs.Query(obs.KindReject, q.Arrival, q.ID, int32(q.Class), 0)
		r.settleCredit(q.Arrival)
		r.recycle(q, injected)
		return
	}
	r.res.Admitted++
	if !injected {
		r.live++
	}
	if r.res.TimelineAdmitted != nil && !injected {
		r.res.TimelineAdmitted[r.timelineBucket(q.Arrival)]++
	}

	deadline, err := r.deadlineFor(q)
	if err != nil {
		r.fail(fmt.Errorf("cluster: deadline for query %d: %w", q.ID, err))
		return
	}
	r.obs.Query(obs.KindDeadline, q.Arrival, q.ID, int32(q.Class), deadline)
	st, ok := r.arena.states.claim(q.ID)
	if !ok {
		r.fail(fmt.Errorf("cluster: duplicate query ID %d", q.ID))
		return
	}
	st.query = q
	st.stragTask, st.stragSrv = -1, -1
	st.lostSrv = -1
	st.remaining = int32(q.Fanout)
	st.counted = q.ID >= int64(r.cfg.Warmup)
	st.injected = injected

	for i, s := range q.Servers {
		svc := 0.0
		if q.Services != nil {
			svc = q.Services[i]
		} else {
			svc = r.serviceDist(s).Sample(r.rng)
		}
		t := r.arena.tasks.Get()
		t.QueryID = q.ID
		t.Index = i
		t.Server = s
		t.Class = q.Class
		t.Arrival = q.Arrival
		t.Deadline = deadline
		t.Enqueued = q.Arrival
		t.Service = svc
		r.sendTask(t, q.Arrival)
		if r.err != nil {
			return
		}
	}
}

// sendTask carries a task over the dispatch leg to its server: transport
// faults may drop or delay it, and per-server queuing adds the dispatch
// network delay before enqueue. With a nil fault engine this reduces
// exactly to the pre-fault dispatch logic (same rng draw order, same
// direct-call-vs-event decisions), preserving bit-identical runs.
func (r *runner) sendTask(t *policy.Task, now float64) {
	s := t.Server
	if r.faults.DropSend(s, now) {
		r.taskLost(t, now, true)
		return
	}
	delay := r.faults.SendDelay(s, now)
	viaEvent := false
	if r.cfg.Queuing == PerServerQueuing && r.cfg.DispatchDelay != nil {
		// The task travels to the server before queuing; its wait
		// (t_pr) includes the dispatch leg.
		delay += r.cfg.DispatchDelay.Sample(r.rng)
		viaEvent = true
	}
	if delay > 0 || viaEvent {
		if err := r.engine.ScheduleCall(now+delay, r.enqueueH, t, 0); err != nil {
			r.fail(err)
		}
		return
	}
	r.enqueue(s, t)
}

// enqueue places a task at its server, starting service if idle and up.
// A crashed server refuses the task (it is lost to the fault); a task
// pushed behind a backlog under hedging arms a hedge timer at its
// queuing deadline.
func (r *runner) enqueue(s int, t *policy.Task) {
	if r.crashed != nil && r.crashed[s] {
		r.taskLost(t, r.engine.Now(), true)
		return
	}
	if r.obs != nil {
		r.obs.TaskEvent(obs.KindEnqueue, r.engine.Now(), t.QueryID, int32(t.Index), int32(s), int32(t.Class), 0)
	}
	if r.busy[s] || r.paused[s] {
		r.queues[s].Push(t)
		r.loadChanged(s)
		if r.obs != nil {
			r.obs.QueueDepth(r.engine.Now(), int32(s), r.queues[s].Len())
		}
		if r.resil.Hedge && t.Hedge == nil && !math.IsInf(t.Deadline, 1) {
			// Arm the hedge: if the task is still waiting when its
			// queuing deadline passes (slack exhausted), duplicate it.
			hs := &policy.HedgeState{Primary: t}
			t.Hedge = hs
			at := t.Deadline
			if now := r.engine.Now(); at < now {
				at = now
			}
			if err := r.engine.ScheduleCall(at, r.hedgeH, hs, 0); err != nil {
				r.fail(err)
				return
			}
		}
	} else {
		r.startService(s, t)
	}
}

// popNext dequeues the next task for server s, emitting the depth sample.
// The index update is unconditional: a hedge-skimming Pop can shorten
// the queue even when it returns nil.
func (r *runner) popNext(s int) *policy.Task {
	next := r.queues[s].Pop()
	r.loadChanged(s)
	if next != nil && r.obs != nil {
		r.obs.QueueDepth(r.engine.Now(), int32(s), r.queues[s].Len())
	}
	return next
}

// pause starts a server's outage window.
func (r *runner) pause(s int) {
	r.paused[s] = true
	r.loadChanged(s)
}

// resume ends a server's outage and restarts its queue.
func (r *runner) resume(s int) {
	r.paused[s] = false
	r.loadChanged(s)
	if !r.busy[s] {
		if next := r.popNext(s); next != nil {
			r.startService(s, next)
		}
	}
}

// timelineBucket maps an arrival time onto its timeline bucket.
func (r *runner) timelineBucket(arrival float64) int {
	return int(arrival / r.cfg.TimelineBucketMs)
}

// deadlineFor computes the task queuing deadline for a query, honoring
// per-query budget overrides (the request-level extension).
func (r *runner) deadlineFor(q workload.Query) (float64, error) {
	return deadlineForQuery(&r.cfg, q)
}

// startService begins serving a task on an idle server.
func (r *runner) startService(s int, t *policy.Task) {
	now := r.engine.Now()
	r.busy[s] = true
	r.loadChanged(s)
	r.tasks++
	t.Dequeued = now
	r.obs.TaskEvent(obs.KindDispatch, now, t.QueryID, int32(t.Index), int32(s), int32(t.Class), now-t.Enqueued)

	missed := now > t.Deadline // +Inf deadlines never miss
	if missed {
		r.missed++
	}
	if r.cfg.Admission != nil {
		r.cfg.Admission.ObserveTask(missed, now)
	}

	st := r.arena.states.get(t.QueryID)
	if st != nil && st.counted {
		if err := r.res.TaskWait.Observe(now - t.Enqueued); err != nil {
			r.fail(err)
			return
		}
	}
	if r.inflight != nil {
		r.inflight[s] = t
	}
	if t.Hedge != nil {
		t.Hedge.Dispatched = true
	}

	// Under central queuing the dequeued task still has to travel to the
	// server; the dispatch leg is part of its post-queuing time and of
	// the server occupancy (the server cannot accept another task until
	// this one completes and the idle signal returns). Service faults
	// stretch the service portion (slowdowns scale it, stalls insert the
	// remainder of the stop window).
	occupancy := t.Service
	if r.faults != nil {
		occupancy = r.faults.Stretch(s, now, t.Service)
	}
	if r.cfg.Queuing == CentralQueuing && r.cfg.DispatchDelay != nil {
		occupancy += r.cfg.DispatchDelay.Sample(r.rng)
	}
	if err := r.engine.ScheduleCallAfter(occupancy, r.completeH, t, occupancy); err != nil {
		r.fail(err)
	}
}

// onComplete handles a task finishing service.
func (r *runner) onComplete(s int, t *policy.Task, svc float64) {
	now := r.engine.Now()
	if r.inflight != nil {
		if r.inflight[s] != t {
			// Stale completion of a crash-aborted task: the crash already
			// accounted for the loss; this event only returns the task to
			// the pool (it could not be pooled at crash time while its
			// completion event still pointed at it).
			r.arena.tasks.Put(t)
			return
		}
		r.inflight[s] = nil
	}
	r.busyAcc[s] += svc

	// Online updating: the post-queuing time observed by the handler when
	// merging the task result. In the simulator that is the service time
	// (dispatch and merge are instantaneous).
	if r.cfg.Estimator != nil {
		if err := r.cfg.Estimator.Observe(s, svc); err != nil {
			r.fail(fmt.Errorf("cluster: online update: %w", err))
			return
		}
	}

	if t.Hedge != nil {
		hs := t.Hedge
		if !hs.Resolve(t) {
			// The sibling copy already finished this logical task (and may
			// have completed the whole query); the loser's completion
			// carries no query-level information.
			r.obs.TaskEvent(obs.KindServiceEnd, now, t.QueryID, int32(t.Index), int32(s), int32(t.Class), now-t.Dequeued)
			r.arena.tasks.Put(t)
			r.serveNext(s)
			return
		}
		if t == hs.Backup {
			r.res.HedgeWins++
		}
	}
	st := r.arena.states.get(t.QueryID)
	if st == nil {
		r.fail(fmt.Errorf("cluster: completion for unknown query %d", t.QueryID))
		return
	}
	r.obs.TaskEvent(obs.KindServiceEnd, now, t.QueryID, int32(t.Index), int32(s), int32(t.Class), now-t.Dequeued)
	if now >= st.maxFinish {
		// This task is the straggler so far: its completion sets the
		// query latency, so record its identity and time split for miss
		// attribution (>= so simultaneous finishes keep the later task).
		st.maxFinish = now
		st.stragTask = int32(t.Index)
		st.stragSrv = int32(s)
		st.stragWait = t.Dequeued - t.Enqueued
		st.stragSvc = now - t.Dequeued
	}
	st.remaining--
	if st.remaining == 0 {
		r.onQueryDone(t.QueryID, st)
	}
	r.arena.tasks.Put(t)
	if r.err != nil {
		return
	}
	r.serveNext(s)
}

// serveNext marks server s idle and, if it is up, starts its next queued
// task (work conservation).
func (r *runner) serveNext(s int) {
	r.busy[s] = false
	r.loadChanged(s)
	if r.paused[s] || (r.crashed != nil && r.crashed[s]) {
		return
	}
	if next := r.popNext(s); next != nil {
		r.startService(s, next)
	}
}

// taskLost accounts for a task copy destroyed by a fault (transport drop,
// crashed-server refusal, crash of the queue or the in-flight task). The
// loss is absorbed when a hedge sibling still covers the logical task or
// the retry budget re-dispatches it; otherwise the query fails. reusable
// says the caller no longer references t, so it may be pooled (false for
// a crash-aborted in-flight task, whose pending completion event still
// points at it — the stale event pools it).
func (r *runner) taskLost(t *policy.Task, now float64, reusable bool) {
	if t.Hedge != nil && t.Hedge.Cancelled(t) {
		// A cancelled hedge loser destroyed by a fault: the race was
		// already decided, nothing is lost.
		if reusable {
			r.arena.tasks.Put(t)
		}
		return
	}
	qid, srv := t.QueryID, t.Server
	r.res.LostTasks++
	st := r.arena.states.get(qid)
	if st == nil {
		r.fail(fmt.Errorf("cluster: lost task for unknown query %d", qid))
		return
	}
	absorbed := false
	if t.Hedge != nil {
		t.Hedge.MarkLost(t)
		absorbed = t.Hedge.SiblingAlive(t)
	}
	if !absorbed && int(st.retries) < r.resil.RetryBudget {
		cls, err := r.cfg.Classes.Class(t.Class)
		if err != nil {
			r.fail(fmt.Errorf("cluster: retrying task of query %d: %w", qid, err))
			return
		}
		dest := r.retryDest(srv)
		if dest >= 0 && now < st.query.Arrival+cls.SLOMs {
			st.retries++
			r.res.Retries++
			nt := t
			if !reusable {
				nt = r.arena.tasks.Get()
				nt.QueryID = t.QueryID
				nt.Index = t.Index
				nt.Class = t.Class
				nt.Arrival = t.Arrival
				nt.Deadline = t.Deadline
			}
			nt.Hedge = nil
			nt.Server = dest
			nt.Service = r.serviceDist(dest).Sample(r.rng)
			nt.Enqueued = now
			nt.Dequeued = 0
			r.obs.TaskEvent(obs.KindTaskLost, now, qid, int32(nt.Index), int32(srv), int32(nt.Class), 1)
			r.sendTask(nt, now)
			return
		}
	}
	if absorbed {
		r.obs.TaskEvent(obs.KindTaskLost, now, qid, int32(t.Index), int32(srv), int32(t.Class), 1)
		if reusable {
			r.arena.tasks.Put(t)
		}
		return
	}
	r.obs.TaskEvent(obs.KindTaskLost, now, qid, int32(t.Index), int32(srv), int32(t.Class), 0)
	st.failed = true
	if st.lostSrv < 0 {
		st.lostSrv = int32(srv)
	}
	st.remaining--
	rem := st.remaining
	if reusable {
		r.arena.tasks.Put(t)
	}
	if rem == 0 {
		r.onQueryDone(qid, st)
	}
}

// crash takes server s down: the in-flight task and every queued task are
// lost to the fault.
func (r *runner) crash(s int) {
	now := r.engine.Now()
	r.crashed[s] = true
	// Down before any taskLost below asks for a retry destination; the
	// drained queue needs no per-pop updates while s carries loadDown.
	r.loadChanged(s)
	if r.busy[s] {
		t := r.inflight[s]
		r.inflight[s] = nil
		r.busy[s] = false
		if t != nil {
			// The aborted task's completion event is still scheduled, so
			// it cannot be pooled here; the stale event returns it.
			r.taskLost(t, now, false)
		}
	}
	for {
		t := r.queues[s].Pop()
		if t == nil {
			break
		}
		r.taskLost(t, now, true)
		if r.err != nil {
			return
		}
	}
	if r.obs != nil {
		r.obs.QueueDepth(now, int32(s), 0)
	}
}

// restart brings a crashed server back with an empty queue.
func (r *runner) restart(s int) {
	r.crashed[s] = false
	r.loadChanged(s)
	if !r.busy[s] && !r.paused[s] {
		if next := r.popNext(s); next != nil {
			r.startService(s, next)
		}
	}
}

// onHedgeEvent fires when a hedge-armed task's queuing deadline passes: if
// the primary is still waiting in its queue, duplicate it to the least
// loaded other server and let the copies race (first finish wins).
func (r *runner) onHedgeEvent(arg any, _ float64) {
	hs := arg.(*policy.HedgeState)
	if !hs.NeedsHedge() {
		return
	}
	now := r.engine.Now()
	p := hs.Primary
	dest := r.leastLoaded(p.Server)
	if dest < 0 {
		return
	}
	b := r.arena.tasks.Get()
	b.QueryID = p.QueryID
	b.Index = p.Index
	b.Class = p.Class
	b.Arrival = p.Arrival
	b.Deadline = p.Deadline
	b.Server = dest
	b.Enqueued = now
	b.Service = r.serviceDist(dest).Sample(r.rng)
	b.Hedge = hs
	hs.Backup = b
	r.res.HedgesIssued++
	r.obs.TaskEvent(obs.KindHedge, now, b.QueryID, int32(b.Index), int32(dest), int32(b.Class), float64(p.Server))
	r.sendTask(b, now)
}

// serverDown reports whether server s can currently accept work.
func (r *runner) serverDown(s int) bool {
	if r.paused[s] {
		return true
	}
	return r.crashed != nil && r.crashed[s]
}

// loadChanged recomputes server s's entry in the least-loaded index
// after any queue, busy, or availability transition. No-op on runs that
// do not maintain the index.
//
//tg:hotpath
func (r *runner) loadChanged(s int) {
	ix := r.loadIx
	if ix == nil {
		return
	}
	if r.paused[s] || (r.crashed != nil && r.crashed[s]) {
		ix.update(s, loadDown)
		return
	}
	load := int32(r.queues[s].Len())
	if r.busy[s] {
		load++
	}
	ix.update(s, load)
}

// leastLoaded returns the up server (excluding exclude) with the fewest
// queued-plus-in-service tasks, lowest index winning ties; -1 if none.
// The tournament tree answers in O(log n); the scan remains as the
// fallback for index-less runs and as the differential-test oracle.
//
//tg:hotpath
func (r *runner) leastLoaded(exclude int) int {
	if r.loadIx != nil {
		return r.loadIx.best(exclude)
	}
	return r.leastLoadedScan(exclude)
}

// leastLoadedScan is the O(n) reference answer to leastLoaded.
func (r *runner) leastLoadedScan(exclude int) int {
	best, bestLoad := -1, 0
	for s := 0; s < r.cfg.Servers; s++ {
		if s == exclude || r.serverDown(s) {
			continue
		}
		load := r.queues[s].Len()
		if r.busy[s] {
			load++
		}
		if best < 0 || load < bestLoad {
			best, bestLoad = s, load
		}
	}
	return best
}

// retryDest picks the server for a lost task's retry: the least loaded
// other up server, the original server if it alone is up, else -1.
func (r *runner) retryDest(lost int) int {
	if dest := r.leastLoaded(lost); dest >= 0 {
		return dest
	}
	if lost >= 0 && lost < r.cfg.Servers && !r.serverDown(lost) {
		return lost
	}
	return -1
}

// updateDegraded polls the fault-dominated-window detector and scales the
// admission threshold down (degraded admission) while it holds.
func (r *runner) updateDegraded(now float64) {
	if r.missWin == nil {
		return
	}
	degraded := r.missWin.FaultDominated(now)
	if degraded == r.degraded {
		return
	}
	r.degraded = degraded
	scale := 1.0
	if degraded {
		scale = r.resil.Scale()
	}
	r.cfg.Admission.SetThresholdScale(scale)
}

// onControlTick advances the adaptive control plane by one period: the
// controller reads the windowed query miss ratio and the in-flight count,
// actuates the admission scale, credit limit, throttle, and active server
// set, and the tick re-arms itself while the run still has work. Once the
// source is exhausted and every query has settled the chain ends so the
// event loop can drain.
func (r *runner) onControlTick(_ any, _ float64) {
	now := r.engine.Now()
	d := r.ctl.Tick(now, control.Signals{MissRatio: r.ctlWin.Ratio(now), InFlight: r.live})
	r.res.ControlTicks++
	r.obs.Emit(obs.Event{
		TimeMs: now, Kind: obs.KindControl, QueryID: -1,
		Task: int32(d.Credits), Server: int32(d.Active), Class: int32(d.Warming),
		Value: d.Scale,
	})
	if r.res.Queries >= r.cfg.Queries && r.live == 0 && r.pending == nil {
		return
	}
	if err := r.engine.ScheduleCall(now+r.ctl.Config().TickMs, r.ctlH, nil, 0); err != nil {
		r.fail(err)
	}
}

// settleCredit returns a settled query's credit to the gate and, if the
// arrival chain is parked behind an exhausted gate, re-injects the held
// query at the current time. The query re-arrives when the frontend
// unblocks, so its arrival — and the generator's clock — are rebased to
// now; the interval the source spent blocked produces no arrivals, which
// is exactly the backpressure the credit loop exists to apply.
func (r *runner) settleCredit(now float64) {
	if r.gate == nil {
		return
	}
	r.gate.Release()
	if r.pending == nil {
		return
	}
	box := r.pending
	r.pending = nil
	box.Arrival = now
	if r.rebase != nil {
		r.rebase.RebaseTo(now)
	}
	if err := r.engine.ScheduleCall(now, r.arrivalH, box, 0); err != nil {
		r.fail(err)
	}
}

// onQueryDone records a finished query and lets the completion hook inject
// follow-up queries (request chaining). st is released (and invalid) once
// this returns.
func (r *runner) onQueryDone(id int64, st *queryState) {
	now := r.engine.Now()
	q := st.query
	injected := st.injected
	counted := st.counted
	latency := st.maxFinish - q.Arrival
	if !injected {
		r.live--
	}
	if st.failed {
		// An unabsorbed task loss failed the query: it has no latency.
		// The loss still feeds the fault-dominance detector (with the
		// faulted server as the "straggler") so degraded admission sees
		// crash storms, but no latency statistics or completion event.
		r.res.Failed++
		lostSrv := st.lostSrv
		r.arena.states.release(id)
		r.missWin.Observe(now, true, true, lostSrv)
		r.ctlWin.Observe(now, true, true, lostSrv)
		r.updateDegraded(now)
		if !injected {
			r.settleCredit(now)
		}
		r.recycle(q, injected)
		return
	}
	r.res.Completed++
	var sloMs float64
	if (r.attrib != nil && counted) || r.missWin != nil || r.ctlWin != nil {
		class, err := r.cfg.Classes.Class(q.Class)
		if err != nil {
			r.fail(fmt.Errorf("cluster: attributing query %d: %w", id, err))
			return
		}
		sloMs = class.SLOMs
	}
	if r.missWin != nil {
		r.missWin.Observe(now, latency > sloMs, st.stragSvc > st.stragWait, st.stragSrv)
		r.updateDegraded(now)
	}
	r.ctlWin.Observe(now, latency > sloMs, st.stragSvc > st.stragWait, st.stragSrv)
	if r.attrib != nil && counted {
		r.attrib.Observe(obs.QueryOutcome{
			QueryID:            id,
			Class:              q.Class,
			Fanout:             q.Fanout,
			LatencyMs:          latency,
			SLOMs:              sloMs,
			StragglerTask:      st.stragTask,
			StragglerServer:    st.stragSrv,
			StragglerWaitMs:    st.stragWait,
			StragglerServiceMs: st.stragSvc,
		})
	}
	r.arena.states.release(id)
	r.obs.Query(obs.KindQueryDone, now, id, int32(q.Class), latency)
	if counted {
		cls, fanout := q.Class, q.Fanout
		if err := r.res.Overall.Observe(latency); err != nil {
			r.fail(err)
			return
		}
		if err := r.res.ByClass.Observe(cls, latency); err != nil {
			r.fail(err)
			return
		}
		if err := r.res.ByFanout.Observe(fanout, latency); err != nil {
			r.fail(err)
			return
		}
		if err := r.res.ByType.Observe(ClassFanout{Class: cls, Fanout: fanout}, latency); err != nil {
			r.fail(err)
			return
		}
		if r.res.Timeline != nil {
			if err := r.res.Timeline.Observe(r.timelineBucket(q.Arrival), latency); err != nil {
				r.fail(err)
				return
			}
		}
	}
	if !injected {
		r.settleCredit(now)
	}
	if r.cfg.OnQueryDone != nil {
		for _, next := range r.cfg.OnQueryDone(q, latency, now) {
			if next.Arrival < now {
				next.Arrival = now
			}
			r.res.Injected++
			box := r.arena.getQueryBox()
			*box = next
			if err := r.engine.ScheduleCall(next.Arrival, r.arrivalH, box, 1); err != nil {
				r.fail(err)
				return
			}
		}
	}
	r.recycle(q, injected)
}

// finalize computes the run-level aggregates.
func (r *runner) finalize() {
	if r.missWin != nil || (r.ctl != nil && r.cfg.Admission != nil) {
		// Leave the shared admission controller at its nominal threshold.
		r.cfg.Admission.SetThresholdScale(1)
	}
	r.res.Duration = r.engine.Now()
	if r.res.Duration > 0 {
		var busy float64
		for _, b := range r.busyAcc {
			busy += b
		}
		capacity := r.res.Duration * float64(r.cfg.Servers)
		r.res.Utilization = busy / capacity
		r.res.OfferedLoad /= capacity
	}
	if r.tasks > 0 {
		r.res.TaskMissRatio = float64(r.missed) / float64(r.tasks)
	}
}

// MeetsSLOs reports whether every query type (class, fanout) with at least
// minSamples post-warmup samples met its class's tail-latency SLO — the
// paper's per-type compliance criterion. It returns the worst margin
// (measured tail / SLO) across checked types; a margin <= 1 passes.
func (res *Result) MeetsSLOs(classes *workload.ClassSet, minSamples int) (bool, float64, error) {
	if classes == nil {
		return false, 0, fmt.Errorf("cluster: class set required")
	}
	if minSamples < 1 {
		minSamples = 1
	}
	ok := true
	worst := 0.0
	var firstErr error
	res.ByType.Each(func(key ClassFanout, rec *metrics.LatencyRecorder) {
		if rec.Count() < minSamples || firstErr != nil {
			return
		}
		cls, err := classes.Class(key.Class)
		if err != nil {
			firstErr = err
			return
		}
		tail, err := rec.Quantile(cls.Percentile)
		if err != nil {
			firstErr = err
			return
		}
		margin := tail / cls.SLOMs
		if margin > worst {
			worst = margin
		}
		if tail > cls.SLOMs {
			ok = false
		}
	})
	if firstErr != nil {
		return false, 0, firstErr
	}
	if math.IsNaN(worst) {
		return false, 0, fmt.Errorf("cluster: NaN SLO margin")
	}
	return ok, worst, nil
}
