package cluster

import (
	"math"
	"testing"

	"tailguard/internal/analytic"
	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/workload"
)

// runSingleServer drives an M/G/1 system through the full cluster stack:
// one server, fanout 1, Poisson arrivals at the given rate.
func runSingleServer(t *testing.T, svc dist.Distribution, lambda float64, queries int) *Result {
	t.Helper()
	arr, err := workload.NewPoisson(lambda)
	if err != nil {
		t.Fatalf("NewPoisson: %v", err)
	}
	fan, err := workload.NewFixed(1)
	if err != nil {
		t.Fatalf("NewFixed: %v", err)
	}
	classes, err := workload.SingleClass(1e9)
	if err != nil {
		t.Fatalf("SingleClass: %v", err)
	}
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Servers: 1, Arrival: arr, Fanout: fan, Classes: classes,
	}, 21)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	est, err := core.NewHomogeneousStaticTailEstimator(svc, 1)
	if err != nil {
		t.Fatalf("NewHomogeneousStaticTailEstimator: %v", err)
	}
	dl, err := core.NewDeadliner(core.FIFO, est, classes)
	if err != nil {
		t.Fatalf("NewDeadliner: %v", err)
	}
	res, err := Run(Config{
		Servers:      1,
		Spec:         core.FIFO,
		ServiceTimes: []dist.Distribution{svc},
		Generator:    gen,
		Classes:      classes,
		Deadliner:    dl,
		Queries:      queries,
		Warmup:       queries / 10,
		Seed:         22,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestSimulatorMatchesMM1 validates the whole engine against the M/M/1
// closed form: mean sojourn and p99 sojourn of an exponential-service
// single-server FIFO queue at rho = 0.7.
func TestSimulatorMatchesMM1(t *testing.T) {
	const (
		meanService = 1.0
		lambda      = 0.7
		queries     = 400000
	)
	svc, err := dist.NewExponential(meanService)
	if err != nil {
		t.Fatalf("NewExponential: %v", err)
	}
	res := runSingleServer(t, svc, lambda, queries)

	wantMean, err := analytic.MM1MeanSojourn(lambda, meanService)
	if err != nil {
		t.Fatalf("MM1MeanSojourn: %v", err)
	}
	gotMean := res.Overall.Mean()
	if math.Abs(gotMean-wantMean)/wantMean > 0.03 {
		t.Errorf("mean sojourn = %v, M/M/1 predicts %v", gotMean, wantMean)
	}

	wantP99, err := analytic.MM1SojournQuantile(lambda, meanService, 0.99)
	if err != nil {
		t.Fatalf("MM1SojournQuantile: %v", err)
	}
	gotP99, err := res.Overall.P99()
	if err != nil {
		t.Fatalf("P99: %v", err)
	}
	if math.Abs(gotP99-wantP99)/wantP99 > 0.05 {
		t.Errorf("p99 sojourn = %v, M/M/1 predicts %v", gotP99, wantP99)
	}

	wantRho, err := analytic.Utilization(lambda, meanService)
	if err != nil {
		t.Fatalf("Utilization: %v", err)
	}
	if math.Abs(res.Utilization-wantRho)/wantRho > 0.02 {
		t.Errorf("utilization = %v, want %v", res.Utilization, wantRho)
	}
}

// TestSimulatorMatchesMG1PollaczekKhinchine validates mean waiting time
// against the P-K formula for two decidedly non-exponential services: the
// deterministic distribution and the heavy-bimodal Shore model.
func TestSimulatorMatchesMG1PollaczekKhinchine(t *testing.T) {
	cases := []struct {
		name string
		svc  dist.Distribution
	}{
		{"deterministic", dist.Deterministic{V: 1}},
		{"shore", dist.MustTailbenchWorkload("shore").ServiceTime},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			meanService := tc.svc.Mean()
			lambda := 0.6 / meanService // rho = 0.6
			res := runSingleServer(t, tc.svc, lambda, 400000)
			wantWait, err := analytic.MG1WaitFromDist(lambda, tc.svc)
			if err != nil {
				t.Fatalf("MG1WaitFromDist: %v", err)
			}
			gotWait := res.Overall.Mean() - meanService
			// Mean queueing delay converges slowly for heavy-tailed
			// services; 5% at 400k queries.
			if math.Abs(gotWait-wantWait)/wantWait > 0.05 {
				t.Errorf("mean wait = %v, P-K predicts %v", gotWait, wantWait)
			}
		})
	}
}
