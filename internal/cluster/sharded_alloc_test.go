package cluster

import (
	"testing"

	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/workload"
)

// steadyShardedRun executes one arena-backed sharded run of the given
// size and returns the result to the arena.
func steadyShardedRun(t *testing.T, arena *Arena, dl *core.Deadliner,
	classes *workload.ClassSet, svc dist.Distribution, queries int) {
	t.Helper()
	fan, err := workload.NewFixed(2)
	if err != nil {
		t.Fatalf("NewFixed: %v", err)
	}
	arrival, err := workload.NewPoisson(1)
	if err != nil {
		t.Fatalf("NewPoisson: %v", err)
	}
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Servers: 8,
		Arrival: arrival,
		Fanout:  fan,
		Classes: classes,
	}, 7)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	res, err := Run(Config{
		Servers:      8,
		Spec:         core.TFEDFQ,
		ServiceTimes: []dist.Distribution{svc},
		Generator:    gen,
		Classes:      classes,
		Deadliner:    dl,
		Queries:      queries,
		Warmup:       100,
		Seed:         8,
		Shards:       4,
		Arena:        arena,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	arena.Release(res)
}

// TestShardedSteadyStateAllocations pins the sharded core's per-shard
// steady state: with a warmed arena, a sharded run's allocation count is
// per-run setup only (generator, RNG, channels, goroutine spawns) and
// does not scale with the number of queries. Exchange batches, bundles,
// per-shard tasks, shard event heaps and the merger's state ring all
// recycle through the arena's sharded state.
func TestShardedSteadyStateAllocations(t *testing.T) {
	classes, err := workload.SingleClass(10)
	if err != nil {
		t.Fatalf("SingleClass: %v", err)
	}
	svc := dist.Exponential{M: 1}
	est, err := core.NewHomogeneousStaticTailEstimator(svc, 8)
	if err != nil {
		t.Fatalf("NewHomogeneousStaticTailEstimator: %v", err)
	}
	dl, err := core.NewDeadliner(core.TFEDFQ, est, classes)
	if err != nil {
		t.Fatalf("NewDeadliner: %v", err)
	}
	arena := NewArena()
	// Warm at the largest size so the exchange pools, shard heaps,
	// freelists and recorders reach their high-water capacity.
	steadyShardedRun(t, arena, dl, classes, svc, 4000)

	small := testing.AllocsPerRun(5, func() { steadyShardedRun(t, arena, dl, classes, svc, 1000) })
	large := testing.AllocsPerRun(5, func() { steadyShardedRun(t, arena, dl, classes, svc, 4000) })
	// 3000 extra queries × 2 tasks each: a per-query or per-task
	// allocation anywhere in the pump/shard/merger pipeline would put
	// thousands of allocations in this delta. The allowance covers only
	// window-count-dependent incidentals (the larger run crosses more
	// window barriers, which must still allocate nothing per window).
	if large-small > 64 {
		t.Errorf("sharded allocations scale with query count: %0.f/run at 1000 queries, %0.f/run at 4000 (delta %0.f, want <= 64)",
			small, large, large-small)
	}
}
