package cluster

import (
	"testing"

	"tailguard/internal/control"
	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/fault"
	"tailguard/internal/workload"
)

// controlledConfig builds a small overloaded run with the full control
// plane attached: admission scale, credit gate, class buckets, and an
// autoscaling active set wired into the generator's placement.
func controlledConfig(t *testing.T, queries int, seed int64) (Config, *control.Controller) {
	t.Helper()
	const servers = 8
	classes, err := workload.SingleClass(20)
	if err != nil {
		t.Fatalf("SingleClass: %v", err)
	}
	// Base load ~0.4 per server, flash crowd at t=200ms pushing ~4x.
	arr, err := workload.NewFlashCrowd(0.8, 3.2, 200, 50, 400, 100)
	if err != nil {
		t.Fatalf("NewFlashCrowd: %v", err)
	}
	fan, err := workload.NewFixed(2)
	if err != nil {
		t.Fatalf("NewFixed: %v", err)
	}
	ctl, err := control.New(control.Config{
		TickMs:      10,
		WindowMs:    100,
		TargetRatio: 0.05,
		MinCredits:  4,
		MaxCredits:  64,
		ClassRates:  []float64{2},
		MinServers:  4,
		MaxServers:  servers,
		WarmupMs:    30,
	})
	if err != nil {
		t.Fatalf("control.New: %v", err)
	}
	if err := ctl.InitServers(servers, 4); err != nil {
		t.Fatalf("InitServers: %v", err)
	}
	gate, err := workload.NewCreditGate(ctl.Credits())
	if err != nil {
		t.Fatalf("NewCreditGate: %v", err)
	}
	ctl.AttachGate(gate)
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Servers:   servers,
		Arrival:   arr,
		Fanout:    fan,
		Classes:   classes,
		Placement: ctl.Active().Place,
	}, seed)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	svc := dist.Deterministic{V: 4}
	est, err := core.NewHomogeneousStaticTailEstimator(svc, servers)
	if err != nil {
		t.Fatalf("estimator: %v", err)
	}
	dl, err := core.NewDeadliner(core.TFEDFQ, est, classes)
	if err != nil {
		t.Fatalf("NewDeadliner: %v", err)
	}
	adm, err := core.NewAdmissionController(100, 0.05)
	if err != nil {
		t.Fatalf("NewAdmissionController: %v", err)
	}
	return Config{
		Servers:      servers,
		Spec:         core.TFEDFQ,
		ServiceTimes: []dist.Distribution{svc},
		Generator:    gen,
		Classes:      classes,
		Deadliner:    dl,
		Queries:      queries,
		Seed:         seed + 1,
		Admission:    adm,
		Control:      ctl,
	}, ctl
}

// TestControlPlaneDeterministic runs the same controlled flash crowd
// twice and requires bit-identical results and decision traces — the
// control plane must advance only on the simulated clock and the run's
// seeded randomness.
func TestControlPlaneDeterministic(t *testing.T) {
	cfgA, ctlA := controlledConfig(t, 400, 7)
	resA, err := Run(cfgA)
	if err != nil {
		t.Fatalf("Run A: %v", err)
	}
	cfgB, ctlB := controlledConfig(t, 400, 7)
	resB, err := Run(cfgB)
	if err != nil {
		t.Fatalf("Run B: %v", err)
	}
	if err := resA.Equal(resB); err != nil {
		t.Fatalf("controlled runs diverge: %v", err)
	}
	da, db := ctlA.Decisions(), ctlB.Decisions()
	if len(da) == 0 || len(da) != len(db) {
		t.Fatalf("decision traces: %d vs %d entries", len(da), len(db))
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("decision %d diverges: %+v vs %+v", i, da[i], db[i])
		}
	}
}

// TestControlPlaneActs checks that the attached loops actually engage on
// an overloaded run: the controller ticks, credits bound the in-flight
// count (deferring the generator at least once), and every credit is
// returned by the end of the run.
func TestControlPlaneActs(t *testing.T) {
	cfg, ctl := controlledConfig(t, 600, 11)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ControlTicks == 0 {
		t.Error("ControlTicks = 0, controller never ticked")
	}
	if res.ControlTicks != ctl.Ticks() {
		t.Errorf("ControlTicks = %d, controller counted %d", res.ControlTicks, ctl.Ticks())
	}
	if res.CreditDeferred == 0 {
		t.Error("CreditDeferred = 0, want the flash crowd to hit the credit gate")
	}
	if got := ctl.Gate().InFlight(); got != 0 {
		t.Errorf("gate holds %d credits after the run, want 0", got)
	}
	if ctl.Scale() >= 1 && res.Rejected == 0 && res.Throttled == 0 {
		t.Error("no control actuation visible: scale nominal, nothing rejected or throttled")
	}
	settled := res.Completed + res.Failed
	admitted := res.Admitted
	if settled != admitted {
		t.Errorf("settled %d != admitted %d", settled, admitted)
	}
	if res.Queries+res.Injected != res.Admitted+res.Rejected+res.Throttled {
		t.Errorf("query accounting: %d generated+injected vs %d admitted + %d rejected + %d throttled",
			res.Queries+res.Injected, res.Admitted, res.Rejected, res.Throttled)
	}
}

// TestControlValidation covers the control plane's config interactions:
// sharded runs reject it, and it is mutually exclusive with degraded
// admission (both actuate the admission threshold scale).
func TestControlValidation(t *testing.T) {
	cfg, _ := controlledConfig(t, 10, 3)
	cfg.Shards = 2
	if _, err := Run(cfg); err == nil {
		t.Error("sharded run with Control succeeded, want error")
	}
	cfg, _ = controlledConfig(t, 10, 3)
	cfg.Resilience = fault.Resilience{DegradedAdmission: true}
	if _, err := Run(cfg); err == nil {
		t.Error("Control + DegradedAdmission succeeded, want error")
	}
}
