package cluster

import (
	"testing"

	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/obs"
	"tailguard/internal/workload"
)

// obsRun is steadyRun with the observability plane attached.
func obsRun(t *testing.T, arena *Arena, dl *core.Deadliner,
	classes *workload.ClassSet, svc dist.Distribution, queries int,
	tr *obs.Tracer, attrib *obs.Attributor) {
	t.Helper()
	fan, err := workload.NewFixed(2)
	if err != nil {
		t.Fatalf("NewFixed: %v", err)
	}
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Servers: 4,
		Arrival: fixedGap{gap: 2},
		Fanout:  fan,
		Classes: classes,
	}, 7)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	res, err := Run(Config{
		Servers:      4,
		Spec:         core.TFEDFQ,
		ServiceTimes: []dist.Distribution{svc},
		Generator:    gen,
		Classes:      classes,
		Deadliner:    dl,
		Queries:      queries,
		Warmup:       100,
		Seed:         8,
		Arena:        arena,
		Obs:          tr,
		Attribution:  attrib,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	arena.Release(res)
}

func obsAllocFixture(t *testing.T) (*core.Deadliner, *workload.ClassSet, dist.Distribution) {
	t.Helper()
	classes, err := workload.SingleClass(10)
	if err != nil {
		t.Fatalf("SingleClass: %v", err)
	}
	svc := dist.Deterministic{V: 1}
	est, err := core.NewHomogeneousStaticTailEstimator(svc, 4)
	if err != nil {
		t.Fatalf("NewHomogeneousStaticTailEstimator: %v", err)
	}
	dl, err := core.NewDeadliner(core.TFEDFQ, est, classes)
	if err != nil {
		t.Fatalf("NewDeadliner: %v", err)
	}
	return dl, classes, svc
}

// TestNilObsRunAddsZeroAllocations pins the nil-sink contract at the run
// level: the instrumented simulator with tracing and attribution disabled
// allocates exactly as much as before the obs hooks existed — the delta
// against a run with no obs fields set at all is zero.
func TestNilObsRunAddsZeroAllocations(t *testing.T) {
	dl, classes, svc := obsAllocFixture(t)

	base := NewArena()
	steadyRun(t, base, dl, classes, svc, 2000) // warm
	baseline := testing.AllocsPerRun(5, func() { steadyRun(t, base, dl, classes, svc, 2000) })

	nilObs := NewArena()
	obsRun(t, nilObs, dl, classes, svc, 2000, nil, nil) // warm
	withNil := testing.AllocsPerRun(5, func() { obsRun(t, nilObs, dl, classes, svc, 2000, nil, nil) })

	if withNil > baseline {
		t.Errorf("nil obs sink adds allocations: %0.f/run with nil tracer vs %0.f/run baseline", withNil, baseline)
	}
}

// TestEnabledObsRunStaysAllocationFree goes further than the contract
// requires: even with tracing ON (preallocated ring sink, no sampling) and
// attribution ON, a warmed arena run's allocations do not scale with the
// query count — events are value types into a fixed ring and the
// attributor's accumulators reach capacity during warmup.
func TestEnabledObsRunStaysAllocationFree(t *testing.T) {
	dl, classes, svc := obsAllocFixture(t)
	ring, err := obs.NewRing(4096)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	tr := obs.NewTracer(obs.TracerConfig{Sink: ring})
	attrib := obs.NewAttributor()

	arena := NewArena()
	obsRun(t, arena, dl, classes, svc, 4000, tr, attrib) // warm

	small := testing.AllocsPerRun(5, func() {
		ring.Reset()
		attrib.Reset()
		obsRun(t, arena, dl, classes, svc, 1000, tr, attrib)
	})
	large := testing.AllocsPerRun(5, func() {
		ring.Reset()
		attrib.Reset()
		obsRun(t, arena, dl, classes, svc, 4000, tr, attrib)
	})
	// 3000 extra queries × (1 arrival + 1 deadline + 2 enqueues +
	// 2 dispatches + 2 service ends + 1 done) ≈ 27k extra events: any
	// per-event allocation would dwarf the per-run setup budget.
	if large-small > 64 {
		t.Errorf("allocations scale with traced query count: %0.f/run at 1000 queries, %0.f/run at 4000 (delta %0.f, want <= 64)",
			small, large, large-small)
	}
	if ring.Recorded() == 0 {
		t.Error("tracer recorded nothing; the measurement exercised a disabled path")
	}
	if attrib.Report().Total == 0 {
		t.Error("attributor observed nothing; the measurement exercised a disabled path")
	}
}
