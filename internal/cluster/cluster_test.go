package cluster

import (
	"math"
	"math/rand"
	"testing"

	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/workload"
)

// fixedGap is a deterministic arrival process for exact-latency tests.
type fixedGap struct{ gap float64 }

func (f fixedGap) NextGap(*rand.Rand) float64 { return f.gap }
func (f fixedGap) Rate() float64              { return 1 / f.gap }

// buildConfig assembles a config around the given knobs with sane defaults.
func buildConfig(t *testing.T, spec core.Spec, svc dist.Distribution, servers int,
	arrival workload.ArrivalProcess, fanout workload.FanoutDist, classes *workload.ClassSet,
	queries, warmup int, seed int64) Config {
	t.Helper()
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Servers: servers,
		Arrival: arrival,
		Fanout:  fanout,
		Classes: classes,
	}, seed)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	est, err := core.NewHomogeneousStaticTailEstimator(svc, servers)
	if err != nil {
		t.Fatalf("NewHomogeneousStaticTailEstimator: %v", err)
	}
	dl, err := core.NewDeadliner(spec, est, classes)
	if err != nil {
		t.Fatalf("NewDeadliner: %v", err)
	}
	return Config{
		Servers:      servers,
		Spec:         spec,
		ServiceTimes: []dist.Distribution{svc},
		Generator:    gen,
		Classes:      classes,
		Deadliner:    dl,
		Queries:      queries,
		Warmup:       warmup,
		Seed:         seed + 1,
	}
}

func TestValidation(t *testing.T) {
	classes, _ := workload.SingleClass(1)
	svc := dist.Deterministic{V: 1}
	fan, _ := workload.NewFixed(1)
	good := buildConfig(t, core.FIFO, svc, 1, fixedGap{gap: 10}, fan, classes, 10, 0, 1)

	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no servers", func(c *Config) { c.Servers = 0 }},
		{"bad service count", func(c *Config) { c.ServiceTimes = []dist.Distribution{svc, svc, svc} }},
		{"nil service", func(c *Config) { c.ServiceTimes = []dist.Distribution{nil} }},
		{"nil generator", func(c *Config) { c.Generator = nil }},
		{"nil classes", func(c *Config) { c.Classes = nil }},
		{"nil deadliner", func(c *Config) { c.Deadliner = nil }},
		{"no queries", func(c *Config) { c.Queries = 0 }},
		{"warmup too large", func(c *Config) { c.Warmup = 10 }},
		{"negative warmup", func(c *Config) { c.Warmup = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good
			tc.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("Run succeeded, want error")
			}
		})
	}
}

// TestSingleServerExactLatencies verifies the M/D/1-style bookkeeping by
// hand: deterministic 1 ms service, arrivals every 0.1 ms, one server.
func TestSingleServerExactLatencies(t *testing.T) {
	classes, _ := workload.SingleClass(100)
	fan, _ := workload.NewFixed(1)
	cfg := buildConfig(t, core.FIFO, dist.Deterministic{V: 1}, 1,
		fixedGap{gap: 0.1}, fan, classes, 3, 0, 1)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Arrivals at 0.1, 0.2, 0.3; completions at 1.1, 2.1, 3.1;
	// latencies 1.0, 1.9, 2.8.
	if res.Completed != 3 {
		t.Fatalf("Completed = %d, want 3", res.Completed)
	}
	got := res.Overall.Samples()
	want := []float64{1.0, 1.9, 2.8}
	if len(got) != len(want) {
		t.Fatalf("latencies = %v, want %v", got, want)
	}
	// Overall may be sorted after quantile queries; compare as multisets
	// by sorting expectations (already ascending).
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("latency[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Busy 3 ms over duration 3.1 ms, one server.
	if math.Abs(res.Utilization-3.0/3.1) > 1e-9 {
		t.Errorf("Utilization = %v, want %v", res.Utilization, 3.0/3.1)
	}
	if res.Duration != 3.1 {
		t.Errorf("Duration = %v, want 3.1", res.Duration)
	}
}

func TestConservation(t *testing.T) {
	classes, _ := workload.TwoClasses(1, 1.5)
	fan, _ := workload.NewInverseProportional([]int{1, 10, 100})
	arr, _ := workload.NewPoisson(0.5)
	w := dist.MustTailbenchWorkload("masstree")
	for _, spec := range core.Specs() {
		cfg := buildConfig(t, spec, w.ServiceTime, 100, arr, fan, classes, 2000, 100, 7)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: Run: %v", spec.Name, err)
		}
		if res.Queries != 2000 {
			t.Errorf("%s: Queries = %d, want 2000", spec.Name, res.Queries)
		}
		if res.Admitted != 2000 || res.Rejected != 0 {
			t.Errorf("%s: Admitted/Rejected = %d/%d, want 2000/0", spec.Name, res.Admitted, res.Rejected)
		}
		if res.Completed != 2000 {
			t.Errorf("%s: Completed = %d, want 2000", spec.Name, res.Completed)
		}
		if got := res.Overall.Count(); got != 1900 {
			t.Errorf("%s: counted %d post-warmup queries, want 1900", spec.Name, got)
		}
		if res.ByType.Total() != 1900 {
			t.Errorf("%s: ByType total = %d, want 1900", spec.Name, res.ByType.Total())
		}
	}
}

func TestUtilizationTracksOfferedLoad(t *testing.T) {
	const load = 0.4
	w := dist.MustTailbenchWorkload("masstree")
	classes, _ := workload.SingleClass(10)
	fan, _ := workload.NewInverseProportional([]int{1, 10, 100})
	rate, err := workload.RateForLoad(load, 100, fan.MeanTasks(), w.ServiceTime.Mean())
	if err != nil {
		t.Fatalf("RateForLoad: %v", err)
	}
	arr, _ := workload.NewPoisson(rate)
	cfg := buildConfig(t, core.FIFO, w.ServiceTime, 100, arr, fan, classes, 50000, 1000, 3)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Abs(res.Utilization-load)/load > 0.05 {
		t.Errorf("Utilization = %v, want ~%v", res.Utilization, load)
	}
	if math.Abs(res.OfferedLoad-load)/load > 0.05 {
		t.Errorf("OfferedLoad = %v, want ~%v", res.OfferedLoad, load)
	}
	// Work-conserving, under capacity: everything admitted completes.
	if res.Completed != res.Admitted {
		t.Errorf("Completed %d != Admitted %d", res.Completed, res.Admitted)
	}
}

func TestFIFOHasNoDeadlineMisses(t *testing.T) {
	w := dist.MustTailbenchWorkload("masstree")
	classes, _ := workload.SingleClass(1)
	fan, _ := workload.NewFixed(10)
	arr, _ := workload.NewPoisson(0.2)
	cfg := buildConfig(t, core.FIFO, w.ServiceTime, 100, arr, fan, classes, 2000, 0, 5)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.TaskMissRatio != 0 {
		t.Errorf("FIFO TaskMissRatio = %v, want 0 (+Inf deadlines)", res.TaskMissRatio)
	}
}

func TestDeterminism(t *testing.T) {
	w := dist.MustTailbenchWorkload("shore")
	classes, _ := workload.TwoClasses(6, 1.5)
	fan, _ := workload.NewInverseProportional([]int{1, 10, 100})
	run := func() *Result {
		arr, _ := workload.NewPoisson(0.3)
		cfg := buildConfig(t, core.TFEDFQ, w.ServiceTime, 100, arr, fan, classes, 5000, 500, 42)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	pa, _ := a.Overall.P99()
	pb, _ := b.Overall.P99()
	if pa != pb || a.Duration != b.Duration || a.Utilization != b.Utilization {
		t.Errorf("runs diverged: p99 %v/%v duration %v/%v util %v/%v",
			pa, pb, a.Duration, b.Duration, a.Utilization, b.Utilization)
	}
}

// TestTailGuardBeatsFIFOOnHighFanoutTail is the paper's core qualitative
// claim at the micro level: under a mixed-fanout single-class workload at
// moderate load, TailGuard's deadline ordering must not let high-fanout
// queries fare worse than under FIFO.
func TestTailGuardBeatsFIFOOnHighFanoutTail(t *testing.T) {
	w := dist.MustTailbenchWorkload("masstree")
	classes, _ := workload.SingleClass(0.8)
	fanouts := []int{1, 10, 100}
	const load = 0.30
	run := func(spec core.Spec, seed int64) *Result {
		fan, _ := workload.NewInverseProportional(fanouts)
		rate, _ := workload.RateForLoad(load, 100, fan.MeanTasks(), w.ServiceTime.Mean())
		arr, _ := workload.NewPoisson(rate)
		cfg := buildConfig(t, spec, w.ServiceTime, 100, arr, fan, classes, 120000, 5000, seed)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run(%s): %v", spec.Name, err)
		}
		return res
	}
	tg := run(core.TFEDFQ, 1)
	ff := run(core.FIFO, 1)
	p99 := func(r *Result, fanout int) float64 {
		rec := r.ByFanout.Recorder(fanout)
		if rec == nil {
			t.Fatalf("no samples for fanout %d", fanout)
		}
		v, err := rec.P99()
		if err != nil {
			t.Fatalf("P99: %v", err)
		}
		return v
	}
	tg100, ff100 := p99(tg, 100), p99(ff, 100)
	if tg100 > ff100*1.05 {
		t.Errorf("TailGuard fanout-100 p99 = %v worse than FIFO %v", tg100, ff100)
	}
	// And TailGuard achieves it by slowing the over-served fanout-1 type.
	tg1, ff1 := p99(tg, 1), p99(ff, 1)
	if tg1 < ff1 {
		t.Logf("note: TailGuard fanout-1 p99 %v < FIFO %v (unexpected but not fatal)", tg1, ff1)
	}
}

func TestAdmissionControlUnderOverload(t *testing.T) {
	w := dist.MustTailbenchWorkload("masstree")
	classes, _ := workload.SingleClass(1.0)
	fan, _ := workload.NewFixed(100)
	rate, _ := workload.RateForLoad(1.2, 100, fan.MeanTasks(), w.ServiceTime.Mean())
	arr, _ := workload.NewPoisson(rate)
	cfg := buildConfig(t, core.TFEDFQ, w.ServiceTime, 100, arr, fan, classes, 4000, 200, 11)
	// Window spans roughly 200 queries at this arrival rate.
	adm, err := core.NewAdmissionController(200/rate, 0.017)
	if err != nil {
		t.Fatalf("NewAdmissionController: %v", err)
	}
	cfg.Admission = adm
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Rejected == 0 {
		t.Error("overload run rejected no queries")
	}
	if res.Admitted+res.Rejected != res.Queries {
		t.Errorf("admitted %d + rejected %d != generated %d", res.Admitted, res.Rejected, res.Queries)
	}
	if res.Utilization > 1.0 {
		t.Errorf("Utilization = %v > 1", res.Utilization)
	}
	// The accepted load must be meaningfully below the offered overload.
	if res.Utilization > res.OfferedLoad {
		t.Errorf("accepted %v above offered %v", res.Utilization, res.OfferedLoad)
	}
}

func TestOnlineEstimatorIntegration(t *testing.T) {
	// Run with an updatable estimator seeded from a deliberately wrong
	// offline model; online updates must pull x99 estimates toward the
	// true service distribution.
	w := dist.MustTailbenchWorkload("masstree")
	wrongSeed, _ := dist.NewExponential(10) // 50x slower than reality
	est, err := core.NewTailEstimator(20, wrongSeed, 1000, 2000)
	if err != nil {
		t.Fatalf("NewTailEstimator: %v", err)
	}
	classes, _ := workload.SingleClass(1)
	dl, err := core.NewDeadliner(core.TFEDFQ, est, classes)
	if err != nil {
		t.Fatalf("NewDeadliner: %v", err)
	}
	// Full fanout: every query observes every server, so each server's
	// online CDF receives one sample per query and the wrong seed decays
	// away within a few thousand queries.
	fan, _ := workload.NewFixed(20)
	arr, _ := workload.NewPoisson(0.5)
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Servers: 20, Arrival: arr, Fanout: fan, Classes: classes,
	}, 3)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	before, _ := est.XPuFanout(0.99, 20)
	res, err := Run(Config{
		Servers:      20,
		Spec:         core.TFEDFQ,
		ServiceTimes: []dist.Distribution{w.ServiceTime},
		Generator:    gen,
		Classes:      classes,
		Deadliner:    dl,
		Queries:      30000,
		Warmup:       100,
		Seed:         4,
		Estimator:    est,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Completed != 30000 {
		t.Fatalf("Completed = %d", res.Completed)
	}
	after, err := est.XPuFanout(0.99, 20)
	if err != nil {
		t.Fatalf("XPuFanout: %v", err)
	}
	trueX, _ := dist.HomogeneousQueryQuantile(w.ServiceTime, 20, 0.99)
	if math.Abs(after-trueX) >= math.Abs(before-trueX) {
		t.Errorf("online updating did not improve estimate: before=%v after=%v true=%v", before, after, trueX)
	}
	if math.Abs(after-trueX)/trueX > 0.5 {
		t.Errorf("online estimate %v still far from true %v", after, trueX)
	}
}

func TestHeterogeneousDeadlinesPath(t *testing.T) {
	fast, _ := dist.NewExponential(0.1)
	slow, _ := dist.NewExponential(0.4)
	perServer := []dist.Distribution{fast, slow, fast, slow}
	est, err := core.NewStaticTailEstimator(perServer)
	if err != nil {
		t.Fatalf("NewStaticTailEstimator: %v", err)
	}
	classes, _ := workload.SingleClass(5)
	dl, err := core.NewDeadliner(core.TFEDFQ, est, classes)
	if err != nil {
		t.Fatalf("NewDeadliner: %v", err)
	}
	fan, _ := workload.NewFixed(2)
	arr, _ := workload.NewPoisson(1)
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Servers: 4, Arrival: arr, Fanout: fan, Classes: classes,
	}, 5)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	res, err := Run(Config{
		Servers:                4,
		Spec:                   core.TFEDFQ,
		ServiceTimes:           perServer,
		Generator:              gen,
		Classes:                classes,
		Deadliner:              dl,
		Queries:                5000,
		Warmup:                 100,
		Seed:                   6,
		HeterogeneousDeadlines: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Completed != 5000 {
		t.Errorf("Completed = %d, want 5000", res.Completed)
	}
	ok, margin, err := res.MeetsSLOs(classes, 100)
	if err != nil {
		t.Fatalf("MeetsSLOs: %v", err)
	}
	if !ok {
		t.Errorf("generous SLO violated (margin %v)", margin)
	}
}

func TestMeetsSLOs(t *testing.T) {
	w := dist.MustTailbenchWorkload("masstree")
	fan, _ := workload.NewFixed(10)
	arr, _ := workload.NewPoisson(0.5)
	run := func(sloMs float64) (*Result, *workload.ClassSet) {
		classes, _ := workload.SingleClass(sloMs)
		cfg := buildConfig(t, core.TFEDFQ, w.ServiceTime, 100, arr, fan, classes, 5000, 200, 8)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res, classes
	}
	res, classes := run(50) // generous
	ok, margin, err := res.MeetsSLOs(classes, 100)
	if err != nil {
		t.Fatalf("MeetsSLOs: %v", err)
	}
	if !ok || margin > 1 {
		t.Errorf("generous SLO: ok=%v margin=%v, want pass", ok, margin)
	}
	res2, classes2 := run(0.05) // impossible: below even one service time
	ok2, margin2, err := res2.MeetsSLOs(classes2, 100)
	if err != nil {
		t.Fatalf("MeetsSLOs: %v", err)
	}
	if ok2 || margin2 <= 1 {
		t.Errorf("impossible SLO: ok=%v margin=%v, want fail", ok2, margin2)
	}
	if _, _, err := res.MeetsSLOs(nil, 1); err == nil {
		t.Error("MeetsSLOs(nil) succeeded, want error")
	}
}
