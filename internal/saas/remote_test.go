package saas

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"tailguard/internal/core"
)

func testManifest(t *testing.T) (*Manifest, []*EdgeNode) {
	t.Helper()
	start, end := DefaultStoreSpan()
	nodes := make([]*EdgeNode, TotalNodes)
	refs := make([]NodeRef, TotalNodes)
	for i := range nodes {
		cluster, err := NodeCluster(i)
		if err != nil {
			t.Fatalf("NodeCluster: %v", err)
		}
		delay, err := ClusterDelayModel(cluster, 50)
		if err != nil {
			t.Fatalf("ClusterDelayModel: %v", err)
		}
		store, err := NewStore(StoreConfig{Start: start, End: end, Interval: 24 * time.Hour, Node: i})
		if err != nil {
			t.Fatalf("NewStore: %v", err)
		}
		n, err := NewEdgeNode(EdgeConfig{ID: i, Store: store, Delay: delay, Seed: int64(i)})
		if err != nil {
			t.Fatalf("NewEdgeNode: %v", err)
		}
		t.Cleanup(func() { _ = n.Close() })
		nodes[i] = n
		refs[i] = n.Ref()
	}
	return &Manifest{
		Refs:        refs,
		StoreFirst:  start.Unix(),
		StoreLast:   end.Add(-24 * time.Hour).Unix(),
		Compression: 50,
	}, nodes
}

func TestManifestSaveLoadRoundTrip(t *testing.T) {
	m, _ := testManifest(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := LoadManifest(&buf)
	if err != nil {
		t.Fatalf("LoadManifest: %v", err)
	}
	if len(back.Refs) != TotalNodes || back.Compression != 50 {
		t.Errorf("round trip lost data: %d refs, compression %v", len(back.Refs), back.Compression)
	}
	if back.Refs[9].Cluster != WetLab {
		t.Errorf("ref 9 cluster = %s, want wet-lab", back.Refs[9].Cluster)
	}
}

func TestManifestValidation(t *testing.T) {
	m, _ := testManifest(t)
	cases := []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"too few refs", func(m *Manifest) { m.Refs = m.Refs[:5] }},
		{"unordered refs", func(m *Manifest) { m.Refs[0], m.Refs[1] = m.Refs[1], m.Refs[0] }},
		{"missing url", func(m *Manifest) { m.Refs[3].HTTPURL = "" }},
		{"inverted span", func(m *Manifest) { m.StoreLast = m.StoreFirst }},
		{"bad compression", func(m *Manifest) { m.Compression = 0.5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := *m
			c.Refs = append([]NodeRef(nil), m.Refs...)
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("Validate succeeded, want error")
			}
		})
	}
	if _, err := LoadManifest(strings.NewReader("not json")); err == nil {
		t.Error("LoadManifest(garbage) succeeded, want error")
	}
}

// TestRunWorkloadAgainstManifest exercises the remote-driving path against
// in-process nodes addressed purely by their manifest, over both wire
// protocols.
func TestRunWorkloadAgainstManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("live workload run in -short mode")
	}
	m, _ := testManifest(t)
	for _, transport := range []TransportKind{TCPTransport, HTTPTransport} {
		transport := transport
		t.Run(string(transport), func(t *testing.T) {
			res, err := RunWorkload(WorkloadRunConfig{
				Manifest:             m,
				Spec:                 core.TFEDFQ,
				Load:                 0.25,
				Queries:              150,
				Warmup:               20,
				Seed:                 4,
				EstimatorSeedSamples: 200,
				Transport:            transport,
			})
			if err != nil {
				t.Fatalf("RunWorkload: %v", err)
			}
			if len(res.Errors) != 0 {
				t.Fatalf("errors: %v", res.Errors)
			}
			if res.ByClass[ClassA].Count == 0 {
				t.Error("no class A samples")
			}
			if len(res.PerCluster) != 4 {
				t.Errorf("clusters measured = %d, want 4", len(res.PerCluster))
			}
		})
	}
}

func TestRunWorkloadValidation(t *testing.T) {
	m, _ := testManifest(t)
	good := WorkloadRunConfig{Manifest: m, Spec: core.FIFO, Load: 0.3, Queries: 10, Warmup: 1}
	cases := []struct {
		name   string
		mutate func(*WorkloadRunConfig)
	}{
		{"nil manifest", func(c *WorkloadRunConfig) { c.Manifest = nil }},
		{"bad load", func(c *WorkloadRunConfig) { c.Load = 0 }},
		{"no queries", func(c *WorkloadRunConfig) { c.Queries = 0 }},
		{"warmup too big", func(c *WorkloadRunConfig) { c.Warmup = 10 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good
			tc.mutate(&cfg)
			if _, err := RunWorkload(cfg); err == nil {
				t.Error("RunWorkload succeeded, want error")
			}
		})
	}
}
