package saas

import (
	"sync"
	"time"
)

// sleeper provides millisecond-accurate delay injection on systems where
// time.Sleep has a coarse floor (container/VM timer slack commonly adds
// ~1 ms plus a few percent proportional overshoot). It calibrates the
// model actual ≈ add + (1+prop)*requested once, then inverts it.
//
// Requests below the achievable floor are realized probabilistically: the
// node sleeps the minimal achievable time with probability d/floor and
// returns immediately otherwise, preserving the injected delay's mean —
// the quantity load calculations depend on.
type sleeper struct {
	mu   sync.Mutex
	done bool    // guarded by mu
	add  float64 // guarded by mu; additive overshoot (ms)
	prop float64 // guarded by mu; proportional overshoot
}

// defaultSleeper is shared by all edge nodes. Calibration MUST run while
// the process is otherwise idle: measuring under load inflates the model
// and makes later sleeps undershoot. RunTestbed calls Recalibrate before
// offering load; the lazy path exists only for direct EdgeNode users.
var defaultSleeper sleeper

// Recalibrate measures the overshoot model now. Call it while idle.
func (s *sleeper) Recalibrate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calibrateLocked()
	s.done = true
}

// calibrateLocked measures the sleep overshoot model; callers hold mu.
func (s *sleeper) calibrateLocked() {
	measure := func(d time.Duration, n int) float64 {
		var total time.Duration
		for i := 0; i < n; i++ {
			t0 := time.Now()
			time.Sleep(d)
			total += time.Since(t0)
		}
		return float64(total) / float64(n) / float64(time.Millisecond)
	}
	// Warm the path, then fit two points.
	measure(200*time.Microsecond, 3)
	a1 := measure(500*time.Microsecond, 8) // ~floor
	a2 := measure(5*time.Millisecond, 8)
	slope := (a2 - a1) / 4.5
	if slope < 1 {
		slope = 1
	}
	s.prop = slope - 1
	s.add = a1 - slope*0.5
	if s.add < 0 {
		s.add = 0
	}
}

// Sleep blocks for approximately ms milliseconds. u must be a uniform
// random variate in [0, 1) supplied by the caller (it drives the
// probabilistic branch for sub-floor requests).
func (s *sleeper) Sleep(ms float64, u float64) {
	if ms <= 0 {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.calibrateLocked()
		s.done = true
	}
	add, prop := s.add, s.prop
	s.mu.Unlock()
	// Smallest request worth issuing: time.Sleep(1ms) lands near the
	// floor; anything shorter behaves the same.
	minActual := add + (1+prop)*0.2
	if ms < minActual {
		// Probabilistic shaping: mean preserved.
		if u < ms/minActual {
			time.Sleep(200 * time.Microsecond)
		}
		return
	}
	req := (ms - add) / (1 + prop)
	// Even with a polluted calibration (measured under load), never
	// undershoot below 60% of the requested delay: late is recoverable
	// noise, early silently deflates the injected service times.
	if floor := 0.6 * ms; req < floor {
		req = floor
	}
	time.Sleep(time.Duration(req * float64(time.Millisecond)))
}
