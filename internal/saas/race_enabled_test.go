//go:build race

package saas

// raceEnabled reports whether this test binary was built with the race
// detector. Race instrumentation slows execution 2-20x, which breaks the
// testbed's calibrated real-time delay injection: load and latency
// measurements are still collected, but wall-clock accuracy assertions
// would fail for reasons unrelated to correctness.
const raceEnabled = true
