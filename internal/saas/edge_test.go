package saas

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"tailguard/internal/dist"
)

func testEdge(t *testing.T, id int) *EdgeNode {
	t.Helper()
	n, err := NewEdgeNode(EdgeConfig{
		ID:    id,
		Store: testStore(t, id),
		Delay: dist.Deterministic{V: 0},
		Seed:  int64(id),
	})
	if err != nil {
		t.Fatalf("NewEdgeNode: %v", err)
	}
	t.Cleanup(func() {
		if err := n.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return n
}

func TestEdgeNodeHealthz(t *testing.T) {
	n := testEdge(t, 0)
	resp, err := http.Get(n.URL() + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %s", resp.Status)
	}
	if got := n.Cluster(); got != ServerRoom {
		t.Errorf("Cluster() = %s, want server-room", got)
	}
	if got := n.ID(); got != 0 {
		t.Errorf("ID() = %d, want 0", got)
	}
}

func TestEdgeNodeTaskRoundTrip(t *testing.T) {
	n := testEdge(t, 9) // wet-lab node
	first, _ := testStore(t, 9).Span()
	req := TaskRequest{QueryID: 42, TaskID: 3, FromTs: first, ToTs: first + 2*24*3600}
	body, _ := json.Marshal(req)
	resp, err := http.Post(n.URL()+"/task", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /task: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("task status = %s", resp.Status)
	}
	var tr TaskResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if tr.QueryID != 42 || tr.TaskID != 3 || tr.Node != 9 {
		t.Errorf("response identity = %+v", tr)
	}
	// 2 days at 6h interval = 8 records.
	if len(tr.Records) != 8 {
		t.Errorf("got %d records, want 8", len(tr.Records))
	}
	if tr.ServiceMs != 0 {
		t.Errorf("ServiceMs = %v with zero-delay model", tr.ServiceMs)
	}
}

func TestEdgeNodeBadRequest(t *testing.T) {
	n := testEdge(t, 1)
	resp, err := http.Post(n.URL()+"/task", "application/json", bytes.NewReader([]byte("not json")))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad-body status = %s, want 400", resp.Status)
	}
	// Inverted range.
	body, _ := json.Marshal(TaskRequest{FromTs: 100, ToTs: 50})
	resp2, err := http.Post(n.URL()+"/task", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("inverted-range status = %s, want 400", resp2.Status)
	}
}

func TestEdgeNodeValidation(t *testing.T) {
	if _, err := NewEdgeNode(EdgeConfig{ID: 99, Store: testStore(t, 0), Delay: dist.Deterministic{V: 0}}); err == nil {
		t.Error("out-of-range node ID succeeded, want error")
	}
	if _, err := NewEdgeNode(EdgeConfig{ID: 0, Delay: dist.Deterministic{V: 0}}); err == nil {
		t.Error("nil store succeeded, want error")
	}
	if _, err := NewEdgeNode(EdgeConfig{ID: 0, Store: testStore(t, 0)}); err == nil {
		t.Error("nil delay succeeded, want error")
	}
}
