package saas

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/obs"
)

// TestbedConfig configures one live testbed run.
type TestbedConfig struct {
	// Spec selects the queuing policy.
	Spec core.Spec
	// Load is the target Server-room cluster utilization (the x-axis of
	// Fig. 9 b-d).
	Load float64
	// Queries to issue; Warmup of them are excluded from statistics.
	Queries int
	Warmup  int
	// Compression divides every delay and SLO (>= 1). 1 reproduces the
	// paper's real-time scale; 20 runs ~20x faster. Default 20.
	Compression float64
	// RecordInterval spaces the synthetic sensing records (default 1h;
	// tests may coarsen to cut memory).
	RecordInterval time.Duration
	// Seed drives all randomness.
	Seed int64
	// EstimatorSeedSamples seeds each node's online CDF from its
	// cluster's calibrated model (offline estimation; default 4000).
	EstimatorSeedSamples int
	// SharedStores, when set, reuses the given per-node stores instead of
	// generating them (they are expensive); len must be TotalNodes.
	SharedStores []*Store
	// Transport selects the handler-to-edge wire protocol (default the
	// paper's HTTP/1.1; TCPTransport trades fidelity to the paper's setup
	// for lower overhead on small machines).
	Transport TransportKind
	// AdmissionWindowMs/AdmissionThreshold enable query admission control
	// when the window is positive (compressed ms; see core.AdmissionController).
	AdmissionWindowMs  float64
	AdmissionThreshold float64
	// MetricsAddr, when non-empty, serves the handler's observability
	// endpoints (/metrics Prometheus exposition, /debug/queues JSON) on
	// this address for the duration of the run (e.g. "127.0.0.1:9090").
	MetricsAddr string
	// Obs, if non-nil, receives handler lifecycle events (compressed ms);
	// the sink must be safe for concurrent use (obs.LockedRing).
	Obs *obs.Tracer
}

func (c *TestbedConfig) setDefaults() {
	if c.Compression == 0 {
		c.Compression = 20
	}
	if c.RecordInterval == 0 {
		c.RecordInterval = time.Hour
	}
	if c.EstimatorSeedSamples == 0 {
		c.EstimatorSeedSamples = 4000
	}
}

func (c *TestbedConfig) validate() error {
	if c.Load <= 0 || c.Load > 1.5 {
		return fmt.Errorf("saas: load %v outside (0, 1.5]", c.Load)
	}
	if c.Queries < 1 {
		return fmt.Errorf("saas: need >= 1 query, got %d", c.Queries)
	}
	if c.Warmup < 0 || c.Warmup >= c.Queries {
		return fmt.Errorf("saas: warmup %d outside [0, %d)", c.Warmup, c.Queries)
	}
	if c.Compression < 1 {
		return fmt.Errorf("saas: compression must be >= 1, got %v", c.Compression)
	}
	if c.SharedStores != nil && len(c.SharedStores) != TotalNodes {
		return fmt.Errorf("saas: shared stores must have %d entries, got %d", TotalNodes, len(c.SharedStores))
	}
	return nil
}

// ClassResult is one class's measured outcome, reported at paper scale
// (uncompressed ms).
type ClassResult struct {
	Count    int
	P99Ms    float64
	MeanMs   float64
	SLOMs    float64
	MeetsSLO bool
}

// QuantilePoint is one point of a measured CDF.
type QuantilePoint struct {
	P  float64 // cumulative probability
	Ms float64 // latency at paper scale
}

// ClusterResult is one cluster's measured task post-queuing statistics at
// paper scale (uncompressed ms).
type ClusterResult struct {
	Samples int
	MeanMs  float64
	P95Ms   float64
	P99Ms   float64
	// CDF is a quantile grid of the measured post-queuing times,
	// reproducing Fig. 9(a)'s curves.
	CDF []QuantilePoint
}

// TestbedResult aggregates one run.
type TestbedResult struct {
	Spec           string
	Load           float64 // configured target Server-room load
	MeasuredSRLoad float64 // measured Server-room occupancy
	ByClass        map[int]ClassResult
	PerCluster     map[ClusterName]ClusterResult
	TaskMissRatio  float64
	ElapsedWallMs  float64 // compressed wall-clock run time
	Queries        int
	Rejected       int // queries refused by admission control
	Errors         []error
}

// MeetsAllSLOs reports whether every class with samples met its SLO.
func (r *TestbedResult) MeetsAllSLOs() bool {
	for _, c := range r.ByClass {
		if c.Count > 0 && !c.MeetsSLO {
			return false
		}
	}
	return true
}

// BuildStores generates the per-node sensing stores once; pass the result
// as SharedStores to amortize across runs.
func BuildStores(interval time.Duration) ([]*Store, error) {
	start, end := DefaultStoreSpan()
	stores := make([]*Store, TotalNodes)
	for i := range stores {
		s, err := NewStore(StoreConfig{Start: start, End: end, Interval: interval, Node: i})
		if err != nil {
			return nil, fmt.Errorf("saas: building store %d: %w", i, err)
		}
		stores[i] = s
	}
	return stores, nil
}

// RunTestbed executes one full testbed run: boots 32 edge-node HTTP
// servers, drives the three-class workload at the target Server-room load
// in (compressed) real time, and reports per-class tails and per-cluster
// post-queuing statistics at paper scale.
func RunTestbed(cfg TestbedConfig) (*TestbedResult, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Calibrate the delay-injection sleeper while the process is idle;
	// measuring under load would make injected delays undershoot.
	defaultSleeper.Recalibrate()

	stores := cfg.SharedStores
	if stores == nil {
		var err error
		stores, err = BuildStores(cfg.RecordInterval)
		if err != nil {
			return nil, err
		}
	}

	// Per-cluster calibrated delay models at compressed scale.
	delayByCluster := make(map[ClusterName]dist.Distribution, 4)
	for _, name := range ClusterNames() {
		d, err := ClusterDelayModel(name, cfg.Compression)
		if err != nil {
			return nil, err
		}
		delayByCluster[name] = d
	}

	// Edge nodes.
	nodes := make([]*EdgeNode, TotalNodes)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				_ = n.Close()
			}
		}
	}()
	for i := range nodes {
		cluster, err := NodeCluster(i)
		if err != nil {
			return nil, err
		}
		n, err := NewEdgeNode(EdgeConfig{
			ID:    i,
			Store: stores[i],
			Delay: delayByCluster[cluster],
			Seed:  cfg.Seed + int64(i)*7919,
		})
		if err != nil {
			return nil, err
		}
		nodes[i] = n
	}

	// Offline estimation: each node's online CDF seeded from its
	// cluster's model; online updating refines it during the run. Nodes
	// in a cluster share the seed distribution, as in the paper.
	classes, err := SaSClasses(cfg.Compression)
	if err != nil {
		return nil, err
	}
	var estimator *core.TailEstimator
	if cfg.Spec.Deadline != core.DeadlineNone {
		// Seed with the server-room model and let per-node online updates
		// (and XPuServers' per-node CDFs) capture the heterogeneity; the
		// estimator constructor takes a single offline distribution, as
		// the paper's offline process measures one representative server.
		estimator, err = core.NewTailEstimator(TotalNodes, delayByCluster[ServerRoom], cfg.EstimatorSeedSamples, 0)
		if err != nil {
			return nil, err
		}
		// Refine each node's seed with its own cluster model (the paper's
		// per-cluster shared CDFs).
		for i := 0; i < TotalNodes; i++ {
			cluster, _ := NodeCluster(i)
			if cluster == ServerRoom {
				continue
			}
			model := delayByCluster[cluster]
			for s := 0; s < cfg.EstimatorSeedSamples*3; s++ {
				p := (float64(s) + 0.5) / float64(cfg.EstimatorSeedSamples*3)
				if err := estimator.Observe(i, model.Quantile(p)); err != nil {
					return nil, err
				}
			}
		}
	}

	refs := make([]NodeRef, len(nodes))
	for i, n := range nodes {
		refs[i] = n.Ref()
	}
	hc := HandlerConfig{
		Nodes:     refs,
		Spec:      cfg.Spec,
		Classes:   classes,
		Estimator: estimator,
		Warmup:    int64(cfg.Warmup),
		Transport: cfg.Transport,
		Obs:       cfg.Obs,
	}
	if cfg.AdmissionWindowMs > 0 {
		adm, err := core.NewAdmissionController(cfg.AdmissionWindowMs, cfg.AdmissionThreshold)
		if err != nil {
			return nil, err
		}
		hc.Admission = adm
	}
	handler, err := NewHandler(hc)
	if err != nil {
		return nil, err
	}

	// Live observability endpoints for the duration of the run.
	if cfg.MetricsAddr != "" {
		ln, err := net.Listen("tcp", cfg.MetricsAddr)
		if err != nil {
			return nil, fmt.Errorf("saas: metrics listener: %w", err)
		}
		_, _ = fmt.Printf("serving /metrics and /debug/queues on http://%s\n", ln.Addr())
		srv := &http.Server{Handler: handler.DebugMux()}
		go func() { _ = srv.Serve(ln) }()
		defer func() { _ = srv.Close() }()
	}

	// Workload at the target Server-room load.
	srMean := delayByCluster[ServerRoom].Mean()
	rate, err := RateForServerRoomLoad(cfg.Load, srMean)
	if err != nil {
		return nil, err
	}
	arrivals, err := ArrivalSchedule(cfg.Queries, rate, cfg.Seed+101)
	if err != nil {
		return nil, err
	}
	first, last := stores[0].Span()
	gen, err := NewQueryGen(classes, first, last, cfg.Seed+202)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	for i := 0; i < cfg.Queries; i++ {
		q, err := gen.Next()
		if err != nil {
			return nil, err
		}
		if sleep := time.Until(start.Add(arrivals[i])); sleep > 0 {
			time.Sleep(sleep)
		}
		if err := handler.Submit(q); err != nil && !errors.Is(err, ErrRejected) {
			return nil, err
		}
	}
	handler.Drain()
	if err := handler.Close(); err != nil {
		return nil, fmt.Errorf("saas: closing transport: %w", err)
	}
	return collectResults(handler, cfg.Spec.Name, cfg.Load, cfg.Queries, cfg.Compression)
}
