package saas

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// SensorRecord is one temperature/humidity reading kept by an edge node.
type SensorRecord struct {
	Timestamp int64   `json:"ts"` // Unix seconds
	TempC     float64 `json:"temp_c"`
	Humidity  float64 `json:"humidity_pct"`
}

// StoreConfig configures a sensing record store.
type StoreConfig struct {
	// Start is the first record's timestamp. End is exclusive. The paper
	// keeps "up to eighteen-month-worth" of records per node.
	Start, End time.Time
	// Interval between consecutive records (default 1 hour).
	Interval time.Duration
	// Node seeds the deterministic synthetic readings so each edge node
	// holds distinct data.
	Node int
}

// DefaultStoreSpan returns an eighteen-month window ending at a fixed
// reference date, so stores are reproducible.
func DefaultStoreSpan() (time.Time, time.Time) {
	end := time.Date(2023, time.March, 1, 0, 0, 0, 0, time.UTC)
	return end.AddDate(0, -18, 0), end
}

// Store is an immutable in-memory time-series of sensing records, sorted
// by timestamp. It is the per-edge-node "published sensing dataset" of the
// paper's architecture. Safe for concurrent readers.
type Store struct {
	records  []SensorRecord
	interval time.Duration
}

// NewStore generates a deterministic synthetic record series: seasonal and
// diurnal temperature cycles plus node-specific phase and pseudo-random
// jitter, mirroring what a real deployment's crowdsensed data would look
// like while staying reproducible.
func NewStore(cfg StoreConfig) (*Store, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Hour
	}
	if !cfg.End.After(cfg.Start) {
		return nil, fmt.Errorf("saas: store span inverted: %v .. %v", cfg.Start, cfg.End)
	}
	n := int(cfg.End.Sub(cfg.Start) / cfg.Interval)
	if n < 1 {
		return nil, fmt.Errorf("saas: store span %v shorter than interval %v", cfg.End.Sub(cfg.Start), cfg.Interval)
	}
	records := make([]SensorRecord, n)
	phase := float64(cfg.Node) * 0.37
	for i := range records {
		ts := cfg.Start.Add(time.Duration(i) * cfg.Interval)
		u := ts.Unix()
		dayOfYear := float64(ts.YearDay())
		hour := float64(ts.Hour()) + float64(ts.Minute())/60
		seasonal := 8 * math.Sin(2*math.Pi*dayOfYear/365.25)
		diurnal := 5 * math.Sin(2*math.Pi*(hour-6)/24)
		jitter := pseudoNoise(u, int64(cfg.Node))
		records[i] = SensorRecord{
			Timestamp: u,
			TempC:     21 + seasonal + diurnal + phase + 1.5*jitter,
			Humidity:  clampPct(55 - 0.8*seasonal - 2*diurnal + 10*pseudoNoise(u, int64(cfg.Node)+7777)),
		}
	}
	return &Store{records: records, interval: cfg.Interval}, nil
}

// pseudoNoise returns a deterministic value in [-1, 1) from a timestamp
// and seed via integer hashing (splitmix64 finalizer).
func pseudoNoise(ts, seed int64) float64 {
	x := uint64(ts) ^ (uint64(seed) * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x)/float64(math.MaxUint64)*2 - 1
}

func clampPct(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}

// Len returns the number of records.
func (s *Store) Len() int { return len(s.records) }

// Interval returns the spacing between records.
func (s *Store) Interval() time.Duration { return s.interval }

// Span returns the first and last record timestamps (Unix seconds).
func (s *Store) Span() (first, last int64) {
	return s.records[0].Timestamp, s.records[len(s.records)-1].Timestamp
}

// Range returns the records with from <= Timestamp < to. The returned
// slice aliases the store's immutable backing array.
func (s *Store) Range(from, to int64) ([]SensorRecord, error) {
	if to < from {
		return nil, fmt.Errorf("saas: range inverted: [%d, %d)", from, to)
	}
	lo := sort.Search(len(s.records), func(i int) bool { return s.records[i].Timestamp >= from })
	hi := sort.Search(len(s.records), func(i int) bool { return s.records[i].Timestamp >= to })
	return s.records[lo:hi], nil
}
