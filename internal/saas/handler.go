package saas

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"tailguard/internal/core"
	"tailguard/internal/fault"
	"tailguard/internal/metrics"
	"tailguard/internal/obs"
	"tailguard/internal/policy"
	"tailguard/internal/workload"
)

// Query is one SaS query: a set of record-retrieval tasks fanned out to
// distinct edge nodes. Times are Unix seconds of the store span.
type Query struct {
	ID    int64
	Class int
	Nodes []int
	// FromTs/ToTs give each task's retrieval window, parallel to Nodes.
	FromTs []int64
	ToTs   []int64
}

func (q *Query) validate(totalNodes int) error {
	if len(q.Nodes) == 0 {
		return fmt.Errorf("saas: query %d has no tasks", q.ID)
	}
	if len(q.FromTs) != len(q.Nodes) || len(q.ToTs) != len(q.Nodes) {
		return fmt.Errorf("saas: query %d window count mismatch", q.ID)
	}
	seen := make(map[int]bool, len(q.Nodes))
	for i, n := range q.Nodes {
		if n < 0 || n >= totalNodes {
			return fmt.Errorf("saas: query %d targets node %d outside [0, %d)", q.ID, n, totalNodes)
		}
		if seen[n] {
			return fmt.Errorf("saas: query %d targets node %d twice", q.ID, n)
		}
		seen[n] = true
		if q.ToTs[i] < q.FromTs[i] {
			return fmt.Errorf("saas: query %d task %d window inverted", q.ID, i)
		}
	}
	return nil
}

// Aggregate is the merged result returned to the "user": summary
// statistics over all records retrieved by the query's tasks, computed by
// the aggregator module as task results arrive.
type Aggregate struct {
	Records  int
	MinTempC float64
	MaxTempC float64
	SumTempC float64
}

// NodeRef addresses one edge node, local or remote. EdgeNode.Ref produces
// refs for in-process nodes; cmd/tgedge prints a manifest of them for
// multi-process deployments.
type NodeRef struct {
	ID      int         `json:"id"`
	Cluster ClusterName `json:"cluster"`
	HTTPURL string      `json:"http_url"`
	TCPAddr string      `json:"tcp_addr"`
}

func (r NodeRef) validate(expectID int) error {
	if r.ID != expectID {
		return fmt.Errorf("saas: node ref %d at position %d (refs must be ID-ordered)", r.ID, expectID)
	}
	if _, err := NodeCluster(r.ID); err != nil {
		return err
	}
	if r.Cluster == "" || r.HTTPURL == "" || r.TCPAddr == "" {
		return fmt.Errorf("saas: node ref %d incomplete: %+v", r.ID, r)
	}
	return nil
}

// HandlerConfig configures the central query handler.
type HandlerConfig struct {
	Nodes     []NodeRef
	Spec      core.Spec
	Classes   *workload.ClassSet // SLOs in compressed ms
	Estimator *core.TailEstimator
	// Warmup: queries with ID below it are processed but not measured.
	Warmup int64
	// Client optionally overrides the HTTP client (keep-alive transport
	// by default). Only used with the HTTP transport.
	Client *http.Client
	// RequestTimeout bounds one task round trip (default 30s).
	RequestTimeout time.Duration
	// Transport selects the wire protocol (default HTTPTransport).
	Transport TransportKind
	// Admission, if non-nil, applies query admission control: Submit
	// returns ErrRejected while the windowed task deadline-miss ratio
	// holds the drop probability up (Section III.C, live path).
	Admission *core.AdmissionController
	// Obs, if non-nil, receives query/task lifecycle events stamped with
	// the handler's compressed wall clock. The sink must be safe for
	// concurrent use (e.g. obs.LockedRing).
	Obs *obs.Tracer
	// Faults, if non-nil, wraps the transport in a FaultTransport driven
	// by the handler clock, injecting the plan's transport delay and drop
	// windows on the wire path. The engine must be compiled for exactly
	// len(Nodes) servers.
	Faults *fault.Engine
}

// ErrRejected is returned by Submit when admission control rejects the
// query.
var ErrRejected = errors.New("saas: query rejected by admission control")

// Handler is the paper's query handler (Fig. 8): central task queuing (one
// queue set per edge node), policy-ordered dispatch over keep-alive
// HTTP/1.1, online CDF updating from merged task results, and result
// aggregation. Safe for concurrent Submit calls.
type Handler struct {
	cfg       HandlerConfig
	deadliner *core.Deadliner
	transport Transport
	start     time.Time
	obs       *obs.Tracer
	reg       *obs.Registry // always non-nil; serves /metrics
	met       *saasMetrics

	mu       sync.Mutex
	queues   []policy.Queue                  // guarded by mu (the slice is fixed; elements need mu)
	busy     []bool                          // guarded by mu
	busyMs   []float64                       // guarded by mu; accumulated node occupancy (compressed ms)
	states   map[int64]*saasQueryState       // guarded by mu
	byClass  *metrics.Breakdown[int]         // guarded by mu
	tpo      *metrics.Breakdown[ClusterName] // guarded by mu; post-queuing times per cluster
	tpr      *metrics.LatencyRecorder        // guarded by mu; task pre-dequeuing waits
	missed   int                             // guarded by mu
	tasks    int                             // guarded by mu
	rejected int                             // guarded by mu
	errs     []error                         // guarded by mu
	pending  sync.WaitGroup
}

type saasQueryState struct {
	arrivalMs float64
	maxRespMs float64
	remaining int
	class     int
	agg       Aggregate
	counted   bool
}

// NewHandler builds the handler and its per-node queues.
func NewHandler(cfg HandlerConfig) (*Handler, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("saas: handler needs edge nodes")
	}
	for i, ref := range cfg.Nodes {
		if err := ref.validate(i); err != nil {
			return nil, err
		}
	}
	if cfg.Classes == nil {
		return nil, fmt.Errorf("saas: handler needs a class set")
	}
	if cfg.Estimator == nil && cfg.Spec.Deadline != core.DeadlineNone {
		return nil, fmt.Errorf("saas: policy %s needs an estimator", cfg.Spec.Name)
	}
	if cfg.Faults != nil && cfg.Faults.Servers() != len(cfg.Nodes) {
		return nil, fmt.Errorf("saas: fault engine compiled for %d servers, handler has %d nodes",
			cfg.Faults.Servers(), len(cfg.Nodes))
	}
	dl, err := core.NewDeadliner(cfg.Spec, cfg.Estimator, cfg.Classes)
	if err != nil {
		return nil, err
	}
	h := &Handler{
		cfg:       cfg,
		deadliner: dl,
		start:     time.Now(),
		obs:       cfg.Obs,
		reg:       obs.NewRegistry(),
		queues:    make([]policy.Queue, len(cfg.Nodes)),
		busy:      make([]bool, len(cfg.Nodes)),
		busyMs:    make([]float64, len(cfg.Nodes)),
		states:    make(map[int64]*saasQueryState),
		byClass:   metrics.NewBreakdown[int](1024),
		tpo:       metrics.NewBreakdown[ClusterName](4096),
		tpr:       metrics.NewLatencyRecorder(4096),
	}
	met, err := newSaasMetrics(h.reg, cfg.Classes, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	h.met = met
	for i := range h.queues {
		q, err := policy.New(cfg.Spec.Queue)
		if err != nil {
			return nil, err
		}
		// Wrap each queue so every push/pop updates the node's live depth
		// gauge (the wrapper runs under h.mu, the gauge is atomic).
		gauge := met.depth[i]
		h.queues[i] = policy.Observed{Queue: q, OnDepth: func(d int) { gauge.Set(float64(d)) }}
	}
	timeout := cfg.RequestTimeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	switch cfg.Transport {
	case HTTPTransport, "":
		client := cfg.Client
		if client == nil {
			client = &http.Client{
				Transport: &http.Transport{
					MaxIdleConns:        2 * len(cfg.Nodes),
					MaxIdleConnsPerHost: 2,
					IdleConnTimeout:     90 * time.Second,
				},
			}
		}
		urls := make([]string, len(cfg.Nodes))
		for i, n := range cfg.Nodes {
			urls[i] = n.HTTPURL
		}
		h.transport = &httpClient{client: client, urls: urls, timeout: timeout}
	case TCPTransport:
		addrs := make([]string, len(cfg.Nodes))
		for i, n := range cfg.Nodes {
			addrs[i] = n.TCPAddr
		}
		h.transport = newTCPClient(addrs, timeout)
	default:
		return nil, fmt.Errorf("saas: unknown transport %q", cfg.Transport)
	}
	if cfg.Faults != nil {
		h.transport = &FaultTransport{Inner: h.transport, Engine: cfg.Faults, NowMs: h.nowMs}
	}
	return h, nil
}

// Close releases the handler's transport connections; call after Drain.
func (h *Handler) Close() error { return h.transport.Close() }

// nowMs returns milliseconds since the handler started (the testbed's
// compressed wall clock).
func (h *Handler) nowMs() float64 {
	return float64(time.Since(h.start)) / float64(time.Millisecond)
}

// fail records an asynchronous error (first 16 kept).
func (h *Handler) fail(err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.errs) < 16 {
		h.errs = append(h.errs, err)
	}
}

// Submit enqueues one query's tasks. It returns immediately; Drain waits
// for completion.
func (h *Handler) Submit(q Query) error {
	if err := q.validate(len(h.cfg.Nodes)); err != nil {
		return err
	}
	now := h.nowMs()
	h.obs.Query(obs.KindArrival, now, q.ID, int32(q.Class), float64(len(q.Nodes)))
	if h.cfg.Admission != nil && !h.cfg.Admission.Admit(now) {
		h.obs.Query(obs.KindReject, now, q.ID, int32(q.Class), 0)
		h.met.rejected.Inc()
		h.mu.Lock()
		h.rejected++
		h.mu.Unlock()
		return ErrRejected
	}
	deadline, err := h.deadliner.DeadlineServers(now, q.Class, q.Nodes)
	if err != nil {
		return fmt.Errorf("saas: deadline for query %d: %w", q.ID, err)
	}
	h.obs.Query(obs.KindDeadline, now, q.ID, int32(q.Class), deadline)
	h.pending.Add(1)

	h.mu.Lock()
	if _, dup := h.states[q.ID]; dup {
		h.mu.Unlock()
		h.pending.Done()
		return fmt.Errorf("saas: duplicate query ID %d", q.ID)
	}
	h.states[q.ID] = &saasQueryState{
		arrivalMs: now,
		remaining: len(q.Nodes),
		class:     q.Class,
		counted:   q.ID >= h.cfg.Warmup,
		agg:       Aggregate{MinTempC: 1e300, MaxTempC: -1e300},
	}
	for i, node := range q.Nodes {
		t := &policy.Task{
			QueryID:  q.ID,
			Index:    i,
			Server:   node,
			Class:    q.Class,
			Arrival:  now,
			Deadline: deadline,
			Enqueued: now,
		}
		t.Payload = TaskRequest{QueryID: q.ID, TaskID: i, FromTs: q.FromTs[i], ToTs: q.ToTs[i]}
		h.obs.TaskEvent(obs.KindEnqueue, now, q.ID, int32(i), int32(node), int32(q.Class), 0)
		if h.busy[node] {
			h.queues[node].Push(t)
		} else {
			h.busy[node] = true
			go h.serveLoop(node, t)
		}
	}
	h.mu.Unlock()
	return nil
}

// serveLoop serves tasks on one node until its queue drains.
func (h *Handler) serveLoop(node int, t *policy.Task) {
	for t != nil {
		h.serveOne(node, t)
		h.mu.Lock()
		next := h.queues[node].Pop()
		if next == nil {
			h.busy[node] = false
		}
		h.mu.Unlock()
		t = next
	}
}

// serveOne dispatches one task over HTTP and merges its result.
func (h *Handler) serveOne(node int, t *policy.Task) {
	dequeue := h.nowMs()
	t.Dequeued = dequeue
	missed := dequeue > t.Deadline
	h.obs.TaskEvent(obs.KindDispatch, dequeue, t.QueryID, int32(t.Index), int32(node), int32(t.Class), dequeue-t.Enqueued)
	h.met.tasks.Inc()
	if missed {
		h.met.missed.Inc()
	}
	// Metric recording must not fail the task; summaries only reject
	// negative or NaN values, which the monotone handler clock never
	// produces.
	_ = h.met.wait.Observe(dequeue - t.Enqueued)

	if h.cfg.Admission != nil {
		h.cfg.Admission.ObserveTask(missed, dequeue)
	}
	h.mu.Lock()
	h.tasks++
	if missed {
		h.missed++
	}
	st := h.states[t.QueryID]
	counted := st != nil && st.counted
	if counted {
		if err := h.tpr.Observe(dequeue - t.Enqueued); err != nil {
			h.errs = append(h.errs, err)
		}
	}
	h.mu.Unlock()

	req, ok := t.Payload.(TaskRequest)
	if !ok {
		h.fail(fmt.Errorf("saas: task %d/%d has no request payload", t.QueryID, t.Index))
		h.completeTask(node, t, h.nowMs(), dequeue, nil, counted)
		return
	}
	resp, err := h.transport.Send(node, req)
	receipt := h.nowMs()
	if err != nil {
		h.fail(fmt.Errorf("saas: task %d/%d on node %d: %w", t.QueryID, t.Index, node, err))
		h.completeTask(node, t, receipt, dequeue, nil, counted)
		return
	}
	h.completeTask(node, t, receipt, dequeue, resp, counted)
}

// httpClient is the keep-alive HTTP/1.1 transport of the paper's testbed.
type httpClient struct {
	client  *http.Client
	urls    []string
	timeout time.Duration
}

// Send implements Transport.
func (c *httpClient) Send(node int, req TaskRequest) (*TaskResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequest(http.MethodPost, c.urls[node]+"/task", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	client := *c.client
	client.Timeout = c.timeout
	httpResp, err := client.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, httpResp.Body)
		_ = httpResp.Body.Close()
	}()
	if httpResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", httpResp.Status)
	}
	var resp TaskResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Close implements Transport.
func (c *httpClient) Close() error {
	if t, ok := c.client.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
	return nil
}

// completeTask updates all bookkeeping after a task round trip (resp may
// be nil on transport failure; the query still completes so Drain works).
func (h *Handler) completeTask(node int, t *policy.Task, receipt, dequeue float64, resp *TaskResponse, counted bool) {
	tpo := receipt - dequeue
	cluster := h.cfg.Nodes[node].Cluster
	h.obs.TaskEvent(obs.KindServiceEnd, receipt, t.QueryID, int32(t.Index), int32(node), int32(t.Class), tpo)
	_ = h.met.tpo[node].Observe(tpo)

	// Online updating process: post-queuing time into the node's CDF.
	if h.cfg.Estimator != nil {
		if err := h.cfg.Estimator.Observe(node, tpo); err != nil {
			h.fail(err)
		}
	}

	h.mu.Lock()
	h.busyMs[node] += tpo
	if counted {
		if err := h.tpo.Observe(cluster, tpo); err != nil {
			h.errs = append(h.errs, err)
		}
	}
	st := h.states[t.QueryID]
	if st == nil {
		h.mu.Unlock()
		h.fail(fmt.Errorf("saas: completion for unknown query %d", t.QueryID))
		return
	}
	if resp != nil {
		for _, rec := range resp.Records {
			st.agg.Records++
			st.agg.SumTempC += rec.TempC
			if rec.TempC < st.agg.MinTempC {
				st.agg.MinTempC = rec.TempC
			}
			if rec.TempC > st.agg.MaxTempC {
				st.agg.MaxTempC = rec.TempC
			}
		}
	}
	if receipt > st.maxRespMs {
		st.maxRespMs = receipt
	}
	st.remaining--
	done := st.remaining == 0
	var latency, endMs float64
	var class int
	if done {
		delete(h.states, t.QueryID)
		latency = st.maxRespMs - st.arrivalMs
		endMs = st.maxRespMs
		class = st.class
		if st.counted {
			if err := h.byClass.Observe(st.class, latency); err != nil {
				h.errs = append(h.errs, err)
			}
		}
	}
	h.mu.Unlock()
	if done {
		h.obs.Query(obs.KindQueryDone, endMs, t.QueryID, int32(class), latency)
		if class >= 0 && class < len(h.met.queries) {
			h.met.queries[class].Inc()
			_ = h.met.latency[class].Observe(latency)
		}
		h.pending.Done()
	}
}

// Drain blocks until every submitted query has completed.
func (h *Handler) Drain() { h.pending.Wait() }

// Stats is the handler's measured output, in compressed milliseconds.
type Stats struct {
	ByClass       map[int]*metrics.LatencyRecorder
	PerClusterTpo map[ClusterName]*metrics.LatencyRecorder
	TaskWait      *metrics.LatencyRecorder
	TaskMissRatio float64
	// Rejected counts queries refused by admission control.
	Rejected int
	// NodeBusyMs is per-node accumulated occupancy.
	NodeBusyMs []float64
	ElapsedMs  float64
	Errors     []error
}

// Snapshot returns the measurements collected so far. Call after Drain for
// final numbers.
func (h *Handler) Snapshot() *Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := &Stats{
		ByClass:       make(map[int]*metrics.LatencyRecorder),
		PerClusterTpo: make(map[ClusterName]*metrics.LatencyRecorder),
		TaskWait:      h.tpr,
		Rejected:      h.rejected,
		NodeBusyMs:    append([]float64(nil), h.busyMs...),
		ElapsedMs:     h.nowMs(),
		Errors:        append([]error(nil), h.errs...),
	}
	if h.tasks > 0 {
		s.TaskMissRatio = float64(h.missed) / float64(h.tasks)
	}
	h.byClass.Each(func(k int, r *metrics.LatencyRecorder) { s.ByClass[k] = r })
	h.tpo.Each(func(k ClusterName, r *metrics.LatencyRecorder) { s.PerClusterTpo[k] = r })
	return s
}
