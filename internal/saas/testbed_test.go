package saas

import (
	"testing"
	"time"

	"tailguard/internal/core"
)

// testbedStores caches the generated stores across testbed tests (they
// dominate setup time).
func testbedStores(t *testing.T) []*Store {
	t.Helper()
	stores, err := BuildStores(24 * time.Hour)
	if err != nil {
		t.Fatalf("BuildStores: %v", err)
	}
	return stores
}

func TestTestbedConfigValidation(t *testing.T) {
	good := TestbedConfig{Spec: core.FIFO, Load: 0.3, Queries: 10, Warmup: 1, Compression: 50}
	cases := []struct {
		name   string
		mutate func(*TestbedConfig)
	}{
		{"bad load", func(c *TestbedConfig) { c.Load = 0 }},
		{"no queries", func(c *TestbedConfig) { c.Queries = 0 }},
		{"warmup too big", func(c *TestbedConfig) { c.Warmup = 10 }},
		{"bad compression", func(c *TestbedConfig) { c.Compression = 0.5 }},
		{"bad stores", func(c *TestbedConfig) { c.SharedStores = make([]*Store, 3) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good
			tc.mutate(&cfg)
			cfg.setDefaults()
			if err := cfg.validate(); err == nil {
				t.Error("validate succeeded, want error")
			}
		})
	}
}

// TestRunTestbedTailGuard drives the full live path end to end: 32 real
// HTTP edge nodes, central TF-EDFQ queuing, online CDF updating, and
// aggregation — at 50x compression and modest query counts.
func TestRunTestbedTailGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("live testbed run in -short mode")
	}
	stores := testbedStores(t)
	// Compression is capped at 10x here: higher factors push the HTTP
	// round-trip rate beyond what small CI machines (2 cores) can serve
	// without the testbed itself becoming the bottleneck.
	res, err := RunTestbed(TestbedConfig{
		Spec:                 core.TFEDFQ,
		Load:                 0.30,
		Queries:              450,
		Warmup:               80,
		Compression:          10,
		Seed:                 1,
		EstimatorSeedSamples: 500,
		SharedStores:         stores,
	})
	if err != nil {
		t.Fatalf("RunTestbed: %v", err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("run had task errors: %v", res.Errors)
	}
	// All three classes observed.
	for _, class := range []int{ClassA, ClassB, ClassC} {
		cr, ok := res.ByClass[class]
		if !ok || cr.Count == 0 {
			t.Fatalf("class %d has no samples", class)
		}
		if cr.P99Ms <= 0 || cr.MeanMs <= 0 {
			t.Errorf("class %d stats implausible: %+v", class, cr)
		}
		if cr.P99Ms < cr.MeanMs {
			t.Errorf("class %d p99 %v below mean %v", class, cr.P99Ms, cr.MeanMs)
		}
	}
	// Higher classes (larger fanout) see higher tails.
	if res.ByClass[ClassC].P99Ms < res.ByClass[ClassA].MeanMs {
		t.Errorf("class C p99 %v implausibly below class A mean %v",
			res.ByClass[ClassC].P99Ms, res.ByClass[ClassA].MeanMs)
	}
	// Per-cluster post-queuing stats: wet-lab fastest (Fig. 9a ordering).
	wet, ok := res.PerCluster[WetLab]
	if !ok {
		t.Fatal("no wet-lab samples")
	}
	sr, ok := res.PerCluster[ServerRoom]
	if !ok {
		t.Fatal("no server-room samples")
	}
	// The remaining assertions depend on wall-clock delay injection being
	// accurate; race instrumentation slows the process enough to break
	// them without indicating any bug (see race_enabled_test.go).
	if raceEnabled {
		t.Log("race detector enabled: skipping wall-clock accuracy assertions")
		return
	}
	if wet.MeanMs >= sr.MeanMs {
		t.Errorf("wet-lab mean %v not below server-room mean %v", wet.MeanMs, sr.MeanMs)
	}
	// Measured server-room load within a factor of the target (short,
	// compressed runs carry real scheduling noise and HTTP overhead).
	if res.MeasuredSRLoad < 0.1 || res.MeasuredSRLoad > 0.7 {
		t.Errorf("measured server-room load = %v, want roughly 0.30", res.MeasuredSRLoad)
	}
	// At 30% load with TailGuard the SLOs should hold.
	if !res.MeetsAllSLOs() {
		t.Errorf("SLOs violated at 30%% load: %+v", res.ByClass)
	}
}

// TestRunTestbedWithAdmission drives an overload through the live path
// with admission control: some queries must be rejected, and rejected
// queries must not break completion accounting.
func TestRunTestbedWithAdmission(t *testing.T) {
	if testing.Short() {
		t.Skip("live testbed run in -short mode")
	}
	stores := testbedStores(t)
	res, err := RunTestbed(TestbedConfig{
		Spec:               core.TFEDFQ,
		Load:               0.85,
		Queries:            500,
		Warmup:             80,
		Compression:        10,
		Seed:               5,
		SharedStores:       stores,
		Transport:          TCPTransport,
		AdmissionWindowMs:  150,
		AdmissionThreshold: 0.01,
	})
	if err != nil {
		t.Fatalf("RunTestbed: %v", err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if res.Rejected == 0 {
		t.Error("no rejections at 85% offered load")
	}
	if res.Rejected >= res.Queries {
		t.Errorf("everything rejected (%d/%d)", res.Rejected, res.Queries)
	}
}

// TestRunTestbedFIFO exercises the DeadlineNone path (no estimator).
func TestRunTestbedFIFO(t *testing.T) {
	if testing.Short() {
		t.Skip("live testbed run in -short mode")
	}
	stores := testbedStores(t)
	res, err := RunTestbed(TestbedConfig{
		Spec:         core.FIFO,
		Load:         0.25,
		Queries:      250,
		Warmup:       40,
		Compression:  10,
		Seed:         2,
		SharedStores: stores,
	})
	if err != nil {
		t.Fatalf("RunTestbed: %v", err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("run had task errors: %v", res.Errors)
	}
	if res.TaskMissRatio != 0 {
		t.Errorf("FIFO miss ratio = %v, want 0", res.TaskMissRatio)
	}
	if res.ByClass[ClassA].Count == 0 {
		t.Error("no class A samples")
	}
}
