package saas

import (
	"math"
	"testing"
	"time"
)

func testQueryGen(t *testing.T) *QueryGen {
	t.Helper()
	classes, err := SaSClasses(1)
	if err != nil {
		t.Fatalf("SaSClasses: %v", err)
	}
	start, end := DefaultStoreSpan()
	g, err := NewQueryGen(classes, start.Unix(), end.Unix(), 1)
	if err != nil {
		t.Fatalf("NewQueryGen: %v", err)
	}
	return g
}

func TestSaSClasses(t *testing.T) {
	classes, err := SaSClasses(1)
	if err != nil {
		t.Fatalf("SaSClasses: %v", err)
	}
	if classes.Len() != 3 {
		t.Fatalf("Len = %d, want 3", classes.Len())
	}
	for i, want := range PaperClassSLOsMs {
		c, err := classes.Class(i)
		if err != nil {
			t.Fatalf("Class(%d): %v", i, err)
		}
		if c.SLOMs != want {
			t.Errorf("class %d SLO = %v, want %v", i, c.SLOMs, want)
		}
	}
	// Compression divides SLOs.
	fast, err := SaSClasses(20)
	if err != nil {
		t.Fatalf("SaSClasses(20): %v", err)
	}
	c0, _ := fast.Class(0)
	if c0.SLOMs != 40 {
		t.Errorf("compressed class A SLO = %v, want 40", c0.SLOMs)
	}
	if _, err := SaSClasses(0.5); err == nil {
		t.Error("compression < 1 succeeded, want error")
	}
}

func TestQueryGenClassMixAndPlacement(t *testing.T) {
	g := testQueryGen(t)
	counts := [3]int{}
	srClassA := 0
	const n = 20000
	for i := 0; i < n; i++ {
		q, err := g.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if q.ID != int64(i) {
			t.Fatalf("query %d has ID %d", i, q.ID)
		}
		counts[q.Class]++
		switch q.Class {
		case ClassA:
			if len(q.Nodes) != 1 {
				t.Fatalf("class A fanout = %d", len(q.Nodes))
			}
			if q.Nodes[0] < NodesPerCluster {
				srClassA++
			}
		case ClassB:
			if len(q.Nodes) != 4 {
				t.Fatalf("class B fanout = %d", len(q.Nodes))
			}
			for c, node := range q.Nodes {
				if node/NodesPerCluster != c {
					t.Fatalf("class B node %d not in cluster %d", node, c)
				}
			}
		case ClassC:
			if len(q.Nodes) != TotalNodes {
				t.Fatalf("class C fanout = %d", len(q.Nodes))
			}
		}
		// Retrieval windows: 1-30 whole days inside the span.
		for i := range q.Nodes {
			days := (q.ToTs[i] - q.FromTs[i]) / (24 * 3600)
			if days < 1 || days > 30 {
				t.Fatalf("retrieval window = %d days", days)
			}
		}
	}
	if frac := float64(counts[ClassA]) / n; math.Abs(frac-0.5) > 0.02 {
		t.Errorf("class A fraction = %v, want ~0.5", frac)
	}
	if frac := float64(counts[ClassB]) / n; math.Abs(frac-0.4) > 0.02 {
		t.Errorf("class B fraction = %v, want ~0.4", frac)
	}
	if frac := float64(srClassA) / float64(counts[ClassA]); math.Abs(frac-0.8) > 0.03 {
		t.Errorf("class A server-room bias = %v, want ~0.8", frac)
	}
}

func TestExpectedServerRoomTasks(t *testing.T) {
	if got := ExpectedServerRoomTasksPerQuery(); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("ExpectedServerRoomTasksPerQuery = %v, want 1.6", got)
	}
}

func TestRateForServerRoomLoad(t *testing.T) {
	// load * 8 / (1.6 * mean).
	rate, err := RateForServerRoomLoad(0.4, 82)
	if err != nil {
		t.Fatalf("RateForServerRoomLoad: %v", err)
	}
	want := 0.4 * 8 / (1.6 * 82)
	if math.Abs(rate-want) > 1e-12 {
		t.Errorf("rate = %v, want %v", rate, want)
	}
	if _, err := RateForServerRoomLoad(0, 82); err == nil {
		t.Error("zero load succeeded, want error")
	}
	if _, err := RateForServerRoomLoad(0.4, 0); err == nil {
		t.Error("zero mean succeeded, want error")
	}
}

func TestArrivalSchedule(t *testing.T) {
	arr, err := ArrivalSchedule(1000, 0.5, 3)
	if err != nil {
		t.Fatalf("ArrivalSchedule: %v", err)
	}
	if len(arr) != 1000 {
		t.Fatalf("len = %d", len(arr))
	}
	for i := 1; i < len(arr); i++ {
		if arr[i] < arr[i-1] {
			t.Fatalf("arrivals not monotone at %d", i)
		}
	}
	// Mean gap ~2 ms.
	mean := float64(arr[len(arr)-1]) / float64(len(arr)) / float64(time.Millisecond)
	if math.Abs(mean-2) > 0.3 {
		t.Errorf("mean gap = %v ms, want ~2", mean)
	}
	if _, err := ArrivalSchedule(0, 1, 1); err == nil {
		t.Error("0 arrivals succeeded, want error")
	}
}

func TestQueryGenValidation(t *testing.T) {
	classes, _ := SaSClasses(1)
	if _, err := NewQueryGen(nil, 0, 1e9, 1); err == nil {
		t.Error("nil classes succeeded, want error")
	}
	if _, err := NewQueryGen(classes, 0, 1000, 1); err == nil {
		t.Error("short span succeeded, want error")
	}
}
