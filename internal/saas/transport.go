package saas

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// Transport sends one task to an edge node and returns its response. The
// handler dispatches at most one task per node at a time, so transports
// may keep one persistent connection per node.
type Transport interface {
	Send(node int, req TaskRequest) (*TaskResponse, error)
	// Close releases connections.
	Close() error
}

// TransportKind names a wire protocol.
type TransportKind string

// Supported transports.
const (
	// HTTPTransport is the paper's keep-alive HTTP/1.1.
	HTTPTransport TransportKind = "http"
	// TCPTransport is a persistent length-delimited gob stream — the same
	// request/response schema with far less per-call overhead, useful on
	// small machines and at high compression factors.
	TCPTransport TransportKind = "tcp"
)

// tcpClient is the gob-over-TCP transport.
type tcpClient struct {
	addrs   []string
	timeout time.Duration

	mu    sync.Mutex
	conns []*tcpConn // guarded by mu
}

type tcpConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	w    *bufio.Writer
}

// newTCPClient builds a client for the given per-node TCP addresses.
func newTCPClient(addrs []string, timeout time.Duration) *tcpClient {
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	return &tcpClient{
		addrs:   addrs,
		timeout: timeout,
		conns:   make([]*tcpConn, len(addrs)),
	}
}

// get returns (dialing if needed) the persistent connection for a node.
// The dial happens with c.mu released: holding it would serialize every
// node's sends behind one slow handshake — a per-node stall amplified
// into a transport-wide one, exactly the head-of-line coupling TailGuard
// exists to avoid. If two callers race to dial the same node, the loser's
// connection is closed and the winner's kept.
func (c *tcpClient) get(node int) (*tcpConn, error) {
	c.mu.Lock()
	if node < 0 || node >= len(c.conns) {
		c.mu.Unlock()
		return nil, fmt.Errorf("saas: tcp transport node %d out of range", node)
	}
	if tc := c.conns[node]; tc != nil {
		c.mu.Unlock()
		return tc, nil
	}
	c.mu.Unlock()

	conn, err := net.DialTimeout("tcp", c.addrs[node], c.timeout)
	if err != nil {
		return nil, fmt.Errorf("saas: dialing node %d: %w", node, err)
	}
	w := bufio.NewWriter(conn)
	tc := &tcpConn{conn: conn, enc: gob.NewEncoder(w), dec: gob.NewDecoder(bufio.NewReader(conn)), w: w}

	c.mu.Lock()
	defer c.mu.Unlock()
	if existing := c.conns[node]; existing != nil {
		_ = conn.Close()
		return existing, nil
	}
	c.conns[node] = tc
	return tc, nil
}

// drop discards a broken connection so the next Send redials.
func (c *tcpClient) drop(node int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conns[node] != nil {
		_ = c.conns[node].conn.Close()
		c.conns[node] = nil
	}
}

// Send implements Transport. The handler serializes calls per node, so no
// per-connection locking is needed beyond the map access.
func (c *tcpClient) Send(node int, req TaskRequest) (*TaskResponse, error) {
	tc, err := c.get(node)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(c.timeout)
	if err := tc.conn.SetDeadline(deadline); err != nil {
		c.drop(node)
		return nil, err
	}
	if err := tc.enc.Encode(&req); err != nil {
		c.drop(node)
		return nil, fmt.Errorf("saas: sending to node %d: %w", node, err)
	}
	if err := tc.w.Flush(); err != nil {
		c.drop(node)
		return nil, fmt.Errorf("saas: flushing to node %d: %w", node, err)
	}
	var resp TaskResponse
	if err := tc.dec.Decode(&resp); err != nil {
		c.drop(node)
		return nil, fmt.Errorf("saas: receiving from node %d: %w", node, err)
	}
	return &resp, nil
}

// Close implements Transport.
func (c *tcpClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for i, tc := range c.conns {
		if tc != nil {
			if err := tc.conn.Close(); err != nil && first == nil {
				first = err
			}
			c.conns[i] = nil
		}
	}
	return first
}

// serveTCP accepts gob task connections for an edge node.
func (n *EdgeNode) serveTCP(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go n.serveTCPConn(conn)
	}
}

// serveTCPConn processes one connection's request stream serially.
func (n *EdgeNode) serveTCPConn(conn net.Conn) {
	defer conn.Close()
	w := bufio.NewWriter(conn)
	enc := gob.NewEncoder(w)
	dec := gob.NewDecoder(bufio.NewReader(conn))
	for {
		var req TaskRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp, err := n.processTask(req)
		if err != nil {
			// Schema-level failures poison the stream; drop the
			// connection and let the client surface the transport error.
			return
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}
