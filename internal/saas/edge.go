package saas

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"tailguard/internal/dist"
)

// TaskRequest is the wire format of one task sent to an edge node: fetch
// the sensing records in [FromTs, ToTs).
type TaskRequest struct {
	QueryID int64 `json:"query_id"`
	TaskID  int   `json:"task_id"`
	FromTs  int64 `json:"from_ts"`
	ToTs    int64 `json:"to_ts"`
}

// TaskResponse is the edge node's reply: the retrieved records plus the
// node's processing metadata.
type TaskResponse struct {
	QueryID   int64          `json:"query_id"`
	TaskID    int            `json:"task_id"`
	Node      int            `json:"node"`
	Records   []SensorRecord `json:"records"`
	ServiceMs float64        `json:"service_ms"` // injected delay actually slept
}

// EdgeNode is one sensing edge node: an HTTP server over loopback TCP
// serving record-retrieval tasks from its in-memory store, with service
// delays injected from the calibrated per-cluster model (substituting for
// Raspberry Pi hardware — DESIGN.md §4).
type EdgeNode struct {
	id      int
	cluster ClusterName
	store   *Store
	delay   dist.Distribution

	mu  sync.Mutex
	rng *rand.Rand // guarded by mu

	server      *http.Server
	listener    net.Listener
	tcpListener net.Listener
	baseURL     string
}

// EdgeConfig configures one edge node.
type EdgeConfig struct {
	ID    int
	Store *Store
	// Delay is the (already compression-scaled) service-delay model.
	Delay dist.Distribution
	Seed  int64
}

// NewEdgeNode creates the node and starts its HTTP server on an ephemeral
// loopback port. Call Close to shut it down.
func NewEdgeNode(cfg EdgeConfig) (*EdgeNode, error) {
	cluster, err := NodeCluster(cfg.ID)
	if err != nil {
		return nil, err
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("saas: edge node %d needs a store", cfg.ID)
	}
	if cfg.Delay == nil {
		return nil, fmt.Errorf("saas: edge node %d needs a delay model", cfg.ID)
	}
	n := &EdgeNode{
		id:      cfg.ID,
		cluster: cluster,
		store:   cfg.Store,
		delay:   cfg.Delay,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /task", n.handleTask)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("saas: edge node %d listen: %w", cfg.ID, err)
	}
	n.listener = ln
	n.baseURL = "http://" + ln.Addr().String()
	n.server = &http.Server{Handler: mux}
	go func() {
		// ErrServerClosed is the normal shutdown path; anything else
		// surfaces when a task request next fails.
		_ = n.server.Serve(ln)
	}()
	// The gob-over-TCP endpoint serves the same tasks with less per-call
	// overhead (see TCPTransport).
	tln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = n.server.Close()
		return nil, fmt.Errorf("saas: edge node %d tcp listen: %w", cfg.ID, err)
	}
	n.tcpListener = tln
	go n.serveTCP(tln)
	return n, nil
}

// ID returns the node index.
func (n *EdgeNode) ID() int { return n.id }

// Cluster returns the node's cluster.
func (n *EdgeNode) Cluster() ClusterName { return n.cluster }

// URL returns the node's base HTTP URL.
func (n *EdgeNode) URL() string { return n.baseURL }

// TCPAddr returns the node's gob-over-TCP address.
func (n *EdgeNode) TCPAddr() string { return n.tcpListener.Addr().String() }

// Ref returns the node's address record for handler configuration and
// multi-process manifests.
func (n *EdgeNode) Ref() NodeRef {
	return NodeRef{ID: n.id, Cluster: n.cluster, HTTPURL: n.baseURL, TCPAddr: n.TCPAddr()}
}

// Close shuts both endpoints down. It is idempotent.
func (n *EdgeNode) Close() error {
	tcpErr := n.tcpListener.Close()
	if errors.Is(tcpErr, net.ErrClosed) {
		tcpErr = nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := n.server.Shutdown(ctx); err != nil {
		return err
	}
	return tcpErr
}

// sampleDelay draws one injected service delay (ms) plus the uniform
// variate the calibrated sleeper needs.
func (n *EdgeNode) sampleDelay() (delayMs, u float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delay.Sample(n.rng), n.rng.Float64()
}

// processTask retrieves the requested records and injects the calibrated
// service delay — the shared core of both wire protocols.
func (n *EdgeNode) processTask(req TaskRequest) (*TaskResponse, error) {
	records, err := n.store.Range(req.FromTs, req.ToTs)
	if err != nil {
		return nil, err
	}
	delayMs, u := n.sampleDelay()
	defaultSleeper.Sleep(delayMs, u)
	return &TaskResponse{
		QueryID:   req.QueryID,
		TaskID:    req.TaskID,
		Node:      n.id,
		Records:   records,
		ServiceMs: delayMs,
	}, nil
}

// handleTask is the HTTP endpoint for processTask.
func (n *EdgeNode) handleTask(w http.ResponseWriter, r *http.Request) {
	var req TaskRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad task request: %v", err), http.StatusBadRequest)
		return
	}
	resp, err := n.processTask(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// Encoding errors mean the client has gone away; nothing useful to do.
	_ = json.NewEncoder(w).Encode(resp)
}
