package saas

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"tailguard/internal/core"
)

// Manifest describes a deployed set of edge nodes for multi-process
// operation: cmd/tgedge writes one, cmd/tgtestbed -manifest consumes it.
type Manifest struct {
	Refs []NodeRef `json:"refs"`
	// StoreFirst/StoreLast give the retrievable record span (Unix s).
	StoreFirst int64 `json:"store_first"`
	StoreLast  int64 `json:"store_last"`
	// Compression is the time-compression factor the nodes were started
	// with; the workload driver must match it.
	Compression float64 `json:"compression"`
}

// Validate checks manifest invariants.
func (m *Manifest) Validate() error {
	if len(m.Refs) != TotalNodes {
		return fmt.Errorf("saas: manifest has %d refs, want %d", len(m.Refs), TotalNodes)
	}
	for i, ref := range m.Refs {
		if err := ref.validate(i); err != nil {
			return err
		}
	}
	if m.StoreLast <= m.StoreFirst {
		return fmt.Errorf("saas: manifest store span inverted")
	}
	if m.Compression < 1 {
		return fmt.Errorf("saas: manifest compression %v < 1", m.Compression)
	}
	return nil
}

// Save writes the manifest as JSON.
func (m *Manifest) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// LoadManifest reads and validates a manifest.
func LoadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("saas: decoding manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// WorkloadRunConfig drives the three-class workload against an existing
// set of edge nodes — in-process (RunTestbed assembles this internally) or
// remote processes located by a Manifest.
type WorkloadRunConfig struct {
	Manifest             *Manifest
	Spec                 core.Spec
	Load                 float64 // target Server-room utilization
	Queries              int
	Warmup               int
	Seed                 int64
	EstimatorSeedSamples int // default 4000
	Transport            TransportKind
	// AdmissionWindowMs/AdmissionThreshold enable admission control
	// (compressed ms).
	AdmissionWindowMs  float64
	AdmissionThreshold float64
}

// RunWorkload executes the Section IV.E workload against the manifest's
// nodes and reports results at paper scale. The estimator is seeded from
// the calibrated per-cluster models (offline estimation) and refined
// online from observed round trips, exactly as in RunTestbed.
func RunWorkload(cfg WorkloadRunConfig) (*TestbedResult, error) {
	if cfg.Manifest == nil {
		return nil, fmt.Errorf("saas: workload run needs a manifest")
	}
	if err := cfg.Manifest.Validate(); err != nil {
		return nil, err
	}
	if cfg.Load <= 0 || cfg.Load > 1.5 {
		return nil, fmt.Errorf("saas: load %v outside (0, 1.5]", cfg.Load)
	}
	if cfg.Queries < 1 {
		return nil, fmt.Errorf("saas: need >= 1 query, got %d", cfg.Queries)
	}
	if cfg.Warmup < 0 || cfg.Warmup >= cfg.Queries {
		return nil, fmt.Errorf("saas: warmup %d outside [0, %d)", cfg.Warmup, cfg.Queries)
	}
	seedSamples := cfg.EstimatorSeedSamples
	if seedSamples == 0 {
		seedSamples = 4000
	}
	compression := cfg.Manifest.Compression

	classes, err := SaSClasses(compression)
	if err != nil {
		return nil, err
	}
	var estimator *core.TailEstimator
	srModel, err := ClusterDelayModel(ServerRoom, compression)
	if err != nil {
		return nil, err
	}
	if cfg.Spec.Deadline != core.DeadlineNone {
		estimator, err = core.NewTailEstimator(TotalNodes, srModel, seedSamples, 0)
		if err != nil {
			return nil, err
		}
		for i := 0; i < TotalNodes; i++ {
			cluster, err := NodeCluster(i)
			if err != nil {
				return nil, err
			}
			if cluster == ServerRoom {
				continue
			}
			model, err := ClusterDelayModel(cluster, compression)
			if err != nil {
				return nil, err
			}
			for s := 0; s < seedSamples*3; s++ {
				p := (float64(s) + 0.5) / float64(seedSamples*3)
				if err := estimator.Observe(i, model.Quantile(p)); err != nil {
					return nil, err
				}
			}
		}
	}

	hc := HandlerConfig{
		Nodes:     cfg.Manifest.Refs,
		Spec:      cfg.Spec,
		Classes:   classes,
		Estimator: estimator,
		Warmup:    int64(cfg.Warmup),
		Transport: cfg.Transport,
	}
	if cfg.AdmissionWindowMs > 0 {
		adm, err := core.NewAdmissionController(cfg.AdmissionWindowMs, cfg.AdmissionThreshold)
		if err != nil {
			return nil, err
		}
		hc.Admission = adm
	}
	handler, err := NewHandler(hc)
	if err != nil {
		return nil, err
	}

	rate, err := RateForServerRoomLoad(cfg.Load, srModel.Mean())
	if err != nil {
		return nil, err
	}
	arrivals, err := ArrivalSchedule(cfg.Queries, rate, cfg.Seed+101)
	if err != nil {
		return nil, err
	}
	gen, err := NewQueryGen(classes, cfg.Manifest.StoreFirst, cfg.Manifest.StoreLast, cfg.Seed+202)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	for i := 0; i < cfg.Queries; i++ {
		q, err := gen.Next()
		if err != nil {
			return nil, err
		}
		if sleep := time.Until(start.Add(arrivals[i])); sleep > 0 {
			time.Sleep(sleep)
		}
		if err := handler.Submit(q); err != nil && !errors.Is(err, ErrRejected) {
			return nil, err
		}
	}
	handler.Drain()
	if err := handler.Close(); err != nil {
		return nil, fmt.Errorf("saas: closing transport: %w", err)
	}
	return collectResults(handler, cfg.Spec.Name, cfg.Load, cfg.Queries, compression)
}

// collectResults converts handler stats into a paper-scale TestbedResult.
func collectResults(handler *Handler, specName string, load float64, queries int, compression float64) (*TestbedResult, error) {
	stats := handler.Snapshot()
	res := &TestbedResult{
		Spec:          specName,
		Load:          load,
		ByClass:       make(map[int]ClassResult),
		PerCluster:    make(map[ClusterName]ClusterResult),
		TaskMissRatio: stats.TaskMissRatio,
		ElapsedWallMs: stats.ElapsedMs,
		Queries:       queries,
		Rejected:      stats.Rejected,
		Errors:        stats.Errors,
	}
	c := compression
	for classID, rec := range stats.ByClass {
		if rec.Count() == 0 {
			continue
		}
		p99, err := rec.P99()
		if err != nil {
			return nil, err
		}
		slo := PaperClassSLOsMs[classID]
		res.ByClass[classID] = ClassResult{
			Count:    rec.Count(),
			P99Ms:    p99 * c,
			MeanMs:   rec.Mean() * c,
			SLOMs:    slo,
			MeetsSLO: p99*c <= slo,
		}
	}
	for name, rec := range stats.PerClusterTpo {
		if rec.Count() == 0 {
			continue
		}
		p95, err := rec.Quantile(0.95)
		if err != nil {
			return nil, err
		}
		p99, err := rec.P99()
		if err != nil {
			return nil, err
		}
		cr := ClusterResult{
			Samples: rec.Count(),
			MeanMs:  rec.Mean() * c,
			P95Ms:   p95 * c,
			P99Ms:   p99 * c,
		}
		for _, p := range []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1} {
			q, err := rec.Quantile(p)
			if err != nil {
				return nil, err
			}
			cr.CDF = append(cr.CDF, QuantilePoint{P: p, Ms: q * c})
		}
		res.PerCluster[name] = cr
	}
	if stats.ElapsedMs > 0 {
		var busy float64
		srNodes, err := ClusterNodes(ServerRoom)
		if err != nil {
			return nil, err
		}
		for _, n := range srNodes {
			busy += stats.NodeBusyMs[n]
		}
		res.MeasuredSRLoad = busy / (stats.ElapsedMs * NodesPerCluster)
	}
	return res, nil
}
