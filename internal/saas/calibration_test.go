package saas

import (
	"math"
	"testing"
)

// TestClusterModelsMatchPaperStats verifies the Fig. 9(a) calibration:
// every cluster's delay model reproduces the published mean/p95/p99
// exactly (p95/p99 by construction, mean by calibration).
func TestClusterModelsMatchPaperStats(t *testing.T) {
	for _, name := range ClusterNames() {
		name := name
		t.Run(string(name), func(t *testing.T) {
			d, err := ClusterDelayModel(name, 1)
			if err != nil {
				t.Fatalf("ClusterDelayModel: %v", err)
			}
			want := PaperClusterStats[name]
			if got := d.Mean(); math.Abs(got-want.MeanMs)/want.MeanMs > 1e-9 {
				t.Errorf("mean = %v, want %v", got, want.MeanMs)
			}
			if got := d.Quantile(0.95); math.Abs(got-want.P95Ms)/want.P95Ms > 1e-9 {
				t.Errorf("p95 = %v, want %v", got, want.P95Ms)
			}
			if got := d.Quantile(0.99); math.Abs(got-want.P99Ms)/want.P99Ms > 1e-9 {
				t.Errorf("p99 = %v, want %v", got, want.P99Ms)
			}
		})
	}
}

func TestClusterModelCompression(t *testing.T) {
	base, err := ClusterDelayModel(WetLab, 1)
	if err != nil {
		t.Fatalf("ClusterDelayModel: %v", err)
	}
	fast, err := ClusterDelayModel(WetLab, 10)
	if err != nil {
		t.Fatalf("ClusterDelayModel(10): %v", err)
	}
	if got, want := fast.Mean(), base.Mean()/10; math.Abs(got-want) > 1e-9 {
		t.Errorf("compressed mean = %v, want %v", got, want)
	}
	if _, err := ClusterDelayModel(WetLab, 0.5); err == nil {
		t.Error("compression < 1 succeeded, want error")
	}
	if _, err := ClusterDelayModel(ClusterName("bogus"), 1); err == nil {
		t.Error("unknown cluster succeeded, want error")
	}
}

// TestWetLabFastest checks the paper's heterogeneity ordering: the Wet-lab
// cluster is markedly faster than the other three.
func TestWetLabFastest(t *testing.T) {
	wet, _ := ClusterDelayModel(WetLab, 1)
	for _, other := range []ClusterName{ServerRoom, Faculty, GTA} {
		d, _ := ClusterDelayModel(other, 1)
		if wet.Mean() >= d.Mean()/2 {
			t.Errorf("wet-lab mean %v not well below %s mean %v", wet.Mean(), other, d.Mean())
		}
	}
}

func TestNodeClusterMapping(t *testing.T) {
	cases := []struct {
		node int
		want ClusterName
	}{
		{0, ServerRoom}, {7, ServerRoom}, {8, WetLab}, {15, WetLab},
		{16, Faculty}, {23, Faculty}, {24, GTA}, {31, GTA},
	}
	for _, tc := range cases {
		got, err := NodeCluster(tc.node)
		if err != nil {
			t.Errorf("NodeCluster(%d): %v", tc.node, err)
			continue
		}
		if got != tc.want {
			t.Errorf("NodeCluster(%d) = %s, want %s", tc.node, got, tc.want)
		}
	}
	if _, err := NodeCluster(-1); err == nil {
		t.Error("NodeCluster(-1) succeeded, want error")
	}
	if _, err := NodeCluster(32); err == nil {
		t.Error("NodeCluster(32) succeeded, want error")
	}
}

func TestClusterNodes(t *testing.T) {
	nodes, err := ClusterNodes(Faculty)
	if err != nil {
		t.Fatalf("ClusterNodes: %v", err)
	}
	if len(nodes) != NodesPerCluster || nodes[0] != 16 || nodes[7] != 23 {
		t.Errorf("ClusterNodes(faculty) = %v", nodes)
	}
	if _, err := ClusterNodes(ClusterName("bogus")); err == nil {
		t.Error("unknown cluster succeeded, want error")
	}
}
