package saas

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"tailguard/internal/core"
	"tailguard/internal/dist"
	"tailguard/internal/obs"
)

// buildObsHandler is buildHandler with a lifecycle tracer attached.
func buildObsHandler(t *testing.T, nodes int) (*Handler, *obs.LockedRing) {
	t.Helper()
	edges := make([]*EdgeNode, nodes)
	for i := range edges {
		edges[i] = testEdge(t, i)
	}
	classes, err := SaSClasses(100)
	if err != nil {
		t.Fatalf("SaSClasses: %v", err)
	}
	est, err := core.NewTailEstimator(nodes, dist.Deterministic{V: 1}, 100, 0)
	if err != nil {
		t.Fatalf("NewTailEstimator: %v", err)
	}
	refs := make([]NodeRef, len(edges))
	for i, e := range edges {
		refs[i] = e.Ref()
	}
	ring, err := obs.NewLockedRing(4096)
	if err != nil {
		t.Fatalf("NewLockedRing: %v", err)
	}
	h, err := NewHandler(HandlerConfig{
		Nodes:     refs,
		Spec:      core.TFEDFQ,
		Classes:   classes,
		Estimator: est,
		Obs:       obs.NewTracer(obs.TracerConfig{Sink: ring}),
	})
	if err != nil {
		t.Fatalf("NewHandler: %v", err)
	}
	return h, ring
}

func TestHandlerMetricsAndDebugEndpoints(t *testing.T) {
	h, ring := buildObsHandler(t, 2)
	const n = 20
	for i := 0; i < n; i++ {
		if err := h.Submit(validQuery(t, int64(i), []int{i % 2, (i + 1) % 2})); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	h.Drain()
	mux := h.DebugMux()

	// /metrics: well-formed Prometheus exposition reflecting the run.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE tg_queries_total counter",
		`tg_queries_total{class="0"} 20`,
		"# TYPE tg_query_latency_ms summary",
		"tg_tasks_total 40",
		`tg_queue_depth{node="0"}`,
		`tg_task_service_ms_count{cluster="server-room"} 40`,
		"tg_task_wait_ms_count 40",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	// /debug/queues: drained handler shows empty queues.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queues", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/queues status = %d", rec.Code)
	}
	var dbg QueuesDebug
	if err := json.Unmarshal(rec.Body.Bytes(), &dbg); err != nil {
		t.Fatalf("/debug/queues not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(dbg.Queues) != 2 {
		t.Fatalf("queues = %d, want 2", len(dbg.Queues))
	}
	if dbg.InFlight != 0 || dbg.Tasks != 40 {
		t.Errorf("in_flight/tasks = %d/%d, want 0/40", dbg.InFlight, dbg.Tasks)
	}
	for _, q := range dbg.Queues {
		if q.Depth != 0 || q.Busy {
			t.Errorf("drained node %d still busy/queued: %+v", q.Node, q)
		}
		if q.BusyMs <= 0 {
			t.Errorf("node %d has no recorded occupancy", q.Node)
		}
	}

	// The tracer saw the full lifecycle: n arrivals, n deadlines, 2n
	// enqueues/dispatches/service ends, n completions.
	events := ring.Snapshot(nil)
	counts := map[obs.Kind]int{}
	for _, e := range events {
		counts[e.Kind]++
	}
	want := map[obs.Kind]int{
		obs.KindArrival:    n,
		obs.KindDeadline:   n,
		obs.KindEnqueue:    2 * n,
		obs.KindDispatch:   2 * n,
		obs.KindServiceEnd: 2 * n,
		obs.KindQueryDone:  n,
	}
	for k, c := range want {
		if counts[k] != c {
			t.Errorf("%v events = %d, want %d", k, counts[k], c)
		}
	}
}
