package saas

import (
	"errors"
	"fmt"
	"time"

	"tailguard/internal/fault"
)

// ErrDropped is the cause wrapped into FaultTransport send failures; test
// with errors.Is.
var ErrDropped = errors.New("saas: send dropped by fault injection")

// FaultTransport decorates a Transport with the fault engine's transport
// faults, keyed by the handler's compressed clock: a send inside a drop
// window fails with ErrDropped (the handler surfaces it as a task error
// and completes the query without the task's records), and a send inside
// a delay window sleeps the configured delay before reaching the inner
// transport. Slowdown/stall/crash windows are server-side faults and are
// ignored here — inject those on the edge nodes or in the simulator.
//
// Drop decisions come from the engine's seeded per-server counter stream,
// so a testbed run that issues the same per-node send sequence replays
// the same drops regardless of wall time.
type FaultTransport struct {
	// Inner is the wrapped wire transport (required).
	Inner Transport
	// Engine supplies the fault windows; nil injects nothing.
	Engine *fault.Engine
	// NowMs supplies the handler clock in compressed ms (required).
	NowMs func() float64
	// Sleep overrides delay injection in tests; the default sleeps real
	// wall time via time.Sleep.
	Sleep func(ms float64)
}

// Send implements Transport.
func (t *FaultTransport) Send(node int, req TaskRequest) (*TaskResponse, error) {
	now := t.NowMs()
	if t.Engine.DropSend(node, now) {
		return nil, fmt.Errorf("%w: node %d at %.3f ms", ErrDropped, node, now)
	}
	if d := t.Engine.SendDelay(node, now); d > 0 {
		if t.Sleep != nil {
			t.Sleep(d)
		} else {
			time.Sleep(time.Duration(d * float64(time.Millisecond)))
		}
	}
	return t.Inner.Send(node, req)
}

// Close implements Transport.
func (t *FaultTransport) Close() error { return t.Inner.Close() }
