package saas

import (
	"testing"
	"time"
)

func testStore(t *testing.T, node int) *Store {
	t.Helper()
	start, end := DefaultStoreSpan()
	s, err := NewStore(StoreConfig{Start: start, End: end, Interval: 6 * time.Hour, Node: node})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return s
}

func TestStoreSpanAndLen(t *testing.T) {
	s := testStore(t, 0)
	// 18 months at 6h intervals: roughly 4*30*18 = 2160 records.
	if s.Len() < 2000 || s.Len() > 2400 {
		t.Errorf("Len() = %d, want ~2190", s.Len())
	}
	first, last := s.Span()
	if last <= first {
		t.Errorf("span inverted: %d..%d", first, last)
	}
	gotSpan := time.Duration(last-first) * time.Second
	wantSpan := 18 * 30 * 24 * time.Hour
	if gotSpan < wantSpan-31*24*time.Hour || gotSpan > wantSpan+31*24*time.Hour {
		t.Errorf("span = %v, want ~18 months", gotSpan)
	}
}

func TestStoreRange(t *testing.T) {
	s := testStore(t, 1)
	first, _ := s.Span()
	day := int64(24 * 3600)
	recs, err := s.Range(first, first+7*day)
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	// 7 days at 6h interval = 28 records.
	if len(recs) != 28 {
		t.Errorf("7-day range has %d records, want 28", len(recs))
	}
	for i, r := range recs {
		if r.Timestamp < first || r.Timestamp >= first+7*day {
			t.Fatalf("record %d timestamp %d outside range", i, r.Timestamp)
		}
		if r.Humidity < 0 || r.Humidity > 100 {
			t.Fatalf("record %d humidity %v outside [0, 100]", i, r.Humidity)
		}
		if r.TempC < -40 || r.TempC > 60 {
			t.Fatalf("record %d temperature %v implausible", i, r.TempC)
		}
	}
	// Empty and inverted ranges.
	empty, err := s.Range(first-1000, first-500)
	if err != nil || len(empty) != 0 {
		t.Errorf("pre-span range = %d records, err %v", len(empty), err)
	}
	if _, err := s.Range(10, 5); err == nil {
		t.Error("inverted range succeeded, want error")
	}
}

func TestStoreDeterministicPerNode(t *testing.T) {
	a1 := testStore(t, 3)
	a2 := testStore(t, 3)
	b := testStore(t, 4)
	first, _ := a1.Span()
	ra1, _ := a1.Range(first, first+24*3600)
	ra2, _ := a2.Range(first, first+24*3600)
	rb, _ := b.Range(first, first+24*3600)
	for i := range ra1 {
		if ra1[i] != ra2[i] {
			t.Fatal("same node produced different records")
		}
	}
	same := true
	for i := range ra1 {
		if ra1[i].TempC != rb[i].TempC {
			same = false
			break
		}
	}
	if same {
		t.Error("different nodes produced identical temperature series")
	}
}

func TestStoreValidation(t *testing.T) {
	now := time.Now()
	if _, err := NewStore(StoreConfig{Start: now, End: now.Add(-time.Hour)}); err == nil {
		t.Error("inverted span succeeded, want error")
	}
	if _, err := NewStore(StoreConfig{Start: now, End: now.Add(time.Minute), Interval: time.Hour}); err == nil {
		t.Error("span shorter than interval succeeded, want error")
	}
}
