package saas

import (
	"fmt"
	"math/rand"
	"time"

	"tailguard/internal/workload"
)

// Use-case classes of Section IV.E.
const (
	// ClassA (50% of queries): individual-device monitoring, fanout 1,
	// 80% of it concentrated on the Server-room cluster. SLO 800 ms.
	ClassA = 0
	// ClassB (40%): area overview, fanout 4 — one random node per
	// cluster. SLO 1300 ms.
	ClassB = 1
	// ClassC (10%): long-term records from all 32 nodes, fanout 32.
	// SLO 1800 ms.
	ClassC = 2
)

// PaperClassSLOsMs are the published 99th-percentile SLOs per class (ms).
var PaperClassSLOsMs = [3]float64{800, 1300, 1800}

// paperClassWeights is the published query mix.
var paperClassWeights = [3]float64{0.5, 0.4, 0.1}

// serverRoomBias is the fraction of class-A queries landing on the
// Server-room cluster.
const serverRoomBias = 0.8

// SaSClasses builds the three-class set with SLOs divided by the
// time-compression factor.
func SaSClasses(compression float64) (*workload.ClassSet, error) {
	if compression < 1 {
		return nil, fmt.Errorf("saas: compression must be >= 1, got %v", compression)
	}
	classes := make([]workload.Class, 3)
	names := [3]string{"A", "B", "C"}
	for i := range classes {
		classes[i] = workload.Class{
			ID:         i,
			Name:       names[i],
			SLOMs:      PaperClassSLOsMs[i] / compression,
			Percentile: 0.99,
			Weight:     paperClassWeights[i],
		}
	}
	return workload.NewClassSet(classes)
}

// QueryGen generates the SaS use-case query stream: classes, placements,
// and per-task retrieval windows (1-30 days of consecutive records
// starting at a random time in the store span).
type QueryGen struct {
	rng        *rand.Rand
	classes    *workload.ClassSet
	storeFirst int64 // first retrievable timestamp (unix s)
	storeLast  int64
	nextID     int64
}

// NewQueryGen builds a generator over the given store span.
func NewQueryGen(classes *workload.ClassSet, storeFirst, storeLast int64, seed int64) (*QueryGen, error) {
	if classes == nil || classes.Len() != 3 {
		return nil, fmt.Errorf("saas: query generator needs the 3-class SaS set")
	}
	const maxDays = 30
	if storeLast-storeFirst < maxDays*24*3600 {
		return nil, fmt.Errorf("saas: store span too short for %d-day retrievals", maxDays)
	}
	return &QueryGen{
		rng:        rand.New(rand.NewSource(seed)),
		classes:    classes,
		storeFirst: storeFirst,
		storeLast:  storeLast,
	}, nil
}

// Next generates one query (arrival timing is the caller's concern).
func (g *QueryGen) Next() (Query, error) {
	class := g.classes.Sample(g.rng)
	var nodes []int
	switch class {
	case ClassA:
		var node int
		if g.rng.Float64() < serverRoomBias {
			node = g.rng.Intn(NodesPerCluster) // server-room nodes are 0-7
		} else {
			node = NodesPerCluster + g.rng.Intn(TotalNodes-NodesPerCluster)
		}
		nodes = []int{node}
	case ClassB:
		nodes = make([]int, 4)
		for c := 0; c < 4; c++ {
			nodes[c] = c*NodesPerCluster + g.rng.Intn(NodesPerCluster)
		}
	case ClassC:
		nodes = make([]int, TotalNodes)
		for i := range nodes {
			nodes[i] = i
		}
	default:
		return Query{}, fmt.Errorf("saas: unexpected class %d", class)
	}

	q := Query{
		ID:     g.nextID,
		Class:  class,
		Nodes:  nodes,
		FromTs: make([]int64, len(nodes)),
		ToTs:   make([]int64, len(nodes)),
	}
	g.nextID++
	for i := range nodes {
		days := 1 + g.rng.Intn(30)
		span := int64(days) * 24 * 3600
		latestStart := g.storeLast - span
		start := g.storeFirst + g.rng.Int63n(latestStart-g.storeFirst+1)
		q.FromTs[i] = start
		q.ToTs[i] = start + span
	}
	return q, nil
}

// ExpectedServerRoomTasksPerQuery returns the mean number of tasks a query
// places on the Server-room cluster under the paper's mix:
// 0.5*0.8 (class A) + 0.4*1 (class B) + 0.1*8 (class C) = 1.6.
func ExpectedServerRoomTasksPerQuery() float64 {
	return paperClassWeights[ClassA]*serverRoomBias +
		paperClassWeights[ClassB]*1 +
		paperClassWeights[ClassC]*NodesPerCluster
}

// RateForServerRoomLoad converts a target Server-room cluster utilization
// into a query arrival rate (queries per compressed ms): the cluster has
// NodesPerCluster servers with the given mean task occupancy.
func RateForServerRoomLoad(load, meanServerRoomTaskMs float64) (float64, error) {
	if load <= 0 || load > 1.5 {
		return 0, fmt.Errorf("saas: load %v outside (0, 1.5]", load)
	}
	if meanServerRoomTaskMs <= 0 {
		return 0, fmt.Errorf("saas: mean task time must be positive, got %v", meanServerRoomTaskMs)
	}
	return load * NodesPerCluster / (ExpectedServerRoomTasksPerQuery() * meanServerRoomTaskMs), nil
}

// ArrivalSchedule precomputes Poisson arrival offsets (compressed ms from
// start) for n queries at the given rate.
func ArrivalSchedule(n int, ratePerMs float64, seed int64) ([]time.Duration, error) {
	if n < 1 {
		return nil, fmt.Errorf("saas: need >= 1 arrival, got %d", n)
	}
	p, err := workload.NewPoisson(ratePerMs)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	var t float64
	for i := range out {
		t += p.NextGap(rng)
		out[i] = time.Duration(t * float64(time.Millisecond))
	}
	return out, nil
}
