package saas

import (
	"strconv"

	"tailguard/internal/obs"
	"tailguard/internal/workload"
)

// saasMetrics holds the handler's metric series, resolved once in
// NewHandler so the query path only touches atomics (counters, gauges)
// or the summaries' own locks.
type saasMetrics struct {
	queries  []*obs.Counter // per class: completed queries
	latency  []*obs.Summary // per class: query latency (compressed ms)
	rejected *obs.Counter
	tasks    *obs.Counter
	missed   *obs.Counter
	wait     *obs.Summary
	// depth and tpo are indexed by node; tpo series are shared per
	// cluster (nodes in one cluster expose one summary).
	depth []*obs.Gauge
	tpo   []*obs.Summary
}

// newSaasMetrics registers the handler's tg_* families on reg.
func newSaasMetrics(reg *obs.Registry, classes *workload.ClassSet, nodes []NodeRef) (*saasMetrics, error) {
	m := &saasMetrics{}
	var err error
	if m.rejected, err = reg.Counter("tg_rejected_total", "Queries rejected by admission control.", ""); err != nil {
		return nil, err
	}
	if m.tasks, err = reg.Counter("tg_tasks_total", "Tasks dequeued for dispatch.", ""); err != nil {
		return nil, err
	}
	if m.missed, err = reg.Counter("tg_task_deadline_miss_total", "Tasks dequeued past their queuing deadline.", ""); err != nil {
		return nil, err
	}
	if m.wait, err = reg.Summary("tg_task_wait_ms", "Task pre-dequeuing wait t_pr (compressed ms).", ""); err != nil {
		return nil, err
	}
	for _, c := range classes.Classes() {
		labels, err := obs.Labels("class", strconv.Itoa(c.ID))
		if err != nil {
			return nil, err
		}
		q, err := reg.Counter("tg_queries_total", "Completed queries per class.", labels)
		if err != nil {
			return nil, err
		}
		l, err := reg.Summary("tg_query_latency_ms", "End-to-end query latency per class (compressed ms).", labels)
		if err != nil {
			return nil, err
		}
		m.queries = append(m.queries, q)
		m.latency = append(m.latency, l)
	}
	for _, n := range nodes {
		labels, err := obs.Labels("node", strconv.Itoa(n.ID))
		if err != nil {
			return nil, err
		}
		g, err := reg.Gauge("tg_queue_depth", "Tasks waiting per edge node.", labels)
		if err != nil {
			return nil, err
		}
		clusterLabels, err := obs.Labels("cluster", string(n.Cluster))
		if err != nil {
			return nil, err
		}
		tpo, err := reg.Summary("tg_task_service_ms", "Task post-queuing time t_po per cluster (compressed ms).", clusterLabels)
		if err != nil {
			return nil, err
		}
		m.depth = append(m.depth, g)
		m.tpo = append(m.tpo, tpo)
	}
	return m, nil
}

// Metrics returns the handler's metrics registry, e.g. to expose on an
// operator port. DebugMux is the batteries-included variant.
func (h *Handler) Metrics() *obs.Registry { return h.reg }
