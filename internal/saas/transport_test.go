package saas

import (
	"strings"
	"testing"
	"time"

	"tailguard/internal/core"
)

func TestTCPTransportRoundTrip(t *testing.T) {
	n := testEdge(t, 2)
	c := newTCPClient([]string{"", "", n.TCPAddr()}, 5*time.Second)
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	first, _ := testStore(t, 2).Span()
	for i := 0; i < 5; i++ {
		resp, err := c.Send(2, TaskRequest{QueryID: int64(i), TaskID: 1, FromTs: first, ToTs: first + 24*3600})
		if err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
		if resp.QueryID != int64(i) || resp.Node != 2 {
			t.Fatalf("response identity = %+v", resp)
		}
		// 1 day at 6h interval = 4 records.
		if len(resp.Records) != 4 {
			t.Fatalf("got %d records, want 4", len(resp.Records))
		}
	}
	if _, err := c.Send(9, TaskRequest{}); err == nil {
		t.Error("out-of-range node succeeded, want error")
	}
}

func TestTCPTransportReconnectsAfterNodeRestart(t *testing.T) {
	n := testEdge(t, 3)
	c := newTCPClient([]string{"", "", "", n.TCPAddr()}, 2*time.Second)
	defer c.Close()
	first, _ := testStore(t, 3).Span()
	req := TaskRequest{QueryID: 1, FromTs: first, ToTs: first + 24*3600}
	if _, err := c.Send(3, req); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// A schema-invalid request (inverted range) makes the server drop the
	// stream; the client must surface an error and discard the dead
	// connection.
	if _, err := c.Send(3, TaskRequest{QueryID: 2, FromTs: 10, ToTs: 5}); err == nil {
		t.Fatal("poisoned request succeeded, want error")
	}
	// The next send re-dials transparently and succeeds.
	if _, err := c.Send(3, req); err != nil {
		t.Fatalf("Send after reconnect: %v", err)
	}
	// After the node is gone entirely, sends fail with a dial error.
	if err := n.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := c.Send(3, TaskRequest{QueryID: 3, FromTs: 10, ToTs: 5}); err == nil {
		t.Fatal("poison to kill the live connection succeeded, want error")
	}
	if _, err := c.Send(3, req); err == nil {
		t.Fatal("Send to dead node succeeded, want error")
	} else if !strings.Contains(err.Error(), "dialing") {
		t.Errorf("failure = %v, want a dial error (connection dropped)", err)
	}
}

func TestHandlerOverTCPTransport(t *testing.T) {
	edges := make([]*EdgeNode, 4)
	for i := range edges {
		edges[i] = testEdge(t, i)
	}
	classes, err := SaSClasses(100)
	if err != nil {
		t.Fatalf("SaSClasses: %v", err)
	}
	refs := make([]NodeRef, len(edges))
	for i, e := range edges {
		refs[i] = e.Ref()
	}
	h, err := NewHandler(HandlerConfig{
		Nodes:     refs,
		Spec:      core.FIFO,
		Classes:   classes,
		Transport: TCPTransport,
	})
	if err != nil {
		t.Fatalf("NewHandler: %v", err)
	}
	for i := 0; i < 40; i++ {
		if err := h.Submit(validQuery(t, int64(i), []int{i % 4, (i + 2) % 4})); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	h.Drain()
	if err := h.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	stats := h.Snapshot()
	if len(stats.Errors) != 0 {
		t.Fatalf("errors: %v", stats.Errors)
	}
	if rec := stats.ByClass[0]; rec == nil || rec.Count() != 40 {
		t.Errorf("completed = %v, want 40", rec)
	}
}

func TestHandlerUnknownTransport(t *testing.T) {
	classes, _ := SaSClasses(100)
	if _, err := NewHandler(HandlerConfig{
		Nodes:     []NodeRef{testEdge(t, 0).Ref()},
		Spec:      core.FIFO,
		Classes:   classes,
		Transport: TransportKind("carrier-pigeon"),
	}); err == nil {
		t.Error("unknown transport succeeded, want error")
	}
}

// TestTestbedOverTCP runs a short live testbed pass on the gob transport.
func TestTestbedOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("live testbed run in -short mode")
	}
	stores := testbedStores(t)
	res, err := RunTestbed(TestbedConfig{
		Spec:         core.TFEDFQ,
		Load:         0.30,
		Queries:      250,
		Warmup:       40,
		Compression:  10,
		Seed:         3,
		SharedStores: stores,
		Transport:    TCPTransport,
	})
	if err != nil {
		t.Fatalf("RunTestbed: %v", err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if res.ByClass[ClassA].Count == 0 {
		t.Error("no class A samples over TCP")
	}
}
